// Command switchml-sim runs one SwitchML aggregation on the
// deterministic rack simulator with fully custom parameters, for
// exploring the design space beyond the paper's configurations.
//
// Usage:
//
//	switchml-sim -workers 8 -gbps 10 -mb 100 [-pool 0] [-elems 32]
//	    [-loss 0.001] [-rto 1ms] [-cores 4] [-straggler-gbps 0] [-seed 1]
//	    [-trace out.json] [-burst pGB,pBG,lossG,lossB] [-crash 2@100us]
//	    [-switch-restart 500us] [-switch-kill 100us] [-switch-revive 5ms]
//	    [-standby 1] [-standby-kill 1@5ms] [-standby-revive 1@20ms]
//	    [-probe 200us] [-degraded-mode] [-no-fallback]
//	    [-steps 1] [-quorum 0] [-late-policy drop] [-detached 3,4]
//	    [-join-at 3@2] [-leave-at 1@4]
//	    [-sample 100us] [-series series.json] [-flight incident.json]
//
// Elastic membership is scripted with -steps > 1: -detached starts
// workers outside the job, -join-at "w@step" admits one during that
// step (committed at the next step boundary), and -leave-at "w@step"
// drains one out the same way. -quorum lets slots complete short of
// the membership, mitigating stragglers (-straggler-gbps) at the cost
// of late gradients, handled per -late-policy.
//
// It prints the tensor aggregation time, the achieved ATE/s against
// the analytic line rate, and the retransmission count. -trace
// records every protocol event (transmissions, drops, retransmits,
// slot completions, shadow reads) to a Chrome trace-event file that
// chrome://tracing or https://ui.perfetto.dev can open.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"switchml/internal/allreduce"
	"switchml/internal/core"
	"switchml/internal/faults"
	"switchml/internal/netsim"
	"switchml/internal/rack"
	"switchml/internal/telemetry"
)

func main() {
	workers := flag.Int("workers", 8, "number of workers (n)")
	gbps := flag.Float64("gbps", 10, "link rate in Gbps")
	mb := flag.Float64("mb", 100, "tensor size in MB")
	pool := flag.Int("pool", 0, "pool size s (0 = BDP tuning rule, §3.6)")
	elems := flag.Int("elems", 32, "elements per packet (k)")
	loss := flag.Float64("loss", 0, "per-link packet loss probability")
	rto := flag.Duration("rto", time.Millisecond, "retransmission timeout")
	cores := flag.Int("cores", 4, "worker CPU cores")
	stragglerGbps := flag.Float64("straggler-gbps", 0, "if > 0, worker 0's link rate in Gbps")
	seed := flag.Int64("seed", 1, "simulation seed")
	tracePath := flag.String("trace", "", "write a Chrome trace-event file of every protocol event")
	burst := flag.String("burst", "",
		"Gilbert–Elliott burst loss as \"pGoodToBad,pBadToGood,lossGood,lossBad\" (replaces -loss)")
	crash := flag.String("crash", "",
		"crash a worker mid-run as \"worker@time\", e.g. \"2@100us\"; the job recovers among the survivors")
	switchRestart := flag.Duration("switch-restart", 0,
		"restart the switch (wiping all register state) at this virtual time (0 = off)")
	degradedMode := flag.Bool("degraded-mode", false,
		"run the whole job on host ring all-reduce instead of the switch (the fallback baseline)")
	switchKill := flag.Duration("switch-kill", 0,
		"kill the switch's aggregation program at this virtual time (0 = off); the job degrades to host all-reduce")
	switchRevive := flag.Duration("switch-revive", 0,
		"revive a killed aggregation program at this virtual time (0 = never); the job probes and fails back")
	standbys := flag.Int("standby", 0,
		"warm-standby aggregation programs behind the same crossbar; a silent serving switch re-homes the job onto the next rung instead of degrading to the host mesh")
	standbyKill := flag.String("standby-kill", "",
		"kill a standby's aggregation program as \"rank@time\" (1-based rank, e.g. 1@5ms)")
	standbyRevive := flag.String("standby-revive", "",
		"revive a killed standby as \"rank@time\" (1-based rank)")
	probe := flag.Duration("probe", 0,
		"probe period while degraded (0 = SuspectAfter/4)")
	noFallback := flag.Bool("no-fallback", false,
		"disable degraded mode: a killed switch fails the run with a typed error instead")
	steps := flag.Int("steps", 1,
		"aggregation steps (the tensor is re-aggregated each step); membership changes commit at step boundaries")
	quorum := flag.Int("quorum", 0,
		"straggler quorum: slots complete once this many workers contributed (0 = full participation)")
	latePolicy := flag.String("late-policy", "drop",
		"fate of a straggler's update after its slot completed at quorum: drop | reconcile")
	detached := flag.String("detached", "",
		"comma-separated worker ids starting outside the membership (admit them with -join-at)")
	joinAt := flag.String("join-at", "",
		"gracefully admit workers as \"worker@step[,worker@step...]\"; requested during that step, committed at the next boundary")
	leaveAt := flag.String("leave-at", "",
		"gracefully drain workers as \"worker@step[,worker@step...]\"; the drain finishes the step, departure commits at the next boundary")
	samplePeriod := flag.Duration("sample", 0,
		"sample the run's metrics into time series at this virtual-time period (0 = off)")
	seriesPath := flag.String("series", "",
		"with -sample, write the sampled series as JSON to this file")
	flightPath := flag.String("flight", "",
		"arm a fault flight recorder: fault transitions dump a JSON incident (events, metric delta, per-slot state) to this file")
	flag.Parse()

	var ring *telemetry.Ring
	if *tracePath != "" {
		ring = telemetry.NewRing(1 << 20)
	}
	cfg := rack.Config{
		Workers:        *workers,
		LinkBitsPerSec: *gbps * 1e9,
		PoolSize:       *pool,
		SlotElems:      *elems,
		LossRate:       *loss,
		RTO:            netsim.Time(*rto),
		Cores:          *cores,
		LossRecovery:   true,
		Seed:           *seed,
	}
	if ring != nil {
		cfg.Tracer = ring
	}
	if *stragglerGbps > 0 {
		cfg.WorkerLinkBitsPerSec = make([]float64, *workers)
		cfg.WorkerLinkBitsPerSec[0] = *stragglerGbps * 1e9
	}
	if *burst != "" {
		var ge netsim.GEConfig
		if n, err := fmt.Sscanf(*burst, "%g,%g,%g,%g",
			&ge.PGoodToBad, &ge.PBadToGood, &ge.LossGood, &ge.LossBad); n != 4 || err != nil {
			log.Fatalf("-burst: want \"pGoodToBad,pBadToGood,lossGood,lossBad\", got %q", *burst)
		}
		cfg.BurstLoss = &ge
		cfg.LossRate = 0
	}
	cfg.Quorum = *quorum
	switch *latePolicy {
	case "drop":
		cfg.LatePolicy = core.LateDrop
	case "reconcile":
		cfg.LatePolicy = core.LateReconcile
	default:
		log.Fatalf("-late-policy: want drop or reconcile, got %q", *latePolicy)
	}
	if *detached != "" {
		for _, part := range strings.Split(*detached, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("-detached: bad worker id %q: %v", part, err)
			}
			cfg.Detached = append(cfg.Detached, w)
		}
	}
	var scenario faults.Scenario
	elastic := func(name, spec string, kind faults.ActionKind) {
		if spec == "" {
			return
		}
		for _, part := range strings.Split(spec, ",") {
			var w, s int
			if n, err := fmt.Sscanf(part, "%d@%d", &w, &s); n != 2 || err != nil {
				log.Fatalf("%s: want \"worker@step\" (e.g. 3@2), got %q", name, part)
			}
			if s < 1 || s > *steps {
				log.Fatalf("%s: step %d outside the %d-step run", name, s, *steps)
			}
			scenario.Actions = append(scenario.Actions,
				faults.Action{Kind: kind, Worker: w, Step: s})
		}
	}
	elastic("-join-at", *joinAt, faults.JoinWorker)
	elastic("-leave-at", *leaveAt, faults.LeaveWorker)
	if *crash != "" {
		var w int
		var at string
		if n, err := fmt.Sscanf(*crash, "%d@%s", &w, &at); n != 2 || err != nil {
			log.Fatalf("-crash: want \"worker@time\" (e.g. 2@100us), got %q", *crash)
		}
		d, err := time.ParseDuration(at)
		if err != nil {
			log.Fatalf("-crash: bad time in %q: %v", *crash, err)
		}
		scenario.Actions = append(scenario.Actions,
			faults.Action{Kind: faults.CrashWorker, Worker: w, At: netsim.Time(d)})
	}
	if *switchRestart > 0 {
		scenario.Actions = append(scenario.Actions,
			faults.Action{Kind: faults.RestartSwitch, At: netsim.Time(*switchRestart)})
	}
	if *switchKill > 0 {
		scenario.Actions = append(scenario.Actions,
			faults.Action{Kind: faults.KillSwitch, At: netsim.Time(*switchKill)})
	}
	if *switchRevive > 0 {
		scenario.Actions = append(scenario.Actions,
			faults.Action{Kind: faults.ReviveSwitch, At: netsim.Time(*switchRevive)})
	}
	standbyAction := func(name, spec string, kind faults.ActionKind) {
		if spec == "" {
			return
		}
		var rank int
		var at string
		if n, err := fmt.Sscanf(spec, "%d@%s", &rank, &at); n != 2 || err != nil {
			log.Fatalf("%s: want \"rank@time\" (e.g. 1@5ms), got %q", name, spec)
		}
		d, err := time.ParseDuration(at)
		if err != nil {
			log.Fatalf("%s: bad time in %q: %v", name, spec, err)
		}
		scenario.Actions = append(scenario.Actions,
			faults.Action{Kind: kind, Worker: rank, At: netsim.Time(d)})
	}
	standbyAction("-standby-kill", *standbyKill, faults.KillStandby)
	standbyAction("-standby-revive", *standbyRevive, faults.ReviveStandby)
	cfg.StandbySwitches = *standbys
	if len(scenario.Actions) > 0 {
		cfg.Faults = &scenario
	}
	cfg.NoFallback = *noFallback
	if *degradedMode {
		cfg.StartDegraded = true
		cfg.Health = &rack.HealthConfig{Probation: -1}
	}
	if *probe > 0 {
		if cfg.Health == nil {
			cfg.Health = &rack.HealthConfig{}
		}
		cfg.Health.ProbeEvery = netsim.Time(*probe)
	}
	cfg.SampleEvery = netsim.Time(*samplePeriod)
	var rec *telemetry.FlightRecorder
	if *flightPath != "" {
		if cfg.Metrics == nil {
			cfg.Metrics = telemetry.NewRegistry()
		}
		rec = telemetry.NewFlightRecorder(telemetry.FlightConfig{
			Path:     *flightPath,
			Registry: cfg.Metrics,
		})
		if ring != nil {
			cfg.Tracer = telemetry.Fanout(ring, rec)
		} else {
			cfg.Tracer = rec
		}
	}
	r, err := rack.NewRack(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if rec != nil {
		rec.SetState(func() any { return r.PoolState(true) })
	}
	n := int(*mb * 1e6 / 4)
	tensor := make([]int32, n)
	for i := range tensor {
		tensor[i] = 1
	}
	var res rack.Result
	for step := 1; step <= *steps; step++ {
		res, err = r.AllReduceShared(tensor)
		if err != nil {
			log.Fatalf("step %d: %v", step, err)
		}
	}
	// Pick a reporting worker that is inside the final membership.
	skip := make(map[int]bool, len(res.Failed)+len(res.Detached))
	for _, w := range res.Failed {
		skip[w] = true
	}
	for _, w := range res.Detached {
		skip[w] = true
	}
	survivor := 0
	for skip[survivor] {
		survivor++
	}
	members := int32(0)
	for i := 0; i < *workers; i++ {
		if r.Member(i) {
			members++
		}
	}
	switch {
	case *quorum > 0 && *quorum < int(members):
		// Quorum runs exclude straggler gradients per slot; there is no
		// single exact expectation to enforce here.
	case *steps == 1 && len(res.Detached) == 0:
		// With faults injected, some workers may be retired mid-run:
		// the first survivor's aggregate must then show full-membership
		// sums before the recovery frontier and survivor-only sums
		// after it.
		full := int32(*workers)
		surv := full - int32(len(res.Failed))
		boundary := -1
		for i, v := range r.Aggregate(survivor) {
			switch {
			case boundary < 0 && v == full:
			case v == surv:
				if boundary < 0 {
					boundary = i
				}
			default:
				log.Fatalf("aggregate[%d] = %d, want %d or %d: protocol bug", i, v, full, surv)
			}
		}
		if len(res.Failed) > 0 {
			fmt.Printf("failed workers    %v (survivor sums past element %d)\n", res.Failed, boundary)
		}
	case len(res.Failed) == 0:
		// Elastic runs commit membership at step boundaries, so the
		// final step's aggregate must be uniform at the member count —
		// a torn aggregate here means the fence failed.
		for i, v := range r.Aggregate(survivor) {
			if v != members {
				log.Fatalf("aggregate[%d] = %d, want %d (final membership): torn aggregate", i, v, members)
			}
		}
	}
	if len(res.Failed) > 0 && *steps > 1 {
		fmt.Printf("failed workers    %v\n", res.Failed)
	}
	if len(res.Left) > 0 || len(res.Detached) > 0 {
		fmt.Printf("membership        %d of %d at the end; left=%v detached=%v\n",
			members, *workers, res.Left, res.Detached)
	}
	ate := float64(n) / (float64(res.TAT) / 1e9)
	line := allreduce.SwitchMLLineRateATE(*gbps*1e9, *elems)
	fmt.Printf("workers=%d link=%.0fG pool=%d k=%d loss=%.4f%% rto=%v\n",
		*workers, *gbps, r.Config().PoolSize, *elems, *loss*100, *rto)
	fmt.Printf("TAT               %v\n", res.TAT)
	fmt.Printf("ATE/s             %.1fM (%.1f%% of line rate %.1fM)\n",
		ate/1e6, 100*ate/line, line/1e6)
	fmt.Printf("retransmissions   %d\n", res.Retransmissions)
	if *quorum > 0 {
		st := r.Switch().Stats()
		fmt.Printf("quorum            %d-of-%d: %d quorum completions, %d late dropped, %d late reconciled, %d gone replies\n",
			*quorum, members, st.QuorumCompletions, st.LateDropped, st.LateReconciled, st.GoneReplies)
	}
	fmt.Printf("simulator events  %d\n", r.Sim().Processed())
	if c := r.Counters(); c["failover_rehomes"] > 0 {
		fmt.Printf("failover ladder   %d re-homing(s); standbys absorbed %d updates (%d completions); home rank now %d\n",
			c["failover_rehomes"], c["standby_updates"], c["standby_completions"], r.HomeRank())
	}
	if c := r.Counters(); c["health_degrades"] > 0 || c["host_aggregated_elems"] > 0 {
		fmt.Printf("fabric handoffs   %d degrade(s), %d failback(s), %d/%d probes answered\n",
			c["health_degrades"], c["health_failbacks"], c["health_probe_acks"], c["health_probes"])
		fmt.Printf("host aggregation  %d of %d elements (%.1f%%)\n",
			c["host_aggregated_elems"], uint64(n),
			100*float64(c["host_aggregated_elems"])/float64(n))
	}
	if *samplePeriod > 0 {
		series := r.Series()
		fmt.Printf("sampled series    %d over the run\n", len(series))
		if *seriesPath != "" {
			data, err := json.MarshalIndent(series, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*seriesPath, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("series written    %s\n", *seriesPath)
		}
	}
	if rec != nil {
		dumps, err := rec.Dumped()
		if err != nil {
			log.Fatalf("flight recorder: %v", err)
		}
		if dumps > 0 {
			fmt.Printf("flight incidents  %d (last at %s)\n", dumps, *flightPath)
		} else {
			fmt.Println("flight incidents  none (no fault transition fired)")
		}
	}
	if ring != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := telemetry.WriteChromeTrace(f, ring.Events()); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println(telemetry.WriteChromeTraceFileNote(*tracePath, ring.Len(), ring.Overwritten()))
	}
}
