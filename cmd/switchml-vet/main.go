// Command switchml-vet runs the project's static-analysis suite
// (internal/analysis) over the module: eight analyzers proving the
// invariants the compiler cannot — allocation-free hot paths,
// deterministic simulation packages, atomics discipline, wire widths
// that fit the p4sim register model, exhaustive protocol dispatch,
// pooled-buffer ownership, goroutine lifecycles and suppression
// hygiene. It is the `make lint` gate; any finding exits non-zero.
//
// Usage:
//
//	switchml-vet [-root dir] [-list] [-run name[,name...]]
//	    [-json | -sarif] [-allows] [analyzer ...]
//
// With no analyzer names, all eight run; -run (or positional names)
// selects a subset, which CI uses to shard the suite across matrix
// legs. -root overrides the module root (default: the nearest go.mod
// above the working directory).
//
// Output is compiler-style text by default. -json emits a flat
// finding array with stable IDs for scripting; -sarif emits a SARIF
// 2.1.0 log for GitHub code-scanning annotations (both still exit
// non-zero on findings, so redirect and `|| true` when only the
// artifact is wanted). -allows prints every //switchml:allow with its
// justification — the `make lint-allows` audit — and exits zero; the
// suppress analyzer separately fails the build on stale ones.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"switchml/internal/analysis"
)

func main() {
	root := flag.String("root", "", "module root (default: nearest go.mod above cwd)")
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzers to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON with stable IDs")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 for CI annotation")
	allows := flag.Bool("allows", false, "report every //switchml:allow directive and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "switchml-vet: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	names := flag.Args()
	if *run != "" {
		for _, n := range strings.Split(*run, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}

	if err := vet(*root, names, *jsonOut, *sarifOut, *allows); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func vet(root string, names []string, jsonOut, sarifOut, allows bool) error {
	analyzers, err := analysis.ByName(names)
	if err != nil {
		return err
	}
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			return err
		}
		root, err = analysis.FindModuleRoot(wd)
		if err != nil {
			return err
		}
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		return err
	}

	if allows {
		for _, a := range analysis.Allows(m) {
			fmt.Printf("%s:%d: allow %s -- %s\n", a.Pos.Filename, a.Pos.Line, a.Analyzer, a.Why)
		}
		return nil
	}

	diags := analysis.Run(m, analyzers)
	switch {
	case jsonOut:
		if err := analysis.WriteJSON(os.Stdout, m.Root, diags); err != nil {
			return err
		}
	case sarifOut:
		if err := analysis.WriteSARIF(os.Stdout, m.Root, diags); err != nil {
			return err
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if n := len(diags); n > 0 {
		return fmt.Errorf("switchml-vet: %d finding(s)", n)
	}
	return nil
}
