// Command switchml-vet runs the project's static-analysis suite
// (internal/analysis) over the module: four analyzers proving the
// invariants the compiler cannot — allocation-free hot paths,
// deterministic simulation packages, atomics discipline, and wire
// widths that fit the p4sim register model. It is the `make lint`
// gate; any finding exits non-zero.
//
// Usage:
//
//	switchml-vet [-root dir] [-list] [analyzer ...]
//
// With no analyzer names, all four run. -root overrides the module
// root (default: the nearest go.mod above the working directory).
package main

import (
	"flag"
	"fmt"
	"os"

	"switchml/internal/analysis"
)

func main() {
	root := flag.String("root", "", "module root (default: nearest go.mod above cwd)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	if err := run(*root, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(root string, names []string) error {
	analyzers, err := analysis.ByName(names)
	if err != nil {
		return err
	}
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			return err
		}
		root, err = analysis.FindModuleRoot(wd)
		if err != nil {
			return err
		}
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		return err
	}
	diags := analysis.Run(m, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		return fmt.Errorf("switchml-vet: %d finding(s)", n)
	}
	return nil
}
