// Command switchml-top is a live cluster monitor for SwitchML
// deployments: it polls the debug endpoints of an aggregator and its
// workers and renders per-worker rates, RTT estimator state, health
// mode, loss/retransmit columns, shard balance, and threshold anomaly
// flags (loss spike, shard imbalance, probation flapping).
//
// Usage:
//
//	switchml-top -agg http://host:6060 \
//	    -workers http://w0:6061,http://w1:6062 [-interval 1s]
//	    [-once] [-json] [-loss-warn 0.05] [-imbalance-warn 2.0]
//
// Without -once it refreshes a full-screen view every interval, like
// top(1). With -once it takes two polls a quarter-interval apart (so
// rates have a baseline) and prints the second view — add -json for a
// machine-readable document, the scripting mode CI smoke tests use.
//
// -selftest boots an in-process aggregator and two workers with debug
// listeners, drives a few collectives, polls itself, and validates
// the JSON document — a zero-dependency health check of the whole
// observability plane.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"switchml"
	"switchml/internal/top"
)

func main() {
	agg := flag.String("agg", "", "aggregator debug base URL (e.g. http://host:6060)")
	workersFlag := flag.String("workers", "", "comma-separated worker debug base URLs")
	interval := flag.Duration("interval", time.Second, "poll interval")
	once := flag.Bool("once", false, "poll twice, print one view, exit")
	jsonOut := flag.Bool("json", false, "print the view as JSON (with -once)")
	lossWarn := flag.Float64("loss-warn", 0.05, "loss-rate anomaly threshold")
	imbalWarn := flag.Float64("imbalance-warn", 2.0, "shard max/mean anomaly threshold")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request HTTP timeout")
	selftest := flag.Bool("selftest", false,
		"boot an in-process cluster, poll it, validate the JSON view, exit")
	flag.Parse()

	if *selftest {
		if err := runSelftest(*jsonOut); err != nil {
			log.Fatalf("selftest: %v", err)
		}
		return
	}

	var workers []string
	for _, w := range strings.Split(*workersFlag, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, w)
		}
	}
	if *agg == "" && len(workers) == 0 {
		log.Fatal("nothing to poll: set -agg and/or -workers (or -selftest)")
	}
	p := top.NewPoller(top.Config{
		Agg:           *agg,
		Workers:       workers,
		Timeout:       *timeout,
		LossRateWarn:  *lossWarn,
		ImbalanceWarn: *imbalWarn,
	})

	if *once {
		if _, err := p.Poll(); err != nil {
			log.Fatal(err)
		}
		time.Sleep(*interval / 4)
		v, err := p.Poll()
		if err != nil {
			log.Fatal(err)
		}
		emit(v, *jsonOut)
		return
	}
	for {
		v, err := p.Poll()
		if err != nil {
			log.Fatal(err)
		}
		// Clear the screen and repaint, top(1)-style.
		fmt.Print("\033[2J\033[H")
		top.Render(os.Stdout, v)
		time.Sleep(*interval)
	}
}

func emit(v *top.ClusterView, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			log.Fatal(err)
		}
		return
	}
	top.Render(os.Stdout, v)
}

// runSelftest stands up a real aggregator and two workers over
// loopback UDP, runs collectives while polling the debug endpoints,
// and validates the resulting view.
func runSelftest(asJSON bool) error {
	const n = 2
	agg, err := switchml.ListenAggregator("127.0.0.1:0", switchml.AggregatorParams{
		Workers: n, PoolSize: 16,
	})
	if err != nil {
		return err
	}
	defer agg.Close()
	aggDebug, err := agg.ServeDebug("127.0.0.1:0")
	if err != nil {
		return err
	}

	peers := make([]*switchml.Peer, n)
	workerURLs := make([]string, n)
	for i := 0; i < n; i++ {
		p, err := switchml.DialAggregator(agg.Addr(), switchml.PeerParams{
			ID: i, Workers: n, PoolSize: 16,
			RTO: 50 * time.Millisecond, Timeout: 10 * time.Second,
			AdaptiveRTO: true,
		})
		if err != nil {
			return err
		}
		defer p.Close()
		peers[i] = p
		if workerURLs[i], err = p.ServeDebug("127.0.0.1:0"); err != nil {
			return err
		}
	}

	poller := top.NewPoller(top.Config{
		Agg:     "http://" + aggDebug,
		Workers: prefix(workerURLs),
	})
	if _, err := poller.Poll(); err != nil {
		return err
	}

	// Drive a few collectives so the second poll sees traffic.
	tensor := make([]int32, 1<<14)
	for i := range tensor {
		tensor[i] = int32(i % 17)
	}
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		errs := make([]error, n)
		for i, p := range peers {
			wg.Add(1)
			go func(i int, p *switchml.Peer) {
				defer wg.Done()
				out, err := p.AllReduceInt32(tensor)
				if err == nil && out[1] != int32(n) {
					err = fmt.Errorf("bad aggregate %d", out[1])
				}
				errs[i] = err
			}(i, p)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}

	v, err := poller.Poll()
	if err != nil {
		return err
	}
	// Validate the headline columns the smoke test depends on.
	if v.Agg == nil || v.Agg.RxRate <= 0 || v.Agg.TxRate <= 0 {
		return fmt.Errorf("aggregator rates missing: %+v", v.Agg)
	}
	if v.Agg.Shards <= 0 {
		return fmt.Errorf("shard count missing: %+v", v.Agg)
	}
	if v.Agg.Members != n || v.Agg.DrainingCount != 0 || v.Agg.DepartedCount != 0 {
		return fmt.Errorf("membership roll call wrong: %+v", v.Agg)
	}
	if len(v.Workers) != n {
		return fmt.Errorf("got %d worker rows, want %d", len(v.Workers), n)
	}
	for _, w := range v.Workers {
		if w.State != "SWITCH" {
			return fmt.Errorf("worker %d health state %q, want SWITCH", w.Worker, w.State)
		}
		if w.TxRate <= 0 {
			return fmt.Errorf("worker %d reports no send rate", w.Worker)
		}
		if w.RTOMs <= 0 {
			return fmt.Errorf("worker %d reports no RTO", w.Worker)
		}
	}
	// The view must round-trip as JSON for -json scripting.
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var rt top.ClusterView
	if err := json.Unmarshal(data, &rt); err != nil {
		return err
	}
	emit(v, asJSON)
	fmt.Fprintln(os.Stderr, "selftest ok")
	return nil
}

func prefix(addrs []string) []string {
	out := make([]string, len(addrs))
	for i, a := range addrs {
		out[i] = "http://" + a
	}
	return out
}
