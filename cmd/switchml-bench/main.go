// Command switchml-bench regenerates the paper's evaluation tables
// and figures from the simulated reproduction.
//
// Usage:
//
//	switchml-bench [-scale N] [-seed S] [-v] [-trace out.json] [experiment ...]
//
// With no arguments it runs every experiment. Experiment ids follow
// the paper: table1, fig2..fig8, fig10, plus the ablations
// (ablation-algorithm, ablation-rto, ablation-pool). -scale divides
// the paper's tensor sizes (default 10) — rates and ratios are
// size-independent, so shapes are preserved; use -scale 1 for
// full-size runs.
//
// -trace records every protocol event from every simulated SwitchML
// rack the selected experiments run to a Chrome trace-event file
// (open with chrome://tracing or https://ui.perfetto.dev). The ring
// is bounded; with many experiments the oldest events are dropped.
//
// -cpuprofile and -memprofile write pprof profiles covering the
// selected experiments (`go tool pprof` reads them); the memory
// profile is taken at exit after a final GC, so it reflects retained
// heap, while allocation sites appear under -sample_index=alloc_space.
// -debug serves /debug/pprof/ and expvar live over HTTP, for
// profiling a long multi-experiment run while it is still going.
//
// -artifacts DIR writes each experiment's machine-readable baseline
// (currently the hotpath experiment) to DIR/BENCH_<id>.json.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"switchml/internal/bench"
	"switchml/internal/telemetry"
)

func main() {
	scale := flag.Int("scale", 10, "divide the paper's tensor sizes by this factor")
	seed := flag.Int64("seed", 1, "simulation seed")
	verbose := flag.Bool("v", false, "log progress to stderr")
	list := flag.Bool("list", false, "list experiment ids and exit")
	tracePath := flag.String("trace", "", "write a Chrome trace-event file of the simulated protocol events")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit")
	artifacts := flag.String("artifacts", "", "directory for machine-readable BENCH_<id>.json baselines")
	debug := flag.String("debug", "", "optional HTTP address serving live /debug/pprof/ and expvar during the run")
	flag.Parse()

	if *debug != "" {
		bound, closeFn, err := telemetry.ServeDebugOpts(*debug, telemetry.DebugOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "switchml-bench: debug server: %v\n", err)
			os.Exit(1)
		}
		defer closeFn()
		fmt.Fprintf(os.Stderr, "switchml-bench: debug at http://%s/debug/pprof/\n", bound)
	}

	if *list {
		fmt.Println(strings.Join(bench.IDs(), "\n"))
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = bench.IDs()
	}
	var log io.Writer = io.Discard
	if *verbose {
		log = os.Stderr
	}
	opts := bench.Options{Scale: *scale, Seed: *seed, Log: log}
	var ring *telemetry.Ring
	if *tracePath != "" {
		ring = telemetry.NewRing(1 << 21)
		opts.Tracer = ring
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "switchml-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "switchml-bench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "switchml-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "switchml-bench: %v\n", err)
			}
		}()
	}
	for _, id := range ids {
		tb, err := bench.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "switchml-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tb.Render(os.Stdout)
		if *artifacts != "" && len(tb.Artifact) > 0 {
			path := filepath.Join(*artifacts, "BENCH_"+tb.ID+".json")
			if err := os.WriteFile(path, append(tb.Artifact, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "switchml-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if ring != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "switchml-bench: %v\n", err)
			os.Exit(1)
		}
		if err := telemetry.WriteChromeTrace(f, ring.Events()); err != nil {
			fmt.Fprintf(os.Stderr, "switchml-bench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "switchml-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(telemetry.WriteChromeTraceFileNote(*tracePath, ring.Len(), ring.Overwritten()))
	}
}
