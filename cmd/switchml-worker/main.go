// Command switchml-worker joins a SwitchML aggregation served by
// switchml-agg and all-reduces synthetic tensors, reporting goodput.
// It exists to exercise a real deployment across machines.
//
// Usage:
//
//	switchml-worker -agg host:5555 -id 0 -workers 4 [-pool 64]
//	    [-elems-per-tensor 1000000] [-iters 10] [-job 0] [-debug :6061]
//
// Every participating worker must use a distinct -id in [0,workers).
// -debug starts an HTTP introspection listener serving /metrics,
// /debug/vars and /debug/pprof/ for the live worker.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"switchml"
)

func main() {
	aggAddr := flag.String("agg", "127.0.0.1:5555", "aggregator UDP address")
	id := flag.Int("id", 0, "this worker's id")
	workers := flag.Int("workers", 2, "number of workers (n)")
	pool := flag.Int("pool", 64, "pool size (s); must match the aggregator")
	elems := flag.Int("elems-per-tensor", 1_000_000, "tensor length per iteration")
	iters := flag.Int("iters", 10, "number of all-reduce iterations")
	job := flag.Uint("job", 0, "job id")
	rto := flag.Duration("rto", 50*time.Millisecond, "retransmission timeout")
	heartbeat := flag.Duration("heartbeat", 0,
		"liveness beacon period (0 = off); set well below the aggregator's -liveness threshold")
	debug := flag.String("debug", "", "optional HTTP address exposing /metrics, expvar and pprof")
	flag.Parse()

	peer, err := switchml.DialAggregator(*aggAddr, switchml.PeerParams{
		ID:        *id,
		Workers:   *workers,
		PoolSize:  *pool,
		JobID:     uint16(*job),
		RTO:       *rto,
		Heartbeat: *heartbeat,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer peer.Close()
	if *debug != "" {
		bound, err := peer.ServeDebug(*debug)
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		fmt.Printf("switchml-worker %d: debug at http://%s/metrics\n", *id, bound)
	}

	tensor := make([]int32, *elems)
	for i := range tensor {
		tensor[i] = int32(*id + i)
	}
	fmt.Printf("switchml-worker %d/%d: aggregating %d x %d elements via %s\n",
		*id, *workers, *iters, *elems, *aggAddr)

	var total time.Duration
	for it := 0; it < *iters; it++ {
		start := time.Now()
		out, err := peer.AllReduceInt32(tensor)
		if err != nil {
			log.Fatalf("iteration %d: %v", it, err)
		}
		elapsed := time.Since(start)
		total += elapsed
		// Verify the first element: sum over w of (w + i) at i=0.
		want := int32(*workers * (*workers - 1) / 2)
		if out[0] != want {
			log.Fatalf("iteration %d: aggregate[0] = %d, want %d", it, out[0], want)
		}
		fmt.Printf("  iter %2d: %8s  %6.1fM elems/s\n",
			it, elapsed.Round(time.Millisecond), float64(*elems)/elapsed.Seconds()/1e6)
	}
	fmt.Printf("done: mean %6.1fM elems/s\n",
		float64(*elems)*float64(*iters)/total.Seconds()/1e6)
}
