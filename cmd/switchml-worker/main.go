// Command switchml-worker joins a SwitchML aggregation served by
// switchml-agg and all-reduces synthetic tensors, reporting goodput.
// It exists to exercise a real deployment across machines.
//
// Usage:
//
//	switchml-worker -agg host:5555 -id 0 -workers 4 [-pool 64]
//	    [-elems-per-tensor 1000000] [-iters 10] [-job 0] [-debug :6061]
//	    [-adaptive-rto] [-mesh-listen :7001] [-mesh h0:7001,h1:7001,...]
//	    [-standby host:5556,host2:5555] [-degraded-mode] [-join]
//	    [-drain-after 5]
//
// Every participating worker must use a distinct -id in [0,workers).
// -debug starts an HTTP introspection listener serving /metrics,
// /debug/vars and /debug/pprof/ for the live worker. -mesh arms the
// host-all-reduce fallback: if the aggregator dies mid-job the
// workers finish their tensors by ring all-reduce over the listed
// peer addresses (rank order; give every worker the same list, with
// each binding its own entry via -mesh-listen) and fail back once the
// aggregator answers probes again. -standby ranks warm-standby
// aggregators between those two tiers: a silent primary re-homes the
// job onto the first answering standby (run one switchml-agg per
// address), and only a fully silent ladder drops to the mesh.
//
// Elastic membership: -join enters a running job through the
// aggregator's membership fence (the aggregator must list this id in
// -absent, and the rest of the job must be actively training);
// -drain-after N gracefully leaves after N iterations. A SIGTERM (or
// SIGINT) also drains: the in-flight tensor finishes, the departure
// is announced, and the survivors keep training — the failure
// detector never fires.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"switchml"
)

func main() {
	aggAddr := flag.String("agg", "127.0.0.1:5555", "aggregator UDP address")
	id := flag.Int("id", 0, "this worker's id")
	workers := flag.Int("workers", 2, "number of workers (n)")
	pool := flag.Int("pool", 64, "pool size (s); must match the aggregator")
	elems := flag.Int("elems-per-tensor", 1_000_000, "tensor length per iteration")
	iters := flag.Int("iters", 10, "number of all-reduce iterations")
	job := flag.Uint("job", 0, "job id")
	rto := flag.Duration("rto", 50*time.Millisecond, "retransmission timeout")
	heartbeat := flag.Duration("heartbeat", 0,
		"liveness beacon period (0 = off); set well below the aggregator's -liveness threshold")
	adaptiveRTO := flag.Bool("adaptive-rto", false,
		"estimate the retransmission timeout from measured RTTs (Jacobson/Karn) instead of the fixed -rto")
	standby := flag.String("standby", "",
		"comma-separated warm-standby aggregator addresses, ladder order; needs -mesh (the silence detector lives there)")
	mesh := flag.String("mesh", "",
		"comma-separated mesh addresses of every worker, rank order (arms the host-all-reduce fallback)")
	meshListen := flag.String("mesh-listen", "",
		"mesh socket listen address, e.g. :7001 (default: ephemeral port)")
	degradedMode := flag.Bool("degraded-mode", false,
		"with -mesh, never fail back to the aggregator: run the whole job on host ring all-reduce once degraded")
	debug := flag.String("debug", "", "optional HTTP address exposing /metrics, expvar and pprof")
	flightDir := flag.String("flight-dir", "",
		"arm a fault flight recorder: degrade/failback transitions dump JSON incident files into this directory")
	join := flag.Bool("join", false,
		"join a running job through the membership fence (the aggregator must list this id in -absent)")
	drainAfter := flag.Int("drain-after", 0,
		"gracefully leave the job after this many iterations (0 = run all -iters); SIGTERM/SIGINT also drain")
	verify := flag.Bool("verify", true,
		"check the first aggregated element against the full-membership sum (disable in elastic jobs, where membership churn changes the expected sums)")
	batch := flag.Int("batch", 0,
		"I/O burst ceiling: datagrams per batched send/receive syscall (0 = 32, 1 = legacy per-packet syscalls)")
	busyPoll := flag.Bool("busy-poll", false,
		"spin briefly on an empty socket before parking in the poller (lower latency, more CPU)")
	injectDrop := flag.Float64("inject-drop", 0,
		"chaos: per-datagram drop probability applied to outgoing updates (loopback never drops on its own)")
	injectBurst := flag.String("inject-burst", "",
		"chaos: Gilbert–Elliott burst loss on outgoing updates as \"pGoodToBad,pBadToGood,lossGood,lossBad\" (replaces -inject-drop)")
	injectSeed := flag.Int64("inject-seed", 1,
		"seed for the chaos injector's random stream (runs replay per seed)")
	flag.Parse()

	elastic := *join || *drainAfter > 0
	if elastic && *verify {
		// Membership churn makes the static expected sum wrong for
		// every member, so elastic modes imply -verify=false.
		*verify = false
	}

	params := switchml.PeerParams{
		ID:          *id,
		Workers:     *workers,
		PoolSize:    *pool,
		JobID:       uint16(*job),
		RTO:         *rto,
		Heartbeat:   *heartbeat,
		AdaptiveRTO: *adaptiveRTO,
		Batch:       *batch,
		BusyPoll:    *busyPoll,
	}
	if *flightDir != "" {
		params.Flight = &switchml.FlightParams{Dir: *flightDir}
	}
	if *injectDrop > 0 || *injectBurst != "" {
		inj := &switchml.FaultInjection{Seed: *injectSeed, DropRate: *injectDrop}
		if *injectBurst != "" {
			var b switchml.BurstLossParams
			if n, err := fmt.Sscanf(*injectBurst, "%g,%g,%g,%g",
				&b.PGoodToBad, &b.PBadToGood, &b.LossGood, &b.LossBad); n != 4 || err != nil {
				log.Fatalf("-inject-burst: want \"pGoodToBad,pBadToGood,lossGood,lossBad\", got %q", *injectBurst)
			}
			inj.Burst = &b
			inj.DropRate = 0
		}
		params.Inject = inj
	}
	if *mesh != "" {
		fb := &switchml.FallbackParams{Listen: *meshListen, Peers: strings.Split(*mesh, ",")}
		if *degradedMode {
			fb.Probation = -1
		}
		params.Fallback = fb
	} else if *degradedMode {
		log.Fatal("-degraded-mode needs -mesh (the host fabric's addresses)")
	}
	if *standby != "" {
		if params.Fallback == nil {
			log.Fatal("-standby needs -mesh (the silence detector and probation window live in the fallback controller)")
		}
		params.Standbys = strings.Split(*standby, ",")
	}
	peer, err := switchml.DialAggregator(*aggAddr, params)
	if err != nil {
		log.Fatal(err)
	}
	defer peer.Close()
	if params.Fallback != nil {
		fmt.Printf("switchml-worker %d: fallback mesh at %s\n", *id, peer.MeshAddr())
	}
	if *debug != "" {
		bound, err := peer.ServeDebug(*debug)
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		fmt.Printf("switchml-worker %d: debug at http://%s/metrics\n", *id, bound)
	}

	tensor := make([]int32, *elems)
	for i := range tensor {
		tensor[i] = int32(*id + i)
	}
	// Incumbents answer joiners' state-fetch requests over the mesh
	// with their current model (here: the synthetic tensor).
	peer.SetStateProvider(func() []int32 { return tensor })

	if *join {
		fmt.Printf("switchml-worker %d: joining the running job...\n", *id)
		state, err := peer.JoinCluster()
		if err != nil {
			log.Fatalf("join: %v", err)
		}
		if state != nil {
			fmt.Printf("switchml-worker %d: admitted at frontier %d with %d model elements from a peer\n",
				*id, peer.Frontier(), len(state))
		} else {
			fmt.Printf("switchml-worker %d: admitted at frontier %d (no peer state available)\n",
				*id, peer.Frontier())
		}
	}

	// A SIGTERM or SIGINT requests a graceful drain: the in-flight
	// iteration finishes, then the worker announces its departure and
	// exits without ever tripping the aggregator's failure detector.
	var drainRequested atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-sigc
		fmt.Printf("switchml-worker %d: drain requested, finishing in-flight work\n", *id)
		drainRequested.Store(true)
		<-sigc // a second signal exits immediately
		os.Exit(1)
	}()

	fmt.Printf("switchml-worker %d/%d: aggregating %d x %d elements via %s\n",
		*id, *workers, *iters, *elems, *aggAddr)

	var total time.Duration
	completed := 0
	for it := 0; it < *iters; it++ {
		start := time.Now()
		out, err := peer.AllReduceInt32(tensor)
		if err != nil {
			log.Fatalf("iteration %d: %v", it, err)
		}
		elapsed := time.Since(start)
		total += elapsed
		completed++
		if *verify {
			// Verify the first element: sum over w of (w + i) at i=0.
			want := int32(*workers * (*workers - 1) / 2)
			if out[0] != want {
				log.Fatalf("iteration %d: aggregate[0] = %d, want %d", it, out[0], want)
			}
		}
		fmt.Printf("  iter %2d: %8s  %6.1fM elems/s\n",
			it, elapsed.Round(time.Millisecond), float64(*elems)/elapsed.Seconds()/1e6)
		if drainRequested.Load() || (*drainAfter > 0 && completed >= *drainAfter) {
			if err := peer.Drain(); err != nil {
				if errors.Is(err, switchml.ErrDrained) {
					break
				}
				log.Fatalf("drain: %v", err)
			}
			fmt.Printf("switchml-worker %d: drained after %d iteration(s); survivors keep training\n",
				*id, completed)
			break
		}
	}
	if completed > 0 {
		fmt.Printf("done: mean %6.1fM elems/s over %d iteration(s)\n",
			float64(*elems)*float64(completed)/total.Seconds()/1e6, completed)
	}
	if st := peer.FailoverStats(); st.Rehomes > 0 {
		fmt.Printf("failover ladder: %d re-homing(s), %d adoption request(s), %d climb(s) back to the primary (home rank now %d)\n",
			st.Rehomes, st.AdoptRequests, st.Failbacks, peer.HomeRank())
	}
	if st := peer.FallbackStats(); st.Degrades > 0 {
		fmt.Printf("fabric handoffs: %d degrade(s), %d failback(s), %d tensors (%d elems) on the host mesh\n",
			st.Degrades, st.Failbacks, st.HostRounds, st.HostElems)
	}
}
