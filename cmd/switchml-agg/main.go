// Command switchml-agg runs a software SwitchML aggregator — the §6
// "parameter aggregator" deployment model — on a UDP port.
//
// Usage:
//
//	switchml-agg -listen :5555 -workers 4 [-pool 64] [-elems 32]
//	    [-jobs 1] [-job-base 0] [-metrics :9100] [-debug :6060]
//	    [-liveness 500ms] [-absent 3] [-quorum 3] [-late-policy drop]
//	    [-down-after 2s] [-down-for 2s]
//
// -down-after / -down-for script a failover drill: the aggregation
// program goes silent (datagrams dropped, socket still bound — what a
// dead switch program looks like under a live crossbar) and
// optionally revives, driving workers armed with -standby and -mesh
// down and back up their failover ladder.
//
// With -jobs 1 it serves a single pool (switchml.ListenAggregator);
// with -jobs N it serves N pools with job ids job-base..job-base+N-1,
// which multi-tenant deployments and sharded multi-core workers
// (switchml.DialSharded) both use. Workers connect with matching
// parameters; the aggregator learns their addresses from their first
// packets, so no registration is needed.
//
// Elastic membership (single-pool mode, needs -liveness): -absent
// lists worker ids that start outside the job and may join later
// (switchml-worker -join); -quorum N completes each slot once N of
// the current members contributed, with late straggler updates
// handled per -late-policy (drop or reconcile).
//
// -metrics exposes the switch counters as JSON over HTTP at /stats.
// -debug starts the introspection listener: /metrics (plain-text
// counter dump), /debug/vars (expvar) and /debug/pprof/ (profiles of
// the live aggregator).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"switchml"
)

func main() {
	listen := flag.String("listen", ":5555", "UDP listen address")
	workers := flag.Int("workers", 2, "number of workers per aggregation (n)")
	pool := flag.Int("pool", 64, "aggregator pool size (s)")
	elems := flag.Int("elems", 32, "elements per packet (k)")
	jobs := flag.Int("jobs", 1, "number of pools to serve (tenants or worker shards)")
	jobBase := flag.Uint("job-base", 0, "first job id")
	metrics := flag.String("metrics", "", "optional HTTP address exposing /stats")
	debug := flag.String("debug", "", "optional HTTP address exposing /metrics, expvar and pprof")
	liveness := flag.Duration("liveness", 0,
		"failure-detector silence threshold (0 = off); workers silent this long are evicted and the job resumes among survivors")
	flightDir := flag.String("flight-dir", "",
		"arm a fault flight recorder: fault transitions dump JSON incident files (recent events, metric delta, per-slot state) into this directory")
	absent := flag.String("absent", "",
		"comma-separated worker ids that start outside the membership and may join later (requires -liveness; single-pool mode)")
	quorum := flag.Int("quorum", 0,
		"complete each slot once this many members contributed (0 = full participation); stragglers handled per -late-policy")
	latePolicy := flag.String("late-policy", "drop",
		"fate of straggler updates arriving after quorum completion: drop or reconcile")
	batch := flag.Int("batch", 0,
		"per-shard I/O burst ceiling: datagrams per recvmmsg/sendmmsg (0 = 32, 1 = legacy per-packet syscalls)")
	busyPoll := flag.Bool("busy-poll", false,
		"spin briefly on an empty socket before parking in the poller (lower latency, more CPU)")
	downAfter := flag.Duration("down-after", 0,
		"failover drill: this long after startup, silently drop every datagram as a dead switch program would (0 = never; single-pool mode)")
	downFor := flag.Duration("down-for", 0,
		"failover drill: revive the program this long after -down-after (0 = stay down)")
	flag.Parse()

	params := switchml.AggregatorParams{
		Workers:   *workers,
		PoolSize:  *pool,
		SlotElems: *elems,
		Quorum:    *quorum,
		Batch:     *batch,
		BusyPoll:  *busyPoll,
	}
	switch *latePolicy {
	case "drop":
		params.LatePolicy = switchml.LateDrop
	case "reconcile":
		params.LatePolicy = switchml.LateReconcile
	default:
		log.Fatalf("switchml-agg: -late-policy must be drop or reconcile, got %q", *latePolicy)
	}
	if *absent != "" {
		for _, part := range strings.Split(*absent, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("switchml-agg: -absent: bad worker id %q", part)
			}
			params.Absent = append(params.Absent, w)
		}
		if *liveness <= 0 {
			log.Fatal("switchml-agg: -absent requires -liveness (elastic membership rides on the failure detector)")
		}
	}
	if *liveness > 0 {
		params.Liveness = &switchml.LivenessParams{SilenceAfter: *liveness}
	}
	if *flightDir != "" {
		if *jobs > 1 {
			log.Printf("switchml-agg: -flight-dir applies only to single-pool mode; ignored with -jobs > 1")
		} else {
			params.Flight = &switchml.FlightParams{Dir: *flightDir}
		}
	}

	var statsFn func() any
	var debugFn func(string) (string, error)
	var addr string
	if *jobs <= 1 {
		params.JobID = uint16(*jobBase)
		agg, err := switchml.ListenAggregator(*listen, params)
		if err != nil {
			log.Fatal(err)
		}
		defer agg.Close()
		addr = agg.Addr()
		statsFn = func() any { return agg.Stats() }
		debugFn = agg.ServeDebug
		if *downAfter > 0 {
			agg := agg
			time.AfterFunc(*downAfter, func() {
				fmt.Println("switchml-agg: drill: aggregation program down")
				agg.SetDown(true)
				if *downFor > 0 {
					time.AfterFunc(*downFor, func() {
						fmt.Println("switchml-agg: drill: aggregation program revived")
						agg.SetDown(false)
					})
				}
			})
		}
	} else {
		if params.Liveness != nil {
			log.Printf("switchml-agg: -liveness applies only to single-pool mode; ignored with -jobs > 1")
		}
		if *downAfter > 0 {
			log.Printf("switchml-agg: -down-after applies only to single-pool mode; ignored with -jobs > 1")
		}
		if len(params.Absent) > 0 || params.Quorum > 0 {
			log.Printf("switchml-agg: -absent and -quorum apply only to single-pool mode; ignored with -jobs > 1")
			params.Absent = nil
			params.Quorum = 0
		}
		m, err := switchml.ListenMultiAggregator(*listen, 0)
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		if err := m.AdmitShardedJob(uint16(*jobBase), *jobs, params); err != nil {
			log.Fatal(err)
		}
		addr = m.Addr()
		debugFn = m.ServeDebug
		statsFn = func() any {
			out := map[string]any{}
			for j := 0; j < *jobs; j++ {
				id := uint16(*jobBase) + uint16(j)
				if st, ok := m.JobStats(id); ok {
					out[fmt.Sprintf("job%d", id)] = st
				}
			}
			return out
		}
	}
	fmt.Printf("switchml-agg: serving %d pool(s) for %d-worker jobs on %s (pool %d, k=%d)\n",
		*jobs, *workers, addr, *pool, *elems)

	if *metrics != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(statsFn())
		})
		// Keep the server value in hand so the goroutine has a
		// shutdown path: the deferred srv.Close unblocks Serve.
		srv := &http.Server{Handler: mux}
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatalf("switchml-agg: metrics server: %v", err)
		}
		defer srv.Close()
		go srv.Serve(ln)
		fmt.Printf("switchml-agg: stats at http://%s/stats\n", ln.Addr())
	}
	if *debug != "" {
		bound, err := debugFn(*debug)
		if err != nil {
			log.Fatalf("switchml-agg: debug server: %v", err)
		}
		fmt.Printf("switchml-agg: debug at http://%s/metrics and http://%s/debug/pprof/\n", bound, bound)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("switchml-agg: shutting down")
}
