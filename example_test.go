package switchml_test

import (
	"fmt"
	"sync"

	"switchml"
)

// ExampleNewCluster shows the minimal in-process all-reduce: two
// workers sum integer tensors through the software switch.
func ExampleNewCluster() {
	cluster, err := switchml.NewCluster(2)
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	results := make([][]int32, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], _ = cluster.Worker(i).AllReduceInt32([]int32{int32(i + 1), 10})
		}()
	}
	wg.Wait()
	fmt.Println(results[0], results[1])
	// Output: [3 20] [3 20]
}

// ExampleMaxSafeScale derives the largest overflow-safe quantization
// factor for a job (Theorem 2 of the paper's Appendix C).
func ExampleMaxSafeScale() {
	scale, err := switchml.MaxSafeScale(8, 29.24)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.3g\n", scale)
	// Output: 9.18e+06
}

// ExampleNewSession shows the streaming integration layer: gradient
// tensors submitted per layer, aggregated in order while later layers
// are still being produced.
func ExampleNewSession() {
	cluster, err := switchml.NewCluster(2, switchml.WithScale(1e6))
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	sums := make([]float32, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, _ := switchml.NewSession(cluster.Worker(i), 4)
			defer sess.Close()
			f1, _ := sess.SubmitFloat32([]float32{1.5})
			f2, _ := sess.SubmitFloat32([]float32{0.25})
			out1, _ := f1.Wait()
			out2, _ := f2.Wait()
			sums[i] = out1[0] + out2[0]
		}()
	}
	wg.Wait()
	fmt.Println(sums[0], sums[1])
	// Output: 3.5 3.5
}

// ExampleSimulateRack runs a deterministic rack simulation, the
// entry point for reproducing the paper's measurements.
func ExampleSimulateRack() {
	tensor := make([]int32, 320000)
	for i := range tensor {
		tensor[i] = 2
	}
	res, err := switchml.SimulateRack(switchml.SimParams{Workers: 8, Seed: 1}, tensor)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Aggregate[0], res.PoolSize, res.Retransmissions)
	// Output: 16 128 0
}
