package switchml

import (
	"fmt"
	"sync"

	"switchml/internal/core"
	"switchml/internal/packet"
	"switchml/internal/quant"
)

// Option customizes a Cluster.
type Option func(*clusterOptions) error

type clusterOptions struct {
	poolSize  int
	slotElems int
	scale     float64
	f16scale  float64
	jobID     uint16
}

// WithPoolSize sets s, the number of aggregator slots (default 64).
// Larger pools admit more in-flight chunks per worker (§3.6 of the
// paper); in-process clusters are latency-free, so the default is
// modest.
func WithPoolSize(s int) Option {
	return func(o *clusterOptions) error {
		if s <= 0 {
			return fmt.Errorf("switchml: pool size must be positive, got %d", s)
		}
		o.poolSize = s
		return nil
	}
}

// WithSlotElems sets k, the elements aggregated per packet (default
// 32, the paper's Tofino limit).
func WithSlotElems(k int) Option {
	return func(o *clusterOptions) error {
		if k <= 0 {
			return fmt.Errorf("switchml: slot elements must be positive, got %d", k)
		}
		o.slotElems = k
		return nil
	}
}

// WithScale sets the fixed-point scaling factor f used by the
// float32 all-reduce methods (Appendix C). Without it, float32
// aggregation returns an error. Use MaxSafeScale to derive f from a
// gradient bound.
func WithScale(f float64) Option {
	return func(o *clusterOptions) error {
		if _, err := quant.NewFixedPoint(f); err != nil {
			return err
		}
		o.scale = f
		return nil
	}
}

// WithFloat16 selects the paper's 16-bit floating point mode (§3.7):
// float32 all-reduce sends two IEEE-754 halves per wire element —
// halving the bytes on the wire — while the switch converts halves to
// 32-bit fixed point (scaled by f) at ingress and back at egress, as
// the Tofino lookup tables do. Mutually exclusive with WithScale.
func WithFloat16(f float64) Option {
	return func(o *clusterOptions) error {
		if _, err := quant.NewFixedPoint(f); err != nil {
			return err
		}
		o.f16scale = f
		return nil
	}
}

// WithJobID tags the cluster's packets for multi-tenant deployments.
func WithJobID(id uint16) Option {
	return func(o *clusterOptions) error {
		o.jobID = id
		return nil
	}
}

// MaxSafeScale returns the largest scaling factor that cannot
// overflow 32-bit aggregation for n workers whose gradient entries
// are bounded by maxAbs (Theorem 2 of the paper's Appendix C).
func MaxSafeScale(workers int, maxAbs float64) (float64, error) {
	return quant.MaxSafeFactor(workers, maxAbs)
}

// Cluster is an in-process SwitchML deployment: n workers connected
// to a software switch over channels. Every worker must participate
// in every all-reduce (the collective is a barrier), each from its
// own goroutine.
type Cluster struct {
	opts    clusterOptions
	n       int
	swIn    chan *packet.Packet
	workers []*Worker
	quant   *quant.FixedPoint

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewCluster builds a cluster of n workers and starts its switch
// goroutine.
func NewCluster(n int, opts ...Option) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("switchml: worker count must be positive, got %d", n)
	}
	o := clusterOptions{poolSize: 64, slotElems: packet.DefaultElems}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.scale > 0 && o.f16scale > 0 {
		return nil, fmt.Errorf("switchml: WithScale and WithFloat16 are mutually exclusive")
	}
	var codec core.Codec
	if o.f16scale > 0 {
		c, err := core.NewPackedHalfCodec(o.f16scale)
		if err != nil {
			return nil, err
		}
		codec = c
	}
	sw, err := core.NewSwitch(core.SwitchConfig{
		Workers:      n,
		PoolSize:     o.poolSize,
		SlotElems:    o.slotElems,
		LossRecovery: true,
		JobID:        o.jobID,
		Codec:        codec,
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		opts: o,
		n:    n,
		// Channels are sized so the self-clocked window never blocks:
		// at most s in-flight chunks per worker in each direction.
		swIn: make(chan *packet.Packet, n*(o.poolSize+1)),
		done: make(chan struct{}),
	}
	if o.scale > 0 {
		c.quant, _ = quant.NewFixedPoint(o.scale)
	}
	for i := 0; i < n; i++ {
		w, err := core.NewWorker(core.WorkerConfig{
			ID:           uint16(i),
			Workers:      n,
			PoolSize:     o.poolSize,
			SlotElems:    o.slotElems,
			LossRecovery: true,
			JobID:        o.jobID,
		})
		if err != nil {
			return nil, err
		}
		c.workers = append(c.workers, &Worker{
			cluster: c,
			sm:      w,
			in:      make(chan *packet.Packet, 2*(o.poolSize+1)),
		})
	}
	c.wg.Add(1)
	go c.switchLoop(sw)
	return c, nil
}

// Workers returns n.
func (c *Cluster) Workers() int { return c.n }

// Worker returns the endpoint for worker i. Each endpoint must be
// driven from a single goroutine.
func (c *Cluster) Worker(i int) *Worker { return c.workers[i] }

// Close shuts down the switch goroutine. In-flight all-reduce calls
// fail.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
}

// switchLoop is the software dataplane: one packet in, zero or more
// out.
func (c *Cluster) switchLoop(sw *core.Switch) {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case p := <-c.swIn:
			resp := sw.Handle(p)
			if resp.Pkt == nil {
				continue
			}
			if resp.Multicast {
				for _, w := range c.workers {
					select {
					case w.in <- resp.Pkt.Clone():
					case <-c.done:
						return
					}
				}
				continue
			}
			select {
			case c.workers[resp.Pkt.WorkerID].in <- resp.Pkt:
			case <-c.done:
				return
			}
		}
	}
}

// Worker is one participant's endpoint in an in-process Cluster.
type Worker struct {
	cluster *Cluster
	sm      *core.Worker
	in      chan *packet.Packet
}

// ID returns the worker's rank.
func (w *Worker) ID() int { return int(w.sm.Config().ID) }

// AllReduceInt32 sums u elementwise across all workers and returns
// the result. It blocks until every worker has contributed; all
// workers must call it collectively, with tensors of equal length.
func (w *Worker) AllReduceInt32(u []int32) ([]int32, error) {
	if len(u) == 0 {
		return nil, nil
	}
	for _, p := range w.sm.Start(u) {
		if err := w.send(p); err != nil {
			return nil, err
		}
	}
	for {
		select {
		case <-w.cluster.done:
			return nil, fmt.Errorf("switchml: cluster closed during all-reduce")
		case p := <-w.in:
			next, done := w.sm.HandleResult(p)
			if next != nil {
				if err := w.send(next); err != nil {
					return nil, err
				}
			}
			if done {
				out := make([]int32, len(u))
				copy(out, w.sm.Aggregate())
				return out, nil
			}
		}
	}
}

func (w *Worker) send(p *packet.Packet) error {
	select {
	case w.cluster.swIn <- p:
		return nil
	case <-w.cluster.done:
		return fmt.Errorf("switchml: cluster closed during all-reduce")
	}
}

// AllReduceFloat32 sums u elementwise across all workers. With
// WithScale it uses 32-bit fixed point on the wire; the result
// differs from exact float aggregation by at most n/f per element
// (Theorem 1 of Appendix C). With WithFloat16 it sends two halves per
// wire element, halving the bytes on the wire at half-precision
// accuracy (§3.7).
func (w *Worker) AllReduceFloat32(u []float32) ([]float32, error) {
	if w.cluster.opts.f16scale > 0 {
		return w.allReduceHalf(u)
	}
	if w.cluster.quant == nil {
		return nil, fmt.Errorf("switchml: float32 all-reduce needs WithScale or WithFloat16")
	}
	if len(u) == 0 {
		return nil, nil
	}
	q := make([]int32, len(u))
	if sat := w.cluster.quant.Quantize(q, u); sat > 0 {
		return nil, fmt.Errorf("switchml: %d elements saturated during quantization; lower the scale (see MaxSafeScale)", sat)
	}
	sum, err := w.AllReduceInt32(q)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(u))
	w.cluster.quant.Dequantize(out, sum)
	return out, nil
}

// allReduceHalf runs the float16 packed pipeline: pack pairs of
// halves into wire elements, aggregate through the codec-equipped
// switch, unpack.
func (w *Worker) allReduceHalf(u []float32) ([]float32, error) {
	if len(u) == 0 {
		return nil, nil
	}
	wire := make([]int32, (len(u)+1)/2)
	for i := range wire {
		lo := quant.Float16FromFloat32(u[2*i])
		hi := quant.Float16(0)
		if 2*i+1 < len(u) {
			hi = quant.Float16FromFloat32(u[2*i+1])
		}
		wire[i] = core.PackHalves(lo, hi)
	}
	sum, err := w.AllReduceInt32(wire)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(u))
	for i, v := range sum {
		lo, hi := core.UnpackHalves(v)
		out[2*i] = lo.Float32()
		if 2*i+1 < len(out) {
			out[2*i+1] = hi.Float32()
		}
	}
	return out, nil
}

// AllReduceMeanFloat32 averages u elementwise across all workers: the
// switch sums, the hosts divide by n (§3.3).
func (w *Worker) AllReduceMeanFloat32(u []float32) ([]float32, error) {
	out, err := w.AllReduceFloat32(u)
	if err != nil {
		return nil, err
	}
	inv := 1 / float32(w.cluster.n)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}
