package switchml

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestShardedPeerAllReduce(t *testing.T) {
	const (
		n      = 3
		shards = 4
		d      = 10001 // non-divisible by shards
	)
	m, err := ListenMultiAggregator("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.AdmitShardedJob(0, shards, AggregatorParams{Workers: n, PoolSize: 8}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	updates := make([][]int32, n)
	want := make([]int32, d)
	for i := range updates {
		updates[i] = make([]int32, d)
		for j := range updates[i] {
			updates[i][j] = int32(rng.Intn(201) - 100)
			want[j] += updates[i][j]
		}
	}

	var wg sync.WaitGroup
	results := make([][]int32, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp, err := DialSharded(m.Addr(), ShardedPeerParams{
				ID: i, Workers: n, Shards: shards, PoolSize: 8,
				RTO: 20 * time.Millisecond, Timeout: 10 * time.Second,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer sp.Close()
			results[i], errs[i] = sp.AllReduceInt32(updates[i])
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		for j := range want {
			if results[i][j] != want[j] {
				t.Fatalf("worker %d elem %d: got %d want %d", i, j, results[i][j], want[j])
			}
		}
	}
}

func TestShardedPeerFloat32(t *testing.T) {
	const n, shards = 2, 2
	m, err := ListenMultiAggregator("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.AdmitShardedJob(10, shards, AggregatorParams{Workers: n, PoolSize: 4}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	outs := make([][]float32, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp, err := DialSharded(m.Addr(), ShardedPeerParams{
				ID: i, Workers: n, Shards: shards, JobBase: 10, PoolSize: 4, Scale: 1e5,
				RTO: 20 * time.Millisecond,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer sp.Close()
			u := make([]float32, 777)
			for j := range u {
				u[j] = float32(i) + 0.5
			}
			outs[i], errs[i] = sp.AllReduceFloat32(u)
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		for j, v := range outs[i] {
			if v != 2 { // (0+0.5) + (1+0.5)
				t.Fatalf("worker %d elem %d: got %v want 2", i, j, v)
			}
		}
	}
}

func TestShardedPeerValidation(t *testing.T) {
	m, err := ListenMultiAggregator("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.AdmitShardedJob(0, 0, AggregatorParams{Workers: 1}); err == nil {
		t.Error("zero shards admitted")
	}
	if _, err := DialSharded(m.Addr(), ShardedPeerParams{ID: 0, Workers: 1, Shards: -1}); err == nil {
		t.Error("negative shards accepted")
	}
	if _, err := DialSharded(m.Addr(), ShardedPeerParams{ID: 0, Workers: 1, Scale: -1}); err == nil {
		t.Error("bad scale accepted")
	}
	sp, err := DialSharded(m.Addr(), ShardedPeerParams{ID: 0, Workers: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if sp.Shards() != 2 {
		t.Errorf("Shards = %d", sp.Shards())
	}
	if _, err := sp.AllReduceFloat32([]float32{1}); err == nil {
		t.Error("float32 without scale accepted")
	}
	if out, err := sp.AllReduceInt32(nil); out != nil || err != nil {
		t.Errorf("empty = %v, %v", out, err)
	}
}
