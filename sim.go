package switchml

import (
	"os"
	"time"

	"switchml/internal/core"
	"switchml/internal/netsim"
	"switchml/internal/rack"
	"switchml/internal/telemetry"
)

// LatePolicy selects what happens to a straggler's update arriving
// after its slot already completed at the quorum threshold.
type LatePolicy int

const (
	// LateDrop counts and discards late updates; the straggler's
	// gradient is excluded from that step (it still receives the
	// retained result, so it keeps pace with the stream).
	LateDrop LatePolicy = iota
	// LateReconcile folds a late update into the slot's next
	// aggregation phase, so the straggler's gradient lands one step
	// late instead of vanishing.
	LateReconcile
)

func (p LatePolicy) internal() core.LatePolicy {
	if p == LateReconcile {
		return core.LateReconcile
	}
	return core.LateDrop
}

// SimParams configures a deterministic single-rack simulation, the
// reproduction stand-in for the paper's testbed.
type SimParams struct {
	// Workers is n (required).
	Workers int
	// LinkGbps is the access-link rate in Gbps (default 10, the
	// paper's primary configuration).
	LinkGbps float64
	// PoolSize is s; zero applies the §3.6 tuning rule (next power of
	// two of BDP/b).
	PoolSize int
	// SlotElems is k (default 32).
	SlotElems int
	// LossRate is the per-link packet drop probability.
	LossRate float64
	// BurstLoss, when non-nil, replaces LossRate with a Gilbert–
	// Elliott burst-loss chain on every link (one independent chain
	// per link).
	BurstLoss *BurstLossParams
	// DupRate is the per-link packet duplication probability.
	DupRate float64
	// CorruptRate is the per-link corruption probability; corrupted
	// packets are dropped by the receiver's checksum.
	CorruptRate float64
	// Faults, when non-nil, is a deterministic fault script: worker
	// crashes and restarts, switch restarts, link blackouts and loss
	// changes at scripted virtual times.
	Faults *FaultScenario
	// Liveness tunes the failure detector; nil accepts defaults, which
	// are enabled automatically when Faults includes crashes or switch
	// restarts.
	Liveness *LivenessParams
	// Health tunes the switch health monitor and degradation
	// controller; nil accepts defaults, which are enabled automatically
	// when Faults includes FaultKillSwitch (unless NoFallback is set).
	Health *HealthParams
	// StartDegraded starts the job on the host all-reduce fabric
	// instead of the switch, as if a degrade had already happened;
	// pair it with Health.Probation < 0 to pin it there (the host
	// baseline the BENCH_fallback experiment measures).
	StartDegraded bool
	// StandbySwitches provisions warm-standby aggregation programs
	// behind the same crossbar: when the health monitor declares the
	// serving switch silent, the job is re-homed onto the next standby
	// rung (pool wiped under a bumped generation, resumed at the chunk
	// frontier) instead of degrading straight to host all-reduce. The
	// mesh remains the rung of last resort, and fail-up probation
	// returns the job to the primary once it answers probes again.
	// FaultKillStandby / FaultReviveStandby script standby outages.
	StandbySwitches int
	// StandbyLatency is the extra one-way latency charged on responses
	// served by a standby rung (it sits one hop deeper than the ToR);
	// zero selects 200 ns.
	StandbyLatency time.Duration
	// NoFallback opts out of degraded mode even when Faults kills the
	// switch: a dead switch then surfaces as ErrSwitchUnavailable
	// instead of a fabric handoff. With StandbySwitches set, the ladder
	// still runs — only the final mesh rung is removed, so a job whose
	// every rung is dead fails with ErrSwitchUnavailable.
	NoFallback bool
	// RTO is the retransmission timeout (default 1 ms, §5.5).
	RTO time.Duration
	// Cores is the per-worker core count (default 4, §5.1).
	Cores int
	// Seed drives the deterministic loss process.
	Seed int64
	// TraceFile, when non-empty, records every protocol event of the
	// run (transmissions, drops, retransmits, slot completions, shadow
	// reads, tensor spans) to a Chrome trace-event file that
	// chrome://tracing or https://ui.perfetto.dev can open.
	TraceFile string
	// SampleEvery, when positive, samples the run's metrics into time
	// series at this virtual-time period — counter rates, gauges
	// (including the health-mode gauge) and histogram interval
	// quantiles — reported in SimResult.Series.
	SampleEvery time.Duration
	// Quorum, when in [1, Workers), enables straggler mitigation: a
	// slot completes once this many distinct workers contributed, and
	// late updates are handled per LatePolicy. Zero (or Workers)
	// selects full participation.
	Quorum int
	// LatePolicy selects the fate of a straggler's update arriving
	// after its slot completed at quorum (LateDrop or LateReconcile).
	LatePolicy LatePolicy
	// Detached lists workers that exist in the rack but start outside
	// the job membership; a scripted FaultJoinWorker action admits
	// them at a step boundary (elastic join).
	Detached []int
	// FlightFile, when non-empty, arms a fault flight recorder: every
	// protocol event is retained in a ring, and each fault transition
	// (degrade, failback, reconfigure, crash detection) dumps a
	// self-contained JSON incident — the recent events, metric snapshot
	// and delta since the previous dump, and the switch's per-slot
	// state — to this path. The file is overwritten on each trigger, so
	// after the run it holds the last incident of the run.
	FlightFile string
}

// SimResult reports one simulated tensor aggregation.
type SimResult struct {
	// TAT is the tensor aggregation time of the slowest worker.
	TAT time.Duration
	// Retransmissions across all workers.
	Retransmissions uint64
	// PoolSize is the effective s after tuning.
	PoolSize int
	// Failed lists workers declared failed during the run (crashed or
	// evicted by the failure detector); their tensors were not
	// completed.
	Failed []int
	// Left lists workers that departed gracefully (FaultLeaveWorker) —
	// a clean exit, not a failure.
	Left []int
	// Detached lists workers outside the membership when the run
	// ended: never admitted, or gracefully departed.
	Detached []int
	// Aggregate is worker 0's result vector.
	Aggregate []int32
	// Counters is the run's protocol-counter dump: link traffic
	// (packets_sent, packets_delivered, packets_dropped, wire_bytes),
	// worker behaviour (worker_sent, worker_retransmissions, ...),
	// switch behaviour (switch_updates, switch_completions,
	// switch_shadow_reads, ...) and, when a health monitor ran, the
	// degradation controller (health_degrades, health_failbacks,
	// health_probes, health_probe_acks, host_aggregated_elems). With
	// StandbySwitches it also reports the failover ladder:
	// failover_rehomes (re-homings between rungs, descents and
	// fail-ups alike) and standby_updates / standby_completions (work
	// absorbed by standby rungs while the primary was down).
	Counters map[string]uint64
	// Series holds the sampled time series when SimParams.SampleEvery
	// is set, keyed by series name ("<counter>:rate", "<gauge>",
	// "<histogram>:p99", or a probe such as rack_pool_occupancy).
	Series map[string]Series
}

// SimulateRack aggregates one tensor (identical on every worker) on a
// simulated SwitchML rack and reports the timing. Results are
// bit-reproducible for a given seed.
func SimulateRack(params SimParams, tensor []int32) (SimResult, error) {
	cfg := rack.Config{
		Workers:         params.Workers,
		PoolSize:        params.PoolSize,
		SlotElems:       params.SlotElems,
		LinkBitsPerSec:  params.LinkGbps * 1e9,
		LossRate:        params.LossRate,
		DupRate:         params.DupRate,
		CorruptRate:     params.CorruptRate,
		RTO:             fromDuration(params.RTO),
		Cores:           params.Cores,
		LossRecovery:    true,
		Seed:            params.Seed,
		Faults:          params.Faults.internal(),
		Liveness:        params.Liveness.rack(),
		Health:          params.Health.rack(),
		StartDegraded:   params.StartDegraded,
		NoFallback:      params.NoFallback,
		StandbySwitches: params.StandbySwitches,
		StandbyLatency:  fromDuration(params.StandbyLatency),
		SampleEvery:     fromDuration(params.SampleEvery),
		Quorum:          params.Quorum,
		LatePolicy:      params.LatePolicy.internal(),
		Detached:        append([]int(nil), params.Detached...),
	}
	if params.BurstLoss != nil {
		ge := params.BurstLoss.internal()
		cfg.BurstLoss = &ge
	}
	var ring *telemetry.Ring
	if params.TraceFile != "" {
		ring = telemetry.NewRing(1 << 20)
		cfg.Tracer = ring
	}
	var rec *telemetry.FlightRecorder
	if params.FlightFile != "" {
		if cfg.Metrics == nil {
			cfg.Metrics = telemetry.NewRegistry()
		}
		rec = telemetry.NewFlightRecorder(telemetry.FlightConfig{
			Path:     params.FlightFile,
			Registry: cfg.Metrics,
		})
		if ring != nil {
			cfg.Tracer = telemetry.Fanout(ring, rec)
		} else {
			cfg.Tracer = rec
		}
	}
	r, err := rack.NewRack(cfg)
	if err != nil {
		return SimResult{}, err
	}
	if rec != nil {
		// Incidents embed the switch's per-slot state at dump time.
		rec.SetState(func() any { return r.PoolState(true) })
	}
	res, err := r.AllReduceShared(tensor)
	if err != nil {
		return SimResult{}, fabricErr(err)
	}
	if ring != nil {
		f, err := os.Create(params.TraceFile)
		if err != nil {
			return SimResult{}, err
		}
		if err := telemetry.WriteChromeTrace(f, ring.Events()); err != nil {
			f.Close()
			return SimResult{}, err
		}
		if err := f.Close(); err != nil {
			return SimResult{}, err
		}
	}
	// Report the first member's aggregate: when faults retire workers
	// mid-run (or elastic scripts detach them), worker 0 may hold no
	// completed tensor.
	survivor := 0
	skip := make(map[int]bool, len(res.Failed)+len(res.Detached))
	for _, w := range res.Failed {
		skip[w] = true
	}
	for _, w := range res.Detached {
		skip[w] = true
	}
	for skip[survivor] && survivor < params.Workers-1 {
		survivor++
	}
	agg := make([]int32, len(tensor))
	copy(agg, r.Aggregate(survivor))
	return SimResult{
		TAT:             res.TAT.Duration(),
		Retransmissions: res.Retransmissions,
		PoolSize:        r.Config().PoolSize,
		Failed:          append([]int(nil), res.Failed...),
		Left:            append([]int(nil), res.Left...),
		Detached:        append([]int(nil), res.Detached...),
		Aggregate:       agg,
		Counters:        r.Counters(),
		Series:          seriesFrom(r.Series()),
	}, nil
}

func fromDuration(d time.Duration) netsim.Time { return netsim.Time(d) }
