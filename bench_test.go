package switchml

// Benchmark harness: one testing.B benchmark per paper artifact
// (Table 1, Figures 2-8 and 10, plus the design ablations), each
// regenerating its table at a reduced scale through internal/bench,
// and micro-benchmarks of the protocol hot paths. Run the full-size
// experiments with cmd/switchml-bench -scale 1.

import (
	"io"
	"sync"
	"testing"

	"switchml/internal/bench"
	"switchml/internal/core"
	"switchml/internal/p4sim"
	"switchml/internal/packet"
	"switchml/internal/quant"
	"switchml/internal/rack"
)

// benchExperiment runs one experiment id per iteration at a fast
// scale.
func benchExperiment(b *testing.B, id string, scale int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Run(id, bench.Options{Scale: scale, Seed: 1, Log: io.Discard})
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// Table 1: training throughput, 8 workers @ 10 Gbps.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1", 100) }

// Figure 2: pool size vs TAT and RTT.
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2", 500) }

// Figure 3: training speedup for nine models at 10 and 100 Gbps.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3", 200) }

// Figure 4: ATE/s vs worker count for five strategies.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4", 200) }

// Figure 5: TAT inflation under packet loss.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5", 200) }

// Figure 6: packets-per-10ms timeline under loss.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6", 200) }

// Figure 7: TAT vs tensor size with MTU-sized packets.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7", 500) }

// Figure 8: TAT by data type (int32 / float32 / float16).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8", 500) }

// Figure 10: accuracy vs quantization scaling factor.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10", 100) }

// Ablations called out in DESIGN.md.
func BenchmarkAblationAlgorithm(b *testing.B) { benchExperiment(b, "ablation-algorithm", 200) }
func BenchmarkAblationRTO(b *testing.B)       { benchExperiment(b, "ablation-rto", 200) }
func BenchmarkAblationPool(b *testing.B)      { benchExperiment(b, "ablation-pool", 200) }

// Extension experiments covering the §5.4/§6 discussion points.
func BenchmarkMultiTenant(b *testing.B) { benchExperiment(b, "multitenant", 200) }
func BenchmarkStraggler(b *testing.B)   { benchExperiment(b, "straggler", 200) }
func BenchmarkRDMA(b *testing.B)        { benchExperiment(b, "rdma", 200) }
func BenchmarkScaling(b *testing.B)     { benchExperiment(b, "scaling", 500) }

// BenchmarkPipelineHandle measures the executable P4-style pipeline
// (per-stage register RMWs) against BenchmarkSwitchHandle's plain
// state machine.
func BenchmarkPipelineHandle(b *testing.B) {
	const n = 8
	ps, err := p4sim.NewPipelineSwitch(p4sim.Tofino64x100G(), n, 64, 32)
	if err != nil {
		b.Fatal(err)
	}
	vec := make([]int32, 32)
	pkts := make([]*packet.Packet, n)
	for w := range pkts {
		pkts[w] = packet.NewUpdate(uint16(w), 0, 0, 0, 0, vec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i%n]
		p.Ver = uint8(i / n % 2)
		p.Off = uint64(i / n * 32)
		ps.Handle(p)
	}
}

// BenchmarkSwitchHandle measures the software dataplane: one update
// packet through Algorithm 3.
func BenchmarkSwitchHandle(b *testing.B) {
	const n = 8
	sw, err := core.NewSwitch(core.SwitchConfig{Workers: n, PoolSize: 64, SlotElems: 32, LossRecovery: true})
	if err != nil {
		b.Fatal(err)
	}
	vec := make([]int32, 32)
	pkts := make([]*packet.Packet, n)
	for w := range pkts {
		pkts[w] = packet.NewUpdate(uint16(w), 0, 0, 0, 0, vec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i%n]
		p.Ver = uint8(i / n % 2)
		p.Off = uint64(i / n * 32)
		sw.Handle(p)
	}
	b.ReportMetric(float64(32), "elems/op")
}

// BenchmarkSwitchHandleInto measures the same ingress through the
// borrow-based hot path: the reply vector is served from the slot's
// storage (or the caller's scratch packet) instead of a fresh
// allocation. Compare against BenchmarkSwitchHandle with benchstat.
func BenchmarkSwitchHandleInto(b *testing.B) {
	const n = 8
	sw, err := core.NewSwitch(core.SwitchConfig{Workers: n, PoolSize: 64, SlotElems: 32, LossRecovery: true})
	if err != nil {
		b.Fatal(err)
	}
	vec := make([]int32, 32)
	pkts := make([]*packet.Packet, n)
	for w := range pkts {
		pkts[w] = packet.NewUpdate(uint16(w), 0, 0, 0, 0, vec)
	}
	var out packet.Packet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i%n]
		p.Ver = uint8(i / n % 2)
		p.Off = uint64(i / n * 32)
		sw.HandleInto(p, &out)
	}
	b.ReportMetric(float64(32), "elems/op")
}

// BenchmarkShardedHandleInto measures ingress through ShardedSwitch's
// per-slot locks — the path every aggregator shard goroutine takes.
// Single-goroutine numbers isolate the lock overhead; the transport
// race tests cover contention.
func BenchmarkShardedHandleInto(b *testing.B) {
	const n = 8
	ss, err := core.NewShardedSwitch(core.SwitchConfig{Workers: n, PoolSize: 64, SlotElems: 32, LossRecovery: true})
	if err != nil {
		b.Fatal(err)
	}
	vec := make([]int32, 32)
	pkts := make([]*packet.Packet, n)
	for w := range pkts {
		pkts[w] = packet.NewUpdate(uint16(w), 0, 0, 0, 0, vec)
	}
	var out packet.Packet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i%n]
		p.Ver = uint8(i / n % 2)
		p.Off = uint64(i / n * 32)
		ss.HandleInto(p, &out)
	}
	b.ReportMetric(float64(32), "elems/op")
}

// BenchmarkPacketRoundTrip measures the pooled wire codec: one
// update packet appended into a reused buffer and decoded into a
// reused packet, as the transport send/receive loops do per datagram.
func BenchmarkPacketRoundTrip(b *testing.B) {
	vec := make([]int32, packet.DefaultElems)
	src := packet.NewUpdate(3, 1, 0, 7, 224, vec)
	var wire []byte
	var dst packet.Packet
	b.SetBytes(int64(len(src.Marshal())))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire = src.AppendMarshal(wire[:0])
		if err := packet.UnmarshalInto(&dst, wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkerPipeline measures the worker state machine: start,
// results, follow-ups for a full small tensor.
func BenchmarkWorkerPipeline(b *testing.B) {
	u := make([]int32, 32*64)
	w, err := core.NewWorker(core.WorkerConfig{ID: 0, Workers: 1, PoolSize: 16, SlotElems: 32, LossRecovery: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		queue := w.Start(u)
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			r := p.Clone()
			r.Kind = packet.KindResult
			next, _ := w.HandleResult(r)
			if next != nil {
				queue = append(queue, next)
			}
		}
	}
}

// BenchmarkQuantize measures the float32 -> int32 conversion path
// (the workers' SSE/AVX loop in the paper, §4).
func BenchmarkQuantize(b *testing.B) {
	q, err := quant.NewFixedPoint(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	src := make([]float32, 1<<16)
	dst := make([]int32, len(src))
	for i := range src {
		src[i] = float32(i%997) * 0.01
	}
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Quantize(dst, src)
	}
}

// BenchmarkDequantize measures the int32 -> float32 path.
func BenchmarkDequantize(b *testing.B) {
	q, err := quant.NewFixedPoint(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	src := make([]int32, 1<<16)
	dst := make([]float32, len(src))
	for i := range src {
		src[i] = int32(i)
	}
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Dequantize(dst, src)
	}
}

// BenchmarkFloat16Convert measures the half-precision codec used by
// the float16 pipeline (Figure 8).
func BenchmarkFloat16Convert(b *testing.B) {
	vals := make([]float32, 1<<14)
	for i := range vals {
		vals[i] = float32(i%2048)*0.25 - 128
	}
	b.SetBytes(int64(len(vals) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vals {
			_ = quant.Float16FromFloat32(v).Float32()
		}
	}
}

// BenchmarkPacketMarshal measures the UDP wire codec.
func BenchmarkPacketMarshal(b *testing.B) {
	p := packet.NewUpdate(3, 0, 1, 42, 4096, make([]int32, 32))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := p.Marshal()
		if _, err := packet.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterAllReduce measures the in-process public API end to
// end: 4 workers, 64K elements.
func BenchmarkClusterAllReduce(b *testing.B) {
	const n, d = 4, 1 << 16
	c, err := NewCluster(n)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	updates := make([][]int32, n)
	for i := range updates {
		updates[i] = make([]int32, d)
	}
	b.SetBytes(int64(d * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := c.Worker(w).AllReduceInt32(updates[w]); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}

// BenchmarkRackSimulation measures simulator throughput: events per
// second aggregating 1M elements on 8 workers.
func BenchmarkRackSimulation(b *testing.B) {
	u := make([]int32, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := rack.NewRack(rack.Config{Workers: 8, LossRecovery: true, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.AllReduceShared(u)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Sim().Processed()), "events/op")
		_ = res
	}
}
