package switchml

import (
	"sync"
	"testing"
	"time"

	"switchml/internal/ml"
	"switchml/internal/quant"
)

// TestDistributedTrainingOverUDP is the full-stack integration test:
// real SGD (internal/ml) on synthetic data, with every gradient
// aggregation quantized, chunked into SwitchML packets, sent over
// real UDP sockets to the software aggregator, integer-summed by the
// switch state machine, and dequantized — the complete system of the
// paper, end to end, in one test.
func TestDistributedTrainingOverUDP(t *testing.T) {
	const (
		workers = 3
		iters   = 120
	)
	agg, err := ListenAggregator("127.0.0.1:0", AggregatorParams{Workers: workers, PoolSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	ds, err := ml.GaussianMixture(7, 3000, 12, 3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	train, valid := ds.Split(0.8)

	scale, err := MaxSafeScale(workers, 64)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := quant.NewFixedPoint(scale)
	if err != nil {
		t.Fatal(err)
	}

	// One UDP peer per worker: every per-worker gradient crosses the
	// network separately and the switch performs the sum.
	peers := make([]*Peer, workers)
	for i := range peers {
		peers[i], err = DialAggregator(agg.Addr(), PeerParams{
			ID: i, Workers: workers, PoolSize: 16,
			RTO: 20 * time.Millisecond, Timeout: 20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer peers[i].Close()
	}
	var mu sync.Mutex
	netAgg := &ml.FixedPointAggregator{
		Fixed: fx,
		IntSum: func(out []int32, ints [][]int32) error {
			// Each worker sends its quantized gradient through its own
			// socket; the switch sums them; every worker receives the
			// same total. We keep worker 0's copy. The mutex serializes
			// iterations (the trainer is single-threaded anyway).
			mu.Lock()
			defer mu.Unlock()
			var wg sync.WaitGroup
			results := make([][]int32, workers)
			errs := make([]error, workers)
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					results[w], errs[w] = peers[w].AllReduceInt32(ints[w])
				}()
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			// All workers must hold the identical aggregate.
			for w := 1; w < workers; w++ {
				for i := range results[0] {
					if results[w][i] != results[0][i] {
						t.Errorf("worker %d aggregate diverges at %d", w, i)
						break
					}
				}
			}
			copy(out, results[0])
			return nil
		},
	}

	trainer, err := ml.NewTrainer(ml.TrainerConfig{
		Workers: workers, Features: 12, Classes: 3, Seed: 11,
	}, train, netAgg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := trainer.Run(iters, valid)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("UDP-trained accuracy = %.3f, want >= 0.9", acc)
	}
	if st := agg.Stats(); st.Completions == 0 {
		t.Error("aggregator saw no completions")
	}
}

// trainOverUDP runs iters of synchronous SGD over real UDP with the
// host-all-reduce fallback armed, invoking chaos (if non-nil) before
// each iteration, and returns the final model parameters plus worker
// 0's fallback counters.
func trainOverUDP(t *testing.T, iters int, chaos func(iter int, agg *Aggregator)) ([]float32, FallbackStats) {
	t.Helper()
	const workers = 3
	agg, err := ListenAggregator("127.0.0.1:0", AggregatorParams{Workers: workers, PoolSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	ds, err := ml.GaussianMixture(7, 3000, 12, 3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := ds.Split(0.8)
	scale, err := MaxSafeScale(workers, 64)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := quant.NewFixedPoint(scale)
	if err != nil {
		t.Fatal(err)
	}

	peers := make([]*Peer, workers)
	for i := range peers {
		peers[i], err = DialAggregator(agg.Addr(), PeerParams{
			ID: i, Workers: workers, PoolSize: 16,
			RTO: 10 * time.Millisecond, Timeout: 20 * time.Second,
			AdaptiveRTO: true,
			Fallback:    &FallbackParams{Probation: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer peers[i].Close()
	}
	mesh := make([]string, workers)
	for i, p := range peers {
		mesh[i] = p.MeshAddr()
	}
	for _, p := range peers {
		if err := p.SetMeshPeers(mesh); err != nil {
			t.Fatal(err)
		}
	}

	netAgg := &ml.FixedPointAggregator{
		Fixed: fx,
		IntSum: func(out []int32, ints [][]int32) error {
			var wg sync.WaitGroup
			results := make([][]int32, workers)
			errs := make([]error, workers)
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					results[w], errs[w] = peers[w].AllReduceInt32(ints[w])
				}()
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			for w := 1; w < workers; w++ {
				for i := range results[0] {
					if results[w][i] != results[0][i] {
						t.Errorf("worker %d aggregate diverges at %d", w, i)
						break
					}
				}
			}
			copy(out, results[0])
			return nil
		},
	}
	trainer, err := ml.NewTrainer(ml.TrainerConfig{
		Workers: workers, Features: 12, Classes: 3, Seed: 11,
	}, train, netAgg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		if chaos != nil {
			chaos(i, agg)
		}
		if _, err := trainer.Step(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	params := append([]float32(nil), trainer.Model().Params()...)
	return params, peers[0].FallbackStats()
}

// TestFaultTrainingSwitchKillBitIdentical is the end-to-end
// self-healing check: a training run whose aggregator is killed
// mid-job — forcing several iterations onto the host mesh before the
// revived switch takes back over — must finish with a model
// bit-identical to a fault-free run. Integer aggregation is exact and
// order-independent, so the fabric handoff must not perturb a single
// bit of the trajectory.
func TestFaultTrainingSwitchKillBitIdentical(t *testing.T) {
	const iters = 40
	clean, cleanStats := trainOverUDP(t, iters, nil)
	if cleanStats.Degrades != 0 {
		t.Fatalf("fault-free run degraded %d times", cleanStats.Degrades)
	}
	chaotic, st := trainOverUDP(t, iters, func(iter int, agg *Aggregator) {
		switch iter {
		case 15:
			agg.SetDown(true)
		case 19:
			agg.SetDown(false)
		}
	})
	if st.Degrades == 0 || st.HostRounds == 0 {
		t.Fatalf("chaos run never degraded: %+v", st)
	}
	if st.Failbacks == 0 {
		t.Fatalf("chaos run never failed back: %+v", st)
	}
	if len(clean) != len(chaotic) {
		t.Fatalf("model size mismatch: %d vs %d", len(clean), len(chaotic))
	}
	for i := range clean {
		if clean[i] != chaotic[i] {
			t.Fatalf("model diverges at parameter %d: %v (fault-free) vs %v (chaos)", i, clean[i], chaotic[i])
		}
	}
}
