package switchml

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"switchml/internal/ml"
	"switchml/internal/quant"
)

// maxQuorumAccuracyDivergence is the committed bound on how much
// validation accuracy a quorum run may lose to full participation.
// Straggler mitigation trades the slowest worker's gradient (dropped,
// or reconciled one step late) for not waiting on it; this constant is
// the contract that the trade stays small on the Appendix C workload.
const maxQuorumAccuracyDivergence = 0.05

// trainQuorumOverUDP trains the internal/ml model over real UDP with
// the given quorum settings, worker 2 artificially delayed by lag each
// iteration (the straggler), and returns the validation accuracy and
// the aggregator's final stats.
func trainQuorumOverUDP(t *testing.T, quorum int, policy LatePolicy, lag time.Duration) (float64, AggregatorStats) {
	t.Helper()
	const (
		workers = 3
		iters   = 100
	)
	agg, err := ListenAggregator("127.0.0.1:0", AggregatorParams{
		Workers: workers, PoolSize: 16,
		Quorum: quorum, LatePolicy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	ds, err := ml.GaussianMixture(7, 3000, 12, 3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	train, valid := ds.Split(0.8)
	scale, err := MaxSafeScale(workers, 64)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := quant.NewFixedPoint(scale)
	if err != nil {
		t.Fatal(err)
	}

	peers := make([]*Peer, workers)
	for i := range peers {
		peers[i], err = DialAggregator(agg.Addr(), PeerParams{
			ID: i, Workers: workers, PoolSize: 16,
			RTO: 20 * time.Millisecond, Timeout: 20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer peers[i].Close()
	}

	netAgg := &ml.FixedPointAggregator{
		Fixed: fx,
		IntSum: func(out []int32, ints [][]int32) error {
			var wg sync.WaitGroup
			results := make([][]int32, workers)
			errs := make([]error, workers)
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					if w == workers-1 && lag > 0 {
						// The straggler: its updates arrive after the
						// quorum already completed the slots.
						time.Sleep(lag)
					}
					results[w], errs[w] = peers[w].AllReduceInt32(ints[w])
				}()
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			// The model follows worker 0, a quorum member. (Under
			// quorum the straggler's own view may legitimately differ;
			// cross-worker equality is asserted only in the
			// full-participation tests.)
			copy(out, results[0])
			return nil
		},
	}
	trainer, err := ml.NewTrainer(ml.TrainerConfig{
		Workers: workers, Features: 12, Classes: 3, Seed: 11,
	}, train, netAgg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := trainer.Run(iters, valid)
	if err != nil {
		t.Fatal(err)
	}
	return acc, agg.Stats()
}

// TestQuorumTrainingAccuracyBound quantifies the straggler-mitigation
// trade: a 2-of-3 quorum run with one delayed worker must train to
// within maxQuorumAccuracyDivergence of the full-participation run,
// under both late policies. This is the accuracy contract behind
// AggregatorParams.Quorum / SimParams.Quorum.
func TestQuorumTrainingAccuracyBound(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 3 models over UDP")
	}
	full, fullStats := trainQuorumOverUDP(t, 0, LateDrop, 0)
	if fullStats.QuorumCompletions != 0 {
		t.Fatalf("full participation recorded %d quorum completions", fullStats.QuorumCompletions)
	}
	if full < 0.9 {
		t.Fatalf("full-participation accuracy = %.3f, want >= 0.9 (baseline broken)", full)
	}
	for _, tc := range []struct {
		name   string
		policy LatePolicy
	}{
		{"late-drop", LateDrop},
		{"late-reconcile", LateReconcile},
	} {
		t.Run(tc.name, func(t *testing.T) {
			acc, st := trainQuorumOverUDP(t, 2, tc.policy, 3*time.Millisecond)
			t.Logf("full=%.3f quorum=%.3f (quorum completions %d, late dropped %d, late reconciled %d, gone replies %d)",
				full, acc, st.QuorumCompletions, st.LateDropped, st.LateReconciled, st.GoneReplies)
			if st.QuorumCompletions == 0 {
				t.Error("quorum never completed a slot early; the straggler was never mitigated")
			}
			if tc.policy == LateReconcile && st.LateDropped > 0 {
				t.Errorf("reconcile policy dropped %d late updates", st.LateDropped)
			}
			if div := full - acc; div > maxQuorumAccuracyDivergence {
				t.Errorf("quorum accuracy %.3f diverges %.3f from full participation %.3f (bound %.2f)",
					acc, div, full, maxQuorumAccuracyDivergence)
			}
		})
	}
}

// TestQuorumSimTrainingAccuracyBound is the rack-simulator twin of the
// UDP bound: the trainer's integer sums run through SimulateRack under
// a 2-of-3 quorum. With equal-speed links every slot completes at
// exactly quorum contributions and LateDrop discards the rest, so the
// quorum aggregate normalized by the quorum size must reproduce the
// exact sum — the training trajectory must not diverge at all. Any
// torn aggregate (a slot mixing phases or folding a carry it should
// not) would push the accuracy outside the committed bound.
func TestQuorumSimTrainingAccuracyBound(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 2 models through the rack simulator")
	}
	const (
		workers = 3
		iters   = 60
	)
	ds, err := ml.GaussianMixture(7, 3000, 12, 3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	train, valid := ds.Split(0.8)
	scale, err := MaxSafeScale(workers, 64)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := quant.NewFixedPoint(scale)
	if err != nil {
		t.Fatal(err)
	}

	run := func(intSum func(out []int32, ints [][]int32) error) float64 {
		t.Helper()
		trainer, err := ml.NewTrainer(ml.TrainerConfig{
			Workers: workers, Features: 12, Classes: 3, Seed: 11,
		}, train, &ml.FixedPointAggregator{Fixed: fx, IntSum: intSum})
		if err != nil {
			t.Fatal(err)
		}
		acc, err := trainer.Run(iters, valid)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}

	// Baseline: exact in-process integer addition.
	exact := run(nil)

	// Quorum: every aggregation crosses a simulated rack with a 2-of-3
	// quorum. SimulateRack aggregates one shared tensor, so the
	// per-worker gradients are pre-summed; with symmetric links each
	// slot completes at exactly the quorum threshold, making the
	// aggregate quorum× the input.
	const quorum = 2
	step := 0
	quorumAcc := run(func(out []int32, ints [][]int32) error {
		step++
		sum := make([]int32, len(out))
		for _, iv := range ints {
			for i, v := range iv {
				sum[i] += v
			}
		}
		res, err := SimulateRack(SimParams{
			Workers: workers, LinkGbps: 10, PoolSize: 8, SlotElems: 8,
			Quorum: quorum, LatePolicy: LateDrop, Seed: int64(step),
		}, sum)
		if err != nil {
			return err
		}
		if rem := len(res.Failed) + len(res.Detached); rem != 0 {
			return fmt.Errorf("step %d: unexpected membership churn: %+v", step, res)
		}
		for i, v := range res.Aggregate {
			if v%quorum != 0 {
				return fmt.Errorf("step %d: aggregate[%d] = %d is not a clean %d-member sum (torn aggregate)",
					step, i, v, quorum)
			}
			out[i] = v / quorum
		}
		return nil
	})
	if quorumAcc != exact {
		t.Errorf("sim-quorum accuracy %.3f != exact %.3f: the normalized quorum trajectory must be bit-identical",
			quorumAcc, exact)
	}
	if exact < 0.9 {
		t.Errorf("exact accuracy = %.3f, want >= 0.9 (baseline broken)", exact)
	}
}
