// Training: estimate distributed DNN training throughput with
// SwitchML versus the NCCL and Gloo baselines, the workload that
// motivates the paper's introduction.
//
// The example runs the same per-tensor overlap timeline the paper's
// integration uses (gradient tensors stream to the aggregator as
// back-propagation emits them) for all nine benchmark models, and
// also demonstrates quantized training end to end on a small real
// model: gradients are scaled, aggregated as integers, and applied —
// verifying that accuracy matches exact aggregation (Appendix C).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"switchml/internal/allreduce"
	"switchml/internal/ml"
	"switchml/internal/quant"
)

func main() {
	const workers = 8

	// Communication rates at 10 Gbps: SwitchML at its line rate (the
	// simulator reproduces this; see cmd/switchml-bench fig4), the
	// TCP baselines at their calibrated stack efficiencies.
	switchML := ml.CommModel{Name: "switchml", ATEPerSec: allreduce.SwitchMLLineRateATE(10e9, 32), PerTensorOverhead: 50e-6}
	nccl := ml.CommModel{Name: "nccl", ATEPerSec: 0.38 * allreduce.RingLineRateATE(10e9, workers), PerTensorOverhead: 150e-6}
	gloo := ml.CommModel{Name: "gloo", ATEPerSec: 0.22 * allreduce.RingLineRateATE(10e9, workers), PerTensorOverhead: 150e-6}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\tideal\tswitchml\tnccl\tgloo\tspeedup-vs-nccl")
	for _, m := range ml.Zoo() {
		row := fmt.Sprintf("%s\t%.0f", m.Name, ml.IdealImagesPerSec(m, workers))
		var imgs [3]float64
		for i, comm := range []ml.CommModel{switchML, nccl, gloo} {
			res, err := ml.SimulateTraining(ml.TrainConfig{Model: m, Workers: workers, Comm: comm})
			if err != nil {
				log.Fatal(err)
			}
			imgs[i] = res.ImagesPerSec
			row += fmt.Sprintf("\t%.0f", res.ImagesPerSec)
		}
		fmt.Fprintf(tw, "%s\t%.1fx\n", row, imgs[0]/imgs[1])
	}
	tw.Flush()

	// Now a real (small) training run with quantized aggregation.
	fmt.Println("\nquantized SGD on synthetic data (4 workers):")
	ds, err := ml.GaussianMixture(1, 4000, 16, 4, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	train, valid := ds.Split(0.8)

	exact, err := ml.NewTrainer(ml.TrainerConfig{Workers: 4, Features: 16, Classes: 4, Seed: 7},
		train, ml.ExactAggregator{})
	if err != nil {
		log.Fatal(err)
	}
	exactAcc, err := exact.Run(300, valid)
	if err != nil {
		log.Fatal(err)
	}

	factor, err := quant.MaxSafeFactor(4, exact.MaxAbsGrad*2)
	if err != nil {
		log.Fatal(err)
	}
	fx, err := quant.NewFixedPoint(factor)
	if err != nil {
		log.Fatal(err)
	}
	quantized, err := ml.NewTrainer(ml.TrainerConfig{Workers: 4, Features: 16, Classes: 4, Seed: 7},
		train, &ml.FixedPointAggregator{Fixed: fx})
	if err != nil {
		log.Fatal(err)
	}
	qAcc, err := quantized.Run(300, valid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  exact aggregation:     %.3f validation accuracy\n", exactAcc)
	fmt.Printf("  fixed-point (f=%.3g): %.3f validation accuracy\n", factor, qAcc)
}
