// UDP: run SwitchML over real sockets — the §6 "parameter
// aggregator" deployment model — entirely on localhost.
//
// A software aggregator (the switch state machine behind a UDP
// socket) serves three worker processes, here goroutines with their
// own sockets. The same binary pattern works across machines: run
// cmd/switchml-agg on one host and cmd/switchml-worker on each
// worker.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"switchml"
)

func main() {
	const (
		workers = 3
		dim     = 100_000
	)
	agg, err := switchml.ListenAggregator("127.0.0.1:0", switchml.AggregatorParams{
		Workers: workers, PoolSize: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer agg.Close()
	fmt.Printf("software aggregator listening on %s\n", agg.Addr())

	scale, err := switchml.MaxSafeScale(workers, 100)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	results := make([][]float32, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			peer, err := switchml.DialAggregator(agg.Addr(), switchml.PeerParams{
				ID: i, Workers: workers, PoolSize: 16, Scale: scale,
			})
			if err != nil {
				log.Fatalf("worker %d: %v", i, err)
			}
			defer peer.Close()
			grad := make([]float32, dim)
			for j := range grad {
				grad[j] = float32(i+1) + float32(j%10)*0.1
			}
			results[i], err = peer.AllReduceFloat32(grad)
			if err != nil {
				log.Fatalf("worker %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	want := float64(1+2+3) + 3*float64(0%10)*0.1
	fmt.Printf("aggregated %d floats across %d UDP workers in %v\n", dim, workers, elapsed.Round(time.Millisecond))
	fmt.Printf("aggregate[0] = %.2f (want %.2f)\n", results[0][0], want)
	fmt.Printf("throughput: %.1fM elements/s end to end over loopback UDP\n",
		float64(dim)/elapsed.Seconds()/1e6)
}
