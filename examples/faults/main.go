// Faults: walk through the failure model of §5.6 on the deterministic
// rack simulator — worker crashes, a switch restart that wipes all
// register state, Gilbert–Elliott burst loss, and a switch whose
// aggregation program dies outright — and show the recovery machinery
// (failure detection, membership reconfiguration under a new job
// generation, resume from the global progress frontier, and hitless
// fallback to host ring all-reduce) keeping the surviving aggregate
// exact.
//
// Pass a file name as the first argument to also record the full
// crash → detect → reconfigure → resume timeline as a Chrome trace
// (open it at https://ui.perfetto.dev).
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"switchml"
)

const (
	n = 8
	d = 200_000
	k = 32
)

func simulate(name string, params switchml.SimParams, tensor []int32) switchml.SimResult {
	res, err := switchml.SimulateRack(params, tensor)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("%-22s TAT %8s  retransmissions %5d  failed %v\n",
		name, res.TAT.Round(10*time.Microsecond), res.Retransmissions, res.Failed)
	return res
}

// describe reports the aggregate's shape: how many elements carry the
// full-membership sum and how many the survivor-only sum. The single
// chunk-aligned transition is the global recovery frontier.
func describe(res switchml.SimResult, full, surv int32) {
	boundary := len(res.Aggregate)
	for j, v := range res.Aggregate {
		if v == surv && full != surv {
			boundary = j
			break
		}
	}
	for j, v := range res.Aggregate {
		want := full
		if j >= boundary {
			want = surv
		}
		if v != want {
			log.Fatalf("aggregate[%d] = %d, want %d — recovery broke correctness!", j, v, want)
		}
	}
	if boundary%k != 0 {
		log.Fatalf("recovery frontier %d is not chunk-aligned", boundary)
	}
	fmt.Printf("  %d elements aggregated by all %d workers, %d by the survivors — exact on both sides\n",
		boundary, n, len(res.Aggregate)-boundary)
}

func main() {
	tensor := make([]int32, d)
	for i := range tensor {
		tensor[i] = 1 // all-ones makes membership visible in the sums
	}

	// 1. Two workers crash mid-tensor, under 1% packet loss. The
	// controller notices the silence, retires them from the switch
	// membership under a new job generation (wiping the pool, so no
	// slot can mix contributions across generations) and resumes the
	// survivors from the minimum progress frontier.
	trace := ""
	if len(os.Args) > 1 {
		trace = os.Args[1]
	}
	res := simulate("crash 2 of 8", switchml.SimParams{
		Workers: n, LossRate: 0.01, RTO: 100 * time.Microsecond, Seed: 42,
		TraceFile: trace,
		Faults: &switchml.FaultScenario{Actions: []switchml.FaultAction{
			{Kind: switchml.FaultCrashWorker, Worker: 2, At: 100 * time.Microsecond},
			{Kind: switchml.FaultCrashWorker, Worker: 5, At: 140 * time.Microsecond},
		}},
	}, tensor)
	describe(res, n, n-2)
	if trace != "" {
		fmt.Printf("  timeline written to %s (crash → detect → reconfigure → resume)\n", trace)
	}

	// 2. The switch reboots mid-tensor, losing every register. Workers
	// keep retransmitting unanswered chunks; the controller re-runs
	// recovery with the membership unchanged, and the generation bump
	// guarantees no aggregate mixes state from before and after the
	// wipe.
	res = simulate("switch restart", switchml.SimParams{
		Workers: n, LossRate: 0.01, RTO: 100 * time.Microsecond, Seed: 43,
		Liveness: &switchml.LivenessParams{
			SilenceAfter: 1600 * time.Microsecond, CheckEvery: 50 * time.Microsecond,
		},
		Faults: &switchml.FaultScenario{Actions: []switchml.FaultAction{
			{Kind: switchml.FaultRestartSwitch, At: 80 * time.Microsecond},
		}},
	}, tensor)
	describe(res, n, n) // full membership: every element is exactly n

	// 3. A link blackout window: pure retransmission recovery, no
	// membership change — the blacked-out worker is back before the
	// silence threshold expires.
	res = simulate("200µs blackout", switchml.SimParams{
		Workers: n, RTO: 100 * time.Microsecond, Seed: 44,
		Faults: &switchml.FaultScenario{Actions: []switchml.FaultAction{
			{Kind: switchml.FaultLinkDown, Worker: 1, At: 50 * time.Microsecond},
			{Kind: switchml.FaultLinkUp, Worker: 1, At: 250 * time.Microsecond},
		}},
	}, tensor)
	describe(res, n, n)

	// 4. Gilbert–Elliott burst loss on every link: long loss-free
	// stretches punctuated by bursts dropping half of all packets.
	// Retransmission alone repairs it; the aggregate stays exact.
	res = simulate("burst loss", switchml.SimParams{
		Workers: n, RTO: 100 * time.Microsecond, Seed: 45,
		BurstLoss: &switchml.BurstLossParams{
			PGoodToBad: 0.002, PBadToGood: 0.1, LossGood: 0.0001, LossBad: 0.5,
		},
	}, tensor)
	describe(res, n, n)

	// 5. The hard case: the switch's aggregation *program* dies while
	// the crossbar keeps forwarding. No restart is coming, so waiting
	// cannot fix it. The health monitor notices the total silence,
	// degrades the job to host ring all-reduce at the chunk frontier
	// (everything below it keeps its switch aggregate; the hosts
	// re-aggregate the suffix from raw updates), and the tensor
	// completes without the switch — bit-identical to a fault-free
	// run, since int32 addition is exact on both fabrics.
	res = simulate("switch program death", switchml.SimParams{
		Workers: n, RTO: 100 * time.Microsecond, Seed: 46,
		Faults: &switchml.FaultScenario{Actions: []switchml.FaultAction{
			{Kind: switchml.FaultKillSwitch, At: 60 * time.Microsecond},
		}},
	}, tensor)
	describe(res, n, n)
	fmt.Printf("  %d degrade(s); %d of %d elements aggregated by the host fabric\n",
		res.Counters["health_degrades"], res.Counters["host_aggregated_elems"], d)

	// 6. The same run with the fallback declined: a dead switch is
	// then a typed, retryable error — the inputs were fine, the
	// fabric was not — so trainers can distinguish "retry later"
	// from "bad tensor".
	_, err := switchml.SimulateRack(switchml.SimParams{
		Workers: n, RTO: 100 * time.Microsecond, Seed: 46, NoFallback: true,
		Faults: &switchml.FaultScenario{Actions: []switchml.FaultAction{
			{Kind: switchml.FaultKillSwitch, At: 60 * time.Microsecond},
		}},
	}, tensor)
	if !errors.Is(err, switchml.ErrSwitchUnavailable) {
		log.Fatalf("NoFallback run: got %v, want ErrSwitchUnavailable", err)
	}
	fmt.Printf("%-22s ErrSwitchUnavailable (typed, retryable — as configured)\n", "…with NoFallback")

	fmt.Println("\nall surviving aggregates exact: failures cost time, never correctness (§5.6)")
}
