// Trace: record a lossy SwitchML aggregation as a Perfetto trace and
// a protocol-counter dump.
//
// The run aggregates a 2 MB tensor across 4 workers at 1% per-link
// loss with loss recovery on, then writes every protocol event —
// packet transmissions, drops, retransmissions, slot completions and
// shadow-copy reads — to trace.json in Chrome trace-event format.
// Open the file in chrome://tracing or https://ui.perfetto.dev: each
// worker, each link direction and the switch get their own track;
// tensor aggregations appear as spans, drops and recoveries as
// instant markers on the link and worker tracks.
//
// The counter dump printed afterwards is the same run seen through
// the metrics registry — the aggregate view whose per-event form is
// in the trace file.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"switchml"
)

func main() {
	tensor := make([]int32, 500_000)
	for i := range tensor {
		tensor[i] = int32(i % 97)
	}

	res, err := switchml.SimulateRack(switchml.SimParams{
		Workers:   4,
		LossRate:  0.01,
		RTO:       200 * time.Microsecond,
		Seed:      42,
		TraceFile: "trace.json",
	}, tensor)
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range res.Aggregate {
		if v != 4*tensor[i] {
			log.Fatalf("aggregate[%d] = %d, want %d — recovery broke correctness!",
				i, v, 4*tensor[i])
		}
	}

	fmt.Printf("aggregated %d elements across 4 workers at 1%% loss in %v\n",
		len(tensor), res.TAT.Round(time.Microsecond))
	fmt.Printf("wrote trace.json — open it in https://ui.perfetto.dev\n\n")

	fmt.Println("protocol counters:")
	keys := make([]string, 0, len(res.Counters))
	for k := range res.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-28s %d\n", k, res.Counters[k])
	}

	drops := res.Counters["packets_dropped"]
	retx := res.Counters["worker_retransmissions"]
	shadow := res.Counters["switch_shadow_reads"]
	fmt.Printf("\nevery one of the %d dropped packets was repaired: %d worker\n", drops, retx)
	fmt.Printf("retransmissions, of which %d hit already-complete slots and were\n", shadow)
	fmt.Println("answered from the switch's shadow copy (§3.5).")
}
