// Encrypted: aggregate model updates without the aggregator ever
// seeing plaintext — the Appendix D sketch, implemented.
//
// The paper notes that arbitrary computation over encrypted data is
// beyond switch ASICs, but that additively homomorphic cryptosystems
// (Paillier) reduce aggregation to ciphertext multiplication, which
// the §6 software "parameter aggregator" can perform. Here three
// workers quantize and encrypt gradient vectors; the aggregator
// multiplies ciphertexts with only the public key; workers decrypt
// the exact integer sum and rescale.
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"math/big"
	"time"

	"switchml/internal/paillier"
	"switchml/internal/quant"
)

func main() {
	const (
		workers = 3
		dim     = 64 // Paillier is ~10^6x slower than int32 adds; keep it small.
	)
	start := time.Now()
	key, err := paillier.GenerateKey(rand.Reader, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated 1024-bit Paillier key in %v\n", time.Since(start).Round(time.Millisecond))

	fx, err := quant.NewFixedPoint(1e6)
	if err != nil {
		log.Fatal(err)
	}

	// Workers: quantize float gradients and encrypt element-wise.
	exact := make([]float64, dim)
	ciphers := make([][]*big.Int, workers)
	encStart := time.Now()
	for w := 0; w < workers; w++ {
		grad := make([]float32, dim)
		for i := range grad {
			grad[i] = float32(w+1)*0.5 + float32(i)*0.01
			exact[i] += float64(grad[i])
		}
		q := make([]int32, dim)
		if sat := fx.Quantize(q, grad); sat != 0 {
			log.Fatal("quantization saturated")
		}
		ciphers[w], err = key.EncryptVector(rand.Reader, q)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("encrypted %d x %d elements in %v\n", workers, dim, time.Since(encStart).Round(time.Millisecond))

	// Aggregator: multiplies ciphertexts; it holds only the public
	// key and never observes a gradient.
	aggStart := time.Now()
	agg := ciphers[0]
	for w := 1; w < workers; w++ {
		if err := key.AddCipherVectors(agg, ciphers[w]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("aggregated ciphertexts in %v (E(x)·E(y) = E(x+y), Appendix D)\n",
		time.Since(aggStart).Round(time.Microsecond))

	// Workers: decrypt the sum and rescale.
	sums, err := key.DecryptSum(agg, workers)
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i, s := range sums {
		got := float64(s) / fx.Factor()
		if d := got - exact[i]; d > maxErr || -d > maxErr {
			maxErr = d
			if maxErr < 0 {
				maxErr = -maxErr
			}
		}
	}
	fmt.Printf("decrypted aggregate matches exact sum within %.2g (Theorem 1 bound %.2g)\n",
		maxErr, float64(workers)/fx.Factor())
	fmt.Println("\nthe aggregator computed the sum without ever seeing a gradient")
}
