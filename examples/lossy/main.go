// Lossy: demonstrate SwitchML's packet-loss recovery (§3.5) on the
// deterministic rack simulator, in the style of Figure 6.
//
// The example aggregates the same tensor at increasing loss rates and
// prints the transmission timeline of one worker — fresh sends and
// retransmissions per interval — showing the self-clocked sender
// holding near the ideal rate and recovering via the shadow-copy
// machinery. The aggregate is verified exact in every run.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"switchml"
)

func main() {
	tensor := make([]int32, 2_000_000)
	for i := range tensor {
		tensor[i] = int32(i % 101)
	}

	for _, loss := range []float64{0, 0.0001, 0.01} {
		res, err := switchml.SimulateRack(switchml.SimParams{
			Workers:  8,
			LossRate: loss,
			RTO:      time.Millisecond,
			Seed:     42,
		}, tensor)
		if err != nil {
			log.Fatal(err)
		}
		for i, v := range res.Aggregate {
			if v != 8*tensor[i] {
				log.Fatalf("loss %v: aggregate[%d] = %d, want %d — recovery broke correctness!",
					loss, i, v, 8*tensor[i])
			}
		}
		bar := strings.Repeat("#", int(res.TAT/(2*time.Millisecond))+1)
		fmt.Printf("loss %6.2f%%  TAT %8s  retransmissions %6d  %s\n",
			loss*100, res.TAT.Round(10*time.Microsecond), res.Retransmissions, bar)
	}
	fmt.Println("\nall aggregates exact: loss never corrupts results, only delays them (§3.5)")
	fmt.Printf("pool size auto-tuned per §3.6 to cover the bandwidth-delay product\n")
}
