// Quickstart: aggregate gradients across four in-process workers
// through the SwitchML protocol.
//
// Each worker goroutine contributes a float32 gradient vector; the
// software switch sums quantized updates exactly as the paper's
// programmable dataplane does (Algorithms 3 and 4), and every worker
// receives the identical aggregate.
package main

import (
	"fmt"
	"log"
	"sync"

	"switchml"
)

func main() {
	const (
		workers = 4
		dim     = 1 << 16
	)

	// Pick a scaling factor that cannot overflow 32-bit aggregation
	// for gradients bounded by 10 in magnitude (Appendix C,
	// Theorem 2).
	scale, err := switchml.MaxSafeScale(workers, 10)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := switchml.NewCluster(workers, switchml.WithScale(scale))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	results := make([][]float32, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			grad := make([]float32, dim)
			for j := range grad {
				grad[j] = float32(i+1) * 0.25 // worker-specific "gradient"
			}
			out, err := cluster.Worker(i).AllReduceFloat32(grad)
			if err != nil {
				log.Fatalf("worker %d: %v", i, err)
			}
			results[i] = out
		}()
	}
	wg.Wait()

	// Sum of (1+2+3+4)*0.25 = 2.5 at every position, on every worker.
	fmt.Printf("aggregated %d elements across %d workers\n", dim, workers)
	fmt.Printf("worker 0 sees aggregate[0] = %v (want 2.5)\n", results[0][0])
	for i := 1; i < workers; i++ {
		if results[i][0] != results[0][0] {
			log.Fatalf("workers disagree: %v vs %v", results[i][0], results[0][0])
		}
	}
	fmt.Println("all workers hold identical aggregates")
}
