// Multirack: hierarchical in-network aggregation across racks (§6
// "Scaling beyond a rack").
//
// Four racks of four workers each attach to layer-1 switches that
// aggregate locally and forward partial aggregates to a root switch.
// The rack uplinks carry one aggregated stream instead of sixteen
// worker streams — the bandwidth-optimality argument of §6 — and the
// composed loss recovery keeps results exact with loss on every link
// of the tree.
package main

import (
	"fmt"
	"log"

	"switchml/internal/hier"
	"switchml/internal/netsim"
)

func main() {
	const (
		racks          = 4
		workersPerRack = 4
		elems          = 1_000_000
	)
	u := make([]int32, elems)
	for i := range u {
		u[i] = int32(i%37 - 18)
	}

	for _, loss := range []float64{0, 0.005} {
		tree, err := hier.NewTree(hier.Config{
			Racks:          racks,
			WorkersPerRack: workersPerRack,
			LossRate:       loss,
			RTO:            500 * netsim.Microsecond,
			Seed:           7,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := tree.AllReduceShared(u)
		if err != nil {
			log.Fatal(err)
		}
		n := int32(tree.Workers())
		for w := 0; w < tree.Workers(); w++ {
			agg := tree.Aggregate(w)
			for i := range u {
				if agg[i] != n*u[i] {
					log.Fatalf("worker %d elem %d: got %d want %d", w, i, agg[i], n*u[i])
				}
			}
		}
		fmt.Printf("loss %5.2f%%: %d workers across %d racks aggregated %d elements in %v (retx %d)\n",
			loss*100, tree.Workers(), racks, elems, res.TAT, res.Retransmissions)
	}

	// The wire bound for a single rack: the hierarchy pays only the
	// extra hop latency, not extra bandwidth.
	wire := float64(elems/32*180*8) / 10e9 * 1e3
	fmt.Printf("\nsingle-rack wire bound: %.2f ms — the two-level tree tracks it because every\n", wire)
	fmt.Println("uplink carries one aggregated stream (bandwidth-optimal composition, §6)")
}
