// Pipeline: the ML-framework integration pattern of the paper (§4,
// Appendix B) — back-propagation emits one gradient tensor per layer,
// output side first, and each tensor streams to the aggregator while
// the next layers are still computing.
//
// Three workers run a mock backward pass over a VGG-like layer
// schedule; a Session per worker overlaps submission with
// aggregation, and the mean update is applied per layer as results
// arrive.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"switchml"
)

func main() {
	const workers = 3
	// A VGG-ish schedule, scaled down: the classifier layers (first in
	// backprop order) dominate the parameter count.
	layers := []int{410_000, 1_600_000, 250_000, 120_000, 60_000, 30_000, 8_000}

	scale, err := switchml.MaxSafeScale(workers, 10)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := switchml.NewCluster(workers, switchml.WithScale(scale), switchml.WithPoolSize(128))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := switchml.NewSession(cluster.Worker(w), 8)
			if err != nil {
				log.Fatal(err)
			}
			defer sess.Close()

			// "Backward pass": emit gradients layer by layer; each
			// submission overlaps the aggregation of earlier layers.
			futures := make([]*switchml.Future, len(layers))
			for li, d := range layers {
				grad := make([]float32, d)
				for j := range grad {
					grad[j] = float32(li+1) * 0.1
				}
				futures[li], err = sess.SubmitFloat32(grad)
				if err != nil {
					log.Fatal(err)
				}
			}
			// "Optimizer": apply each layer's mean update as it lands.
			for li, f := range futures {
				sum, err := f.Wait()
				if err != nil {
					log.Fatal(err)
				}
				mean := sum[0] / workers
				want := float32(li+1) * 0.1
				if mean != want {
					log.Fatalf("worker %d layer %d: mean %v, want %v", w, li, mean, want)
				}
			}
		}()
	}
	wg.Wait()

	total := 0
	for _, d := range layers {
		total += d
	}
	elapsed := time.Since(start)
	fmt.Printf("aggregated %d layers (%d parameters) across %d workers in %v\n",
		len(layers), total, workers, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.1fM gradient elements/s through the in-process switch\n",
		float64(total)/elapsed.Seconds()/1e6)
	fmt.Println("per-layer futures resolved in emission order; submission overlapped aggregation")
}
