// Package switchml is a Go implementation of SwitchML, the in-network
// aggregation system for distributed machine learning of Sapio et al.
// (NSDI 2021), together with the substrates needed to reproduce the
// paper's evaluation on commodity hardware.
//
// The package offers three ways to run the aggregation protocol
// (Algorithms 1-4 of the paper):
//
//   - An in-process Cluster connects n worker goroutines to a
//     software switch over channels, for embedding synchronous
//     all-reduce in one process. See NewCluster.
//   - A UDP deployment runs the same protocol over real sockets: a
//     software "parameter aggregator" (the §6 deployment model) and
//     worker clients. See ListenAggregator and DialAggregator.
//   - A deterministic simulation reproduces the paper's testbed —
//     rack topologies, programmable-switch constraints, packet loss,
//     and the baseline systems (ring all-reduce, halving-doubling,
//     parameter servers). See SimulateRack and the cmd/switchml-bench
//     tool, which regenerates every table and figure.
//
// Gradients are exchanged as 32-bit fixed-point integers scaled by a
// model-dependent factor (Appendix C of the paper); WithScale and
// MaxSafeScale configure the scheme, WithFloat16 selects the
// packed-half mode of §3.7, and the float32 all-reduce methods apply
// the conversion transparently.
package switchml
