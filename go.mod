module switchml

go 1.22
