package switchml

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Collective is any endpoint that can all-reduce tensors: an
// in-process cluster Worker or a UDP Peer.
//
// Implementations whose fabric can fail (a UDP Peer without an armed
// fallback) report a dead aggregator as an error matching
// ErrSwitchUnavailable: the tensor was fine and the call may be
// retried once the fabric recovers. Sessions pass such errors through
// to the submitting Future unchanged.
type Collective interface {
	// AllReduceInt32 sums an int32 tensor across all workers.
	AllReduceInt32(u []int32) ([]int32, error)
	// AllReduceFloat32 sums a float32 tensor across all workers.
	AllReduceFloat32(u []float32) ([]float32, error)
}

var (
	_ Collective = (*Worker)(nil)
	_ Collective = (*Peer)(nil)
)

// Session is the ML-framework integration layer of the paper (§4,
// Appendix B): back-propagation emits one gradient tensor per layer,
// and the session streams them to the aggregator as one continuous
// sequence — each tensor's aggregation overlaps the computation (and
// submission) of the ones behind it, while results are steered back
// to the right caller.
//
// Every worker must submit the same tensors in the same order, the
// requirement the paper notes matches Horovod's coordinator and needs
// a one-line change in Caffe2. Submissions may come from any
// goroutine; their order is the order Submit calls complete, so
// callers coordinating across goroutines must serialize their Submit
// calls (not the Waits).
type Session struct {
	mu     sync.Mutex
	c      Collective
	queue  chan *Future
	closed bool
	wg     sync.WaitGroup

	submitted, completed, failed atomic.Uint64
	lastNs                       atomic.Int64
}

// SessionStats is a point-in-time snapshot of a session's streaming
// activity, safe to read from any goroutine (monitoring dashboards
// poll it while training runs).
type SessionStats struct {
	// Submitted counts tensors accepted by Submit*.
	Submitted uint64
	// Completed counts tensors aggregated successfully; Failed those
	// whose aggregation returned an error.
	Completed uint64
	Failed    uint64
	// Queued is the number of tensors waiting behind the one in
	// flight right now.
	Queued int
	// LastTensorNs is the wall-clock duration of the most recently
	// finished aggregation, in nanoseconds (0 before the first).
	LastTensorNs int64
}

// Stats snapshots the session's counters.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Submitted:    s.submitted.Load(),
		Completed:    s.completed.Load(),
		Failed:       s.failed.Load(),
		Queued:       len(s.queue),
		LastTensorNs: s.lastNs.Load(),
	}
}

// ErrSessionClosed is returned for submissions to a closed session.
var ErrSessionClosed = errors.New("switchml: session closed")

// Future is a pending aggregation handed out by Submit.
type Future struct {
	done chan struct{}
	fi   []int32
	ff   []float32
	err  error

	inInt   []int32
	inFloat []float32
}

// Wait blocks until the tensor is aggregated and returns the float32
// result (for SubmitFloat32 futures).
func (f *Future) Wait() ([]float32, error) {
	<-f.done
	return f.ff, f.err
}

// WaitInt32 blocks until the tensor is aggregated and returns the
// int32 result (for SubmitInt32 futures).
func (f *Future) WaitInt32() ([]int32, error) {
	<-f.done
	return f.fi, f.err
}

// NewSession starts a streaming session over the given endpoint.
// buffer is the number of tensors that may be queued behind the one
// in flight (back-propagation produces tensors faster than the
// network drains them); zero selects 16.
func NewSession(c Collective, buffer int) (*Session, error) {
	if c == nil {
		return nil, fmt.Errorf("switchml: nil collective")
	}
	if buffer <= 0 {
		buffer = 16
	}
	s := &Session{c: c, queue: make(chan *Future, buffer)}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for f := range s.queue {
			// Tensors are aggregated independently but sequentially
			// (§4); the switch state flows across them as one stream.
			start := time.Now()
			if f.inInt != nil {
				f.fi, f.err = c.AllReduceInt32(f.inInt)
			} else {
				f.ff, f.err = c.AllReduceFloat32(f.inFloat)
			}
			s.lastNs.Store(time.Since(start).Nanoseconds())
			if f.err != nil {
				s.failed.Add(1)
			} else {
				s.completed.Add(1)
			}
			close(f.done)
		}
	}()
	return s, nil
}

// SubmitFloat32 enqueues a gradient tensor and returns its future.
// The tensor must not be mutated until Wait returns.
func (s *Session) SubmitFloat32(t []float32) (*Future, error) {
	f := &Future{done: make(chan struct{}), inFloat: t}
	return f, s.submit(f)
}

// SubmitInt32 enqueues an integer tensor and returns its future.
func (s *Session) SubmitInt32(t []int32) (*Future, error) {
	f := &Future{done: make(chan struct{}), inInt: t}
	return f, s.submit(f)
}

func (s *Session) submit(f *Future) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	s.queue <- f
	s.submitted.Add(1)
	return nil
}

// Drainer is a Collective that supports a graceful leave: after
// finishing its in-flight work it departs the job without tripping
// the failure detector. A UDP Peer implements it.
type Drainer interface {
	Drain() error
}

// Drain gracefully retires this worker from the job: the session
// stops accepting tensors, every queued tensor is still aggregated
// (the drain window), and then the endpoint announces its departure —
// the membership shrinks at a step boundary and the survivors keep
// training. Returns ErrSessionClosed if the session was already
// closed, and the endpoint's error if it does not support leaving or
// the leave fails.
func (s *Session) Drain() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait() // the queued tensors are the drain window
	d, ok := s.c.(Drainer)
	if !ok {
		return fmt.Errorf("switchml: endpoint %T cannot leave a job gracefully", s.c)
	}
	return d.Drain()
}

// Close drains queued tensors and stops the session. Futures already
// submitted still complete; Wait on them remains valid.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}
