#!/bin/sh
# elastic_smoke.sh -- the live-cluster half of `make elastic-smoke`.
#
# Boots a real UDP aggregator with one absent worker slot, trains two
# incumbents, then has worker 2 join the running job (-join: fence
# admission + model state fetched from a peer over the mesh), run 50
# iterations, and drain gracefully (-drain-after). The gate passes
# only if every process exits cleanly, the joiner logged both the
# admission and the drain, and nothing tripped the failure detector.
set -eu

DIR=$(mktemp -d)
trap 'kill $AGG 2>/dev/null || true; rm -rf "$DIR"' EXIT

AGG_PORT=${ELASTIC_SMOKE_AGG_PORT:-15655}
MESH_BASE=${ELASTIC_SMOKE_MESH_BASE:-17001}
M0=127.0.0.1:$MESH_BASE
M1=127.0.0.1:$((MESH_BASE + 1))
M2=127.0.0.1:$((MESH_BASE + 2))
MESH=$M0,$M1,$M2

go build -o "$DIR" ./cmd/switchml-agg ./cmd/switchml-worker

"$DIR/switchml-agg" -listen 127.0.0.1:$AGG_PORT -workers 3 -pool 16 -elems 32 \
    -liveness 2s -absent 2 > "$DIR/agg.log" 2>&1 &
AGG=$!
sleep 0.3

"$DIR/switchml-worker" -agg 127.0.0.1:$AGG_PORT -id 0 -workers 3 -pool 16 \
    -elems-per-tensor 2048 -iters 3000 -heartbeat 200ms \
    -mesh "$MESH" -mesh-listen $M0 -verify=false > "$DIR/w0.log" 2>&1 &
W0=$!
"$DIR/switchml-worker" -agg 127.0.0.1:$AGG_PORT -id 1 -workers 3 -pool 16 \
    -elems-per-tensor 2048 -iters 3000 -heartbeat 200ms \
    -mesh "$MESH" -mesh-listen $M1 -verify=false > "$DIR/w1.log" 2>&1 &
W1=$!
sleep 1

# The joiner: admitted mid-job at the global frontier, drains after 50
# iterations while the incumbents keep training.
"$DIR/switchml-worker" -agg 127.0.0.1:$AGG_PORT -id 2 -workers 3 -pool 16 \
    -elems-per-tensor 2048 -iters 200 -heartbeat 200ms \
    -mesh "$MESH" -mesh-listen $M2 -join -drain-after 50 > "$DIR/w2.log" 2>&1 &
W2=$!

fail() {
    echo "elastic-smoke: $1" >&2
    echo "--- agg.log ---" >&2; cat "$DIR/agg.log" >&2 || true
    echo "--- w2.log ---" >&2; cat "$DIR/w2.log" >&2 || true
    exit 1
}

wait $W2 || fail "joiner exited non-zero"
wait $W0 || fail "worker 0 exited non-zero"
wait $W1 || fail "worker 1 exited non-zero"

grep -q "admitted at frontier" "$DIR/w2.log" || fail "joiner never admitted"
grep -q "drained after 50 iteration" "$DIR/w2.log" || fail "joiner never drained"
grep -q "done: mean" "$DIR/w0.log" || fail "incumbent 0 did not finish"
grep -qi "evict" "$DIR/agg.log" && fail "failure detector fired during graceful churn"

echo "elastic-smoke: live join + drain ok"
