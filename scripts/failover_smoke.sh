#!/bin/sh
# failover_smoke.sh -- the live-cluster half of `make failover-smoke`.
#
# Boots a primary UDP aggregator plus one warm standby and three
# workers ranking both (-standby) with the host mesh armed behind them
# (-mesh). The primary runs a scripted drill (-down-after/-down-for):
# it goes silent mid-training, the workers' silence detectors trip,
# the job re-homes onto the standby via the adoption roll call, and
# once the primary revives the fail-up probation climbs the job back
# to rank 0. The gate passes only if every worker finished all
# iterations with verified aggregates, logged the failover ladder, and
# ended back on the primary without ever touching the mesh.
set -eu

DIR=$(mktemp -d)
trap 'kill $PRI $SBY 2>/dev/null || true; rm -rf "$DIR"' EXIT

PRI_PORT=${FAILOVER_SMOKE_PRI_PORT:-15755}
SBY_PORT=${FAILOVER_SMOKE_SBY_PORT:-15756}
MESH_BASE=${FAILOVER_SMOKE_MESH_BASE:-17101}
M0=127.0.0.1:$MESH_BASE
M1=127.0.0.1:$((MESH_BASE + 1))
M2=127.0.0.1:$((MESH_BASE + 2))
MESH=$M0,$M1,$M2

go build -o "$DIR" ./cmd/switchml-agg ./cmd/switchml-worker

"$DIR/switchml-agg" -listen 127.0.0.1:$PRI_PORT -workers 3 -pool 16 -elems 32 \
    -down-after 2s -down-for 2s > "$DIR/pri.log" 2>&1 &
PRI=$!
"$DIR/switchml-agg" -listen 127.0.0.1:$SBY_PORT -workers 3 -pool 16 -elems 32 \
    > "$DIR/sby.log" 2>&1 &
SBY=$!
sleep 0.3

# Workers: short RTO so the default silence window (8x RTO) trips well
# inside the 2 s outage; enough iterations to span outage + probation.
WPIDS=""
for id in 0 1 2; do
    eval "LISTEN=\$M$id"
    "$DIR/switchml-worker" -agg 127.0.0.1:$PRI_PORT -id $id -workers 3 -pool 16 \
        -elems-per-tensor 2048 -iters 4000 -rto 50ms \
        -standby 127.0.0.1:$SBY_PORT -mesh "$MESH" -mesh-listen "$LISTEN" \
        > "$DIR/w$id.log" 2>&1 &
    WPIDS="$WPIDS $!"
done

fail() {
    echo "failover-smoke: $1" >&2
    for f in pri sby w0 w1 w2; do
        echo "--- $f.log ---" >&2; tail -20 "$DIR/$f.log" >&2 || true
    done
    exit 1
}

for pid in $WPIDS; do
    wait "$pid" || fail "a worker exited non-zero"
done

grep -q "drill: aggregation program down" "$DIR/pri.log" || fail "drill never fired"
grep -q "drill: aggregation program revived" "$DIR/pri.log" || fail "primary never revived"
for id in 0 1 2; do
    grep -q "failover ladder:" "$DIR/w$id.log" || fail "worker $id never walked the ladder"
    grep -q "home rank now 0" "$DIR/w$id.log" || fail "worker $id did not climb back to the primary"
    grep -q "fabric handoffs:" "$DIR/w$id.log" && fail "worker $id fell through the standby to the mesh"
done

echo "failover-smoke: live kill + re-home + fail-up ok"
