package switchml

import (
	"testing"
	"time"
)

// TestFaultScenarioSim drives the public fault-scenario API: a worker
// crash mid-tensor under packet loss must be detected and recovered,
// with survivors converging on full-membership sums before the
// recovery frontier and survivor-only sums after it.
func TestFaultScenarioSim(t *testing.T) {
	const n, d = 4, 6000
	tensor := make([]int32, d)
	for j := range tensor {
		tensor[j] = 1
	}
	res, err := SimulateRack(SimParams{
		Workers:   n,
		LinkGbps:  10,
		PoolSize:  8,
		SlotElems: 32,
		LossRate:  0.01,
		RTO:       100 * time.Microsecond,
		Seed:      7,
		Faults: &FaultScenario{Actions: []FaultAction{
			{Kind: FaultCrashWorker, Worker: 3, At: 60 * time.Microsecond},
		}},
	}, tensor)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 3 {
		t.Fatalf("Failed = %v, want [3]", res.Failed)
	}
	// Every worker contributes the all-ones tensor: elements are n
	// before the recovery frontier, n-1 after, with one transition.
	boundary := -1
	for j, v := range res.Aggregate {
		switch {
		case boundary < 0 && v == n:
			continue
		case v == n-1:
			if boundary < 0 {
				boundary = j
			}
		default:
			t.Fatalf("elem %d: got %d, want %d before the boundary or %d after", j, v, n, n-1)
		}
	}
	if boundary < 0 {
		t.Fatal("no survivor-only region: the crash was never detected")
	}
	if boundary%32 != 0 {
		t.Fatalf("recovery boundary %d not chunk-aligned", boundary)
	}
}

// TestBurstLossSim drives the public Gilbert–Elliott configuration:
// bursty loss must still produce exact sums through retransmission.
func TestBurstLossSim(t *testing.T) {
	const n, d = 3, 4000
	tensor := make([]int32, d)
	for j := range tensor {
		tensor[j] = int32(j % 97)
	}
	res, err := SimulateRack(SimParams{
		Workers:   n,
		LinkGbps:  10,
		PoolSize:  8,
		SlotElems: 32,
		RTO:       100 * time.Microsecond,
		Seed:      11,
		BurstLoss: &BurstLossParams{
			PGoodToBad: 0.005, PBadToGood: 0.2, LossGood: 0.001, LossBad: 0.5,
		},
	}, tensor)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range res.Aggregate {
		if want := int32(n) * tensor[j]; v != want {
			t.Fatalf("elem %d: got %d want %d", j, v, want)
		}
	}
	if res.Retransmissions == 0 {
		t.Error("burst loss configured but no retransmissions recorded")
	}
}
