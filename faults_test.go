package switchml

import (
	"errors"
	"testing"
	"time"
)

// TestFaultScenarioSim drives the public fault-scenario API: a worker
// crash mid-tensor under packet loss must be detected and recovered,
// with survivors converging on full-membership sums before the
// recovery frontier and survivor-only sums after it.
func TestFaultScenarioSim(t *testing.T) {
	const n, d = 4, 6000
	tensor := make([]int32, d)
	for j := range tensor {
		tensor[j] = 1
	}
	res, err := SimulateRack(SimParams{
		Workers:   n,
		LinkGbps:  10,
		PoolSize:  8,
		SlotElems: 32,
		LossRate:  0.01,
		RTO:       100 * time.Microsecond,
		Seed:      7,
		Faults: &FaultScenario{Actions: []FaultAction{
			{Kind: FaultCrashWorker, Worker: 3, At: 60 * time.Microsecond},
		}},
	}, tensor)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 3 {
		t.Fatalf("Failed = %v, want [3]", res.Failed)
	}
	// Every worker contributes the all-ones tensor: elements are n
	// before the recovery frontier, n-1 after, with one transition.
	boundary := -1
	for j, v := range res.Aggregate {
		switch {
		case boundary < 0 && v == n:
			continue
		case v == n-1:
			if boundary < 0 {
				boundary = j
			}
		default:
			t.Fatalf("elem %d: got %d, want %d before the boundary or %d after", j, v, n, n-1)
		}
	}
	if boundary < 0 {
		t.Fatal("no survivor-only region: the crash was never detected")
	}
	if boundary%32 != 0 {
		t.Fatalf("recovery boundary %d not chunk-aligned", boundary)
	}
}

// TestBurstLossSim drives the public Gilbert–Elliott configuration:
// bursty loss must still produce exact sums through retransmission.
func TestBurstLossSim(t *testing.T) {
	const n, d = 3, 4000
	tensor := make([]int32, d)
	for j := range tensor {
		tensor[j] = int32(j % 97)
	}
	res, err := SimulateRack(SimParams{
		Workers:   n,
		LinkGbps:  10,
		PoolSize:  8,
		SlotElems: 32,
		RTO:       100 * time.Microsecond,
		Seed:      11,
		BurstLoss: &BurstLossParams{
			PGoodToBad: 0.005, PBadToGood: 0.2, LossGood: 0.001, LossBad: 0.5,
		},
	}, tensor)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range res.Aggregate {
		if want := int32(n) * tensor[j]; v != want {
			t.Fatalf("elem %d: got %d want %d", j, v, want)
		}
	}
	if res.Retransmissions == 0 {
		t.Error("burst loss configured but no retransmissions recorded")
	}
}

// TestFaultSwitchKillSim drives the public self-healing API: the
// switch's aggregation program dies mid-tensor, the job degrades to
// host all-reduce at the chunk frontier and still produces the exact
// sum, with the degrade visible in the result counters.
func TestFaultSwitchKillSim(t *testing.T) {
	const n, d = 4, 4096
	tensor := make([]int32, d)
	for j := range tensor {
		tensor[j] = int32(j%53 + 1)
	}
	res, err := SimulateRack(SimParams{
		Workers:   n,
		LinkGbps:  10,
		PoolSize:  8,
		SlotElems: 32,
		RTO:       100 * time.Microsecond,
		Seed:      7,
		Faults: &FaultScenario{Actions: []FaultAction{
			{Kind: FaultKillSwitch, At: 30 * time.Microsecond},
		}},
	}, tensor)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range res.Aggregate {
		if want := int32(n) * tensor[j]; v != want {
			t.Fatalf("elem %d: got %d want %d", j, v, want)
		}
	}
	if res.Counters["health_degrades"] != 1 {
		t.Errorf("health_degrades = %d, want 1", res.Counters["health_degrades"])
	}
	if res.Counters["host_aggregated_elems"] == 0 {
		t.Error("no elements aggregated by the host fabric")
	}
}

// TestFaultSwitchKillNoFallbackSim checks the opt-out: with
// NoFallback a dead switch surfaces as the typed, retryable
// ErrSwitchUnavailable instead of a fabric handoff.
func TestFaultSwitchKillNoFallbackSim(t *testing.T) {
	tensor := make([]int32, 2048)
	for j := range tensor {
		tensor[j] = 1
	}
	_, err := SimulateRack(SimParams{
		Workers:    3,
		LinkGbps:   10,
		PoolSize:   8,
		SlotElems:  32,
		RTO:        100 * time.Microsecond,
		Seed:       7,
		NoFallback: true,
		Faults: &FaultScenario{Actions: []FaultAction{
			{Kind: FaultKillSwitch, Step: 1, At: 5 * time.Microsecond},
		}},
	}, tensor)
	if !errors.Is(err, ErrSwitchUnavailable) {
		t.Fatalf("SimulateRack error = %v, want ErrSwitchUnavailable", err)
	}
}

// TestFaultStartDegradedSim pins the job on the host fabric from the
// start (the pure host-all-reduce baseline): exact sums, zero switch
// completions.
func TestFaultStartDegradedSim(t *testing.T) {
	const n, d = 3, 3000
	tensor := make([]int32, d)
	for j := range tensor {
		tensor[j] = int32(j % 31)
	}
	res, err := SimulateRack(SimParams{
		Workers:       n,
		LinkGbps:      10,
		PoolSize:      8,
		SlotElems:     32,
		RTO:           100 * time.Microsecond,
		Seed:          7,
		StartDegraded: true,
		Health:        &HealthParams{Probation: -1},
	}, tensor)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range res.Aggregate {
		if want := int32(n) * tensor[j]; v != want {
			t.Fatalf("elem %d: got %d want %d", j, v, want)
		}
	}
	if res.Counters["switch_completions"] != 0 {
		t.Errorf("switch completed %d slots in a pinned-degraded run", res.Counters["switch_completions"])
	}
	if res.Counters["host_aggregated_elems"] != uint64(d) {
		t.Errorf("host_aggregated_elems = %d, want %d", res.Counters["host_aggregated_elems"], d)
	}
}
