package switchml

import (
	"fmt"
	"sync"
	"time"

	"switchml/internal/core"
	"switchml/internal/packet"
	"switchml/internal/quant"
	"switchml/internal/telemetry"
	"switchml/internal/transport"
)

// This file implements the multi-core worker of the paper's
// Appendix B over UDP: "we use multiple CPU cores ... Every CPU core
// runs an I/O loop that processes every batch of packets in a
// run-to-completion fashion and uses a disjoint set of aggregation
// slots ... we partition the tensor into as many contiguous memory
// regions as the number of cores", with Flow Director steering each
// core's traffic to its own queue. Here each shard owns a socket, a
// worker state machine, and a disjoint aggregator pool (a job id per
// shard), which is the same no-shared-state property.

// MultiAggregator is a UDP software aggregator hosting several
// disjoint pools: one per tenant job (§6 "Multi-job") or one per
// worker core shard.
type MultiAggregator struct {
	inner      *transport.MultiAggregator
	debugClose func() error
}

// ListenMultiAggregator binds addr with the given register-memory
// budget in bytes (0 = unlimited); jobs are admitted with AdmitJob.
func ListenMultiAggregator(addr string, memoryBudget int) (*MultiAggregator, error) {
	inner, err := transport.NewMultiAggregator(addr, memoryBudget)
	if err != nil {
		return nil, err
	}
	return &MultiAggregator{inner: inner}, nil
}

// Addr returns the bound address.
func (m *MultiAggregator) Addr() string { return m.inner.Addr().String() }

// ServeDebug starts an HTTP introspection listener on addr serving
// /metrics, /debug/vars and /debug/pprof/ with every admitted job's
// counters (labeled job="<id>"). It returns the bound address; the
// listener stops when the aggregator is closed. Call at most once.
func (m *MultiAggregator) ServeDebug(addr string) (string, error) {
	bound, closeFn, err := telemetry.ServeDebug(addr, m.inner.Registry())
	if err != nil {
		return "", err
	}
	m.debugClose = closeFn
	return bound, nil
}

// Close stops serving (and the debug listener, if one was started).
func (m *MultiAggregator) Close() error {
	if m.debugClose != nil {
		m.debugClose()
		m.debugClose = nil
	}
	return m.inner.Close()
}

// AdmitJob allocates a pool for one job.
func (m *MultiAggregator) AdmitJob(job uint16, params AggregatorParams) error {
	params.fill()
	return m.inner.AdmitJob(core.SwitchConfig{
		Workers:      params.Workers,
		PoolSize:     params.PoolSize,
		SlotElems:    params.SlotElems,
		LossRecovery: true,
		JobID:        job,
	})
}

// AdmitShardedJob allocates the shards pools a ShardedPeer set with
// the same parameters will use: job ids jobBase..jobBase+shards-1.
func (m *MultiAggregator) AdmitShardedJob(jobBase uint16, shards int, params AggregatorParams) error {
	if shards <= 0 {
		return fmt.Errorf("switchml: shard count must be positive, got %d", shards)
	}
	for s := 0; s < shards; s++ {
		if err := m.AdmitJob(jobBase+uint16(s), params); err != nil {
			return err
		}
	}
	return nil
}

// ReleaseJob frees one job's pool.
func (m *MultiAggregator) ReleaseJob(job uint16) error { return m.inner.ReleaseJob(job) }

// JobStats returns one admitted job's protocol counters.
func (m *MultiAggregator) JobStats(job uint16) (AggregatorStats, bool) {
	st, ok := m.inner.JobStats(job)
	if !ok {
		return AggregatorStats{}, false
	}
	return AggregatorStats{
		Updates:               st.Updates,
		Completions:           st.Completions,
		IgnoredDuplicates:     st.IgnoredDuplicates,
		ResultRetransmissions: st.ResultRetransmissions,
		StaleUpdates:          st.StaleUpdates,
		Rejected:              st.Rejected,
	}, true
}

// ShardedPeer is a multi-core worker endpoint: the tensor is
// partitioned into contiguous regions, each streamed by its own
// socket and state machine to its own aggregator pool, concurrently.
type ShardedPeer struct {
	peers []*transport.Client
	scale *quant.FixedPoint
}

// ShardedPeerParams configures DialSharded.
type ShardedPeerParams struct {
	// ID is this worker's rank.
	ID int
	// Workers is n.
	Workers int
	// Shards is the core count; each shard gets its own socket,
	// worker state machine and pool. Zero selects 4 (§5.1).
	Shards int
	// JobBase is the first shard's job id; shard s uses JobBase+s.
	// Must match the aggregator's AdmitShardedJob call.
	JobBase uint16
	// PoolSize is s per shard (default 64).
	PoolSize int
	// SlotElems is k (default 32).
	SlotElems int
	// Scale enables float32 all-reduce.
	Scale float64
	// RTO and Timeout as in PeerParams.
	RTO     time.Duration
	Timeout time.Duration
}

// DialSharded connects a multi-core worker to a MultiAggregator.
func DialSharded(addr string, params ShardedPeerParams) (*ShardedPeer, error) {
	if params.Shards == 0 {
		params.Shards = 4
	}
	if params.Shards < 0 {
		return nil, fmt.Errorf("switchml: shard count must be positive, got %d", params.Shards)
	}
	poolSize, slotElems := params.PoolSize, params.SlotElems
	if poolSize == 0 {
		poolSize = 64
	}
	if slotElems == 0 {
		slotElems = packet.DefaultElems
	}
	sp := &ShardedPeer{}
	if params.Scale != 0 {
		fx, err := quant.NewFixedPoint(params.Scale)
		if err != nil {
			return nil, err
		}
		sp.scale = fx
	}
	for s := 0; s < params.Shards; s++ {
		c, err := transport.NewClient(transport.ClientConfig{
			Aggregator: addr,
			Worker: core.WorkerConfig{
				ID:           uint16(params.ID),
				Workers:      params.Workers,
				PoolSize:     poolSize,
				SlotElems:    slotElems,
				LossRecovery: true,
				JobID:        params.JobBase + uint16(s),
			},
			RTO:     params.RTO,
			Timeout: params.Timeout,
		})
		if err != nil {
			sp.Close()
			return nil, err
		}
		sp.peers = append(sp.peers, c)
	}
	return sp, nil
}

// Close releases all shard sockets.
func (sp *ShardedPeer) Close() error {
	var first error
	for _, p := range sp.peers {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Shards returns the shard count.
func (sp *ShardedPeer) Shards() int { return len(sp.peers) }

// AllReduceInt32 sums u across all workers, splitting the tensor into
// contiguous per-shard regions aggregated concurrently.
func (sp *ShardedPeer) AllReduceInt32(u []int32) ([]int32, error) {
	if len(u) == 0 {
		return nil, nil
	}
	out := make([]int32, len(u))
	shards := len(sp.peers)
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for s := 0; s < shards; s++ {
		lo, hi := s*len(u)/shards, (s+1)*len(u)/shards
		if lo == hi {
			continue
		}
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := sp.peers[s].AllReduceInt32(u[lo:hi])
			if err != nil {
				errs[s] = fmt.Errorf("switchml: shard %d: %w", s, err)
				return
			}
			copy(out[lo:hi], res)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AllReduceFloat32 sums u across all workers via fixed-point
// quantization (requires Scale).
func (sp *ShardedPeer) AllReduceFloat32(u []float32) ([]float32, error) {
	if sp.scale == nil {
		return nil, errNoScale
	}
	q := make([]int32, len(u))
	if sat := sp.scale.Quantize(q, u); sat > 0 {
		return nil, fmt.Errorf("switchml: %d elements saturated during quantization; lower the scale (see MaxSafeScale)", sat)
	}
	sum, err := sp.AllReduceInt32(q)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(u))
	sp.scale.Dequantize(out, sum)
	return out, nil
}

var _ Collective = (*ShardedPeer)(nil)
