package switchml

import (
	"sync"
	"testing"
	"time"
)

func TestSessionPipelinesTensors(t *testing.T) {
	// Each worker submits a back-prop-like sequence of tensors of
	// decreasing size; submissions overlap aggregations and results
	// come back per tensor, in order.
	const n = 3
	c, err := NewCluster(n, WithScale(1e6))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sizes := []int{4000, 2500, 1000, 300, 32, 7}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := NewSession(c.Worker(i), 4)
			if err != nil {
				errs[i] = err
				return
			}
			defer s.Close()
			// Submit everything up front (overlap), then wait in
			// order.
			futures := make([]*Future, len(sizes))
			for ti, d := range sizes {
				grad := make([]float32, d)
				for j := range grad {
					grad[j] = float32(ti + i)
				}
				futures[ti], err = s.SubmitFloat32(grad)
				if err != nil {
					errs[i] = err
					return
				}
			}
			for ti, f := range futures {
				out, err := f.Wait()
				if err != nil {
					errs[i] = err
					return
				}
				// Sum over workers of (ti + w) = n*ti + 0+1+2.
				want := float32(n*ti + 3)
				for j, v := range out {
					if v != want {
						errs[i] = errValue{ti, j, float64(v), float64(want)}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

func TestSessionStats(t *testing.T) {
	const n = 2
	c, err := NewCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	stats := make([]SessionStats, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := NewSession(c.Worker(i), 4)
			if err != nil {
				t.Error(err)
				return
			}
			var futures []*Future
			for ti := 0; ti < 3; ti++ {
				f, err := s.SubmitInt32([]int32{1, 2, 3})
				if err != nil {
					t.Error(err)
					return
				}
				futures = append(futures, f)
			}
			for _, f := range futures {
				if _, err := f.WaitInt32(); err != nil {
					t.Error(err)
					return
				}
			}
			s.Close()
			stats[i] = s.Stats()
		}()
	}
	wg.Wait()
	for i, st := range stats {
		if st.Submitted != 3 || st.Completed != 3 {
			t.Errorf("worker %d: submitted/completed = %d/%d, want 3/3", i, st.Submitted, st.Completed)
		}
		if st.Failed != 0 || st.Queued != 0 {
			t.Errorf("worker %d: failed=%d queued=%d, want 0/0", i, st.Failed, st.Queued)
		}
		if st.LastTensorNs <= 0 {
			t.Errorf("worker %d: LastTensorNs = %d, want > 0", i, st.LastTensorNs)
		}
	}
}

type errValue struct {
	tensor, elem int
	got, want    float64
}

func (e errValue) Error() string { return "tensor value mismatch" }

func TestSessionInt32(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	outs := make([][]int32, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, _ := NewSession(c.Worker(i), 0)
			defer s.Close()
			f, _ := s.SubmitInt32([]int32{int32(i + 1), 10})
			outs[i], _ = f.WaitInt32()
		}()
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if outs[i][0] != 3 || outs[i][1] != 20 {
			t.Errorf("worker %d: %v, want [3 20]", i, outs[i])
		}
	}
}

func TestSessionOverUDP(t *testing.T) {
	const n = 2
	agg, err := ListenAggregator("127.0.0.1:0", AggregatorParams{Workers: n, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			peer, err := DialAggregator(agg.Addr(), PeerParams{
				ID: i, Workers: n, PoolSize: 8, Scale: 1e5,
				RTO: 20 * time.Millisecond,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer peer.Close()
			s, err := NewSession(peer, 2)
			if err != nil {
				errs[i] = err
				return
			}
			defer s.Close()
			var futures []*Future
			for ti := 0; ti < 4; ti++ {
				grad := make([]float32, 200+ti*50)
				for j := range grad {
					grad[j] = 0.5
				}
				f, err := s.SubmitFloat32(grad)
				if err != nil {
					errs[i] = err
					return
				}
				futures = append(futures, f)
			}
			for _, f := range futures {
				out, err := f.Wait()
				if err != nil {
					errs[i] = err
					return
				}
				for j, v := range out {
					if v != 1 {
						errs[i] = errValue{0, j, float64(v), 1}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
}

func TestSessionClose(t *testing.T) {
	c, err := NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := NewSession(c.Worker(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.SubmitInt32([]int32{5})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	out, err := f.WaitInt32()
	if err != nil || out[0] != 5 {
		t.Errorf("pre-close future = %v, %v", out, err)
	}
	if _, err := s.SubmitInt32([]int32{1}); err != ErrSessionClosed {
		t.Errorf("post-close submit err = %v, want ErrSessionClosed", err)
	}
	if _, err := NewSession(nil, 0); err == nil {
		t.Error("nil collective accepted")
	}
}
