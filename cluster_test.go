package switchml

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestClusterAllReduceInt32(t *testing.T) {
	const n, d = 4, 10000
	c, err := NewCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(1))
	updates := make([][]int32, n)
	want := make([]int32, d)
	for i := range updates {
		updates[i] = make([]int32, d)
		for j := range updates[i] {
			updates[i][j] = int32(rng.Intn(1001) - 500)
			want[j] += updates[i][j]
		}
	}

	results := make([][]int32, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = c.Worker(i).AllReduceInt32(updates[i])
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		for j := range want {
			if results[i][j] != want[j] {
				t.Fatalf("worker %d elem %d: got %d want %d", i, j, results[i][j], want[j])
			}
		}
	}
}

func TestClusterFloat32(t *testing.T) {
	const n = 3
	scale, err := MaxSafeScale(n, 100)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(n, WithScale(scale))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const d = 2000
	updates := make([][]float32, n)
	exact := make([]float64, d)
	rng := rand.New(rand.NewSource(2))
	for i := range updates {
		updates[i] = make([]float32, d)
		for j := range updates[i] {
			updates[i][j] = (rng.Float32() - 0.5) * 50
			exact[j] += float64(updates[i][j])
		}
	}
	results := make([][]float32, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = c.Worker(i).AllReduceFloat32(updates[i])
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		for j := range exact {
			// Theorem 1 bound n/f, plus the float32 representation
			// error of the result itself (~|x|*2^-23).
			bound := float64(n)/scale + math.Abs(exact[j])/float64(1<<23) + 1e-9
			if diff := math.Abs(float64(results[i][j]) - exact[j]); diff > bound {
				t.Fatalf("worker %d elem %d: error %v exceeds bound %v", i, j, diff, bound)
			}
		}
	}
}

func TestClusterMeanFloat32(t *testing.T) {
	const n = 2
	c, err := NewCluster(n, WithScale(1e6))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	outs := make([][]float32, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i], _ = c.Worker(i).AllReduceMeanFloat32([]float32{float32(i), 4})
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if math.Abs(float64(outs[i][0])-0.5) > 1e-5 || math.Abs(float64(outs[i][1])-4) > 1e-5 {
			t.Errorf("worker %d mean = %v, want [0.5 4]", i, outs[i])
		}
	}
}

func TestClusterConsecutiveRounds(t *testing.T) {
	const n = 2
	c, err := NewCluster(n, WithPoolSize(2), WithSlotElems(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 5; round++ {
		d := 5 + round*7
		var wg sync.WaitGroup
		outs := make([][]int32, n)
		for i := 0; i < n; i++ {
			i := i
			u := make([]int32, d)
			for j := range u {
				u[j] = int32(round*100 + i + j)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				outs[i], _ = c.Worker(i).AllReduceInt32(u)
			}()
		}
		wg.Wait()
		for j := 0; j < d; j++ {
			want := int32(2*(round*100+j) + 1)
			if outs[0][j] != want || outs[1][j] != want {
				t.Fatalf("round %d elem %d: got %d,%d want %d", round, j, outs[0][j], outs[1][j], want)
			}
		}
	}
}

func TestClusterFloatWithoutScaleFails(t *testing.T) {
	c, err := NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Worker(0).AllReduceFloat32([]float32{1}); err == nil {
		t.Error("float32 without scale succeeded")
	}
}

func TestClusterSaturationError(t *testing.T) {
	c, err := NewCluster(1, WithScale(1e9))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Worker(0).AllReduceFloat32([]float32{1e6}); err == nil {
		t.Error("saturating input did not error")
	}
}

func TestClusterEmptyTensor(t *testing.T) {
	c, err := NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Worker(0).AllReduceInt32(nil)
	if err != nil || out != nil {
		t.Errorf("empty all-reduce = %v, %v", out, err)
	}
}

func TestClusterOptionValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewCluster(1, WithPoolSize(0)); err == nil {
		t.Error("zero pool accepted")
	}
	if _, err := NewCluster(1, WithSlotElems(-1)); err == nil {
		t.Error("negative slot elems accepted")
	}
	if _, err := NewCluster(1, WithScale(-2)); err == nil {
		t.Error("negative scale accepted")
	}
	if _, err := MaxSafeScale(0, 1); err == nil {
		t.Error("MaxSafeScale(0) accepted")
	}
}

func TestClusterCloseUnblocksWorkers(t *testing.T) {
	// A 2-worker cluster with only one participant: closing the
	// cluster must unblock the stuck all-reduce with an error.
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Worker(0).AllReduceInt32([]int32{1, 2, 3})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("stuck all-reduce returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("all-reduce did not unblock after Close")
	}
}

func TestClusterWorkerID(t *testing.T) {
	c, err := NewCluster(3, WithJobID(7))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Workers() != 3 {
		t.Errorf("Workers = %d", c.Workers())
	}
	for i := 0; i < 3; i++ {
		if c.Worker(i).ID() != i {
			t.Errorf("Worker(%d).ID() = %d", i, c.Worker(i).ID())
		}
	}
}

func TestSimulateRack(t *testing.T) {
	tensor := make([]int32, 100000)
	for i := range tensor {
		tensor[i] = 3
	}
	res, err := SimulateRack(SimParams{Workers: 8, Seed: 1}, tensor)
	if err != nil {
		t.Fatal(err)
	}
	if res.TAT <= 0 {
		t.Error("TAT not positive")
	}
	if res.PoolSize == 0 {
		t.Error("pool size not reported")
	}
	for i, v := range res.Aggregate {
		if v != 24 {
			t.Fatalf("aggregate[%d] = %d, want 24", i, v)
		}
	}
	// Same seed, same result.
	res2, err := SimulateRack(SimParams{Workers: 8, Seed: 1}, tensor)
	if err != nil {
		t.Fatal(err)
	}
	if res.TAT != res2.TAT {
		t.Errorf("nondeterministic TAT: %v vs %v", res.TAT, res2.TAT)
	}
	// Lossy run still exact.
	res3, err := SimulateRack(SimParams{Workers: 4, Seed: 2, LossRate: 0.01, RTO: 100 * time.Microsecond}, tensor[:20000])
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res3.Aggregate {
		if v != 12 {
			t.Fatalf("lossy aggregate[%d] = %d, want 12", i, v)
		}
	}
	if res3.Retransmissions == 0 {
		t.Error("lossy run had no retransmissions")
	}
	if _, err := SimulateRack(SimParams{Workers: 0}, tensor); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestClusterFloat16Mode(t *testing.T) {
	const n = 3
	c, err := NewCluster(n, WithFloat16(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const d = 501 // odd length exercises padding
	updates := make([][]float32, n)
	exact := make([]float64, d)
	rng := rand.New(rand.NewSource(9))
	for i := range updates {
		updates[i] = make([]float32, d)
		for j := range updates[i] {
			updates[i][j] = float32(rng.Intn(32)) * 0.5
			exact[j] += float64(updates[i][j])
		}
	}
	var wg sync.WaitGroup
	outs := make([][]float32, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i], errs[i] = c.Worker(i).AllReduceFloat32(updates[i])
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if len(outs[i]) != d {
			t.Fatalf("worker %d: length %d, want %d", i, len(outs[i]), d)
		}
		for j := range exact {
			tol := math.Abs(exact[j])/1024 + float64(n)/(1<<16) + 1e-3
			if diff := math.Abs(float64(outs[i][j]) - exact[j]); diff > tol {
				t.Fatalf("worker %d elem %d: got %v want %v", i, j, outs[i][j], exact[j])
			}
		}
	}
}

func TestClusterFloat16ExclusiveWithScale(t *testing.T) {
	if _, err := NewCluster(2, WithScale(100), WithFloat16(100)); err == nil {
		t.Error("WithScale + WithFloat16 accepted")
	}
	if _, err := NewCluster(2, WithFloat16(-1)); err == nil {
		t.Error("negative float16 scale accepted")
	}
}
