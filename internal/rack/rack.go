// Package rack runs the SwitchML protocol over the netsim substrate:
// a single-rack topology of n worker hosts attached to one
// programmable switch, the paper's deployment model (§3.2).
//
// The rack models everything the paper's testbed contributes to
// timing: link bandwidth and propagation, switch pipeline latency,
// per-packet worker CPU cost spread across cores (the DPDK
// run-to-completion loops of Appendix B, with slots sharded across
// cores as Flow Director does), retransmission timers, and packet
// loss.
package rack

import (
	"errors"
	"fmt"

	"switchml/internal/allreduce"
	"switchml/internal/core"
	"switchml/internal/faults"
	"switchml/internal/netsim"
	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// ErrSwitchDown is the typed, retryable verdict for an aggregation
// abandoned because the switch stopped answering and fallback was
// declined (Config.NoFallback): the inputs were fine, the fabric was
// not. Callers may retry the collective once the switch recovers;
// per-generation seen bitmaps make the retry exactly-once.
var ErrSwitchDown = errors.New("rack: switch unavailable")

// Config describes a rack experiment.
type Config struct {
	// Workers is n.
	Workers int
	// PoolSize is s; zero selects the paper's tuning rule: the next
	// power of two of ceil(BDP/b) (§3.6).
	PoolSize int
	// SlotElems is k; zero selects packet.DefaultElems (32).
	SlotElems int
	// LinkBitsPerSec is the access link bandwidth (both directions);
	// zero selects 10 Gbps.
	LinkBitsPerSec float64
	// Propagation is the one-way link propagation delay; zero selects
	// 1 µs (intra-rack cable plus port).
	Propagation netsim.Time
	// LossRate is the per-link, per-packet drop probability.
	LossRate float64
	// BurstLoss, when non-nil, replaces the Bernoulli process of
	// LossRate with a Gilbert–Elliott burst loss chain; every link
	// gets its own chain state, so bursts on different links are
	// independent.
	BurstLoss *netsim.GEConfig
	// DupRate is the per-link probability that a delivered packet
	// arrives twice.
	DupRate float64
	// CorruptRate is the per-link probability that a packet is mangled
	// in flight; the receiver's checksum discards it, so above the link
	// layer it behaves as a (separately counted) drop.
	CorruptRate float64
	// PerPacketCost is the worker CPU time to process one packet
	// (receive, copy, convert, send); zero selects 110 ns, which puts
	// one core just above 10 Gbps line rate as in the paper (§4: "one
	// CPU core is sufficient to do reduction at line rate on a
	// 10 Gbps network").
	PerPacketCost netsim.Time
	// Cores is the number of worker cores; zero selects 4, the
	// paper's configuration (§5.1).
	Cores int
	// SwitchLatency is the pipeline ingress-to-egress latency; zero
	// selects 400 ns.
	SwitchLatency netsim.Time
	// RTO is the retransmission timeout; zero selects 1 ms (§5.5).
	// With AdaptiveRTO it is the initial and minimum value.
	RTO netsim.Time
	// AdaptiveRTO enables Jacobson/Karn timeout estimation from
	// observed per-chunk RTTs (RTO = SRTT + 4·RTTVAR, clamped to
	// [RTO, 64·RTO]), the adaptation §6 calls for: "one should take
	// care to adapt the retransmission timeout according to
	// variations in end-to-end RTT."
	AdaptiveRTO bool
	// LossRecovery selects Algorithm 3 (default true via NewRack).
	LossRecovery bool
	// Seed drives the deterministic loss process.
	Seed int64
	// Faults optionally scripts deterministic fault injection — worker
	// crashes and restarts, switch restarts wiping register state, link
	// blackout windows, loss-rate changes — anchored to absolute
	// virtual time or to aggregation steps (§5.6's failure cases).
	Faults *faults.Scenario
	// Liveness configures the failure detector and recovery
	// controller. It defaults on (with default thresholds) whenever
	// Faults contains crash or restart actions; set it explicitly to
	// tune thresholds or to run detection without scripted faults.
	Liveness *LivenessConfig
	// Health configures the switch health monitor and degradation
	// controller (SWITCH → DEGRADED → SWITCH). It defaults on whenever
	// Faults contains switch kill/revive actions, unless NoFallback is
	// set; set it explicitly to tune thresholds.
	Health *HealthConfig
	// StartDegraded starts the job on the host all-reduce fabric
	// instead of the switch — the -degraded-mode baseline. It implies
	// Health; pair it with Health.Probation < 0 to pin the job there.
	StartDegraded bool
	// NoFallback opts out of degraded mode even when switch kill
	// actions are scripted: a dead switch then surfaces as a typed
	// ErrSwitchDown from AllReduce instead of a fabric handoff.
	NoFallback bool
	// Tracer observes every protocol event in the rack, stamped with
	// virtual time: link transmit/receive/drop (netsim), slot
	// aggregation and shadow reads (switch), and retransmissions,
	// timeouts and tensor boundaries (worker hosts). Figure 6 builds
	// its packets-per-10 ms timeline from these events.
	Tracer telemetry.Tracer
	// Metrics optionally collects every component's counters — switch,
	// workers, and a rack_rtt_ns round-trip histogram — in one
	// registry for snapshots and text dumps.
	Metrics *telemetry.Registry
	// SampleRTT enables per-packet RTT sampling on worker 0
	// (Figure 2's right axis).
	SampleRTT bool
	// SampleEvery, when positive, ticks a telemetry.Sampler on virtual
	// time at this period for as long as a step has live unfinished
	// workers, turning the run's counters into time series (rates,
	// gauges, interval quantiles) retrievable via Rack.Series. A
	// Metrics registry is created automatically if none is supplied.
	SampleEvery netsim.Time
	// WorkerLinkBitsPerSec overrides the link rate of individual
	// workers (nil entries or a short slice fall back to
	// LinkBitsPerSec). Used by the straggler experiment: §6 observes
	// that the self-clocking mechanism slows the whole system to the
	// rate of the slowest worker.
	WorkerLinkBitsPerSec []float64
	// StandbySwitches is the number of warm-standby aggregation
	// programs behind the primary (rungs 1..StandbySwitches of the
	// failover ladder). They live behind the same crossbar — a
	// neighbouring ToR or a spare pipeline — and stay idle until the
	// health monitor re-homes the job onto one after the primary goes
	// silent; the host mesh is used only when every rung is down.
	// Requires Health (enabled automatically when Faults kill
	// switches).
	StandbySwitches int
	// StandbyLatency is the extra one-way latency to reach a standby
	// rung (the detour through the backup switch); zero selects
	// 200 ns. It is charged on the response path both ways, so a job
	// homed on a standby sees the primary RTT plus twice this value.
	StandbyLatency netsim.Time
	// Quorum enables straggler mitigation: a slot completes once this
	// many distinct workers have contributed instead of the full
	// membership (see core.SwitchConfig.Quorum). Zero keeps full
	// participation.
	Quorum int
	// LatePolicy selects the fate of a straggler's update arriving
	// after its slot completed at quorum: dropped-and-counted
	// (core.LateDrop) or folded into the next step (core.LateReconcile).
	LatePolicy core.LatePolicy
	// Detached lists workers that exist in the topology but start
	// outside the job membership; a scripted faults.JoinWorker action
	// admits them at the next step boundary (elastic join).
	Detached []int
}

func (c *Config) fillDefaults() {
	if c.SlotElems == 0 {
		c.SlotElems = packet.DefaultElems
	}
	if c.LinkBitsPerSec == 0 {
		c.LinkBitsPerSec = 10e9
	}
	if c.Propagation == 0 {
		c.Propagation = netsim.Microsecond
	}
	if c.PerPacketCost == 0 {
		c.PerPacketCost = 110 * netsim.Nanosecond
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.SwitchLatency == 0 {
		c.SwitchLatency = 400 * netsim.Nanosecond
	}
	if c.RTO == 0 {
		c.RTO = netsim.Millisecond
	}
	if c.PoolSize == 0 {
		c.PoolSize = TunePoolSize(c.LinkBitsPerSec, c.wireBytes(), c.rttEstimate())
	}
	if c.Liveness == nil && c.Faults != nil {
		for _, a := range c.Faults.Actions {
			switch a.Kind {
			case faults.CrashWorker, faults.RestartWorker, faults.RestartSwitch,
				faults.JoinWorker, faults.LeaveWorker:
				c.Liveness = &LivenessConfig{}
			}
			if c.Liveness != nil {
				break
			}
		}
	}
	if c.Liveness != nil {
		lv := *c.Liveness
		lv.fillDefaults(c.RTO)
		c.Liveness = &lv
	}
	if c.StandbySwitches > 0 && c.StandbyLatency == 0 {
		c.StandbyLatency = 200 * netsim.Nanosecond
	}
	// NoFallback declines the host mesh, but a standby ladder is still
	// a switch path: the health monitor runs it and raises the typed
	// error only once every rung is silent.
	wantHealth := !c.NoFallback || c.StandbySwitches > 0
	if c.Health == nil && wantHealth {
		if c.StartDegraded {
			c.Health = &HealthConfig{}
		} else if c.Faults != nil {
			for _, a := range c.Faults.Actions {
				switch a.Kind {
				case faults.KillSwitch, faults.ReviveSwitch,
					faults.KillStandby, faults.ReviveStandby:
					c.Health = &HealthConfig{}
				}
				if c.Health != nil {
					break
				}
			}
		}
	}
	if c.Health != nil && wantHealth {
		hc := *c.Health
		hc.fillDefaults(c.RTO)
		c.Health = &hc
	} else {
		c.Health = nil
	}
}

// wireBytes is the full wire size of one update packet.
func (c *Config) wireBytes() int {
	return packet.HeaderBytes + packet.ElemBytes*c.SlotElems
}

// rttEstimate approximates the end-to-end delay used by the pool
// tuning rule: propagation both ways, switch latency, host
// processing, per-packet serialization each way, plus the DPDK
// batching delay — the workers send and receive packets "batched in
// groups of 32 to reduce per-packet transmission overhead" (§4), so
// a packet waits on the order of 1.5 batch serializations end to
// end. With the paper's parameters this reproduces its measured
// pools: s=128 at 10 Gbps and s=512 at 100 Gbps (§3.6).
func (c *Config) rttEstimate() netsim.Time {
	ser := netsim.Time(float64(c.wireBytes()*8) / c.LinkBitsPerSec * 1e9)
	const batch = 32
	return 2*c.Propagation + c.SwitchLatency + c.PerPacketCost + 2*ser + 3*batch*ser
}

// TunePoolSize implements §3.6: s is the next power of two of
// ceil(BDP/b), where the delay is the end-to-end RTT including host
// processing.
func TunePoolSize(bitsPerSec float64, pktBytes int, rtt netsim.Time) int {
	bdpBytes := bitsPerSec / 8 * float64(rtt) / 1e9
	slots := int(bdpBytes/float64(pktBytes)) + 1
	s := 1
	for s < slots {
		s *= 2
	}
	return s
}

// Result summarizes one tensor aggregation on the rack.
type Result struct {
	// Start is when the workers began sending.
	Start netsim.Time
	// Done[i] is when worker i finished receiving its aggregate.
	Done []netsim.Time
	// TAT is the tensor aggregation time of the slowest worker, the
	// paper's headline metric (§5.1).
	TAT netsim.Time
	// RTTs are sampled per-packet round-trip times on worker 0, when
	// Config.SampleRTT is set.
	RTTs []netsim.Time
	// Retransmissions is the total across workers.
	Retransmissions uint64
	// Failed lists the workers that did not survive the step: crashed
	// by the fault script or declared failed by the controller. Their
	// Done entries are zero and they are excluded from TAT.
	Failed []int
	// Left lists the workers that have gracefully departed the job so
	// far (elastic leave) — retired cleanly, not failed.
	Left []int
	// Detached lists the workers outside the membership this step
	// (never joined, or departed): not failed, not participating.
	Detached []int
}

// Rack is a simulated SwitchML deployment.
type Rack struct {
	cfg    Config
	sim    *netsim.Sim
	sw     *switchNode
	hosts  []*WorkerHost
	uplink []*netsim.Link
	// ctrl is the failure detector / recovery controller, nil unless
	// Config.Liveness is set.
	ctrl *controller
	// health is the switch health monitor / degradation controller,
	// nil unless Config.Health is set.
	health *healthMonitor
	// epoch is the current job generation; the controller bumps it on
	// every reconfiguration so stale packets are rejected by the
	// switch's JobID admission check.
	epoch uint16
	// step counts AllReduce calls, the anchor for step-relative fault
	// actions.
	step int
	// rejoin marks that a restarted worker is waiting to be re-admitted
	// at the next step boundary.
	rejoin bool
	// streamOff is the global stream offset consumed by completed
	// steps; an elastic joiner's worker cursor starts here so its
	// offsets agree with the incumbents'.
	streamOff uint64
	// pendingJoin/pendingLeave mark hosts whose graceful membership
	// change commits at the next step boundary; membershipDirty arms
	// the commit.
	pendingJoin, pendingLeave []bool
	membershipDirty           bool
	// left records gracefully departed workers, in departure order.
	left []int
	// faultErr records an unrecoverable error raised inside the
	// simulation loop (e.g. a resume frontier no worker can honor).
	faultErr error
	// sampler turns the registry into virtual-time series when
	// Config.SampleEvery is set; sampling guards the tick chain and
	// lastSample keeps timestamps strictly increasing across steps.
	sampler    *telemetry.Sampler
	sampling   bool
	lastSample int64
}

// NewRack builds the topology. Loss recovery defaults to on; callers
// running the Algorithm 1 ablation must set cfg.LossRecovery
// explicitly and keep cfg.LossRate zero.
func NewRack(cfg Config) (*Rack, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("rack: worker count must be positive, got %d", cfg.Workers)
	}
	if !cfg.LossRecovery && (cfg.LossRate > 0 || cfg.BurstLoss != nil || cfg.DupRate > 0 ||
		cfg.CorruptRate > 0 || cfg.Faults != nil) {
		return nil, fmt.Errorf("rack: loss injection requires loss recovery (Algorithm 3)")
	}
	if cfg.BurstLoss != nil {
		if _, err := netsim.NewGilbertElliott(*cfg.BurstLoss); err != nil {
			return nil, err
		}
	}
	if cfg.StandbySwitches < 0 {
		return nil, fmt.Errorf("rack: standby switch count must be non-negative, got %d", cfg.StandbySwitches)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(cfg.Workers); err != nil {
			return nil, err
		}
		for i, a := range cfg.Faults.Actions {
			if (a.Kind == faults.KillStandby || a.Kind == faults.ReviveStandby) &&
				a.Worker > cfg.StandbySwitches {
				return nil, fmt.Errorf("rack: action %d (%v) targets standby rank %d of %d",
					i, a.Kind, a.Worker, cfg.StandbySwitches)
			}
		}
	}
	cfg.fillDefaults()
	if cfg.SampleEvery > 0 && cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	for _, w := range cfg.Detached {
		if w < 0 || w >= cfg.Workers {
			return nil, fmt.Errorf("rack: detached worker %d out of range [0,%d)", w, cfg.Workers)
		}
	}
	if len(cfg.Detached) >= cfg.Workers {
		return nil, fmt.Errorf("rack: all %d workers detached; the job needs at least one member", cfg.Workers)
	}
	sim := netsim.NewSim(cfg.Seed)
	sim.SetTracer(cfg.Tracer)
	sw, err := newSwitchNode(sim, cfg)
	if err != nil {
		return nil, err
	}
	r := &Rack{
		cfg: cfg, sim: sim, sw: sw,
		pendingJoin:  make([]bool, cfg.Workers),
		pendingLeave: make([]bool, cfg.Workers),
	}
	for i := 0; i < cfg.Workers; i++ {
		h, err := NewWorkerHost(sim, cfg, uint16(i))
		if err != nil {
			return nil, err
		}
		rate := cfg.LinkBitsPerSec
		if i < len(cfg.WorkerLinkBitsPerSec) && cfg.WorkerLinkBitsPerSec[i] > 0 {
			rate = cfg.WorkerLinkBitsPerSec[i]
		}
		up := netsim.NewLink(sim, cfg.linkConfig(fmt.Sprintf("w%d->sw", i), rate), sw)
		down := netsim.NewLink(sim, cfg.linkConfig(fmt.Sprintf("sw->w%d", i), rate), h)
		h.uplink = up
		h.onStall = func(w uint16) {
			if r.faultErr == nil {
				r.faultErr = fmt.Errorf("rack: worker %d gave up after %d straight timeouts on one chunk: %w", w, stallLimit, ErrSwitchDown)
			}
		}
		sw.downlinks = append(sw.downlinks, down)
		r.hosts = append(r.hosts, h)
		r.uplink = append(r.uplink, up)
	}
	if len(cfg.Detached) > 0 {
		active := make([]bool, cfg.Workers)
		for i := range active {
			active[i] = true
		}
		for _, w := range cfg.Detached {
			r.hosts[w].detached = true
			active[w] = false
		}
		if err := sw.sw.Reconfigure(active, r.epoch); err != nil {
			return nil, err
		}
	}
	if cfg.Liveness != nil {
		r.ctrl = newController(r, *cfg.Liveness)
		sw.seen = func(w int) { r.ctrl.tracker.Touch(w, int64(sim.Now())) }
	}
	if cfg.Health != nil {
		r.health = newHealthMonitor(r, *cfg.Health)
		if cfg.StartDegraded {
			r.health.setMode(modeDegraded)
		}
	}
	if cfg.SampleEvery > 0 {
		r.sampler = telemetry.NewSampler(cfg.Metrics, telemetry.SamplerConfig{})
		r.sampler.AddProbe("rack_pool_occupancy", func() float64 {
			return r.homeSwitch().PoolState(false).Occupancy
		})
		r.lastSample = -1
	}
	if cfg.Faults != nil {
		for _, a := range cfg.Faults.Absolute() {
			a := a
			sim.At(a.At, func() { r.apply(a) })
		}
	}
	return r, nil
}

// linkConfig assembles one access link's configuration. Each call
// builds a fresh burst-loss chain when burst loss is on: the chain is
// stateful and must be exclusive to its link.
func (c *Config) linkConfig(name string, rate float64) netsim.LinkConfig {
	lc := netsim.LinkConfig{
		Name:        name,
		BitsPerSec:  rate,
		Propagation: c.Propagation,
		LossRate:    c.LossRate,
		DupRate:     c.DupRate,
		CorruptRate: c.CorruptRate,
	}
	if c.BurstLoss != nil {
		// Validated by NewRack; construction cannot fail here.
		ge, err := netsim.NewGilbertElliott(*c.BurstLoss)
		if err == nil {
			lc.Loss = ge
			lc.LossRate = 0
		}
	}
	return lc
}

// Config returns the rack's effective configuration (defaults
// filled).
func (r *Rack) Config() Config { return r.cfg }

// Sim exposes the underlying simulation, e.g. for custom experiment
// scheduling.
func (r *Rack) Sim() *netsim.Sim { return r.sim }

// Switch exposes the primary switch state machine for statistics.
func (r *Rack) Switch() *core.Switch { return r.sw.sw }

// Standby exposes warm-standby rung i (1-based) for statistics.
func (r *Rack) Standby(i int) *core.Switch { return r.sw.standbys[i-1] }

// HomeRank reports the failover-ladder rung currently serving the
// job: 0 is the primary switch, higher ranks are warm standbys. While
// degraded to the host mesh it reports the last switch rung the job
// was homed on.
func (r *Rack) HomeRank() int { return r.sw.home }

// homeSwitch returns the aggregation program currently serving the
// job — the primary, or the standby rung the health monitor re-homed
// to. Every membership reconfiguration must target it: fencing a
// generation into a rung the job does not live on would leave the
// serving pool admitting stale traffic.
func (r *Rack) homeSwitch() *core.Switch { return r.sw.prog(r.sw.home) }

// Hosts returns per-worker protocol statistics.
func (r *Rack) WorkerStats(i int) core.WorkerStats { return r.hosts[i].worker.Stats() }

// AllReduceShared aggregates one tensor whose contents are identical
// on every worker (sharing the backing array to keep memory flat in
// large experiments) and runs the simulation to completion.
func (r *Rack) AllReduceShared(u []int32) (Result, error) {
	us := make([][]int32, r.cfg.Workers)
	for i := range us {
		us[i] = u
	}
	return r.AllReduce(us)
}

// AllReduce aggregates one tensor (updates[i] is worker i's
// contribution) and runs the simulation until every worker holds the
// aggregate. Workers start synchronously at the current virtual
// time, as after a barrier.
func (r *Rack) AllReduce(updates [][]int32) (Result, error) {
	if len(updates) != r.cfg.Workers {
		return Result{}, fmt.Errorf("rack: got %d updates for %d workers", len(updates), r.cfg.Workers)
	}
	r.step++
	if r.rejoin {
		r.restartJob()
	}
	// Graceful membership changes commit at the step boundary: no
	// tensor is in flight, so the generation bump and pool wipe can
	// never tear an aggregate.
	r.commitMembership()
	if r.health != nil {
		// Step boundaries are the natural barrier for returning to the
		// switch: no tensor is in flight.
		r.health.maybeFailback()
	}
	if r.cfg.Faults != nil {
		now := r.sim.Now()
		for _, a := range r.cfg.Faults.ForStep(r.step) {
			a := a
			r.sim.At(now+a.At, func() { r.apply(a) })
		}
	}
	res := Result{
		Start: r.sim.Now(),
		Done:  make([]netsim.Time, r.cfg.Workers),
	}
	started := make([]bool, r.cfg.Workers)
	if r.health != nil && r.health.mode == modeDegraded {
		r.health.stepHosted(updates, started, &res)
	} else {
		for i, h := range r.hosts {
			if r.skip(i) {
				continue
			}
			started[i] = true
			i := i
			h.Start(updates[i], func(t netsim.Time) {
				res.Done[i] = t
			})
			if r.ctrl != nil {
				r.ctrl.tracker.Touch(i, int64(r.sim.Now()))
			}
		}
		if r.health != nil {
			r.health.watch()
		}
	}
	if r.ctrl != nil {
		r.ctrl.begin()
	}
	r.startSampling()
	r.sim.Run()
	if r.faultErr != nil {
		return Result{}, r.faultErr
	}
	unfinished := 0
	tensorLen := 0
	for i, h := range r.hosts {
		if h.detached {
			// Outside the membership by choice (never joined, or
			// gracefully departed): not a failure.
			res.Detached = append(res.Detached, i)
			continue
		}
		if !started[i] || h.crashed || r.dead(i) {
			res.Failed = append(res.Failed, i)
			continue
		}
		if !h.finished {
			unfinished++
			continue
		}
		tensorLen = len(updates[i])
		if d := res.Done[i] - res.Start; d > res.TAT {
			res.TAT = d
		}
		res.Retransmissions += h.worker.Stats().Retransmissions
		if r.cfg.SampleRTT && i == 0 {
			res.RTTs = h.rtts
			h.rtts = nil
		}
	}
	res.Left = append([]int(nil), r.left...)
	if unfinished > 0 {
		if r.sw.down {
			return Result{}, fmt.Errorf("rack: simulation drained with %d workers unfinished: %w", unfinished, ErrSwitchDown)
		}
		return Result{}, fmt.Errorf("rack: simulation drained with %d workers unfinished", unfinished)
	}
	// The stream advanced by one tensor on every member; an elastic
	// joiner admitted at the next boundary starts its cursor here.
	r.streamOff += uint64(tensorLen)
	return res, nil
}

// dead reports whether the controller has declared worker i failed.
func (r *Rack) dead(i int) bool {
	return r.ctrl != nil && r.ctrl.tracker.Dead(i)
}

// skip reports whether worker i takes no part in the current step:
// crashed, declared failed, or outside the membership (detached).
func (r *Rack) skip(i int) bool {
	return r.hosts[i].crashed || r.hosts[i].detached || r.dead(i)
}

// Left returns the workers that have gracefully departed so far, in
// departure order.
func (r *Rack) Left() []int { return append([]int(nil), r.left...) }

// Member reports whether worker i is currently inside the job
// membership (not detached, not crashed, not declared failed).
func (r *Rack) Member(i int) bool {
	return i >= 0 && i < len(r.hosts) && !r.skip(i)
}

// Aggregate returns worker i's aggregation output buffer.
func (r *Rack) Aggregate(i int) []int32 { return r.hosts[i].worker.Aggregate() }

// Counters assembles a protocol-counter snapshot across every
// component of the rack: link traffic, worker protocol counters, and
// switch counters. Bench runners attach it to experiment results so
// trajectories carry protocol behaviour alongside timing.
func (r *Rack) Counters() map[string]uint64 {
	m := make(map[string]uint64)
	links := append([]*netsim.Link(nil), r.uplink...)
	links = append(links, r.sw.downlinks...)
	for _, l := range links {
		st := l.Stats()
		m["packets_sent"] += st.Sent
		m["packets_delivered"] += st.Delivered
		m["packets_dropped"] += st.Dropped
		m["wire_bytes"] += st.Bytes
	}
	for _, h := range r.hosts {
		st := h.worker.Stats()
		m["worker_sent"] += st.Sent
		m["worker_retransmissions"] += st.Retransmissions
		m["worker_results"] += st.Results
		m["worker_stale_results"] += st.StaleResults
	}
	st := r.sw.sw.Stats()
	m["switch_updates"] = st.Updates
	m["switch_completions"] = st.Completions
	m["switch_ignored_duplicates"] = st.IgnoredDuplicates
	m["switch_shadow_reads"] = st.ResultRetransmissions
	m["switch_stale_updates"] = st.StaleUpdates
	if h := r.health; h != nil {
		m["health_degrades"] = h.degrades
		m["health_failbacks"] = h.failbacks
		m["health_probes"] = h.probes
		m["health_probe_acks"] = h.probeAcks
		m["host_aggregated_elems"] = h.hostElems
		m["failover_rehomes"] = h.rehomes
	}
	for _, sb := range r.sw.standbys {
		st := sb.Stats()
		m["standby_updates"] += st.Updates
		m["standby_completions"] += st.Completions
	}
	return m
}

// switchNode adapts core.Switch to netsim. It hosts the whole
// aggregation ladder behind one crossbar: the primary program (rung 0)
// plus Config.StandbySwitches warm standbys, any of which can be
// killed and revived independently. Update traffic is served by the
// rung the health monitor currently homes the job on; stale packets
// fenced out by the generation bump are rejected by the rung's JobID
// admission check.
type switchNode struct {
	sim       *netsim.Sim
	cfg       Config
	sw        *core.Switch
	downlinks []*netsim.Link
	// standbys are the warm-standby aggregation programs, rungs
	// 1..len(standbys) of the failover ladder; sbDown marks the killed
	// ones (faults.KillStandby).
	standbys []*core.Switch
	sbDown   []bool
	// home is the rung currently serving update traffic; the health
	// monitor moves it.
	home int
	// seen, when set, observes the worker id of every arriving packet;
	// the failure detector feeds its liveness tracker with it.
	seen func(worker int)
	// down marks a failed primary aggregation program
	// (faults.KillSwitch): update packets are blackholed and probes go
	// unanswered, but the crossbar keeps forwarding host-to-host
	// traffic.
	down bool
	// peerDst, when set by the health monitor, maps a fallback ring
	// rank to its host's downlink for crossbar forwarding.
	peerDst func(rank int) *netsim.Link
}

func newSwitchNode(sim *netsim.Sim, cfg Config) (*switchNode, error) {
	scfg := core.SwitchConfig{
		Workers:      cfg.Workers,
		PoolSize:     cfg.PoolSize,
		SlotElems:    cfg.SlotElems,
		LossRecovery: cfg.LossRecovery,
		Quorum:       cfg.Quorum,
		LatePolicy:   cfg.LatePolicy,
		Metrics:      cfg.Metrics,
		Tracer:       cfg.Tracer,
		Now:          func() int64 { return int64(sim.Now()) },
	}
	sw, err := core.NewSwitch(scfg)
	if err != nil {
		return nil, err
	}
	n := &switchNode{sim: sim, cfg: cfg, sw: sw}
	for i := 0; i < cfg.StandbySwitches; i++ {
		// Standbys share the registry-backed counters with the primary
		// via name, which would double-count; they report through
		// Rack.Counters' standby_* keys instead.
		sbcfg := scfg
		sbcfg.Metrics = nil
		sb, err := core.NewSwitch(sbcfg)
		if err != nil {
			return nil, err
		}
		n.standbys = append(n.standbys, sb)
	}
	n.sbDown = make([]bool, cfg.StandbySwitches)
	return n, nil
}

// prog returns the ladder rung's aggregation program (0 = primary).
func (s *switchNode) prog(rank int) *core.Switch {
	if rank == 0 {
		return s.sw
	}
	return s.standbys[rank-1]
}

// progDown reports whether a rung's aggregation program is killed.
func (s *switchNode) progDown(rank int) bool {
	if rank == 0 {
		return s.down
	}
	return s.sbDown[rank-1]
}

// rungs is the ladder height: the primary plus every standby.
func (s *switchNode) rungs() int { return 1 + len(s.standbys) }

// Deliver processes an update at line rate and emits responses after
// the pipeline latency. The traffic manager duplicates multicast
// results onto every port (Appendix B). Host-to-host fallback bursts
// are forwarded by the crossbar even while the aggregation program is
// down — the failure mode the degradation controller exploits.
func (s *switchNode) Deliver(msg netsim.Message) {
	if pm, ok := msg.(allreduce.PeerMsg); ok {
		if s.peerDst == nil {
			return
		}
		dl := s.peerDst(pm.PeerDst())
		if dl == nil {
			return
		}
		s.sim.After(s.cfg.SwitchLatency, func() { dl.Send(msg) })
		return
	}
	p := msg.(*packet.Packet)
	if s.seen != nil {
		s.seen(int(p.WorkerID))
	}
	if p.Kind == packet.KindProbe {
		// Probes target the primary: they are the fail-up ladder's
		// evidence that rung 0 is worth returning to.
		if s.down {
			return // a dead aggregation program answers nothing
		}
		ack := packet.NewControl(packet.KindProbeAck, p.WorkerID, p.JobID, 0, nil)
		ack.Idx = p.Idx
		s.sim.After(s.cfg.SwitchLatency, func() { s.downlinks[ack.WorkerID].Send(ack) })
		return
	}
	home := s.home
	if s.progDown(home) {
		return
	}
	resp := s.prog(home).Handle(p)
	if resp.Pkt == nil {
		return
	}
	delay := s.cfg.SwitchLatency
	if home != 0 {
		// The detour through the standby rung: extra hops on the way
		// in and on the way back out.
		delay += 2 * s.cfg.StandbyLatency
	}
	s.sim.After(delay, func() {
		if resp.Multicast {
			for _, dl := range s.downlinks {
				dl.Send(resp.Pkt.Clone())
			}
			return
		}
		s.downlinks[resp.Pkt.WorkerID].Send(resp.Pkt)
	})
}

// WorkerHost adapts core.Worker to netsim: it owns the uplink,
// retransmission timers, and the multi-core processing model.
type WorkerHost struct {
	sim    *netsim.Sim
	cfg    Config
	worker *core.Worker
	uplink *netsim.Link
	// coreFree[c] is when virtual core c next becomes idle. Slots are
	// sharded to cores by idx % Cores, mirroring Flow Director
	// steering with disjoint slot sets per core (Appendix B).
	coreFree []netsim.Time
	// timers holds the per-slot retransmission timer; the zero Timer
	// means none armed.
	timers []netsim.Timer
	// backoff counts consecutive timeouts per slot; the RTO doubles
	// with each (capped), preventing retransmission storms when the
	// timeout is set below the loaded RTT — the adaptation §6 calls
	// for ("take care to adapt the retransmission timeout according
	// to variations in end-to-end RTT").
	backoff []uint8
	// sentAt records each slot's last transmission time for RTT
	// sampling.
	sentAt []netsim.Time
	// retxed marks slots whose in-flight chunk has been retransmitted
	// (Karn's rule: their RTT samples are ambiguous and discarded).
	retxed []bool
	// srtt/rttvar are the Jacobson estimator state when AdaptiveRTO
	// is on; srtt == 0 means no sample yet.
	srtt, rttvar netsim.Time
	rtts         []netsim.Time
	// rttHist receives every clean RTT sample when Config.Metrics is
	// set, shared by all hosts in the rack.
	rttHist *telemetry.Histogram
	onDone  func(netsim.Time)
	// wcfg is kept so a restart can rebuild a fresh protocol state
	// machine (the crashed process lost its memory).
	wcfg core.WorkerConfig
	// crashed silences the host entirely: no sends, receives or timer
	// callbacks, as a process crash or machine failure would.
	crashed bool
	// detached marks a host outside the job membership: healthy but
	// not participating (waiting to join, or gracefully departed).
	detached bool
	// draining marks a host that announced a graceful leave and is
	// finishing its current step before departing at the boundary.
	draining bool
	// finished marks that the current tensor's aggregate is complete on
	// this host; a recovery resume can clear it again.
	finished bool
	// stall counts consecutive timeouts per slot with no progress; with
	// NoFallback, a slot that exceeds stallLimit abandons the step and
	// raises the typed switch-unavailable error instead of
	// retransmitting forever into a dead switch.
	stall []uint8
	// observe/probeAck/peerRecv are the health monitor's taps on the
	// receive path: switch-path life, probe answers and fallback ring
	// bursts. Nil when health monitoring is off.
	observe  func()
	probeAck func(*packet.Packet)
	peerRecv func(allreduce.PeerMsg)
	// onStall reports a NoFallback stall to the rack.
	onStall func(worker uint16)
}

// stallLimit is the consecutive-timeout budget per slot under
// NoFallback. Reaching it with exponential backoff means the switch
// answered nothing for over a hundred RTOs on one chunk: loss cannot
// plausibly explain it, only a dead switch can.
const stallLimit = 8

func NewWorkerHost(sim *netsim.Sim, cfg Config, id uint16) (*WorkerHost, error) {
	cfg.fillDefaults()
	wcfg := core.WorkerConfig{
		ID:           id,
		Workers:      cfg.Workers,
		PoolSize:     cfg.PoolSize,
		SlotElems:    cfg.SlotElems,
		LossRecovery: cfg.LossRecovery,
		Metrics:      cfg.Metrics,
	}
	w, err := core.NewWorker(wcfg)
	if err != nil {
		return nil, err
	}
	h := &WorkerHost{
		sim:      sim,
		cfg:      cfg,
		worker:   w,
		wcfg:     wcfg,
		coreFree: make([]netsim.Time, cfg.Cores),
		timers:   make([]netsim.Timer, cfg.PoolSize),
		backoff:  make([]uint8, cfg.PoolSize),
		sentAt:   make([]netsim.Time, cfg.PoolSize),
		retxed:   make([]bool, cfg.PoolSize),
		stall:    make([]uint8, cfg.PoolSize),
	}
	if cfg.Metrics != nil {
		h.rttHist = cfg.Metrics.Histogram("rack_rtt_ns", telemetry.LatencyBuckets)
	}
	return h, nil
}

// trace emits a host-level event for slot idx (-1 when not
// slot-specific), stamped with the current virtual time.
func (h *WorkerHost) trace(t telemetry.EventType, idx int32, off int64) {
	if h.cfg.Tracer == nil {
		return
	}
	e := telemetry.Ev(t, int64(h.sim.Now()))
	e.Actor = fmt.Sprintf("w%d", h.worker.Config().ID)
	e.Worker = int32(h.worker.Config().ID)
	e.Slot = idx
	e.Off = off
	h.cfg.Tracer.Emit(e)
}

// core returns the virtual core owning a slot.
func (h *WorkerHost) coreOf(idx uint32) int { return int(idx) % h.cfg.Cores }

// charge occupies the slot's core for one packet's processing and
// returns the completion time.
func (h *WorkerHost) charge(idx uint32) netsim.Time {
	c := h.coreOf(idx)
	start := h.coreFree[c]
	if now := h.sim.Now(); start < now {
		start = now
	}
	done := start + h.cfg.PerPacketCost
	h.coreFree[c] = done
	return done
}

// SetUplink attaches the host's transmit link; it must be called
// before Start.
func (h *WorkerHost) SetUplink(l *netsim.Link) { h.uplink = l }

// Worker exposes the protocol state machine for statistics and
// result access.
func (h *WorkerHost) Worker() *core.Worker { return h.worker }

// Start begins aggregating u; onDone fires when the aggregate is
// complete on this worker.
func (h *WorkerHost) Start(u []int32, onDone func(netsim.Time)) {
	h.onDone = onDone
	h.finished = false
	if h.cfg.Tracer != nil {
		e := telemetry.Ev(telemetry.EvTensorStart, int64(h.sim.Now()))
		e.Actor = fmt.Sprintf("w%d", h.worker.Config().ID)
		e.Worker = int32(h.worker.Config().ID)
		e.Size = int32(4 * len(u))
		h.cfg.Tracer.Emit(e)
	}
	pkts := h.worker.Start(u)
	if len(pkts) == 0 {
		// Empty tensor: complete immediately.
		t := h.sim.Now()
		h.sim.At(t, func() {
			h.finished = true
			h.trace(telemetry.EvTensorDone, -1, -1)
			onDone(t)
		})
		return
	}
	for _, p := range pkts {
		p := p
		h.sim.At(h.charge(p.Idx), func() { h.transmit(p, false) })
	}
}

// transmit puts an update on the uplink and arms its retransmission
// timer.
func (h *WorkerHost) transmit(p *packet.Packet, retransmit bool) {
	if h.crashed {
		return
	}
	if retransmit {
		h.trace(telemetry.EvRetransmit, int32(p.Idx), int64(p.Off))
	}
	h.sentAt[p.Idx] = h.sim.Now()
	h.retxed[p.Idx] = retransmit
	h.uplink.Send(p)
	h.armTimer(p.Idx)
}

func (h *WorkerHost) armTimer(idx uint32) {
	h.timers[idx].Cancel()
	rto := h.rto() << h.backoff[idx]
	h.timers[idx] = h.sim.After(rto, func() {
		h.timers[idx] = netsim.Timer{}
		if !h.worker.Pending(idx) {
			return
		}
		h.trace(telemetry.EvTimeoutFired, int32(idx), -1)
		if h.backoff[idx] < 6 {
			h.backoff[idx]++
		}
		if h.cfg.NoFallback {
			if h.stall[idx]++; h.stall[idx] >= stallLimit {
				// Fallback was declined; abandon the step so the
				// simulation drains and the caller gets the typed error.
				h.cancelTimers()
				if h.onStall != nil {
					h.onStall(h.wcfg.ID)
				}
				return
			}
		}
		// Build the retransmission at transmit time, not at timer-fire
		// time: the slot's core may still hold an unprocessed result
		// that advances the slot before the CPU frees up, and a stale
		// snapshot would then reach the wire *after* the next-phase
		// update, violating the FIFO ordering the protocol relies on.
		h.sim.At(h.charge(idx), func() {
			rt := h.worker.Retransmit(idx)
			if rt == nil {
				return
			}
			h.transmit(rt, true)
		})
	})
}

// rto returns the base retransmission timeout, adapted to the
// estimated RTT when configured.
func (h *WorkerHost) rto() netsim.Time {
	if !h.cfg.AdaptiveRTO || h.srtt == 0 {
		return h.cfg.RTO
	}
	rto := h.srtt + 4*h.rttvar
	if rto < h.cfg.RTO {
		rto = h.cfg.RTO
	}
	if max := h.cfg.RTO * 64; rto > max {
		rto = max
	}
	return rto
}

// observeRTT folds a clean (never-retransmitted) chunk's round trip
// into the Jacobson estimator.
func (h *WorkerHost) observeRTT(sample netsim.Time) {
	if h.srtt == 0 {
		h.srtt = sample
		h.rttvar = sample / 2
		return
	}
	diff := h.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	h.rttvar += (diff - h.rttvar) / 4
	h.srtt += (sample - h.srtt) / 8
}

// startHosted begins aggregating u in degraded mode: the tensor opens
// in the protocol state machine (preserving stream offsets for a later
// failback) but no packets go out — the health monitor's ring computes
// the sum and installs it via InstallHostAggregate. An empty tensor
// completes immediately, as on the switch path.
func (h *WorkerHost) startHosted(u []int32, onDone func(netsim.Time)) {
	h.onDone = onDone
	h.finished = false
	if h.cfg.Tracer != nil {
		e := telemetry.Ev(telemetry.EvTensorStart, int64(h.sim.Now()))
		e.Actor = fmt.Sprintf("w%d", h.worker.Config().ID)
		e.Worker = int32(h.worker.Config().ID)
		e.Size = int32(4 * len(u))
		h.cfg.Tracer.Emit(e)
	}
	h.worker.StartHosted(u)
	if len(u) == 0 {
		t := h.sim.Now()
		h.sim.At(t, func() {
			h.finished = true
			h.trace(telemetry.EvTensorDone, -1, -1)
			onDone(t)
		})
	}
}

// cancelTimers disarms every retransmission timer and clears the
// per-slot backoff state — the switch path is being abandoned (degrade
// handoff) or rebuilt (failback, resume).
func (h *WorkerHost) cancelTimers() {
	for i := range h.timers {
		h.timers[i].Cancel()
		h.timers[i] = netsim.Timer{}
		h.backoff[i] = 0
		h.retxed[i] = false
		h.stall[i] = 0
	}
}

// Deliver receives a result packet from the switch, a probe answer, or
// a fallback ring burst forwarded by the crossbar.
func (h *WorkerHost) Deliver(msg netsim.Message) {
	if h.crashed {
		return
	}
	if pm, ok := msg.(allreduce.PeerMsg); ok {
		if h.peerRecv != nil {
			h.peerRecv(pm)
		}
		return
	}
	p := msg.(*packet.Packet)
	if p.Kind == packet.KindProbeAck {
		if h.probeAck != nil {
			h.probeAck(p)
		}
		return
	}
	if h.observe != nil {
		h.observe()
	}
	done := h.charge(p.Idx)
	h.sim.At(done, func() {
		if h.crashed {
			return
		}
		next, finished := h.worker.HandleResult(p)
		if next == nil && !finished && h.worker.Pending(p.Idx) {
			// Stale result: the slot is still in flight; leave the
			// timer armed.
			return
		}
		h.timers[p.Idx].Cancel()
		h.timers[p.Idx] = netsim.Timer{}
		h.backoff[p.Idx] = 0
		h.stall[p.Idx] = 0
		if sample := h.sim.Now() - h.sentAt[p.Idx]; true {
			if h.cfg.AdaptiveRTO && !h.retxed[p.Idx] {
				// Karn's rule: only unambiguous samples train the
				// estimator.
				h.observeRTT(sample)
			}
			if h.rttHist != nil && !h.retxed[p.Idx] {
				h.rttHist.Observe(float64(sample))
			}
			if h.cfg.SampleRTT && h.worker.Config().ID == 0 {
				h.rtts = append(h.rtts, sample)
			}
		}
		if next != nil {
			// Self-clocked follow-up (Algorithm 4 line 17); the CPU
			// charge for the receive covers the run-to-completion
			// send.
			h.transmit(next, false)
		}
		if finished {
			h.finished = true
			h.trace(telemetry.EvTensorDone, -1, -1)
			if h.onDone != nil {
				h.onDone(h.sim.Now())
			}
		}
	})
}
