package rack

import (
	"errors"
	"reflect"
	"testing"

	"switchml/internal/faults"
	"switchml/internal/netsim"
	"switchml/internal/telemetry"
)

// failoverTestConfig is healthTestConfig plus a warm-standby ladder:
// the kill → re-home → failback timings all resolve within a few
// steps.
func failoverTestConfig(sc *faults.Scenario, standbys int) Config {
	cfg := healthTestConfig(sc)
	cfg.StandbySwitches = standbys
	return cfg
}

// TestFaultRackStandbyFailoverAndFailback is the simulator twin of the
// UDP transport's warm-standby tentpole: the primary's aggregation
// program dies mid-step, the job re-homes onto the standby rung at the
// chunk frontier — never touching the host mesh — runs there at full
// switch rate, and climbs back to the primary after the probation
// window. Every step's aggregate must equal the exact sum.
func TestFaultRackStandbyFailoverAndFailback(t *testing.T) {
	const elems, steps = 4096, 8
	sc := &faults.Scenario{Actions: []faults.Action{
		{Kind: faults.KillSwitch, Step: 2, At: 20 * netsim.Microsecond},
		{Kind: faults.ReviveSwitch, Step: 3, At: 100 * netsim.Microsecond},
	}}
	cfg := failoverTestConfig(sc, 1)
	log := &eventLog{}
	cfg.Tracer = log
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sawStandby := false
	for step := 1; step <= steps; step++ {
		us, want := stepUpdates(4, elems, step)
		if _, err := r.AllReduce(us); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for w := 0; w < 4; w++ {
			if !reflect.DeepEqual(r.Aggregate(w), want) {
				t.Fatalf("step %d worker %d aggregate differs from the exact sum", step, w)
			}
		}
		if r.HomeRank() == 1 {
			sawStandby = true
		}
		if r.Degraded() {
			t.Fatalf("step %d: job fell to the host mesh with a live standby", step)
		}
	}

	if !sawStandby {
		t.Fatal("job never re-homed onto the standby rung")
	}
	if r.HomeRank() != 0 {
		t.Fatalf("HomeRank = %d after probation, want 0 (failed back)", r.HomeRank())
	}
	c := r.Counters()
	if c["failover_rehomes"] == 0 {
		t.Error("failover_rehomes = 0, want > 0")
	}
	if c["health_failbacks"] != 1 {
		t.Errorf("health_failbacks = %d, want 1", c["health_failbacks"])
	}
	if c["health_degrades"] != 0 {
		t.Errorf("health_degrades = %d, want 0: the standby should keep the job off the mesh", c["health_degrades"])
	}
	if c["standby_completions"] == 0 {
		t.Error("standby aggregated nothing; the re-home never took effect")
	}
	if c["health_probes"] == 0 || c["health_probe_acks"] == 0 {
		t.Errorf("probes/acks = %d/%d, want both nonzero", c["health_probes"], c["health_probe_acks"])
	}

	suspect := log.firstTS(telemetry.EvSwitchSuspect)
	rehome := log.firstTS(telemetry.EvRehome)
	adopt := log.firstTS(telemetry.EvAdopt)
	failback := log.firstTS(telemetry.EvFailback)
	if suspect < 0 || rehome < 0 || adopt < 0 || failback < 0 {
		t.Fatalf("missing ladder events: suspect=%d rehome=%d adopt=%d failback=%d",
			suspect, rehome, adopt, failback)
	}
	if !(suspect <= rehome && rehome <= adopt && adopt < failback) {
		t.Fatalf("ladder order wrong: suspect=%d rehome=%d adopt=%d failback=%d",
			suspect, rehome, adopt, failback)
	}
	for _, e := range log.evs {
		if e.Type == telemetry.EvRehome && e.Slot == 1 && e.Off%32 != 0 {
			t.Fatalf("re-home frontier %d is not a chunk boundary", e.Off)
		}
	}
}

// TestFaultRackLadderDescentToMesh kills the primary and the standby
// together: the ladder walk must try the standby first and only then
// hand the job to the host mesh, failing back up to the primary after
// its revival.
func TestFaultRackLadderDescentToMesh(t *testing.T) {
	const elems, steps = 4096, 9
	sc := &faults.Scenario{Actions: []faults.Action{
		{Kind: faults.KillSwitch, Step: 2, At: 20 * netsim.Microsecond},
		{Kind: faults.KillStandby, Worker: 1, Step: 2, At: 20 * netsim.Microsecond},
		{Kind: faults.ReviveSwitch, Step: 5, At: 50 * netsim.Microsecond},
	}}
	r, err := NewRack(failoverTestConfig(sc, 1))
	if err != nil {
		t.Fatal(err)
	}

	sawMesh := false
	for step := 1; step <= steps; step++ {
		us, want := stepUpdates(4, elems, step)
		if _, err := r.AllReduce(us); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for w := 0; w < 4; w++ {
			if !reflect.DeepEqual(r.Aggregate(w), want) {
				t.Fatalf("step %d worker %d aggregate differs from the exact sum", step, w)
			}
		}
		if r.Degraded() {
			sawMesh = true
		}
	}

	if !sawMesh {
		t.Fatal("job never degraded to the host mesh with both rungs dead")
	}
	c := r.Counters()
	if c["failover_rehomes"] == 0 {
		t.Error("failover_rehomes = 0: the ladder never tried the standby before the mesh")
	}
	if c["health_degrades"] != 1 {
		t.Errorf("health_degrades = %d, want 1", c["health_degrades"])
	}
	if r.Degraded() || r.HomeRank() != 0 {
		t.Errorf("degraded=%v home=%d at end, want primary service restored", r.Degraded(), r.HomeRank())
	}
	if c["health_failbacks"] == 0 {
		t.Error("health_failbacks = 0, want a climb back to the primary")
	}
}

// TestFaultRackAllRungsSilentNoFallbackTypedError declines the mesh
// (NoFallback) with a standby configured: a job whose every rung is
// dark must walk the whole ladder and then surface the typed,
// retryable ErrSwitchDown.
func TestFaultRackAllRungsSilentNoFallbackTypedError(t *testing.T) {
	sc := &faults.Scenario{Actions: []faults.Action{
		{Kind: faults.KillSwitch, Step: 1, At: 20 * netsim.Microsecond},
		{Kind: faults.KillStandby, Worker: 1, Step: 1, At: 20 * netsim.Microsecond},
	}}
	cfg := failoverTestConfig(sc, 1)
	cfg.NoFallback = true
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	us, _ := stepUpdates(4, 2048, 1)
	_, err = r.AllReduce(us)
	if !errors.Is(err, ErrSwitchDown) {
		t.Fatalf("AllReduce error = %v, want ErrSwitchDown", err)
	}
	if c := r.Counters(); c["failover_rehomes"] == 0 {
		t.Error("failover_rehomes = 0: the verdict fired without walking the ladder")
	}
}

// TestFaultRackSecondStandbyRung kills the primary and the first
// standby: the job must land on the second standby, not the mesh.
func TestFaultRackSecondStandbyRung(t *testing.T) {
	const elems, steps = 4096, 6
	sc := &faults.Scenario{Actions: []faults.Action{
		{Kind: faults.KillSwitch, Step: 2, At: 20 * netsim.Microsecond},
		{Kind: faults.KillStandby, Worker: 1, Step: 2, At: 20 * netsim.Microsecond},
	}}
	r, err := NewRack(failoverTestConfig(sc, 2))
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= steps; step++ {
		us, want := stepUpdates(4, elems, step)
		if _, err := r.AllReduce(us); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for w := 0; w < 4; w++ {
			if !reflect.DeepEqual(r.Aggregate(w), want) {
				t.Fatalf("step %d worker %d aggregate differs from the exact sum", step, w)
			}
		}
		if r.Degraded() {
			t.Fatalf("step %d: job fell to the mesh with rung 2 alive", step)
		}
	}
	if r.HomeRank() != 2 {
		t.Fatalf("HomeRank = %d, want 2 (second standby)", r.HomeRank())
	}
	if st := r.Standby(2).Stats(); st.Completions == 0 {
		t.Error("second standby aggregated nothing")
	}
}

// failoverQuorumRun drives the simulator half of the quorum-straggler
// chaos scenario: three workers with a two-worker quorum, bursty loss
// on the straggler's links, and a primary kill mid-run that re-homes
// the job onto the standby. It returns the traced event stream and
// checks cross-worker agreement every step — under quorum the
// aggregate depends on arrival order, so the assertable invariant is
// bitwise identity across workers, not the exact sum.
func failoverQuorumRun(t *testing.T) []telemetry.Event {
	t.Helper()
	// elems = 2·PoolSize·SlotElems: every (version, slot) pair is
	// unique within a tensor, so no slot is evicted mid-tensor and no
	// gone-reply can hand the straggler a divergent self-completed
	// chunk.
	const elems, steps = 512, 10
	sc := &faults.Scenario{Actions: []faults.Action{
		{Kind: faults.SetBurstLoss, Worker: 2, Step: 1,
			Burst: netsim.GEConfig{PGoodToBad: 0.15, PBadToGood: 0.4, LossBad: 0.9}},
		{Kind: faults.KillSwitch, Step: 3, At: 20 * netsim.Microsecond},
		{Kind: faults.ReviveSwitch, Step: 6, At: 50 * netsim.Microsecond},
	}}
	cfg := Config{
		Workers:      3,
		PoolSize:     8,
		SlotElems:    32,
		LossRecovery: true,
		RTO:          100 * netsim.Microsecond,
		AdaptiveRTO:  true,
		Seed:         42,
		Quorum:       2,
		Faults:       sc,
		Health: &HealthConfig{
			// Wider than the worst straggler result gap: retransmission
			// backoff caps at 64x the 100us RTO, so the bursty worker
			// can sit silent for ~6.4ms between deliveries without the
			// fabric being down. Only the scripted kill may read as
			// silence, else a false verdict while homed on the standby
			// would walk the ladder through the dead primary to mesh.
			SuspectAfter: 8 * netsim.Millisecond,
			ProbeEvery:   500 * netsim.Microsecond,
			Probation:    2,
		},
		StandbySwitches: 1,
	}
	log := &eventLog{}
	cfg.Tracer = log
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= steps; step++ {
		us, _ := stepUpdates(3, elems, step)
		if _, err := r.AllReduce(us); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		ref := r.Aggregate(0)
		for w := 1; w < 3; w++ {
			if !reflect.DeepEqual(r.Aggregate(w), ref) {
				t.Fatalf("step %d: worker %d aggregate diverged from worker 0", step, w)
			}
		}
	}
	c := r.Counters()
	if c["failover_rehomes"] == 0 {
		t.Error("failover_rehomes = 0: the kill never re-homed the job")
	}
	if c["health_degrades"] != 0 {
		t.Errorf("health_degrades = %d, want 0: the standby should absorb the kill", c["health_degrades"])
	}
	q := r.Switch().Stats().QuorumCompletions + r.Standby(1).Stats().QuorumCompletions
	if q == 0 {
		t.Error("no quorum completions: the straggler scenario never exercised quorum")
	}
	if r.HomeRank() != 0 {
		t.Errorf("HomeRank = %d at end, want 0", r.HomeRank())
	}
	return log.evs
}

// TestFaultRackFailoverWithQuorumStragglerReplay is the simulator twin
// of the transport's quorum-straggler failover chaos test, plus the
// replay gate: the whole kill → re-home → straggler-reconcile →
// failback timeline must replay bit-identically from the seed.
func TestFaultRackFailoverWithQuorumStragglerReplay(t *testing.T) {
	a := failoverQuorumRun(t)
	b := failoverQuorumRun(t)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at event %d:\n a: %+v\n b: %+v", i, a[i], b[i])
		}
	}
	types := telemetry.CountByType(a)
	if types[telemetry.EvRehome] == 0 || types[telemetry.EvAdopt] == 0 {
		t.Fatal("replay runs never re-homed; the scenario is not exercising the ladder")
	}
}
