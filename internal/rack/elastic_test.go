package rack

import (
	"reflect"
	"testing"

	"switchml/internal/faults"
	"switchml/internal/netsim"
	"switchml/internal/telemetry"
)

// memberSum is the exact elementwise aggregate of stepUpdates over a
// member subset — the reference for elastic steps where only part of
// the topology is inside the job.
func memberSum(members []int, workers, elems, step int) []int32 {
	us, _ := stepUpdates(workers, elems, step)
	want := make([]int32, elems)
	for _, w := range members {
		for j := range want {
			want[j] += us[w][j]
		}
	}
	return want
}

func checkAggregates(t *testing.T, r *Rack, members []int, elems, step int) {
	t.Helper()
	want := memberSum(members, r.Config().Workers, elems, step)
	for _, w := range members {
		if !reflect.DeepEqual(r.Aggregate(w), want) {
			t.Fatalf("step %d: worker %d aggregate differs from the %v-membership sum", step, w, members)
		}
	}
}

// TestElasticJoinAtStepBoundary admits a detached worker through a
// scripted JoinWorker action: the join must commit at the next step
// boundary (never mid-tensor), with every post-join aggregate exactly
// the full-membership sum on every worker, joiner included, and
// without ever tripping the failure detector.
func TestElasticJoinAtStepBoundary(t *testing.T) {
	const workers, elems, steps = 4, 2048, 6
	log := &eventLog{}
	r, err := NewRack(Config{
		Workers: workers, LossRecovery: true, Seed: 3,
		RTO:      100 * netsim.Microsecond,
		Detached: []int{3},
		Tracer:   log,
		Faults: &faults.Scenario{Actions: []faults.Action{
			// Requested during step 2; committed at the step-3 boundary.
			{Kind: faults.JoinWorker, Worker: 3, Step: 2, At: 10 * netsim.Microsecond},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Member(3) {
		t.Fatal("detached worker starts inside the membership")
	}
	const joinStep = 3
	incumbents := []int{0, 1, 2}
	full := []int{0, 1, 2, 3}
	epoch0 := r.Epoch()
	for step := 1; step <= steps; step++ {
		us, _ := stepUpdates(workers, elems, step)
		res, err := r.AllReduce(us)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if len(res.Failed) != 0 {
			t.Fatalf("step %d: Failed = %v, want none", step, res.Failed)
		}
		members := incumbents
		if step < joinStep {
			if !reflect.DeepEqual(res.Detached, []int{3}) {
				t.Fatalf("step %d: Detached = %v, want [3]", step, res.Detached)
			}
		} else {
			members = full
			if len(res.Detached) != 0 {
				t.Fatalf("step %d: Detached = %v after the join", step, res.Detached)
			}
		}
		checkAggregates(t, r, members, elems, step)
	}
	if !r.Member(3) {
		t.Error("joiner is not a member after the join")
	}
	if r.Epoch() == epoch0 {
		t.Error("join committed without a generation bump")
	}
	if log.firstTS(telemetry.EvWorkerJoin) < 0 {
		t.Error("no worker-join event was traced")
	}
	if ts := log.firstTS(telemetry.EvFailureDetected); ts >= 0 {
		t.Errorf("graceful join tripped the failure detector at %d", ts)
	}
}

// TestElasticLeaveDrainNoFalsePositive retires a worker through a
// scripted LeaveWorker action with an aggressive failure detector
// running: the leaver finishes its in-flight step (drain), departs at
// the boundary, and its silence afterwards must never be mistaken for
// a crash. A drain is telemetry-distinct from an eviction.
func TestElasticLeaveDrainNoFalsePositive(t *testing.T) {
	const workers, elems, steps = 4, 2048, 6
	log := &eventLog{}
	r, err := NewRack(Config{
		Workers: workers, LossRecovery: true, Seed: 5,
		RTO:    100 * netsim.Microsecond,
		Tracer: log,
		// A detector tight enough that the departed worker's silence
		// spans many sweep periods over the remaining steps.
		Liveness: &LivenessConfig{
			SilenceAfter: 500 * netsim.Microsecond,
			CheckEvery:   100 * netsim.Microsecond,
		},
		Faults: &faults.Scenario{Actions: []faults.Action{
			// Announced during step 2 (the drain); departed at the
			// step-3 boundary.
			{Kind: faults.LeaveWorker, Worker: 3, Step: 2, At: 10 * netsim.Microsecond},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const goneStep = 3
	full := []int{0, 1, 2, 3}
	survivors := []int{0, 1, 2}
	for step := 1; step <= steps; step++ {
		us, _ := stepUpdates(workers, elems, step)
		res, err := r.AllReduce(us)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if len(res.Failed) != 0 {
			t.Fatalf("step %d: Failed = %v — a drain is not a failure", step, res.Failed)
		}
		members := full
		if step >= goneStep {
			members = survivors
			if !reflect.DeepEqual(res.Left, []int{3}) {
				t.Fatalf("step %d: Left = %v, want [3]", step, res.Left)
			}
			if !reflect.DeepEqual(res.Detached, []int{3}) {
				t.Fatalf("step %d: Detached = %v, want [3]", step, res.Detached)
			}
		} else if len(res.Left) != 0 {
			t.Fatalf("step %d: Left = %v before the drain finished", step, res.Left)
		}
		checkAggregates(t, r, members, elems, step)
	}
	if r.Member(3) {
		t.Error("leaver is still a member")
	}
	drain := log.firstTS(telemetry.EvDrainStart)
	leave := log.firstTS(telemetry.EvWorkerLeave)
	if drain < 0 || leave < 0 {
		t.Fatalf("missing drain events: start=%d leave=%d", drain, leave)
	}
	if drain > leave {
		t.Fatalf("drain events out of order: start=%d leave=%d", drain, leave)
	}
	if ts := log.firstTS(telemetry.EvFailureDetected); ts >= 0 {
		t.Errorf("departed worker's silence tripped the failure detector at %d", ts)
	}
}

// TestElasticLastWorkerCannotLeave checks the floor: a drain request
// that would empty the job is refused and training continues.
func TestElasticLastWorkerCannotLeave(t *testing.T) {
	const workers, elems = 2, 512
	r, err := NewRack(Config{
		Workers: workers, LossRecovery: true, Seed: 1,
		RTO: 100 * netsim.Microsecond,
		Faults: &faults.Scenario{Actions: []faults.Action{
			{Kind: faults.LeaveWorker, Worker: 0, Step: 1, At: 5 * netsim.Microsecond},
			{Kind: faults.LeaveWorker, Worker: 1, Step: 1, At: 5 * netsim.Microsecond},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 3; step++ {
		us, _ := stepUpdates(workers, elems, step)
		res, err := r.AllReduce(us)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if len(res.Left) > 1 {
			t.Fatalf("step %d: both workers left — the job is empty", step)
		}
	}
	if !r.Member(1) {
		t.Error("the refused leaver was retired anyway")
	}
}

// TestFaultElasticJoinWhileDegraded is the elastic chaos scenario: the
// switch dies and the job degrades to host ring all-reduce; while
// degraded, a detached worker joins; the switch comes back and the job
// fails back through probation. Every post-join step must be
// bit-identical to a static full-membership run — across the degrade,
// the join, and the failback.
func TestFaultElasticJoinWhileDegraded(t *testing.T) {
	const workers, elems, steps = 4, 4096, 8
	log := &eventLog{}
	sc := &faults.Scenario{Actions: []faults.Action{
		{Kind: faults.KillSwitch, Step: 2, At: 20 * netsim.Microsecond},
		// Requested while degraded; committed at the step-4 boundary,
		// still on the host fabric.
		{Kind: faults.JoinWorker, Worker: 3, Step: 3, At: 10 * netsim.Microsecond},
		{Kind: faults.ReviveSwitch, Step: 4, At: 3 * netsim.Millisecond},
	}}
	cfg := Config{
		Workers: workers, PoolSize: 8, SlotElems: 32, LossRecovery: true,
		RTO:      100 * netsim.Microsecond,
		Seed:     7,
		Detached: []int{3},
		Tracer:   log,
		Faults:   sc,
		Health: &HealthConfig{
			SuspectAfter: 800 * netsim.Microsecond,
			ProbeEvery:   200 * netsim.Microsecond,
			Probation:    2,
		},
	}
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The static reference: all four workers from step 1, no faults.
	clean, err := NewRack(Config{
		Workers: workers, PoolSize: 8, SlotElems: 32, LossRecovery: true,
		RTO: 100 * netsim.Microsecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	const joinStep = 4
	incumbents := []int{0, 1, 2}
	full := []int{0, 1, 2, 3}
	for step := 1; step <= steps; step++ {
		us, _ := stepUpdates(workers, elems, step)
		if _, err := r.AllReduce(us); err != nil {
			t.Fatalf("step %d (elastic): %v", step, err)
		}
		us2, _ := stepUpdates(workers, elems, step)
		if _, err := clean.AllReduce(us2); err != nil {
			t.Fatalf("step %d (clean): %v", step, err)
		}
		if step < joinStep {
			checkAggregates(t, r, incumbents, elems, step)
			continue
		}
		// From the join on, the elastic run must match the static
		// full-membership run bit for bit, on every worker.
		for _, w := range full {
			if !reflect.DeepEqual(r.Aggregate(w), clean.Aggregate(w)) {
				t.Fatalf("step %d: worker %d diverges from the static run", step, w)
			}
		}
	}
	if !r.Member(3) {
		t.Error("joiner is not a member")
	}
	if r.Degraded() {
		t.Error("job still degraded after probation")
	}
	c := r.Counters()
	if c["health_degrades"] == 0 || c["health_failbacks"] == 0 {
		t.Errorf("degrades/failbacks = %d/%d, want both nonzero", c["health_degrades"], c["health_failbacks"])
	}
	if c["host_aggregated_elems"] == 0 {
		t.Error("no elements aggregated by the host fabric")
	}
	degrade := log.firstTS(telemetry.EvDegrade)
	join := log.firstTS(telemetry.EvWorkerJoin)
	failback := log.firstTS(telemetry.EvFailback)
	if degrade < 0 || join < 0 || failback < 0 {
		t.Fatalf("missing events: degrade=%d join=%d failback=%d", degrade, join, failback)
	}
	if !(degrade < join && join < failback) {
		t.Fatalf("the join did not land inside the degraded window: degrade=%d join=%d failback=%d",
			degrade, join, failback)
	}
	if ts := log.firstTS(telemetry.EvFailureDetected); ts >= 0 {
		t.Errorf("elastic chaos scenario tripped the failure detector at %d", ts)
	}
}

// TestFaultElasticChurnWithQuorum exercises leave + join + quorum in
// one run: a slow worker holds the job back, quorum mode lets slots
// complete without it, a worker drains out and a detached one joins.
// The run must stay live and every member must hold the same
// aggregate at every step (quorum multicasts one value per slot).
func TestFaultElasticChurnWithQuorum(t *testing.T) {
	const workers, elems, steps = 5, 2048, 8
	log := &eventLog{}
	r, err := NewRack(Config{
		Workers: workers, LossRecovery: true, Seed: 9,
		RTO:      100 * netsim.Microsecond,
		Quorum:   3,
		Detached: []int{4},
		Tracer:   log,
		// Worker 2 runs at a tenth of the line rate: the quorum
		// completes without it.
		WorkerLinkBitsPerSec: []float64{10e9, 10e9, 1e9, 10e9, 10e9},
		Faults: &faults.Scenario{Actions: []faults.Action{
			{Kind: faults.LeaveWorker, Worker: 1, Step: 3, At: 10 * netsim.Microsecond},
			{Kind: faults.JoinWorker, Worker: 4, Step: 5, At: 10 * netsim.Microsecond},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	members := func(step int) []int {
		switch {
		case step < 4:
			return []int{0, 1, 2, 3}
		case step < 6:
			return []int{0, 2, 3}
		default:
			return []int{0, 2, 3, 4}
		}
	}
	for step := 1; step <= steps; step++ {
		us, _ := stepUpdates(workers, elems, step)
		res, err := r.AllReduce(us)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if len(res.Failed) != 0 {
			t.Fatalf("step %d: Failed = %v", step, res.Failed)
		}
		// Under quorum the aggregate may exclude straggler gradients,
		// but it must be one value: every member agrees bitwise.
		ms := members(step)
		ref := r.Aggregate(ms[0])
		for _, w := range ms[1:] {
			if !reflect.DeepEqual(r.Aggregate(w), ref) {
				t.Fatalf("step %d: worker %d diverges from worker %d", step, w, ms[0])
			}
		}
	}
	if sw := r.Switch().Stats(); sw.QuorumCompletions == 0 {
		t.Error("quorum mode never completed a slot short of the membership")
	}
	if ts := log.firstTS(telemetry.EvFailureDetected); ts >= 0 {
		t.Errorf("churn-with-quorum run tripped the failure detector at %d", ts)
	}
	if log.firstTS(telemetry.EvWorkerLeave) < 0 || log.firstTS(telemetry.EvWorkerJoin) < 0 {
		t.Error("membership churn left no join/leave trace")
	}
}
