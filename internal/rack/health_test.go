package rack

import (
	"errors"
	"reflect"
	"testing"

	"switchml/internal/faults"
	"switchml/internal/netsim"
	"switchml/internal/telemetry"
)

// healthTestConfig is a small rack tuned so a switch kill mid-step
// lands with chunks both completed and in flight, and detection,
// probing and probation all resolve within a few steps.
func healthTestConfig(sc *faults.Scenario) Config {
	return Config{
		Workers:      4,
		PoolSize:     8,
		SlotElems:    32,
		LossRecovery: true,
		RTO:          100 * netsim.Microsecond,
		Seed:         7,
		Faults:       sc,
		Health: &HealthConfig{
			SuspectAfter: 800 * netsim.Microsecond,
			ProbeEvery:   200 * netsim.Microsecond,
			Probation:    2,
		},
	}
}

// stepUpdates builds per-worker updates whose values identify both the
// step and the worker, so a torn or replayed chunk cannot go unnoticed.
func stepUpdates(workers, elems, step int) ([][]int32, []int32) {
	us := make([][]int32, workers)
	want := make([]int32, elems)
	for w := range us {
		us[w] = make([]int32, elems)
		for j := range us[w] {
			us[w][j] = int32(step*1000 + w*10 + j%7)
			want[j] += us[w][j]
		}
	}
	return us, want
}

// TestFaultSwitchKillFallbackFailback is the tentpole scenario: the
// switch's aggregation program dies mid-step, the job degrades to host
// ring all-reduce at the chunk frontier, runs degraded steps, and
// fails back to the switch after the probation window — with every
// step's aggregate bit-identical to a fault-free run.
func TestFaultSwitchKillFallbackFailback(t *testing.T) {
	const elems, steps = 4096, 6
	sc := &faults.Scenario{Actions: []faults.Action{
		{Kind: faults.KillSwitch, Step: 2, At: 20 * netsim.Microsecond},
		{Kind: faults.ReviveSwitch, Step: 2, At: 3 * netsim.Millisecond},
	}}
	faulty, err := NewRack(healthTestConfig(sc))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := NewRack(healthTestConfig(nil))
	if err != nil {
		t.Fatal(err)
	}

	for step := 1; step <= steps; step++ {
		us, want := stepUpdates(4, elems, step)
		if _, err := faulty.AllReduce(us); err != nil {
			t.Fatalf("step %d (faulty): %v", step, err)
		}
		us2, _ := stepUpdates(4, elems, step)
		if _, err := clean.AllReduce(us2); err != nil {
			t.Fatalf("step %d (clean): %v", step, err)
		}
		for w := 0; w < 4; w++ {
			if !reflect.DeepEqual(faulty.Aggregate(w), want) {
				t.Fatalf("step %d worker %d aggregate differs from the exact sum", step, w)
			}
			if !reflect.DeepEqual(faulty.Aggregate(w), clean.Aggregate(w)) {
				t.Fatalf("step %d worker %d aggregate differs from the fault-free run", step, w)
			}
		}
	}

	c := faulty.Counters()
	if c["health_degrades"] != 1 {
		t.Errorf("health_degrades = %d, want 1", c["health_degrades"])
	}
	if c["health_failbacks"] != 1 {
		t.Errorf("health_failbacks = %d, want 1", c["health_failbacks"])
	}
	if c["health_probes"] == 0 || c["health_probe_acks"] == 0 {
		t.Errorf("probes/acks = %d/%d, want both nonzero", c["health_probes"], c["health_probe_acks"])
	}
	if c["host_aggregated_elems"] == 0 {
		t.Error("no elements aggregated by the host fabric")
	}
	if faulty.Degraded() {
		t.Error("job still degraded after probation and failback")
	}
	if cc := clean.Counters(); cc["health_degrades"] != 0 || cc["host_aggregated_elems"] != 0 {
		t.Errorf("fault-free run touched the host fabric: %v", cc)
	}
}

// TestFaultFallbackTelemetry checks the degrade → probe → failback
// sequence is visible, ordered, and barrier-aligned in the event
// stream.
func TestFaultFallbackTelemetry(t *testing.T) {
	sc := &faults.Scenario{Actions: []faults.Action{
		{Kind: faults.KillSwitch, Step: 1, At: 20 * netsim.Microsecond},
		{Kind: faults.ReviveSwitch, Step: 1, At: 3 * netsim.Millisecond},
	}}
	cfg := healthTestConfig(sc)
	log := &eventLog{}
	cfg.Tracer = log
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 5; step++ {
		us, _ := stepUpdates(4, 4096, step)
		if _, err := r.AllReduce(us); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	suspect := log.firstTS(telemetry.EvSwitchSuspect)
	degrade := log.firstTS(telemetry.EvDegrade)
	probe := log.firstTS(telemetry.EvProbe)
	ack := log.firstTS(telemetry.EvProbeAck)
	failback := log.firstTS(telemetry.EvFailback)
	if suspect < 0 || degrade < 0 || probe < 0 || ack < 0 || failback < 0 {
		t.Fatalf("missing transition events: suspect=%d degrade=%d probe=%d ack=%d failback=%d",
			suspect, degrade, probe, ack, failback)
	}
	if !(suspect <= degrade && degrade <= probe && probe < ack && ack <= failback) {
		t.Fatalf("transition order wrong: suspect=%d degrade=%d probe=%d ack=%d failback=%d",
			suspect, degrade, probe, ack, failback)
	}
	for _, e := range log.evs {
		if e.Type == telemetry.EvDegrade && e.Off%32 != 0 {
			t.Fatalf("degrade handoff frontier %d is not a chunk boundary", e.Off)
		}
	}
}

// TestFaultFallbackDeterministicReplay runs the identical fallback
// scenario twice from the same seed and requires bit-identical event
// streams: the degraded path must be as replayable as the switch path.
func TestFaultFallbackDeterministicReplay(t *testing.T) {
	run := func() []telemetry.Event {
		sc := &faults.Scenario{Actions: []faults.Action{
			{Kind: faults.KillSwitch, Step: 2, At: 20 * netsim.Microsecond},
			{Kind: faults.ReviveSwitch, Step: 2, At: 3 * netsim.Millisecond},
		}}
		cfg := healthTestConfig(sc)
		cfg.LossRate = 0.01
		log := &eventLog{}
		cfg.Tracer = log
		r, err := NewRack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for step := 1; step <= 5; step++ {
			us, _ := stepUpdates(4, 2048, step)
			if _, err := r.AllReduce(us); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		return log.evs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n a: %+v\n b: %+v", i, a[i], b[i])
		}
	}
	if telemetry.CountByType(a)[telemetry.EvDegrade] == 0 {
		t.Fatal("replay runs never degraded; scenario is not exercising fallback")
	}
}

// TestFaultDegradedModeSteadyState pins the job on the host fabric
// (StartDegraded + negative probation) and checks correctness and
// counters there.
func TestFaultDegradedModeSteadyState(t *testing.T) {
	cfg := healthTestConfig(nil)
	cfg.StartDegraded = true
	cfg.Health.Probation = -1
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const elems = 2048
	for step := 1; step <= 3; step++ {
		us, want := stepUpdates(4, elems, step)
		if _, err := r.AllReduce(us); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for w := 0; w < 4; w++ {
			if !reflect.DeepEqual(r.Aggregate(w), want) {
				t.Fatalf("step %d worker %d degraded aggregate wrong", step, w)
			}
		}
	}
	if !r.Degraded() {
		t.Error("negative probation failed back anyway")
	}
	c := r.Counters()
	if want := uint64(3 * elems); c["host_aggregated_elems"] != want {
		t.Errorf("host_aggregated_elems = %d, want %d", c["host_aggregated_elems"], want)
	}
	if c["switch_completions"] != 0 {
		t.Errorf("switch saw %d completions in pinned degraded mode", c["switch_completions"])
	}
}

// TestFaultSwitchKillNoFallbackTypedError opts out of fallback and
// checks a dead switch surfaces as the typed, retryable ErrSwitchDown
// — and that the job genuinely is retryable after a revival.
func TestFaultSwitchKillNoFallbackTypedError(t *testing.T) {
	sc := &faults.Scenario{Actions: []faults.Action{
		{Kind: faults.KillSwitch, Step: 1, At: 20 * netsim.Microsecond},
	}}
	cfg := healthTestConfig(sc)
	cfg.Health = nil
	cfg.NoFallback = true
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	us, _ := stepUpdates(4, 2048, 1)
	_, err = r.AllReduce(us)
	if !errors.Is(err, ErrSwitchDown) {
		t.Fatalf("AllReduce error = %v, want ErrSwitchDown", err)
	}
}
