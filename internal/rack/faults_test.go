package rack

import (
	"sync"
	"testing"

	"switchml/internal/faults"
	"switchml/internal/netsim"
	"switchml/internal/telemetry"
)

// eventLog is a tracer collecting events for order assertions.
type eventLog struct {
	mu  sync.Mutex
	evs []telemetry.Event
}

func (l *eventLog) Emit(e telemetry.Event) {
	l.mu.Lock()
	l.evs = append(l.evs, e)
	l.mu.Unlock()
}

// firstTS returns the timestamp of the first event of type t, or -1.
func (l *eventLog) firstTS(t telemetry.EventType) int64 {
	for _, e := range l.evs {
		if e.Type == t {
			return e.TS
		}
	}
	return -1
}

// checkRecoveryBoundary verifies the global-frontier resume semantic
// on one aggregate: a prefix of full-membership sums, then a suffix of
// survivor-only sums, switching exactly once and at a chunk boundary.
// It returns the boundary element index.
func checkRecoveryBoundary(t *testing.T, got []int32, full, survivors int32, slotElems int) int {
	t.Helper()
	boundary := len(got)
	for j, v := range got {
		if v == survivors {
			boundary = j
			break
		}
		if v != full {
			t.Fatalf("aggregate[%d] = %d, want %d (full) or %d (survivors)", j, v, full, survivors)
		}
	}
	for j := boundary; j < len(got); j++ {
		if got[j] != survivors {
			t.Fatalf("aggregate[%d] = %d after boundary %d, want %d", j, got[j], boundary, survivors)
		}
	}
	if boundary%slotElems != 0 {
		t.Fatalf("recovery boundary %d is not a chunk boundary (k=%d)", boundary, slotElems)
	}
	return boundary
}

// TestFaultWorkerCrashRecovery is the acceptance scenario: worker 2 of
// 8 crashes mid-tensor under 1% loss; the controller detects the
// silence, retires the worker under a new generation, and the seven
// survivors resume from the global frontier and finish with
// bitwise-identical aggregates. The trace must show the crash →
// detection → reconfigure → resume sequence in order.
func TestFaultWorkerCrashRecovery(t *testing.T) {
	log := &eventLog{}
	const crashAt = 100 * netsim.Microsecond
	cfg := Config{
		Workers: 8, LossRecovery: true, LossRate: 0.01, Seed: 11,
		RTO:    100 * netsim.Microsecond,
		Tracer: log,
		Faults: &faults.Scenario{Actions: []faults.Action{
			{Kind: faults.CrashWorker, Worker: 2, At: crashAt},
		}},
	}
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const d = 40000
	us := make([][]int32, 8)
	for w := range us {
		us[w] = make([]int32, d)
		for j := range us[w] {
			us[w][j] = int32(w + 1)
		}
	}
	res, err := r.AllReduce(us)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 2 {
		t.Fatalf("Failed = %v, want [2]", res.Failed)
	}
	if r.Epoch() == 0 {
		t.Fatal("epoch was not bumped by recovery")
	}

	// 1+2+...+8 = 36; without worker 2 (value 3) the sum is 33.
	const full, survivors = 36, 33
	k := r.Config().SlotElems
	boundary := checkRecoveryBoundary(t, r.Aggregate(0), full, survivors, k)
	if boundary >= d {
		t.Fatal("no element was re-aggregated by the survivor membership")
	}
	// Survivors must agree bitwise.
	ref := r.Aggregate(0)
	for w := 0; w < 8; w++ {
		if w == 2 {
			continue
		}
		got := r.Aggregate(w)
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("worker %d diverges from worker 0 at %d: %d vs %d", w, j, got[j], ref[j])
			}
		}
	}

	// Event ordering and detection latency.
	crash := log.firstTS(telemetry.EvWorkerCrash)
	detect := log.firstTS(telemetry.EvFailureDetected)
	reconf := log.firstTS(telemetry.EvReconfigure)
	resume := log.firstTS(telemetry.EvResume)
	if crash < 0 || detect < 0 || reconf < 0 || resume < 0 {
		t.Fatalf("missing recovery events: crash=%d detect=%d reconf=%d resume=%d",
			crash, detect, reconf, resume)
	}
	if !(crash < detect && detect <= reconf && reconf <= resume) {
		t.Fatalf("recovery events out of order: crash=%d detect=%d reconf=%d resume=%d",
			crash, detect, reconf, resume)
	}
	lv := r.Config().Liveness
	if lv == nil {
		t.Fatal("liveness config was not defaulted on")
	}
	if maxLat := int64(lv.SilenceAfter + 2*lv.CheckEvery); detect-crash > maxLat {
		t.Fatalf("detection latency %d ns exceeds silence+2·sweep = %d ns", detect-crash, maxLat)
	}
}

// TestFaultSwitchRestartRecovery wipes the switch's register state
// mid-tensor. Recovery must deliver exact full-membership aggregates —
// no torn or mixed-generation values — on every worker.
func TestFaultSwitchRestartRecovery(t *testing.T) {
	log := &eventLog{}
	cfg := Config{
		Workers: 8, LossRecovery: true, LossRate: 0.01, Seed: 5,
		RTO:    100 * netsim.Microsecond,
		Tracer: log,
		Faults: &faults.Scenario{Actions: []faults.Action{
			{Kind: faults.RestartSwitch, At: 80 * netsim.Microsecond},
		}},
		// React faster than the retransmission timeout: under loss,
		// workers drift out of per-slot lockstep and retransmission
		// alone cannot drain a wiped pool, so the controller must drive
		// the resume.
		Liveness: &LivenessConfig{
			SilenceAfter: 1600 * netsim.Microsecond,
			CheckEvery:   50 * netsim.Microsecond,
		},
	}
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const d = 30000
	u := make([]int32, d)
	for j := range u {
		u[j] = int32(j%97 + 1)
	}
	res, err := r.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("Failed = %v, want none (membership unchanged)", res.Failed)
	}
	want := make([]int32, d)
	for j := range want {
		want[j] = 8 * u[j]
	}
	checkAggregate(t, r, want)
	if r.Epoch() == 0 {
		t.Fatal("epoch was not bumped by switch-restart recovery")
	}
	restart := log.firstTS(telemetry.EvSwitchRestart)
	reconf := log.firstTS(telemetry.EvReconfigure)
	resume := log.firstTS(telemetry.EvResume)
	if restart < 0 || reconf < 0 || resume < 0 {
		t.Fatalf("missing events: restart=%d reconf=%d resume=%d", restart, reconf, resume)
	}
	if !(restart < reconf && reconf <= resume) {
		t.Fatalf("events out of order: restart=%d reconf=%d resume=%d", restart, reconf, resume)
	}
}

// TestFaultCrashAtStepN anchors a crash to aggregation step 2 and
// checks every step's outcome: step 1 clean, step 2 recovered with a
// survivor-only suffix, step 3 running on the shrunken membership.
func TestFaultCrashAtStepN(t *testing.T) {
	cfg := Config{
		Workers: 4, LossRecovery: true, Seed: 9,
		RTO: 100 * netsim.Microsecond,
		Faults: &faults.Scenario{Actions: []faults.Action{
			{Kind: faults.CrashWorker, Worker: 1, Step: 2, At: 50 * netsim.Microsecond},
		}},
	}
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const d = 20000
	u := make([]int32, d)
	for j := range u {
		u[j] = 1
	}
	for step := 1; step <= 3; step++ {
		res, err := r.AllReduceShared(u)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		switch step {
		case 1:
			if len(res.Failed) != 0 {
				t.Fatalf("step 1: Failed = %v, want none", res.Failed)
			}
			for j, v := range r.Aggregate(0) {
				if v != 4 {
					t.Fatalf("step 1: aggregate[%d] = %d, want 4", j, v)
				}
			}
		case 2:
			if len(res.Failed) != 1 || res.Failed[0] != 1 {
				t.Fatalf("step 2: Failed = %v, want [1]", res.Failed)
			}
			checkRecoveryBoundary(t, r.Aggregate(0), 4, 3, r.Config().SlotElems)
		case 3:
			if len(res.Failed) != 1 || res.Failed[0] != 1 {
				t.Fatalf("step 3: Failed = %v, want [1]", res.Failed)
			}
			for j, v := range r.Aggregate(0) {
				if v != 3 {
					t.Fatalf("step 3: aggregate[%d] = %d, want 3", j, v)
				}
			}
		}
	}
}

// TestFaultWorkerRestartRejoins crashes a worker, restarts it, and
// checks that it is re-admitted at the next step boundary under a new
// generation, with the full membership aggregating again.
func TestFaultWorkerRestartRejoins(t *testing.T) {
	cfg := Config{
		Workers: 4, LossRecovery: true, Seed: 13,
		RTO: 100 * netsim.Microsecond,
		Faults: &faults.Scenario{Actions: []faults.Action{
			{Kind: faults.CrashWorker, Worker: 3, Step: 1, At: 50 * netsim.Microsecond},
			{Kind: faults.RestartWorker, Worker: 3, Step: 2, At: 0},
		}},
	}
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const d = 10000
	u := make([]int32, d)
	for j := range u {
		u[j] = 2
	}
	// Step 1: crash mid-tensor; worker 3 fails.
	res, err := r.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 3 {
		t.Fatalf("step 1: Failed = %v, want [3]", res.Failed)
	}
	// Step 2: worker 3 restarts during the step but cannot rejoin a
	// collective in flight.
	res, err = r.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 3 {
		t.Fatalf("step 2: Failed = %v, want [3]", res.Failed)
	}
	epochBefore := r.Epoch()
	// Step 3: re-admitted at the boundary; full membership again.
	res, err = r.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("step 3: Failed = %v, want none", res.Failed)
	}
	if r.Epoch() == epochBefore {
		t.Fatal("re-admission did not bump the job generation")
	}
	for j, v := range r.Aggregate(3) {
		if v != 8 {
			t.Fatalf("step 3: aggregate[%d] = %d, want 8", j, v)
		}
	}
}

// TestFaultLinkBlackoutWindow blacks out one worker's links for a
// window mid-tensor; retransmission alone must recover (no membership
// change), and the blackout must be visible in link stats.
func TestFaultLinkBlackoutWindow(t *testing.T) {
	cfg := Config{
		Workers: 3, LossRecovery: true, Seed: 21,
		RTO: 100 * netsim.Microsecond,
		Faults: &faults.Scenario{Actions: []faults.Action{
			{Kind: faults.LinkDown, Worker: 0, At: 50 * netsim.Microsecond},
			{Kind: faults.LinkUp, Worker: 0, At: 250 * netsim.Microsecond},
		}},
	}
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const d = 20000
	u := make([]int32, d)
	for j := range u {
		u[j] = int32(j % 50)
	}
	res, err := r.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("Failed = %v, want none", res.Failed)
	}
	if res.Retransmissions == 0 {
		t.Error("blackout recovered without retransmissions")
	}
	want := make([]int32, d)
	for j := range want {
		want[j] = 3 * u[j]
	}
	checkAggregate(t, r, want)
	st := r.uplink[0].Stats()
	if st.Blackholed == 0 {
		t.Error("uplink recorded no blackholed packets during the window")
	}
}

// TestFaultBurstLossRack runs a full aggregation under Gilbert–Elliott
// burst loss configured at the rack level (satellite of §5.5's loss
// tolerance: bursts stress recovery harder than Bernoulli loss at the
// same mean).
func TestFaultBurstLossRack(t *testing.T) {
	r, err := NewRack(Config{
		Workers: 3, LossRecovery: true, Seed: 17,
		RTO: 100 * netsim.Microsecond,
		BurstLoss: &netsim.GEConfig{
			PGoodToBad: 0.002, PBadToGood: 0.2, LossGood: 0, LossBad: 0.9,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const d = 20000
	u := make([]int32, d)
	for j := range u {
		u[j] = int32(j%31 - 15)
	}
	res, err := r.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmissions == 0 {
		t.Error("burst loss produced no retransmissions")
	}
	want := make([]int32, d)
	for j := range want {
		want[j] = 3 * u[j]
	}
	checkAggregate(t, r, want)
}

// TestFaultDeterministicReplay runs the crash scenario twice with the
// same seed and requires identical timing and results.
func TestFaultDeterministicReplay(t *testing.T) {
	run := func() (netsim.Time, []int32) {
		r, err := NewRack(Config{
			Workers: 4, LossRecovery: true, LossRate: 0.01, Seed: 23,
			RTO: 100 * netsim.Microsecond,
			Faults: &faults.Scenario{Actions: []faults.Action{
				{Kind: faults.CrashWorker, Worker: 0, At: 60 * netsim.Microsecond},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		u := make([]int32, 8000)
		for j := range u {
			u[j] = int32(j % 13)
		}
		res, err := r.AllReduceShared(u)
		if err != nil {
			t.Fatal(err)
		}
		return res.TAT, append([]int32(nil), r.Aggregate(1)...)
	}
	tat1, agg1 := run()
	tat2, agg2 := run()
	if tat1 != tat2 {
		t.Fatalf("TAT diverged across replays: %v vs %v", tat1, tat2)
	}
	for j := range agg1 {
		if agg1[j] != agg2[j] {
			t.Fatalf("aggregate diverged at %d: %d vs %d", j, agg1[j], agg2[j])
		}
	}
}

// TestFaultAdaptiveRTOClampBounds pins the adaptive timeout's clamp:
// the estimate never undercuts the configured RTO and never exceeds
// 64× it.
func TestFaultAdaptiveRTOClampBounds(t *testing.T) {
	sim := netsim.NewSim(0)
	base := netsim.Millisecond
	h, err := NewWorkerHost(sim, Config{
		Workers: 2, PoolSize: 4, AdaptiveRTO: true, RTO: base, LossRecovery: true,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// No samples yet: the configured RTO.
	if got := h.rto(); got != base {
		t.Fatalf("rto with no samples = %v, want %v", got, base)
	}
	// Tiny estimate: clamped up to the floor.
	h.srtt, h.rttvar = netsim.Microsecond, 0
	if got := h.rto(); got != base {
		t.Fatalf("rto floor = %v, want %v", got, base)
	}
	// Mid-range estimate: srtt + 4·rttvar, unclamped.
	h.srtt, h.rttvar = 10*base, base
	if got, want := h.rto(), 14*base; got != want {
		t.Fatalf("rto mid = %v, want %v", got, want)
	}
	// Huge estimate: clamped down to the 64× ceiling.
	h.srtt, h.rttvar = 10000*base, 1000*base
	if got, want := h.rto(), 64*base; got != want {
		t.Fatalf("rto ceiling = %v, want %v", got, want)
	}
}

// TestFaultRejectsWithoutRecovery mirrors the LossRate guard for the
// fault-injection knobs: none of them make sense with Algorithm 1.
func TestFaultRejectsWithoutRecovery(t *testing.T) {
	bad := []Config{
		{Workers: 2, BurstLoss: &netsim.GEConfig{PGoodToBad: 0.1, PBadToGood: 0.5, LossBad: 1}},
		{Workers: 2, DupRate: 0.1},
		{Workers: 2, CorruptRate: 0.1},
		{Workers: 2, Faults: &faults.Scenario{Actions: []faults.Action{
			{Kind: faults.CrashWorker, Worker: 0},
		}}},
	}
	for i, cfg := range bad {
		if _, err := NewRack(cfg); err == nil {
			t.Errorf("config %d accepted without loss recovery", i)
		}
	}
	// An invalid scenario is rejected even with recovery on.
	if _, err := NewRack(Config{
		Workers: 2, LossRecovery: true,
		Faults: &faults.Scenario{Actions: []faults.Action{
			{Kind: faults.CrashWorker, Worker: 5},
		}},
	}); err == nil {
		t.Error("out-of-range crash target accepted")
	}
}
