package rack

import (
	"testing"

	"switchml/internal/faults"
	"switchml/internal/netsim"
	"switchml/internal/telemetry"
)

// traceRun executes a lossy, fault-injected aggregation with a
// capturing tracer and returns the complete protocol event stream.
func traceRun(t *testing.T, seed int64) []telemetry.Event {
	t.Helper()
	var events []telemetry.Event
	r, err := NewRack(Config{
		Workers: 4, LossRecovery: true, LossRate: 0.02, Seed: seed,
		RTO: 100 * netsim.Microsecond,
		Faults: &faults.Scenario{Actions: []faults.Action{
			{Kind: faults.CrashWorker, Worker: 2, At: 80 * netsim.Microsecond},
		}},
		Tracer: telemetry.TracerFunc(func(e telemetry.Event) { events = append(events, e) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	u := make([]int32, 6000)
	for j := range u {
		u[j] = int32(j%17 - 8)
	}
	if _, err := r.AllReduceShared(u); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestTraceDeterministicReplay is the replay regression gate behind
// the //switchml:deterministic annotations: two runs with the same
// seed must emit bit-for-bit identical protocol event streams — same
// packet timeline, same loss pattern, same crash-recovery trace —
// because the paper's §5.5/§5.6 evaluation compares runs that differ
// only in configuration, not in scheduling noise.
func TestTraceDeterministicReplay(t *testing.T) {
	for _, seed := range []int64{7, 23} {
		a := traceRun(t, seed)
		b := traceRun(t, seed)
		if len(a) == 0 {
			t.Fatalf("seed %d: traced no events", seed)
		}
		if len(a) != len(b) {
			t.Fatalf("seed %d: replay traced %d events, first run %d", seed, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: trace diverged at event %d: %+v vs %+v", seed, i, a[i], b[i])
			}
		}
	}
}

// TestTraceSeedSensitivity is the counterpart check: different seeds
// must actually produce different streams, proving the tracer output
// reflects the randomness rather than being trivially constant.
func TestTraceSeedSensitivity(t *testing.T) {
	a := traceRun(t, 7)
	b := traceRun(t, 23)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 7 and 23 produced identical traces; the seed is not reaching the loss model")
		}
	}
}
