// Switch health monitoring and the degradation controller: the rack's
// self-healing path. Where internal/rack/faults.go watches *workers*
// (the per-worker liveness Tracker of §5.6), this file watches the
// *switch*: when the aggregation pipeline goes silent with traffic
// outstanding, the job degrades to host ring all-reduce over the same
// links — the crossbar keeps forwarding even when the aggregation
// program is dead — and fails back to the switch path once a probation
// window of probe rounds succeeds. Both transitions happen at a
// chunk-frontier barrier so no tensor is ever half-aggregated by two
// fabrics.
package rack

import (
	"fmt"

	"switchml/internal/allreduce"
	"switchml/internal/netsim"
	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// HealthConfig tunes the switch health monitor and degradation
// controller. It is distinct from LivenessConfig: liveness suspects
// individual silent workers; health suspects the switch itself when
// *no* aggregation results flow while updates are outstanding.
type HealthConfig struct {
	// SuspectAfter is how long the switch path may stay silent — no
	// results delivered anywhere, with at least one tensor in flight —
	// before the job degrades to host all-reduce; zero selects 8×RTO.
	// It doubles as the hysteresis floor: a switch that answers even
	// occasionally never trips it.
	SuspectAfter netsim.Time
	// ProbeEvery is the probe period while degraded; zero selects
	// SuspectAfter/4.
	ProbeEvery netsim.Time
	// Probation is the number of consecutive answered probes required
	// before failing back to the switch; zero selects 3, negative
	// pins the job in degraded mode forever (the pure host-all-reduce
	// baseline of -degraded-mode).
	Probation int
	// BurstBytes segments the degraded-mode ring transfers; zero
	// selects 64 KiB.
	BurstBytes int
}

func (c *HealthConfig) fillDefaults(rto netsim.Time) {
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 8 * rto
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = c.SuspectAfter / 4
	}
	if c.Probation == 0 {
		c.Probation = 3
	}
	if c.BurstBytes == 0 {
		c.BurstBytes = 64 * 1024
	}
}

// Job fabric modes of the three-state machine
// SWITCH → DEGRADED(host all-reduce) → SWITCH.
const (
	modeSwitch = iota
	modeDegraded
)

// healthMonitor drives the state machine. It lives entirely inside the
// rack's single event loop: no locks, no wall clock, no private
// randomness — fallback runs replay bit-identically from a seed.
//
// With Config.StandbySwitches the two-state machine grows into the
// three-tier defense ladder: on silence the job first re-homes onto a
// warm-standby rung (full switch rate, a fenced generation bump and a
// frontier resume — the simulator's deterministic twin of the UDP
// transport's KindAdoptJob handshake), walking the remaining rungs on
// repeated silence, and only when every rung is dark does it fall to
// the host mesh (or, with NoFallback, raise ErrSwitchDown). While
// homed below rung 0 it probes the primary and climbs back after the
// probation window, at a step boundary.
type healthMonitor struct {
	r   *Rack
	cfg HealthConfig

	mode int
	// home is the switch rung the job lives on (0 = primary); while
	// degraded to the mesh it is the last rung tried.
	home int
	// trying is the remaining descent queue of rungs to attempt after
	// a silence verdict; nil when no descent is in progress. Any
	// delivered result cancels the descent — the current rung answered.
	trying []int
	// meshOK gates the final rung-exhausted step: host mesh fallback,
	// or (NoFallback with standbys) the typed ErrSwitchDown.
	meshOK bool
	// lastActivity is the last virtual time the switch path showed
	// life: a result delivered to any host, or the start of a step.
	lastActivity netsim.Time
	// watching guards the suspicion sweep chain.
	watching bool

	// probing guards the probe chain; probeSeq/awaitAck/streak drive
	// the probation window.
	probing  bool
	probeSeq uint32
	awaitAck bool
	streak   int

	// ring is the in-progress degraded-mode collective; ringRanks maps
	// its ranks to worker ids, ringBufs holds each rank's private
	// suffix copy, ringOff the handoff frontier as a stream offset.
	ring      *allreduce.InlineRing
	ringRanks []int
	ringBufs  [][]int32
	ringOff   uint64

	degrades, failbacks, probes, probeAcks, hostElems, rehomes uint64

	// gMode mirrors the state machine into the registry
	// (0 = SWITCH, 1 = DEGRADED) so sampled series and snapshots carry
	// the fabric mode; gHome mirrors the ladder rung. Nil without
	// Config.Metrics.
	gMode, gHome *telemetry.Gauge
}

func newHealthMonitor(r *Rack, cfg HealthConfig) *healthMonitor {
	m := &healthMonitor{r: r, cfg: cfg, meshOK: !r.cfg.NoFallback}
	if r.cfg.Metrics != nil {
		m.gMode = r.cfg.Metrics.Gauge("rack_health_mode")
		m.gHome = r.cfg.Metrics.Gauge("rack_home_rank")
	}
	for _, h := range r.hosts {
		h.observe = m.touch
		h.probeAck = m.onProbeAck
		h.peerRecv = m.onPeer
	}
	r.sw.peerDst = m.peerLink
	return m
}

// setMode moves the state machine and mirrors the new mode into the
// registry gauge.
func (m *healthMonitor) setMode(mode int) {
	m.mode = mode
	if m.gMode != nil {
		m.gMode.Set(int64(mode))
	}
}

// touch records switch-path life; every result delivery feeds it. A
// result also settles any ladder descent in progress: the rung the job
// just re-homed to is answering.
func (m *healthMonitor) touch() {
	m.lastActivity = m.r.sim.Now()
	m.trying = nil
}

// watch (re-)arms the suspicion sweep at the start of a switch-mode
// step. The chain stops once every live worker is done, so the
// simulation can drain. A job homed on a standby also (re-)arms the
// fail-up probe chain, so the primary gets at least one probe per
// step and the probation streak can grow.
func (m *healthMonitor) watch() {
	m.lastActivity = m.r.sim.Now()
	if m.home != 0 {
		m.startProbing()
	}
	if m.watching {
		return
	}
	m.watching = true
	m.armWatch()
}

func (m *healthMonitor) armWatch() { m.r.sim.After(m.cfg.SuspectAfter/4, m.sweep) }

func (m *healthMonitor) sweep() {
	r := m.r
	if m.mode != modeSwitch || r.allLiveDone() || r.faultErr != nil {
		m.watching = false
		return
	}
	if r.sim.Now()-m.lastActivity >= m.cfg.SuspectAfter {
		r.traceCtrl(telemetry.EvSwitchSuspect, "health", -1, -1)
		m.descend()
		return
	}
	m.armWatch()
}

// descend takes one step down the defense ladder after a silence
// verdict. The first verdict of a descent builds the attempt queue —
// every rung except the one that just went silent, in rank order,
// mirroring the UDP client's ladder walk — and each verdict re-homes
// the job onto the next candidate; any result delivery cancels the
// descent (touch). Only with the queue exhausted does the job leave
// the switch tier: host mesh when allowed, the typed ErrSwitchDown
// otherwise.
func (m *healthMonitor) descend() {
	r := m.r
	if m.trying == nil {
		for rung := 0; rung < r.sw.rungs(); rung++ {
			if rung != m.home {
				m.trying = append(m.trying, rung)
			}
		}
	}
	if len(m.trying) == 0 {
		m.trying = nil
		m.watching = false
		if m.meshOK {
			m.degrade()
			return
		}
		if r.faultErr == nil {
			r.faultErr = fmt.Errorf("rack: every aggregator rung silent (%d rungs): %w",
				r.sw.rungs(), ErrSwitchDown)
		}
		// Disarm the hosts so the event loop drains and AllReduce can
		// surface the verdict.
		for i, h := range r.hosts {
			if !r.skip(i) {
				h.cancelTimers()
			}
		}
		return
	}
	next := m.trying[0]
	m.trying = m.trying[1:]
	m.rehome(next)
	m.lastActivity = r.sim.Now()
	m.armWatch()
}

// rehome moves the job onto another switch rung mid-step: the §5.6
// recovery fence aimed at a different pool. The membership is fenced
// into the rung under a bumped generation (wiping its slot pool), and
// every live worker resumes from the global chunk frontier — the
// deterministic twin of the UDP transport's adopt handshake, where the
// standby's roll call reconstructs the same membership from
// KindAdoptJob votes.
func (m *healthMonitor) rehome(rank int) {
	r := m.r
	r.epoch++
	active := make([]bool, r.cfg.Workers)
	for i, h := range r.hosts {
		active[i] = !h.crashed && !h.detached && !r.dead(i)
	}
	if err := r.sw.prog(rank).Reconfigure(active, r.epoch); err != nil {
		if r.faultErr == nil {
			r.faultErr = err
		}
		return
	}
	r.sw.home = rank
	m.home = rank
	if m.gHome != nil {
		m.gHome.Set(int64(rank))
	}
	m.rehomes++
	frontier := ^uint64(0)
	for i, h := range r.hosts {
		if r.skip(i) {
			continue
		}
		if f := h.worker.FrontierOff(); f < frontier {
			frontier = f
		}
	}
	m.emitRung(telemetry.EvRehome, rank, int64(frontier))
	m.emitRung(telemetry.EvAdopt, rank, int64(frontier))
	for i, h := range r.hosts {
		if r.skip(i) {
			continue
		}
		if err := h.Resume(r.epoch, frontier); err != nil && r.faultErr == nil {
			r.faultErr = err
		}
	}
	if rank != 0 {
		// Start courting the primary for the climb back up.
		m.streak, m.awaitAck = 0, false
		m.startProbing()
	}
}

// emitRung traces a ladder transition: Slot carries the rung, Off the
// resume frontier.
func (m *healthMonitor) emitRung(t telemetry.EventType, rank int, off int64) {
	r := m.r
	if r.cfg.Tracer == nil {
		return
	}
	e := telemetry.Ev(t, int64(r.sim.Now()))
	e.Actor = "health"
	e.Slot = int32(rank)
	e.Off = off
	r.cfg.Tracer.Emit(e)
}

// degrade is the SWITCH → DEGRADED transition, mid-step: the barrier
// handoff. The frontier F is the minimum progress frontier over live
// workers; every chunk below F is complete on every worker (via the
// switch), and the host ring re-aggregates [F, end) wholesale from the
// raw updates — chunks above F that some workers already hold are
// overwritten with bit-identical values (int32 addition is order-
// invariant), so no chunk is ever torn between the two fabrics.
func (m *healthMonitor) degrade() {
	r := m.r
	m.setMode(modeDegraded)
	m.degrades++
	frontier := ^uint64(0)
	for i, h := range r.hosts {
		if r.skip(i) {
			continue
		}
		if f := h.worker.FrontierOff(); f < frontier {
			frontier = f
		}
		h.cancelTimers()
	}
	r.traceCtrl(telemetry.EvDegrade, "health", -1, int64(frontier))
	m.startRing(frontier)
}

// stepHosted runs one whole aggregation step on the host fabric, the
// steady state while degraded.
func (m *healthMonitor) stepHosted(updates [][]int32, started []bool, res *Result) {
	r := m.r
	empty := true
	var frontier uint64
	for i, h := range r.hosts {
		if r.skip(i) {
			continue
		}
		started[i] = true
		i, h := i, h
		h.startHosted(updates[i], func(t netsim.Time) { res.Done[i] = t })
		if len(updates[i]) != 0 {
			empty = false
			frontier = h.worker.TensorBase()
		}
	}
	if empty {
		return // startHosted completed the empty tensors immediately
	}
	m.startRing(frontier)
}

// startRing builds and launches the host ring all-reduce over the
// tensor suffix [frontier, end) of every live worker, inside the
// rack's own event loop so bandwidth, propagation and crossbar latency
// are charged by the same links the switch path uses.
func (m *healthMonitor) startRing(frontier uint64) {
	r := m.r
	m.ringRanks = m.ringRanks[:0]
	for i := range r.hosts {
		if r.skip(i) {
			continue
		}
		m.ringRanks = append(m.ringRanks, i)
	}
	m.ringOff = frontier
	bufs := make([][]int32, 0, len(m.ringRanks))
	for _, w := range m.ringRanks {
		wk := r.hosts[w].worker
		u := wk.Update()
		local := int(frontier - wk.TensorBase())
		// Private copies: AllReduceShared aliases one backing array
		// across workers, and the ring mutates its buffers in place.
		buf := make([]int32, len(u)-local)
		copy(buf, u[local:])
		bufs = append(bufs, buf)
	}
	m.ringBufs = bufs
	ring, err := allreduce.NewInlineRing(
		allreduce.Config{BurstBytes: m.cfg.BurstBytes},
		bufs, m.sendPeer, r.sim.Now, m.ringDone,
	)
	if err != nil {
		if r.faultErr == nil {
			r.faultErr = err
		}
		return
	}
	m.ring = ring
	ring.Start()
	m.startProbing()
}

// sendPeer routes a ring burst from its rank's uplink; the crossbar
// forwards it to the destination's downlink. Sending also counts as
// liveness for the worker — the per-worker Tracker must not mistake
// fallback mode for mass worker death.
func (m *healthMonitor) sendPeer(pm allreduce.PeerMsg) {
	r := m.r
	w := m.ringRanks[pm.PeerSrc()]
	if r.ctrl != nil {
		r.ctrl.tracker.Touch(w, int64(r.sim.Now()))
	}
	r.uplink[w].Send(pm)
}

// peerLink maps a ring rank to its host's downlink, for the crossbar.
func (m *healthMonitor) peerLink(rank int) *netsim.Link {
	if rank < 0 || rank >= len(m.ringRanks) {
		return nil
	}
	return m.r.sw.downlinks[m.ringRanks[rank]]
}

// onPeer feeds an inbound ring burst to the collective.
func (m *healthMonitor) onPeer(pm allreduce.PeerMsg) {
	if m.ring != nil {
		m.ring.Deliver(pm)
	}
}

// ringDone installs the host-computed aggregate into every live
// worker at the handoff frontier and completes their tensors.
func (m *healthMonitor) ringDone() {
	r := m.r
	now := r.sim.Now()
	if len(m.ringBufs) > 0 {
		m.hostElems += uint64(len(m.ringBufs[0]))
	}
	for rk, w := range m.ringRanks {
		h := r.hosts[w]
		if err := h.worker.InstallHostAggregate(m.ringOff, m.ringBufs[rk]); err != nil {
			if r.faultErr == nil {
				r.faultErr = err
			}
			continue
		}
		if !h.finished {
			h.finished = true
			h.trace(telemetry.EvTensorDone, -1, -1)
			if h.onDone != nil {
				h.onDone(now)
			}
		}
	}
	m.ring = nil
	m.ringBufs = nil
}

// startProbing sends an immediate probe and arms the periodic chain.
func (m *healthMonitor) startProbing() {
	m.sendProbe()
	if !m.probing {
		m.probing = true
		m.armProbe()
	}
}

func (m *healthMonitor) armProbe() { m.r.sim.After(m.cfg.ProbeEvery, m.probeTick) }

func (m *healthMonitor) probeTick() {
	// The chain runs while the job is off the primary: degraded to the
	// mesh, or homed on a standby rung. An unrecoverable verdict
	// (NoFallback with every rung dark) must stop it too, or the
	// self-arming chain would keep the event loop from draining.
	if (m.mode != modeDegraded && m.home == 0) || m.r.allLiveDone() || m.r.faultErr != nil {
		m.probing = false
		return
	}
	if m.awaitAck {
		// The previous probe went unanswered: the switch is still
		// dark, restart the probation window.
		m.streak = 0
	}
	m.sendProbe()
	m.armProbe()
}

// sendProbe emits one health probe from the lowest-id live worker.
func (m *healthMonitor) sendProbe() {
	r := m.r
	w := -1
	for i := range r.hosts {
		if !r.skip(i) {
			w = i
			break
		}
	}
	if w < 0 {
		return
	}
	m.probeSeq++
	m.awaitAck = true
	m.probes++
	p := packet.NewControl(packet.KindProbe, uint16(w), r.epoch, 0, nil)
	p.Idx = m.probeSeq
	if r.cfg.Tracer != nil {
		e := telemetry.Ev(telemetry.EvProbe, int64(r.sim.Now()))
		e.Actor = "health"
		e.Worker = int32(w)
		e.Slot = int32(m.probeSeq)
		r.cfg.Tracer.Emit(e)
	}
	r.uplink[w].Send(p)
}

// onProbeAck credits the probation window when the outstanding probe
// is answered.
func (m *healthMonitor) onProbeAck(p *packet.Packet) {
	if (m.mode != modeDegraded && m.home == 0) || !m.awaitAck || p.Idx != m.probeSeq {
		return
	}
	m.awaitAck = false
	m.probeAcks++
	m.streak++
	r := m.r
	if r.cfg.Tracer != nil {
		e := telemetry.Ev(telemetry.EvProbeAck, int64(r.sim.Now()))
		e.Actor = "health"
		e.Worker = int32(p.WorkerID)
		e.Slot = int32(p.Idx)
		r.cfg.Tracer.Emit(e)
	}
}

// maybeFailback is the climb back to the primary, taken at a step
// boundary (the natural chunk-frontier barrier: no tensor is in
// flight) once the probation window is full — from the host mesh
// (DEGRADED → SWITCH) or from a warm-standby rung (fail-up). The job
// generation bumps and the primary's pool is wiped under the current
// membership, so nothing aggregated before the outage can mix with
// traffic after it; every worker installs the generation with reset
// pool versions, mirroring a §5.6 resume with an empty in-flight set.
func (m *healthMonitor) maybeFailback() {
	r := m.r
	if m.cfg.Probation < 0 || m.streak < m.cfg.Probation {
		return
	}
	if m.mode != modeDegraded && m.home == 0 {
		return // already on the primary
	}
	fromMesh := m.mode == modeDegraded
	r.epoch++
	active := make([]bool, r.cfg.Workers)
	for i, h := range r.hosts {
		active[i] = !h.crashed && !h.detached && !r.dead(i)
	}
	if err := r.sw.sw.Reconfigure(active, r.epoch); err != nil {
		if r.faultErr == nil {
			r.faultErr = err
		}
		return
	}
	for i, h := range r.hosts {
		if r.skip(i) {
			continue
		}
		h.worker.Resume(r.epoch, h.worker.ChunkCount())
		h.cancelTimers()
	}
	m.setMode(modeSwitch)
	r.sw.home = 0
	m.home = 0
	if m.gHome != nil {
		m.gHome.Set(0)
	}
	m.trying = nil
	m.streak = 0
	m.awaitAck = false
	m.failbacks++
	if !fromMesh {
		m.emitRung(telemetry.EvRehome, 0, int64(r.epoch))
	}
	r.traceCtrl(telemetry.EvFailback, "health", -1, int64(r.epoch))
}

// Degraded reports whether the job is currently on the host fabric.
func (r *Rack) Degraded() bool {
	return r.health != nil && r.health.mode == modeDegraded
}
