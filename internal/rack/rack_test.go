package rack

import (
	"math/rand"
	"strings"
	"testing"

	"switchml/internal/netsim"
	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

func checkAggregate(t *testing.T, r *Rack, want []int32) {
	t.Helper()
	for i := 0; i < r.Config().Workers; i++ {
		got := r.Aggregate(i)
		if len(got) != len(want) {
			t.Fatalf("worker %d: aggregate length %d, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("worker %d: aggregate[%d] = %d, want %d", i, j, got[j], want[j])
			}
		}
	}
}

func TestRackLosslessCorrectness(t *testing.T) {
	r, err := NewRack(Config{Workers: 4, LossRecovery: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const d = 10000
	us := make([][]int32, 4)
	want := make([]int32, d)
	for i := range us {
		us[i] = make([]int32, d)
		for j := range us[i] {
			us[i][j] = int32(rng.Intn(200) - 100)
			want[j] += us[i][j]
		}
	}
	res, err := r.AllReduce(us)
	if err != nil {
		t.Fatal(err)
	}
	if res.TAT <= 0 {
		t.Errorf("TAT = %v, want positive", res.TAT)
	}
	checkAggregate(t, r, want)
}

func TestRackLossyCorrectness(t *testing.T) {
	for _, loss := range []float64{0.001, 0.01, 0.05} {
		r, err := NewRack(Config{
			Workers: 3, LossRecovery: true, LossRate: loss, Seed: 7,
			RTO: 100 * netsim.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		const d = 20000
		u := make([]int32, d)
		for j := range u {
			u[j] = int32(j % 97)
		}
		res, err := r.AllReduceShared(u)
		if err != nil {
			t.Fatalf("loss %v: %v", loss, err)
		}
		want := make([]int32, d)
		for j := range want {
			want[j] = 3 * u[j]
		}
		checkAggregate(t, r, want)
		if loss >= 0.01 && res.Retransmissions == 0 {
			t.Errorf("loss %v: no retransmissions recorded", loss)
		}
	}
}

func TestRackConsecutiveTensors(t *testing.T) {
	r, err := NewRack(Config{Workers: 2, LossRecovery: true, LossRate: 0.01, Seed: 3,
		RTO: 100 * netsim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 4; iter++ {
		d := 1000 + 100*iter
		u := make([]int32, d)
		for j := range u {
			u[j] = int32(iter + j)
		}
		if _, err := r.AllReduceShared(u); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		want := make([]int32, d)
		for j := range want {
			want[j] = 2 * u[j]
		}
		checkAggregate(t, r, want)
	}
}

func TestRackTATNearLineRate(t *testing.T) {
	// Lossless, CPU-unconstrained: TAT must be within 5% of the
	// wire-limited lower bound.
	r, err := NewRack(Config{Workers: 8, LossRecovery: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const elems = 1 << 18
	u := make([]int32, elems)
	res, err := r.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	pkts := (elems + 31) / 32
	ideal := netsim.Time(float64(pkts*180*8) / 10e9 * 1e9)
	if res.TAT < ideal {
		t.Fatalf("TAT %v below wire bound %v", res.TAT, ideal)
	}
	if float64(res.TAT) > 1.05*float64(ideal) {
		t.Errorf("TAT %v more than 5%% above wire bound %v", res.TAT, ideal)
	}
	if res.Retransmissions != 0 {
		t.Errorf("lossless run had %d retransmissions", res.Retransmissions)
	}
}

func TestRackAlgorithm1Lossless(t *testing.T) {
	r, err := NewRack(Config{Workers: 3, LossRecovery: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	u := make([]int32, 5000)
	for j := range u {
		u[j] = 2
	}
	if _, err := r.AllReduceShared(u); err != nil {
		t.Fatal(err)
	}
	want := make([]int32, len(u))
	for j := range want {
		want[j] = 6
	}
	checkAggregate(t, r, want)
}

func TestRackRejectsLossWithoutRecovery(t *testing.T) {
	if _, err := NewRack(Config{Workers: 2, LossRecovery: false, LossRate: 0.1}); err == nil {
		t.Error("loss without recovery accepted")
	}
	if _, err := NewRack(Config{Workers: 0}); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestTunePoolSize(t *testing.T) {
	// §3.6: the paper uses s=128 at 10 Gbps and s=512 at 100 Gbps for
	// its measured end-to-end delays (tens of microseconds). With
	// b=180: 10e9/8 * 16e-6 / 180 = 111 -> next pow2 = 128.
	if got := TunePoolSize(10e9, 180, 16*netsim.Microsecond); got != 128 {
		t.Errorf("TunePoolSize(10G, 16us) = %d, want 128", got)
	}
	// 100e9/8 * 6e-6 / 180 = 416 -> 512.
	if got := TunePoolSize(100e9, 180, 6*netsim.Microsecond); got != 512 {
		t.Errorf("TunePoolSize(100G, 6us) = %d, want 512", got)
	}
	// Tiny BDP still yields at least one slot.
	if got := TunePoolSize(1e6, 180, netsim.Microsecond); got < 1 {
		t.Errorf("TunePoolSize small = %d", got)
	}
}

func TestRackDeterminism(t *testing.T) {
	run := func() netsim.Time {
		r, err := NewRack(Config{Workers: 4, LossRecovery: true, LossRate: 0.02, Seed: 11,
			RTO: 200 * netsim.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		u := make([]int32, 30000)
		res, err := r.AllReduceShared(u)
		if err != nil {
			t.Fatal(err)
		}
		return res.TAT
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different TAT: %v vs %v", a, b)
	}
}

func TestRackRTTSampling(t *testing.T) {
	r, err := NewRack(Config{Workers: 2, LossRecovery: true, Seed: 1, SampleRTT: true})
	if err != nil {
		t.Fatal(err)
	}
	u := make([]int32, 10000)
	res, err := r.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RTTs) == 0 {
		t.Fatal("no RTT samples")
	}
	min := res.RTTs[0]
	for _, v := range res.RTTs {
		if v < min {
			min = v
		}
	}
	// RTT must be at least 2x propagation + switch latency.
	if floor := 2*netsim.Microsecond + 400*netsim.Nanosecond; min < floor {
		t.Errorf("min RTT %v below physical floor %v", min, floor)
	}
}

func TestRackTraceTimeline(t *testing.T) {
	// The trace layer replaces the old TxHook: uplink PacketSent
	// events carry every transmission, Retransmit events mark the
	// re-sends, so fresh sends are their difference.
	var uplinkSends, retx int
	r, err := NewRack(Config{
		Workers: 2, LossRecovery: true, LossRate: 0.05, Seed: 5,
		RTO: 100 * netsim.Microsecond,
		Tracer: telemetry.TracerFunc(func(e telemetry.Event) {
			switch {
			case e.Type == telemetry.EvPacketSent && strings.HasSuffix(e.Actor, "->sw"):
				uplinkSends++
			case e.Type == telemetry.EvRetransmit:
				retx++
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	u := make([]int32, 50000)
	if _, err := r.AllReduceShared(u); err != nil {
		t.Fatal(err)
	}
	wantFresh := 2 * ((len(u) + 31) / 32)
	if fresh := uplinkSends - retx; fresh != wantFresh {
		t.Errorf("fresh sends = %d, want %d", fresh, wantFresh)
	}
	if retx == 0 {
		t.Error("no retransmissions observed at 5% loss")
	}
}

func TestRackMTUElems(t *testing.T) {
	// Figure 7's enhanced baseline: MTU packets carrying 366
	// elements aggregate correctly and finish faster per element.
	small, _ := NewRack(Config{Workers: 4, LossRecovery: true, Seed: 1})
	big, _ := NewRack(Config{Workers: 4, LossRecovery: true, Seed: 1, SlotElems: packet.MTUElems})
	u := make([]int32, 1<<17)
	for j := range u {
		u[j] = 1
	}
	rs, err := small.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := big.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int32, len(u))
	for j := range want {
		want[j] = 4
	}
	checkAggregate(t, big, want)
	// §5.5: MTU packets improve TAT by ~31.6% (header overhead drops
	// from 28.9% to 3.4%).
	gain := 1 - float64(rb.TAT)/float64(rs.TAT)
	if gain < 0.20 || gain > 0.40 {
		t.Errorf("MTU TAT gain = %.3f, want ~0.316", gain)
	}
}

func TestRackEmptyTensor(t *testing.T) {
	r, err := NewRack(Config{Workers: 2, LossRecovery: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.AllReduce([][]int32{nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	if res.TAT != 0 {
		t.Errorf("empty tensor TAT = %v, want 0", res.TAT)
	}
}

func TestRackWrongUpdateCount(t *testing.T) {
	r, _ := NewRack(Config{Workers: 2, LossRecovery: true, Seed: 1})
	if _, err := r.AllReduce([][]int32{{1}}); err == nil {
		t.Error("wrong update count accepted")
	}
}

func TestRackStragglerSelfClocks(t *testing.T) {
	// §6: the self-clocking mechanism slows the system to the rate of
	// the slowest worker — gracefully, with results still exact.
	const elems = 200000
	rates := make([]float64, 4)
	rates[2] = 2.5e9 // one worker at a quarter of the 10G links
	r, err := NewRack(Config{
		Workers: 4, LossRecovery: true, Seed: 1,
		WorkerLinkBitsPerSec: rates,
		RTO:                  50 * netsim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := make([]int32, elems)
	for i := range u {
		u[i] = 7
	}
	res, err := r.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int32, elems)
	for i := range want {
		want[i] = 28
	}
	checkAggregate(t, r, want)
	// TAT should track the straggler's wire bound (within 10%), i.e.
	// ~4x the full-rate bound.
	pkts := (elems + 31) / 32
	stragglerBound := netsim.Time(float64(pkts*180*8) / 2.5e9 * 1e9)
	if res.TAT < stragglerBound {
		t.Fatalf("TAT %v below straggler bound %v", res.TAT, stragglerBound)
	}
	if float64(res.TAT) > 1.10*float64(stragglerBound) {
		t.Errorf("TAT %v more than 10%% above straggler bound %v", res.TAT, stragglerBound)
	}
}

func TestRackAdaptiveRTO(t *testing.T) {
	// §6 extension: the adaptive estimator must (a) keep lossy runs
	// correct, (b) outperform a badly mistuned fixed RTO, and (c) not
	// fire spuriously when the straggler stretches the RTT.
	const elems = 100000
	run := func(adaptive bool, rto netsim.Time) (netsim.Time, uint64) {
		r, err := NewRack(Config{
			Workers: 4, LossRecovery: true, LossRate: 0.01, Seed: 5,
			RTO: rto, AdaptiveRTO: adaptive,
		})
		if err != nil {
			t.Fatal(err)
		}
		u := make([]int32, elems)
		for i := range u {
			u[i] = 3
		}
		res, err := r.AllReduceShared(u)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]int32, elems)
		for i := range want {
			want[i] = 12
		}
		checkAggregate(t, r, want)
		return res.TAT, res.Retransmissions
	}
	fixedBad, _ := run(false, 10*netsim.Millisecond)
	adaptive, _ := run(true, 100*netsim.Microsecond)
	if float64(adaptive) > 0.5*float64(fixedBad) {
		t.Errorf("adaptive TAT %v not clearly better than mistuned fixed %v", adaptive, fixedBad)
	}

	// Straggler: lossless, one slow link stretches RTT far beyond the
	// initial RTO; the estimator must absorb it without a spurious
	// retransmission storm.
	rates := make([]float64, 4)
	rates[1] = 1e9
	r, err := NewRack(Config{
		Workers: 4, LossRecovery: true, Seed: 6,
		RTO: 200 * netsim.Microsecond, AdaptiveRTO: true,
		WorkerLinkBitsPerSec: rates,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := make([]int32, elems)
	res, err := r.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(4 * (elems + 31) / 32)
	if res.Retransmissions > total/20 {
		t.Errorf("adaptive RTO sent %d spurious retransmissions (>5%% of %d) under a straggler",
			res.Retransmissions, total)
	}
}

func TestRackScale64Workers(t *testing.T) {
	// The paper's switch connects up to 64 workers at 100 Gbps
	// (§1, §5.5): verify correctness and line-rate behaviour at that
	// port count. "SwitchML always maintains a predictable rate of
	// ATE/s regardless of the number of workers ... up to 64 in our
	// testbed."
	if testing.Short() {
		t.Skip("large topology")
	}
	const n = 64
	const elems = 1 << 16
	r, err := NewRack(Config{Workers: n, LinkBitsPerSec: 25e9, LossRecovery: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	u := make([]int32, elems)
	for i := range u {
		u[i] = 1
	}
	res, err := r.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int32, elems)
	for i := range want {
		want[i] = n
	}
	checkAggregate(t, r, want)
	pkts := (elems + 31) / 32
	wire := netsim.Time(float64(pkts*180*8) / 25e9 * 1e9)
	if float64(res.TAT) > 1.06*float64(wire) {
		t.Errorf("64-worker TAT %v more than 6%% above wire bound %v", res.TAT, wire)
	}
}

func TestRackSoakManyTensorsUnderLoss(t *testing.T) {
	// Soak: 20 consecutive tensors with loss and adaptive RTO; the
	// stream must stay exact throughout.
	if testing.Short() {
		t.Skip("soak test")
	}
	r, err := NewRack(Config{
		Workers: 4, LossRecovery: true, LossRate: 0.005, Seed: 99,
		RTO: 200 * netsim.Microsecond, AdaptiveRTO: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		d := 1000 + rng.Intn(20000)
		us := make([][]int32, 4)
		want := make([]int32, d)
		for i := range us {
			us[i] = make([]int32, d)
			for j := range us[i] {
				us[i][j] = int32(rng.Intn(101) - 50)
				want[j] += us[i][j]
			}
		}
		if _, err := r.AllReduce(us); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		checkAggregate(t, r, want)
	}
}

func TestRackAccessors(t *testing.T) {
	r, err := NewRack(Config{Workers: 2, LossRecovery: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sim() == nil || r.Switch() == nil {
		t.Fatal("nil accessors")
	}
	if _, err := r.AllReduceShared(make([]int32, 100)); err != nil {
		t.Fatal(err)
	}
	if st := r.WorkerStats(0); st.Sent == 0 || st.Results == 0 {
		t.Errorf("WorkerStats = %+v", st)
	}
	if r.Switch().Stats().Completions == 0 {
		t.Error("switch saw no completions")
	}
}
