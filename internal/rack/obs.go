// Rack-side observability: the virtual-time sampler tick chain and the
// deep-introspection accessors the CLI layers expose. The sampler
// mirrors the health monitor's sweep pattern — a self-rearming chain of
// netsim events that stops as soon as every live worker has finished,
// so the event loop can drain and AllReduce can return.
package rack

import (
	"switchml/internal/core"
	"switchml/internal/telemetry"
)

// startSampling takes one sample at the step's start and (re-)arms the
// periodic chain. Called at the top of every AllReduce; a chain left
// over from the previous step is reused rather than doubled up.
func (r *Rack) startSampling() {
	if r.sampler == nil {
		return
	}
	r.sampleNow()
	if !r.sampling {
		r.sampling = true
		r.armSample()
	}
}

func (r *Rack) armSample() { r.sim.After(r.cfg.SampleEvery, r.sampleTick) }

func (r *Rack) sampleTick() {
	r.sampleNow()
	if r.allLiveDone() || r.faultErr != nil {
		r.sampling = false
		return
	}
	r.armSample()
}

// sampleNow samples at the current virtual time, skipping duplicate
// timestamps (a step can start at the exact time the previous step's
// final tick fired) so every series stays strictly increasing.
func (r *Rack) sampleNow() {
	ts := int64(r.sim.Now())
	if ts <= r.lastSample {
		return
	}
	r.lastSample = ts
	r.sampler.Sample(ts)
}

// Series returns the sampled time series accumulated so far, keyed by
// series name ("<counter>:rate", "<gauge>", "<histogram>:p99", or a
// probe name such as rack_pool_occupancy). Nil unless
// Config.SampleEvery is set.
func (r *Rack) Series() map[string]telemetry.SeriesData {
	if r.sampler == nil {
		return nil
	}
	return r.sampler.Dump()
}

// PoolState returns the serving switch rung's per-slot introspection
// document: occupancy, retained results, last-contributor attribution,
// and (with withSlots) every slot's count, offset and seen bitmap.
// While the job is homed on a warm standby, that rung's pool is the
// one inspected — the primary's pool is stale by definition.
func (r *Rack) PoolState(withSlots bool) core.PoolState {
	return r.homeSwitch().PoolState(withSlots)
}
