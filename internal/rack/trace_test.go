package rack

import (
	"strconv"
	"strings"
	"testing"

	"switchml/internal/netsim"
	"switchml/internal/telemetry"
)

// TestTraceCountersAgree runs a deterministic lossy aggregation and
// checks that the recorded event stream and the component counters
// describe exactly the same run: every counter must equal its event
// count. This pins the tracer wiring — an unemitted or double-emitted
// event breaks the equality.
func TestTraceCountersAgree(t *testing.T) {
	ring := telemetry.NewRing(1 << 20)
	reg := telemetry.NewRegistry()
	r, err := NewRack(Config{
		Workers: 4, LossRecovery: true, LossRate: 0.01, Seed: 7,
		RTO:     200 * netsim.Microsecond,
		Tracer:  ring,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := make([]int32, 100000)
	for i := range u {
		u[i] = 1
	}
	res, err := r.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmissions == 0 {
		t.Fatal("want retransmissions at 1% loss; the consistency check needs recovery traffic")
	}
	if ring.Overwritten() > 0 {
		t.Fatalf("ring overflowed (%d lost): grow the capacity, the test needs every event", ring.Overwritten())
	}
	counts := telemetry.CountByType(ring.Events())
	c := r.Counters()
	sw := r.Switch().Stats()

	check := func(name string, events, counter uint64) {
		t.Helper()
		if events != counter {
			t.Errorf("%s: %d events vs %d counted", name, events, counter)
		}
	}
	// Link layer: every transmission, delivery and drop appears once.
	check("packets sent", counts[telemetry.EvPacketSent], c["packets_sent"])
	check("packets delivered", counts[telemetry.EvPacketRecv], c["packets_delivered"])
	check("packets dropped", counts[telemetry.EvPacketDropped], c["packets_dropped"])
	if counts[telemetry.EvPacketDropped] == 0 {
		t.Error("no drops recorded at 1% loss")
	}
	// Worker layer.
	check("retransmissions", counts[telemetry.EvRetransmit], c["worker_retransmissions"])
	check("retransmissions (result)", counts[telemetry.EvRetransmit], res.Retransmissions)
	check("tensor starts", counts[telemetry.EvTensorStart], uint64(r.Config().Workers))
	check("tensor dones", counts[telemetry.EvTensorDone], uint64(r.Config().Workers))
	// Switch layer: completions and shadow reads match, and the
	// aggregated-contribution identity holds — every accepted update
	// was folded into a slot exactly once.
	check("slot completions", counts[telemetry.EvSlotComplete], sw.Completions)
	check("shadow reads", counts[telemetry.EvShadowRead], sw.ResultRetransmissions)
	accepted := sw.Updates - sw.IgnoredDuplicates - sw.ResultRetransmissions - sw.StaleUpdates
	check("slot aggregations", counts[telemetry.EvSlotAggregated], accepted)

	// The registry view and the struct snapshots are the same
	// counters: spot-check one switch and one worker family.
	if got := reg.Counter("switch_completions_total", "job", "0").Value(); got != sw.Completions {
		t.Errorf("registry switch_completions_total = %d, stats = %d", got, sw.Completions)
	}
	var regSent uint64
	for i := 0; i < r.Config().Workers; i++ {
		regSent += reg.Counter("worker_sent_total", "worker", strconv.Itoa(i)).Value()
	}
	if regSent != c["worker_sent"] {
		t.Errorf("registry worker_sent sum = %d, stats sum = %d", regSent, c["worker_sent"])
	}
	// And the RTT histogram saw the clean round trips.
	if h := reg.Histogram("rack_rtt_ns", telemetry.LatencyBuckets).Snapshot(); h.Count == 0 {
		t.Error("rack_rtt_ns histogram is empty")
	}
}

// TestTraceChromeExport runs a short lossy aggregation and checks the
// recorded events export to a loadable Chrome trace containing drop
// and retransmit markers.
func TestTraceChromeExport(t *testing.T) {
	ring := telemetry.NewRing(1 << 18)
	r, err := NewRack(Config{
		Workers: 2, LossRecovery: true, LossRate: 0.05, Seed: 3,
		RTO: 100 * netsim.Microsecond, Tracer: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AllReduceShared(make([]int32, 20000)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := telemetry.WriteChromeTrace(&sb, ring.Events()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"PacketDropped"`, `"Retransmit"`, `"name":"tensor"`, `"traceEvents"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}
}
