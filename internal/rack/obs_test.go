package rack

import (
	"strings"
	"testing"

	"switchml/internal/faults"
	"switchml/internal/netsim"
)

// TestFaultSampledSeriesAcrossFallback drives the tentpole fault
// scenario (switch kill → degrade → probe → failback) with the
// virtual-time sampler running and checks the observability surface:
// series are present and never torn (strictly increasing virtual
// timestamps), the health-mode gauge records the round trip through
// DEGRADED, and the per-slot pool introspection stays coherent.
func TestFaultSampledSeriesAcrossFallback(t *testing.T) {
	const elems, steps = 4096, 6
	sc := &faults.Scenario{Actions: []faults.Action{
		{Kind: faults.KillSwitch, Step: 2, At: 20 * netsim.Microsecond},
		{Kind: faults.ReviveSwitch, Step: 2, At: 3 * netsim.Millisecond},
	}}
	cfg := healthTestConfig(sc)
	cfg.SampleEvery = 100 * netsim.Microsecond
	r, err := NewRack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Config().Metrics == nil {
		t.Fatal("SampleEvery did not auto-create a registry")
	}
	for s := 1; s <= steps; s++ {
		us, want := stepUpdates(cfg.Workers, elems, s)
		if _, err := r.AllReduce(us); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		for j, v := range r.Aggregate(0) {
			if v != want[j] {
				t.Fatalf("step %d elem %d: got %d want %d", s, j, v, want[j])
			}
		}
	}
	if r.Degraded() {
		t.Fatal("rack still degraded after probation")
	}

	series := r.Series()
	if len(series) == 0 {
		t.Fatal("sampler recorded nothing")
	}
	for name, sd := range series {
		for i := 1; i < len(sd.Points); i++ {
			if sd.Points[i].TS <= sd.Points[i-1].TS {
				t.Fatalf("series %s torn at %d: ts %d after %d",
					name, i, sd.Points[i].TS, sd.Points[i-1].TS)
			}
		}
	}

	// The health-mode gauge saw DEGRADED and ended back on SWITCH.
	mode, ok := series["rack_health_mode"]
	if !ok {
		t.Fatal("no rack_health_mode series")
	}
	sawDegraded := false
	for _, p := range mode.Points {
		if p.V == 1 {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Error("health-mode series never recorded DEGRADED")
	}
	if last := mode.Points[len(mode.Points)-1]; last.V != 0 {
		t.Errorf("final health mode = %v, want 0 (SWITCH)", last.V)
	}

	// Counter rates and the occupancy probe made it into the dump.
	foundRate := false
	for name := range series {
		if strings.HasPrefix(name, "switch_updates_total") && strings.HasSuffix(name, ":rate") {
			foundRate = true
		}
	}
	if !foundRate {
		t.Error("no switch_updates_total rate series")
	}
	occ, ok := series["rack_pool_occupancy"]
	if !ok {
		t.Fatal("no rack_pool_occupancy probe series")
	}
	for _, p := range occ.Points {
		if p.V < 0 || p.V > 1 {
			t.Fatalf("occupancy %v out of [0,1]", p.V)
		}
	}

	// Per-slot pool introspection after the run: the pool is idle, and
	// the document's shape matches the configuration.
	ps := r.PoolState(true)
	if ps.Workers != cfg.Workers {
		t.Errorf("pool workers = %d, want %d", ps.Workers, cfg.Workers)
	}
	if want := cfg.PoolSize * ps.Versions; len(ps.Slots) != want {
		t.Errorf("slot dump length = %d, want %d", len(ps.Slots), want)
	}
	if ps.Occupancy != 0 {
		t.Errorf("idle pool occupancy = %v, want 0", ps.Occupancy)
	}
}
