// Fault injection and failure recovery for the simulated rack: the
// scripted actions of internal/faults are applied to hosts, links and
// the switch at their trigger times, and a failure controller —
// playing the role of the machine-learning framework's coordinator in
// §5.6 — detects silent workers, shrinks the membership under a new
// job generation, and resumes every survivor from the global progress
// frontier.
package rack

import (
	"switchml/internal/core"
	"switchml/internal/faults"
	"switchml/internal/netsim"
	"switchml/internal/telemetry"
)

// LivenessConfig tunes the failure detector (§5.6: worker failures
// "are detected via timeouts").
type LivenessConfig struct {
	// SilenceAfter is how long a worker may stay silent — while at
	// least one peer keeps making progress — before the controller
	// declares it failed; zero selects 16×RTO. Values below the
	// maximum retransmission backoff (64×RTO) trade detection speed
	// against the risk of retiring a merely unlucky worker.
	SilenceAfter netsim.Time
	// CheckEvery is the detector's sweep period; zero selects
	// SilenceAfter/4. Detection latency is at most
	// SilenceAfter + CheckEvery past the last packet of the failed
	// worker.
	CheckEvery netsim.Time
}

func (c *LivenessConfig) fillDefaults(rto netsim.Time) {
	if c.SilenceAfter == 0 {
		c.SilenceAfter = 16 * rto
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = c.SilenceAfter / 4
	}
}

// controller is the failure detector and recovery coordinator.
type controller struct {
	r       *Rack
	cfg     LivenessConfig
	tracker *faults.Tracker
	// sweeping guards against arming a second sweep chain.
	sweeping bool
}

func newController(r *Rack, cfg LivenessConfig) *controller {
	return &controller{
		r:       r,
		cfg:     cfg,
		tracker: faults.NewTracker(r.cfg.Workers, int64(cfg.SilenceAfter)),
	}
}

// begin arms the periodic sweep at the start of a step; the chain
// stops re-arming once every live worker is done, so the simulation
// can drain.
func (c *controller) begin() {
	if c.sweeping {
		return
	}
	c.sweeping = true
	c.arm()
}

func (c *controller) arm() { c.r.sim.After(c.cfg.CheckEvery, c.sweep) }

// sweep is one detector pass: workers silent past the threshold while
// a peer made progress are declared failed, and any verdict triggers
// recovery.
func (c *controller) sweep() {
	r := c.r
	if r.allLiveDone() || r.faultErr != nil {
		c.sweeping = false
		return
	}
	verdict := false
	for _, w := range c.tracker.Suspects(int64(r.sim.Now())) {
		if c.tracker.AliveCount() <= 1 {
			break // never retire the last worker
		}
		c.tracker.MarkDead(w)
		r.traceCtrl(telemetry.EvFailureDetected, "controller", int32(w), -1)
		verdict = true
	}
	if verdict {
		c.recover()
	}
	c.arm()
}

// recover is the §5.6 recovery sequence: retire failed workers from
// the switch membership under a new job generation (wiping the pool,
// so no slot can ever mix contributions across generations), then
// restart every survivor from the global progress frontier — the
// minimum over survivors of their first missing chunk. Every chunk at
// or past the frontier is re-aggregated by everyone, so all survivors
// walk identical slot schedules again and converge to
// bitwise-identical aggregates.
func (c *controller) recover() {
	r := c.r
	r.epoch++
	active := make([]bool, r.cfg.Workers)
	for i := range active {
		active[i] = !c.tracker.Dead(i) && !r.hosts[i].detached
	}
	if err := r.homeSwitch().Reconfigure(active, r.epoch); err != nil {
		if r.faultErr == nil {
			r.faultErr = err
		}
		return
	}
	r.traceCtrl(telemetry.EvReconfigure, "controller", -1, int64(r.epoch))

	resume := false
	frontier := ^uint64(0)
	for i, h := range r.hosts {
		if h.crashed || h.detached || c.tracker.Dead(i) {
			continue
		}
		if !h.finished {
			resume = true
		}
		if f := h.worker.FrontierOff(); f < frontier {
			frontier = f
		}
	}
	for i, h := range r.hosts {
		if h.crashed || h.detached || c.tracker.Dead(i) {
			continue
		}
		if !resume {
			// Nothing in flight: just install the new generation and
			// reset the pool versions to match the wiped switch.
			h.worker.Resume(r.epoch, h.worker.ChunkCount())
			continue
		}
		if err := h.Resume(r.epoch, frontier); err != nil && r.faultErr == nil {
			r.faultErr = err
		}
	}
}

// allLiveDone reports whether every worker still in the job holds its
// aggregate.
func (r *Rack) allLiveDone() bool {
	for i, h := range r.hosts {
		if r.skip(i) {
			continue
		}
		if !h.finished {
			return false
		}
	}
	return true
}

// Epoch returns the current job generation.
func (r *Rack) Epoch() uint16 { return r.epoch }

// traceCtrl emits a controller- or switch-scope event.
func (r *Rack) traceCtrl(t telemetry.EventType, actor string, worker int32, off int64) {
	if r.cfg.Tracer == nil {
		return
	}
	e := telemetry.Ev(t, int64(r.sim.Now()))
	e.Actor = actor
	e.Worker = worker
	e.Off = off
	r.cfg.Tracer.Emit(e)
}

// RestartSwitch models a switch reboot mid-job: all register state
// (slots, bitmaps, counters) is wiped, §5.6's switch-failure case.
// The controller notices after a sweep period and re-runs recovery —
// the same generation bump and frontier resume as for a worker
// failure, with the membership unchanged. Slot results computed
// before the wipe were complete and correct; the generation bump
// ensures nothing aggregated after it can mix with contributions from
// before.
func (r *Rack) RestartSwitch() {
	r.sw.sw.Reset()
	r.traceCtrl(telemetry.EvSwitchRestart, "switch", -1, -1)
	if r.ctrl == nil {
		return
	}
	r.sim.After(r.ctrl.cfg.CheckEvery, func() {
		if !r.allLiveDone() {
			r.ctrl.recover()
		}
	})
}

// restartJob re-admits restarted workers at a step boundary: the
// paper's recovery restarts the job from the last checkpoint, so
// every host gets a fresh protocol state machine (stream offsets
// restart at zero), the switch membership is rebuilt under a new
// generation, and old failure verdicts are forgotten.
func (r *Rack) restartJob() {
	r.rejoin = false
	r.epoch++
	// The whole job restarts from the checkpoint: the stream restarts
	// at offset zero, so any later elastic joiner's cursor must too.
	r.streamOff = 0
	active := make([]bool, r.cfg.Workers)
	for i, h := range r.hosts {
		active[i] = !h.crashed && !h.detached
		if h.crashed || h.detached {
			continue
		}
		h.resetWorker()
		h.worker.SetJobID(r.epoch)
		if r.ctrl != nil {
			r.ctrl.tracker.MarkAlive(i, int64(r.sim.Now()))
		}
	}
	if err := r.homeSwitch().Reconfigure(active, r.epoch); err != nil && r.faultErr == nil {
		r.faultErr = err
	}
	r.traceCtrl(telemetry.EvReconfigure, "controller", -1, int64(r.epoch))
}

// apply executes one scripted fault action at its trigger time.
func (r *Rack) apply(a faults.Action) {
	switch a.Kind {
	case faults.CrashWorker:
		r.hosts[a.Worker].Crash()
	case faults.RestartWorker:
		h := r.hosts[a.Worker]
		if h.crashed {
			h.Restart()
			r.rejoin = true
		}
	case faults.JoinWorker:
		r.requestJoin(a.Worker)
	case faults.LeaveWorker:
		r.requestLeave(a.Worker)
	case faults.RestartSwitch:
		r.RestartSwitch()
	case faults.KillSwitch:
		// The aggregation program dies: updates are blackholed, probes
		// go unanswered, the crossbar keeps forwarding. Detection is
		// the health monitor's job (or, with NoFallback, the hosts'
		// stall give-up).
		r.sw.down = true
	case faults.ReviveSwitch:
		if r.sw.down {
			r.sw.down = false
			// The reinstalled program starts with wiped register state.
			r.sw.sw.Reset()
			r.traceCtrl(telemetry.EvSwitchRestart, "switch", -1, -1)
		}
	case faults.KillStandby:
		// Action.Worker carries the standby rank (1-based); range
		// checked by NewRack against Config.StandbySwitches.
		r.sw.sbDown[a.Worker-1] = true
	case faults.ReviveStandby:
		if r.sw.sbDown[a.Worker-1] {
			r.sw.sbDown[a.Worker-1] = false
			// The reinstalled program starts with wiped register state;
			// the next adoption fences it under a fresh generation.
			r.sw.standbys[a.Worker-1].Reset()
			r.traceCtrl(telemetry.EvSwitchRestart, "standby", int32(a.Worker), -1)
		}
	case faults.LinkDown:
		for _, l := range r.linksOf(a.Worker) {
			l.SetDown(true)
		}
	case faults.LinkUp:
		for _, l := range r.linksOf(a.Worker) {
			l.SetDown(false)
		}
	case faults.SetLossRate:
		for _, l := range r.linksOf(a.Worker) {
			l.SetLossRate(a.Rate)
		}
	case faults.SetBurstLoss:
		for _, l := range r.linksOf(a.Worker) {
			// Validated by Scenario.Validate; each link needs its own
			// chain instance.
			ge, err := netsim.NewGilbertElliott(a.Burst)
			if err != nil {
				if r.faultErr == nil {
					r.faultErr = err
				}
				return
			}
			l.SetLossModel(ge)
		}
	}
}

// requestJoin queues a graceful join: the detached worker is admitted
// at the next step boundary by commitMembership. Requests for hosts
// already inside the membership, or crashed, are ignored — a join is
// an invitation, not an invariant.
func (r *Rack) requestJoin(w int) {
	h := r.hosts[w]
	if !h.detached || h.crashed {
		return
	}
	r.pendingJoin[w] = true
	r.membershipDirty = true
}

// requestLeave begins a graceful leave: the worker keeps contributing
// until the step boundary (draining its in-flight window — under the
// globally synchronous step model, the rest of the current tensor),
// then commitMembership retires it. The liveness tracker is told
// immediately, so the coming silence is never mistaken for a crash.
func (r *Rack) requestLeave(w int) {
	h := r.hosts[w]
	if h.detached || h.crashed || h.draining || r.dead(w) {
		return
	}
	// Never drain the last member: a job needs at least one worker.
	members := 0
	for i := range r.hosts {
		if !r.skip(i) && !r.hosts[i].draining {
			members++
		}
	}
	if members <= 1 {
		return
	}
	h.draining = true
	r.pendingLeave[w] = true
	r.membershipDirty = true
	if r.ctrl != nil {
		r.ctrl.tracker.MarkDraining(w)
	}
	r.traceCtrl(telemetry.EvDrainStart, "controller", int32(w), -1)
}

// commitMembership applies queued graceful joins and leaves at a step
// boundary: one generation bump, one pool wipe, and a membership
// reconfiguration covering every queued change — the elastic
// counterpart of the §5.6 recovery fence, taken where nothing is in
// flight so no aggregate can be torn. Joiners' stream cursors start
// at the global frontier; incumbents re-seat the new generation with
// reset pool versions, matching the wiped switch.
func (r *Rack) commitMembership() {
	if !r.membershipDirty {
		return
	}
	r.membershipDirty = false
	r.epoch++
	now := int64(r.sim.Now())
	active := make([]bool, r.cfg.Workers)
	joined := make([]bool, r.cfg.Workers)
	for i, h := range r.hosts {
		if r.pendingJoin[i] && !h.crashed {
			h.detached = false
			joined[i] = true
			h.worker.JoinAt(r.epoch, r.streamOff)
			if r.ctrl != nil {
				r.ctrl.tracker.MarkAlive(i, now)
			}
			r.traceCtrl(telemetry.EvWorkerJoin, "controller", int32(i), int64(r.epoch))
		}
		if r.pendingLeave[i] {
			h.detached = true
			h.draining = false
			if r.ctrl != nil {
				r.ctrl.tracker.MarkDeparted(i)
			}
			r.left = append(r.left, i)
			r.traceCtrl(telemetry.EvWorkerLeave, "controller", int32(i), int64(r.epoch))
		}
		r.pendingJoin[i], r.pendingLeave[i] = false, false
		active[i] = !h.crashed && !h.detached && !r.dead(i)
	}
	if err := r.homeSwitch().Reconfigure(active, r.epoch); err != nil {
		if r.faultErr == nil {
			r.faultErr = err
		}
		return
	}
	for i, h := range r.hosts {
		if !active[i] || joined[i] {
			continue
		}
		// Incumbents: install the new generation and reset per-slot
		// pool versions to match the freshly wiped switch. Nothing is
		// in flight at a step boundary, so no frontier is needed.
		h.worker.Resume(r.epoch, h.worker.ChunkCount())
	}
	r.traceCtrl(telemetry.EvReconfigure, "controller", -1, int64(r.epoch))
}

// linksOf returns the access links touched by a link-scoped action:
// both directions of worker w's links, or every link when w is -1.
func (r *Rack) linksOf(w int) []*netsim.Link {
	if w < 0 {
		links := append([]*netsim.Link(nil), r.uplink...)
		return append(links, r.sw.downlinks...)
	}
	return []*netsim.Link{r.uplink[w], r.sw.downlinks[w]}
}

// Crash kills the host: pending timers die with it and it neither
// sends nor receives until Restart.
func (h *WorkerHost) Crash() {
	if h.crashed {
		return
	}
	h.crashed = true
	h.trace(telemetry.EvWorkerCrash, -1, -1)
	for i := range h.timers {
		h.timers[i].Cancel()
		h.timers[i] = netsim.Timer{}
	}
}

// Crashed reports whether the host is currently down.
func (h *WorkerHost) Crashed() bool { return h.crashed }

// Restart revives a crashed host with a fresh protocol state machine
// — the process memory is gone. It rejoins the job at the next step
// boundary, when the rack restarts the job under a new generation.
func (h *WorkerHost) Restart() {
	if !h.crashed {
		return
	}
	h.crashed = false
	h.trace(telemetry.EvWorkerRestart, -1, -1)
	h.resetWorker()
}

// resetWorker rebuilds the protocol state machine and clears all host
// timing state.
func (h *WorkerHost) resetWorker() {
	w, err := core.NewWorker(h.wcfg)
	if err != nil {
		// The identical configuration was validated at construction.
		panic(err)
	}
	h.worker = w
	for i := range h.coreFree {
		h.coreFree[i] = 0
	}
	for i := range h.timers {
		h.timers[i].Cancel()
		h.timers[i] = netsim.Timer{}
		h.backoff[i] = 0
		h.retxed[i] = false
		h.sentAt[i] = 0
		h.stall[i] = 0
	}
	h.srtt, h.rttvar = 0, 0
	h.finished = false
}

// Resume restarts the host's tensor from the global recovery frontier
// under a new job generation: pending timers and backoff state are
// cleared, the protocol state machine re-opens the tensor at the
// frontier (see core.Worker.Resume for why every survivor uses the
// same frontier), and the new initial window goes out. A host whose
// tensor was already complete is re-opened and its completion
// callback fires a second time.
func (h *WorkerHost) Resume(jobID uint16, off uint64) error {
	if h.crashed {
		return nil
	}
	for i := range h.timers {
		h.timers[i].Cancel()
		h.timers[i] = netsim.Timer{}
		h.backoff[i] = 0
		h.retxed[i] = false
	}
	pkts, err := h.worker.ResumeAt(jobID, off)
	if err != nil {
		return err
	}
	h.trace(telemetry.EvResume, -1, int64(off))
	if len(pkts) == 0 {
		return nil
	}
	h.finished = false
	for _, p := range pkts {
		p := p
		h.sim.At(h.charge(p.Idx), func() { h.transmit(p, false) })
	}
	return nil
}
