package core

import (
	"testing"

	"switchml/internal/packet"
)

func TestMultiSwitchRouting(t *testing.T) {
	m := NewMultiSwitch(0)
	for _, job := range []uint16{1, 2} {
		if _, err := m.AdmitJob(SwitchConfig{
			Workers: 2, PoolSize: 2, SlotElems: 2, LossRecovery: true, JobID: job,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Job 1 aggregates [1,1]+[2,2]; job 2 aggregates [10,10]+[20,20];
	// interleaved deliveries must not mix.
	m.Handle(packet.NewUpdate(0, 1, 0, 0, 0, []int32{1, 1}))
	m.Handle(packet.NewUpdate(0, 2, 0, 0, 0, []int32{10, 10}))
	r1 := m.Handle(packet.NewUpdate(1, 1, 0, 0, 0, []int32{2, 2}))
	r2 := m.Handle(packet.NewUpdate(1, 2, 0, 0, 0, []int32{20, 20}))
	if r1.Pkt == nil || r1.Pkt.Vector[0] != 3 || r1.Pkt.JobID != 1 {
		t.Errorf("job 1 result = %v", r1.Pkt)
	}
	if r2.Pkt == nil || r2.Pkt.Vector[0] != 30 || r2.Pkt.JobID != 2 {
		t.Errorf("job 2 result = %v", r2.Pkt)
	}
	// Unknown job: dropped.
	if r := m.Handle(packet.NewUpdate(0, 9, 0, 0, 0, []int32{1})); r.Pkt != nil {
		t.Error("unknown job produced a response")
	}
}

func TestMultiSwitchAdmissionBudget(t *testing.T) {
	cfg := SwitchConfig{Workers: 4, PoolSize: 64, SlotElems: 32, LossRecovery: true, JobID: 1}
	ref, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	per := ref.MemoryBytes()

	m := NewMultiSwitch(2*per + per/2) // Room for exactly two jobs.
	for job := uint16(1); job <= 2; job++ {
		cfg.JobID = job
		if _, err := m.AdmitJob(cfg); err != nil {
			t.Fatalf("job %d rejected: %v", job, err)
		}
	}
	cfg.JobID = 3
	if _, err := m.AdmitJob(cfg); err == nil {
		t.Fatal("third job admitted beyond budget")
	}
	if got := m.MemoryBytes(); got != 2*per {
		t.Errorf("MemoryBytes = %d, want %d", got, 2*per)
	}
	if got := m.Jobs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Jobs = %v", got)
	}
	if m.Job(1) == nil || m.Job(3) != nil {
		t.Error("Job lookup wrong")
	}
	if err := m.ReleaseJob(1); err != nil {
		t.Fatal(err)
	}
	cfg.JobID = 3
	if _, err := m.AdmitJob(cfg); err != nil {
		t.Errorf("job 3 rejected after release: %v", err)
	}
	if err := m.ReleaseJob(42); err == nil {
		t.Error("releasing unknown job succeeded")
	}
}

func TestMultiSwitchDuplicateAndInvalidJobs(t *testing.T) {
	m := NewMultiSwitch(0)
	cfg := SwitchConfig{Workers: 1, PoolSize: 1, SlotElems: 1, LossRecovery: true, JobID: 7}
	if _, err := m.AdmitJob(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AdmitJob(cfg); err == nil {
		t.Error("duplicate job admitted")
	}
	if _, err := m.AdmitJob(SwitchConfig{JobID: 8}); err == nil {
		t.Error("invalid config admitted")
	}
}
