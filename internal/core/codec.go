package core

import (
	"math"

	"switchml/internal/quant"
)

// Codec converts between the wire representation of a packet's vector
// and the switch's internal integer accumulator representation. The
// default (nil) codec is the identity: the wire carries 32-bit
// fixed-point values and the switch adds them directly.
//
// The float16 deployment of §3.7 uses PackedHalfCodec: each 32-bit
// wire element carries two IEEE-754 half-precision values, the switch
// converts them to 32-bit fixed point at ingress (the Tofino
// lookup-table conversion), aggregates, and converts back at egress.
// This halves the bytes on the wire per gradient element.
type Codec interface {
	// Ratio is the number of accumulator values per wire element
	// (1 for identity, 2 for packed halves).
	Ratio() int
	// Ingress expands wire elements into accumulator values;
	// len(dst) = Ratio() * len(wire).
	Ingress(dst []int32, wire []int32)
	// Egress compresses accumulator values back into wire elements;
	// len(dst) = len(acc) / Ratio().
	Egress(dst []int32, acc []int32)
}

// PackedHalfCodec implements the paper's 16-bit floating point mode:
// two halves per 32-bit wire element, fixed-point aggregation inside
// the switch with the given scaling factor.
type PackedHalfCodec struct {
	factor float64
}

// NewPackedHalfCodec returns a codec whose internal fixed-point
// representation uses scaling factor f.
func NewPackedHalfCodec(f float64) (*PackedHalfCodec, error) {
	if _, err := quant.NewFixedPoint(f); err != nil {
		return nil, err
	}
	return &PackedHalfCodec{factor: f}, nil
}

// Factor returns the in-switch scaling factor.
func (c *PackedHalfCodec) Factor() float64 { return c.factor }

// Ratio implements Codec.
func (c *PackedHalfCodec) Ratio() int { return 2 }

// PackHalves packs two float16 bit patterns into one int32 wire
// element (low half first).
func PackHalves(lo, hi quant.Float16) int32 {
	return int32(uint32(lo) | uint32(hi)<<16)
}

// UnpackHalves splits a wire element into its two halves.
func UnpackHalves(w int32) (lo, hi quant.Float16) {
	return quant.Float16(uint32(w) & 0xFFFF), quant.Float16(uint32(w) >> 16)
}

// Ingress implements Codec: halves become saturating fixed-point
// values.
func (c *PackedHalfCodec) Ingress(dst []int32, wire []int32) {
	if len(dst) != 2*len(wire) {
		panic("core: PackedHalfCodec.Ingress length mismatch")
	}
	for i, w := range wire {
		lo, hi := UnpackHalves(w)
		dst[2*i] = c.toFixed(lo)
		dst[2*i+1] = c.toFixed(hi)
	}
}

// Egress implements Codec.
func (c *PackedHalfCodec) Egress(dst []int32, acc []int32) {
	if 2*len(dst) != len(acc) {
		panic("core: PackedHalfCodec.Egress length mismatch")
	}
	inv := 1 / c.factor
	for i := range dst {
		lo := quant.Float16FromFloat32(float32(float64(acc[2*i]) * inv))
		hi := quant.Float16FromFloat32(float32(float64(acc[2*i+1]) * inv))
		dst[i] = PackHalves(lo, hi)
	}
}

func (c *PackedHalfCodec) toFixed(h quant.Float16) int32 {
	s := math.RoundToEven(float64(h.Float32()) * c.factor)
	switch {
	case s > math.MaxInt32:
		return math.MaxInt32
	case s < math.MinInt32:
		return math.MinInt32
	default:
		return int32(s)
	}
}
