package core

import (
	"math/rand"
	"testing"

	"switchml/internal/packet"
)

// channelHarness drives the protocol with per-link FIFO channels and
// a randomized scheduler: each step it picks a random non-empty link
// and delivers its head packet, optionally dropping or duplicating
// it. Per-link FIFO is exactly the network model the protocol assumes
// (§3.4 notes reordering across slots is fine); the random scheduler
// explores cross-link interleavings the lockstep harness cannot.
type channelHarness struct {
	t       *testing.T
	rng     *rand.Rand
	sw      *Switch
	workers []*Worker
	// up[w] is worker w's FIFO toward the switch; down[w] the reverse.
	up, down [][]*packet.Packet
	done     []bool
	loss     float64
	dup      float64
}

func newChannelHarness(t *testing.T, rng *rand.Rand, n, s, k int, loss, dup float64) *channelHarness {
	t.Helper()
	sw, err := NewSwitch(SwitchConfig{Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	h := &channelHarness{
		t: t, rng: rng, sw: sw,
		up: make([][]*packet.Packet, n), down: make([][]*packet.Packet, n),
		done: make([]bool, n), loss: loss, dup: dup,
	}
	for i := 0; i < n; i++ {
		w, err := NewWorker(WorkerConfig{ID: uint16(i), Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true})
		if err != nil {
			t.Fatal(err)
		}
		h.workers = append(h.workers, w)
	}
	return h
}

func (h *channelHarness) aggregate(updates [][]int32) []int32 {
	for i := range h.done {
		h.done[i] = false
	}
	for i, w := range h.workers {
		h.up[i] = append(h.up[i], w.Start(updates[i])...)
	}
	for rounds := 0; ; rounds++ {
		if rounds > 1<<22 {
			h.t.Fatal("channel harness did not converge")
		}
		// Collect non-empty links.
		type link struct {
			toSwitch bool
			w        int
		}
		var ready []link
		for w := range h.workers {
			if len(h.up[w]) > 0 {
				ready = append(ready, link{true, w})
			}
			if len(h.down[w]) > 0 {
				ready = append(ready, link{false, w})
			}
		}
		if len(ready) == 0 {
			if h.allDone() {
				break
			}
			// Timeout sweep: all pending slots retransmit.
			progress := false
			for w, worker := range h.workers {
				for idx := 0; idx < worker.Config().PoolSize; idx++ {
					if p := worker.Retransmit(uint32(idx)); p != nil {
						h.up[w] = append(h.up[w], p)
						progress = true
					}
				}
			}
			if !progress {
				h.t.Fatal("deadlock in channel harness")
			}
			continue
		}
		l := ready[h.rng.Intn(len(ready))]
		var p *packet.Packet
		if l.toSwitch {
			p, h.up[l.w] = h.up[l.w][0], h.up[l.w][1:]
		} else {
			p, h.down[l.w] = h.down[l.w][0], h.down[l.w][1:]
		}
		if h.rng.Float64() < h.loss {
			continue // dropped on the wire
		}
		if h.rng.Float64() < h.dup {
			// Duplicate delivery: process the same packet twice.
			h.deliver(l.toSwitch, l.w, p.Clone())
		}
		h.deliver(l.toSwitch, l.w, p)
	}
	ref := h.workers[0].Aggregate()
	for w := 1; w < len(h.workers); w++ {
		got := h.workers[w].Aggregate()
		for i := range ref {
			if got[i] != ref[i] {
				h.t.Fatalf("worker %d diverges at %d: %d vs %d", w, i, got[i], ref[i])
			}
		}
	}
	return ref
}

func (h *channelHarness) deliver(toSwitch bool, w int, p *packet.Packet) {
	if toSwitch {
		resp := h.sw.Handle(p)
		if resp.Pkt == nil {
			return
		}
		if resp.Multicast {
			for wid := range h.workers {
				h.down[wid] = append(h.down[wid], resp.Pkt.Clone())
			}
			return
		}
		h.down[resp.Pkt.WorkerID] = append(h.down[resp.Pkt.WorkerID], resp.Pkt)
		return
	}
	next, fin := h.workers[w].HandleResult(p)
	if next != nil {
		h.up[w] = append(h.up[w], next)
	}
	if fin {
		h.done[w] = true
	}
}

func (h *channelHarness) allDone() bool {
	for _, d := range h.done {
		if !d {
			return false
		}
	}
	return true
}

func TestRandomInterleavings(t *testing.T) {
	// Many random schedules across link interleavings, loss and
	// duplication: the aggregate must always be exact.
	rng := rand.New(rand.NewSource(2024))
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(4)
		s := 1 + rng.Intn(6)
		k := 1 + rng.Intn(12)
		d := 1 + rng.Intn(400)
		loss := rng.Float64() * 0.25
		dup := rng.Float64() * 0.10
		h := newChannelHarness(t, rng, n, s, k, loss, dup)
		us := randUpdates(rng, n, d)
		got := h.aggregate(us)
		checkEqual(t, got, goldenSum(us))
	}
}

func TestRandomInterleavingsMultiTensor(t *testing.T) {
	// Consecutive tensors through the same randomized network: the
	// stream's version alternation must survive arbitrary schedules.
	rng := rand.New(rand.NewSource(777))
	h := newChannelHarness(t, rng, 3, 3, 8, 0.1, 0.05)
	for iter := 0; iter < 6; iter++ {
		d := 20 + rng.Intn(300)
		us := randUpdates(rng, 3, d)
		checkEqual(t, h.aggregate(us), goldenSum(us))
	}
}
