package core

import (
	"testing"

	"switchml/internal/packet"
)

func newQuorumSwitch(t *testing.T, n, s, k, q int, policy LatePolicy) *Switch {
	t.Helper()
	sw, err := NewSwitch(SwitchConfig{
		Workers: n, PoolSize: s, SlotElems: k,
		LossRecovery: true, Quorum: q, LatePolicy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestQuorumConfigValidation(t *testing.T) {
	if _, err := NewSwitch(SwitchConfig{Workers: 3, PoolSize: 2, SlotElems: 2, Quorum: 2}); err == nil {
		t.Error("quorum without loss recovery was accepted")
	}
	if _, err := NewSwitch(SwitchConfig{Workers: 3, PoolSize: 2, SlotElems: 2, LossRecovery: true, Quorum: 4}); err == nil {
		t.Error("quorum above the membership was accepted")
	}
	if _, err := NewSwitch(SwitchConfig{Workers: 3, PoolSize: 2, SlotElems: 2, LossRecovery: true, Quorum: -1}); err == nil {
		t.Error("negative quorum was accepted")
	}
	// Quorum == Workers is full participation, which needs no loss
	// recovery waiver: it is not straggler mitigation at all.
	sw := newQuorumSwitch(t, 3, 2, 2, 3, LateDrop)
	if sw.quorumActive() {
		t.Error("quorum == membership reports active straggler mitigation")
	}
}

// TestQuorumCompletesAtThreshold is the basic N-of-M behavior: the
// slot completes and multicasts once the quorum has contributed; the
// straggler's late update is dropped-and-counted (LateDrop) and
// served the retained result so it keeps pace.
func TestQuorumCompletesAtThreshold(t *testing.T) {
	sw := newQuorumSwitch(t, 3, 2, 2, 2, LateDrop)
	if r := sw.Handle(upd(0, 0, 0, 0, 1, 2)); r.Pkt != nil {
		t.Fatal("response before quorum")
	}
	r := sw.Handle(upd(1, 0, 0, 0, 10, 20))
	if r.Pkt == nil || !r.Multicast {
		t.Fatal("no multicast at quorum")
	}
	if r.Pkt.Vector[0] != 11 || r.Pkt.Vector[1] != 22 {
		t.Fatalf("quorum aggregate = %v, want [11 22]", r.Pkt.Vector)
	}
	st := sw.Stats()
	if st.Completions != 1 || st.QuorumCompletions != 1 {
		t.Errorf("completions = %d quorum = %d, want 1/1", st.Completions, st.QuorumCompletions)
	}
	// The straggler arrives after completion: late update handled per
	// policy, retained result unicast back.
	r = sw.Handle(upd(2, 0, 0, 0, 100, 200))
	if r.Pkt == nil || r.Multicast || r.Pkt.Kind != packet.KindResultUnicast {
		t.Fatalf("straggler reply = %+v, want unicast retained result", r.Pkt)
	}
	if r.Pkt.Vector[0] != 11 || r.Pkt.Vector[1] != 22 {
		t.Fatalf("straggler was served %v, want the retained [11 22]", r.Pkt.Vector)
	}
	if got := sw.Stats().LateDropped; got != 1 {
		t.Errorf("LateDropped = %d, want 1", got)
	}
}

// TestQuorumLateReconcileFoldsIntoNextPhase checks the LateReconcile
// policy: a straggler's late gradient is carried and added when the
// same pool slot opens its next phase, and a retransmitted late
// update is not double-counted.
func TestQuorumLateReconcileFoldsIntoNextPhase(t *testing.T) {
	sw := newQuorumSwitch(t, 3, 1, 1, 2, LateReconcile)
	// Phase off=0 on pool 0 completes at quorum {0, 1}.
	sw.Handle(upd(0, 0, 0, 0, 1))
	if r := sw.Handle(upd(1, 0, 0, 0, 2)); r.Pkt == nil || r.Pkt.Vector[0] != 3 {
		t.Fatalf("quorum phase result = %+v, want [3]", r.Pkt)
	}
	// Straggler 2 arrives late: folded into the carry, served [3].
	if r := sw.Handle(upd(2, 0, 0, 0, 100)); r.Pkt == nil || r.Pkt.Vector[0] != 3 {
		t.Fatalf("late reply = %+v, want retained [3]", r.Pkt)
	}
	if got := sw.Stats().LateReconciled; got != 1 {
		t.Fatalf("LateReconciled = %d, want 1", got)
	}
	// A retransmission of the same late update must not double-fold.
	sw.Handle(upd(2, 0, 0, 0, 100))
	if got := sw.Stats().LateReconciled; got != 1 {
		t.Fatalf("LateReconciled after retransmit = %d, want 1", got)
	}
	// Phase off=1 runs on pool 1: the pool-0 carry must not leak here.
	sw.Handle(upd(0, 1, 0, 1, 5))
	if r := sw.Handle(upd(1, 1, 0, 1, 6)); r.Pkt == nil || r.Pkt.Vector[0] != 11 {
		t.Fatalf("pool-1 phase result = %+v, want [11] (carry must stay on pool 0)", r.Pkt)
	}
	// Phase off=2 reopens pool 0: the carried 100 joins the fresh sum.
	sw.Handle(upd(0, 0, 0, 2, 7))
	r := sw.Handle(upd(1, 0, 0, 2, 8))
	if r.Pkt == nil || r.Pkt.Vector[0] != 7+8+100 {
		t.Fatalf("reconciled phase result = %+v, want [115]", r.Pkt)
	}
	// The carry is consumed: the next pool-0 phase is carry-free.
	sw.Handle(upd(0, 1, 0, 3, 1))
	sw.Handle(upd(1, 1, 0, 3, 1))
	sw.Handle(upd(0, 0, 0, 4, 9))
	if r := sw.Handle(upd(1, 0, 0, 4, 10)); r.Pkt == nil || r.Pkt.Vector[0] != 19 {
		t.Fatalf("post-reconcile phase result = %+v, want [19] (carry applied twice?)", r.Pkt)
	}
}

// TestQuorumStaleSeenBitCleared covers the seen-bit hazard unique to
// quorum mode: a worker inside the quorum of an old phase skips the
// intervening phase on the other pool (it straggled), so nothing
// cleared its seen bit when the slot is reused. Its first update for
// the new phase must open the aggregation, not be mistaken for a
// retransmission of the old one — that would serve it a stale result
// and deadlock the slot.
func TestQuorumStaleSeenBitCleared(t *testing.T) {
	sw := newQuorumSwitch(t, 3, 1, 1, 2, LateDrop)
	// Phase off=0, pool 0: quorum is {2, 0}.
	sw.Handle(upd(2, 0, 0, 0, 100))
	if r := sw.Handle(upd(0, 0, 0, 0, 1)); r.Pkt == nil || r.Pkt.Vector[0] != 101 {
		t.Fatalf("phase 0 result = %+v, want [101]", r.Pkt)
	}
	// Phase off=1, pool 1: quorum is {0, 1}; worker 2 never shows up,
	// so its pool-0 seen bit is never cleared via the other pool.
	sw.Handle(upd(0, 1, 0, 1, 2))
	if r := sw.Handle(upd(1, 1, 0, 1, 3)); r.Pkt == nil || r.Pkt.Vector[0] != 5 {
		t.Fatalf("phase 1 result = %+v, want [5]", r.Pkt)
	}
	// Phase off=2 reuses pool 0, and worker 2 arrives first. Its stale
	// seen bit must be cleared and the update must open the phase.
	if r := sw.Handle(upd(2, 0, 0, 2, 200)); r.Pkt != nil {
		t.Fatalf("stale seen bit served a spurious reply: %+v", r.Pkt)
	}
	r := sw.Handle(upd(0, 0, 0, 2, 4))
	if r.Pkt == nil || !r.Multicast || r.Pkt.Vector[0] != 204 {
		t.Fatalf("phase 2 result = %+v, want multicast [204]", r.Pkt)
	}
}

// TestQuorumGoneReplyAndSelfCompletion runs a straggling worker
// against a switch whose fast quorum has already finished the whole
// tensor: the phase the straggler wants first was evicted (gone
// reply, self-completion from the local update), the rest are served
// from retained shadow copies. The straggler must finish the tensor
// and stay in stream lockstep.
func TestQuorumGoneReplyAndSelfCompletion(t *testing.T) {
	const n, s, k, d = 3, 1, 1, 3
	sw := newQuorumSwitch(t, n, s, k, 2, LateDrop)
	mkWorker := func(id uint16) *Worker {
		w, err := NewWorker(WorkerConfig{ID: id, Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	w0, w1, w2 := mkWorker(0), mkWorker(1), mkWorker(2)
	u := func(base int32) []int32 { return []int32{base, base + 1, base + 2} }

	// The fast pair streams the whole tensor; worker 2 hasn't started.
	queue := append(w0.Start(u(10)), w1.Start(u(20))...)
	workers := map[uint16]*Worker{0: w0, 1: w1}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		r := sw.Handle(p)
		if r.Pkt == nil {
			continue
		}
		if r.Multicast {
			for _, wk := range workers {
				if next, _ := wk.HandleResult(r.Pkt); next != nil {
					queue = append(queue, next)
				}
			}
		} else if next, _ := workers[r.Pkt.WorkerID].HandleResult(r.Pkt); next != nil {
			queue = append(queue, next)
		}
	}
	if w0.Busy() || w1.Busy() {
		t.Fatal("fast quorum did not finish the tensor")
	}
	if got := sw.Stats().QuorumCompletions; got != d {
		t.Fatalf("QuorumCompletions = %d, want %d", got, d)
	}

	// Now the straggler runs. Chunk 0's phase was evicted by chunk 2's
	// reuse of the slot (same pool), so it draws a gone reply; chunks
	// 1 and 2 are still retained on the two pools.
	queue = w2.Start(u(30))
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		r := sw.Handle(p)
		if r.Pkt == nil {
			t.Fatalf("straggler update off=%d drew no reply", p.Off)
		}
		if r.Multicast {
			t.Fatalf("straggler update off=%d completed a phase", p.Off)
		}
		if next, _ := w2.HandleResult(r.Pkt); next != nil {
			queue = append(queue, next)
		}
	}
	if w2.Busy() {
		t.Fatal("straggler did not finish the tensor")
	}
	if got := sw.Stats().GoneReplies; got != 1 {
		t.Errorf("GoneReplies = %d, want 1", got)
	}
	if got := w2.Stats().SelfCompletions; got != 1 {
		t.Errorf("straggler SelfCompletions = %d, want 1", got)
	}
	// Element 0: self-completed from the local update. Elements 1, 2:
	// the retained quorum sums (workers 0 and 1 only).
	want := []int32{30, 11 + 21, 12 + 22}
	for j, v := range want {
		if got := w2.Aggregate()[j]; got != v {
			t.Errorf("straggler aggregate[%d] = %d, want %d", j, got, v)
		}
	}
	// The fast pair holds pure quorum sums throughout.
	for j := 0; j < d; j++ {
		want := int32(10+j) + int32(20+j)
		if got := w0.Aggregate()[j]; got != want {
			t.Errorf("fast aggregate[%d] = %d, want %d", j, got, want)
		}
	}
}

// TestQuorumDisabledWhenMembershipShrinksToQuorum checks the
// elastic-membership interaction: once a reconfiguration shrinks the
// active membership to the quorum size, every remaining worker is
// required again and no slot completes short.
func TestQuorumDisabledWhenMembershipShrinksToQuorum(t *testing.T) {
	sw := newQuorumSwitch(t, 3, 2, 2, 2, LateDrop)
	if !sw.quorumActive() {
		t.Fatal("quorum inactive at full membership")
	}
	if err := sw.Reconfigure([]bool{true, true, false}, 1); err != nil {
		t.Fatal(err)
	}
	if sw.quorumActive() {
		t.Fatal("quorum still active with membership == quorum")
	}
	// Both survivors are needed now.
	if r := sw.Handle(packet.NewUpdate(0, 1, 0, 0, 0, []int32{1, 2})); r.Pkt != nil {
		t.Fatal("slot completed with one of two survivors")
	}
	r := sw.Handle(packet.NewUpdate(1, 1, 0, 0, 0, []int32{10, 20}))
	if r.Pkt == nil || !r.Multicast || r.Pkt.Vector[0] != 11 {
		t.Fatalf("survivor pair result = %+v, want [11 22]", r.Pkt)
	}
	if got := sw.Stats().QuorumCompletions; got != 0 {
		t.Errorf("QuorumCompletions = %d, want 0 after shrink", got)
	}
}

// TestQuorumStaleSeenBitDoesNotWedgeOpenPhase: a seen bit lingering
// from a quorum completion must not misclassify its owner's genuine
// contribution to the next phase as a retransmission when a peer
// opened that phase first — the idle-slot stale-bit guard cannot
// reach the bit once the phase is open. Before the phase-open roll
// reset this silently dropped the update and wedged the slot below
// the quorum (found by the failover chaos suite).
func TestQuorumStaleSeenBitDoesNotWedgeOpenPhase(t *testing.T) {
	sw := newQuorumSwitch(t, 3, 2, 2, 2, LateDrop)
	// Phase one at off 0 on (ver 0, slot 0): workers 0 and 1 complete
	// at quorum, leaving both seen bits set on the retained slot.
	sw.Handle(upd(0, 0, 0, 0, 1, 2))
	if r := sw.Handle(upd(1, 0, 0, 0, 10, 20)); r.Pkt == nil {
		t.Fatal("no completion at quorum")
	}
	// The same (ver, slot) reopens at off 8. Worker 1 opens the new
	// phase first (its own stale bit clears through the idle guard)...
	if r := sw.Handle(upd(1, 0, 0, 8, 30, 40)); r.Pkt != nil {
		t.Fatalf("unexpected reply opening the new phase: %+v", r.Pkt)
	}
	// ...and worker 0's genuine contribution must then complete the
	// quorum, not be dropped as a retransmission on its stale bit.
	r := sw.Handle(upd(0, 0, 0, 8, 3, 4))
	if r.Pkt == nil || !r.Multicast {
		t.Fatalf("worker 0 wedged on its stale seen bit: %+v", r)
	}
	if r.Pkt.Vector[0] != 33 || r.Pkt.Vector[1] != 44 {
		t.Fatalf("aggregate = %v, want [33 44]", r.Pkt.Vector)
	}
	if got := sw.Stats().IgnoredDuplicates; got != 0 {
		t.Errorf("IgnoredDuplicates = %d, want 0", got)
	}
}
