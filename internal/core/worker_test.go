package core

import (
	"testing"

	"switchml/internal/packet"
)

func newTestWorker(t *testing.T, id uint16, n, s, k int) *Worker {
	t.Helper()
	w, err := NewWorker(WorkerConfig{ID: id, Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorkerConfigValidation(t *testing.T) {
	bad := []WorkerConfig{
		{ID: 0, Workers: 0, PoolSize: 1, SlotElems: 1},
		{ID: 2, Workers: 2, PoolSize: 1, SlotElems: 1},
		{ID: 0, Workers: 1, PoolSize: 0, SlotElems: 1},
		{ID: 0, Workers: 1, PoolSize: 1, SlotElems: 0},
	}
	for _, cfg := range bad {
		if _, err := NewWorker(cfg); err == nil {
			t.Errorf("NewWorker(%+v) succeeded, want error", cfg)
		}
	}
}

func TestWorkerInitialWindow(t *testing.T) {
	// Algorithm 4 lines 1-8: s initial packets covering offsets
	// 0, k, 2k, ...
	w := newTestWorker(t, 0, 2, 4, 2)
	u := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	pkts := w.Start(u)
	if len(pkts) != 4 {
		t.Fatalf("initial window = %d packets, want 4", len(pkts))
	}
	for i, p := range pkts {
		if p.Idx != uint32(i) || p.Off != uint64(2*i) || p.Ver != 0 {
			t.Errorf("packet %d header = %v", i, p)
		}
		if p.Vector[0] != int32(2*i) || p.Vector[1] != int32(2*i+1) {
			t.Errorf("packet %d vector = %v", i, p.Vector)
		}
	}
	if w.PendingCount() != 4 {
		t.Errorf("PendingCount = %d, want 4", w.PendingCount())
	}
}

func TestWorkerSmallTensorWindow(t *testing.T) {
	// A tensor smaller than s*k uses fewer slots.
	w := newTestWorker(t, 0, 2, 8, 4)
	pkts := w.Start([]int32{1, 2, 3, 4, 5})
	if len(pkts) != 2 {
		t.Fatalf("window = %d, want 2", len(pkts))
	}
	if len(pkts[1].Vector) != 1 {
		t.Errorf("final chunk has %d elems, want 1", len(pkts[1].Vector))
	}
}

func TestWorkerStartEmptyTensor(t *testing.T) {
	w := newTestWorker(t, 0, 2, 2, 2)
	if pkts := w.Start(nil); pkts != nil {
		t.Errorf("Start(nil) = %v, want nil", pkts)
	}
	if w.Busy() {
		t.Error("worker busy after empty Start")
	}
}

func TestWorkerStartWhileBusyPanics(t *testing.T) {
	w := newTestWorker(t, 0, 2, 2, 2)
	w.Start([]int32{1, 2, 3, 4})
	defer func() {
		if recover() == nil {
			t.Error("Start while busy did not panic")
		}
	}()
	w.Start([]int32{1})
}

// result fabricates the switch's multicast result for an update.
func result(p *packet.Packet, agg []int32) *packet.Packet {
	r := p.Clone()
	r.Kind = packet.KindResult
	copy(r.Vector, agg)
	return r
}

func TestWorkerSelfClockingAndCompletion(t *testing.T) {
	// Algorithm 4 lines 9-19: a result frees the slot, which is
	// immediately reused for offset off + k*s with flipped version.
	w := newTestWorker(t, 0, 1, 2, 2)
	u := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	pkts := w.Start(u)
	if len(pkts) != 2 {
		t.Fatal("window != 2")
	}
	next, done := w.HandleResult(result(pkts[0], []int32{10, 20}))
	if done {
		t.Fatal("done too early")
	}
	if next == nil || next.Idx != 0 || next.Off != 4 || next.Ver != 1 {
		t.Fatalf("follow-up = %v, want idx0 off4 ver1", next)
	}
	if w.Aggregate()[0] != 10 || w.Aggregate()[1] != 20 {
		t.Errorf("aggregate prefix = %v", w.Aggregate()[:2])
	}
	next2, _ := w.HandleResult(result(pkts[1], []int32{30, 40}))
	if next2 == nil || next2.Idx != 1 || next2.Off != 6 || next2.Ver != 1 {
		t.Fatalf("follow-up 2 = %v", next2)
	}
	if n3, done := w.HandleResult(result(next, []int32{50, 60})); n3 != nil || done {
		t.Fatalf("slot 0 exhausted but got next=%v done=%v", n3, done)
	}
	n4, done := w.HandleResult(result(next2, []int32{70, 80}))
	if n4 != nil || !done {
		t.Fatalf("final result: next=%v done=%v, want nil,true", n4, done)
	}
	want := []int32{10, 20, 30, 40, 50, 60, 70, 80}
	for i, v := range w.Aggregate() {
		if v != want[i] {
			t.Errorf("aggregate[%d] = %d, want %d", i, v, want[i])
		}
	}
	if w.Busy() {
		t.Error("still busy after completion")
	}
}

func TestWorkerIgnoresStaleResults(t *testing.T) {
	w := newTestWorker(t, 0, 1, 2, 2)
	pkts := w.Start([]int32{1, 2, 3, 4})
	// Wrong version.
	bad := result(pkts[0], []int32{9, 9})
	bad.Ver = 1
	if n, _ := w.HandleResult(bad); n != nil {
		t.Error("wrong-version result accepted")
	}
	// Wrong offset.
	bad = result(pkts[0], []int32{9, 9})
	bad.Off = 99
	if n, _ := w.HandleResult(bad); n != nil {
		t.Error("wrong-offset result accepted")
	}
	// Wrong job.
	bad = result(pkts[0], []int32{9, 9})
	bad.JobID = 3
	if n, _ := w.HandleResult(bad); n != nil {
		t.Error("wrong-job result accepted")
	}
	// Out-of-range slot.
	bad = result(pkts[0], []int32{9, 9})
	bad.Idx = 40
	if n, _ := w.HandleResult(bad); n != nil {
		t.Error("out-of-range slot accepted")
	}
	// Update kind.
	if n, _ := w.HandleResult(pkts[0]); n != nil {
		t.Error("update kind accepted as result")
	}
	if got := w.Stats().StaleResults; got != 5 {
		t.Errorf("StaleResults = %d, want 5", got)
	}
	// Duplicate of an accepted result: the first is accepted, the
	// second ignored.
	w.HandleResult(result(pkts[0], []int32{1, 1}))
	if n, _ := w.HandleResult(result(pkts[0], []int32{1, 1})); n != nil {
		t.Error("duplicate result accepted twice")
	}
}

func TestWorkerRetransmit(t *testing.T) {
	w := newTestWorker(t, 3, 4, 2, 2)
	pkts := w.Start([]int32{1, 2, 3, 4})
	rt := w.Retransmit(0)
	if rt == nil {
		t.Fatal("Retransmit(0) = nil for pending slot")
	}
	if rt.Idx != pkts[0].Idx || rt.Off != pkts[0].Off || rt.Ver != pkts[0].Ver ||
		rt.WorkerID != 3 || rt.Vector[0] != pkts[0].Vector[0] {
		t.Errorf("retransmission %v differs from original %v", rt, pkts[0])
	}
	if w.Stats().Retransmissions != 1 {
		t.Errorf("Retransmissions = %d", w.Stats().Retransmissions)
	}
	// After the result arrives the slot is no longer pending.
	w.HandleResult(result(pkts[0], []int32{0, 0}))
	if w.Retransmit(0) != nil {
		t.Error("Retransmit after result should return nil")
	}
	if w.Retransmit(99) != nil {
		t.Error("Retransmit out of range should return nil")
	}
}

func TestWorkerVersionAlternatesAcrossTensors(t *testing.T) {
	// The stream property (Appendix B): versions continue alternating
	// across tensor boundaries, and offsets are stream-global.
	w := newTestWorker(t, 0, 1, 1, 2)
	// Tensor 1: 2 chunks -> slot 0 used at ver 0 then ver 1.
	pkts := w.Start([]int32{1, 2, 3, 4})
	n1, _ := w.HandleResult(result(pkts[0], []int32{1, 2}))
	if n1.Ver != 1 {
		t.Fatalf("second chunk ver = %d, want 1", n1.Ver)
	}
	if _, done := w.HandleResult(result(n1, []int32{3, 4})); !done {
		t.Fatal("tensor 1 not done")
	}
	// Tensor 2 must start at ver 0 again (two uses happened) and
	// stream offset 4.
	pkts2 := w.Start([]int32{5, 6})
	if pkts2[0].Ver != 0 || pkts2[0].Off != 4 {
		t.Fatalf("tensor 2 first packet = %v, want ver0 off4", pkts2[0])
	}
	if _, done := w.HandleResult(result(pkts2[0], []int32{5, 6})); !done {
		t.Fatal("tensor 2 not done")
	}
	// Tensor 3: slot 0 has been used 3 times, so ver must be 1.
	pkts3 := w.Start([]int32{7, 8})
	if pkts3[0].Ver != 1 || pkts3[0].Off != 6 {
		t.Fatalf("tensor 3 first packet = %v, want ver1 off6", pkts3[0])
	}
}

func TestWorkerAggregateBufferReuse(t *testing.T) {
	w := newTestWorker(t, 0, 1, 1, 4)
	p1 := w.Start([]int32{1, 2, 3, 4})
	w.HandleResult(result(p1[0], []int32{4, 3, 2, 1}))
	first := &w.Aggregate()[0]
	p2 := w.Start([]int32{5, 6})
	w.HandleResult(result(p2[0], []int32{6, 5}))
	if &w.Aggregate()[0] != first {
		t.Error("aggregate buffer was reallocated for a smaller tensor")
	}
	if len(w.Aggregate()) != 2 {
		t.Errorf("aggregate length = %d, want 2", len(w.Aggregate()))
	}
}

func TestWorkerPendingAccessor(t *testing.T) {
	w := newTestWorker(t, 0, 1, 2, 2)
	if w.Pending(0) || w.Pending(99) {
		t.Error("pending before Start")
	}
	pkts := w.Start([]int32{1, 2, 3, 4})
	if !w.Pending(0) || !w.Pending(1) {
		t.Error("slots not pending after Start")
	}
	w.HandleResult(result(pkts[0], []int32{1, 2}))
	if w.Pending(0) {
		t.Error("slot 0 still pending after final result")
	}
}

func TestWorkerResumeAtCompletedTensorBoundary(t *testing.T) {
	// A tensor whose final chunk is short (5 elements over k=2 → 3
	// chunks of 2, 2, 1). After it completes, a recovery frontier at
	// the tensor's exact end must re-open nothing: floor division of
	// the end offset would land inside the short final chunk and
	// spuriously re-open it, leaving the worker "busy" at the next
	// Start (the failover ladder resumes at tensor boundaries).
	w := newTestWorker(t, 0, 1, 4, 2)
	u := []int32{1, 2, 3, 4, 5}
	for _, p := range w.Start(u) {
		w.HandleResult(result(p, p.Vector))
	}
	if w.Busy() {
		t.Fatal("tensor did not complete")
	}
	pkts, err := w.ResumeAt(3, w.FrontierOff())
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 0 {
		t.Fatalf("boundary resume re-opened %d packets, want 0", len(pkts))
	}
	if w.Busy() {
		t.Fatal("boundary resume left the worker busy")
	}
	// The generation must still have been installed.
	if got := w.Start([]int32{9, 9}); got[0].JobID != 3 {
		t.Fatalf("post-resume update carries generation %d, want 3", got[0].JobID)
	}
}
