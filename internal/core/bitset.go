package core

// bitset tracks which workers have contributed to a slot, the "seen"
// bitmap of Algorithm 3. It supports any worker count (the paper's
// deployment caps at 64-256 ports, but the protocol does not).
type bitset []uint64

func newBitset(n int) bitset {
	return make(bitset, (n+63)/64)
}

func (b bitset) get(i int) bool {
	return b[i/64]&(1<<(i%64)) != 0
}

func (b bitset) set(i int) {
	b[i/64] |= 1 << (i % 64)
}

func (b bitset) clear(i int) {
	b[i/64] &^= 1 << (i % 64)
}

func (b bitset) clearAll() {
	for i := range b {
		b[i] = 0
	}
}
