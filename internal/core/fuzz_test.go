package core

import (
	"math/rand"
	"testing"

	"switchml/internal/packet"
)

// TestSwitchSurvivesGarbage feeds the dataplane a storm of random
// packets — arbitrary kinds, ids, versions, offsets and vector
// lengths — and requires that it never panics and that a clean
// aggregation still succeeds afterwards on untouched state. A
// dataplane must survive any bit pattern a NIC can deliver.
func TestSwitchSurvivesGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	sw, err := NewSwitch(SwitchConfig{Workers: 4, PoolSize: 8, SlotElems: 16, LossRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		vecLen := rng.Intn(40)
		vec := make([]int32, vecLen)
		for j := range vec {
			vec[j] = rng.Int31() - 1<<30
		}
		p := &packet.Packet{
			Kind:     packet.Kind(rng.Intn(5)),
			WorkerID: uint16(rng.Intn(10)),
			JobID:    uint16(rng.Intn(3)),
			Ver:      uint8(rng.Intn(4)),
			Idx:      uint32(rng.Intn(12)),
			Off:      uint64(rng.Intn(1000)),
			Vector:   vec,
		}
		resp := sw.Handle(p)
		if resp.Pkt != nil && len(resp.Pkt.Vector) == 0 {
			t.Fatal("response with empty vector")
		}
	}
	// Confirm statistics stayed coherent: every packet is accounted
	// exactly once as accepted or rejected.
	st := sw.Stats()
	if st.Updates+st.Rejected != 50000 {
		t.Errorf("accounted %d packets, want 50000", st.Updates+st.Rejected)
	}
	// Note: syntactically valid garbage (in-range wid/idx/ver) is
	// indistinguishable from real traffic, so the protocol does not
	// promise recovery of a poisoned job — the paper assumes worker
	// failures are handled by the ML framework restarting the job
	// (§3.2 footnote). The guarantee tested here is memory safety and
	// bounded, accounted behaviour.
}

// TestWorkerSurvivesGarbageResults feeds a worker random result
// packets; it must ignore everything inconsistent and still complete
// when the true results arrive.
func TestWorkerSurvivesGarbageResults(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	w, err := NewWorker(WorkerConfig{ID: 0, Workers: 2, PoolSize: 4, SlotElems: 8, LossRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	u := make([]int32, 64)
	for i := range u {
		u[i] = int32(i)
	}
	pkts := w.Start(u)
	queue := append([]*packet.Packet(nil), pkts...)
	done := false
	for !done && len(queue) > 0 {
		// Interleave garbage before each real result.
		for g := 0; g < 5; g++ {
			vec := make([]int32, rng.Intn(12))
			garbage := &packet.Packet{
				Kind:     packet.Kind(rng.Intn(4)),
				WorkerID: uint16(rng.Intn(4)),
				JobID:    uint16(rng.Intn(2)),
				Ver:      uint8(rng.Intn(3)),
				Idx:      uint32(rng.Intn(6)),
				Off:      uint64(rng.Intn(100)),
				Vector:   vec,
			}
			if next, fin := w.HandleResult(garbage); next != nil || fin {
				// Only a perfectly matching forgery could do this;
				// the random space makes it effectively impossible.
				t.Fatalf("garbage advanced the protocol: %v", garbage)
			}
		}
		p := queue[0]
		queue = queue[1:]
		r := p.Clone()
		r.Kind = packet.KindResult
		for i := range r.Vector {
			r.Vector[i] *= 2
		}
		var next *packet.Packet
		next, done = w.HandleResult(r)
		if next != nil {
			queue = append(queue, next)
		}
	}
	if !done {
		t.Fatal("worker did not complete")
	}
	for i, v := range w.Aggregate() {
		if v != 2*int32(i) {
			t.Fatalf("aggregate[%d] = %d, want %d", i, v, 2*i)
		}
	}
}
