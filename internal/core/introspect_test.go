package core

import (
	"testing"

	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// feed sends one update for worker w at (ver, idx, off).
func feed(t *testing.T, sw *Switch, w, ver, idx int, off uint64, vec []int32) Response {
	t.Helper()
	p := packet.NewUpdate(uint16(w), sw.JobID(), uint8(ver), uint32(idx), off, vec)
	return sw.Handle(p)
}

// TestPoolStateIntrospection checks the deep-state document against a
// hand-built pool: one slot mid-aggregation, one completed and
// retained, the rest idle.
func TestPoolStateIntrospection(t *testing.T) {
	const n = 3
	sw, err := NewSwitch(SwitchConfig{Workers: n, PoolSize: 4, SlotElems: 8, LossRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	vec := []int32{1, 2, 3}
	// Slot 0: two of three contributions — busy.
	feed(t, sw, 0, 0, 0, 0, vec)
	feed(t, sw, 1, 0, 0, 0, vec)
	// Slot 1: all three — complete, retained for shadow reads.
	feed(t, sw, 0, 0, 1, 8, vec)
	feed(t, sw, 1, 0, 1, 8, vec)
	if resp := feed(t, sw, 2, 0, 1, 8, vec); resp.Pkt == nil || !resp.Multicast {
		t.Fatal("slot 1 did not complete")
	}

	ps := sw.PoolState(true)
	if ps.Workers != n || ps.Required != n || ps.PoolSize != 4 || ps.Versions != 2 {
		t.Errorf("header = %+v", ps)
	}
	if ps.Busy[0] != 1 || ps.Retained[0] != 1 {
		t.Errorf("busy/retained v0 = %d/%d, want 1/1", ps.Busy[0], ps.Retained[0])
	}
	if ps.Busy[1] != 0 || ps.Retained[1] != 0 {
		t.Errorf("busy/retained v1 = %d/%d, want 0/0", ps.Busy[1], ps.Retained[1])
	}
	if want := 1.0 / 8.0; ps.Occupancy != want {
		t.Errorf("occupancy = %v, want %v", ps.Occupancy, want)
	}
	if len(ps.Slots) != 8 {
		t.Fatalf("slots = %d, want 8 (4 x 2 versions)", len(ps.Slots))
	}
	var s0, s1 SlotState
	for _, st := range ps.Slots {
		if st.Ver == 0 && st.Idx == 0 {
			s0 = st
		}
		if st.Ver == 0 && st.Idx == 1 {
			s1 = st
		}
	}
	if s0.Count != 2 || s0.SeenCount != 2 || s0.Seen != 0b011 || s0.Off != 0 {
		t.Errorf("slot 0 = %+v, want count 2 seen {0,1}", s0)
	}
	if s1.Count != 0 || s1.SeenCount != 3 || s1.Off != 8 || s1.Elems != 3 {
		t.Errorf("slot 1 = %+v, want retained at off 8", s1)
	}
	// Straggler attribution: worker 2 closed the only completion.
	if la := ps.LastArrivals; la[0] != 0 || la[1] != 0 || la[2] != 1 {
		t.Errorf("last arrivals = %v, want [0 0 1]", la)
	}
	if slim := sw.PoolState(false); slim.Slots != nil {
		t.Error("withSlots=false still dumped slots")
	}
}

// TestShardedPoolState checks the locked variant sees the same pool
// and stays safe under concurrent ingress (exercised further by the
// race-mode chaos tests).
func TestShardedPoolState(t *testing.T) {
	const n = 2
	ss, err := NewShardedSwitch(SwitchConfig{Workers: n, PoolSize: 4, SlotElems: 8, LossRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	vec := []int32{5}
	p := packet.NewUpdate(0, 0, 0, 2, 0, vec)
	ss.Handle(p)
	ps := ss.PoolState(true)
	if ps.Busy[0] != 1 {
		t.Errorf("busy = %v, want one v0 slot", ps.Busy)
	}
	if len(ps.Slots) != 8 {
		t.Fatalf("slots = %d, want 8", len(ps.Slots))
	}
	for _, st := range ps.Slots {
		if st.Ver == 0 && st.Idx == 2 && (st.Count != 1 || st.SeenCount != 1) {
			t.Errorf("slot 2 = %+v, want one contribution", st)
		}
	}
	if la := ss.LastArrivals(); len(la) != n {
		t.Errorf("last arrivals = %v, want len %d", la, n)
	}
}

// TestSlotFillLatency drives a clocked switch and checks the
// fill-latency histogram observes open-to-completion time.
func TestSlotFillLatency(t *testing.T) {
	const n = 2
	reg := telemetry.NewRegistry()
	now := int64(0)
	sw, err := NewSwitch(SwitchConfig{
		Workers: n, PoolSize: 2, SlotElems: 8, LossRecovery: true,
		JobID: 9, Metrics: reg, Now: func() int64 { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	vec := []int32{1}
	now = 1000
	feed(t, sw, 0, 0, 0, 0, vec) // phase opens at t=1000
	now = 5000
	feed(t, sw, 1, 0, 0, 0, vec) // completes at t=5000
	h, ok := reg.Snapshot().Histograms[`switch_slot_fill_ns{job="9"}`]
	if !ok {
		t.Fatal("switch_slot_fill_ns not registered")
	}
	if h.Count != 1 || h.Sum != 4000 {
		t.Errorf("fill histogram count/sum = %d/%v, want 1/4000", h.Count, h.Sum)
	}
	// Straggler counters share the registry.
	s := reg.Snapshot()
	if v := s.Counters[`switch_last_contributor_total{job="9",worker="1"}`]; v != 1 {
		t.Errorf("last contributor worker 1 = %d, want 1", v)
	}
}

// TestInstrumentedIngressZeroAlloc pins the new sampling points: with
// full instrumentation armed — registry-backed counters, a clock for
// the fill histogram, straggler attribution — steady-state ingress
// still allocates nothing.
func TestInstrumentedIngressZeroAlloc(t *testing.T) {
	const n = 4
	reg := telemetry.NewRegistry()
	now := int64(0)
	sw, err := NewSwitch(SwitchConfig{
		Workers: n, PoolSize: 8, SlotElems: 32, LossRecovery: true,
		Metrics: reg, Now: func() int64 { now += 17; return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]int32, 32)
	pkts := make([]*packet.Packet, n)
	for w := range pkts {
		pkts[w] = packet.NewUpdate(uint16(w), 0, 0, 0, 0, vec)
	}
	var out packet.Packet
	round := 0
	step := func() {
		for w := 0; w < n; w++ {
			p := pkts[w]
			p.Ver = uint8(round % 2)
			p.Off = uint64(round * 32)
			sw.HandleInto(p, &out)
		}
		round++
	}
	step() // warm out.Vector
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Errorf("instrumented ingress allocates %.2f/op, want 0", allocs)
	}
	if sw.Stats().Completions == 0 {
		t.Fatal("no completions — the instrumentation never fired")
	}
}
