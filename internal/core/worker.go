package core

import (
	"fmt"

	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// WorkerConfig describes one worker's view of the aggregation job.
type WorkerConfig struct {
	// ID is this worker's id in [0, Workers).
	ID uint16
	// Workers is n, the job's worker count.
	Workers int
	// PoolSize is s, the number of aggregator slots; it bounds the
	// worker's in-flight window (§3.6).
	PoolSize int
	// SlotElems is k, the elements per packet.
	SlotElems int
	// JobID is stamped on every packet.
	JobID uint16
	// LossRecovery must match the switch's setting; when false the
	// worker always sends version 0 (Algorithm 2).
	LossRecovery bool
	// Metrics optionally registers the worker's counters in a shared
	// telemetry registry, labeled worker="<ID>"; nil keeps standalone
	// counters. Either way the counters are atomic, so Stats() may be
	// called concurrently with protocol handling.
	Metrics *telemetry.Registry
}

func (c *WorkerConfig) validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("core: worker count must be positive, got %d", c.Workers)
	}
	if int(c.ID) >= c.Workers {
		return fmt.Errorf("core: worker id %d out of range [0,%d)", c.ID, c.Workers)
	}
	if c.PoolSize <= 0 {
		return fmt.Errorf("core: pool size must be positive, got %d", c.PoolSize)
	}
	if c.SlotElems <= 0 {
		return fmt.Errorf("core: slot elements must be positive, got %d", c.SlotElems)
	}
	return nil
}

// pendingSlot tracks one in-flight aggregation on a worker.
type pendingSlot struct {
	active bool
	// off is the stream offset of the in-flight chunk.
	off uint64
	// elems is the in-flight chunk length.
	elems int
	// ver is the pool version the chunk was sent with.
	ver uint8
}

// workerCounters are the worker's live atomic counters; WorkerStats
// is their snapshot view.
type workerCounters struct {
	sent, retransmissions, results, staleResults *telemetry.Counter
	selfCompletions                              *telemetry.Counter
}

// newWorkerCounters binds the counters into reg when non-nil (labeled
// by worker id) and allocates standalone ones otherwise.
func newWorkerCounters(reg *telemetry.Registry, id uint16) workerCounters {
	if reg == nil {
		return workerCounters{
			sent: &telemetry.Counter{}, retransmissions: &telemetry.Counter{},
			results: &telemetry.Counter{}, staleResults: &telemetry.Counter{},
			selfCompletions: &telemetry.Counter{},
		}
	}
	label := []string{"worker", fmt.Sprintf("%d", id)}
	return workerCounters{
		sent:            reg.Counter("worker_sent_total", label...),
		retransmissions: reg.Counter("worker_retransmissions_total", label...),
		results:         reg.Counter("worker_results_total", label...),
		staleResults:    reg.Counter("worker_stale_results_total", label...),
		selfCompletions: reg.Counter("worker_self_completions_total", label...),
	}
}

// WorkerStats counts protocol events on a worker.
type WorkerStats struct {
	// Sent counts update packets produced (excluding retransmissions).
	Sent uint64
	// Retransmissions counts packets re-produced by Retransmit.
	Retransmissions uint64
	// Results counts accepted result packets.
	Results uint64
	// StaleResults counts ignored results (duplicates from a multicast
	// racing a unicast retransmission, or leftovers from an earlier
	// tensor).
	StaleResults uint64
	// SelfCompletions counts chunks completed from the local update
	// after the switch answered with an empty "gone" result — quorum
	// mode evicted the phase before this worker's contribution landed.
	SelfCompletions uint64
}

// Worker is the end-host aggregation state machine of Algorithms 2
// and 4. One Worker aggregates a stream of tensors; per the paper's
// implementation (Appendix B), consecutive tensors form one
// continuous stream so pool-version alternation carries across tensor
// boundaries — resetting versions between tensors would break the
// shadow-copy invariant.
//
// The Worker performs no I/O and keeps no timers. Hosts call Start to
// get the initial window, feed results to HandleResult (sending the
// returned follow-up packet, if any), and call Retransmit for slots
// whose timers expire.
type Worker struct {
	cfg WorkerConfig
	// u is the tensor being aggregated (the local model update).
	u []int32
	// a receives the aggregated values.
	a []int32
	// base is the stream offset of u[0]; offsets carried in packets
	// are stream-global so stale packets can never alias.
	base uint64
	// remaining counts elements of a not yet received.
	remaining int
	// pend tracks the in-flight chunk per slot.
	pend []pendingSlot
	// ver is the next pool version to use per slot, persisting across
	// tensors.
	ver []uint8
	// chunkDone marks which chunks of the current tensor have their
	// aggregate; the failure-recovery resume path re-sends from the
	// first gap.
	chunkDone []bool
	ctr       workerCounters
}

// NewWorker returns a worker ready for its first Start call.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Worker{
		cfg:  cfg,
		pend: make([]pendingSlot, cfg.PoolSize),
		ver:  make([]uint8, cfg.PoolSize),
		ctr:  newWorkerCounters(cfg.Metrics, cfg.ID),
	}, nil
}

// Config returns the worker's configuration.
func (w *Worker) Config() WorkerConfig { return w.cfg }

// Stats returns a snapshot of the worker's counters. The counters
// are atomic, so the snapshot is safe to take from another goroutine
// while the worker handles packets.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		Sent:            w.ctr.sent.Value(),
		Retransmissions: w.ctr.retransmissions.Value(),
		Results:         w.ctr.results.Value(),
		StaleResults:    w.ctr.staleResults.Value(),
		SelfCompletions: w.ctr.selfCompletions.Value(),
	}
}

// Busy reports whether an aggregation is in progress.
func (w *Worker) Busy() bool { return w.remaining > 0 }

// Aggregate returns the output buffer of the last completed (or
// in-progress) aggregation.
func (w *Worker) Aggregate() []int32 { return w.a }

// Start begins aggregating the tensor u and returns the initial
// window of update packets (Algorithm 4 lines 1-8): one packet per
// slot, or fewer if the tensor is smaller than s·k elements. The
// caller must arm a retransmission timer per returned packet. Start
// panics if an aggregation is already in progress, which indicates a
// host sequencing bug.
func (w *Worker) Start(u []int32) []*packet.Packet {
	if w.remaining > 0 {
		panic("core: Start called while an aggregation is in progress")
	}
	if len(u) == 0 {
		return nil
	}
	w.u = u
	if cap(w.a) >= len(u) {
		w.a = w.a[:len(u)]
	} else {
		w.a = make([]int32, len(u))
	}
	w.remaining = len(u)

	window := w.cfg.PoolSize
	chunks := (len(u) + w.cfg.SlotElems - 1) / w.cfg.SlotElems
	if chunks < window {
		window = chunks
	}
	if cap(w.chunkDone) >= chunks {
		w.chunkDone = w.chunkDone[:chunks]
		for i := range w.chunkDone {
			w.chunkDone[i] = false
		}
	} else {
		w.chunkDone = make([]bool, chunks)
	}
	pkts := make([]*packet.Packet, 0, window)
	for i := 0; i < window; i++ {
		// Slot i deterministically owns chunks i, i+s, i+2s, ... — the
		// implicit coordination of §3.4: every worker maps the same
		// piece of the update to the same slot with no explicit
		// agreement.
		pkts = append(pkts, w.sendChunk(uint32(i), i*w.cfg.SlotElems))
	}
	return pkts
}

// sendChunk builds the update packet for the chunk at local element
// offset local, assigns it to slot idx, and records it as pending.
func (w *Worker) sendChunk(idx uint32, local int) *packet.Packet {
	elems := len(w.u) - local
	if elems > w.cfg.SlotElems {
		elems = w.cfg.SlotElems
	}

	ver := uint8(0)
	if w.cfg.LossRecovery {
		ver = w.ver[idx]
		w.ver[idx] = 1 - ver
	}
	w.pend[idx] = pendingSlot{active: true, off: w.base + uint64(local), elems: elems, ver: ver}
	w.ctr.sent.Inc()
	// Packets come from the shared pool: hosts that transmit
	// synchronously (the UDP client) return them after marshalling,
	// making the steady-state send path allocation-free. Hosts that
	// keep packets in flight (the simulator) simply never return them.
	p := packet.GetPacket()
	p.SetUpdate(w.cfg.ID, w.cfg.JobID, ver, idx, w.base+uint64(local), w.u[local:local+elems])
	return p
}

// HandleResult consumes a result packet from the switch (Algorithm 4
// lines 9-19). It returns the follow-up update packet reusing the
// freed slot (nil when the tensor has no unsent chunks left) and
// whether the whole aggregation just completed. Stale or alien
// results are ignored with (nil, false).
func (w *Worker) HandleResult(p *packet.Packet) (next *packet.Packet, done bool) {
	if p.Kind != packet.KindResult && p.Kind != packet.KindResultUnicast {
		w.ctr.staleResults.Inc()
		return nil, false
	}
	if p.JobID != w.cfg.JobID || int(p.Idx) >= w.cfg.PoolSize {
		w.ctr.staleResults.Inc()
		return nil, false
	}
	pd := &w.pend[p.Idx]
	if !pd.active || pd.off != p.Off || pd.ver != p.Ver {
		// Duplicate (multicast racing a unicast reply), a leftover
		// from a previous tensor, or garbage.
		w.ctr.staleResults.Inc()
		return nil, false
	}
	local := int(p.Off - w.base)
	switch {
	case len(p.Vector) == 0:
		// An empty result is the switch's "gone" reply (quorum mode):
		// the phase completed and was evicted without this worker's
		// contribution, so no aggregate exists for it to read. Complete
		// the chunk from the local update — the rest of the membership
		// already excluded this gradient — and keep streaming. Updates
		// always carry at least one element, so a genuine aggregate can
		// never be empty.
		copy(w.a[local:local+pd.elems], w.u[local:local+pd.elems])
		w.ctr.selfCompletions.Inc()
	case len(p.Vector) == pd.elems:
		copy(w.a[local:local+pd.elems], p.Vector)
	default:
		w.ctr.staleResults.Inc()
		return nil, false
	}
	w.ctr.results.Inc()
	w.remaining -= pd.elems
	w.chunkDone[local/w.cfg.SlotElems] = true
	pd.active = false

	// Algorithm 4 line 13: the slot's next chunk is k·s elements
	// further into the stream. Chunks already aggregated (possible
	// after a failure-recovery resume re-opened an interleaved window)
	// are skipped.
	nextLocal := local + w.cfg.SlotElems*w.cfg.PoolSize
	for nextLocal < len(w.u) && w.chunkDone[nextLocal/w.cfg.SlotElems] {
		nextLocal += w.cfg.SlotElems * w.cfg.PoolSize
	}
	if nextLocal < len(w.u) {
		next = w.sendChunk(p.Idx, nextLocal)
	}
	if w.remaining == 0 {
		// Stream advances only once the tensor is fully aggregated.
		w.base += uint64(len(w.u))
		return next, true
	}
	return next, false
}

// Retransmit rebuilds the in-flight packet for a slot whose
// retransmission timer expired (Algorithm 4 lines 20-23). It returns
// nil if the slot has no in-flight chunk (the result arrived between
// the timeout firing and this call).
func (w *Worker) Retransmit(idx uint32) *packet.Packet {
	if int(idx) >= len(w.pend) {
		return nil
	}
	pd := &w.pend[idx]
	if !pd.active {
		return nil
	}
	w.ctr.retransmissions.Inc()
	local := int(pd.off - w.base)
	p := packet.GetPacket()
	p.SetUpdate(w.cfg.ID, w.cfg.JobID, pd.ver, idx, pd.off, w.u[local:local+pd.elems])
	return p
}

// ChunkCount returns the number of chunks in the current (or last
// completed) tensor.
func (w *Worker) ChunkCount() int { return len(w.chunkDone) }

// FirstMissingChunk returns the index of the first chunk of the
// current tensor whose aggregate has not been received — the worker's
// progress frontier, reported to the failure controller during
// recovery. It equals ChunkCount when the tensor is complete.
func (w *Worker) FirstMissingChunk() int {
	for c, done := range w.chunkDone {
		if !done {
			return c
		}
	}
	return len(w.chunkDone)
}

// JobID returns the job generation currently stamped on packets.
func (w *Worker) JobID() uint16 { return w.cfg.JobID }

// SetJobID installs a new job generation for subsequent packets,
// without touching tensor state; used when the controller bumps the
// epoch between tensors (Resume covers the mid-tensor case).
func (w *Worker) SetJobID(id uint16) { w.cfg.JobID = id }

// FrontierOff returns the worker's progress frontier as a global
// stream offset: the offset of the first element whose aggregate is
// missing. When the current tensor is complete (or none was started)
// it points at the start of the next tensor. Stream offsets are
// comparable across workers, so the controller takes the minimum of
// the reported frontiers as the global recovery boundary.
func (w *Worker) FrontierOff() uint64 {
	if w.remaining == 0 {
		return w.base
	}
	return w.base + uint64(w.FirstMissingChunk()*w.cfg.SlotElems)
}

// ResumeAt is Resume with the frontier expressed as a global stream
// offset (the form the recovery handshake carries). An offset before
// the current tensor cannot be honored — the data of earlier tensors
// is no longer buffered — and returns an error so the caller can fail
// fast instead of deadlocking the collective.
func (w *Worker) ResumeAt(jobID uint16, off uint64) ([]*packet.Packet, error) {
	if len(w.u) != 0 && w.remaining > 0 && off < w.base {
		return nil, fmt.Errorf("core: recovery frontier %d precedes current tensor at %d; earlier tensors are not buffered", off, w.base)
	}
	base := w.base
	if w.remaining == 0 && len(w.u) != 0 {
		base -= uint64(len(w.u)) // tensor complete: base already advanced
		if off < base {
			return nil, fmt.Errorf("core: recovery frontier %d precedes last tensor at %d; earlier tensors are not buffered", off, base)
		}
		if off >= base+uint64(len(w.u)) {
			// The frontier sits at the completed tensor's end: there is
			// nothing to re-open, only the generation to install. The
			// floor division below must not see this case — a tensor
			// whose final chunk is short would floor the end offset
			// back into that chunk and spuriously re-open it.
			return w.Resume(jobID, len(w.chunkDone)), nil
		}
	}
	return w.Resume(jobID, int((off-base)/uint64(w.cfg.SlotElems))), nil
}

// chunkElems returns the element count of chunk c (the final chunk
// may be short).
func (w *Worker) chunkElems(c int) int {
	elems := len(w.u) - c*w.cfg.SlotElems
	if elems > w.cfg.SlotElems {
		elems = w.cfg.SlotElems
	}
	return elems
}

// Resume re-opens the interrupted tensor from the global recovery
// frontier under a new job generation, after the controller detected a
// failure, reconfigured the membership and drained the switch pool
// (§5.6). Every chunk at or beyond fromChunk is re-aggregated — even
// ones this worker already received — so that all survivors run the
// identical slot schedule and converge to bitwise-identical
// aggregates; chunks before the frontier (completed on every worker)
// are kept. All in-flight state is discarded (the pool it referred to
// is gone) and the per-slot pool versions restart at zero, matching
// the freshly reset switch. The returned packets are the new initial
// window; the caller arms retransmission timers as after Start.
//
// Calling Resume with no tensor ever started, or with fromChunk past
// the end, installs the new job generation and returns nil. A tensor
// that had already completed locally is re-opened, and the host must
// be prepared for its completion callback to fire a second time.
func (w *Worker) Resume(jobID uint16, fromChunk int) []*packet.Packet {
	w.cfg.JobID = jobID
	for i := range w.pend {
		w.pend[i].active = false
		w.ver[i] = 0
	}
	chunks := len(w.chunkDone)
	if len(w.u) == 0 || fromChunk >= chunks {
		return nil
	}
	if fromChunk < 0 {
		fromChunk = 0
	}
	reopened := w.remaining == 0
	if reopened {
		// The stream advanced when the tensor completed locally;
		// rewind it so re-sent chunks carry their original offsets.
		w.base -= uint64(len(w.u))
	}
	for c := fromChunk; c < chunks; c++ {
		w.chunkDone[c] = false
	}
	w.remaining = 0
	for c := 0; c < chunks; c++ {
		if !w.chunkDone[c] {
			w.remaining += w.chunkElems(c)
		}
	}

	window := w.cfg.PoolSize
	if left := chunks - fromChunk; left < window {
		window = left
	}
	pkts := make([]*packet.Packet, 0, window)
	for i := 0; i < window; i++ {
		c := fromChunk + i
		// The chunk→slot mapping is position-invariant (chunk c lives
		// in slot c mod s), so survivors resuming from the same
		// frontier land every chunk in the same slot with the same
		// version, restoring the implicit coordination of §3.4.
		pkts = append(pkts, w.sendChunk(uint32(c%w.cfg.PoolSize), c*w.cfg.SlotElems))
	}
	return pkts
}

// JoinAt initializes a joining worker's stream cursor at the global
// frontier off under the admitting job generation. The elastic-join
// commit wipes the switch pool and resumes every incumbent with
// per-slot versions reset to zero, so the joiner's fresh version
// vector is consistent with the membership it enters. JoinAt panics
// if an aggregation is in progress — a joiner has nothing in flight.
func (w *Worker) JoinAt(jobID uint16, off uint64) {
	if w.remaining > 0 {
		panic("core: JoinAt called while an aggregation is in progress")
	}
	w.cfg.JobID = jobID
	w.base = off
	w.u = nil
	w.a = w.a[:0]
	w.chunkDone = w.chunkDone[:0]
	for i := range w.pend {
		w.pend[i].active = false
		w.ver[i] = 0
	}
}

// Update returns the local update tensor of the current (or last
// completed) aggregation — the raw contribution the degraded path
// re-aggregates by host all-reduce. The slice aliases the caller's
// buffer from Start/StartHosted.
func (w *Worker) Update() []int32 { return w.u }

// TensorBase returns the stream offset of the current (or last
// completed) tensor's first element. Unlike the internal base cursor
// it does not advance on completion, so it names the same boundary on
// every worker regardless of local progress.
func (w *Worker) TensorBase() uint64 {
	if w.remaining == 0 && len(w.u) != 0 {
		return w.base - uint64(len(w.u))
	}
	return w.base
}

// TensorEnd returns the stream offset one past the current (or last
// completed) tensor's final element.
func (w *Worker) TensorEnd() uint64 { return w.TensorBase() + uint64(len(w.u)) }

// StartHosted opens the tensor u for aggregation without producing an
// update window: in degraded mode the sum is computed by host
// all-reduce and delivered through InstallHostAggregate instead of
// switch packets. Keeping the tensor open in the same state machine
// preserves stream offsets and chunk accounting, so a later failback
// hands the switch a consistent frontier. Like Start, it panics if an
// aggregation is already in progress; an empty tensor is a no-op (the
// host completes it immediately, as Start's nil window does).
func (w *Worker) StartHosted(u []int32) {
	if w.remaining > 0 {
		panic("core: StartHosted called while an aggregation is in progress")
	}
	if len(u) == 0 {
		return
	}
	w.u = u
	if cap(w.a) >= len(u) {
		w.a = w.a[:len(u)]
	} else {
		w.a = make([]int32, len(u))
	}
	w.remaining = len(u)
	chunks := (len(u) + w.cfg.SlotElems - 1) / w.cfg.SlotElems
	if cap(w.chunkDone) >= chunks {
		w.chunkDone = w.chunkDone[:chunks]
		for i := range w.chunkDone {
			w.chunkDone[i] = false
		}
	} else {
		w.chunkDone = make([]bool, chunks)
	}
}

// InstallHostAggregate installs the host-computed aggregate for the
// tensor suffix [off, TensorEnd): the barrier-handoff write of the
// degraded path. The offset must be chunk-aligned, at or before this
// worker's progress frontier (so no chunk is left half-aggregated
// between the two fabrics), and vals must cover exactly the suffix —
// anything else is a torn tensor and is rejected. Chunks the switch
// already completed beyond off are overwritten; integer summation is
// order-invariant, so the values are bit-identical. On success the
// tensor is complete and the stream advances exactly as if the switch
// had finished it.
func (w *Worker) InstallHostAggregate(off uint64, vals []int32) error {
	if len(w.u) == 0 {
		if len(vals) == 0 && off == w.base {
			return nil
		}
		return fmt.Errorf("core: no tensor open for host aggregate at offset %d", off)
	}
	base := w.TensorBase()
	local := int64(off) - int64(base)
	if local < 0 || local > int64(len(w.u)) {
		return fmt.Errorf("core: host aggregate offset %d outside tensor [%d,%d)", off, base, base+uint64(len(w.u)))
	}
	if local%int64(w.cfg.SlotElems) != 0 {
		return fmt.Errorf("core: host aggregate offset %d is not chunk-aligned", off)
	}
	if int(local)+len(vals) != len(w.u) {
		return fmt.Errorf("core: host aggregate covers [%d,%d), want the full suffix to %d", off, off+uint64(len(vals)), base+uint64(len(w.u)))
	}
	if w.remaining == 0 {
		// The switch completed the tensor before the handoff; the host
		// sum is bit-identical, so the overwrite is a no-op.
		copy(w.a[local:], vals)
		return nil
	}
	if off > w.FrontierOff() {
		return fmt.Errorf("core: host aggregate frontier %d is past this worker's frontier %d: chunk would be torn between fabrics", off, w.FrontierOff())
	}
	copy(w.a[local:], vals)
	for i := range w.pend {
		w.pend[i].active = false
	}
	for c := int(local) / w.cfg.SlotElems; c < len(w.chunkDone); c++ {
		w.chunkDone[c] = true
	}
	w.remaining = 0
	w.base = base + uint64(len(w.u))
	return nil
}

// Pending reports whether slot idx has an in-flight chunk; hosts use
// it to decide whether to re-arm timers.
func (w *Worker) Pending(idx uint32) bool {
	return int(idx) < len(w.pend) && w.pend[idx].active
}

// PendingCount returns the number of in-flight chunks.
func (w *Worker) PendingCount() int {
	c := 0
	for i := range w.pend {
		if w.pend[i].active {
			c++
		}
	}
	return c
}
