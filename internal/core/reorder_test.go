package core

import (
	"math/rand"
	"testing"

	"switchml/internal/packet"
)

// These tests cover same-worker packet reordering, a hazard the
// paper's protocol does not address (it assumes each worker's packets
// reach the switch in order, which DPDK run-to-completion loops and
// single-path L2 provide). Our switch hardens the count==0 overwrite
// path with a monotonic-offset check so that a stale duplicate
// overtaking later updates cannot hijack a slot.

func TestStaleDuplicateAfterPhaseAdvanceIsDropped(t *testing.T) {
	// Two workers, one slot, k=1. Phases: (v0,off0), (v1,off1),
	// (v0,off2), ...
	sw := newTestSwitch(t, 2, 1, 1, true)
	// Phase 0 completes.
	sw.Handle(upd(0, 0, 0, 0, 1))
	r := sw.Handle(upd(1, 0, 0, 0, 2))
	if r.Pkt == nil {
		t.Fatal("phase 0 did not complete")
	}
	// Phase 1 completes.
	sw.Handle(upd(0, 1, 0, 1, 10))
	r = sw.Handle(upd(1, 1, 0, 1, 20))
	if r.Pkt == nil {
		t.Fatal("phase 1 did not complete")
	}
	// A stale duplicate of worker 0's phase-0 update arrives now
	// (reordered past its phase-1 traffic). Without the hardening it
	// would overwrite slot[0] (count==0, seen cleared) and poison the
	// upcoming phase 2.
	if resp := sw.Handle(upd(0, 0, 0, 0, 1)); resp.Pkt != nil {
		// Off equals slot[0]'s completed aggregation, so the switch
		// may serve the retained result; it must be that result, not
		// a fresh aggregation.
		if resp.Multicast || resp.Pkt.Vector[0] != 3 {
			t.Fatalf("stale duplicate produced %v", resp.Pkt)
		}
	}
	// Phase 2 must aggregate cleanly.
	sw.Handle(upd(0, 0, 0, 2, 100))
	r = sw.Handle(upd(1, 0, 0, 2, 200))
	if r.Pkt == nil || r.Pkt.Vector[0] != 300 {
		t.Fatalf("phase 2 aggregate = %v, want 300", r.Pkt)
	}
}

func TestStaleTwoPhasesOldIsDropped(t *testing.T) {
	// A duplicate two phases old matches neither pool's offset and
	// must be dropped outright.
	sw := newTestSwitch(t, 2, 1, 1, true)
	for phase := 0; phase < 4; phase++ {
		sw.Handle(upd(0, uint8(phase%2), 0, uint64(phase), 1))
		if r := sw.Handle(upd(1, uint8(phase%2), 0, uint64(phase), 1)); r.Pkt == nil {
			t.Fatalf("phase %d did not complete", phase)
		}
	}
	// Pools hold off=2 (ver0, seen bits cleared by phase 3) and off=3
	// (ver1). A stale (ver0, off0) duplicate matches neither pool's
	// offset and its seen bit is clear: it must be dropped, not open
	// a new aggregation.
	if r := sw.Handle(upd(0, 0, 0, 0, 99)); r.Pkt != nil {
		t.Fatalf("four-phase-old duplicate produced %v", r.Pkt)
	}
	if sw.Stats().StaleUpdates != 1 {
		t.Errorf("StaleUpdates = %d, want 1", sw.Stats().StaleUpdates)
	}
	// The slot still works.
	sw.Handle(upd(0, 0, 0, 4, 5))
	if r := sw.Handle(upd(1, 0, 0, 4, 5)); r.Pkt == nil || r.Pkt.Vector[0] != 10 {
		t.Fatalf("post-stale aggregation broken: %v", r.Pkt)
	}
}

func TestE2EWithRandomReordering(t *testing.T) {
	// The lockstep harness with a reordering network: each queued
	// packet may be delayed behind later traffic. Aggregation must
	// remain exact.
	rng := rand.New(rand.NewSource(17))
	h := newHarness(t, 3, 2, 4, true)
	// Swap random adjacent queue entries by dropping-and-requeueing:
	// implemented via the drop hooks re-injecting packets later is
	// complex, so instead shuffle via the harness queue directly
	// before each step using dropUp as a tap.
	// Simpler: run with duplication—every update is delivered twice,
	// the second copy after a delay (modelled by requeueing).
	h.dropUp = func(p *packet.Packet) bool {
		if rng.Float64() < 0.05 {
			// Duplicate: requeue a clone at the tail so it arrives
			// after later packets (reordering + duplication).
			h.queue = append(h.queue, queued{toSwitch: true, pkt: p.Clone()})
		}
		return false
	}
	us := randUpdates(rng, 3, 300)
	checkEqual(t, h.aggregate(us), goldenSum(us))
}
