// Package core implements the SwitchML aggregation protocol: the
// switch-side logic of Algorithms 1 and 3 and the worker-side logic
// of Algorithms 2 and 4, as pure deterministic state machines.
//
// The state machines are transport-agnostic: they consume and produce
// packets without performing I/O or keeping timers. Hosts — the
// discrete-event simulator, the in-process loopback transport, and
// the real UDP transport — drive them and own retransmission timers,
// exactly as the paper keeps "protocol complexity at the end hosts"
// (§3.2).
//
//switchml:deterministic
package core

import (
	"fmt"

	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// SwitchConfig describes one job's aggregation pool on a switch.
type SwitchConfig struct {
	// Workers is n, the number of workers that must contribute to
	// each slot before it completes.
	Workers int
	// PoolSize is s, the number of aggregator slots per pool. With
	// loss recovery enabled the switch holds two pools of this size
	// (the active copy and the shadow copy).
	PoolSize int
	// SlotElems is k, the maximum number of 32-bit elements a slot
	// (and hence a packet) can hold.
	SlotElems int
	// LossRecovery selects Algorithm 3 (shadow copies + seen bitmaps)
	// when true, and the simpler Algorithm 1 (single pool, counter
	// only) when false. Algorithm 1 is only correct on lossless
	// fabrics; it exists for the paper's Infiniband/lossless-RoCE
	// scenario and for ablation.
	LossRecovery bool
	// JobID is stamped on sanity checks of incoming packets.
	JobID uint16
	// Codec converts between wire elements and accumulator values;
	// nil selects the identity (32-bit fixed point on the wire). The
	// float16 mode of §3.7 passes a PackedHalfCodec.
	Codec Codec
	// Metrics optionally registers the switch's counters in a shared
	// telemetry registry, labeled job="<JobID>"; nil keeps standalone
	// counters. Stats() reads the same counters either way, so hosts
	// may snapshot concurrently with packet handling.
	Metrics *telemetry.Registry
	// Tracer observes slot-level protocol events (SlotAggregated,
	// SlotComplete, ShadowRead); nil disables tracing.
	Tracer telemetry.Tracer
	// Now supplies Tracer timestamps in nanoseconds: virtual time
	// under the simulator, wall clock over UDP. nil stamps zero.
	Now func() int64
	// Quorum is the straggler-mitigation knob: when in [1, Workers),
	// a slot completes as soon as this many distinct workers have
	// contributed, instead of the full membership. Late updates from
	// the stragglers are handled per LatePolicy. Zero (or a value at or
	// above the active membership) selects full participation. Quorum
	// requires LossRecovery: Algorithm 1's counter-only slot release
	// cannot tell a late straggler from a new phase.
	Quorum int
	// LatePolicy selects what happens to a straggler's update arriving
	// after its slot completed at quorum.
	LatePolicy LatePolicy
}

// LatePolicy enumerates the quorum late-update policies.
type LatePolicy uint8

const (
	// LateDrop counts and discards late updates; the straggler still
	// receives the retained quorum result, so it keeps pace, but its
	// gradient for that chunk is lost.
	LateDrop LatePolicy = iota
	// LateReconcile folds a late update into the next aggregation
	// phase that opens on the same slot — the straggler's gradient
	// lands one step late instead of being dropped.
	LateReconcile
)

func (c *SwitchConfig) validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("core: switch needs at least 1 worker, got %d", c.Workers)
	}
	if c.PoolSize <= 0 {
		return fmt.Errorf("core: pool size must be positive, got %d", c.PoolSize)
	}
	if c.SlotElems <= 0 {
		return fmt.Errorf("core: slot elements must be positive, got %d", c.SlotElems)
	}
	if c.Quorum < 0 || c.Quorum > c.Workers {
		return fmt.Errorf("core: quorum %d out of range [0, %d]", c.Quorum, c.Workers)
	}
	if c.Quorum > 0 && c.Quorum < c.Workers && !c.LossRecovery {
		return fmt.Errorf("core: quorum needs loss recovery (shadow copies distinguish late stragglers from new phases)")
	}
	return nil
}

// slot is one aggregator: a vector accumulator plus completion
// tracking, in one version of the pool.
type slot struct {
	vector []int32
	// elems is the length of the aggregation in progress; the final
	// chunk of a tensor may be shorter than k.
	elems int
	// off is the stream offset of the aggregation in progress, kept
	// so retransmitted results carry the right offset.
	off int64
	// count counts contributions modulo n, exactly as Algorithm 3
	// line 8: count==0 right after an increment means "complete".
	count int
	// seen marks which workers contributed (Algorithm 3's bitmap).
	seen bitset
	// start stamps when the current aggregation phase opened (the
	// first contribution's timestamp), feeding the slot-fill latency
	// histogram; zero when no clock is configured.
	start int64
	// carry holds late straggler updates awaiting reconciliation into
	// the next phase that opens on this slot; nil unless the switch
	// runs quorum mode with LateReconcile.
	carry []int32
	// carried marks that carry holds a pending late update; lateSeen
	// marks which stragglers already reconciled into it, so a
	// retransmitted late update is not double-counted.
	carried  bool
	lateSeen bitset
}

// switchCounters are the switch's live counters, atomic so hosts may
// snapshot them while the dataplane runs; SwitchStats is their
// snapshot view.
type switchCounters struct {
	updates, completions, ignoredDuplicates *telemetry.Counter
	resultRetransmissions, staleUpdates     *telemetry.Counter
	rejected                                *telemetry.Counter
	// quorumCompletions counts slots completed before the full
	// membership contributed; lateDropped/lateReconciled count the
	// stragglers' subsequent updates per policy, and goneReplies the
	// empty unicast results that told a straggler its phase's retained
	// value was already evicted.
	quorumCompletions, lateDropped  *telemetry.Counter
	lateReconciled, goneReplies     *telemetry.Counter
	// slotFill observes phase-open-to-completion latency per slot in
	// nanoseconds (only fed when the switch has a clock).
	slotFill *telemetry.Histogram
	// lastArrival[w] counts completions where worker w contributed
	// last — the straggler attribution of §7's tail analysis: the
	// worker whose packet closes the slot is the one everyone waited
	// for.
	lastArrival []*telemetry.Counter
}

// newSwitchCounters binds the counters into reg when non-nil (labeled
// by job id) and allocates standalone ones otherwise.
func newSwitchCounters(reg *telemetry.Registry, job uint16, workers int) switchCounters {
	ctr := switchCounters{lastArrival: make([]*telemetry.Counter, workers)}
	if reg == nil {
		ctr.updates, ctr.completions = &telemetry.Counter{}, &telemetry.Counter{}
		ctr.ignoredDuplicates, ctr.resultRetransmissions = &telemetry.Counter{}, &telemetry.Counter{}
		ctr.staleUpdates, ctr.rejected = &telemetry.Counter{}, &telemetry.Counter{}
		ctr.quorumCompletions, ctr.lateDropped = &telemetry.Counter{}, &telemetry.Counter{}
		ctr.lateReconciled, ctr.goneReplies = &telemetry.Counter{}, &telemetry.Counter{}
		ctr.slotFill = telemetry.NewHistogram(telemetry.LatencyBuckets)
		for w := range ctr.lastArrival {
			ctr.lastArrival[w] = &telemetry.Counter{}
		}
		return ctr
	}
	label := []string{"job", fmt.Sprintf("%d", job)}
	ctr.updates = reg.Counter("switch_updates_total", label...)
	ctr.completions = reg.Counter("switch_completions_total", label...)
	ctr.ignoredDuplicates = reg.Counter("switch_ignored_duplicates_total", label...)
	ctr.resultRetransmissions = reg.Counter("switch_result_retransmissions_total", label...)
	ctr.staleUpdates = reg.Counter("switch_stale_updates_total", label...)
	ctr.rejected = reg.Counter("switch_rejected_total", label...)
	ctr.quorumCompletions = reg.Counter("switch_quorum_completions_total", label...)
	ctr.lateDropped = reg.Counter("switch_quorum_late_dropped_total", label...)
	ctr.lateReconciled = reg.Counter("switch_quorum_late_reconciled_total", label...)
	ctr.goneReplies = reg.Counter("switch_quorum_gone_replies_total", label...)
	ctr.slotFill = reg.Histogram("switch_slot_fill_ns", telemetry.LatencyBuckets, label...)
	for w := range ctr.lastArrival {
		ctr.lastArrival[w] = reg.Counter("switch_last_contributor_total",
			"job", label[1], "worker", fmt.Sprintf("%d", w))
	}
	return ctr
}

// SwitchStats counts protocol events on the switch.
type SwitchStats struct {
	// Updates is the number of update packets processed.
	Updates uint64
	// Completions is the number of slot aggregations finished (each
	// produces one multicast result).
	Completions uint64
	// IgnoredDuplicates counts retransmitted updates for slots still
	// aggregating (seen bit already set, Algorithm 3 line 23).
	IgnoredDuplicates uint64
	// ResultRetransmissions counts unicast result replies to
	// retransmitted updates for already-complete slots (line 21).
	ResultRetransmissions uint64
	// StaleUpdates counts old-phase packets that overtook a worker's
	// later updates and were dropped to protect the slot (a hardening
	// beyond the paper, which assumes per-worker FIFO delivery).
	StaleUpdates uint64
	// Rejected counts malformed packets dropped by sanity checks.
	Rejected uint64
	// QuorumCompletions counts slots completed at the quorum threshold
	// before the full membership contributed.
	QuorumCompletions uint64
	// LateDropped / LateReconciled count straggler updates arriving
	// after a quorum completion, per the configured LatePolicy.
	LateDropped    uint64
	LateReconciled uint64
	// GoneReplies counts empty unicast results sent to stragglers
	// whose phase's retained value was already evicted; the worker
	// self-completes the chunk from its local update.
	GoneReplies uint64
}

// Response is the switch's reaction to one update packet.
type Response struct {
	// Pkt is the result packet, nil if the update was absorbed or
	// dropped.
	Pkt *packet.Packet
	// Multicast is true when Pkt must be delivered to every worker;
	// false means unicast to Pkt.WorkerID.
	Multicast bool
}

// Switch is the dataplane aggregation state machine for a single job.
// It is not safe for concurrent use; hosts serialize packet delivery,
// which models the switch pipeline processing one packet at a time.
type Switch struct {
	cfg   SwitchConfig
	pools [2][]slot
	ctr   switchCounters
	// active marks the workers currently participating in the job;
	// required is their count. Initially every worker in [0, Workers)
	// is active; the failure controller shrinks the membership with
	// Reconfigure (§5.6: the controller removes a failed worker and
	// the job resumes among survivors).
	active   bitset
	required int
	// scratch holds one packet's ingress-expanded values.
	scratch []int32
}

// now returns the tracer timestamp.
func (sw *Switch) now() int64 {
	if sw.cfg.Now == nil {
		return 0
	}
	return sw.cfg.Now()
}

// trace emits a slot-level event for packet p.
func (sw *Switch) trace(t telemetry.EventType, p *packet.Packet) {
	if sw.cfg.Tracer == nil {
		return
	}
	e := telemetry.Ev(t, sw.now())
	e.Actor = "switch"
	e.Worker = int32(p.WorkerID)
	e.Slot = int32(p.Idx)
	e.Off = int64(p.Off)
	sw.cfg.Tracer.Emit(e)
}

// ratio is the accumulator-values-per-wire-element factor.
func (sw *Switch) ratio() int {
	if sw.cfg.Codec == nil {
		return 1
	}
	return sw.cfg.Codec.Ratio()
}

// ingressOverwrite decodes p's vector into the slot accumulator,
// replacing its contents. A pending late-straggler carry (quorum mode
// with LateReconcile) is folded into the opening phase here, so the
// straggler's gradient lands exactly one slot reuse late.
func (sw *Switch) ingressOverwrite(sl *slot, p *packet.Packet) {
	sl.elems = len(p.Vector)
	sl.off = int64(p.Off)
	if sw.cfg.Codec == nil {
		copy(sl.vector[:sl.elems], p.Vector)
	} else {
		sw.cfg.Codec.Ingress(sl.vector[:sw.ratio()*sl.elems], p.Vector)
	}
	if sl.carried {
		// The carried chunk and the opening one share a slot but may
		// differ in length (tensor tail); the overlap is reconciled and
		// the excess dropped with the rest of the carry.
		addVec(sl.vector[:sw.ratio()*sl.elems], sl.carry[:sw.ratio()*sl.elems])
		for i := range sl.carry {
			sl.carry[i] = 0
		}
		sl.carried = false
	}
	if sl.lateSeen != nil {
		for w := 0; w < sw.cfg.Workers; w++ {
			sl.lateSeen.clear(w)
		}
	}
}

// lateUpdate applies the configured LatePolicy to a straggler's
// update that arrived after its slot completed at quorum. Under
// LateReconcile the gradient is folded into the slot's carry, to be
// added when the next phase opens; lateSeen suppresses
// double-counting when the straggler retransmits.
func (sw *Switch) lateUpdate(sl *slot, p *packet.Packet, scratch []int32) {
	if !sw.quorumActive() {
		return
	}
	wid := int(p.WorkerID)
	if sl.carry == nil || sw.cfg.LatePolicy != LateReconcile {
		sw.ctr.lateDropped.Inc()
		return
	}
	if sl.lateSeen.get(wid) {
		sw.ctr.ignoredDuplicates.Inc()
		return
	}
	if len(p.Vector) != sl.elems {
		sw.ctr.staleUpdates.Inc()
		return
	}
	sl.lateSeen.set(wid)
	if sw.cfg.Codec == nil {
		addVec(sl.carry[:sl.elems], p.Vector)
	} else {
		vals := scratch[:sw.ratio()*sl.elems]
		sw.cfg.Codec.Ingress(vals, p.Vector)
		addVec(sl.carry[:sw.ratio()*sl.elems], vals)
	}
	sl.carried = true
	sw.ctr.lateReconciled.Inc()
}

// goneReply answers a straggler whose phase's retained value was
// already evicted: an empty unicast result for the requested offset.
// The worker recognizes the empty vector and self-completes the chunk
// from its local update — its gradient is lost for that step (it was
// already excluded by the quorum completion), but it stays in
// lockstep with the stream.
func (sw *Switch) goneReply(p *packet.Packet, out *packet.Packet) Response {
	sw.ctr.goneReplies.Inc()
	if out == nil {
		//switchml:allow hotpath -- nil-out fallback mirrors respond's allocating path
		out = &packet.Packet{}
	}
	vec := out.Vector
	*out = packet.Packet{
		Kind:     packet.KindResultUnicast,
		WorkerID: p.WorkerID,
		JobID:    p.JobID,
		Ver:      p.Ver,
		Idx:      p.Idx,
		Off:      p.Off,
		Vector:   vec[:0],
	}
	return Response{Pkt: out}
}

// egressInto encodes the slot accumulator into dst, reusing dst's
// capacity when sufficient. When the caller can borrow (HandleInto),
// this eliminates the per-completion result allocation.
func (sw *Switch) egressInto(dst []int32, sl *slot) []int32 {
	if cap(dst) >= sl.elems {
		dst = dst[:sl.elems]
	} else {
		//switchml:allow hotpath -- guarded grow fallback: borrowed response vectors reach SlotElems capacity once, then are reused
		dst = make([]int32, sl.elems)
	}
	if sw.cfg.Codec == nil {
		copy(dst, sl.vector[:sl.elems])
		return dst
	}
	sw.cfg.Codec.Egress(dst, sl.vector[:sw.ratio()*sl.elems])
	return dst
}

// respond builds the switch's reply into out (allocating a fresh
// packet when out is nil), copying the request's routing fields and
// encoding the slot accumulator into out's reused vector.
func (sw *Switch) respond(out *packet.Packet, p *packet.Packet, kind packet.Kind, off uint64, sl *slot) *packet.Packet {
	if out == nil {
		//switchml:allow hotpath -- nil-out fallback serves the allocating Handle wrapper; HandleInto callers always pass out
		out = &packet.Packet{}
	}
	vec := out.Vector
	*out = packet.Packet{
		Kind:     kind,
		WorkerID: p.WorkerID,
		JobID:    p.JobID,
		Ver:      p.Ver,
		Idx:      p.Idx,
		Off:      off,
	}
	out.Vector = sw.egressInto(vec[:0], sl)
	return out
}

// NewSwitch allocates the pools for one job.
func NewSwitch(cfg SwitchConfig) (*Switch, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sw := &Switch{cfg: cfg, ctr: newSwitchCounters(cfg.Metrics, cfg.JobID, cfg.Workers)}
	sw.active = newBitset(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		sw.active.set(i)
	}
	sw.required = cfg.Workers
	versions := 2
	if !cfg.LossRecovery {
		versions = 1
	}
	for v := 0; v < versions; v++ {
		sw.pools[v] = make([]slot, cfg.PoolSize)
		for i := range sw.pools[v] {
			sw.pools[v][i] = slot{
				vector: make([]int32, sw.ratio()*cfg.SlotElems),
				off:    -1,
				seen:   newBitset(cfg.Workers),
			}
			if cfg.Quorum > 0 && cfg.Quorum < cfg.Workers && cfg.LatePolicy == LateReconcile {
				sw.pools[v][i].carry = make([]int32, sw.ratio()*cfg.SlotElems)
				sw.pools[v][i].lateSeen = newBitset(cfg.Workers)
			}
		}
	}
	sw.scratch = make([]int32, sw.ratio()*cfg.SlotElems)
	return sw, nil
}

// Config returns the switch's configuration.
func (sw *Switch) Config() SwitchConfig { return sw.cfg }

// Stats returns a snapshot of the switch's counters. The counters
// are atomic, so the snapshot is safe to take concurrently with
// packet handling (each field is individually consistent).
func (sw *Switch) Stats() SwitchStats {
	return SwitchStats{
		Updates:               sw.ctr.updates.Value(),
		Completions:           sw.ctr.completions.Value(),
		IgnoredDuplicates:     sw.ctr.ignoredDuplicates.Value(),
		ResultRetransmissions: sw.ctr.resultRetransmissions.Value(),
		StaleUpdates:          sw.ctr.staleUpdates.Value(),
		Rejected:              sw.ctr.rejected.Value(),
		QuorumCompletions:     sw.ctr.quorumCompletions.Value(),
		LateDropped:           sw.ctr.lateDropped.Value(),
		LateReconciled:        sw.ctr.lateReconciled.Value(),
		GoneReplies:           sw.ctr.goneReplies.Value(),
	}
}

// MemoryBytes returns the register memory this job's pools occupy,
// for resource accounting against the p4sim SRAM model: vectors plus
// the seen bitmaps and counters.
func (sw *Switch) MemoryBytes() int {
	versions := 2
	if !sw.cfg.LossRecovery {
		versions = 1
	}
	perSlot := sw.ratio()*sw.cfg.SlotElems*4 + // vector registers
		(sw.cfg.Workers+7)/8 + // seen bitmap
		4 // count register
	return versions * sw.cfg.PoolSize * perSlot
}

// Handle processes one update packet per Algorithm 3 (or Algorithm 1
// when loss recovery is off) and returns the switch's response.
// Malformed packets are counted and dropped, never panicking: a
// dataplane must survive garbage.
func (sw *Switch) Handle(p *packet.Packet) Response {
	return sw.handleWith(p, sw.scratch, nil)
}

// HandleInto is Handle with caller-borrowed response storage: when a
// reply is produced, Response.Pkt is out, its vector reusing out's
// capacity. Steady-state packet handling then allocates nothing. out
// must not alias p, and the reply must be consumed (marshalled or
// copied) before out is reused for the next packet.
//
//switchml:hotpath
func (sw *Switch) HandleInto(p *packet.Packet, out *packet.Packet) Response {
	return sw.handleWith(p, sw.scratch, out)
}

// handleWith is the dataplane entry point; scratch is the
// codec-expansion buffer (unused when Codec is nil) and out the
// optional borrowed response packet.
func (sw *Switch) handleWith(p *packet.Packet, scratch []int32, out *packet.Packet) Response {
	if !sw.admit(p) {
		sw.ctr.rejected.Inc()
		return Response{}
	}
	sw.ctr.updates.Inc()
	if !sw.cfg.LossRecovery {
		return sw.handleSimple(p, scratch, out)
	}
	return sw.handleRecovering(p, scratch, out)
}

// admit performs the dataplane sanity checks.
func (sw *Switch) admit(p *packet.Packet) bool {
	if p.Kind != packet.KindUpdate {
		return false
	}
	if int(p.WorkerID) >= sw.cfg.Workers || !sw.active.get(int(p.WorkerID)) {
		return false
	}
	if p.JobID != sw.cfg.JobID {
		return false
	}
	if int(p.Idx) >= sw.cfg.PoolSize {
		return false
	}
	if len(p.Vector) == 0 || len(p.Vector) > sw.cfg.SlotElems {
		return false
	}
	if p.Ver > 1 || (!sw.cfg.LossRecovery && p.Ver != 0) {
		return false
	}
	return true
}

// needed returns the contribution count that completes a slot: the
// quorum when straggler mitigation is on (and the membership is still
// larger than it), the full membership otherwise.
func (sw *Switch) needed() int {
	if q := sw.cfg.Quorum; q > 0 && q < sw.required {
		return q
	}
	return sw.required
}

// quorumActive reports whether slots currently complete short of the
// full membership.
func (sw *Switch) quorumActive() bool { return sw.needed() < sw.required }

// handleSimple is Algorithm 1: no duplicate suppression, no shadow
// copy. Correct only when the network never drops or duplicates.
func (sw *Switch) handleSimple(p *packet.Packet, scratch []int32, out *packet.Packet) Response {
	sl := &sw.pools[0][p.Idx]
	if sl.count == 0 {
		sw.ingressOverwrite(sl, p)
		sl.start = sw.now()
	} else {
		if !sw.accumulate(sl, p, scratch) {
			return Response{}
		}
	}
	sw.trace(telemetry.EvSlotAggregated, p)
	sl.count++
	if sl.count < sw.required {
		return Response{}
	}
	// Complete: emit the aggregate and release the slot (Algorithm 1
	// lines 8-10).
	resp := sw.respond(out, p, packet.KindResult, p.Off, sl)
	sl.count = 0
	sl.off = -1
	sw.ctr.completions.Inc()
	sw.observeCompletion(sl, int(p.WorkerID))
	sw.trace(telemetry.EvSlotComplete, p)
	return Response{Pkt: resp, Multicast: true}
}

// handleRecovering is Algorithm 3, extended with quorum-based
// straggler mitigation: a slot may complete at needed() < required
// contributions, in which case the stragglers' late updates are
// served the retained result and handled per LatePolicy, and
// stragglers whose phase has already been evicted get an empty
// "gone" unicast telling them to self-complete from their local
// update.
func (sw *Switch) handleRecovering(p *packet.Packet, scratch []int32, out *packet.Packet) Response {
	sl := &sw.pools[p.Ver][p.Idx]
	other := &sw.pools[1-p.Ver][p.Idx]
	wid := int(p.WorkerID)

	if sw.cfg.Quorum > 0 && sl.seen.get(wid) && sl.count == 0 && int64(p.Off) != sl.off {
		// Stale seen bit: the worker contributed to a phase other than
		// the one retained here. Quorum completions reuse slots without
		// the stragglers whose contributions would have cleared this
		// bit via the other pool, so the bit can linger both behind the
		// retained phase (p.Off > sl.off, the worker moved on) and
		// ahead of it (p.Off < sl.off, faster peers lapped the slot).
		// Either way the packet must not be mistaken for a
		// retransmission of the retained phase, or the worker deadlocks
		// being served a result for an offset it never asked about.
		sl.seen.clear(wid)
	}

	if !sl.seen.get(wid) {
		// First contribution from this worker for this slot+version
		// (Algorithm 3 lines 5-17).
		if sl.count == 0 {
			// This packet would open a new aggregation phase and
			// overwrite the slot. Stream offsets grow strictly
			// monotonically per slot, so a packet not beyond both
			// pools' last offsets is a stale duplicate that overtook
			// the worker's later updates (same-worker reordering,
			// which the single version bit cannot otherwise
			// distinguish). Serve the retained result if it matches
			// this pool's completed aggregation; otherwise drop it
			// rather than corrupt the slot.
			if int64(p.Off) <= sl.off || int64(p.Off) <= other.off {
				if int64(p.Off) == sl.off {
					// Under quorum this is a straggler whose slot
					// completed without it: apply the late-update
					// policy, then serve the retained result so it
					// keeps pace.
					sw.lateUpdate(sl, p, scratch)
					sw.ctr.resultRetransmissions.Inc()
					sw.trace(telemetry.EvShadowRead, p)
					return Response{Pkt: sw.respond(out, p, packet.KindResultUnicast, uint64(sl.off), sl)}
				}
				if sw.quorumActive() && int64(p.Off) < sl.off && int64(p.Off) != other.off {
					return sw.goneReply(p, out)
				}
				sw.ctr.staleUpdates.Inc()
				return Response{}
			}
		} else if int64(p.Off) < sl.off && int64(p.Off) != other.off {
			// A newer phase is already aggregating on this pool: the
			// straggler's phase was evicted before it contributed.
			// Only reachable under quorum, where fast workers reuse a
			// slot before a straggler's chunk resolves.
			if sw.quorumActive() {
				return sw.goneReply(p, out)
			}
			sw.ctr.staleUpdates.Inc()
			return Response{}
		}
		if sl.count == 0 && sw.cfg.Quorum > 0 {
			// Opening a new phase: reset the roll. Under full
			// participation every lingering seen bit was provably
			// cleared through the opposite pool's alternation, but
			// quorum completions reuse slots without the stragglers,
			// so bits from older phases survive — and the idle-slot
			// guard above cannot reach them once a peer has opened
			// the next phase. A survivor's bit would misclassify its
			// owner's genuine contribution as a retransmission,
			// silently dropped while the phase is open, wedging the
			// slot below the quorum.
			sl.seen.clearAll()
		}
		otherHad := other.seen.get(wid)
		sl.seen.set(wid)
		other.seen.clear(wid)
		if sl.count == 0 {
			// First contribution overall: overwrite, which doubles as
			// the slot reset (line 10).
			sw.ingressOverwrite(sl, p)
			sl.start = sw.now()
		} else {
			if !sw.accumulate(sl, p, scratch) {
				// Inconsistent chunk from a misbehaving worker: undo
				// the seen-bit changes and drop.
				sl.seen.clear(wid)
				if otherHad {
					other.seen.set(wid)
				}
				return Response{}
			}
		}
		sw.trace(telemetry.EvSlotAggregated, p)
		sl.count++
		if sl.count < sw.needed() {
			return Response{}
		}
		// Aggregation complete (lines 13-15): the slot becomes the
		// shadow copy, retaining its value for retransmissions.
		resp := sw.respond(out, p, packet.KindResult, p.Off, sl)
		if sl.count < sw.required {
			sw.ctr.quorumCompletions.Inc()
			sw.trace(telemetry.EvQuorumComplete, p)
		}
		sl.count = 0
		sw.ctr.completions.Inc()
		sw.observeCompletion(sl, wid)
		sw.trace(telemetry.EvSlotComplete, p)
		return Response{Pkt: resp, Multicast: true}
	}

	// Retransmission (lines 18-23).
	if sl.count == 0 {
		// The slot already completed; reply to just this worker with
		// the retained result (lines 19-21).
		sw.ctr.resultRetransmissions.Inc()
		sw.trace(telemetry.EvShadowRead, p)
		return Response{Pkt: sw.respond(out, p, packet.KindResultUnicast, uint64(sl.off), sl)}
	}
	// Still aggregating: the update was already applied, ignore.
	sw.ctr.ignoredDuplicates.Inc()
	return Response{}
}

// accumulate adds p's vector into the slot, verifying the chunk is
// consistent with the aggregation in progress.
func (sw *Switch) accumulate(sl *slot, p *packet.Packet, scratch []int32) bool {
	if len(p.Vector) != sl.elems || int64(p.Off) != sl.off {
		// The packet passed admission but does not belong to the
		// aggregation in progress: a stale or inconsistent chunk.
		sw.ctr.staleUpdates.Inc()
		return false
	}
	if sw.cfg.Codec == nil {
		addVec(sl.vector, p.Vector)
		return true
	}
	vals := scratch[:sw.ratio()*sl.elems]
	sw.cfg.Codec.Ingress(vals, p.Vector)
	addVec(sl.vector, vals)
	return true
}

// DebugSlot reports a slot's internal state for diagnostics: the
// contribution count, the offset of the aggregation in progress, and
// the seen bitmap's first word.
func (sw *Switch) DebugSlot(ver uint8, idx uint32) (count int, off int64, elems int, seen uint64) {
	sl := &sw.pools[ver][idx]
	return sl.count, sl.off, sl.elems, uint64(sl.seen[0])
}

// Required returns the number of contributions a slot needs to
// complete — the size of the current active membership.
func (sw *Switch) Required() int { return sw.required }

// Active reports whether worker wid is part of the current membership.
func (sw *Switch) Active(wid int) bool {
	return wid >= 0 && wid < sw.cfg.Workers && sw.active.get(wid)
}

// ActiveWorkers lists the current membership in id order.
func (sw *Switch) ActiveWorkers() []int {
	out := make([]int, 0, sw.required)
	for i := 0; i < sw.cfg.Workers; i++ {
		if sw.active.get(i) {
			out = append(out, i)
		}
	}
	return out
}

// JobID returns the job generation currently stamped on admissions.
func (sw *Switch) JobID() uint16 { return sw.cfg.JobID }

// Reconfigure installs a new worker membership and job generation,
// draining the pool: all slot state is reset, so partial aggregations
// that included a removed worker are discarded, and packets from the
// previous generation fail admission on their stale JobID. This is
// the switch half of the paper's §5.6 failure recovery — the
// controller removes a failed worker (or re-seats the full membership
// after a switch restart) and the survivors resume.
//
// active must have cfg.Workers entries with at least one set. A nil
// active keeps the current membership (switch-restart recovery, where
// only the generation changes).
func (sw *Switch) Reconfigure(active []bool, jobID uint16) error {
	if active != nil {
		if len(active) != sw.cfg.Workers {
			return fmt.Errorf("core: membership has %d entries for %d workers", len(active), sw.cfg.Workers)
		}
		n := 0
		for _, a := range active {
			if a {
				n++
			}
		}
		if n == 0 {
			return fmt.Errorf("core: reconfigure needs at least one active worker")
		}
		for i, a := range active {
			if a {
				sw.active.set(i)
			} else {
				sw.active.clear(i)
			}
		}
		sw.required = n
	}
	sw.cfg.JobID = jobID
	sw.Reset()
	return nil
}

// Reset clears all pool state, preparing the switch for a restarted
// job. The paper assumes worker failures are handled by the ML
// framework restarting the job (§3.2); on restart the new workers
// begin the stream at offset zero, which the monotonic-offset
// hardening would otherwise reject against the dead job's residue.
func (sw *Switch) Reset() {
	for v := range sw.pools {
		for i := range sw.pools[v] {
			sl := &sw.pools[v][i]
			for j := range sl.vector {
				sl.vector[j] = 0
			}
			sl.count = 0
			sl.elems = 0
			sl.off = -1
			for w := 0; w < sw.cfg.Workers; w++ {
				sl.seen.clear(w)
				if sl.lateSeen != nil {
					sl.lateSeen.clear(w)
				}
			}
			for j := range sl.carry {
				sl.carry[j] = 0
			}
			sl.carried = false
		}
	}
}
