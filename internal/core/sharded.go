package core

import (
	"sync"

	"switchml/internal/packet"
)

// ShardedSwitch wraps a Switch for concurrent packet handling,
// mirroring the paper's multi-core aggregation host: Flow Director
// steers each slot's traffic to one core, so slots are independent
// and only membership changes need global coordination (Appendix B,
// "every CPU core ... uses a disjoint set of aggregation slots").
//
// Concurrency model:
//
//   - Each slot index owns a mutex covering both pool versions at
//     that index (Algorithm 3 reads the shadow copy of the same
//     index, never a different slot). Packets for different slots
//     aggregate fully in parallel.
//   - Membership and generation changes (Reconfigure, Reset) take a
//     write lock that excludes all packet handling; per-packet work
//     takes the read side, which is uncontended in steady state.
//   - The switch's counters are atomic, and codec scratch buffers
//     are pooled per call, so handlers share no mutable state beyond
//     the slot they lock.
type ShardedSwitch struct {
	sw *Switch
	// mu is the membership lock: Handle paths hold it for reading,
	// Reconfigure/Reset for writing.
	mu sync.RWMutex
	// locks[i] guards pools[0][i] and pools[1][i]. Each lock is padded
	// to its own cache line so adjacent slots do not false-share.
	locks []slotLock
	// scratch pools codec-expansion buffers; only used when the codec
	// is non-nil.
	scratch sync.Pool
}

// slotLock pads a mutex to a 64-byte cache line.
type slotLock struct {
	mu sync.Mutex
	_  [56]byte
}

// NewShardedSwitch allocates the pools for one job behind a
// concurrency-safe facade.
func NewShardedSwitch(cfg SwitchConfig) (*ShardedSwitch, error) {
	sw, err := NewSwitch(cfg)
	if err != nil {
		return nil, err
	}
	ss := &ShardedSwitch{
		sw:    sw,
		locks: make([]slotLock, cfg.PoolSize),
	}
	elems := sw.ratio() * cfg.SlotElems
	ss.scratch.New = func() any {
		b := make([]int32, elems)
		return &b
	}
	return ss, nil
}

// Switch returns the wrapped state machine. Callers must not invoke
// its Handle methods directly while shard goroutines are running.
func (ss *ShardedSwitch) Switch() *Switch { return ss.sw }

// Handle processes one update packet, locking only the packet's slot.
// It allocates the response packet; use HandleInto on the hot path.
func (ss *ShardedSwitch) Handle(p *packet.Packet) Response {
	return ss.HandleInto(p, nil)
}

// HandleInto processes one update packet with caller-borrowed
// response storage (see Switch.HandleInto). Safe for concurrent use:
// packets for distinct slot indices proceed in parallel.
//
//switchml:hotpath
func (ss *ShardedSwitch) HandleInto(p *packet.Packet, out *packet.Packet) Response {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	// Admission rejects out-of-range indices inside handleWith; the
	// modulus only keeps the lock lookup in bounds until it does.
	lk := &ss.locks[int(p.Idx)%len(ss.locks)]
	var scratch []int32
	var sp *[]int32
	if ss.sw.cfg.Codec != nil {
		sp = ss.scratch.Get().(*[]int32)
		scratch = *sp
	}
	lk.mu.Lock()
	resp := ss.sw.handleWith(p, scratch, out)
	lk.mu.Unlock()
	if sp != nil {
		ss.scratch.Put(sp)
	}
	return resp
}

// Stats returns a snapshot of the switch counters (atomic; no lock).
func (ss *ShardedSwitch) Stats() SwitchStats { return ss.sw.Stats() }

// Config returns the switch configuration.
func (ss *ShardedSwitch) Config() SwitchConfig { return ss.sw.Config() }

// MemoryBytes returns the pools' register memory (see
// Switch.MemoryBytes).
func (ss *ShardedSwitch) MemoryBytes() int { return ss.sw.MemoryBytes() }

// Required returns the current required contribution count.
func (ss *ShardedSwitch) Required() int {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.sw.Required()
}

// Active reports whether worker wid is part of the current
// membership.
func (ss *ShardedSwitch) Active(wid int) bool {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.sw.Active(wid)
}

// ActiveWorkers lists the current membership in id order.
func (ss *ShardedSwitch) ActiveWorkers() []int {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.sw.ActiveWorkers()
}

// JobID returns the current job generation.
func (ss *ShardedSwitch) JobID() uint16 {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.sw.JobID()
}

// Reconfigure installs a new membership and generation, excluding
// all packet handling for the duration (see Switch.Reconfigure).
func (ss *ShardedSwitch) Reconfigure(active []bool, jobID uint16) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.sw.Reconfigure(active, jobID)
}

// Reset clears all pool state, excluding all packet handling.
func (ss *ShardedSwitch) Reset() {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.sw.Reset()
}

// DebugSlot reports a slot's internal state under its lock.
func (ss *ShardedSwitch) DebugSlot(ver uint8, idx uint32) (count int, off int64, elems int, seen uint64) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	lk := &ss.locks[int(idx)%len(ss.locks)]
	lk.mu.Lock()
	defer lk.mu.Unlock()
	return ss.sw.DebugSlot(ver, idx)
}
