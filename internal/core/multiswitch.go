package core

import (
	"fmt"
	"sort"

	"switchml/internal/packet"
)

// MultiSwitch hosts several jobs' aggregation pools on one switch,
// the multi-tenant scenario of §6 ("Multi-job"). Every job owns a
// disjoint pool; an admission check bounds total register memory, the
// scarce dataplane resource.
type MultiSwitch struct {
	// memoryBudget caps the sum of per-job MemoryBytes; zero means
	// unlimited.
	memoryBudget int
	jobs         map[uint16]*Switch
}

// NewMultiSwitch returns a multi-tenant switch with the given
// register memory budget in bytes (0 = unlimited).
func NewMultiSwitch(memoryBudget int) *MultiSwitch {
	return &MultiSwitch{memoryBudget: memoryBudget, jobs: make(map[uint16]*Switch)}
}

// AdmitJob allocates a pool for a job. It fails if the job id is
// taken or the additional pools would exceed the memory budget.
func (m *MultiSwitch) AdmitJob(cfg SwitchConfig) (*Switch, error) {
	if _, ok := m.jobs[cfg.JobID]; ok {
		return nil, fmt.Errorf("core: job %d already admitted", cfg.JobID)
	}
	sw, err := NewSwitch(cfg)
	if err != nil {
		return nil, err
	}
	if m.memoryBudget > 0 && m.MemoryBytes()+sw.MemoryBytes() > m.memoryBudget {
		return nil, fmt.Errorf("core: job %d needs %d bytes, only %d of %d available",
			cfg.JobID, sw.MemoryBytes(), m.memoryBudget-m.MemoryBytes(), m.memoryBudget)
	}
	m.jobs[cfg.JobID] = sw
	return sw, nil
}

// ReleaseJob frees a job's pools.
func (m *MultiSwitch) ReleaseJob(job uint16) error {
	if _, ok := m.jobs[job]; !ok {
		return fmt.Errorf("core: job %d not admitted", job)
	}
	delete(m.jobs, job)
	return nil
}

// Job returns the per-job switch, or nil.
func (m *MultiSwitch) Job(job uint16) *Switch { return m.jobs[job] }

// Jobs returns the admitted job ids in ascending order.
func (m *MultiSwitch) Jobs() []uint16 {
	ids := make([]uint16, 0, len(m.jobs))
	//switchml:allow determinism -- collect-then-sort: the ids are sorted before anything order-sensitive sees them
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// MemoryBytes returns the total register memory of all admitted jobs.
func (m *MultiSwitch) MemoryBytes() int {
	total := 0
	//switchml:allow determinism -- commutative integer sum; iteration order cannot change the total
	for _, sw := range m.jobs {
		total += sw.MemoryBytes()
	}
	return total
}

// Handle routes a packet to its job's pool; packets for unknown jobs
// are dropped, matching dataplane behaviour.
func (m *MultiSwitch) Handle(p *packet.Packet) Response {
	return m.HandleInto(p, nil)
}

// HandleInto routes a packet to its job's pool with caller-borrowed
// response storage (see Switch.HandleInto).
func (m *MultiSwitch) HandleInto(p *packet.Packet, out *packet.Packet) Response {
	sw, ok := m.jobs[p.JobID]
	if !ok {
		return Response{}
	}
	return sw.HandleInto(p, out)
}
