package core

import "math/bits"

// count returns the number of set bits, the seen-bitmap population.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// observeCompletion feeds the completion-time instrumentation: the
// straggler-attribution counter for the worker whose packet closed
// the slot (the one every other worker waited for) and, when the
// switch has a clock, the phase-open-to-completion latency histogram.
func (sw *Switch) observeCompletion(sl *slot, wid int) {
	if wid >= 0 && wid < len(sw.ctr.lastArrival) {
		sw.ctr.lastArrival[wid].Inc()
	}
	if sw.cfg.Now != nil {
		sw.ctr.slotFill.Observe(float64(sw.now() - sl.start))
	}
}

// LastArrivals snapshots the per-worker last-contributor counters:
// out[w] is how many slot completions worker w closed. The counters
// are atomic, so the snapshot is safe concurrently with handling.
func (sw *Switch) LastArrivals() []uint64 {
	out := make([]uint64, len(sw.ctr.lastArrival))
	for w, c := range sw.ctr.lastArrival {
		out[w] = c.Value()
	}
	return out
}

// SlotState is one slot's introspection view.
type SlotState struct {
	Ver int `json:"ver"`
	Idx int `json:"idx"`
	// Count is the contribution count of the aggregation in progress
	// (0 means idle or complete-and-retained).
	Count int `json:"count"`
	// Off is the stream offset of the current or retained aggregation;
	// -1 when the slot has never been used (or was reset).
	Off   int64 `json:"off"`
	Elems int   `json:"elems"`
	// Seen is the first word of the contribution bitmap; SeenCount the
	// full population count.
	Seen      uint64 `json:"seen"`
	SeenCount int    `json:"seen_count"`
}

// PoolState is the switch's deep introspection document: per-version
// occupancy plus (optionally) every slot's state. It is what the
// flight recorder embeds in incident files and /debug/state serves.
type PoolState struct {
	JobID    uint16 `json:"job_id"`
	Workers  int    `json:"workers"`
	Required int    `json:"required"`
	PoolSize int    `json:"pool_size"`
	Versions int    `json:"versions"`
	// Busy[v] counts version-v slots mid-aggregation (count > 0);
	// Retained[v] counts completed slots holding a shadow-readable
	// result (count == 0, off >= 0).
	Busy     []int `json:"busy"`
	Retained []int `json:"retained"`
	// Occupancy is the busy fraction across all versions.
	Occupancy float64 `json:"occupancy"`
	// LastArrivals[w] is the straggler attribution: completions closed
	// by worker w.
	LastArrivals []uint64 `json:"last_arrivals"`
	// Slots is the full per-slot dump, present when requested.
	Slots []SlotState `json:"slots,omitempty"`
}

// versions returns how many pool copies the switch keeps.
func (sw *Switch) versions() int {
	if sw.cfg.LossRecovery {
		return 2
	}
	return 1
}

// slotState reads one slot's view; the caller must hold whatever lock
// guards the slot.
func (sw *Switch) slotState(v, i int) SlotState {
	sl := &sw.pools[v][i]
	return SlotState{
		Ver: v, Idx: i,
		Count: sl.count, Off: sl.off, Elems: sl.elems,
		Seen: uint64(sl.seen[0]), SeenCount: sl.seen.count(),
	}
}

// PoolState assembles the introspection document. Like Handle it is
// not safe for concurrent use — hosts serialize it with packet
// delivery (ShardedSwitch.PoolState does so per slot).
func (sw *Switch) PoolState(withSlots bool) PoolState {
	ps := sw.poolStateHeader()
	for v := 0; v < ps.Versions; v++ {
		for i := 0; i < sw.cfg.PoolSize; i++ {
			ps.tally(sw.slotState(v, i), withSlots)
		}
	}
	ps.finish()
	return ps
}

// poolStateHeader fills the membership-level fields.
func (sw *Switch) poolStateHeader() PoolState {
	return PoolState{
		JobID:        sw.cfg.JobID,
		Workers:      sw.cfg.Workers,
		Required:     sw.required,
		PoolSize:     sw.cfg.PoolSize,
		Versions:     sw.versions(),
		Busy:         make([]int, sw.versions()),
		Retained:     make([]int, sw.versions()),
		LastArrivals: sw.LastArrivals(),
	}
}

// tally folds one slot into the occupancy accounting.
func (ps *PoolState) tally(st SlotState, withSlots bool) {
	if st.Count > 0 {
		ps.Busy[st.Ver]++
	} else if st.Off >= 0 {
		ps.Retained[st.Ver]++
	}
	if withSlots {
		ps.Slots = append(ps.Slots, st)
	}
}

// finish derives the aggregate occupancy.
func (ps *PoolState) finish() {
	busy := 0
	for _, b := range ps.Busy {
		busy += b
	}
	if total := ps.Versions * ps.PoolSize; total > 0 {
		ps.Occupancy = float64(busy) / float64(total)
	}
}

// PoolState assembles the introspection document safely while shard
// goroutines handle packets: the membership is read-locked and each
// slot index is read under its own lock, so the per-slot views are
// individually consistent (the pool-wide picture is a moving target
// by design).
func (ss *ShardedSwitch) PoolState(withSlots bool) PoolState {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	ps := ss.sw.poolStateHeader()
	for i := 0; i < ss.sw.cfg.PoolSize; i++ {
		lk := &ss.locks[i]
		lk.mu.Lock()
		for v := 0; v < ps.Versions; v++ {
			ps.tally(ss.sw.slotState(v, i), withSlots)
		}
		lk.mu.Unlock()
	}
	ps.finish()
	return ps
}

// LastArrivals snapshots the straggler-attribution counters (atomic;
// no lock).
func (ss *ShardedSwitch) LastArrivals() []uint64 { return ss.sw.LastArrivals() }
