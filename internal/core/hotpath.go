package core

// addVec adds src into dst elementwise: dst[i] += src[i] for every
// element of src. It is the switch ingress inner loop — the software
// analogue of the Tofino pipeline's 32-lane register add — and is
// manually unrolled 8 ways so the common k=32 packet runs four
// straight-line blocks with the bounds checks hoisted.
func addVec(dst, src []int32) {
	_ = dst[:len(src)] // hoist the bounds check; len(src) <= len(dst)
	for len(src) >= 8 {
		d, s := dst[:8:8], src[:8:8]
		d[0] += s[0]
		d[1] += s[1]
		d[2] += s[2]
		d[3] += s[3]
		d[4] += s[4]
		d[5] += s[5]
		d[6] += s[6]
		d[7] += s[7]
		dst, src = dst[8:], src[8:]
	}
	for i, v := range src {
		dst[i] += v
	}
}
