package core

import (
	"sync"
	"testing"

	"switchml/internal/packet"
)

// TestShardedMatchesSerial drives the same packet schedule through a
// plain Switch and a ShardedSwitch (single-threaded) and checks the
// responses agree bit for bit: the locking facade must not change
// protocol behaviour.
func TestShardedMatchesSerial(t *testing.T) {
	cfg := SwitchConfig{Workers: 4, PoolSize: 8, SlotElems: 8, LossRecovery: true}
	plain, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]int32, 8)
	for round := 0; round < 6; round++ {
		for idx := uint32(0); idx < 8; idx++ {
			for w := uint16(0); w < 4; w++ {
				for i := range vec {
					vec[i] = int32(w)*100 + int32(i) + int32(round)
				}
				p := packet.NewUpdate(w, 0, uint8(round%2), idx, uint64(round)*64+uint64(idx)*8, vec)
				a := plain.Handle(p)
				b := sharded.Handle(p)
				if (a.Pkt == nil) != (b.Pkt == nil) || a.Multicast != b.Multicast {
					t.Fatalf("round %d idx %d w %d: response shape diverged", round, idx, w)
				}
				if a.Pkt != nil {
					if a.Pkt.String() != b.Pkt.String() {
						t.Fatalf("response mismatch: %v vs %v", a.Pkt, b.Pkt)
					}
					for i := range a.Pkt.Vector {
						if a.Pkt.Vector[i] != b.Pkt.Vector[i] {
							t.Fatalf("vector[%d] = %d vs %d", i, a.Pkt.Vector[i], b.Pkt.Vector[i])
						}
					}
				}
			}
		}
	}
	if plain.Stats() != sharded.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", plain.Stats(), sharded.Stats())
	}
}

// TestShardedConcurrentSlots aggregates disjoint slot ranges from
// concurrent goroutines — the Flow Director model — and checks every
// completion is produced with the correct sum. Run under -race this
// is the shard-dispatch safety test.
func TestShardedConcurrentSlots(t *testing.T) {
	const (
		workers = 4
		pool    = 32
		elems   = 8
		shards  = 4
		rounds  = 50
	)
	ss, err := NewShardedSwitch(SwitchConfig{
		Workers: workers, PoolSize: pool, SlotElems: elems, LossRecovery: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	completions := make([]int, shards)
	for s := 0; s < shards; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out packet.Packet
			var p packet.Packet
			vec := make([]int32, elems)
			// Shard s owns slots where idx % shards == s.
			for round := 0; round < rounds; round++ {
				for idx := uint32(s); idx < pool; idx += shards {
					off := uint64(round)*pool*elems + uint64(idx)*elems
					for w := uint16(0); w < workers; w++ {
						for i := range vec {
							vec[i] = int32(w) + int32(i)
						}
						p.SetUpdate(w, 0, uint8(round%2), idx, off, vec)
						resp := ss.HandleInto(&p, &out)
						if resp.Pkt != nil {
							if !resp.Multicast {
								t.Errorf("unexpected unicast on clean path")
							}
							// Sum over w of (w + i) = 6 + 4i for 4 workers.
							for i, v := range resp.Pkt.Vector {
								if want := int32(6 + 4*i); v != want {
									t.Errorf("slot %d vector[%d] = %d, want %d", idx, i, v, want)
								}
							}
							completions[s]++
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, c := range completions {
		total += c
	}
	if want := rounds * pool; total != want {
		t.Errorf("completions = %d, want %d", total, want)
	}
	st := ss.Stats()
	if st.Completions != uint64(rounds*pool) || st.Updates != uint64(rounds*pool*workers) {
		t.Errorf("stats = %+v", st)
	}
}

// TestShardedReconfigureExcludesHandlers checks a reconfiguration
// under live traffic neither races nor loses the membership change.
func TestShardedReconfigureExcludesHandlers(t *testing.T) {
	const workers = 4
	ss, err := NewShardedSwitch(SwitchConfig{
		Workers: workers, PoolSize: 4, SlotElems: 4, LossRecovery: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var p, out packet.Packet
			vec := []int32{1, 2, 3, 4}
			off := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				p.SetUpdate(uint16(w), ss.JobID(), 0, uint32(w%4), off, vec)
				ss.HandleInto(&p, &out)
				off += 4
			}
		}()
	}
	active := []bool{true, true, true, false}
	if err := ss.Reconfigure(active, 7); err != nil {
		t.Error(err)
	}
	close(stop)
	wg.Wait()
	if got := ss.Required(); got != 3 {
		t.Errorf("Required = %d, want 3", got)
	}
	if ss.JobID() != 7 {
		t.Errorf("JobID = %d, want 7", ss.JobID())
	}
	if ss.Active(3) {
		t.Error("worker 3 still active after reconfigure")
	}
}

// TestSwitchIngressZeroAlloc asserts the steady-state ingress path —
// admit, accumulate, complete, egress into borrowed storage — never
// allocates.
func TestSwitchIngressZeroAlloc(t *testing.T) {
	const n = 4
	sw, err := NewSwitch(SwitchConfig{Workers: n, PoolSize: 8, SlotElems: 32, LossRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]int32, 32)
	pkts := make([]*packet.Packet, n)
	for w := range pkts {
		pkts[w] = packet.NewUpdate(uint16(w), 0, 0, 0, 0, vec)
	}
	var out packet.Packet
	round := 0
	step := func() {
		for w := 0; w < n; w++ {
			p := pkts[w]
			p.Ver = uint8(round % 2)
			p.Off = uint64(round * 32)
			sw.HandleInto(p, &out)
		}
		round++
	}
	step() // warm out.Vector
	allocs := testing.AllocsPerRun(100, step)
	if allocs != 0 {
		t.Errorf("switch ingress allocates %.2f/op, want 0", allocs)
	}
}

// TestShardedIngressZeroAlloc asserts the same for the sharded
// dispatch path (lock + handle + borrowed egress).
func TestShardedIngressZeroAlloc(t *testing.T) {
	const n = 4
	ss, err := NewShardedSwitch(SwitchConfig{Workers: n, PoolSize: 8, SlotElems: 32, LossRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]int32, 32)
	pkts := make([]*packet.Packet, n)
	for w := range pkts {
		pkts[w] = packet.NewUpdate(uint16(w), 0, 0, 0, 0, vec)
	}
	var out packet.Packet
	round := 0
	step := func() {
		for w := 0; w < n; w++ {
			p := pkts[w]
			p.Ver = uint8(round % 2)
			p.Off = uint64(round * 32)
			ss.HandleInto(p, &out)
		}
		round++
	}
	step()
	allocs := testing.AllocsPerRun(100, step)
	if allocs != 0 {
		t.Errorf("sharded ingress allocates %.2f/op, want 0", allocs)
	}
}

// TestAddVec checks the unrolled vector add against the obvious loop
// across lengths spanning the unroll boundary.
func TestAddVec(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 31, 32, 33, 366} {
		dst := make([]int32, n)
		want := make([]int32, n)
		src := make([]int32, n)
		for i := range src {
			src[i] = int32(i*3 - 7)
			dst[i] = int32(i)
			want[i] = dst[i] + src[i]
		}
		addVec(dst, src)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: dst[%d] = %d, want %d", n, i, dst[i], want[i])
			}
		}
	}
}
