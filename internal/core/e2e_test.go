package core

import (
	"math/rand"
	"testing"

	"switchml/internal/packet"
)

// harness wires n workers to a switch through an in-memory network
// with controllable packet drops, driving retransmissions whenever
// the network drains without progress. It is a lockstep test double
// for the timing-accurate netsim rack.
type harness struct {
	t       *testing.T
	sw      *Switch
	workers []*Worker
	// queue holds packets in flight, in order.
	queue []queued
	// dropUp/dropDown decide per packet whether to drop it.
	dropUp   func(p *packet.Packet) bool
	dropDown func(wid int, p *packet.Packet) bool
	done     []bool
}

type queued struct {
	toSwitch bool
	wid      int // destination worker when !toSwitch
	pkt      *packet.Packet
}

func newHarness(t *testing.T, n, s, k int, recovery bool) *harness {
	t.Helper()
	sw, err := NewSwitch(SwitchConfig{Workers: n, PoolSize: s, SlotElems: k, LossRecovery: recovery})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		t:        t,
		sw:       sw,
		done:     make([]bool, n),
		dropUp:   func(*packet.Packet) bool { return false },
		dropDown: func(int, *packet.Packet) bool { return false },
	}
	for i := 0; i < n; i++ {
		w, err := NewWorker(WorkerConfig{
			ID: uint16(i), Workers: n, PoolSize: s, SlotElems: k, LossRecovery: recovery,
		})
		if err != nil {
			t.Fatal(err)
		}
		h.workers = append(h.workers, w)
	}
	return h
}

// aggregate runs one full tensor aggregation and returns worker 0's
// result; it checks all workers converge to identical aggregates.
func (h *harness) aggregate(updates [][]int32) []int32 {
	for i := range h.done {
		h.done[i] = false
	}
	for i, w := range h.workers {
		for _, p := range w.Start(updates[i]) {
			h.queue = append(h.queue, queued{toSwitch: true, pkt: p})
		}
	}
	const maxRounds = 1 << 22
	for rounds := 0; ; rounds++ {
		if rounds > maxRounds {
			h.t.Fatal("harness did not converge")
		}
		if len(h.queue) == 0 {
			if h.allDone() {
				break
			}
			// Liveness: every pending slot retransmits, standing in
			// for the workers' timeout handlers.
			progress := false
			for _, w := range h.workers {
				for idx := 0; idx < w.Config().PoolSize; idx++ {
					if p := w.Retransmit(uint32(idx)); p != nil {
						h.queue = append(h.queue, queued{toSwitch: true, pkt: p})
						progress = true
					}
				}
			}
			if !progress {
				h.t.Fatal("deadlock: no pending slots but not all workers done")
			}
			continue
		}
		q := h.queue[0]
		h.queue = h.queue[1:]
		if q.toSwitch {
			if h.dropUp(q.pkt) {
				continue
			}
			r := h.sw.Handle(q.pkt)
			if r.Pkt == nil {
				continue
			}
			if r.Multicast {
				for wid := range h.workers {
					h.queue = append(h.queue, queued{wid: wid, pkt: r.Pkt.Clone()})
				}
			} else {
				h.queue = append(h.queue, queued{wid: int(r.Pkt.WorkerID), pkt: r.Pkt})
			}
		} else {
			if h.dropDown(q.wid, q.pkt) {
				continue
			}
			next, done := h.workers[q.wid].HandleResult(q.pkt)
			if next != nil {
				h.queue = append(h.queue, queued{toSwitch: true, pkt: next})
			}
			if done {
				h.done[q.wid] = true
			}
		}
	}
	ref := h.workers[0].Aggregate()
	for wid, w := range h.workers {
		got := w.Aggregate()
		if len(got) != len(ref) {
			h.t.Fatalf("worker %d aggregate length %d != %d", wid, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				h.t.Fatalf("worker %d aggregate[%d] = %d, worker 0 has %d", wid, i, got[i], ref[i])
			}
		}
	}
	return ref
}

func (h *harness) allDone() bool {
	for _, d := range h.done {
		if !d {
			return false
		}
	}
	return true
}

// goldenSum computes the reference aggregation.
func goldenSum(updates [][]int32) []int32 {
	out := make([]int32, len(updates[0]))
	for _, u := range updates {
		for i, v := range u {
			out[i] += v
		}
	}
	return out
}

func randUpdates(rng *rand.Rand, n, d int) [][]int32 {
	us := make([][]int32, n)
	for i := range us {
		us[i] = make([]int32, d)
		for j := range us[i] {
			us[i][j] = int32(rng.Intn(2001) - 1000)
		}
	}
	return us
}

func checkEqual(t *testing.T, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestE2ELossless(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, s, k, d int }{
		{2, 4, 8, 1024},
		{3, 2, 2, 7}, // non-multiple of k
		{8, 16, 32, 4096},
		{5, 1, 3, 10},     // single-slot pool
		{2, 128, 32, 100}, // tensor smaller than s*k
	} {
		h := newHarness(t, tc.n, tc.s, tc.k, true)
		us := randUpdates(rng, tc.n, tc.d)
		checkEqual(t, h.aggregate(us), goldenSum(us))
	}
}

func TestE2EAlgorithm1Lossless(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := newHarness(t, 4, 8, 16, false)
	us := randUpdates(rng, 4, 500)
	checkEqual(t, h.aggregate(us), goldenSum(us))
}

func TestE2EConsecutiveTensors(t *testing.T) {
	// Multiple tensors through the same switch/workers exercise the
	// continuous-stream version alternation.
	rng := rand.New(rand.NewSource(3))
	h := newHarness(t, 3, 4, 8, true)
	for iter := 0; iter < 5; iter++ {
		d := 33 + rng.Intn(200)
		us := randUpdates(rng, 3, d)
		checkEqual(t, h.aggregate(us), goldenSum(us))
	}
}

func TestE2ERandomLoss(t *testing.T) {
	// The headline correctness claim (§3.5): aggregation remains
	// exact under arbitrary loss on both paths.
	for _, lossRate := range []float64{0.01, 0.1, 0.4} {
		rng := rand.New(rand.NewSource(int64(lossRate * 1000)))
		h := newHarness(t, 4, 4, 8, true)
		h.dropUp = func(*packet.Packet) bool { return rng.Float64() < lossRate }
		h.dropDown = func(int, *packet.Packet) bool { return rng.Float64() < lossRate }
		for iter := 0; iter < 3; iter++ {
			us := randUpdates(rng, 4, 512)
			checkEqual(t, h.aggregate(us), goldenSum(us))
		}
		if h.sw.Stats().IgnoredDuplicates == 0 && lossRate >= 0.1 {
			t.Errorf("loss %v: expected duplicate suppression activity", lossRate)
		}
	}
}

func TestE2ETargetedResultLoss(t *testing.T) {
	// Drop every first multicast result to worker 0: each slot's
	// result must be recovered via the shadow copy + unicast path.
	h := newHarness(t, 2, 2, 4, true)
	seen := map[uint64]bool{}
	h.dropDown = func(wid int, p *packet.Packet) bool {
		if wid == 0 && p.Kind == packet.KindResult && !seen[p.Off] {
			seen[p.Off] = true
			return true
		}
		return false
	}
	us := randUpdates(rand.New(rand.NewSource(4)), 2, 64)
	checkEqual(t, h.aggregate(us), goldenSum(us))
	if h.sw.Stats().ResultRetransmissions == 0 {
		t.Error("expected unicast result retransmissions")
	}
}

func TestE2ETargetedUpdateLoss(t *testing.T) {
	// Drop every first update from worker 1: recovered by worker-side
	// retransmission.
	h := newHarness(t, 2, 2, 4, true)
	seen := map[uint64]bool{}
	h.dropUp = func(p *packet.Packet) bool {
		if p.WorkerID == 1 && !seen[p.Off] {
			seen[p.Off] = true
			return true
		}
		return false
	}
	us := randUpdates(rand.New(rand.NewSource(5)), 2, 64)
	checkEqual(t, h.aggregate(us), goldenSum(us))
}

func TestE2EAppendixAScenario(t *testing.T) {
	// The exact event sequence of Appendix A with three workers and
	// one slot: w3's update lost upstream, spurious timeouts from w1
	// and w2, w1's result lost downstream, recovery via unicast, and
	// the phase flip confirming shadow-copy release.
	n, k := 3, 1
	sw, _ := NewSwitch(SwitchConfig{Workers: n, PoolSize: 1, SlotElems: k, LossRecovery: true})
	ws := make([]*Worker, n)
	var first [3]*packet.Packet
	for i := range ws {
		ws[i], _ = NewWorker(WorkerConfig{ID: uint16(i), Workers: n, PoolSize: 1, SlotElems: k, LossRecovery: true})
		// Each worker has a 2-chunk tensor so slot 0 is reused once.
		pkts := ws[i].Start([]int32{int32(i + 1), int32(10 * (i + 1))})
		first[i] = pkts[0]
	}
	// t0, t1: w1 and w2's updates arrive.
	if r := sw.Handle(first[0]); r.Pkt != nil {
		t.Fatal("t0: unexpected response")
	}
	if r := sw.Handle(first[1]); r.Pkt != nil {
		t.Fatal("t1: unexpected response")
	}
	// t2-t3: w3's update is lost upstream (never delivered).
	// t4, t5: w1 and w2 time out and retransmit; both ignored.
	if r := sw.Handle(ws[0].Retransmit(0)); r.Pkt != nil {
		t.Fatal("t4: retransmission not ignored")
	}
	if r := sw.Handle(ws[1].Retransmit(0)); r.Pkt != nil {
		t.Fatal("t5: retransmission not ignored")
	}
	// t6: w3 times out, retransmits; aggregation completes.
	r := sw.Handle(ws[2].Retransmit(0))
	if r.Pkt == nil || !r.Multicast {
		t.Fatal("t6: no multicast")
	}
	if r.Pkt.Vector[0] != 1+2+3 {
		t.Fatalf("t6: aggregate = %d, want 6", r.Pkt.Vector[0])
	}
	// t7: the copy to w1 is lost. t9, t10: w2 and w3 receive theirs
	// and send phase-1 updates (t12, t13).
	n2, _ := ws[1].HandleResult(r.Pkt.Clone())
	n3, _ := ws[2].HandleResult(r.Pkt.Clone())
	if n2 == nil || n2.Ver != 1 || n3 == nil || n3.Ver != 1 {
		t.Fatal("phase-1 updates missing or wrong version")
	}
	if rr := sw.Handle(n2); rr.Pkt != nil {
		t.Fatal("t12: unexpected response")
	}
	if rr := sw.Handle(n3); rr.Pkt != nil {
		t.Fatal("t13: unexpected response")
	}
	// t8: w1 retransmits phase-0; switch replies with unicast result.
	rt := ws[0].Retransmit(0)
	ur := sw.Handle(rt)
	if ur.Pkt == nil || ur.Multicast || ur.Pkt.Kind != packet.KindResultUnicast {
		t.Fatal("t8: no unicast result")
	}
	if ur.Pkt.Vector[0] != 6 {
		t.Fatalf("t8: unicast result = %d, want 6", ur.Pkt.Vector[0])
	}
	// t11/t14: w1 consumes the unicast result and sends its phase-1
	// update; t15: the slot completes and flips again.
	n1, _ := ws[0].HandleResult(ur.Pkt)
	if n1 == nil || n1.Ver != 1 {
		t.Fatal("t14: w1 phase-1 update missing")
	}
	fin := sw.Handle(n1)
	if fin.Pkt == nil || !fin.Multicast || fin.Pkt.Vector[0] != 10+20+30 {
		t.Fatalf("t15: final aggregate = %v, want 60", fin.Pkt)
	}
	for i, w := range ws {
		if _, done := w.HandleResult(fin.Pkt.Clone()); !done {
			t.Fatalf("worker %d not done", i)
		}
		checkEqual(t, w.Aggregate(), []int32{6, 60})
	}
}

func TestE2ERandomLossManyConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized test")
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		s := 1 + rng.Intn(8)
		k := 1 + rng.Intn(16)
		d := 1 + rng.Intn(700)
		loss := rng.Float64() * 0.3
		h := newHarness(t, n, s, k, true)
		h.dropUp = func(*packet.Packet) bool { return rng.Float64() < loss }
		h.dropDown = func(int, *packet.Packet) bool { return rng.Float64() < loss }
		us := randUpdates(rng, n, d)
		checkEqual(t, h.aggregate(us), goldenSum(us))
	}
}
