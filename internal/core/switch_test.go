package core

import (
	"testing"

	"switchml/internal/packet"
)

func newTestSwitch(t *testing.T, n, s, k int, recovery bool) *Switch {
	t.Helper()
	sw, err := NewSwitch(SwitchConfig{Workers: n, PoolSize: s, SlotElems: k, LossRecovery: recovery})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func upd(wid uint16, ver uint8, idx uint32, off uint64, vec ...int32) *packet.Packet {
	return packet.NewUpdate(wid, 0, ver, idx, off, vec)
}

func TestSwitchConfigValidation(t *testing.T) {
	bad := []SwitchConfig{
		{Workers: 0, PoolSize: 1, SlotElems: 1},
		{Workers: 1, PoolSize: 0, SlotElems: 1},
		{Workers: 1, PoolSize: 1, SlotElems: 0},
	}
	for _, cfg := range bad {
		if _, err := NewSwitch(cfg); err == nil {
			t.Errorf("NewSwitch(%+v) succeeded, want error", cfg)
		}
	}
}

func TestAlgorithm1BasicAggregation(t *testing.T) {
	// Algorithm 1: three workers aggregate one slot.
	sw := newTestSwitch(t, 3, 4, 2, false)
	if r := sw.Handle(upd(0, 0, 1, 2, 10, 20)); r.Pkt != nil {
		t.Fatal("premature response after first update")
	}
	if r := sw.Handle(upd(1, 0, 1, 2, 1, 2)); r.Pkt != nil {
		t.Fatal("premature response after second update")
	}
	r := sw.Handle(upd(2, 0, 1, 2, 100, 200))
	if r.Pkt == nil || !r.Multicast {
		t.Fatal("no multicast after final update")
	}
	if r.Pkt.Kind != packet.KindResult || r.Pkt.Idx != 1 || r.Pkt.Off != 2 {
		t.Errorf("result header = %v", r.Pkt)
	}
	if r.Pkt.Vector[0] != 111 || r.Pkt.Vector[1] != 222 {
		t.Errorf("aggregate = %v, want [111 222]", r.Pkt.Vector)
	}
	// The slot must be immediately reusable.
	sw.Handle(upd(0, 0, 1, 10, 5, 5))
	sw.Handle(upd(1, 0, 1, 10, 5, 5))
	r = sw.Handle(upd(2, 0, 1, 10, 5, 5))
	if r.Pkt == nil || r.Pkt.Vector[0] != 15 {
		t.Errorf("slot reuse failed: %v", r.Pkt)
	}
	if got := sw.Stats().Completions; got != 2 {
		t.Errorf("Completions = %d, want 2", got)
	}
}

func TestAlgorithm1RejectsVersion1(t *testing.T) {
	sw := newTestSwitch(t, 2, 1, 1, false)
	sw.Handle(upd(0, 1, 0, 0, 1))
	if sw.Stats().Rejected != 1 || sw.Stats().Updates != 0 {
		t.Errorf("stats = %+v, want ver=1 rejected", sw.Stats())
	}
}

func TestSwitchSanityChecks(t *testing.T) {
	sw := newTestSwitch(t, 2, 2, 4, true)
	cases := []*packet.Packet{
		{Kind: packet.KindResult, Vector: []int32{1}}, // wrong kind
		upd(7, 0, 0, 0, 1),                            // wid out of range
		upd(0, 0, 9, 0, 1),                            // idx out of range
		upd(0, 3, 0, 0, 1),                            // bad version
		upd(0, 0, 0, 0),                               // empty vector
		upd(0, 0, 0, 0, 1, 2, 3, 4, 5),                // oversized vector
		packet.NewUpdate(0, 9, 0, 0, 0, []int32{1}),   // wrong job
	}
	for i, p := range cases {
		if r := sw.Handle(p); r.Pkt != nil {
			t.Errorf("case %d: malformed packet produced a response", i)
		}
	}
	if got := sw.Stats().Rejected; got != uint64(len(cases)) {
		t.Errorf("Rejected = %d, want %d", got, len(cases))
	}
}

func TestAlgorithm3DuplicateUpdateIgnored(t *testing.T) {
	sw := newTestSwitch(t, 2, 2, 2, true)
	sw.Handle(upd(0, 0, 0, 0, 5, 5))
	// Worker 0 retransmits before the slot completes: must be ignored,
	// not double-applied (the t4/t5 events of Appendix A).
	if r := sw.Handle(upd(0, 0, 0, 0, 5, 5)); r.Pkt != nil {
		t.Fatal("duplicate produced a response while aggregating")
	}
	if sw.Stats().IgnoredDuplicates != 1 {
		t.Errorf("IgnoredDuplicates = %d, want 1", sw.Stats().IgnoredDuplicates)
	}
	r := sw.Handle(upd(1, 0, 0, 0, 3, 3))
	if r.Pkt == nil || r.Pkt.Vector[0] != 8 || r.Pkt.Vector[1] != 8 {
		t.Fatalf("aggregate = %v, want [8 8] (duplicate not applied twice)", r.Pkt)
	}
}

func TestAlgorithm3ResultRetransmission(t *testing.T) {
	// After completion, a retransmitted update gets a unicast copy of
	// the retained result (Appendix A, t8).
	sw := newTestSwitch(t, 2, 2, 2, true)
	sw.Handle(upd(0, 0, 1, 4, 1, 2))
	r := sw.Handle(upd(1, 0, 1, 4, 10, 20))
	if r.Pkt == nil || !r.Multicast {
		t.Fatal("no completion")
	}
	rr := sw.Handle(upd(0, 0, 1, 4, 1, 2))
	if rr.Pkt == nil || rr.Multicast {
		t.Fatal("retransmission after completion did not yield unicast")
	}
	if rr.Pkt.Kind != packet.KindResultUnicast || rr.Pkt.WorkerID != 0 {
		t.Errorf("unicast header = %v", rr.Pkt)
	}
	if rr.Pkt.Off != 4 || rr.Pkt.Vector[0] != 11 || rr.Pkt.Vector[1] != 22 {
		t.Errorf("unicast result = %v, want off=4 [11 22]", rr.Pkt)
	}
	if sw.Stats().ResultRetransmissions != 1 {
		t.Errorf("ResultRetransmissions = %d, want 1", sw.Stats().ResultRetransmissions)
	}
}

func TestAlgorithm3ShadowCopySurvivesNextPhase(t *testing.T) {
	// The completed ver-0 result must remain retrievable while the
	// slot aggregates ver 1, the core shadow-copy property (§3.5).
	sw := newTestSwitch(t, 2, 1, 1, true)
	sw.Handle(upd(0, 0, 0, 0, 1))
	sw.Handle(upd(1, 0, 0, 0, 2)) // ver 0 completes: aggregate 3.
	// Worker 1 moves on to ver 1; worker 0's result was lost.
	sw.Handle(upd(1, 1, 0, 1, 20))
	// Worker 0 retransmits ver 0 and must get the old result back.
	r := sw.Handle(upd(0, 0, 0, 0, 1))
	if r.Pkt == nil || r.Multicast || r.Pkt.Vector[0] != 3 || r.Pkt.Off != 0 {
		t.Fatalf("shadow copy lost: %v", r.Pkt)
	}
	// Now worker 0 advances to ver 1 and the slot completes normally.
	out := sw.Handle(upd(0, 1, 0, 1, 10))
	if out.Pkt == nil || !out.Multicast || out.Pkt.Vector[0] != 30 {
		t.Fatalf("phase 1 aggregate = %v, want 30", out.Pkt)
	}
}

func TestAlgorithm3SeenBitsFlipAcrossPhases(t *testing.T) {
	// Contributing to version v clears the worker's seen bit in
	// version 1-v (Algorithm 3 line 7), so a third phase reusing
	// version 0 starts clean.
	sw := newTestSwitch(t, 2, 1, 1, true)
	for phase := 0; phase < 6; phase++ {
		ver := uint8(phase % 2)
		off := uint64(phase)
		sw.Handle(upd(0, ver, 0, off, 1))
		r := sw.Handle(upd(1, ver, 0, off, 1))
		if r.Pkt == nil || r.Pkt.Vector[0] != 2 {
			t.Fatalf("phase %d aggregate = %v, want 2", phase, r.Pkt)
		}
	}
}

func TestSwitchInconsistentChunkRejected(t *testing.T) {
	sw := newTestSwitch(t, 2, 1, 4, true)
	sw.Handle(upd(0, 0, 0, 0, 1, 2, 3))
	// Worker 1 sends a different length for the same slot: dropped.
	if r := sw.Handle(upd(1, 0, 0, 0, 9)); r.Pkt != nil {
		t.Fatal("inconsistent chunk length accepted")
	}
	// And a mismatched offset: dropped.
	if r := sw.Handle(upd(1, 0, 0, 77, 9, 9, 9)); r.Pkt != nil {
		t.Fatal("inconsistent offset accepted")
	}
	// A consistent chunk still completes and the bad ones left no
	// trace.
	r := sw.Handle(upd(1, 0, 0, 0, 10, 10, 10))
	if r.Pkt == nil || r.Pkt.Vector[0] != 11 || r.Pkt.Vector[2] != 13 {
		t.Fatalf("aggregate = %v", r.Pkt)
	}
	// The rejected worker must be able to contribute to the next
	// phase (its seen bit was restored correctly).
	sw.Handle(upd(0, 1, 0, 4, 1, 1, 1))
	r = sw.Handle(upd(1, 1, 0, 4, 2, 2, 2))
	if r.Pkt == nil || r.Pkt.Vector[0] != 3 {
		t.Fatalf("next phase aggregate = %v", r.Pkt)
	}
}

func TestSwitchMemoryBytes(t *testing.T) {
	// The paper's 10 Gbps deployment: s=128, k=32 occupies 32 KB of
	// vector register space per pool version (§3.6).
	sw := newTestSwitch(t, 8, 128, 32, true)
	vectors := 2 * 128 * 32 * 4
	if got := sw.MemoryBytes(); got < vectors {
		t.Errorf("MemoryBytes = %d, want >= %d", got, vectors)
	}
	// And within 20% of the vector-only accounting (bitmaps and
	// counters are small).
	if got := sw.MemoryBytes(); float64(got) > 1.2*float64(vectors) {
		t.Errorf("MemoryBytes = %d, overhead too large vs %d", got, vectors)
	}
	// Algorithm 1 needs half the vector memory.
	sw1 := newTestSwitch(t, 8, 128, 32, false)
	if sw1.MemoryBytes() >= sw.MemoryBytes() {
		t.Error("Algorithm 1 should use less memory than Algorithm 3")
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		if b.get(i) {
			t.Errorf("bit %d set initially", i)
		}
		b.set(i)
		if !b.get(i) {
			t.Errorf("bit %d not set after set", i)
		}
	}
	b.clear(64)
	if b.get(64) || !b.get(63) || !b.get(129) {
		t.Error("clear(64) affected wrong bits")
	}
}

func TestSwitchResetEnablesJobRestart(t *testing.T) {
	// A job dies mid-stream after several phases; without Reset, a
	// restarted job's offset-0 packets are (correctly) rejected as
	// stale by the monotonic-offset hardening. Reset clears the way.
	sw := newTestSwitch(t, 2, 1, 1, true)
	for phase := 0; phase < 4; phase++ {
		sw.Handle(upd(0, uint8(phase%2), 0, uint64(phase*100), 1))
		sw.Handle(upd(1, uint8(phase%2), 0, uint64(phase*100), 1))
	}
	// Restart without reset: rejected.
	if r := sw.Handle(upd(0, 0, 0, 0, 5)); r.Pkt != nil {
		t.Fatal("restart packet produced a response against stale state")
	}
	if sw.Stats().StaleUpdates == 0 {
		t.Fatal("stale rejection not recorded")
	}
	sw.Reset()
	sw.Handle(upd(0, 0, 0, 0, 5))
	r := sw.Handle(upd(1, 0, 0, 0, 7))
	if r.Pkt == nil || r.Pkt.Vector[0] != 12 {
		t.Fatalf("post-reset aggregate = %v, want 12", r.Pkt)
	}
}

func TestSwitchConfigAccessorAndDebugSlot(t *testing.T) {
	sw := newTestSwitch(t, 3, 4, 2, true)
	if got := sw.Config(); got.Workers != 3 || got.PoolSize != 4 {
		t.Errorf("Config = %+v", got)
	}
	sw.Handle(upd(1, 0, 2, 8, 5, 6))
	count, off, elems, seen := sw.DebugSlot(0, 2)
	if count != 1 || off != 8 || elems != 2 || seen != 1<<1 {
		t.Errorf("DebugSlot = (%d,%d,%d,%b)", count, off, elems, seen)
	}
}

func TestAlgorithm1InconsistentChunk(t *testing.T) {
	sw := newTestSwitch(t, 2, 1, 4, false)
	sw.Handle(upd(0, 0, 0, 0, 1, 2))
	if r := sw.Handle(upd(1, 0, 0, 99, 1, 2)); r.Pkt != nil {
		t.Error("mismatched offset accepted by Algorithm 1")
	}
	r := sw.Handle(upd(1, 0, 0, 0, 10, 20))
	if r.Pkt == nil || r.Pkt.Vector[0] != 11 {
		t.Fatalf("aggregate = %v", r.Pkt)
	}
}
