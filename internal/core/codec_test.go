package core

import (
	"math"
	"math/rand"
	"testing"

	"switchml/internal/packet"
	"switchml/internal/quant"
)

func TestPackUnpackHalves(t *testing.T) {
	lo := quant.Float16FromFloat32(1.5)
	hi := quant.Float16FromFloat32(-3.25)
	w := PackHalves(lo, hi)
	gotLo, gotHi := UnpackHalves(w)
	if gotLo != lo || gotHi != hi {
		t.Errorf("round trip: got (%#x,%#x), want (%#x,%#x)", gotLo, gotHi, lo, hi)
	}
}

func TestPackedHalfCodecValidation(t *testing.T) {
	if _, err := NewPackedHalfCodec(0); err == nil {
		t.Error("zero factor accepted")
	}
	c, err := NewPackedHalfCodec(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ratio() != 2 || c.Factor() != 1<<16 {
		t.Errorf("Ratio=%d Factor=%v", c.Ratio(), c.Factor())
	}
}

func TestPackedHalfCodecIngressEgress(t *testing.T) {
	c, _ := NewPackedHalfCodec(1 << 16)
	wire := []int32{PackHalves(quant.Float16FromFloat32(1.5), quant.Float16FromFloat32(2.5))}
	acc := make([]int32, 2)
	c.Ingress(acc, wire)
	if acc[0] != 3<<15 || acc[1] != 5<<15 {
		t.Errorf("ingress = %v, want [%d %d]", acc, 3<<15, 5<<15)
	}
	out := make([]int32, 1)
	c.Egress(out, acc)
	lo, hi := UnpackHalves(out[0])
	if lo.Float32() != 1.5 || hi.Float32() != 2.5 {
		t.Errorf("egress = (%v,%v), want (1.5,2.5)", lo.Float32(), hi.Float32())
	}
}

func TestPackedHalfCodecSaturation(t *testing.T) {
	c, _ := NewPackedHalfCodec(1e9)
	wire := []int32{PackHalves(quant.Float16FromFloat32(100), quant.Float16FromFloat32(-100))}
	acc := make([]int32, 2)
	c.Ingress(acc, wire)
	if acc[0] != math.MaxInt32 || acc[1] != math.MinInt32 {
		t.Errorf("saturation = %v", acc)
	}
}

func TestSwitchWithPackedHalfCodec(t *testing.T) {
	// End-to-end aggregation through a float16 switch: two workers,
	// values aggregated as fixed point internally, results returned
	// as packed halves.
	codec, err := NewPackedHalfCodec(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitch(SwitchConfig{
		Workers: 2, PoolSize: 2, SlotElems: 4, LossRecovery: true, Codec: codec,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(wid uint16, vals ...float32) *packet.Packet {
		wire := make([]int32, len(vals)/2)
		for i := range wire {
			wire[i] = PackHalves(quant.Float16FromFloat32(vals[2*i]), quant.Float16FromFloat32(vals[2*i+1]))
		}
		return packet.NewUpdate(wid, 0, 0, 0, 0, wire)
	}
	sw.Handle(mk(0, 1.5, 2.5, -1, 0.125))
	r := sw.Handle(mk(1, 0.5, 0.5, 3, 0.375))
	if r.Pkt == nil || !r.Multicast {
		t.Fatal("no completion")
	}
	want := []float32{2, 3, 2, 0.5}
	for i, v := range r.Pkt.Vector {
		lo, hi := UnpackHalves(v)
		if lo.Float32() != want[2*i] || hi.Float32() != want[2*i+1] {
			t.Errorf("result[%d] = (%v,%v), want (%v,%v)", i, lo.Float32(), hi.Float32(), want[2*i], want[2*i+1])
		}
	}
	// The shadow copy must serve codec-encoded retransmissions too.
	rr := sw.Handle(mk(0, 1.5, 2.5, -1, 0.125))
	if rr.Pkt == nil || rr.Multicast {
		t.Fatal("no unicast reply")
	}
	lo, _ := UnpackHalves(rr.Pkt.Vector[0])
	if lo.Float32() != 2 {
		t.Errorf("retransmitted result = %v, want 2", lo.Float32())
	}
}

func TestCodecSwitchMemoryDoubles(t *testing.T) {
	codec, _ := NewPackedHalfCodec(1 << 16)
	plain, _ := NewSwitch(SwitchConfig{Workers: 2, PoolSize: 8, SlotElems: 32, LossRecovery: true})
	packed, _ := NewSwitch(SwitchConfig{Workers: 2, PoolSize: 8, SlotElems: 32, LossRecovery: true, Codec: codec})
	if packed.MemoryBytes() <= plain.MemoryBytes() {
		t.Errorf("packed-half switch memory %d should exceed plain %d (more accumulators per packet, §3.7)",
			packed.MemoryBytes(), plain.MemoryBytes())
	}
}

func TestE2EPackedHalfUnderLoss(t *testing.T) {
	// The full harness with the codec and random loss: workers pack
	// float values, the switch aggregates fixed-point internally, and
	// every worker converges to the same half-precision aggregate.
	codec, err := NewPackedHalfCodec(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	n, s, k, d := 3, 2, 4, 128
	sw, err := NewSwitch(SwitchConfig{Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true, Codec: codec})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		t: t, sw: sw, done: make([]bool, n),
		dropUp:   func(*packet.Packet) bool { return rng.Float64() < 0.1 },
		dropDown: func(int, *packet.Packet) bool { return rng.Float64() < 0.1 },
	}
	floats := make([][]float32, n)
	exact := make([]float64, d)
	us := make([][]int32, n)
	for i := range floats {
		floats[i] = make([]float32, d)
		us[i] = make([]int32, d/2)
		for j := range floats[i] {
			floats[i][j] = float32(rng.Intn(64)) * 0.25
			exact[j] += float64(floats[i][j])
		}
		for j := range us[i] {
			us[i][j] = PackHalves(
				quant.Float16FromFloat32(floats[i][2*j]),
				quant.Float16FromFloat32(floats[i][2*j+1]))
		}
		w, err := NewWorker(WorkerConfig{ID: uint16(i), Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true})
		if err != nil {
			t.Fatal(err)
		}
		h.workers = append(h.workers, w)
	}
	got := h.aggregate(us)
	for j, v := range got {
		lo, hi := UnpackHalves(v)
		for half, f := range []float32{lo.Float32(), hi.Float32()} {
			idx := 2*j + half
			tol := math.Abs(exact[idx])/1024 + float64(n)/(1<<16) + 1e-3
			if err := math.Abs(float64(f) - exact[idx]); err > tol {
				t.Fatalf("element %d: got %v want %v (tol %v)", idx, f, exact[idx], tol)
			}
		}
	}
}

func TestCodecLengthPanics(t *testing.T) {
	c, _ := NewPackedHalfCodec(100)
	for name, fn := range map[string]func(){
		"ingress": func() { c.Ingress(make([]int32, 3), make([]int32, 2)) },
		"egress":  func() { c.Egress(make([]int32, 2), make([]int32, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s length mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}
