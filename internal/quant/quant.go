// Package quant implements the numerical representations SwitchML
// uses to aggregate floating-point gradients on an integer-only
// switch dataplane (paper §3.7 and Appendix C).
//
// Two representations are provided:
//
//   - 32-bit fixed point: workers multiply each gradient by a scaling
//     factor f, round to int32, aggregate integers in the switch, and
//     divide the aggregate by f on receipt. For a suitable f this is
//     essentially lossless (Appendix C, Theorems 1 and 2).
//   - 16-bit floating point: workers convert float32 gradients to
//     IEEE 754 half precision; the switch converts halves to 32-bit
//     fixed point internally (emulating the Tofino lookup-table
//     implementation), aggregates, and converts back. This halves the
//     bytes on the wire at the cost of precision.
//
// The package also provides the scaling-factor profiling procedure
// from Appendix C: observe the maximum gradient magnitude over the
// first iterations and choose f so the largest aggregate remains
// representable.
package quant

import (
	"errors"
	"fmt"
	"math"
)

// MaxInt31 is the largest magnitude the paper allows a scaled value or
// aggregate to take (Appendix C uses the bound 2^31).
const MaxInt31 = float64(1 << 31)

// ErrOverflow reports that a scaled gradient (Assumption 1) or an
// aggregate (Assumption 2) would exceed the representable range.
var ErrOverflow = errors.New("quant: scaled value overflows int32 range")

// FixedPoint converts between float32 vectors and scaled int32
// vectors. It is safe for concurrent use; all state is immutable.
type FixedPoint struct {
	f float64
}

// NewFixedPoint returns a converter with scaling factor f. The factor
// must be positive and finite.
func NewFixedPoint(f float64) (*FixedPoint, error) {
	if !(f > 0) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("quant: scaling factor must be positive and finite, got %v", f)
	}
	return &FixedPoint{f: f}, nil
}

// Factor returns the scaling factor f.
func (q *FixedPoint) Factor() float64 { return q.f }

// Quantize writes round(f*src[i]) into dst and reports how many
// elements saturated. dst and src must have equal length. Values whose
// scaled magnitude exceeds the int32 range are clamped, mirroring the
// saturating arithmetic of real dataplanes; a non-zero saturation
// count signals the caller chose f too large (Assumption 1 violated).
func (q *FixedPoint) Quantize(dst []int32, src []float32) (saturated int) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("quant: Quantize length mismatch %d != %d", len(dst), len(src)))
	}
	for i, v := range src {
		s := math.RoundToEven(float64(v) * q.f)
		switch {
		case s > math.MaxInt32:
			dst[i] = math.MaxInt32
			saturated++
		case s < math.MinInt32:
			dst[i] = math.MinInt32
			saturated++
		default:
			dst[i] = int32(s)
		}
	}
	return saturated
}

// Dequantize writes src[i]/f into dst. dst and src must have equal
// length.
func (q *FixedPoint) Dequantize(dst []float32, src []int32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("quant: Dequantize length mismatch %d != %d", len(dst), len(src)))
	}
	inv := 1 / q.f
	for i, v := range src {
		dst[i] = float32(float64(v) * inv)
	}
}

// ErrorBound returns the worst-case difference between the exact
// float aggregation across n workers and the fixed-point aggregate,
// per Theorem 1 (Appendix C): n/f.
func (q *FixedPoint) ErrorBound(n int) float64 {
	return float64(n) / q.f
}

// MaxSafeFactor returns the largest scaling factor guaranteed not to
// overflow when n workers aggregate gradients bounded by |Δ| ≤ B, per
// Theorem 2 (Appendix C): f ≤ (2^31 − n) / (n·B).
func MaxSafeFactor(n int, bound float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("quant: worker count must be positive, got %d", n)
	}
	if !(bound > 0) {
		return 0, fmt.Errorf("quant: gradient bound must be positive, got %v", bound)
	}
	f := (MaxInt31 - float64(n)) / (float64(n) * bound)
	if !(f > 0) {
		return 0, ErrOverflow
	}
	return f, nil
}

// Profiler implements the scaling-factor selection procedure of
// Appendix C: it records the maximum absolute gradient value observed
// during the first iterations of training, from which a safe factor
// can be derived. The zero value is ready to use.
type Profiler struct {
	maxAbs float64
	seen   int
}

// Observe folds a gradient vector into the profile.
func (p *Profiler) Observe(grad []float32) {
	for _, v := range grad {
		a := math.Abs(float64(v))
		if a > p.maxAbs {
			p.maxAbs = a
		}
	}
	p.seen += len(grad)
}

// MaxAbs returns the largest gradient magnitude observed so far.
func (p *Profiler) MaxAbs() float64 { return p.maxAbs }

// Elements returns how many gradient elements have been observed.
func (p *Profiler) Elements() int { return p.seen }

// Factor derives the recommended scaling factor for n workers from
// the observed maximum, applying the given safety headroom (e.g. 2.0
// leaves a 2x margin for gradients larger than any yet observed). It
// returns an error if nothing has been observed or all observations
// were zero.
func (p *Profiler) Factor(n int, headroom float64) (float64, error) {
	if p.seen == 0 || p.maxAbs == 0 {
		return 0, errors.New("quant: profiler has no non-zero observations")
	}
	if headroom < 1 {
		return 0, fmt.Errorf("quant: headroom must be >= 1, got %v", headroom)
	}
	return MaxSafeFactor(n, p.maxAbs*headroom)
}
