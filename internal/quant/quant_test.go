package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFixedPointValidation(t *testing.T) {
	for _, f := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewFixedPoint(f); err == nil {
			t.Errorf("NewFixedPoint(%v) succeeded, want error", f)
		}
	}
	if _, err := NewFixedPoint(100); err != nil {
		t.Errorf("NewFixedPoint(100): %v", err)
	}
}

func TestQuantizeDequantizeExact(t *testing.T) {
	// Appendix C's first example: f=100 makes 1.56 and 4.23 exact.
	q, err := NewFixedPoint(100)
	if err != nil {
		t.Fatal(err)
	}
	src := []float32{1.56, 4.23}
	dst := make([]int32, 2)
	if sat := q.Quantize(dst, src); sat != 0 {
		t.Fatalf("unexpected saturation: %d", sat)
	}
	if dst[0] != 156 || dst[1] != 423 {
		t.Fatalf("Quantize = %v, want [156 423]", dst)
	}
	sum := []int32{dst[0] + dst[1]}
	out := make([]float32, 1)
	q.Dequantize(out, sum)
	if math.Abs(float64(out[0])-5.79) > 1e-6 {
		t.Errorf("aggregate = %v, want 5.79", out[0])
	}
}

func TestQuantizeRoundingError(t *testing.T) {
	// Appendix C's second example: f=10 loses precision but the error
	// stays within Theorem 1's bound of n/f.
	q, _ := NewFixedPoint(10)
	src1, src2 := []float32{1.56}, []float32{4.23}
	d1, d2 := make([]int32, 1), make([]int32, 1)
	q.Quantize(d1, src1)
	q.Quantize(d2, src2)
	if d1[0] != 16 || d2[0] != 42 {
		t.Fatalf("quantized = %d,%d want 16,42", d1[0], d2[0])
	}
	out := make([]float32, 1)
	q.Dequantize(out, []int32{d1[0] + d2[0]})
	exact := 1.56 + 4.23
	if err := math.Abs(float64(out[0]) - exact); err > q.ErrorBound(2) {
		t.Errorf("error %v exceeds Theorem 1 bound %v", err, q.ErrorBound(2))
	}
}

func TestTheorem1BoundProperty(t *testing.T) {
	// For random vectors and factors, the fixed-point aggregate of n
	// workers differs from the exact sum by at most n/f per element.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		f := math.Pow(10, 1+rng.Float64()*4)
		q, err := NewFixedPoint(f)
		if err != nil {
			t.Fatal(err)
		}
		d := 1 + rng.Intn(64)
		exact := make([]float64, d)
		agg := make([]int32, d)
		for w := 0; w < n; w++ {
			grad := make([]float32, d)
			for i := range grad {
				grad[i] = (rng.Float32() - 0.5) * 20
				exact[i] += float64(grad[i])
			}
			qv := make([]int32, d)
			if sat := q.Quantize(qv, grad); sat != 0 {
				t.Fatalf("unexpected saturation with f=%v", f)
			}
			for i := range agg {
				agg[i] += qv[i]
			}
		}
		out := make([]float32, d)
		q.Dequantize(out, agg)
		bound := q.ErrorBound(n)
		for i := range out {
			if err := math.Abs(float64(out[i]) - exact[i]); err > bound+1e-9 {
				t.Fatalf("trial %d: error %v exceeds bound %v (n=%d f=%v)", trial, err, bound, n, f)
			}
		}
	}
}

func TestQuantizeSaturates(t *testing.T) {
	q, _ := NewFixedPoint(1e9)
	dst := make([]int32, 2)
	if sat := q.Quantize(dst, []float32{10, -10}); sat != 2 {
		t.Fatalf("saturated = %d, want 2", sat)
	}
	if dst[0] != math.MaxInt32 || dst[1] != math.MinInt32 {
		t.Errorf("saturated values = %v", dst)
	}
}

func TestQuantizeLengthMismatchPanics(t *testing.T) {
	q, _ := NewFixedPoint(1)
	defer func() {
		if recover() == nil {
			t.Error("Quantize length mismatch did not panic")
		}
	}()
	q.Quantize(make([]int32, 1), make([]float32, 2))
}

func TestMaxSafeFactor(t *testing.T) {
	// Theorem 2: with n workers and bound B, f = (2^31-n)/(nB) never
	// overflows the aggregate.
	n, bound := 8, 29.24 // GoogLeNet's observed max gradient (Fig. 10).
	f, err := MaxSafeFactor(n, bound)
	if err != nil {
		t.Fatal(err)
	}
	// Worst case: every worker contributes round(f*B) <= f*B+1.
	worst := float64(n) * (f*bound + 1)
	if worst > MaxInt31 {
		t.Errorf("worst-case aggregate %v exceeds 2^31", worst)
	}
	// The factor should be close to, but not above, 2^31/(n*B).
	if f > MaxInt31/(float64(n)*bound) {
		t.Errorf("factor %v too large", f)
	}
}

func TestMaxSafeFactorValidation(t *testing.T) {
	if _, err := MaxSafeFactor(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := MaxSafeFactor(8, 0); err == nil {
		t.Error("bound=0 accepted")
	}
	if _, err := MaxSafeFactor(8, -3); err == nil {
		t.Error("negative bound accepted")
	}
}

func TestProfiler(t *testing.T) {
	var p Profiler
	if _, err := p.Factor(8, 2); err == nil {
		t.Error("empty profiler produced a factor")
	}
	p.Observe([]float32{0.5, -29.24, 3})
	p.Observe([]float32{1, 2})
	if got := p.MaxAbs(); math.Abs(got-29.24) > 1e-6 {
		t.Errorf("MaxAbs = %v, want 29.24", got)
	}
	if got := p.Elements(); got != 5 {
		t.Errorf("Elements = %d, want 5", got)
	}
	f, err := p.Factor(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MaxSafeFactor(8, 29.24*2)
	if math.Abs(f-want) > 1e-6*want {
		t.Errorf("Factor = %v, want %v", f, want)
	}
	if _, err := p.Factor(8, 0.5); err == nil {
		t.Error("headroom < 1 accepted")
	}
}

func TestDequantizeRoundTripQuick(t *testing.T) {
	q, _ := NewFixedPoint(1 << 16)
	f := func(vals []int16) bool {
		// int16 inputs scaled down are exactly representable at
		// f = 2^16, so the round trip must be exact.
		src := make([]float32, len(vals))
		for i, v := range vals {
			src[i] = float32(v) / (1 << 16)
		}
		qv := make([]int32, len(src))
		if q.Quantize(qv, src) != 0 {
			return false
		}
		out := make([]float32, len(src))
		q.Dequantize(out, qv)
		for i := range out {
			if out[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
