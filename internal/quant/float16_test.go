package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFloat16KnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits Float16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},                 // Largest finite half.
		{5.9604644775390625e-8, 1},      // Smallest positive subnormal.
		{6.097555160522461e-05, 0x03FF}, // Largest subnormal.
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
	}
	for _, c := range cases {
		if got := Float16FromFloat32(c.f); got != c.bits {
			t.Errorf("Float16FromFloat32(%v) = %#06x, want %#06x", c.f, got, c.bits)
		}
		if got := c.bits.Float32(); got != c.f {
			t.Errorf("Float16(%#06x).Float32() = %v, want %v", c.bits, got, c.f)
		}
	}
}

func TestFloat16Overflow(t *testing.T) {
	if got := Float16FromFloat32(1e6); !got.IsInf() || got&f16SignMask != 0 {
		t.Errorf("1e6 -> %#06x, want +Inf", got)
	}
	if got := Float16FromFloat32(-1e6); !got.IsInf() || got&f16SignMask == 0 {
		t.Errorf("-1e6 -> %#06x, want -Inf", got)
	}
}

func TestFloat16Underflow(t *testing.T) {
	if got := Float16FromFloat32(1e-10); got != 0 {
		t.Errorf("1e-10 -> %#06x, want +0", got)
	}
	if got := Float16FromFloat32(-1e-10); got != 0x8000 {
		t.Errorf("-1e-10 -> %#06x, want -0", got)
	}
}

func TestFloat16NaN(t *testing.T) {
	h := Float16FromFloat32(float32(math.NaN()))
	if !h.IsNaN() {
		t.Errorf("NaN -> %#06x, not a half NaN", h)
	}
	if f := h.Float32(); !math.IsNaN(float64(f)) {
		t.Errorf("half NaN -> %v, want NaN", f)
	}
}

func TestFloat16RoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and the next half
	// (1 + 2^-10); RNE rounds to the even significand, i.e. 1.
	halfway := float32(1) + float32(1)/2048
	if got := Float16FromFloat32(halfway); got != 0x3C00 {
		t.Errorf("halfway rounds to %#06x, want 0x3C00 (even)", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; RNE rounds up
	// to the even significand 1+2^-9.
	halfway2 := float32(1) + 3*float32(1)/2048
	if got := Float16FromFloat32(halfway2); got != 0x3C02 {
		t.Errorf("halfway2 rounds to %#06x, want 0x3C02", got)
	}
}

func TestFloat16ExhaustiveRoundTrip(t *testing.T) {
	// Every half value (including subnormals) must survive the trip
	// through float32 and back bit-exactly. NaNs compare by class.
	for bits := 0; bits < 1<<16; bits++ {
		h := Float16(bits)
		f := h.Float32()
		back := Float16FromFloat32(f)
		if h.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("NaN %#06x round-tripped to %#06x", bits, back)
			}
			continue
		}
		if back != h {
			t.Fatalf("half %#06x -> %v -> %#06x", bits, f, back)
		}
	}
}

func TestFloat16MonotonicQuick(t *testing.T) {
	// Conversion must be monotone: a <= b implies half(a) <= half(b)
	// as real numbers (for finite, non-NaN inputs within range).
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		ha, hb := Float16FromFloat32(a).Float32(), Float16FromFloat32(b).Float32()
		return ha <= hb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFloat16RelativeError(t *testing.T) {
	// For values in the normal half range, relative rounding error is
	// at most 2^-11.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		v := float32(math.Pow(2, -14+rng.Float64()*29)) // [2^-14, 2^15)
		if rng.Intn(2) == 0 {
			v = -v
		}
		got := Float16FromFloat32(v).Float32()
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		if rel > 1.0/2048 {
			t.Fatalf("relative error for %v is %v", v, rel)
		}
	}
}

func TestHalf16Pipeline(t *testing.T) {
	// End-to-end: encode on workers, ingest+aggregate+egress in the
	// switch, decode on workers. With two workers contributing 1.5 and
	// 2.5, the aggregate must be 4 (exactly representable).
	h, err := NewHalf16(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	w1, w2 := []float32{1.5}, []float32{2.5}
	wire1, wire2 := make([]int32, 1), make([]int32, 1)
	h.EncodeWire(wire1, w1)
	h.EncodeWire(wire2, w2)
	fx1, fx2 := make([]int32, 1), make([]int32, 1)
	if h.SwitchIngest(fx1, wire1) != 0 || h.SwitchIngest(fx2, wire2) != 0 {
		t.Fatal("unexpected saturation")
	}
	agg := []int32{fx1[0] + fx2[0]}
	out := make([]int32, 1)
	h.SwitchEgress(out, agg)
	res := make([]float32, 1)
	h.DecodeWire(res, out)
	if res[0] != 4 {
		t.Errorf("aggregate = %v, want 4", res[0])
	}
}

func TestHalf16PipelineApproximation(t *testing.T) {
	// Random gradients through the half pipeline stay within the
	// combined half-precision + fixed-point error envelope.
	h, err := NewHalf16(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const n, d = 4, 256
	exact := make([]float64, d)
	agg := make([]int32, d)
	for w := 0; w < n; w++ {
		grad := make([]float32, d)
		for i := range grad {
			grad[i] = (rng.Float32() - 0.5) * 8
		}
		wire := make([]int32, d)
		h.EncodeWire(wire, grad)
		// The exact reference uses the half-rounded values, since
		// half-precision loss happens before the network.
		for i := range grad {
			exact[i] += float64(Float16(uint16(wire[i])).Float32())
		}
		fx := make([]int32, d)
		if h.SwitchIngest(fx, wire) != 0 {
			t.Fatal("saturated")
		}
		for i := range agg {
			agg[i] += fx[i]
		}
	}
	out := make([]int32, d)
	h.SwitchEgress(out, agg)
	res := make([]float32, d)
	h.DecodeWire(res, out)
	for i := range res {
		// Egress re-rounds to half, so tolerance is half-precision ULP
		// of the aggregate plus the fixed-point bound n/f.
		tol := math.Abs(exact[i])/1024 + float64(n)/(1<<16) + 1e-3
		if err := math.Abs(float64(res[i]) - exact[i]); err > tol {
			t.Fatalf("element %d: error %v exceeds tolerance %v", i, err, tol)
		}
	}
}

func TestNewHalf16Validation(t *testing.T) {
	if _, err := NewHalf16(0); err == nil {
		t.Error("NewHalf16(0) accepted")
	}
}

func TestHalf16Accessors(t *testing.T) {
	h, err := NewHalf16(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	if h.Factor() != 1<<12 {
		t.Errorf("Factor = %v", h.Factor())
	}
	// Saturation path in SwitchIngest.
	wire := make([]int32, 1)
	h2, _ := NewHalf16(1e9)
	h2.EncodeWire(wire, []float32{1000})
	fx := make([]int32, 1)
	if sat := h2.SwitchIngest(fx, wire); sat != 1 {
		t.Errorf("saturated = %d, want 1", sat)
	}
	// Length mismatch panics.
	for name, fn := range map[string]func(){
		"encode":  func() { h.EncodeWire(make([]int32, 1), make([]float32, 2)) },
		"ingest":  func() { h.SwitchIngest(make([]int32, 1), make([]int32, 2)) },
		"egress":  func() { h.SwitchEgress(make([]int32, 1), make([]int32, 2)) },
		"decode":  func() { h.DecodeWire(make([]float32, 1), make([]int32, 2)) },
		"dequant": func() { fxp, _ := NewFixedPoint(1); fxp.Dequantize(make([]float32, 1), make([]int32, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}
