package quant

import "math"

// Float16 is an IEEE 754 binary16 value stored in its raw bit pattern.
// The switch-side float16 pipeline (paper §3.7, Appendix C: "it turns
// out to be possible to implement 16-bit floating point conversion on
// a Barefoot Network's Tofino chip using lookup tables") is emulated
// by converting halves to 32-bit fixed point at the switch ingress and
// back at egress.
type Float16 uint16

const (
	f16SignMask  = 0x8000
	f16ExpMask   = 0x7C00
	f16FracMask  = 0x03FF
	f16ExpBias   = 15
	f32ExpBias   = 127
	f16MaxFinite = 65504.0
)

// Float16FromFloat32 converts a float32 to the nearest half-precision
// value using round-to-nearest-even, with overflow to infinity and
// gradual underflow to subnormals, matching IEEE 754 semantics.
func Float16FromFloat32(f float32) Float16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & f16SignMask
	exp := int32(bits>>23) & 0xFF
	frac := bits & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN.
		if frac != 0 {
			// NaN: preserve a quiet NaN payload bit.
			return Float16(sign | f16ExpMask | 0x0200)
		}
		return Float16(sign | f16ExpMask)
	case exp == 0 && frac == 0: // Signed zero.
		return Float16(sign)
	}

	// Unbiased exponent of the float32 value.
	e := exp - f32ExpBias
	switch {
	case e > 15: // Overflow: round to infinity.
		return Float16(sign | f16ExpMask)
	case e >= -14: // Normal half range.
		// 23-bit fraction to 10-bit fraction with RNE.
		halfExp := uint16(e+f16ExpBias) << 10
		return Float16(sign | roundFrac(uint32(halfExp)|frac>>13, frac&0x1FFF, 0x1000))
	case e >= -25: // Subnormal half range (incl. rounding into it).
		// A subnormal half encodes round(v * 2^24). The float32
		// significand m = 1.frac scaled to 24 bits represents
		// v * 2^(23-e), so the target is m >> (-e-1) with RNE.
		m := frac | 0x800000 // 24-bit significand.
		shift := uint32(-e - 1)
		kept := m >> shift
		rem := m & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		return Float16(sign | roundFrac(kept, rem, half))
	default: // Underflow to zero.
		return Float16(sign)
	}
}

// roundFrac applies round-to-nearest-even: value is the truncated
// result, rem the discarded bits, half the value of the highest
// discarded bit position.
func roundFrac(value, rem, half uint32) uint16 {
	if rem > half || (rem == half && value&1 == 1) {
		value++
	}
	return uint16(value)
}

// Float32 converts the half-precision value back to float32 exactly
// (every binary16 value is representable in binary32).
func (h Float16) Float32() float32 {
	sign := uint32(h&f16SignMask) << 16
	exp := uint32(h&f16ExpMask) >> 10
	frac := uint32(h & f16FracMask)

	switch {
	case exp == 0x1F: // Inf or NaN.
		return math.Float32frombits(sign | 0x7F800000 | frac<<13)
	case exp == 0:
		if frac == 0 { // Signed zero.
			return math.Float32frombits(sign)
		}
		// Subnormal half: normalize.
		e := int32(-14)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= f16FracMask
		return math.Float32frombits(sign | uint32(e+f32ExpBias)<<23 | frac<<13)
	default: // Normal.
		return math.Float32frombits(sign | (exp-f16ExpBias+f32ExpBias)<<23 | frac<<13)
	}
}

// IsNaN reports whether the half-precision value is a NaN.
func (h Float16) IsNaN() bool {
	return h&f16ExpMask == f16ExpMask && h&f16FracMask != 0
}

// IsInf reports whether the half-precision value is an infinity.
func (h Float16) IsInf() bool {
	return h&f16ExpMask == f16ExpMask && h&f16FracMask == 0
}

// Half16 converts between float32 gradient vectors and packed int32
// wire vectors holding one float16 per element, combined with an
// in-switch fixed-point conversion. It models the paper's 16-bit
// floating point deployment: the wire carries halves (so a tensor
// needs half as many packets), while aggregation inside the switch is
// integer addition on values scaled by the converter's factor.
type Half16 struct {
	fixed *FixedPoint
}

// NewHalf16 returns a converter whose in-switch fixed-point
// representation uses scaling factor f.
func NewHalf16(f float64) (*Half16, error) {
	fx, err := NewFixedPoint(f)
	if err != nil {
		return nil, err
	}
	return &Half16{fixed: fx}, nil
}

// Factor returns the in-switch scaling factor.
func (h *Half16) Factor() float64 { return h.fixed.Factor() }

// EncodeWire converts float32 values to their float16 bit patterns,
// widened to int32 for the common wire vector type. Two halves could
// be packed per element; keeping one per element and halving the
// element count, as this implementation does at the session layer,
// gives identical wire volume with simpler addressing.
func (h *Half16) EncodeWire(dst []int32, src []float32) {
	if len(dst) != len(src) {
		panic("quant: EncodeWire length mismatch")
	}
	for i, v := range src {
		dst[i] = int32(Float16FromFloat32(v))
	}
}

// SwitchIngest converts a wire vector of float16 bit patterns into
// the switch's internal fixed-point representation, as the Tofino
// lookup tables do on packet ingress.
func (h *Half16) SwitchIngest(dst []int32, wire []int32) (saturated int) {
	if len(dst) != len(wire) {
		panic("quant: SwitchIngest length mismatch")
	}
	f := h.fixed.Factor()
	for i, w := range wire {
		v := Float16(uint16(w)).Float32()
		s := math.RoundToEven(float64(v) * f)
		switch {
		case s > math.MaxInt32:
			dst[i] = math.MaxInt32
			saturated++
		case s < math.MinInt32:
			dst[i] = math.MinInt32
			saturated++
		default:
			dst[i] = int32(s)
		}
	}
	return saturated
}

// SwitchEgress converts the switch's fixed-point aggregate back into
// float16 bit patterns for the result packet.
func (h *Half16) SwitchEgress(dst []int32, agg []int32) {
	if len(dst) != len(agg) {
		panic("quant: SwitchEgress length mismatch")
	}
	inv := 1 / h.fixed.Factor()
	for i, v := range agg {
		dst[i] = int32(Float16FromFloat32(float32(float64(v) * inv)))
	}
}

// DecodeWire converts received float16 bit patterns to float32.
func (h *Half16) DecodeWire(dst []float32, wire []int32) {
	if len(dst) != len(wire) {
		panic("quant: DecodeWire length mismatch")
	}
	for i, w := range wire {
		dst[i] = Float16(uint16(w)).Float32()
	}
}
