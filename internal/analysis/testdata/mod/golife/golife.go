// Package golife seeds goroutine-lifecycle violations: every go
// statement must tie to a shutdown signal reachable from an owning
// type's Close/Stop, a returned stop closure, or a fork-join wait.
package golife

import (
	"sync"
	"time"
)

// Server owns a stoppable worker loop: clean.
type Server struct {
	done chan struct{}
}

// Start spawns the loop; Close unblocks it through done.
func (s *Server) Start() {
	go s.loop()
}

func (s *Server) loop() {
	for {
		select {
		case <-s.done:
			return
		default:
		}
	}
}

// Close releases the loop.
func (s *Server) Close() { close(s.done) }

// Leaky ties its goroutine to a channel but exposes no lifecycle
// method, so nothing outside can ever reach the tie.
type Leaky struct{ n int }

// Spin spawns a goroutine the owner cannot stop.
func (l *Leaky) Spin(done chan struct{}) {
	go func() { // want "Leaky spawns a goroutine but has no Close/Stop/Shutdown method"
		<-done
		l.n++
	}()
}

// Untied spawns a body with no shutdown signal at all.
func Untied() {
	go func() { // want "goroutine has no shutdown tie"
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

// External hands the goroutine to a callee with no shutdown handle.
func External() {
	go time.Sleep(time.Hour) // want "goroutine runs external time.Sleep with no shutdown handle"
}

// Dynamic spawns through a function value the analyzer cannot see
// into.
func Dynamic(f func()) {
	go f() // want "goroutine target is dynamic"
}

// Forked is the fork-join idiom: the spawner joins its own goroutines
// before returning, so no lifecycle method is needed.
type Forked struct{}

// Run joins its workers before returning: clean.
func (Forked) Run(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Sampler hands its caller a stop closure instead of a method: clean.
type Sampler struct{}

// Start returns the shutdown handle.
func (Sampler) Start() (stop func()) {
	done := make(chan struct{})
	go func() {
		<-done
	}()
	return func() { close(done) }
}
