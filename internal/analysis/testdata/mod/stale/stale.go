// Package stale seeds the suppress analyzer: every //switchml:allow
// must still hold back a finding, and one that no longer does is
// itself a finding. Live allows — line-scope and function-scope —
// must stay silent.
package stale

import "fmt"

// Fixed was optimised after the allow was written: the determinism
// analyzer no longer fires here, so the directive only narrows
// coverage.
func Fixed() int {
	// want "stale //switchml:allow determinism: it no longer suppresses any finding \\(remove it\\)"
	//switchml:allow determinism -- rounding loop, reviewed long ago
	return 42
}

// Hot is a hot-path root whose single allocation is justified: the
// line allow below still suppresses a live hotpath finding, so the
// suppress analyzer leaves it alone.
//
//switchml:hotpath
func Hot(n int) []byte {
	_ = Trace()
	//switchml:allow hotpath -- one-time arming buffer, amortised across the job
	return make([]byte, n)
}

// Trace is diagnostics-only but still reachable from Hot, so its
// blanket exemption is live: the unexempted hotpath walk finds the
// Sprintf inside and credits the function-scope allow.
//
//switchml:allow hotpath -- diagnostics-only path, never per packet
func Trace() string {
	return fmt.Sprintf("%x", 9)
}

// Orphaned fell off every hot path; its blanket exemption suppresses
// nothing now.
//
// want "stale //switchml:allow hotpath: it no longer suppresses any finding \\(remove it\\)"
//switchml:allow hotpath -- legacy formatting path
func Orphaned() string {
	return fmt.Sprintf("%d", 7)
}
