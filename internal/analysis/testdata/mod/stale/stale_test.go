package stale

import "testing"

// TestHotZeroAlloc backs the hot-path annotation: the analyzer
// requires a testing.AllocsPerRun pin in every package declaring a
// root. One allocation is expected — the justified arming buffer.
func TestHotZeroAlloc(t *testing.T) {
	if n := testing.AllocsPerRun(10, func() {
		_ = Hot(32)
	}); n > 1 {
		t.Fatalf("Hot allocates %v times per run, want at most 1", n)
	}
}
