// Package baddir seeds malformed //switchml: directives, which are
// findings of the "directive" pseudo-analyzer.
package baddir

// want "unknown directive //switchml:frobnicate"
//switchml:frobnicate
var A = 1

// want "suppression needs a justification"
//switchml:allow hotpath
var B = 2

// want "allow names unknown analyzer \"speling\""
//switchml:allow speling -- not a real analyzer
var C = 3

// want "bad //switchml:wire directive"
//switchml:wire bits=banana
var D = 4
