// Package bufown seeds pooled-buffer ownership violations: no use
// after Put, a release on every return path, no retained aliases, and
// no mutation of a staged train block before Flush.
package bufown

import "sync"

type buf struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(buf) }}

// GetBuf borrows a buffer from the package pool.
//
//switchml:acquire
func GetBuf() *buf { return pool.Get().(*buf) }

// PutBuf returns a buffer to the pool.
//
//switchml:release
func PutBuf(b *buf) { pool.Put(b) }

// UseAfterPut touches the buffer after recycling it: the next
// borrower may already own the storage.
func UseAfterPut() int {
	b := GetBuf()
	b.b = append(b.b[:0], 1)
	PutBuf(b)
	return len(b.b) // want "b used after it was returned to the pool"
}

// Inline borrows straight off the sync.Pool; the rules are the same
// as for the annotated helpers.
func Inline() {
	b := pool.Get().(*buf)
	pool.Put(b)
	b.b = nil // want "b used after it was returned to the pool"
}

// LeakyReturn forgets the buffer on its early exit: the pool never
// sees it again.
func LeakyReturn(fail bool) int {
	b := GetBuf()
	if fail {
		return -1 // want "return leaks pooled b: no Put/release on this path"
	}
	n := len(b.b)
	PutBuf(b)
	return n
}

type cache struct{ last *buf }

// Retain stores the pooled buffer in a field and still recycles it —
// the retained alias outlives the recycle.
func (c *cache) Retain() {
	b := GetBuf()
	c.last = b // want "pooled b escapes into field last while this function also puts it back"
	PutBuf(b)
}

var sticky *buf

// Publish parks the pooled buffer in a package variable before
// recycling it.
func Publish() {
	b := GetBuf()
	sticky = b // want "pooled b escapes into package variable sticky while this function also puts it back"
	PutBuf(b)
}

// DeferPut is the canonical clean shape: the deferred release covers
// every return path and runs after the last use.
func DeferPut() int {
	b := GetBuf()
	defer PutBuf(b)
	return len(b.b)
}

// Handoff transfers ownership to the caller — it never Puts, so
// storing and returning the buffer is the point, not a leak.
func Handoff() *buf {
	b := GetBuf()
	b.b = b.b[:0]
	return b
}

// Branches releases in both arms; a branch-local Put must not poison
// the other path.
func Branches(fail bool) {
	b := GetBuf()
	if fail {
		PutBuf(b)
		return
	}
	PutBuf(b)
}

type conn struct{ staged [][]byte }

// AppendTrain stages a block for the next Flush, keeping a reference
// into the caller's storage — the netio GSO contract.
func (c *conn) AppendTrain(block []byte, n int) { c.staged = append(c.staged, block) }

// Flush sends and forgets the staged blocks.
func (c *conn) Flush() { c.staged = c.staged[:0] }

// EarlyReset recycles the staged block before Flush sends it.
func EarlyReset(c *conn, block []byte) {
	c.AppendTrain(block, 1)
	block = block[:0] // want "block reassigned between AppendTrain and Flush; the staged train still references it"
	c.Flush()
	_ = block
}

// ResetAfterFlush reuses the block only once the send completed:
// clean.
func ResetAfterFlush(c *conn, block []byte) {
	c.AppendTrain(block, 1)
	c.Flush()
	block = block[:0]
	_ = block
}
