// Package wire seeds wirewidth-analyzer violations.
package wire

// Header carries annotated fields; Kind and Ver model the packet
// header's 3-bit kind and 1-bit pool version.
type Header struct {
	Kind uint8 //switchml:wire bits=3
	Ver  uint8 //switchml:wire bits=1
	// want "switchml:wire on wire.Header.Name: not an integer field"
	Name string //switchml:wire bits=4
	// want "switchml:wire bits=16 on wire.Header.Big exceeds its 8-bit Go type"
	Big uint8 //switchml:wire bits=16
}

// Set stores constants into annotated fields.
func Set(h *Header) {
	h.Kind = 7 // fits: max 3-bit value
	h.Kind = 8 // want "constant 8 overflows the 3-bit wire width of wire.Header.Kind"
	h.Ver = 1
}

// Make seeds an overflow through a keyed composite literal.
func Make() Header {
	return Header{Kind: 9} // want "constant 9 overflows the 3-bit wire width of wire.Header.Kind"
}

// Check seeds an overflow in a comparison.
func Check(h *Header) bool {
	return h.Ver == 2 // want "constant 2 overflows the 1-bit wire width of wire.Header.Ver"
}

// InRange compares against a fitting constant: fine.
func InRange(h *Header) bool { return h.Ver == 1 && h.Kind <= 7 }
