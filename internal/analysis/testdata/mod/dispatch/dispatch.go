// Package dispatch seeds kinddispatch-analyzer violations: annotated
// switches must cover every declared kind or count their drops, and
// every kind must be named in the package's FuzzCodec seed corpus.
package dispatch

// Kind is the protocol tag the annotated switches dispatch on.
type Kind uint8

// The declared kinds. KindC is deliberately missing from the
// FuzzCodec seed corpus in dispatch_test.go.
const (
	KindA Kind = iota
	KindB
	KindC // want "dispatch.Kind KindC has no FuzzCodec seed \\(name it in the seed corpus\\)"
)

var drops int

// Exhaustive names every declared kind: clean.
func Exhaustive(k Kind) int {
	//switchml:dispatch
	switch k {
	case KindA:
		return 1
	case KindB:
		return 2
	case KindC:
		return 3
	}
	return 0
}

// CountingDefault drops unknown kinds observably: clean.
func CountingDefault(k Kind) int {
	//switchml:dispatch
	switch k {
	case KindA:
		return 1
	default:
		drops++
	}
	return 0
}

// Missing omits two kinds and has no default arm.
func Missing(k Kind) int {
	//switchml:dispatch
	switch k { // want "switch over dispatch.Kind misses KindB, KindC \\(add arms or a counting default\\)"
	case KindA:
		return 1
	}
	return 0
}

// Silent has a default arm that swallows unknown kinds invisibly.
func Silent(k Kind) int {
	//switchml:dispatch
	switch k {
	case KindA:
		return 1
	default: // want "default arm of //switchml:dispatch switch over dispatch.Kind must count or log the dropped kind"
	}
	return 0
}

// Tagless guards the kind with booleans, so the directive cannot
// verify coverage.
func Tagless(k Kind) int {
	//switchml:dispatch
	switch { // want "must dispatch on a named integer kind type"
	case k == KindA:
		return 1
	}
	return 0
}

// The next directive hangs in space: there is no switch on its line
// or the line below, so it verifies nothing.
//
// want "//switchml:dispatch is not attached to a switch statement"
//switchml:dispatch
var Orphan = 0
