package dispatch

import "testing"

// FuzzCodec mirrors the real module's structured codec fuzzer: the
// seed corpus names KindA and KindB but omits the third kind, which
// the kinddispatch analyzer reports at that constant's declaration.
func FuzzCodec(f *testing.F) {
	f.Add(uint8(KindA))
	f.Add(uint8(KindB))
	f.Fuzz(func(t *testing.T, k uint8) {
		_ = Kind(k)
	})
}
