// Package notest declares a hot-path root but has no AllocsPerRun
// test backing it, which is itself a finding.
package notest

// Root allocates nothing, but the annotation is unpinned.
//
//switchml:hotpath
func Root(x int) int { return x + 1 } // want "switchml:hotpath on notest.Root has no backing testing.AllocsPerRun test in vettest/notest"
