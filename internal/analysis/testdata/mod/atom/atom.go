// Package atom seeds atomicfield-analyzer violations: old-style
// sync/atomic calls mark their target locations, and plain accesses
// of the same locations are findings.
package atom

import "sync/atomic"

// Counter mixes atomic and plain access to its fields.
type Counter struct {
	n     int64
	slots []int64
}

// Inc marks n as an atomically accessed location.
func (c *Counter) Inc() { atomic.AddInt64(&c.n, 1) }

// Value reads n atomically: fine.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.n) }

// Bad reads n plainly: a data race against Inc.
func (c *Counter) Bad() int64 {
	return c.n // want "plain access to atom.field n"
}

// BadWrite writes n plainly.
func (c *Counter) BadWrite() {
	c.n = 0 // want "plain access to atom.field n"
}

// New runs before the counter is shared; the line-level allow keeps
// the constructor's plain write legal.
func New(v int64) *Counter {
	return &Counter{n: v} //switchml:allow atomicfield -- single-threaded constructor, not yet published
}

// IncSlot marks slots as an element-wise atomic location.
func (c *Counter) IncSlot(i int) { atomic.AddInt64(&c.slots[i], 1) }

// Len touches only the slice header: fine for element-wise targets.
func (c *Counter) Len() int { return len(c.slots) }

// BadSlot reads an element plainly.
func (c *Counter) BadSlot(i int) int64 {
	return c.slots[i] // want "plain access to atom.field slots"
}
