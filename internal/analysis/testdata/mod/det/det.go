// Package det seeds determinism-analyzer violations.
//
//switchml:deterministic
package det

import (
	"math/rand"
	"sort"
	"time"
)

// Clock reads the wall clock, which diverges between replays.
func Clock() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// Wait sleeps on the wall clock.
func Wait() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

// Draw uses the global math/rand source.
func Draw() int {
	return rand.Intn(10) // want "rand.Intn draws from the global source"
}

// Seeded draws from an explicit source: methods are fine.
func Seeded(r *rand.Rand) int { return r.Intn(10) }

// NewSource constructs a seeded source: constructors are fine.
func NewSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Sum iterates a map without justification.
func Sum(m map[string]int) int {
	t := 0
	for _, v := range m { // want "map iteration order is nondeterministic"
		t += v
	}
	return t
}

// Keys collects then sorts, so the iteration is justified.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//switchml:allow determinism -- collect-then-sort: sorted before anything order-sensitive sees the ids
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
