// Package hot seeds hotpath-analyzer violations: each annotated line
// carries a want comment the golden test matches against the
// analyzer's output.
package hot

import "fmt"

// Sink receives boxed values so boxing sites type-check.
var Sink any

// Table is a package-level map written on the hot path.
var Table = map[string]int{}

// Root is a hot-path root exercising the direct allocation checks.
//
//switchml:hotpath
func Root(n int, s string, dst []byte) []byte {
	buf := make([]byte, n)          // want "make allocates in hot.Root"
	dst = append(dst, buf...)       // want "append may grow its backing array in hot.Root"
	label := s + "!"                // want "string concatenation allocates in hot.Root"
	raw := []byte(label)            // want "conversion string -> \\[\\]byte copies and allocates in hot.Root"
	Sink = n                        // want "assignment boxes int into an interface in hot.Root"
	fmt.Println(label)              // want "fmt.Println allocates in hot.Root"
	Table[label] = n                // want "map write may rehash and allocate in hot.Root"
	p := &point{x: n}               // want "address of composite literal escapes to the heap in hot.Root"
	go tick(p)                      // want "go statement allocates a goroutine in hot.Root" // want "goroutine has no shutdown tie"
	f := func() int { return n }    // want "closure captures n and allocates in hot.Root"
	helper()
	return append(raw, byte(f())) // want "append may grow its backing array in hot.Root"
}

type point struct{ x int }

func tick(*point) {}

// helper is reached from Root, so its allocations are on the hot
// path too.
func helper() {
	_ = new(point) // want "new allocates in hot.helper \\(on the hot path of hot.Root\\)"
}

// Reuse is a clean hot-path root: guarded grow fallbacks are
// suppressed with justified allows, and everything else reuses
// capacity.
//
//switchml:hotpath
func Reuse(dst []int32, n int) []int32 {
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		//switchml:allow hotpath -- guarded grow fallback, cold by construction
		dst = make([]int32, n)
	}
	for i := range dst {
		dst[i] = int32(i)
	}
	capFree(func() {}) // capture-free literal: no allocation, no finding
	cold()
	return dst
}

func capFree(f func()) { f() }

// exempted is called from Reuse via cold(); the function-level allow
// keeps the analyzer out of its body entirely.
//
//switchml:allow hotpath -- diagnostics-only path, never taken per packet
func exempted() string {
	return fmt.Sprintf("%d", 42)
}

func cold() { _ = exempted() }
