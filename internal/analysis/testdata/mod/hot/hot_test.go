package hot

import "testing"

// TestReuseZeroAlloc pins the hot-path annotations dynamically; the
// hotpath analyzer requires an AllocsPerRun test in every package
// that declares a root.
func TestReuseZeroAlloc(t *testing.T) {
	dst := make([]int32, 0, 64)
	if n := testing.AllocsPerRun(100, func() {
		dst = Reuse(dst, 64)
	}); n != 0 {
		t.Fatalf("Reuse allocates %v times per run", n)
	}
}
