package analysis

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"path/filepath"
	"strings"
)

// Machine-readable output for cmd/switchml-vet: a flat JSON finding
// list for scripting, and SARIF 2.1.0 for CI annotation (GitHub's
// upload-sarif action renders results inline on pull requests). Both
// carry the same stable finding IDs, so a finding keeps its identity
// across runs and across output formats as long as the code it points
// at does not move.

// FindingID returns a stable identifier for one finding:
// "<analyzer>-<fnv64a hex>" over the analyzer name, the root-relative
// path, the line and the message. Column changes (gofmt shuffles) do
// not disturb the ID; moving or rewording the finding does.
func FindingID(root string, d Diagnostic) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%s", d.Analyzer, relPath(root, d.Pos.Filename), d.Pos.Line, d.Message)
	return fmt.Sprintf("%s-%016x", d.Analyzer, h.Sum64())
}

// relPath makes path root-relative with forward slashes — the form
// SARIF viewers resolve against the repository checkout.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

// jsonFinding is one finding in -json output.
type jsonFinding struct {
	ID       string `json:"id"`
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON emits the findings as a JSON array (stable IDs included),
// root-relative paths, one object per finding.
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			ID:       FindingID(root, d),
			Analyzer: d.Analyzer,
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 document skeleton — only the fields the spec requires
// plus what GitHub code scanning consumes.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	Name             string       `json:"name"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	RuleIndex           int               `json:"ruleIndex"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits the findings as a SARIF 2.1.0 log with one rule
// per analyzer (plus the directive validator) and one result per
// finding, fingerprinted with the stable finding ID.
func WriteSARIF(w io.Writer, root string, diags []Diagnostic) error {
	var rules []sarifRule
	ruleIndex := make(map[string]int)
	for _, a := range All() {
		ruleIndex[a.Name] = len(rules)
		rules = append(rules, sarifRule{
			ID:               a.Name,
			Name:             a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	ruleIndex["directive"] = len(rules)
	rules = append(rules, sarifRule{
		ID:               "directive",
		Name:             "directive",
		ShortDescription: sarifMessage{Text: "//switchml: directives must be well-formed and justified"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			idx = ruleIndex["directive"]
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       relPath(root, d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
			PartialFingerprints: map[string]string{"switchmlVetId/v1": FindingID(root, d)},
		})
	}

	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "switchml-vet",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
