package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField returns the atomics-discipline analyzer. The PR-3
// aggregator fast path is lock-free: shard goroutines read the peer
// table, the liveness tracker, the epoch and the frontier with
// sync/atomic while the recovery path writes them under a mutex. That
// discipline only works if a location touched atomically is touched
// atomically *everywhere* — one plain load or store reintroduces the
// data race the atomics were bought to remove, and the race detector
// only catches it on exercised schedules. The analyzer records every
// variable (struct field, package variable or slice-element base)
// whose address is passed to a sync/atomic operation anywhere in the
// module, then flags every plain read or write of the same location.
// Single-threaded phases (constructors before publication) are
// suppressed with //switchml:allow atomicfield -- <why>.
func AtomicField() *Analyzer {
	return &Analyzer{
		Name: "atomicfield",
		Doc:  "locations accessed via sync/atomic must never be read or written plainly",
		Run:  runAtomicField,
	}
}

// atomicTarget records where a location was first seen used
// atomically.
type atomicTarget struct {
	display string
	pos     token.Position
	// elem means the atomics address elements (&x.f[i]); plain use of
	// the slice header itself (len, range-by-index) stays legal.
	elem bool
}

func runAtomicField(m *Module) []Diagnostic {
	targets := make(map[types.Object]*atomicTarget)

	// Pass 1: collect every &location handed to a sync/atomic
	// function.
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg.Info, call) || len(call.Args) == 0 {
					return true
				}
				un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					return true
				}
				target := ast.Unparen(un.X)
				elem := false
				if idx, ok := target.(*ast.IndexExpr); ok {
					target = ast.Unparen(idx.X)
					elem = true
				}
				obj := addressableObject(pkg.Info, target)
				if obj == nil {
					return true
				}
				if t, seen := targets[obj]; seen {
					t.elem = t.elem && elem // whole-var atomics dominate
					return true
				}
				targets[obj] = &atomicTarget{
					display: objDisplayName(obj),
					pos:     m.Fset.Position(un.Pos()),
					elem:    elem,
				}
				return true
			})
		}
	}
	if len(targets) == 0 {
		return nil
	}

	// Pass 2: flag plain uses of the recorded locations.
	var diags []Diagnostic
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			inspectWithStack(f, func(n ast.Node, stack []ast.Node) {
				var obj types.Object
				switch n := n.(type) {
				case *ast.SelectorExpr:
					obj = addressableObject(pkg.Info, n)
				case *ast.Ident:
					// Only plain identifiers (fields are covered by
					// their SelectorExpr parent).
					if len(stack) > 1 {
						if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.Sel == n {
							return
						}
					}
					obj = pkg.Info.Uses[n]
				default:
					return
				}
				t, recorded := targets[obj]
				if !recorded {
					return
				}
				if underAtomicAddress(pkg.Info, stack) {
					return
				}
				if t.elem && !isElementAccess(n, stack) {
					return // len/cap/range-index of the slice is fine
				}
				diags = append(diags, Diagnostic{
					Pos:      m.Fset.Position(n.Pos()),
					Analyzer: "atomicfield",
					Message: fmt.Sprintf("plain access to %s, which is accessed atomically (%s); mixing atomic and plain access races",
						t.display, t.pos),
				})
			})
		}
	}
	return diags
}

// isAtomicCall reports whether the call targets a package-level
// sync/atomic operation.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // methods of atomic.Int64 etc. take no address
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// addressableObject resolves a selector or identifier to the variable
// it names: a struct field, a package variable or a local.
func addressableObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if sel.Kind() == types.FieldVal {
				return sel.Obj()
			}
			return nil
		}
		return info.Uses[e.Sel] // package-qualified variable
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	}
	return nil
}

// underAtomicAddress reports whether the use sits inside the
// &-operand of a sync/atomic call (the legal way to touch the
// location).
func underAtomicAddress(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i > 0; i-- {
		un, ok := stack[i].(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		if call, ok := stack[i-1].(*ast.CallExpr); ok &&
			len(call.Args) > 0 && ast.Unparen(call.Args[0]) == un && isAtomicCall(info, call) {
			return true
		}
	}
	return false
}

// isElementAccess reports whether the use is the indexed base of an
// IndexExpr (x.f[i]) or the range operand with a value variable —
// the accesses that read or write elements rather than the header.
func isElementAccess(n ast.Node, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	switch p := stack[len(stack)-2].(type) {
	case *ast.IndexExpr:
		return ast.Unparen(p.X) == n
	case *ast.SelectorExpr:
		// x.f inside a longer selection; check one level up.
		if len(stack) >= 3 {
			if idx, ok := stack[len(stack)-3].(*ast.IndexExpr); ok {
				return ast.Unparen(idx.X) == p
			}
		}
	case *ast.RangeStmt:
		return ast.Unparen(p.X) == n && p.Value != nil // copies elements out
	}
	return false
}

// inspectWithStack walks the AST keeping the ancestor chain; fn is
// called for every node with stack[len-1] == n.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		fn(n, stack)
		return true
	})
}

// objDisplayName renders a variable for diagnostics, with its owner
// type for fields.
func objDisplayName(obj types.Object) string {
	name := obj.Name()
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		name = "field " + name
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + name
	}
	return name
}
