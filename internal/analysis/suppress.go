package analysis

import (
	"fmt"
	"go/ast"
)

// Suppress returns the stale-suppression analyzer. Every
// //switchml:allow narrows the suite's coverage, so each one must
// still be earning its keep: the analyzer re-runs the rest of the
// suite unfiltered and reports any allow whose analyzer no longer
// produces a finding at the covered location. Function-scope hotpath
// allows are matched against the unexempted hotpath walk over the
// annotated function's body. Allows targeting suppress itself cannot
// be self-assessed and are left alone.
func Suppress() *Analyzer {
	return &Analyzer{
		Name: "suppress",
		Doc:  "//switchml:allow directives that no longer suppress any finding are themselves findings",
		Run:  runSuppress,
	}
}

func runSuppress(m *Module) []Diagnostic {
	idx := collectDirectives(m)
	if len(idx.records) == 0 {
		return nil
	}

	// Raw, unsuppressed findings from every other analyzer. Matching
	// them against the allow table marks the records that still hold
	// a finding back. Hotpath runs with function-scope exemptions
	// disabled so findings inside exempted functions surface and can
	// be credited to the function-scope allow below.
	rawByAnalyzer := make(map[string][]Diagnostic)
	for _, a := range All() {
		if a.Name == "suppress" {
			continue
		}
		var raw []Diagnostic
		if a.Name == "hotpath" {
			raw = runHotpathOpt(m, false)
		} else {
			raw = a.Run(m)
		}
		for _, d := range raw {
			idx.suppressed(d.Analyzer, d.Pos)
		}
		rawByAnalyzer[a.Name] = raw
	}

	// Function-scope allows: a //switchml:allow on a function's doc
	// comment is live when the analyzer reports anywhere inside that
	// function's body.
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil || fd.Body == nil {
					continue
				}
				for _, d := range groupDirectives(fd.Doc, m.Fset) {
					if d.verb != "allow" {
						continue
					}
					name, why, cut := parseAllow(d.args)
					if !cut || why == "" {
						continue
					}
					rec := idx.allows[d.pos.Filename][d.pos.Line][name]
					if rec == nil || rec.used {
						continue
					}
					start := m.Fset.Position(fd.Pos()).Line
					end := m.Fset.Position(fd.End()).Line
					for _, diag := range rawByAnalyzer[name] {
						if diag.Pos.Filename == d.pos.Filename && diag.Pos.Line >= start && diag.Pos.Line <= end {
							rec.used = true
							break
						}
					}
				}
			}
		}
	}

	var diags []Diagnostic
	for _, rec := range idx.records {
		if rec.used || rec.Analyzer == "suppress" {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      rec.Pos,
			Analyzer: "suppress",
			Message:  fmt.Sprintf("stale //switchml:allow %s: it no longer suppresses any finding (remove it)", rec.Analyzer),
		})
	}
	sortDiagnostics(diags)
	return diags
}
