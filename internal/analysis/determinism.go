package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Determinism returns the replay-safety analyzer. Packages annotated
// //switchml:deterministic (netsim, core, p4sim, faults, packet) back
// the paper's §5.5/§5.6 evaluation, which depends on bit-for-bit
// reproducible runs: the same seed must produce the same packet
// timeline, the same loss pattern and the same recovery trace. The
// analyzer flags the three ways nondeterminism leaks in:
//
//   - wall-clock reads (time.Now and friends) — simulated components
//     must take injected clocks (netsim virtual time);
//   - the global math/rand source — randomness must flow from a
//     seeded *rand.Rand owned by the simulation;
//   - iteration over maps — Go randomizes map order, so ranging a map
//     into anything order-sensitive diverges between runs. Loops
//     whose bodies are provably order-insensitive (commutative
//     integer reduction, collect-then-sort) are suppressed with
//     //switchml:allow determinism -- <why>.
func Determinism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "//switchml:deterministic packages must not read wall clocks, global randomness or map order",
		Run:  runDeterminism,
	}
}

func runDeterminism(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.Packages {
		deterministic := false
		for _, f := range pkg.Files {
			if hasDirective(f.Doc, m.Fset, "deterministic") {
				deterministic = true
			}
		}
		if !deterministic {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					fn := staticCallee(pkg.Info, n)
					if fn == nil {
						return true
					}
					if msg := nondeterministicCall(fn); msg != "" {
						diags = append(diags, Diagnostic{
							Pos: m.Fset.Position(n.Pos()), Analyzer: "determinism", Message: msg,
						})
					}
				case *ast.RangeStmt:
					if t := exprType(pkg.Info, n.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							diags = append(diags, Diagnostic{
								Pos:      m.Fset.Position(n.Pos()),
								Analyzer: "determinism",
								Message:  "map iteration order is nondeterministic; iterate sorted keys or justify with //switchml:allow",
							})
						}
					}
				}
				return true
			})
		}
	}
	return diags
}

// wallClockFuncs are the time-package functions that observe (or
// depend on) the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true, "Sleep": true,
}

// nondeterministicCall explains why a call breaks determinism, or
// returns "".
func nondeterministicCall(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return fmt.Sprintf("time.%s reads the wall clock; deterministic packages must take an injected clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "" // methods on an explicitly seeded source are fine
		}
		if strings.HasPrefix(fn.Name(), "New") {
			return "" // constructors take explicit seeds/sources
		}
		return fmt.Sprintf("rand.%s draws from the global source; use a seeded *rand.Rand", fn.Name())
	}
	return ""
}
