package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Pos:      token.Position{Filename: "/mod/internal/transport/client.go", Line: 523, Column: 2},
			Analyzer: "kinddispatch",
			Message:  "default arm of //switchml:dispatch switch over packet.Kind must count or log the dropped kind",
		},
		{
			Pos:      token.Position{Filename: "/mod/internal/netio/conn.go", Line: 88, Column: 5},
			Analyzer: "bufown",
			Message:  "sh.block reassigned between AppendTrain and Flush; the staged train still references it",
		},
	}
}

// TestFindingIDStable pins the stable-ID contract: identical findings
// hash identically, any field that identifies the finding perturbs
// the hash, and a column-only change (gofmt) does not.
func TestFindingIDStable(t *testing.T) {
	d := sampleDiags()[0]
	id1 := FindingID("/mod", d)
	id2 := FindingID("/mod", d)
	if id1 != id2 {
		t.Fatalf("same finding hashed differently: %s vs %s", id1, id2)
	}
	if !strings.HasPrefix(id1, "kinddispatch-") {
		t.Errorf("ID %q does not lead with the analyzer name", id1)
	}

	moved := d
	moved.Pos.Line++
	if FindingID("/mod", moved) == id1 {
		t.Error("moving the finding one line did not change its ID")
	}
	reworded := d
	reworded.Message += "!"
	if FindingID("/mod", reworded) == id1 {
		t.Error("rewording the finding did not change its ID")
	}
	shifted := d
	shifted.Pos.Column += 4
	if FindingID("/mod", shifted) != id1 {
		t.Error("a column-only shift changed the ID; gofmt would churn every fingerprint")
	}
}

// TestWriteJSON checks the -json shape: an array of findings with
// stable IDs and root-relative slash paths.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "/mod", sampleDiags()); err != nil {
		t.Fatal(err)
	}
	var out []struct {
		ID       string `json:"id"`
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d findings, want 2", len(out))
	}
	if out[0].File != "internal/transport/client.go" {
		t.Errorf("file = %q, want a root-relative slash path", out[0].File)
	}
	if out[0].ID == "" || out[0].Analyzer != "kinddispatch" || out[0].Line != 523 {
		t.Errorf("finding fields wrong: %+v", out[0])
	}
}

// TestWriteSARIF structurally validates the log against SARIF 2.1.0:
// the version and schema fields, a driver with one rule per analyzer,
// and results whose ruleId, ruleIndex, message and physical location
// all resolve.
func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/mod", sampleDiags()); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				PartialFingerprints map[string]string `json:"partialFingerprints"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-schema-2.1.0.json") {
		t.Errorf("$schema = %q does not reference the 2.1.0 schema", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "switchml-vet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// One rule per analyzer plus the directive validator.
	if want := len(All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("driver declares %d rules, want %d", len(run.Tool.Driver.Rules), want)
	}
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v missing id or shortDescription", r)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	for i, res := range run.Results {
		if res.Message.Text == "" || res.Level != "error" {
			t.Errorf("result %d: message/level wrong: %+v", i, res)
		}
		if res.RuleIndex < 0 || res.RuleIndex >= len(run.Tool.Driver.Rules) ||
			run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
			t.Errorf("result %d: ruleIndex %d does not resolve to ruleId %q", i, res.RuleIndex, res.RuleID)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %d: got %d locations, want 1", i, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if strings.HasPrefix(loc.ArtifactLocation.URI, "/") || strings.Contains(loc.ArtifactLocation.URI, "\\") {
			t.Errorf("result %d: uri %q is not a relative slash path", i, loc.ArtifactLocation.URI)
		}
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Errorf("result %d: uriBaseId = %q", i, loc.ArtifactLocation.URIBaseID)
		}
		if loc.Region.StartLine <= 0 {
			t.Errorf("result %d: startLine = %d", i, loc.Region.StartLine)
		}
		if res.PartialFingerprints["switchmlVetId/v1"] == "" {
			t.Errorf("result %d: missing stable fingerprint", i)
		}
	}
}
