package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// KindDispatch returns the protocol-dispatch exhaustiveness analyzer.
// A switch annotated //switchml:dispatch (trailing on the switch line
// or standalone on the line above) dispatches on a named integer
// protocol-kind type — packet.Kind in this module. The switch must
// either name every declared constant of that type in its case arms
// or carry a default arm that observably counts or logs the drop
// (§5.1's retransmission logic depends on no kind ever vanishing
// silently). Each declared constant must also appear in the declaring
// package's FuzzCodec seed corpus, so a newly added kind cannot skip
// the codec round-trip fuzz.
func KindDispatch() *Analyzer {
	return &Analyzer{
		Name: "kinddispatch",
		Doc:  "//switchml:dispatch switches must cover every declared kind or count their drops; every kind needs a FuzzCodec seed",
		Run:  runKindDispatch,
	}
}

// dispatchSite is one //switchml:dispatch directive, by position.
type dispatchSite struct {
	pos     token.Position
	matched bool
}

func runKindDispatch(m *Module) []Diagnostic {
	// Index every //switchml:dispatch comment by file and line.
	sites := make(map[string]map[int]*dispatchSite)
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := parseDirective(c, m.Fset)
					if !ok || d.verb != "dispatch" {
						continue
					}
					byLine := sites[d.pos.Filename]
					if byLine == nil {
						byLine = make(map[int]*dispatchSite)
						sites[d.pos.Filename] = byLine
					}
					byLine[d.pos.Line] = &dispatchSite{pos: d.pos}
				}
			}
		}
	}

	var diags []Diagnostic
	report := func(pos token.Position, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: pos, Analyzer: "kinddispatch", Message: fmt.Sprintf(format, args...)})
	}

	// kindTypes collects every named type dispatched on, for the
	// corpus check.
	kindTypes := make(map[*types.Named]bool)
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok {
					return true
				}
				pos := m.Fset.Position(sw.Switch)
				byLine := sites[pos.Filename]
				site := byLine[pos.Line]
				if site == nil {
					site = byLine[pos.Line-1]
				}
				if site == nil {
					return true
				}
				site.matched = true
				named := dispatchTagType(pkg.Info, sw)
				if named == nil {
					report(pos, "//switchml:dispatch switch must dispatch on a named integer kind type")
					return true
				}
				kindTypes[named] = true
				checkDispatchSwitch(m, pkg, sw, named, pos, report)
				return true
			})
		}
	}

	// A dispatch directive with no adjacent switch is dead weight.
	for _, byLine := range sites {
		for _, site := range byLine {
			if !site.matched {
				report(site.pos, "//switchml:dispatch is not attached to a switch statement (same line or line below)")
			}
		}
	}

	// Corpus check: every declared constant of a dispatched type must
	// appear in a FuzzCodec seed corpus in the declaring package.
	for named := range kindTypes {
		diags = append(diags, checkFuzzCorpus(m, named)...)
	}
	sortDiagnostics(diags)
	return diags
}

// dispatchTagType returns the switch tag's named integer type, nil
// when the tag is absent or not a named integer.
func dispatchTagType(info *types.Info, sw *ast.SwitchStmt) *types.Named {
	if sw.Tag == nil {
		return nil
	}
	t := exprType(info, sw.Tag)
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	b, ok := named.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	return named
}

// declaredKinds lists the module's package-level constants of the
// exact named type, sorted by value.
func declaredKinds(m *Module, named *types.Named) []*types.Const {
	var out []*types.Const
	for _, pkg := range m.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if ok && types.Identical(c.Type(), named) {
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		vi, _ := constant.Uint64Val(out[i].Val())
		vj, _ := constant.Uint64Val(out[j].Val())
		return vi < vj
	})
	return out
}

// checkDispatchSwitch verifies one annotated switch: full kind
// coverage, or a default arm that counts/logs what it drops.
func checkDispatchSwitch(m *Module, pkg *Package, sw *ast.SwitchStmt, named *types.Named, pos token.Position, report func(token.Position, string, ...any)) {
	covered := make(map[string]bool)
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}

	typeName := named.Obj().Name()
	if p := named.Obj().Pkg(); p != nil {
		typeName = p.Name() + "." + typeName
	}
	if defaultClause != nil {
		if !armCounts(defaultClause) {
			report(m.Fset.Position(defaultClause.Pos()),
				"default arm of //switchml:dispatch switch over %s must count or log the dropped kind", typeName)
		}
		return
	}
	var missing []string
	for _, c := range declaredKinds(m, named) {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		report(pos, "//switchml:dispatch switch over %s misses %s (add arms or a counting default)",
			typeName, strings.Join(missing, ", "))
	}
}

// armCounts reports whether a case body performs an observable action
// — a call (counter increment, log), an increment/decrement or an
// assignment — rather than silently discarding the packet.
func armCounts(cc *ast.CaseClause) bool {
	counts := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.CallExpr, *ast.IncDecStmt, *ast.AssignStmt:
				counts = true
			}
			return !counts
		})
	}
	return counts
}

// checkFuzzCorpus requires every declared constant of the kind type
// to be named in a FuzzCodec test file of the declaring package (the
// same textual convention the hotpath analyzer uses for
// AllocsPerRun). Missing constants anchor at their declarations.
func checkFuzzCorpus(m *Module, named *types.Named) []Diagnostic {
	tpkg := named.Obj().Pkg()
	if tpkg == nil || !m.Local(tpkg.Path()) {
		return nil
	}
	pkg := m.Lookup(tpkg.Path())
	if pkg == nil {
		return nil
	}
	corpus := fuzzCodecText(pkg.Dir)
	typeName := tpkg.Name() + "." + named.Obj().Name()
	if corpus == "" {
		return []Diagnostic{{
			Pos:      m.Fset.Position(named.Obj().Pos()),
			Analyzer: "kinddispatch",
			Message:  fmt.Sprintf("dispatched type %s has no FuzzCodec seed corpus in %s", typeName, tpkg.Path()),
		}}
	}
	var diags []Diagnostic
	for _, c := range declaredKinds(m, named) {
		re := regexp.MustCompile(`\b` + regexp.QuoteMeta(c.Name()) + `\b`)
		if !re.MatchString(corpus) {
			diags = append(diags, Diagnostic{
				Pos:      m.Fset.Position(c.Pos()),
				Analyzer: "kinddispatch",
				Message:  fmt.Sprintf("%s %s has no FuzzCodec seed (name it in the seed corpus)", typeName, c.Name()),
			})
		}
	}
	return diags
}

// fuzzCodecText concatenates the dir's test files that define or
// exercise FuzzCodec, "" when there are none.
func fuzzCodecText(dir string) string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	var sb strings.Builder
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err == nil && strings.Contains(string(src), "FuzzCodec") {
			sb.Write(src)
		}
	}
	return sb.String()
}

// sortDiagnostics orders findings by position for stable output.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
}
