package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Hotpath returns the allocation-freedom analyzer. Functions
// annotated //switchml:hotpath — the per-packet cycle: the wire
// codec, the switch ingress, the event loop — and every statically
// resolvable callee inside the module must not allocate: the 2x
// packet-rate budget of the pooled path (BENCH_hotpath.json) only
// holds while the steady state performs zero heap operations. The
// analyzer flags make/new, growing append, string concatenation and
// conversion, fmt calls, values boxed into interfaces, capturing
// closures, map writes, go statements and escaping composite
// literals. Guarded cold fallbacks (pool-miss grow paths) are
// suppressed with //switchml:allow hotpath -- <why>, and each
// annotated function must be backed by a testing.AllocsPerRun test in
// its package.
func Hotpath() *Analyzer {
	return &Analyzer{
		Name: "hotpath",
		Doc:  "//switchml:hotpath functions and their same-module callees must not allocate",
		Run:  runHotpath,
	}
}

// funcInfo locates one module function declaration.
type funcInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
}

func runHotpath(m *Module) []Diagnostic { return runHotpathOpt(m, true) }

// runHotpathOpt is the hotpath walk with exemption control: the
// suppress analyzer re-runs it with honorExempt=false to learn which
// findings a function-scope //switchml:allow hotpath is holding back.
func runHotpathOpt(m *Module, honorExempt bool) []Diagnostic {
	funcs := make(map[*types.Func]funcInfo)
	var roots []*types.Func
	exempt := make(map[*types.Func]bool)
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				funcs[obj] = funcInfo{pkg, fd}
				if hasDirective(fd.Doc, m.Fset, "hotpath") {
					roots = append(roots, obj)
				}
				if allowsAnalyzer(fd.Doc, m.Fset, "hotpath") {
					exempt[obj] = true
				}
			}
		}
	}

	var diags []Diagnostic
	visited := make(map[*types.Func]bool)
	var walk func(fn, root *types.Func)
	walk = func(fn, root *types.Func) {
		if visited[fn] || (honorExempt && exempt[fn]) {
			return
		}
		visited[fn] = true
		fi := funcs[fn]
		where := funcDisplayName(fn)
		if fn != root {
			where += fmt.Sprintf(" (on the hot path of %s)", funcDisplayName(root))
		}
		scanAllocs(fi.pkg, fi.decl, func(n ast.Node, msg string) {
			diags = append(diags, Diagnostic{
				Pos:      m.Fset.Position(n.Pos()),
				Analyzer: "hotpath",
				Message:  fmt.Sprintf("%s in %s", msg, where),
			})
		})
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := staticCallee(fi.pkg.Info, call); callee != nil {
				if _, local := funcs[callee]; local {
					walk(callee, root)
				}
			}
			return true
		})
	}
	for _, r := range roots {
		walk(r, r)
	}

	// Every annotation must be pinned by a testing.AllocsPerRun test
	// in its package, so the invariant is enforced dynamically too.
	allocTested := make(map[string]bool)
	for _, r := range roots {
		fi := funcs[r]
		dir := fi.pkg.Dir
		if _, ok := allocTested[dir]; !ok {
			allocTested[dir] = dirMentionsAllocsPerRun(dir)
		}
		if !allocTested[dir] {
			diags = append(diags, Diagnostic{
				Pos:      m.Fset.Position(fi.decl.Pos()),
				Analyzer: "hotpath",
				Message: fmt.Sprintf("//switchml:hotpath on %s has no backing testing.AllocsPerRun test in %s",
					funcDisplayName(r), fi.pkg.ImportPath),
			})
		}
	}
	return diags
}

// dirMentionsAllocsPerRun reports whether any test file in dir calls
// testing.AllocsPerRun.
func dirMentionsAllocsPerRun(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err == nil && strings.Contains(string(src), "AllocsPerRun") {
			return true
		}
	}
	return false
}

// funcDisplayName renders pkg.Func or pkg.(Recv).Method.
func funcDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// staticCallee resolves a call to its target function when that is
// statically known: a plain function, a package-qualified function,
// or a method on a concrete receiver. Interface method calls and
// calls through function values return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil // field of function type: dynamic
			}
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if recv := f.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				return nil // dynamic dispatch
			}
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func) // pkg-qualified
		return f
	}
	return nil
}

// scanAllocs reports every potential allocation site in one function
// body.
func scanAllocs(pkg *Package, decl *ast.FuncDecl, report func(n ast.Node, msg string)) {
	info := pkg.Info
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			scanCall(info, n, report)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := exprType(info, idx.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							report(idx, "map write may rehash and allocate")
						}
					}
				}
			}
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if boxes(info, rhs, exprType(info, n.Lhs[i])) {
						report(rhs, fmt.Sprintf("assignment boxes %s into an interface", typeName(info, rhs)))
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t := exprType(info, n.X); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n, "string concatenation allocates")
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n, "address of composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			if capt := capturedVar(info, n); capt != "" {
				report(n, fmt.Sprintf("closure captures %s and allocates", capt))
			}
		case *ast.GoStmt:
			report(n, "go statement allocates a goroutine")
		case *ast.ReturnStmt:
			scanReturn(pkg, decl, n, report)
		case *ast.CompositeLit:
			scanCompositeBoxing(info, n, report)
		}
		return true
	})
}

// scanCall flags allocating calls: make/new builtins, append, string
// conversions, fmt.*, and arguments boxed into interface parameters.
func scanCall(info *types.Info, call *ast.CallExpr, report func(n ast.Node, msg string)) {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion.
		dst := tv.Type
		if len(call.Args) != 1 {
			return
		}
		src := exprType(info, call.Args[0])
		if src == nil {
			return
		}
		if boxes(info, call.Args[0], dst) {
			report(call, fmt.Sprintf("conversion boxes %s into an interface", src))
			return
		}
		if allocatingStringConversion(src, dst) {
			report(call, fmt.Sprintf("conversion %s -> %s copies and allocates", src, dst))
		}
		return
	}
	if tv.IsBuiltin() {
		name := builtinName(call.Fun)
		switch name {
		case "make":
			report(call, "make allocates")
		case "new":
			report(call, "new allocates")
		case "append":
			report(call, "append may grow its backing array")
		}
		return
	}
	if callee := calleeFunc(info, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		report(call, fmt.Sprintf("fmt.%s allocates", callee.Name()))
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // slice passed whole
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(info, arg, pt) {
			report(arg, fmt.Sprintf("argument boxes %s into an interface parameter", typeName(info, arg)))
		}
	}
}

// scanReturn flags concrete values returned through interface result
// types.
func scanReturn(pkg *Package, decl *ast.FuncDecl, ret *ast.ReturnStmt, report func(n ast.Node, msg string)) {
	obj, ok := pkg.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if results.Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		if boxes(pkg.Info, r, results.At(i).Type()) {
			report(r, fmt.Sprintf("return boxes %s into an interface result", typeName(pkg.Info, r)))
		}
	}
}

// scanCompositeBoxing flags concrete values stored into interface
// element or field slots of a composite literal.
func scanCompositeBoxing(info *types.Info, lit *ast.CompositeLit, report func(n ast.Node, msg string)) {
	t := exprType(info, lit)
	if t == nil {
		return
	}
	var elemAt func(i int, key ast.Expr) types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elemAt = func(int, ast.Expr) types.Type { return u.Elem() }
	case *types.Array:
		elemAt = func(int, ast.Expr) types.Type { return u.Elem() }
	case *types.Map:
		elemAt = func(int, ast.Expr) types.Type { return u.Elem() }
	case *types.Struct:
		elemAt = func(i int, key ast.Expr) types.Type {
			if id, ok := key.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					return v.Type()
				}
				return nil
			}
			if i < u.NumFields() {
				return u.Field(i).Type()
			}
			return nil
		}
	default:
		return
	}
	for i, el := range lit.Elts {
		val, key := el, ast.Expr(nil)
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			val, key = kv.Value, kv.Key
		}
		if boxes(info, val, elemAt(i, key)) {
			report(val, fmt.Sprintf("composite literal boxes %s into an interface", typeName(info, val)))
		}
	}
}

// capturedVar returns the name of a variable the closure captures
// from its enclosing function, or "" if it captures nothing (a
// capture-free func literal compiles to a static function value and
// does not allocate).
func capturedVar(info *types.Info, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared outside the literal but not at package
		// scope.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level var
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}

// boxes reports whether storing expr into a destination of type dst
// heap-allocates an interface box: dst is an interface, expr's type
// is concrete, and the value is not pointer-shaped (pointers, maps,
// channels and funcs are stored in the interface word directly).
func boxes(info *types.Info, expr ast.Expr, dst types.Type) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	if types.IsInterface(tv.Type) {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		if tv.Type.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// allocatingStringConversion reports string<->[]byte/[]rune
// conversions, which copy.
func allocatingStringConversion(src, dst types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(src) && isByteOrRuneSlice(dst)) || (isByteOrRuneSlice(src) && isStr(dst))
}

// calleeFunc returns the called *types.Func for function and method
// calls, nil for builtins, conversions and dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	return staticCallee(info, call)
}

// builtinName returns the name of a builtin call target.
func builtinName(fun ast.Expr) string {
	if id, ok := ast.Unparen(fun).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// exprType returns the type of an expression, nil when unknown.
func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// typeName renders an expression's type for messages.
func typeName(info *types.Info, e ast.Expr) string {
	if t := exprType(info, e); t != nil {
		return t.String()
	}
	return "value"
}
