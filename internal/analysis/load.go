package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// ImportPath is the package's import path within the module.
	ImportPath string
	// Dir is the package's directory on disk.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression, object and
	// selection facts for Files.
	Info *types.Info
}

// Module is a fully loaded, type-checked Go module: every non-test
// package, in dependency order, sharing one FileSet.
type Module struct {
	// Root is the directory holding go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset positions every file of every package.
	Fset *token.FileSet
	// Packages lists the module's packages in dependency order
	// (imports precede importers).
	Packages []*Package

	byPath map[string]*Package
}

// Lookup returns the module package with the given import path, nil
// if absent.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// Local reports whether an import path names a package inside the
// module.
func (m *Module) Local(path string) bool {
	return path == m.Path || strings.HasPrefix(path, m.Path+"/")
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// chainImporter resolves module-local imports from the packages
// already checked and everything else (the standard library — the
// module has no external dependencies) from source via the stdlib
// importer.
type chainImporter struct {
	mod map[string]*types.Package
	std types.Importer
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.mod[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// LoadModule parses and type-checks every non-test package under
// root, which must contain a go.mod. It depends only on the standard
// library: sources are parsed with go/parser and checked with
// go/types, stdlib imports are resolved from GOROOT source by
// importer.ForCompiler(..., "source", ...), and module-local imports
// from the packages checked earlier in dependency order. Directories
// named testdata or vendor and hidden directories are skipped, as are
// _test.go files.
func LoadModule(root string) (*Module, error) {
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %s is not a module root: %w", root, err)
	}
	modPath := modulePath(gomod)
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module declaration in %s/go.mod", root)
	}

	// Collect package directories.
	var dirs []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dirs = append(dirs, filepath.Dir(p))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	uniq := dirs[:0]
	for _, d := range dirs {
		if !seen[d] {
			seen[d] = true
			uniq = append(uniq, d)
		}
	}
	sort.Strings(uniq)

	fset := token.NewFileSet()
	var pending []*Package
	for _, dir := range uniq {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") ||
				strings.HasSuffix(e.Name(), "_test.go") || strings.HasPrefix(e.Name(), "_") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			if !buildIncluded(e.Name(), f) {
				continue
			}
			files = append(files, f)
		}
		if len(files) > 0 {
			pending = append(pending, &Package{ImportPath: imp, Dir: dir, Files: files})
		}
	}

	m := &Module{Root: root, Path: modPath, Fset: fset, byPath: make(map[string]*Package)}
	checked := make(map[string]*types.Package)
	imp := chainImporter{mod: checked, std: importer.ForCompiler(fset, "source", nil)}

	// Check packages whose module-local imports are all done; repeat
	// until fixpoint. The module's import graph is acyclic (the
	// compiler enforces it), so lack of progress means a missing or
	// cyclic dependency.
	for len(pending) > 0 {
		progress := false
		var next []*Package
		for _, p := range pending {
			ready := true
			for _, f := range p.Files {
				for _, is := range f.Imports {
					ip := strings.Trim(is.Path.Value, `"`)
					if m.Local(ip) && checked[ip] == nil {
						ready = false
					}
				}
			}
			if !ready {
				next = append(next, p)
				continue
			}
			info := &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
			}
			conf := types.Config{Importer: imp}
			tpkg, err := conf.Check(p.ImportPath, fset, p.Files, info)
			if err != nil {
				return nil, fmt.Errorf("analysis: type-checking %s: %w", p.ImportPath, err)
			}
			p.Types = tpkg
			p.Info = info
			checked[p.ImportPath] = tpkg
			m.Packages = append(m.Packages, p)
			m.byPath[p.ImportPath] = p
			progress = true
		}
		if !progress {
			var stuck []string
			for _, p := range next {
				stuck = append(stuck, p.ImportPath)
			}
			return nil, fmt.Errorf("analysis: unresolvable imports among %v", stuck)
		}
		pending = next
	}
	return m, nil
}

// knownOS and knownArch drive the _GOOS/_GOARCH filename convention,
// mirroring the toolchain's lists closely enough for this module.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// buildIncluded reports whether a source file belongs to the package
// on the platform running the analysis, honoring both the
// name_GOOS_GOARCH.go filename convention and //go:build lines.
// Platform-specific packages (internal/netio) would otherwise
// redeclare their symbols when every variant is loaded at once.
func buildIncluded(name string, f *ast.File) bool {
	if !suffixIncluded(name) {
		return false
	}
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				expr, err := constraint.Parse(c.Text)
				if err != nil {
					return true
				}
				return expr.Eval(buildTagMatches)
			}
		}
	}
	return true
}

// buildTagMatches evaluates one //go:build tag for the current
// platform.
func buildTagMatches(tag string) bool {
	switch {
	case tag == runtime.GOOS || tag == runtime.GOARCH:
		return true
	case tag == "unix":
		return unixOS[runtime.GOOS]
	case tag == "gc":
		return true
	case strings.HasPrefix(tag, "go1"):
		// Release tags accumulate: a module that compiles here has
		// every tag its go.mod demands.
		return true
	}
	return false
}

// suffixIncluded applies the _GOOS, _GOARCH and _GOOS_GOARCH filename
// suffix rules.
func suffixIncluded(name string) bool {
	parts := strings.Split(strings.TrimSuffix(name, ".go"), "_")
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != runtime.GOARCH {
			return false
		}
		parts = parts[:len(parts)-1]
		last = parts[len(parts)-1]
	}
	if knownOS[last] && last != runtime.GOOS {
		return false
	}
	return true
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}
