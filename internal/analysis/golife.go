package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// GoLife returns the goroutine-lifecycle analyzer. Every go statement
// in module code must be provably stoppable: the spawned body (or a
// statically resolvable same-module callee, transitively) must tie
// itself to a shutdown signal — a channel receive, a select, a range
// over a channel, or a sync.WaitGroup — and when the goroutine
// belongs to a type (spawned method, or func literal inside a
// method), that type must expose Close/Stop/Shutdown so the tie is
// reachable from the public lifecycle. Two idioms are recognised as
// anchors in their own right: a method that returns a stop closure
// (the sampler pattern) and a fork-join that Waits before returning.
// Goroutines that run an external call hold up only when the callee
// is a method on a closeable value (go srv.Serve(ln) with srv.Close
// in hand); a bare external call like http.ListenAndServe can never
// be shut down and is always a finding.
func GoLife() *Analyzer {
	return &Analyzer{
		Name: "golife",
		Doc:  "every go statement must tie to a done channel, context or WaitGroup reachable from a Close/Stop",
		Run:  runGoLife,
	}
}

func runGoLife(m *Module) []Diagnostic {
	funcs := make(map[*types.Func]funcInfo)
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					funcs[obj] = funcInfo{pkg, fd}
				}
			}
		}
	}

	var diags []Diagnostic
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if msg := checkGoStmt(m, funcs, pkg, fd, gs); msg != "" {
						diags = append(diags, Diagnostic{
							Pos:      m.Fset.Position(gs.Pos()),
							Analyzer: "golife",
							Message:  msg,
						})
					}
					return true
				})
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}

// checkGoStmt validates one go statement, returning "" when it
// passes.
func checkGoStmt(m *Module, funcs map[*types.Func]funcInfo, pkg *Package, encl *ast.FuncDecl, gs *ast.GoStmt) string {
	var body *ast.BlockStmt
	var bodyPkg *Package
	var spawnedRecv *types.Named

	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		body, bodyPkg = lit.Body, pkg
	} else {
		callee := staticCallee(pkg.Info, gs.Call)
		if callee == nil {
			return "goroutine target is dynamic; tie it to a done channel via a func literal so the analyzer can see the shutdown path"
		}
		spawnedRecv = receiverNamed(callee)
		if fi, local := funcs[callee]; local {
			body, bodyPkg = fi.decl.Body, fi.pkg
		} else {
			// External callee: uninspectable. It passes only when the
			// receiver value is closeable, so closing it unblocks the
			// goroutine (go srv.Serve(ln) + srv.Close).
			if spawnedRecv != nil && closeable(spawnedRecv) {
				return ""
			}
			return fmt.Sprintf("goroutine runs external %s with no shutdown handle (no Close/Stop/Shutdown on the callee)", funcDisplayName(callee))
		}
	}

	if !hasShutdownTie(m, funcs, bodyPkg, body, make(map[*types.Func]bool)) {
		return "goroutine has no shutdown tie: no channel receive, select, channel range or WaitGroup in its body or same-module callees"
	}

	// Anchor: a goroutine owned by a type must be stoppable through
	// that type's lifecycle.
	owner := spawnedRecv
	if owner == nil && encl.Recv != nil {
		owner = receiverNamedFromDecl(pkg, encl)
	}
	if owner == nil || closeable(owner) {
		return ""
	}
	if returnsStopFunc(pkg, encl) || waitsBeforeReturn(encl) {
		return ""
	}
	return fmt.Sprintf("%s spawns a goroutine but has no Close/Stop/Shutdown method (and no stop-closure or fork-join wait)", owner.Obj().Name())
}

// receiverNamed returns the named receiver type of a method, nil for
// plain functions.
func receiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, _ := rt.(*types.Named)
	return named
}

// receiverNamedFromDecl resolves the receiver type of a method
// declaration.
func receiverNamedFromDecl(pkg *Package, fd *ast.FuncDecl) *types.Named {
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	return receiverNamed(obj)
}

// closeable reports whether *T has a Close, Stop or Shutdown method.
func closeable(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Close", "Stop", "Shutdown":
			return true
		}
	}
	return false
}

// hasShutdownTie walks a body (and same-module static callees) for a
// shutdown signal: a channel receive, a select statement, a range
// over a channel, or a WaitGroup Done/Wait.
func hasShutdownTie(m *Module, funcs map[*types.Func]funcInfo, pkg *Package, body *ast.BlockStmt, visited map[*types.Func]bool) bool {
	if body == nil {
		return false
	}
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				tied = true
			}
		case *ast.SelectStmt:
			tied = true
		case *ast.RangeStmt:
			if t := exprType(pkg.Info, n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					tied = true
				}
			}
		case *ast.CallExpr:
			callee := staticCallee(pkg.Info, n)
			if callee == nil {
				return true
			}
			if isWaitGroupMethod(callee) {
				tied = true
				return false
			}
			if fi, local := funcs[callee]; local && !visited[callee] {
				visited[callee] = true
				if hasShutdownTie(m, funcs, fi.pkg, fi.decl.Body, visited) {
					tied = true
				}
			}
		}
		return !tied
	})
	return tied
}

// isWaitGroupMethod reports a Done or Wait call on sync.WaitGroup.
func isWaitGroupMethod(fn *types.Func) bool {
	if fn.Name() != "Done" && fn.Name() != "Wait" {
		return false
	}
	named := receiverNamed(fn)
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// returnsStopFunc reports whether a function's results include a func
// type — the "Start(...) (stop func())" idiom, where the returned
// closure is the shutdown handle.
func returnsStopFunc(pkg *Package, fd *ast.FuncDecl) bool {
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	results := obj.Type().(*types.Signature).Results()
	for i := 0; i < results.Len(); i++ {
		if _, ok := results.At(i).Type().Underlying().(*types.Signature); ok {
			return true
		}
	}
	return false
}

// waitsBeforeReturn reports whether the function body contains a
// .Wait() call — the fork-join idiom where the spawner joins its own
// goroutines.
func waitsBeforeReturn(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
