package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// BufOwn returns the pooled-buffer ownership analyzer. Objects
// borrowed from a sync.Pool (or from a module function annotated
// //switchml:acquire) follow three rules inside the borrowing
// function: they must not be referenced after being handed back via
// Put (or a //switchml:release function), a function that both
// borrows and releases must release on every return path reached
// after the borrow, and a borrowed object must not escape into a
// field or package variable while the function also Puts it back — a
// retained alias outlives the recycle and the next borrower sees a
// torn buffer. A fourth rule enforces the batched-I/O contract PR 8
// documents in prose: a block handed to netio's AppendTrain must stay
// untouched until the following Flush, because GSO mode sends
// directly from the caller's storage.
func BufOwn() *Analyzer {
	return &Analyzer{
		Name: "bufown",
		Doc:  "pooled buffers: no use after Put, release on every return path, no retained aliases, no train mutation before Flush",
		Run:  runBufOwn,
	}
}

func runBufOwn(m *Module) []Diagnostic {
	acquireFns, releaseFns := annotatedPoolFns(m)
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: m.Fset.Position(pos), Analyzer: "bufown", Message: fmt.Sprintf(format, args...)})
	}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkBufOwn(m.Fset, pkg, fd, acquireFns, releaseFns, report)
				checkTrainFlush(pkg, fd, report)
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}

// annotatedPoolFns collects the module functions marked
// //switchml:acquire and //switchml:release.
func annotatedPoolFns(m *Module) (acquire, release map[*types.Func]bool) {
	acquire = make(map[*types.Func]bool)
	release = make(map[*types.Func]bool)
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if hasDirective(fd.Doc, m.Fset, "acquire") {
					acquire[obj] = true
				}
				if hasDirective(fd.Doc, m.Fset, "release") {
					release[obj] = true
				}
			}
		}
	}
	return acquire, release
}

// isPoolMethod reports whether fn is the named method on sync.Pool.
func isPoolMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// acquiredVar returns the variable a statement borrows from a pool:
// `v := pool.Get().(*T)` or `v := GetBuf(...)` with GetBuf annotated
// //switchml:acquire. nil when the statement is not a borrow.
func acquiredVar(pkg *Package, stmt ast.Stmt, acquireFns map[*types.Func]bool) *types.Var {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	rhs := ast.Unparen(as.Rhs[0])
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ast.Unparen(ta.X)
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return nil
	}
	callee := staticCallee(pkg.Info, call)
	if callee == nil || (!isPoolMethod(callee, "Get") && !acquireFns[callee]) {
		return nil
	}
	if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := pkg.Info.Uses[id].(*types.Var)
	return v
}

// releasedVar returns the variable a call returns to its pool:
// `pool.Put(v)` or `PutBuf(v)` with PutBuf annotated
// //switchml:release. nil for other calls.
func releasedVar(pkg *Package, call *ast.CallExpr, releaseFns map[*types.Func]bool) *types.Var {
	callee := staticCallee(pkg.Info, call)
	if callee == nil || (!isPoolMethod(callee, "Put") && !releaseFns[callee]) {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	arg := ast.Unparen(call.Args[0])
	if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		arg = ast.Unparen(ue.X)
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pkg.Info.Uses[id].(*types.Var)
	return v
}

// borrowState tracks one pooled variable inside one function.
type borrowState struct {
	v        *types.Var
	getPos   token.Pos
	releases []token.Pos
	deferred bool
}

// checkBufOwn applies the ownership rules to one function body.
func checkBufOwn(fset *token.FileSet, pkg *Package, fd *ast.FuncDecl, acquireFns, releaseFns map[*types.Func]bool, report func(token.Pos, string, ...any)) {
	// Pass 1: borrows and releases.
	borrows := make(map[*types.Var]*borrowState)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if stmt, ok := n.(ast.Stmt); ok {
			if v := acquiredVar(pkg, stmt, acquireFns); v != nil {
				if borrows[v] == nil {
					borrows[v] = &borrowState{v: v, getPos: stmt.Pos()}
				}
			}
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if v := releasedVar(pkg, n, releaseFns); v != nil {
				if b := borrows[v]; b != nil {
					b.releases = append(b.releases, n.Pos())
				}
			}
		case *ast.DeferStmt:
			if v := releasedVar(pkg, n.Call, releaseFns); v != nil {
				if b := borrows[v]; b != nil {
					b.deferred = true
				}
			}
		}
		return true
	})

	// Pass 2: release-on-every-return. Only functions that both
	// borrow and release are "borrowing functions"; a function that
	// never Puts transfers ownership (the mesh hand-off pattern) and
	// is exempt.
	for _, b := range borrows {
		if len(b.releases) == 0 || b.deferred {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || ret.Pos() < b.getPos {
				return true
			}
			covered := false
			for _, rp := range b.releases {
				if rp < ret.Pos() {
					covered = true
				}
			}
			if !covered {
				report(ret.Pos(), "return leaks pooled %s: no Put/release on this path (borrowed at line %d)",
					b.v.Name(), fset.Position(b.getPos).Line)
			}
			return true
		})
	}

	// Pass 3: use-after-release and retained aliases, per statement
	// list so branch-local Puts don't poison the other branch.
	var walkList func(list []ast.Stmt)
	walkList = func(list []ast.Stmt) {
		released := make(map[*types.Var]bool)
		for _, stmt := range list {
			// A fresh borrow or any reassignment revives the name.
			if v := acquiredVar(pkg, stmt, acquireFns); v != nil {
				delete(released, v)
			} else if as, ok := stmt.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
							delete(released, v)
						}
						if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
							delete(released, v)
						}
					}
				}
			}
			// Flag uses of already-released variables in this
			// statement (before recording its own releases, so the
			// releasing call itself is exempt but a second Put is
			// not... a double Put IS a use).
			for v := range released {
				if pos, used := stmtUsesVar(pkg, stmt, v); used {
					report(pos, "%s used after it was returned to the pool", v.Name())
					delete(released, v) // one report per release
				}
			}
			if es, ok := stmt.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if v := releasedVar(pkg, call, releaseFns); v != nil && borrows[v] != nil {
						released[v] = true
					}
				}
			}
		}
		// Recurse into nested blocks.
		for _, stmt := range list {
			ast.Inspect(stmt, func(n ast.Node) bool {
				if bs, ok := n.(*ast.BlockStmt); ok {
					walkList(bs.List)
					return false
				}
				if cc, ok := n.(*ast.CaseClause); ok {
					walkList(cc.Body)
					return false
				}
				if cm, ok := n.(*ast.CommClause); ok {
					walkList(cm.Body)
					return false
				}
				return true
			})
		}
	}
	walkList(fd.Body.List)

	// Pass 4: retained aliases. A borrowing function (one that also
	// releases) must not store the pooled object — or a selector off
	// it — into a struct field or package-level variable.
	for _, b := range borrows {
		if len(b.releases) == 0 && !b.deferred {
			continue // ownership transfer: storing is the point
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) || !exprRootedAt(pkg, rhs, b.v) {
					continue
				}
				lhs := ast.Unparen(as.Lhs[i])
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					report(as.Pos(), "pooled %s escapes into field %s while this function also puts it back",
						b.v.Name(), sel.Sel.Name)
				} else if id, ok := lhs.(*ast.Ident); ok {
					if v, ok := pkg.Info.Uses[id].(*types.Var); ok && isPackageLevel(v) {
						report(as.Pos(), "pooled %s escapes into package variable %s while this function also puts it back",
							b.v.Name(), v.Name())
					}
				}
			}
			return true
		})
	}
}

// stmtUsesVar reports whether the statement references v, returning
// the first use position.
func stmtUsesVar(pkg *Package, stmt ast.Stmt, v *types.Var) (token.Pos, bool) {
	var at token.Pos
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == v {
			at, found = id.Pos(), true
			return false
		}
		return true
	})
	return at, found
}

// exprRootedAt reports whether expr is v, a selector off v, or a
// slice/index of v — an alias of the pooled object.
func exprRootedAt(pkg *Package, expr ast.Expr, v *types.Var) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return pkg.Info.Uses[e] == v
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				return false
			}
			expr = e.X
		default:
			return false
		}
	}
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}

// checkTrainFlush enforces netio's AppendTrain contract: the block
// argument must not be reassigned between AppendTrain and the next
// Flush in the same statement list — in GSO mode the send at Flush
// reads the caller's storage directly.
func checkTrainFlush(pkg *Package, fd *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	var walkList func(list []ast.Stmt)
	walkList = func(list []ast.Stmt) {
		pending := make(map[string]bool) // block expr paths staged by AppendTrain
		for _, stmt := range list {
			if stmtCallsMethod(stmt, "Flush") {
				for k := range pending {
					delete(pending, k)
				}
			}
			if as, ok := stmt.(*ast.AssignStmt); ok && len(pending) > 0 {
				for _, lhs := range as.Lhs {
					if p := exprPath(lhs); p != "" && pending[p] {
						report(as.Pos(), "%s reassigned between AppendTrain and Flush; the staged train still references it", p)
						delete(pending, p)
					}
				}
			}
			ast.Inspect(stmt, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "AppendTrain" && len(call.Args) > 0 {
					if p := exprPath(call.Args[0]); p != "" {
						pending[p] = true
					}
				}
				return true
			})
		}
		for _, stmt := range list {
			ast.Inspect(stmt, func(n ast.Node) bool {
				if bs, ok := n.(*ast.BlockStmt); ok {
					walkList(bs.List)
					return false
				}
				return true
			})
		}
	}
	walkList(fd.Body.List)
}

// stmtCallsMethod reports whether the statement contains a method
// call with the given selector name.
func stmtCallsMethod(stmt ast.Stmt, name string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprPath flattens an ident/selector chain ("sh.block"); "" for
// anything more complex.
func exprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.SliceExpr:
		return exprPath(e.X)
	}
	return ""
}
