package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// WireWidth returns the register-width analyzer. Packet header fields
// occupy fixed-width switch registers in the p4sim Tofino model —
// the pool-version bit is literally one bit of a register pair
// (Appendix B), slot indices address a pool of at most 2^32 slots,
// and worker ids index 16-bit-wide bitmap words. Go's type system
// enforces only the byte-level field widths of the Go struct;
// //switchml:wire bits=N on a struct field declares the narrower
// on-the-wire width, and the analyzer proves that every constant
// stored into — or compared against — the field fits it. It also
// rejects annotations wider than the Go type can hold.
func WireWidth() *Analyzer {
	return &Analyzer{
		Name: "wirewidth",
		Doc:  "constants feeding //switchml:wire bits=N fields must fit N bits",
		Run:  runWireWidth,
	}
}

// wireField is one annotated struct field.
type wireField struct {
	display string
	bits    int
}

func runWireWidth(m *Module) []Diagnostic {
	var diags []Diagnostic
	bad := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos: m.Fset.Position(pos), Analyzer: "wirewidth", Message: fmt.Sprintf(format, args...),
		})
	}

	// Pass 1: collect annotated fields from type declarations.
	fields := make(map[types.Object]wireField)
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, fld := range st.Fields.List {
						bits, ok := fieldWireBits(fld, m.Fset)
						if !ok {
							continue
						}
						for _, name := range fld.Names {
							obj := pkg.Info.Defs[name]
							if obj == nil {
								continue
							}
							display := fmt.Sprintf("%s.%s.%s", pkg.Types.Name(), ts.Name.Name, name.Name)
							max := typeBits(obj.Type())
							if max == 0 {
								bad(name.Pos(), "//switchml:wire on %s: not an integer field", display)
								continue
							}
							if bits > max {
								bad(name.Pos(), "//switchml:wire bits=%d on %s exceeds its %d-bit Go type", bits, display, max)
								continue
							}
							fields[obj] = wireField{display: display, bits: bits}
						}
					}
				}
			}
		}
	}
	if len(fields) == 0 {
		return diags
	}

	// Pass 2: check constant stores and comparisons module-wide.
	check := func(pos token.Pos, info *types.Info, val ast.Expr, wf wireField) {
		tv, ok := info.Types[val]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			return
		}
		if constant.Sign(tv.Value) < 0 {
			bad(pos, "negative constant %s stored in unsigned %d-bit wire field %s",
				tv.Value, wf.bits, wf.display)
			return
		}
		var max constant.Value
		if wf.bits == 64 {
			max = constant.MakeUint64(^uint64(0))
		} else {
			max = constant.MakeUint64(1<<uint(wf.bits) - 1)
		}
		if constant.Compare(tv.Value, token.GTR, max) {
			bad(pos, "constant %s overflows the %d-bit wire width of %s",
				tv.Value, wf.bits, wf.display)
		}
	}
	for _, pkg := range m.Packages {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i, lhs := range n.Lhs {
						sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						if wf, ok := fields[addressableObject(info, sel)]; ok {
							check(n.Rhs[i].Pos(), info, n.Rhs[i], wf)
						}
					}
				case *ast.CompositeLit:
					t := exprType(info, n)
					if t == nil {
						return true
					}
					st, ok := t.Underlying().(*types.Struct)
					if !ok {
						return true
					}
					for i, el := range n.Elts {
						var obj types.Object
						val := el
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							if id, ok := kv.Key.(*ast.Ident); ok {
								obj = info.Uses[id]
							}
							val = kv.Value
						} else if i < st.NumFields() {
							obj = st.Field(i)
						}
						if wf, ok := fields[obj]; ok {
							check(val.Pos(), info, val, wf)
						}
					}
				case *ast.BinaryExpr:
					switch n.Op {
					case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
					default:
						return true
					}
					pairs := [2][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}}
					for _, p := range pairs {
						sel, ok := ast.Unparen(p[0]).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						if wf, ok := fields[addressableObject(info, sel)]; ok {
							check(p[1].Pos(), info, p[1], wf)
						}
					}
				}
				return true
			})
		}
	}
	return diags
}

// fieldWireBits extracts a //switchml:wire bits=N directive from a
// struct field's doc or trailing comment. Malformed directives are
// reported by collectDirectives; here they are skipped.
func fieldWireBits(fld *ast.Field, fset *token.FileSet) (int, bool) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		for _, d := range groupDirectives(cg, fset) {
			if d.verb != "wire" {
				continue
			}
			if n, err := parseWireBits(d.args); err == nil {
				return n, true
			}
		}
	}
	return 0, false
}

// typeBits returns the bit width of an integer type, 0 for
// non-integers. Platform-width int/uint count as 64 (the analyzer
// targets 64-bit builds, and a narrower platform only tightens the
// real bound).
func typeBits(t types.Type) int {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	case types.Int64, types.Uint64, types.Int, types.Uint, types.Uintptr:
		return 64
	default:
		return 0
	}
}
