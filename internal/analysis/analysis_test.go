package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts the quoted regex from a `// want "..."` comment.
var wantRe = regexp.MustCompile(`// want ("(?:[^"\\]|\\.)*")`)

// want is one golden expectation: a diagnostic whose message matches
// re must appear at file:line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// collectWants scans the testdata module for want comments. A comment
// trailing code expects the diagnostic on its own line; a comment on
// a line of its own expects it on the next line (used for positions
// inside comments, like malformed directives).
func collectWants(t *testing.T, root string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		src, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			matches := wantRe.FindAllStringSubmatchIndex(line, -1)
			if matches == nil {
				continue
			}
			// A line may carry several wants (one per expected
			// diagnostic); standalone placement is decided by the
			// first one.
			wantLine := i + 1
			if strings.TrimSpace(line[:matches[0][0]]) == "" {
				wantLine++ // standalone comment: expectation is for the next line
			}
			for _, m := range matches {
				quoted := line[m[2]:m[3]]
				pat, err := strconv.Unquote(quoted)
				if err != nil {
					t.Fatalf("%s:%d: bad want %s: %v", p, i+1, quoted, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: want %q does not compile: %v", p, i+1, pat, err)
				}
				wants = append(wants, &want{file: p, line: wantLine, re: re, raw: pat})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestGolden runs the full suite over the seeded testdata module and
// requires an exact correspondence between diagnostics and want
// comments: every want matched by a diagnostic at its position, and
// no diagnostic without a want.
func TestGolden(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, All())
	if len(diags) == 0 {
		t.Fatal("no diagnostics on the seeded testdata module; the analyzers are not firing")
	}
	wants := collectWants(t, root)
	if len(wants) == 0 {
		t.Fatal("no want comments found under testdata/mod")
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q not reported", w.file, w.line, w.raw)
		}
	}
}

// TestSingleAnalyzer checks ByName selection: running only wirewidth
// over the testdata module must produce wirewidth findings and
// nothing from the other analyzers (directive validation always
// runs).
func TestSingleAnalyzer(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	only, err := ByName([]string{"wirewidth"})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, only)
	sawWire := false
	for _, d := range diags {
		switch d.Analyzer {
		case "wirewidth":
			sawWire = true
		case "directive":
			// directive validation is part of every run
		default:
			t.Errorf("analyzer %q ran despite selecting only wirewidth: %s", d.Analyzer, d)
		}
	}
	if !sawWire {
		t.Error("no wirewidth findings on the seeded module")
	}

	if _, err := ByName([]string{"nope"}); err == nil {
		t.Error("ByName accepted an unknown analyzer name")
	}
}

// TestRepoClean is the regression gate in unit-test form: the repo's
// own module must produce zero findings, the same invariant `make
// lint` enforces.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(m, All()) {
		t.Errorf("repo is not vet-clean: %s", d)
	}
}

func TestParseWireBits(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		fail bool
	}{
		{"bits=3", 3, false},
		{"bits=64", 64, false},
		{"bits=1", 1, false},
		{"bits=0", 0, true},
		{"bits=65", 0, true},
		{"bits=banana", 0, true},
		{"width=3", 0, true},
		{"", 0, true},
	}
	for _, c := range cases {
		n, err := parseWireBits(c.in)
		if c.fail != (err != nil) || n != c.n {
			t.Errorf("parseWireBits(%q) = %d, %v; want n=%d fail=%v", c.in, n, err, c.n, c.fail)
		}
	}
}

func TestParseAllow(t *testing.T) {
	name, why, ok := parseAllow("hotpath -- guarded grow path")
	if !ok || name != "hotpath" || why != "guarded grow path" {
		t.Errorf("parseAllow = %q, %q, %v", name, why, ok)
	}
	if _, _, ok := parseAllow("hotpath"); ok {
		t.Error("parseAllow accepted a suppression without --")
	}
	if _, why, ok := parseAllow("hotpath --"); ok && why != "" {
		t.Error("parseAllow fabricated a justification")
	}
}

func TestFindModuleRoot(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("FindModuleRoot returned %s without a go.mod: %v", root, err)
	}
}
