package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Directive comments wire source code to the analyzers:
//
//	//switchml:hotpath
//	    On a function's doc comment: the function (and every
//	    statically resolvable same-module callee) must not allocate.
//	//switchml:deterministic
//	    On a package's doc comment: the package must not consult wall
//	    clocks, the global math/rand source, or map iteration order.
//	//switchml:wire bits=N
//	    On a struct field: constants stored in (or compared against)
//	    the field must fit in N bits, the width of the switch register
//	    that carries it.
//	//switchml:dispatch
//	    On (or on the line above) a switch over a protocol kind: the
//	    switch must handle every declared constant of the tag's type or
//	    carry a default arm that counts/logs the drop, and every
//	    constant must appear in the FuzzCodec seed corpus.
//	//switchml:acquire
//	    On a function's doc comment: callers receive a pooled object
//	    from this function (the module's pool getters), subjecting the
//	    result to the bufown ownership rules.
//	//switchml:release
//	    On a function's doc comment: the function's first argument is
//	    returned to its pool; the caller must not touch it afterwards.
//	//switchml:allow <analyzer> -- <justification>
//	    Suppresses the named analyzer's findings on the same line, the
//	    line below (for a comment on its own line), or — on a function's
//	    doc comment — the whole function. The justification is
//	    mandatory: a suppression without one is itself a finding, and
//	    the suppress analyzer reports any allow that no longer
//	    suppresses anything.
const dirPrefix = "//switchml:"

// directive is one parsed //switchml: comment.
type directive struct {
	verb string // "hotpath", "deterministic", "wire", "allow"
	args string // raw text after the verb
	pos  token.Position
}

// parseDirective splits a raw comment into a directive, returning
// ok=false for ordinary comments.
func parseDirective(c *ast.Comment, fset *token.FileSet) (directive, bool) {
	text, ok := strings.CutPrefix(c.Text, dirPrefix)
	if !ok {
		return directive{}, false
	}
	verb, args, _ := strings.Cut(text, " ")
	return directive{verb: verb, args: strings.TrimSpace(args), pos: fset.Position(c.Pos())}, true
}

// groupDirectives returns the directives of a comment group (nil-safe).
func groupDirectives(cg *ast.CommentGroup, fset *token.FileSet) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		if d, ok := parseDirective(c, fset); ok {
			out = append(out, d)
		}
	}
	return out
}

// hasDirective reports whether a comment group carries the verb.
func hasDirective(cg *ast.CommentGroup, fset *token.FileSet, verb string) bool {
	for _, d := range groupDirectives(cg, fset) {
		if d.verb == verb {
			return true
		}
	}
	return false
}

// allowsAnalyzer reports whether a comment group carries a
// well-formed //switchml:allow for the named analyzer.
func allowsAnalyzer(cg *ast.CommentGroup, fset *token.FileSet, analyzer string) bool {
	for _, d := range groupDirectives(cg, fset) {
		if d.verb != "allow" {
			continue
		}
		name, why, ok := parseAllow(d.args)
		if ok && name == analyzer && why != "" {
			return true
		}
	}
	return false
}

// parseAllow splits "name -- justification".
func parseAllow(args string) (name, why string, ok bool) {
	name, why, ok = strings.Cut(args, "--")
	return strings.TrimSpace(name), strings.TrimSpace(why), ok
}

// parseWireBits extracts N from "bits=N".
func parseWireBits(args string) (int, error) {
	rest, ok := strings.CutPrefix(args, "bits=")
	if !ok {
		return 0, fmt.Errorf("want bits=N, got %q", args)
	}
	n, err := strconv.Atoi(strings.TrimSpace(rest))
	if err != nil || n < 1 || n > 64 {
		return 0, fmt.Errorf("bits=%q is not an integer in [1,64]", rest)
	}
	return n, nil
}

// allowRecord is one well-formed //switchml:allow directive, tracked
// so the suppress analyzer can report allows that no longer suppress
// anything.
type allowRecord struct {
	// Analyzer is the suppressed analyzer's name.
	Analyzer string
	// Why is the mandatory justification after "--".
	Why string
	// Pos locates the directive comment.
	Pos token.Position
	// used is set when the record suppresses (or would suppress) a
	// finding.
	used bool
}

// directiveIndex is the module-wide suppression table plus the
// findings about the directives themselves (unknown verbs, allows
// with no justification).
type directiveIndex struct {
	// allows maps filename -> line -> analyzer name -> its record.
	allows map[string]map[int]map[string]*allowRecord
	// records lists every well-formed allow in scan order.
	records   []*allowRecord
	malformed []Diagnostic
}

// knownVerbs are the directives the suite understands.
var knownVerbs = map[string]bool{
	"hotpath": true, "deterministic": true, "wire": true, "allow": true,
	"dispatch": true, "acquire": true, "release": true,
}

// knownAnalyzers are the valid //switchml:allow targets.
func knownAnalyzers() map[string]bool {
	names := make(map[string]bool)
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

// collectDirectives scans every comment in the module, building the
// allow table and validating directive syntax.
func collectDirectives(m *Module) *directiveIndex {
	idx := &directiveIndex{allows: make(map[string]map[int]map[string]*allowRecord)}
	analyzers := knownAnalyzers()
	bad := func(pos token.Position, format string, args ...any) {
		idx.malformed = append(idx.malformed, Diagnostic{
			Pos: pos, Analyzer: "directive", Message: fmt.Sprintf(format, args...),
		})
	}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := parseDirective(c, m.Fset)
					if !ok {
						continue
					}
					switch {
					case !knownVerbs[d.verb]:
						bad(d.pos, "unknown directive //switchml:%s", d.verb)
					case d.verb == "allow":
						name, why, cut := parseAllow(d.args)
						if !cut || why == "" {
							bad(d.pos, "suppression needs a justification: //switchml:allow %s -- <why>", name)
							continue
						}
						if !analyzers[name] {
							bad(d.pos, "//switchml:allow names unknown analyzer %q", name)
							continue
						}
						byLine := idx.allows[d.pos.Filename]
						if byLine == nil {
							byLine = make(map[int]map[string]*allowRecord)
							idx.allows[d.pos.Filename] = byLine
						}
						set := byLine[d.pos.Line]
						if set == nil {
							set = make(map[string]*allowRecord)
							byLine[d.pos.Line] = set
						}
						rec := &allowRecord{Analyzer: name, Why: why, Pos: d.pos}
						set[name] = rec
						idx.records = append(idx.records, rec)
					case d.verb == "wire":
						if _, err := parseWireBits(d.args); err != nil {
							bad(d.pos, "bad //switchml:wire directive: %v", err)
						}
					}
				}
			}
		}
	}
	return idx
}

// suppressed reports whether an //switchml:allow for the analyzer
// covers the position — same line (trailing comment) or the line
// above (standalone comment) — and marks the matching record used so
// the suppress analyzer can tell live allows from stale ones.
func (idx *directiveIndex) suppressed(analyzer string, pos token.Position) bool {
	byLine := idx.allows[pos.Filename]
	if byLine == nil {
		return false
	}
	hit := false
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if rec := byLine[line][analyzer]; rec != nil {
			rec.used = true
			hit = true
		}
	}
	return hit
}

// AllowDirective is one //switchml:allow suppression, exported for
// the cmd/switchml-vet -allows report.
type AllowDirective struct {
	// Pos locates the directive comment.
	Pos token.Position
	// Analyzer is the suppressed analyzer.
	Analyzer string
	// Why is the recorded justification.
	Why string
}

// Allows lists every well-formed //switchml:allow in the module in
// scan order (sorted by file, then line).
func Allows(m *Module) []AllowDirective {
	idx := collectDirectives(m)
	out := make([]AllowDirective, 0, len(idx.records))
	for _, rec := range idx.records {
		out = append(out, AllowDirective{Pos: rec.Pos, Analyzer: rec.Analyzer, Why: rec.Why})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}
