// Package analysis is switchml's project-invariant static-analysis
// suite. The paper's guarantees rest on properties the Go compiler
// does not check: the per-packet cycle must not allocate (§3.2's
// line-rate budget), the simulation stack must stay deterministic for
// replay-based evaluation (§5.5, §5.6), the aggregator's lock-free
// fast path must never mix atomic and plain access to the same field,
// and protocol constants must fit the register widths the Tofino
// model (internal/p4sim) enforces. The eight analyzers here —
// hotpath, determinism, atomicfield, wirewidth, kinddispatch, bufown,
// golife and suppress — turn those invariants into a build gate
// (`make lint`, cmd/switchml-vet).
//
// The suite is built purely on the standard library (go/parser,
// go/ast, go/types, go/token): LoadModule type-checks the whole
// module with stdlib imports resolved from GOROOT source, so the tool
// adds no dependencies and works offline.
//
// Source directives (see DESIGN.md "Static analysis & invariants"):
//
//	//switchml:hotpath           function must not allocate
//	//switchml:deterministic     package must not consult wall clocks,
//	                             global randomness or map order
//	//switchml:wire bits=N       constants stored in this field must
//	                             fit N bits
//	//switchml:dispatch          the adjacent switch must handle every
//	                             declared kind or count its drops
//	//switchml:acquire           function hands out a pooled object
//	//switchml:release           function returns its first argument
//	                             to the pool
//	//switchml:allow <analyzer> -- <justification>
//	                             suppress findings on this line (or the
//	                             line below, or this declaration)
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Pos locates the offending code.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Message describes the violated invariant.
	Message string
}

// String formats the diagnostic the way compilers do:
// path:line:col: analyzer: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one whole-module invariant checker.
type Analyzer struct {
	// Name is the analyzer's identifier, used in reports and in
	// //switchml:allow directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the module and returns its findings.
	Run func(m *Module) []Diagnostic
}

// All returns the suite's analyzers in report order. Suppress runs
// last: it re-runs the others internally to decide which
// //switchml:allow directives still earn their keep.
func All() []*Analyzer {
	return []*Analyzer{
		Hotpath(), Determinism(), AtomicField(), WireWidth(),
		KindDispatch(), BufOwn(), GoLife(), Suppress(),
	}
}

// ByName returns the named analyzers, or an error naming the unknown
// one. An empty list selects All.
func ByName(names []string) ([]*Analyzer, error) {
	all := All()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over the module, drops findings
// suppressed by //switchml:allow directives, and returns the rest
// sorted by position. Suppressions must carry a justification; a bare
// allow is itself reported.
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	dirs := collectDirectives(m)
	var out []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Run(m) {
			if dirs.suppressed(a.Name, d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	out = append(out, dirs.malformed...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
