package allreduce

import "switchml/internal/packet"

// Analytic line-rate bounds, the dashed reference lines of Figures 2,
// 4, 6 and 7. All take the physical link rate in bits per second and
// return aggregated tensor elements per second (or times derived from
// them).

// SwitchMLLineRateATE returns the peak ATE/s of in-network
// aggregation: every element crosses each worker's link once per
// direction, in packets of k elements plus the 52-byte header
// (§2.3's 2|U| communication cost).
func SwitchMLLineRateATE(bitsPerSec float64, slotElems int) float64 {
	if slotElems <= 0 {
		slotElems = packet.DefaultElems
	}
	pktBytes := float64(packet.HeaderBytes + packet.ElemBytes*slotElems)
	goodput := bitsPerSec / 8 * float64(packet.ElemBytes*slotElems) / pktBytes
	return goodput / packet.ElemBytes
}

// RingLineRateATE returns the peak ATE/s of bandwidth-optimal ring
// all-reduce over MTU frames: each worker sends (and receives)
// 4(n−1)|U|/n bytes per |U| bytes aggregated, i.e. 2(n−1)/n elements
// sent per element aggregated (§2.3).
func RingLineRateATE(bitsPerSec float64, workers int) float64 {
	if workers <= 1 {
		return 0
	}
	n := float64(workers)
	goodput := bitsPerSec / 8 * mtuPayload / (mtuPayload + mtuOverhead)
	bytesPerElem := 2 * (n - 1) / n * packet.ElemBytes
	return goodput / bytesPerElem
}

// PSLineRateATE returns the peak ATE/s of the dedicated
// parameter-server design: each worker sends and receives |U| bytes
// (§2.3's 2|U| cost) in aggregation packets of packetBytes payload
// plus the 52-byte header budget. With the default 128-byte payload
// the bound equals SwitchML's; Figure 7's MTU variant passes 1460.
func PSLineRateATE(bitsPerSec float64, packetBytes int) float64 {
	if packetBytes <= 0 {
		packetBytes = 128
	}
	goodput := bitsPerSec / 8 * float64(packetBytes) / float64(packetBytes+52)
	return goodput / packet.ElemBytes
}

// SwitchMLLineRateTAT returns the wire-limited tensor aggregation
// time for a tensor of elems elements.
func SwitchMLLineRateTAT(bitsPerSec float64, slotElems, elems int) float64 {
	return float64(elems) / SwitchMLLineRateATE(bitsPerSec, slotElems)
}
