package allreduce

import (
	"fmt"

	"switchml/internal/netsim"
)

// RunHalvingDoubling executes the recursive halving-and-doubling
// all-reduce (§2.1, [57]): log2(n) reduce-scatter steps exchanging
// |U|/2, |U|/4, ... with partners at distance 1, 2, 4, ..., followed
// by the mirrored all-gather. The worker count must be a power of
// two. On return every row of updates holds the elementwise sum.
func RunHalvingDoubling(cfg Config, updates [][]int32) (Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return Result{}, err
	}
	n := cfg.Workers
	if n&(n-1) != 0 {
		return Result{}, fmt.Errorf("allreduce: halving-doubling needs a power-of-two worker count, got %d", n)
	}
	if len(updates) != n {
		return Result{}, fmt.Errorf("allreduce: got %d updates for %d workers", len(updates), n)
	}
	d := len(updates[0])
	for i, u := range updates {
		if len(u) != d {
			return Result{}, fmt.Errorf("allreduce: update %d has %d elems, want %d", i, len(u), d)
		}
	}
	if n == 1 || d == 0 {
		return Result{Elems: d}, nil
	}

	steps := 0
	for 1<<steps < n {
		steps++
	}
	workers := make([]*hdWorker, n)
	nodes := make([]netsim.Node, n)
	for i := range workers {
		workers[i] = &hdWorker{cfg: &cfg, rank: i, n: n, steps: steps, buf: updates[i]}
		workers[i].lo, workers[i].hi = 0, d
		nodes[i] = workers[i]
	}
	tp := newTopo(&cfg, nodes)
	for _, w := range workers {
		w.tp = tp
	}
	for _, w := range workers {
		w.sendStep()
	}
	for _, w := range workers {
		// Kick workers whose first inbound range is empty (d < n).
		w.advance()
	}
	tp.sim.Run()

	res := Result{Elems: d}
	for i, w := range workers {
		if !w.finished {
			return Result{}, fmt.Errorf("allreduce: hd worker %d did not finish", i)
		}
		if w.doneAt > res.Time {
			res.Time = w.doneAt
		}
	}
	return res, nil
}

// hdWorker is one rank of the halving-doubling exchange. During
// reduce-scatter its responsibility window [lo,hi) halves each step;
// during all-gather it doubles back.
type hdWorker struct {
	cfg   *Config
	tp    *topo
	rank  int
	n     int
	steps int
	buf   []int32
	// lo,hi is the window this worker is currently responsible for.
	lo, hi int
	// step runs 0..2*steps-1.
	step          int
	recvd, expect int
	// windows[s] records [lo,hi) before reduce-scatter step s, so the
	// all-gather can mirror it.
	windows  [][2]int
	deferred []*burst
	finished bool
	doneAt   netsim.Time
}

// plan returns, for the current step, the partner rank, the range to
// send, and the range to receive.
func (w *hdWorker) plan() (partner, sendLo, sendHi, recvLo, recvHi int) {
	if w.step < w.steps {
		// Reduce-scatter step s: partner at distance 2^s; the pair
		// splits the current window, lower rank keeps the lower half.
		s := w.step
		partner = w.rank ^ (1 << s)
		mid := (w.lo + w.hi) / 2
		if w.rank < partner {
			return partner, mid, w.hi, w.lo, mid
		}
		return partner, w.lo, mid, mid, w.hi
	}
	// All-gather step s: mirror reduce-scatter step (steps-1-s).
	s := 2*w.steps - 1 - w.step // s counts down steps-1 .. 0
	partner = w.rank ^ (1 << s)
	win := w.windows[s]
	mid := (win[0] + win[1]) / 2
	if w.rank < partner {
		// We own the lower half; send it, receive the upper half.
		return partner, win[0], mid, mid, win[1]
	}
	return partner, mid, win[1], win[0], mid
}

func (w *hdWorker) sendStep() {
	if w.step < w.steps {
		w.windows = append(w.windows, [2]int{w.lo, w.hi})
	}
	partner, sLo, sHi, rLo, rHi := w.plan()
	burstElems := w.cfg.BurstBytes / 4
	seq := 0
	for off := sLo; off < sHi; off += burstElems {
		end := off + burstElems
		if end > sHi {
			end = sHi
		}
		data := make([]int32, end-off)
		copy(data, w.buf[off:end])
		w.tp.send(&burst{
			src: w.rank, dst: partner,
			data: data, step: w.step, seq: seq,
			wire: wireBytes((end - off) * 4),
		})
		seq++
	}
	w.recvd, w.expect = 0, totalBursts(rHi-rLo, burstElems)
}

func (w *hdWorker) Deliver(msg netsim.Message) {
	b := msg.(*burst)
	if w.finished {
		return
	}
	if b.step != w.step {
		w.deferred = append(w.deferred, b)
		return
	}
	w.apply(b)
	w.advance()
}

func (w *hdWorker) apply(b *burst) {
	_, _, _, rLo, _ := w.plan()
	off := rLo + b.seq*(w.cfg.BurstBytes/4)
	if b.step < w.steps {
		for i, v := range b.data {
			w.buf[off+i] += v
		}
	} else {
		copy(w.buf[off:off+len(b.data)], b.data)
	}
	w.recvd++
}

func (w *hdWorker) advance() {
	for w.recvd == w.expect {
		if w.step < w.steps {
			// Shrink the window to the received half.
			_, _, _, rLo, rHi := w.plan()
			w.lo, w.hi = rLo, rHi
		}
		w.step++
		if w.step == 2*w.steps {
			w.finished = true
			w.doneAt = w.tp.sim.Now()
			return
		}
		w.sendStep()
		var rest []*burst
		for _, b := range w.deferred {
			if b.step == w.step {
				w.apply(b)
			} else {
				rest = append(rest, b)
			}
		}
		w.deferred = rest
	}
}
