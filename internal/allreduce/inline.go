package allreduce

import (
	"fmt"

	"switchml/internal/netsim"
)

// PeerMsg is a host-to-host collective message travelling a foreign
// fabric. The rack's crossbar forwards anything implementing it
// between worker hosts while a job is degraded, without knowing the
// collective's internals.
type PeerMsg interface {
	netsim.Message
	// PeerSrc returns the sending rank.
	PeerSrc() int
	// PeerDst returns the destination rank.
	PeerDst() int
}

// PeerSrc implements PeerMsg.
func (b *burst) PeerSrc() int { return b.src }

// PeerDst implements PeerMsg.
func (b *burst) PeerDst() int { return b.dst }

// Reliable marks ring bursts as netsim.ReliableMessage: the host
// collective runs over the kernel's byte-stream transport, which
// retransmits below the level the simulator models, so the ring has no
// loss recovery of its own and its traffic must not be subject to a
// link's loss process.
func (b *burst) Reliable() bool { return true }

// InlineRing is a ring all-reduce embedded in a caller-owned event
// loop instead of the package's private topology: the degraded-mode
// fabric of the self-healing rack. The caller routes outbound PeerMsg
// traffic over its own links (so bandwidth and propagation are
// charged by the host simulation) and feeds inbound messages back via
// Deliver. Determinism is inherited from the host loop — InlineRing
// itself keeps no clock and draws no randomness.
//
// Ranks are positions in the buffers slice, which the caller builds
// from the live membership; buffers are summed elementwise in place,
// every rank ending with the identical total (int32 addition is
// commutative and associative, so the ring total is bit-identical to
// the switch total for the same contributor set).
type InlineRing struct {
	workers []*ringWorker
	left    int
	onAll   func()
	started bool
}

// NewInlineRing builds the embedded ring. Only Workers and BurstBytes
// of cfg matter (timing is the host loop's business); send routes one
// message toward PeerDst; now stamps completion times; onAll fires
// once, when every rank holds the full sum — for a trivial ring (one
// rank, or empty buffers) it fires inside Start.
func NewInlineRing(cfg Config, buffers [][]int32, send func(PeerMsg), now func() netsim.Time, onAll func()) (*InlineRing, error) {
	cfg.Workers = len(buffers)
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	n := len(buffers)
	if n == 0 {
		return nil, fmt.Errorf("allreduce: inline ring needs at least one buffer")
	}
	d := len(buffers[0])
	for i, b := range buffers {
		if len(b) != d {
			return nil, fmt.Errorf("allreduce: buffer %d has %d elems, want %d", i, len(b), d)
		}
	}
	ir := &InlineRing{left: n, onAll: onAll}
	if n == 1 || d == 0 {
		// Nothing to exchange; Start completes the collective.
		ir.left = 0
		return ir, nil
	}
	cfgCopy := cfg
	ir.workers = make([]*ringWorker, n)
	for i := range ir.workers {
		w := &ringWorker{
			cfg:  &cfgCopy,
			rank: i, n: n, buf: buffers[i],
			send: func(b *burst) { send(b) },
			now:  now,
		}
		w.onDone = ir.rankDone
		ir.workers[i] = w
	}
	return ir, nil
}

func (ir *InlineRing) rankDone() {
	ir.left--
	if ir.left == 0 && ir.onAll != nil {
		ir.onAll()
	}
}

// Start kicks every rank's first step. It must be called exactly once,
// from inside the host event loop (sends are charged from the current
// virtual time).
func (ir *InlineRing) Start() {
	if ir.started {
		panic("allreduce: InlineRing started twice")
	}
	ir.started = true
	if len(ir.workers) == 0 {
		if ir.onAll != nil {
			ir.onAll()
		}
		return
	}
	for _, w := range ir.workers {
		w.sendStep()
	}
	for _, w := range ir.workers {
		// Ranks whose first inbound chunk is empty (d < n) advance
		// without traffic.
		w.advance()
	}
}

// Deliver feeds an inbound message to its destination rank. Messages
// that are not this ring's traffic are reported false and ignored.
func (ir *InlineRing) Deliver(m netsim.Message) bool {
	b, ok := m.(*burst)
	if !ok {
		return false
	}
	if b.dst < 0 || b.dst >= len(ir.workers) {
		return false
	}
	ir.workers[b.dst].Deliver(b)
	return true
}

// Done reports whether every rank holds the full sum.
func (ir *InlineRing) Done() bool { return ir.left == 0 }

// DoneAt returns the completion time of the slowest rank (zero for a
// trivial ring).
func (ir *InlineRing) DoneAt() netsim.Time {
	var t netsim.Time
	for _, w := range ir.workers {
		if w.doneAt > t {
			t = w.doneAt
		}
	}
	return t
}
