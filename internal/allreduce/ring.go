package allreduce

import (
	"fmt"

	"switchml/internal/netsim"
)

// RunRing executes a bandwidth-optimal ring all-reduce (§2.1): a
// reduce-scatter of n−1 steps followed by an all-gather of n−1 steps,
// each worker exchanging 4(n−1)|U|/n bytes in total. updates[i] is
// worker i's contribution; on return every row of updates has been
// replaced by the elementwise sum, as Gloo's in-place all-reduce
// does.
func RunRing(cfg Config, updates [][]int32) (Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return Result{}, err
	}
	if len(updates) != cfg.Workers {
		return Result{}, fmt.Errorf("allreduce: got %d updates for %d workers", len(updates), cfg.Workers)
	}
	n := cfg.Workers
	d := len(updates[0])
	for i, u := range updates {
		if len(u) != d {
			return Result{}, fmt.Errorf("allreduce: update %d has %d elems, want %d", i, len(u), d)
		}
	}
	if n == 1 || d == 0 {
		return Result{Elems: d}, nil
	}

	workers := make([]*ringWorker, n)
	nodes := make([]netsim.Node, n)
	for i := range workers {
		workers[i] = &ringWorker{cfg: &cfg, rank: i, n: n, buf: updates[i]}
		nodes[i] = workers[i]
	}
	tp := newTopo(&cfg, nodes)
	for _, w := range workers {
		w.send = tp.send
		w.now = tp.sim.Now
	}
	for _, w := range workers {
		w.sendStep()
	}
	for _, w := range workers {
		// Kick workers whose first inbound chunk is empty (d < n).
		w.advance()
	}
	tp.sim.Run()

	res := Result{Elems: d}
	for i, w := range workers {
		if !w.finished {
			return Result{}, fmt.Errorf("allreduce: ring worker %d did not finish", i)
		}
		if w.doneAt > res.Time {
			res.Time = w.doneAt
		}
	}
	return res, nil
}

// ringWorker is one rank of the ring; chunk c of the buffer is the
// range [c·d/n, (c+1)·d/n). The transport is injected: RunRing wires
// it to its own star topology, InlineRing embeds it in a host event
// loop (the rack's simulator while a job is degraded).
type ringWorker struct {
	cfg *Config
	// send routes a burst toward its destination rank.
	send func(*burst)
	// now supplies the clock used to stamp doneAt.
	now func() netsim.Time
	// onDone, when non-nil, fires once when this rank finishes.
	onDone func()
	rank   int
	n      int
	buf    []int32
	// step runs 0..2(n-1)-1: the first n−1 steps are the
	// reduce-scatter, the rest the all-gather.
	step int
	// recvd/expect count bursts of the current step's inbound chunk.
	recvd, expect int
	// deferred holds bursts that arrived for a future step (possible
	// only transiently; links are FIFO per sender).
	deferred []*burst
	finished bool
	doneAt   netsim.Time
}

// chunkRange returns the element range of chunk c.
func (w *ringWorker) chunkRange(c int) (lo, hi int) {
	d := len(w.buf)
	return c * d / w.n, (c + 1) * d / w.n
}

// sendChunk returns the chunk index this worker transmits at a step.
func (w *ringWorker) sendChunk(step int) int {
	if step < w.n-1 { // reduce-scatter
		return ((w.rank-step)%w.n + w.n) % w.n
	}
	t := step - (w.n - 1) // all-gather
	return ((w.rank+1-t)%w.n + w.n) % w.n
}

// recvChunk returns the chunk index this worker receives at a step —
// always its predecessor's sendChunk.
func (w *ringWorker) recvChunk(step int) int {
	if step < w.n-1 {
		return ((w.rank-step-1)%w.n + w.n) % w.n
	}
	t := step - (w.n - 1)
	return ((w.rank-t)%w.n + w.n) % w.n
}

// sendStep enqueues the current step's chunk to the next neighbour.
func (w *ringWorker) sendStep() {
	lo, hi := w.chunkRange(w.sendChunk(w.step))
	next := (w.rank + 1) % w.n
	burstElems := w.cfg.BurstBytes / 4
	seq := 0
	for off := lo; off < hi; off += burstElems {
		end := off + burstElems
		if end > hi {
			end = hi
		}
		data := make([]int32, end-off)
		copy(data, w.buf[off:end])
		w.send(&burst{
			src: w.rank, dst: next,
			data: data,
			step: w.step, seq: seq,
			wire: wireBytes((end - off) * 4),
		})
		seq++
	}
	w.recvd, w.expect = 0, totalBursts(w.chunkLen(w.recvChunk(w.step)), burstElems)
}

func (w *ringWorker) chunkLen(c int) int {
	lo, hi := w.chunkRange(c)
	return hi - lo
}

func totalBursts(elems, burstElems int) int {
	if elems == 0 {
		return 0
	}
	return (elems + burstElems - 1) / burstElems
}

// Deliver consumes a burst from the predecessor.
func (w *ringWorker) Deliver(msg netsim.Message) {
	b := msg.(*burst)
	if w.finished {
		return
	}
	if b.step != w.step {
		// A future-step burst raced ahead of our step transition;
		// hold it.
		w.deferred = append(w.deferred, b)
		return
	}
	w.apply(b)
	w.advance()
}

// apply folds a burst into the buffer: accumulate during
// reduce-scatter, overwrite during all-gather.
func (w *ringWorker) apply(b *burst) {
	lo, _ := w.chunkRange(w.recvChunk(b.step))
	off := lo + b.seq*(w.cfg.BurstBytes/4)
	if b.step < w.n-1 {
		for i, v := range b.data {
			w.buf[off+i] += v
		}
	} else {
		copy(w.buf[off:off+len(b.data)], b.data)
	}
	w.recvd++
}

// advance moves to the next step when the current chunk is complete,
// draining any deferred bursts.
func (w *ringWorker) advance() {
	for w.recvd == w.expect {
		w.step++
		if w.step == 2*(w.n-1) {
			w.finished = true
			w.doneAt = w.now()
			if w.onDone != nil {
				w.onDone()
			}
			return
		}
		w.sendStep()
		// Replay deferred bursts that belong to the new step.
		var rest []*burst
		for _, b := range w.deferred {
			if b.step == w.step {
				w.apply(b)
			} else {
				rest = append(rest, b)
			}
		}
		w.deferred = rest
	}
}
