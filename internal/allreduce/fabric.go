// Package allreduce implements the paper's baseline communication
// strategies — ring all-reduce (the Gloo/NCCL algorithm),
// halving-and-doubling all-reduce, and the dedicated/co-located
// parameter-server designs of §5.3 — as event-driven actors over the
// same netsim substrate the SwitchML rack uses, so comparisons are
// apples-to-apples.
//
// Host-based strategies exchange bulk data as bursts of MTU frames
// through a non-aggregating crossbar switch. TCP-stack inefficiency
// for the library baselines (Gloo, NCCL-over-TCP) is modelled by a
// goodput efficiency factor applied to the end-host link rate,
// calibrated in internal/bench from the paper's Table 1 and Figure 4;
// the PS baselines are the authors' own DPDK code and are modelled
// with the same per-packet CPU costs as the SwitchML workers.
package allreduce

import (
	"fmt"

	"switchml/internal/netsim"
)

// Frame overhead for host-based bulk transfer: Ethernet + IPv4 + TCP
// headers and FCS per MTU segment.
const (
	mtuPayload   = 1460
	mtuOverhead  = 56
	defaultBurst = 64 * 1024
)

// burst is a segment of a bulk transfer travelling the fabric.
type burst struct {
	src, dst int
	// data is the carried payload; nil for size-only transfers.
	data []int32
	// step/shard/seq identify the transfer for the receiving actor.
	step  int
	shard int
	seq   int
	// wire is the on-the-wire size including per-MTU framing.
	wire int
}

// WireSize implements netsim.Message.
func (b *burst) WireSize() int { return b.wire }

// wireBytes returns payload bytes plus MTU framing overhead.
func wireBytes(payload int) int {
	frames := (payload + mtuPayload - 1) / mtuPayload
	if frames == 0 {
		frames = 1
	}
	return payload + frames*mtuOverhead
}

// fabric is a non-aggregating crossbar: it forwards each burst from
// the source's uplink onto the destination's downlink after a fixed
// switching latency.
type fabric struct {
	sim       *netsim.Sim
	latency   netsim.Time
	downlinks []*netsim.Link
}

// Deliver implements netsim.Node for the switch side of all uplinks.
func (f *fabric) Deliver(msg netsim.Message) {
	b := msg.(*burst)
	f.sim.After(f.latency, func() {
		f.downlinks[b.dst].Send(b)
	})
}

// Config parametrizes a host-based collective run.
type Config struct {
	// Workers is n.
	Workers int
	// LinkBitsPerSec is the physical access link rate; zero selects
	// 10 Gbps.
	LinkBitsPerSec float64
	// Efficiency in (0,1] derates the end-host goodput, modelling the
	// transport stack (1.0 = kernel-bypass ideal). Zero selects 1.0.
	Efficiency float64
	// Propagation is the one-way link delay; zero selects 1 µs.
	Propagation netsim.Time
	// SwitchLatency is the crossbar forwarding latency; zero selects
	// 400 ns.
	SwitchLatency netsim.Time
	// BurstBytes segments bulk transfers; zero selects 64 KiB.
	BurstBytes int
	// PerPacketCost and Cores model DPDK-style per-packet CPU work in
	// the PS baselines (zero cost disables CPU modelling).
	PerPacketCost netsim.Time
	// Cores is the per-host core count for CPU modelling; zero
	// selects 4.
	Cores int
	// PacketBytes is the PS aggregation packet payload size; zero
	// selects 128 (32 elements, the SwitchML chunk), and Figure 7's
	// MTU variant passes 1460.
	PacketBytes int
	// Seed drives any randomized behaviour.
	Seed int64
}

func (c *Config) fillDefaults() error {
	if c.Workers <= 0 {
		return fmt.Errorf("allreduce: worker count must be positive, got %d", c.Workers)
	}
	if c.LinkBitsPerSec == 0 {
		c.LinkBitsPerSec = 10e9
	}
	if c.Efficiency == 0 {
		c.Efficiency = 1
	}
	if c.Efficiency < 0 || c.Efficiency > 1 {
		return fmt.Errorf("allreduce: efficiency %v out of (0,1]", c.Efficiency)
	}
	if c.Propagation == 0 {
		c.Propagation = netsim.Microsecond
	}
	if c.SwitchLatency == 0 {
		c.SwitchLatency = 400 * netsim.Nanosecond
	}
	if c.BurstBytes == 0 {
		c.BurstBytes = defaultBurst
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.PacketBytes == 0 {
		c.PacketBytes = 128
	}
	return nil
}

// hostRate is the effective injection rate of an end host.
func (c *Config) hostRate() float64 { return c.LinkBitsPerSec * c.Efficiency }

// Result summarizes a collective run.
type Result struct {
	// Time is the completion time of the slowest participant.
	Time netsim.Time
	// Elems is the aggregated tensor length.
	Elems int
}

// ATEPerSec returns aggregated tensor elements per second, the
// Figure 4 metric.
func (r Result) ATEPerSec() float64 {
	if r.Time <= 0 {
		return 0
	}
	return float64(r.Elems) / (float64(r.Time) / 1e9)
}

// topo builds the star topology: every node gets an uplink into the
// fabric and a downlink from it, both at the host's effective rate.
type topo struct {
	sim     *netsim.Sim
	fab     *fabric
	uplinks []*netsim.Link
}

func newTopo(cfg *Config, nodes []netsim.Node) *topo {
	sim := netsim.NewSim(cfg.Seed)
	fab := &fabric{sim: sim, latency: cfg.SwitchLatency}
	t := &topo{sim: sim, fab: fab}
	for i, nd := range nodes {
		up := netsim.NewLink(sim, netsim.LinkConfig{
			Name:        fmt.Sprintf("n%d->fab", i),
			BitsPerSec:  cfg.hostRate(),
			Propagation: cfg.Propagation,
		}, fab)
		down := netsim.NewLink(sim, netsim.LinkConfig{
			Name:        fmt.Sprintf("fab->n%d", i),
			BitsPerSec:  cfg.hostRate(),
			Propagation: cfg.Propagation,
		}, nd)
		t.uplinks = append(t.uplinks, up)
		fab.downlinks = append(fab.downlinks, down)
	}
	return t
}

// send transmits a burst from its source node's uplink.
func (t *topo) send(b *burst) { t.uplinks[b.src].Send(b) }
