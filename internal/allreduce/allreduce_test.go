package allreduce

import (
	"math"
	"math/rand"
	"testing"

	"switchml/internal/netsim"
)

func randUpdates(rng *rand.Rand, n, d int) ([][]int32, []int32) {
	us := make([][]int32, n)
	want := make([]int32, d)
	for i := range us {
		us[i] = make([]int32, d)
		for j := range us[i] {
			us[i][j] = int32(rng.Intn(2001) - 1000)
			want[j] += us[i][j]
		}
	}
	return us, want
}

func checkAll(t *testing.T, us [][]int32, want []int32) {
	t.Helper()
	for i, u := range us {
		for j := range want {
			if u[j] != want[j] {
				t.Fatalf("worker %d elem %d: got %d want %d", i, j, u[j], want[j])
			}
		}
	}
}

func TestRingCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, d int }{
		{2, 100}, {3, 1000}, {4, 7}, {8, 4096}, {5, 3}, {7, 12345},
	} {
		us, want := randUpdates(rng, tc.n, tc.d)
		res, err := RunRing(Config{Workers: tc.n}, us)
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		if res.Elems != tc.d {
			t.Errorf("Elems = %d, want %d", res.Elems, tc.d)
		}
		checkAll(t, us, want)
	}
}

func TestRingSingleWorker(t *testing.T) {
	us := [][]int32{{1, 2, 3}}
	res, err := RunRing(Config{Workers: 1}, us)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != 0 {
		t.Errorf("single-worker Time = %v, want 0", res.Time)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := RunRing(Config{Workers: 0}, nil); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := RunRing(Config{Workers: 2}, [][]int32{{1}}); err == nil {
		t.Error("wrong update count accepted")
	}
	if _, err := RunRing(Config{Workers: 2}, [][]int32{{1}, {1, 2}}); err == nil {
		t.Error("ragged updates accepted")
	}
	if _, err := RunRing(Config{Workers: 2, Efficiency: 1.5}, [][]int32{{1}, {2}}); err == nil {
		t.Error("efficiency > 1 accepted")
	}
}

func TestRingNearLineRate(t *testing.T) {
	// With full efficiency the ring must approach its analytic bound:
	// time >= 2(n-1)/n * |U| / goodput.
	const n, d = 8, 1 << 20
	us, _ := randUpdates(rand.New(rand.NewSource(2)), n, d)
	res, err := RunRing(Config{Workers: n}, us)
	if err != nil {
		t.Fatal(err)
	}
	ideal := float64(d) / RingLineRateATE(10e9, n)
	got := float64(res.Time) / 1e9
	if got < ideal {
		t.Fatalf("ring time %.6fs below bound %.6fs", got, ideal)
	}
	if got > 1.15*ideal {
		t.Errorf("ring time %.6fs more than 15%% above bound %.6fs", got, ideal)
	}
}

func TestRingEfficiencyScales(t *testing.T) {
	const n, d = 4, 1 << 18
	us1, _ := randUpdates(rand.New(rand.NewSource(3)), n, d)
	us2, _ := randUpdates(rand.New(rand.NewSource(3)), n, d)
	full, err := RunRing(Config{Workers: n, Efficiency: 1}, us1)
	if err != nil {
		t.Fatal(err)
	}
	half, err := RunRing(Config{Workers: n, Efficiency: 0.5}, us2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(half.Time) / float64(full.Time)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("half-efficiency slowdown = %.2f, want ~2", ratio)
	}
}

func TestHalvingDoublingCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct{ n, d int }{
		{2, 64}, {4, 1000}, {8, 4096}, {16, 333}, {4, 5},
	} {
		us, want := randUpdates(rng, tc.n, tc.d)
		_, err := RunHalvingDoubling(Config{Workers: tc.n}, us)
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		checkAll(t, us, want)
	}
}

func TestHalvingDoublingRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := RunHalvingDoubling(Config{Workers: 3}, make([][]int32, 3)); err == nil {
		t.Error("n=3 accepted")
	}
}

func TestPSDedicatedCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ n, d int }{
		{2, 100}, {4, 4096}, {8, 999}, {3, 7},
	} {
		us, want := randUpdates(rng, tc.n, tc.d)
		_, err := RunPS(Config{Workers: tc.n, PerPacketCost: 110 * netsim.Nanosecond}, us, false)
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		checkAll(t, us, want)
	}
}

func TestPSColocatedCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	us, want := randUpdates(rng, 4, 10000)
	_, err := RunPS(Config{Workers: 4, PerPacketCost: 110 * netsim.Nanosecond}, us, true)
	if err != nil {
		t.Fatal(err)
	}
	checkAll(t, us, want)
}

func TestPSColocatedHalfOfDedicated(t *testing.T) {
	// §5.3: "the Colocated PS approach reaches only half of
	// [dedicated] performance" because every NIC carries both worker
	// and PS traffic.
	const n, d = 8, 1 << 19
	rng := rand.New(rand.NewSource(7))
	us1, _ := randUpdates(rng, n, d)
	us2, _ := randUpdates(rng, n, d)
	ded, err := RunPS(Config{Workers: n, PerPacketCost: 110 * netsim.Nanosecond}, us1, false)
	if err != nil {
		t.Fatal(err)
	}
	col, err := RunPS(Config{Workers: n, PerPacketCost: 110 * netsim.Nanosecond}, us2, true)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ded.ATEPerSec() / col.ATEPerSec()
	// The exact factor is 2(n-1)/n -> 2 for large n; at n=8 the
	// colocated links carry 1.75x the dedicated volume.
	if ratio < 1.35 || ratio > 2.4 {
		t.Errorf("dedicated/colocated = %.2f, want ~1.75-2 (ded %.0f, col %.0f ATE/s)",
			ratio, ded.ATEPerSec(), col.ATEPerSec())
	}
	// The gap must widen with n (toward the paper's "half").
	us3, _ := randUpdates(rng, 16, d)
	us4, _ := randUpdates(rng, 16, d)
	ded16, err := RunPS(Config{Workers: 16, PerPacketCost: 110 * netsim.Nanosecond}, us3, false)
	if err != nil {
		t.Fatal(err)
	}
	col16, err := RunPS(Config{Workers: 16, PerPacketCost: 110 * netsim.Nanosecond}, us4, true)
	if err != nil {
		t.Fatal(err)
	}
	if r16 := ded16.ATEPerSec() / col16.ATEPerSec(); r16 < 1.35 || r16 > 2.4 {
		t.Errorf("ratio at n=16 = %.2f, want 1.35-2.4", r16)
	}
}

func TestPSDedicatedNearLineRate(t *testing.T) {
	const n, d = 8, 1 << 19
	us, _ := randUpdates(rand.New(rand.NewSource(8)), n, d)
	res, err := RunPS(Config{Workers: n, PerPacketCost: 110 * netsim.Nanosecond}, us, false)
	if err != nil {
		t.Fatal(err)
	}
	bound := float64(d) / PSLineRateATE(10e9, 0)
	got := float64(res.Time) / 1e9
	if got < bound {
		t.Fatalf("PS time %.6f below bound %.6f", got, bound)
	}
	if got > 1.25*bound {
		t.Errorf("PS time %.6f more than 25%% above bound %.6f", got, bound)
	}
}

func TestBounds(t *testing.T) {
	// SwitchML at 10 Gbps with k=32: 10e9/8 * (128/180) / 4 = 222.2M.
	if got := SwitchMLLineRateATE(10e9, 32); math.Abs(got-222.2e6) > 1e6 {
		t.Errorf("SwitchML bound = %.3gM, want ~222M", got/1e6)
	}
	// Ring at 10 Gbps, n=8: goodput 1.204 GB/s / 7 B/elem = 172M.
	if got := RingLineRateATE(10e9, 8); math.Abs(got-172e6) > 2e6 {
		t.Errorf("ring bound = %.3gM, want ~172M", got/1e6)
	}
	// Larger n lowers the ring bound toward goodput/8.
	if RingLineRateATE(10e9, 16) >= RingLineRateATE(10e9, 8) {
		t.Error("ring bound should decrease with n")
	}
	if RingLineRateATE(10e9, 1) != 0 {
		t.Error("ring bound for n=1 should be 0")
	}
	// PS dedicated bound is above ring but below SwitchML (MTU
	// framing beats 52B-per-180B headers; both send 2|U|).
	// With the SwitchML packet format the PS bound equals SwitchML's
	// and exceeds the ring bound; MTU packets raise it further.
	ps := PSLineRateATE(10e9, 0)
	if math.Abs(ps-SwitchMLLineRateATE(10e9, 32)) > 1 {
		t.Errorf("PS bound %v != SwitchML bound", ps)
	}
	if ps <= RingLineRateATE(10e9, 8) {
		t.Error("PS bound should exceed ring bound")
	}
	if PSLineRateATE(10e9, 1460) <= ps {
		t.Error("MTU PS bound should exceed small-packet bound")
	}
	// SwitchML TAT bound for 100 MB at 10 Gbps is ~118 ms.
	tat := SwitchMLLineRateTAT(10e9, 32, 25*1000*1000)
	if tat < 0.10 || tat > 0.13 {
		t.Errorf("TAT bound = %.4f s, want ~0.113", tat)
	}
}

func TestRingFasterAtHigherBandwidth(t *testing.T) {
	const n, d = 4, 1 << 18
	us1, _ := randUpdates(rand.New(rand.NewSource(9)), n, d)
	us2, _ := randUpdates(rand.New(rand.NewSource(9)), n, d)
	slow, err := RunRing(Config{Workers: n, LinkBitsPerSec: 10e9}, us1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunRing(Config{Workers: n, LinkBitsPerSec: 100e9}, us2)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(slow.Time) / float64(fast.Time)
	if speedup < 8 || speedup > 11 {
		t.Errorf("100G/10G ring speedup = %.2f, want ~10", speedup)
	}
}

func TestHalvingDoublingVsRingVolume(t *testing.T) {
	// Both are bandwidth-optimal; completion times should be within
	// 2x of each other for large tensors (HD has fewer, larger
	// steps).
	const n, d = 8, 1 << 19
	us1, _ := randUpdates(rand.New(rand.NewSource(10)), n, d)
	us2, _ := randUpdates(rand.New(rand.NewSource(10)), n, d)
	ring, err := RunRing(Config{Workers: n}, us1)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := RunHalvingDoubling(Config{Workers: n}, us2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(hd.Time) / float64(ring.Time)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("hd/ring time ratio = %.2f", ratio)
	}
}

func TestATEPerSecZeroTime(t *testing.T) {
	if got := (Result{Elems: 10}).ATEPerSec(); got != 0 {
		t.Errorf("ATEPerSec with zero time = %v", got)
	}
}
