package allreduce

import (
	"fmt"

	"switchml/internal/netsim"
)

// RunPS executes the parameter-server aggregation of §5.3: the tensor
// is uniformly sharded over as many PS processes as workers, each
// worker streams shard j to PS j, and each PS streams aggregated
// bursts back to every worker as soon as all n contributions for a
// burst have arrived (the authors' multi-core DPDK implementation of
// Algorithm 1).
//
// With colocated=false the PS processes run on dedicated machines,
// doubling the cluster (Figure 4 "Dedicated PS"); with colocated=true
// each PS shares its host's links with a worker ("Colocated PS"),
// halving the available bandwidth. updates[i] is worker i's
// contribution; on return every row holds the elementwise sum.
func RunPS(cfg Config, updates [][]int32, colocated bool) (Result, error) {
	if cfg.BurstBytes == 0 {
		// The DPDK PS streams fine-grained packets; a smaller burst
		// than the ring default keeps the aggregate-and-return
		// pipeline tight (the tail is ~2 rounds of bursts).
		cfg.BurstBytes = 16 * 1024
	}
	if err := cfg.fillDefaults(); err != nil {
		return Result{}, err
	}
	n := cfg.Workers
	if len(updates) != n {
		return Result{}, fmt.Errorf("allreduce: got %d updates for %d workers", len(updates), n)
	}
	d := len(updates[0])
	for i, u := range updates {
		if len(u) != d {
			return Result{}, fmt.Errorf("allreduce: update %d has %d elems, want %d", i, len(u), d)
		}
	}
	if d == 0 {
		return Result{Elems: 0}, nil
	}

	// Node ids: workers are 0..n-1. Dedicated PS processes live on
	// nodes n..2n-1; colocated PS j shares node j.
	workers := make([]*psWorker, n)
	servers := make([]*psServer, n)
	var nodes []netsim.Node
	for i := 0; i < n; i++ {
		workers[i] = &psWorker{
			cfg: &cfg, rank: i, n: n, buf: updates[i], out: make([]int32, d),
			cpu: &hostCPU{cfg: &cfg, free: make([]netsim.Time, cfg.Cores)},
		}
		nodes = append(nodes, workers[i])
	}
	for j := 0; j < n; j++ {
		nodeID := j
		if !colocated {
			nodeID = n + j
		}
		servers[j] = &psServer{cfg: &cfg, shard: j, n: n, nodeID: nodeID}
		lo, hi := shardRange(d, n, j)
		servers[j].agg = make([]int32, hi-lo)
		servers[j].got = make([]int, totalBursts(hi-lo, cfg.BurstBytes/4))
		if colocated {
			// The PS process shares the host's cores with the worker.
			servers[j].cpu = workers[j].cpu
			workers[j].local = servers[j]
		} else {
			servers[j].cpu = &hostCPU{cfg: &cfg, free: make([]netsim.Time, cfg.Cores)}
			nodes = append(nodes, servers[j])
		}
	}
	tp := newTopo(&cfg, nodes)
	for _, w := range workers {
		w.tp = tp
		w.servers = servers
	}
	for _, s := range servers {
		s.tp = tp
		s.workers = workers
	}
	for _, w := range workers {
		w.sendAll()
	}
	tp.sim.Run()

	res := Result{Elems: d}
	for i, w := range workers {
		if w.remaining != 0 {
			return Result{}, fmt.Errorf("allreduce: ps worker %d did not finish", i)
		}
		copy(updates[i], w.out)
		if w.doneAt > res.Time {
			res.Time = w.doneAt
		}
	}
	return res, nil
}

// shardRange returns shard j's element range.
func shardRange(d, n, j int) (lo, hi int) {
	return j * d / n, (j + 1) * d / n
}

// psWire returns the wire bytes of a PS burst: the payload split into
// PacketBytes-sized aggregation packets, each carrying the same
// 52-byte header budget as a SwitchML packet. The authors' PS
// benchmark speaks the SwitchML packet format (§5.3 implements
// Algorithm 1 in DPDK); Figure 7's variant passes PacketBytes=1460
// for MTU frames.
func psWire(cfg *Config, payload int) int {
	pkts := (payload + cfg.PacketBytes - 1) / cfg.PacketBytes
	if pkts == 0 {
		pkts = 1
	}
	return payload + pkts*52
}

// hostCPU models a host's cores shared by every process on the
// machine; colocated workers and servers charge the same pool.
type hostCPU struct {
	cfg  *Config
	free []netsim.Time
}

// charge occupies the earliest-free core for pkts packets and returns
// the completion time. The per-packet cost covers the receive, the
// processing, and the packet's share of transmissions, matching the
// SwitchML worker model.
func (c *hostCPU) charge(now netsim.Time, pkts int) netsim.Time {
	if c.cfg.PerPacketCost == 0 {
		return now
	}
	i := 0
	for j := 1; j < len(c.free); j++ {
		if c.free[j] < c.free[i] {
			i = j
		}
	}
	start := c.free[i]
	if start < now {
		start = now
	}
	done := start + netsim.Time(pkts)*c.cfg.PerPacketCost
	c.free[i] = done
	return done
}

// psWorker streams its update to the shard servers and collects
// aggregated bursts.
type psWorker struct {
	cfg     *Config
	tp      *topo
	servers []*psServer
	// local is the colocated shard server sharing this host, if any.
	local     *psServer
	cpu       *hostCPU
	rank      int
	n         int
	buf       []int32
	out       []int32
	remaining int
	doneAt    netsim.Time
}

// sendAll streams every shard to its server. Bursts are interleaved
// round-robin across shards with a rank-staggered starting shard, so
// the PS set is loaded evenly rather than all workers hammering PS 0
// first. The uplink FIFO provides pacing; the colocated shard is
// delivered locally without touching the network.
func (w *psWorker) sendAll() {
	d := len(w.buf)
	w.remaining = d
	burstElems := w.cfg.BurstBytes / 4
	maxBursts := totalBursts((d+w.n-1)/w.n+1, burstElems) + 1
	for seq := 0; seq < maxBursts; seq++ {
		for r := 0; r < w.n; r++ {
			j := (w.rank + r) % w.n
			srv := w.servers[j]
			lo, hi := shardRange(d, w.n, j)
			off := lo + seq*burstElems
			if off >= hi {
				continue
			}
			end := off + burstElems
			if end > hi {
				end = hi
			}
			data := make([]int32, end-off)
			copy(data, w.buf[off:end])
			b := &burst{
				src: w.rank, dst: srv.nodeID,
				data: data, shard: j, seq: seq, step: w.rank,
				wire: psWire(w.cfg, (end-off)*4),
			}
			if w.local != nil && srv == w.local {
				// Local shard: hand straight to the resident server.
				w.local.ingest(b)
			} else {
				w.tp.send(b)
			}
		}
	}
}

// Deliver receives either an aggregated burst (from a PS) or, when
// colocated, a burst addressed to the resident server.
func (w *psWorker) Deliver(msg netsim.Message) {
	b := msg.(*burst)
	if w.local != nil && b.step != -1 {
		// An update burst for the resident shard server (b.step
		// carries the source worker rank; aggregated bursts use -1).
		w.local.ingest(b)
		return
	}
	// Receiving the aggregated burst costs worker CPU like any other
	// packet stream; on colocated hosts this contends with the
	// resident server's cores.
	done := w.cpu.charge(w.tp.sim.Now(), (len(b.data)*4+w.cfg.PacketBytes-1)/w.cfg.PacketBytes)
	w.tp.sim.At(done, func() {
		d := len(w.buf)
		lo, _ := shardRange(d, w.n, b.shard)
		off := lo + b.seq*(w.cfg.BurstBytes/4)
		copy(w.out[off:off+len(b.data)], b.data)
		w.remaining -= len(b.data)
		if w.remaining == 0 {
			w.doneAt = w.tp.sim.Now()
		}
	})
}

// psServer aggregates one shard.
type psServer struct {
	cfg     *Config
	tp      *topo
	workers []*psWorker
	shard   int
	n       int
	nodeID  int
	agg     []int32
	// got counts contributions per burst index.
	got []int
	// cpu models the DPDK per-packet cost; colocated servers share it
	// with the resident worker.
	cpu *hostCPU
}

func (s *psServer) Deliver(msg netsim.Message) {
	s.ingest(msg.(*burst))
}

// ingest folds an update burst into the shard aggregate, charging
// the per-packet CPU cost. The charge covers the receive, the
// aggregation, and this packet's share of the eventual result
// transmission — the same run-to-completion accounting as the
// SwitchML worker model, whose 110 ns per received packet also
// covers the follow-up send. When a burst index has contributions
// from all n workers, the aggregated burst fans out to every worker.
func (s *psServer) ingest(b *burst) {
	done := s.cpu.charge(s.tp.sim.Now(), s.pktsOf(len(b.data)*4))
	off := b.seq * (s.cfg.BurstBytes / 4)
	for i, v := range b.data {
		s.agg[off+i] += v
	}
	s.got[b.seq]++
	if s.got[b.seq] < s.n {
		return
	}
	out := make([]int32, len(b.data))
	copy(out, s.agg[off:off+len(out)])
	seq := b.seq
	s.tp.sim.At(done, func() {
		for _, w := range s.workers {
			rb := &burst{
				src: s.nodeID, dst: w.rank,
				data: out, shard: s.shard, seq: seq, step: -1,
				wire: psWire(s.cfg, len(out)*4),
			}
			if w.local == s {
				// Local worker: deliver directly.
				w.Deliver(rb)
				continue
			}
			s.tp.send(rb)
		}
	})
}

// pktsOf returns how many aggregation packets a payload spans.
func (s *psServer) pktsOf(bytes int) int {
	return (bytes + s.cfg.PacketBytes - 1) / s.cfg.PacketBytes
}
