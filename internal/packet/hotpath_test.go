package packet

import (
	"testing"
)

// TestAppendMarshalMatchesMarshal checks the two encoders produce
// identical bytes and that AppendMarshal really appends.
func TestAppendMarshalMatchesMarshal(t *testing.T) {
	p := NewUpdate(7, 3, 1, 42, 1<<40, []int32{1, -2, 3, -2147483648, 2147483647})
	want := p.Marshal()
	prefix := []byte{0xAA, 0xBB}
	got := p.AppendMarshal(append([]byte(nil), prefix...))
	if len(got) != len(prefix)+len(want) {
		t.Fatalf("AppendMarshal length = %d, want %d", len(got), len(prefix)+len(want))
	}
	if got[0] != 0xAA || got[1] != 0xBB {
		t.Error("AppendMarshal clobbered the prefix")
	}
	for i := range want {
		if got[len(prefix)+i] != want[i] {
			t.Fatalf("byte %d: got %#x want %#x", i, got[len(prefix)+i], want[i])
		}
	}
}

// TestUnmarshalIntoReusesVector checks capacity reuse and that a
// failed parse leaves the destination untouched.
func TestUnmarshalIntoReusesVector(t *testing.T) {
	big := NewUpdate(1, 0, 0, 2, 64, make([]int32, DefaultElems))
	buf := big.Marshal()
	var p Packet
	if err := UnmarshalInto(&p, buf); err != nil {
		t.Fatalf("UnmarshalInto: %v", err)
	}
	firstCap := cap(p.Vector)
	small := NewUpdate(2, 0, 1, 3, 96, []int32{9, 8, 7})
	if err := UnmarshalInto(&p, small.Marshal()); err != nil {
		t.Fatalf("UnmarshalInto: %v", err)
	}
	if cap(p.Vector) != firstCap {
		t.Errorf("vector capacity not reused: %d -> %d", firstCap, cap(p.Vector))
	}
	if p.WorkerID != 2 || len(p.Vector) != 3 || p.Vector[2] != 7 {
		t.Errorf("decode mismatch: %v", &p)
	}
	// A corrupted buffer must not modify p.
	bad := append([]byte(nil), buf...)
	bad[25] ^= 0xFF
	before := p.String()
	if err := UnmarshalInto(&p, bad); err == nil {
		t.Fatal("corrupted buffer accepted")
	}
	if p.String() != before {
		t.Errorf("failed parse modified destination: %v -> %v", before, p.String())
	}
}

// TestRoundTripZeroAlloc is the tentpole assertion: a steady-state
// marshal/unmarshal round trip performs no allocation.
func TestRoundTripZeroAlloc(t *testing.T) {
	src := NewUpdate(3, 0, 1, 42, 4096, make([]int32, DefaultElems))
	wire := make([]byte, 0, src.MarshalledSize())
	var dst Packet
	// Warm up so dst.Vector has capacity.
	wire = src.AppendMarshal(wire[:0])
	if err := UnmarshalInto(&dst, wire); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		wire = src.AppendMarshal(wire[:0])
		if err := UnmarshalInto(&dst, wire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("marshal/unmarshal round trip allocates %.1f/op, want 0", allocs)
	}
}

// TestSetUpdateZeroAlloc covers the pooled-sender path: rewriting a
// packet in place with a same-size vector must not allocate.
func TestSetUpdateZeroAlloc(t *testing.T) {
	vec := make([]int32, DefaultElems)
	p := GetPacket()
	defer PutPacket(p)
	p.SetUpdate(0, 0, 0, 0, 0, vec) // warm the vector capacity
	allocs := testing.AllocsPerRun(100, func() {
		p.SetUpdate(5, 1, 1, 9, 288, vec)
	})
	if allocs != 0 {
		t.Errorf("SetUpdate allocates %.1f/op, want 0", allocs)
	}
	if p.WorkerID != 5 || p.Idx != 9 || len(p.Vector) != DefaultElems {
		t.Errorf("SetUpdate fields wrong: %v", p)
	}
}

// TestPacketPoolResets checks pooled packets come back empty.
func TestPacketPoolResets(t *testing.T) {
	p := GetPacket()
	p.SetUpdate(3, 1, 1, 7, 320, []int32{1, 2, 3})
	PutPacket(p)
	q := GetPacket()
	defer PutPacket(q)
	if q.Kind != KindUpdate || q.WorkerID != 0 || q.Idx != 0 || q.Off != 0 || len(q.Vector) != 0 {
		t.Errorf("pooled packet not reset: %v", q)
	}
}

// TestBufPool checks wire buffers come back empty with capacity.
func TestBufPool(t *testing.T) {
	b := GetBuf()
	if len(*b) != 0 {
		t.Errorf("pooled buf has len %d, want 0", len(*b))
	}
	if cap(*b) < marshalHeaderBytes+ElemBytes*MTUElems {
		t.Errorf("pooled buf cap %d below one MTU packet", cap(*b))
	}
	*b = append(*b, 1, 2, 3)
	PutBuf(b)
	c := GetBuf()
	defer PutBuf(c)
	if len(*c) != 0 {
		t.Errorf("reused buf has len %d, want 0", len(*c))
	}
}

// TestPatchWorkerID checks the in-place rewrite keeps the packet
// valid and only changes the worker id.
func TestPatchWorkerID(t *testing.T) {
	p := NewControl(KindReconfig, 0, 5, 0, []int32{0, 2, 3})
	buf := p.Marshal()
	if err := PatchWorkerID(buf, 2); err != nil {
		t.Fatalf("PatchWorkerID: %v", err)
	}
	q, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("patched packet rejected: %v", err)
	}
	if q.WorkerID != 2 {
		t.Errorf("WorkerID = %d, want 2", q.WorkerID)
	}
	if q.Kind != KindReconfig || q.JobID != 5 || len(q.Vector) != 3 {
		t.Errorf("patch disturbed other fields: %v", q)
	}
	if err := PatchWorkerID(make([]byte, 4), 1); err == nil {
		t.Error("short buffer accepted")
	}
}
