package packet

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal exercises the wire decoder with arbitrary bytes: it
// must never panic, and any buffer it accepts must re-marshal to the
// identical bytes (the decoder admits exactly the encoder's image).
func FuzzUnmarshal(f *testing.F) {
	f.Add(NewUpdate(1, 2, 1, 3, 128, []int32{1, -2, 3}).Marshal())
	f.Add(NewUpdate(0, 0, 0, 0, 0, nil).Marshal())
	big := NewUpdate(65535, 65535, 1, 1<<31, 1<<60, make([]int32, MTUElems))
	big.Kind = KindResultUnicast
	f.Add(big.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x4D})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		out := p.Marshal()
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted buffer does not round-trip:\n in: %x\nout: %x", data, out)
		}
	})
}

// FuzzCodec drives the codec from the structured side: any packet
// built from arbitrary field values must marshal and unmarshal back to
// an identical packet, and its wire image must survive the decoder's
// validation. This is the `make fuzz` smoke gate.
func FuzzCodec(f *testing.F) {
	f.Add(uint8(0), uint16(0), uint16(0), uint8(0), uint32(0), uint64(0), 0, int32(0))
	f.Add(uint8(1), uint16(7), uint16(3), uint8(1), uint32(127), uint64(1<<40), 32, int32(-5))
	f.Add(uint8(4), uint16(65535), uint16(65535), uint8(1), uint32(1<<31), uint64(1<<60), MTUElems, int32(1<<30))
	// Control-plane kinds: reconfiguration round-trips carry the new
	// membership bitmap in the vector, reports and resumes carry
	// frontier offsets in Off with empty vectors.
	f.Add(uint8(KindReconfig), uint16(0), uint16(9), uint8(0), uint32(0), uint64(0), 2, int32(0b1011))
	f.Add(uint8(KindReport), uint16(3), uint16(9), uint8(0), uint32(0), uint64(1<<20), 0, int32(0))
	f.Add(uint8(KindResume), uint16(0), uint16(10), uint8(0), uint32(0), uint64(1<<20), 0, int32(0))
	f.Add(uint8(KindHeartbeat), uint16(12), uint16(9), uint8(0), uint32(0), uint64(0), 0, int32(0))
	// Degraded-mode control plane: probes carry a sequence in Idx (and
	// the failback generation in JobID), fallback syncs announce tensor
	// boundaries in Off/Vector, fallback data packs round+step in Idx
	// with a real payload, and fallback acks are tiny Off∈{0,1} frames.
	f.Add(uint8(KindProbe), uint16(0), uint16(11), uint8(0), uint32(42), uint64(0), 0, int32(0))
	f.Add(uint8(KindProbeAck), uint16(0), uint16(11), uint8(0), uint32(42), uint64(0), 0, int32(0))
	f.Add(uint8(KindFallbackSync), uint16(2), uint16(9), uint8(1), uint32(5), uint64(1<<20), 2, int32(1<<12))
	f.Add(uint8(KindFallbackData), uint16(1), uint16(9), uint8(0), uint32(5<<16|3), uint64(96), 32, int32(-7))
	f.Add(uint8(KindFallbackAck), uint16(1), uint16(9), uint8(0), uint32(3), uint64(1), 0, int32(0))
	// Elastic-membership kinds: joins and leaves are tiny control frames
	// (a join may carry the proposed membership echo in Vector, a leave
	// is always empty); state-fetch requests carry the segment offset in
	// Off, state-data replies the total length in Idx and a payload.
	f.Add(uint8(KindJoin), uint16(5), uint16(9), uint8(0), uint32(0), uint64(0), 0, int32(0))
	f.Add(uint8(KindJoin), uint16(5), uint16(12), uint8(1), uint32(1), uint64(1<<33), 1, int32(0b111101))
	f.Add(uint8(KindLeave), uint16(2), uint16(9), uint8(0), uint32(0), uint64(1<<20), 0, int32(0))
	f.Add(uint8(KindLeave), uint16(65535), uint16(65535), uint8(1), uint32(7), uint64(1<<60), 0, int32(0))
	f.Add(uint8(KindStateReq), uint16(5), uint16(12), uint8(0), uint32(0), uint64(4096), 0, int32(0))
	f.Add(uint8(KindStateData), uint16(0), uint16(12), uint8(0), uint32(1<<20), uint64(4096), 64, int32(-9))

	f.Fuzz(func(t *testing.T, kind uint8, worker, job uint16, ver uint8, idx uint32, off uint64, n int, fill int32) {
		k := Kind(kind % (uint8(KindStateData) + 1))
		if n < 0 {
			n = -n
		}
		n %= MTUElems + 1
		vec := make([]int32, n)
		for i := range vec {
			vec[i] = fill + int32(i)
		}
		p := &Packet{Kind: k, WorkerID: worker, JobID: job, Ver: ver, Idx: idx, Off: off, Vector: vec}
		buf := p.Marshal()
		if len(buf) != p.MarshalledSize() {
			t.Fatalf("marshal produced %d bytes, MarshalledSize says %d", len(buf), p.MarshalledSize())
		}
		q, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("decoder rejected encoder output for %v: %v", p, err)
		}
		if q.Kind != p.Kind || q.WorkerID != p.WorkerID || q.JobID != p.JobID ||
			q.Ver != p.Ver || q.Idx != p.Idx || q.Off != p.Off || len(q.Vector) != len(p.Vector) {
			t.Fatalf("round-trip mismatch:\n in: %v\nout: %v", p, q)
		}
		for i := range vec {
			if q.Vector[i] != vec[i] {
				t.Fatalf("vector[%d] = %d, want %d", i, q.Vector[i], vec[i])
			}
		}
		// Control broadcasts (reconfig, resume) are marshalled once and
		// patched per destination; the patch must preserve validity and
		// change only the worker id.
		patched := worker ^ 0x5aa5
		if err := PatchWorkerID(buf, patched); err != nil {
			t.Fatalf("PatchWorkerID rejected a valid buffer: %v", err)
		}
		r, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("decoder rejected patched buffer: %v", err)
		}
		if r.WorkerID != patched {
			t.Fatalf("patched worker id = %d, want %d", r.WorkerID, patched)
		}
		if r.Kind != p.Kind || r.JobID != p.JobID || r.Ver != p.Ver ||
			r.Idx != p.Idx || r.Off != p.Off || len(r.Vector) != len(p.Vector) {
			t.Fatalf("patch disturbed other fields:\n in: %v\nout: %v", p, r)
		}
	})
}
