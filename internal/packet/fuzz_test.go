package packet

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal exercises the wire decoder with arbitrary bytes: it
// must never panic, and any buffer it accepts must re-marshal to the
// identical bytes (the decoder admits exactly the encoder's image).
func FuzzUnmarshal(f *testing.F) {
	f.Add(NewUpdate(1, 2, 1, 3, 128, []int32{1, -2, 3}).Marshal())
	f.Add(NewUpdate(0, 0, 0, 0, 0, nil).Marshal())
	big := NewUpdate(65535, 65535, 1, 1<<31, 1<<60, make([]int32, MTUElems))
	big.Kind = KindResultUnicast
	f.Add(big.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x4D})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		out := p.Marshal()
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted buffer does not round-trip:\n in: %x\nout: %x", data, out)
		}
	})
}
