package packet

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal exercises the wire decoder with arbitrary bytes: it
// must never panic, and any buffer it accepts must re-marshal to the
// identical bytes (the decoder admits exactly the encoder's image).
func FuzzUnmarshal(f *testing.F) {
	f.Add(NewUpdate(1, 2, 1, 3, 128, []int32{1, -2, 3}).Marshal())
	f.Add(NewUpdate(0, 0, 0, 0, 0, nil).Marshal())
	big := NewUpdate(65535, 65535, 1, 1<<31, 1<<60, make([]int32, MTUElems))
	big.Kind = KindResultUnicast
	f.Add(big.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x4D})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		out := p.Marshal()
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted buffer does not round-trip:\n in: %x\nout: %x", data, out)
		}
	})
}

// codecSeed is one FuzzCodec seed-corpus entry. The corpus must name
// every declared Kind — TestCodecSeedCorpus (and the kinddispatch
// analyzer) enforce the enumeration, so a newly added kind cannot
// skip the codec round-trip fuzz.
type codecSeed struct {
	kind        Kind
	worker, job uint16
	ver         uint8
	idx         uint32
	off         uint64
	n           int
	fill        int32
}

// codecSeeds enumerates KindUpdate..KindAdoptJob with field shapes
// representative of each kind's real use:
//   - data plane: updates and results carry dense vectors; the
//     unicast repair result is a retransmission-path frame.
//   - control plane: reconfiguration round-trips carry the new
//     membership bitmap in the vector, reports and resumes carry
//     frontier offsets in Off with empty vectors.
//   - degraded mode: probes carry a sequence in Idx (and the failback
//     generation in JobID), fallback syncs announce tensor boundaries
//     in Off/Vector, fallback data packs round+step in Idx with a
//     real payload, and fallback acks are tiny Off∈{0,1} frames.
//   - elastic membership: joins and leaves are tiny control frames (a
//     join may carry the proposed membership echo in Vector, a leave
//     is always empty); state-fetch requests carry the segment offset
//     in Off, state-data replies the total length in Idx and a
//     payload.
var codecSeeds = []codecSeed{
	{KindUpdate, 0, 0, 0, 0, 0, 0, 0},
	{KindUpdate, 7, 3, 1, 127, 1 << 40, 32, -5},
	{KindResult, 65535, 65535, 1, 1 << 31, 1 << 60, MTUElems, 1 << 30},
	{KindResultUnicast, 3, 9, 0, 17, 1 << 20, 16, 11},
	{KindReconfig, 0, 9, 0, 0, 0, 2, 0b1011},
	{KindReport, 3, 9, 0, 0, 1 << 20, 0, 0},
	{KindResume, 0, 10, 0, 0, 1 << 20, 0, 0},
	{KindHeartbeat, 12, 9, 0, 0, 0, 0, 0},
	{KindProbe, 0, 11, 0, 42, 0, 0, 0},
	{KindProbeAck, 0, 11, 0, 42, 0, 0, 0},
	{KindFallbackSync, 2, 9, 1, 5, 1 << 20, 2, 1 << 12},
	{KindFallbackData, 1, 9, 0, 5<<16 | 3, 96, 32, -7},
	{KindFallbackAck, 1, 9, 0, 3, 1, 0, 0},
	{KindJoin, 5, 9, 0, 0, 0, 0, 0},
	{KindJoin, 5, 12, 1, 1, 1 << 33, 1, 0b111101},
	{KindLeave, 2, 9, 0, 0, 1 << 20, 0, 0},
	{KindLeave, 65535, 65535, 1, 7, 1 << 60, 0, 0},
	{KindStateReq, 5, 12, 0, 0, 4096, 0, 0},
	{KindStateData, 0, 12, 0, 1 << 20, 4096, 64, -9},
	{KindAdoptJob, 2, 13, 0, 0, 1 << 20, 0, 0},
	{KindAdoptJob, 2, 13, 1, 3, 1 << 20, 0, 0},
}

// TestCodecSeedCorpus asserts the seed corpus enumerates every
// declared kind, KindUpdate through KindAdoptJob: the structured
// fuzzer only mutates from its seeds, so a kind without one starts
// from zero coverage.
func TestCodecSeedCorpus(t *testing.T) {
	seeded := make(map[Kind]bool)
	for _, s := range codecSeeds {
		seeded[s.kind] = true
	}
	for k := KindUpdate; k <= KindAdoptJob; k++ {
		if !seeded[k] {
			t.Errorf("kind %v (%d) has no FuzzCodec seed", k, uint8(k))
		}
	}
	if n := KindAdoptJob - KindUpdate + 1; len(seeded) != int(n) {
		t.Errorf("corpus seeds %d distinct kinds, the protocol declares %d", len(seeded), n)
	}
}

// FuzzCodec drives the codec from the structured side: any packet
// built from arbitrary field values must marshal and unmarshal back to
// an identical packet, and its wire image must survive the decoder's
// validation. This is the `make fuzz` smoke gate.
func FuzzCodec(f *testing.F) {
	for _, s := range codecSeeds {
		f.Add(uint8(s.kind), s.worker, s.job, s.ver, s.idx, s.off, s.n, s.fill)
	}

	f.Fuzz(func(t *testing.T, kind uint8, worker, job uint16, ver uint8, idx uint32, off uint64, n int, fill int32) {
		k := Kind(kind % (uint8(KindAdoptJob) + 1))
		if n < 0 {
			n = -n
		}
		n %= MTUElems + 1
		vec := make([]int32, n)
		for i := range vec {
			vec[i] = fill + int32(i)
		}
		p := &Packet{Kind: k, WorkerID: worker, JobID: job, Ver: ver, Idx: idx, Off: off, Vector: vec}
		buf := p.Marshal()
		if len(buf) != p.MarshalledSize() {
			t.Fatalf("marshal produced %d bytes, MarshalledSize says %d", len(buf), p.MarshalledSize())
		}
		q, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("decoder rejected encoder output for %v: %v", p, err)
		}
		if q.Kind != p.Kind || q.WorkerID != p.WorkerID || q.JobID != p.JobID ||
			q.Ver != p.Ver || q.Idx != p.Idx || q.Off != p.Off || len(q.Vector) != len(p.Vector) {
			t.Fatalf("round-trip mismatch:\n in: %v\nout: %v", p, q)
		}
		for i := range vec {
			if q.Vector[i] != vec[i] {
				t.Fatalf("vector[%d] = %d, want %d", i, q.Vector[i], vec[i])
			}
		}
		// Control broadcasts (reconfig, resume) are marshalled once and
		// patched per destination; the patch must preserve validity and
		// change only the worker id.
		patched := worker ^ 0x5aa5
		if err := PatchWorkerID(buf, patched); err != nil {
			t.Fatalf("PatchWorkerID rejected a valid buffer: %v", err)
		}
		r, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("decoder rejected patched buffer: %v", err)
		}
		if r.WorkerID != patched {
			t.Fatalf("patched worker id = %d, want %d", r.WorkerID, patched)
		}
		if r.Kind != p.Kind || r.JobID != p.JobID || r.Ver != p.Ver ||
			r.Idx != p.Idx || r.Off != p.Off || len(r.Vector) != len(p.Vector) {
			t.Fatalf("patch disturbed other fields:\n in: %v\nout: %v", p, r)
		}
	})
}
