// Package packet defines the SwitchML wire format.
//
// A SwitchML packet carries a small, fixed-size vector of 32-bit
// integers together with the protocol fields of Algorithms 3 and 4 of
// the paper: the worker id (wid), the single-bit pool version (ver),
// the aggregator slot index (idx) and the element offset into the
// tensor stream (off). Updates flow from workers to the switch;
// results flow back either as a multicast (normal completion) or as a
// unicast (retransmitted result).
//
// Two sizes matter and they are deliberately distinct:
//
//   - WireSize is the number of bytes the packet occupies on the
//     simulated wire. It uses the paper's per-packet header budget of
//     52 bytes (1516-byte MTU frames carry 366 elements; 180-byte
//     frames carry 32), so that goodput and timing in the simulator
//     match the paper's accounting exactly.
//   - Marshal/Unmarshal produce the byte representation used by the
//     real UDP transport. That header is self-describing (24 bytes
//     plus a CRC32 of the payload) and does not need to match the
//     simulated budget because the kernel supplies IP/UDP framing.
//
//switchml:deterministic
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// Protocol constants from the paper's deployment (§3.3, §3.6).
const (
	// DefaultElems is k, the number of 32-bit elements aggregated per
	// packet by the switch pipeline. The paper's Tofino program
	// processes 32 elements per packet in the ingress pipeline.
	DefaultElems = 32

	// MTUElems is the number of elements an MTU-sized packet would
	// carry (§5.5 "Limited payload size"): 1516-byte frames including
	// all headers leave room for 366 four-byte elements.
	MTUElems = 366

	// HeaderBytes is the paper's total per-packet header budget: a
	// 180-byte frame carries 32 elements (128 bytes), and a 1516-byte
	// frame carries 366 elements (1464 bytes); both leave 52 bytes of
	// headers.
	HeaderBytes = 52

	// ElemBytes is the size of one vector element on the wire.
	ElemBytes = 4

	// marshalHeaderBytes is the size of the self-describing header
	// produced by Marshal (excludes the vector payload).
	marshalHeaderBytes = 24

	// magic identifies marshalled SwitchML packets.
	magic = 0x534D // "SM"
)

// Kind discriminates the direction and role of a packet.
type Kind uint8

const (
	// KindUpdate is a model-update packet travelling from a worker to
	// the switch.
	KindUpdate Kind = iota
	// KindResult is an aggregated result multicast from the switch to
	// every worker.
	KindResult
	// KindResultUnicast is an aggregated result retransmitted to a
	// single worker that re-sent an update for an already-complete
	// slot (Algorithm 3, lines 19-21).
	KindResultUnicast
	// KindReconfig is a control message from the aggregator's failure
	// controller to the workers: a new job generation (JobID) is in
	// effect after a membership change, and each worker must report
	// its progress frontier. Vector carries the surviving worker ids.
	KindReconfig
	// KindReport is a worker's reply to KindReconfig: Off carries the
	// worker's progress frontier as a global stream offset — the first
	// element whose aggregate it has not received.
	KindReport
	// KindResume is the controller's resume directive: Off carries the
	// global recovery frontier (the minimum reported stream offset);
	// every worker re-aggregates its interrupted tensor from that
	// chunk boundary under the new job generation.
	KindResume
	// KindHeartbeat is an explicit worker liveness beacon, sent while
	// a worker is alive but has no updates in flight so the silence
	// detector does not evict it between tensors.
	KindHeartbeat
	// KindProbe is a switch health probe from a degraded worker: Idx
	// carries the probe sequence number. During failback the probe
	// doubles as the generation fence — JobID carries the new job
	// generation the aggregator must adopt (wiping its pool) before
	// any worker resumes the switch path.
	KindProbe
	// KindProbeAck is the aggregator's echo of a KindProbe, crediting
	// the sender's probation window. Idx echoes the probe sequence and
	// JobID the aggregator's current generation.
	KindProbeAck
	// KindFallbackSync is the degraded-mode barrier: each worker
	// announces its tensor boundary and chunk frontier (Off), its ring
	// round sequence (Idx) and its switch-health vote (Ver) to every
	// peer. A round's ring all-reduce starts only when all n
	// announcements agree on the boundary.
	KindFallbackSync
	// KindFallbackData is one burst of ring all-reduce payload between
	// mesh peers while degraded: Idx packs the round sequence and ring
	// step, Off is the global element offset of the burst.
	KindFallbackData
	// KindFallbackAck is the mesh ARQ control for KindFallbackData:
	// Off 0 carries a cumulative ack (Idx = highest ring step fully
	// received), Off 1 a retransmission request for step Idx.
	KindFallbackAck
	// KindJoin is a graceful-join handshake from a worker that wants to
	// enter a running job. The aggregator queues it, fences the job at
	// the next chunk-aligned step boundary and admits the sender under a
	// bumped generation. Retried until the fence is observed.
	KindJoin
	// KindLeave is a graceful-leave announcement: the sender finishes
	// its in-flight window, holds at the membership fence boundary and
	// is retired under the new generation without tripping liveness.
	KindLeave
	// KindStateReq asks a mesh peer for one segment of its model state
	// during a join: Off is the element offset of the requested segment.
	// It travels over the PR 5 fallback mesh, not the aggregator path.
	KindStateReq
	// KindStateData answers a KindStateReq: Off echoes the segment
	// offset, Idx carries the total state length in elements and Vector
	// the segment payload.
	KindStateData
	// KindAdoptJob is the warm-standby failover handshake. A worker
	// whose aggregator went silent re-homes to the next rung of its
	// standby ladder by sending KindAdoptJob with JobID carrying the
	// proposed (bumped) generation and Off its chunk frontier. The
	// standby echoes the packet with Ver=1 as a collection ack while it
	// gathers the member roll call; once every member has adopted, it
	// wipes its pool under the proposed generation and releases the job
	// with KindResume at the minimum adopted frontier.
	KindAdoptJob
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	//switchml:dispatch
	switch k {
	case KindUpdate:
		return "update"
	case KindResult:
		return "result"
	case KindResultUnicast:
		return "result-unicast"
	case KindReconfig:
		return "reconfig"
	case KindReport:
		return "report"
	case KindResume:
		return "resume"
	case KindHeartbeat:
		return "heartbeat"
	case KindProbe:
		return "probe"
	case KindProbeAck:
		return "probe-ack"
	case KindFallbackSync:
		return "fallback-sync"
	case KindFallbackData:
		return "fallback-data"
	case KindFallbackAck:
		return "fallback-ack"
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	case KindStateReq:
		return "state-req"
	case KindStateData:
		return "state-data"
	case KindAdoptJob:
		return "adopt-job"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Errors returned by the decoder. They are fixed sentinels so the
// receive loop's reject path — exercised by every corrupted datagram
// on a lossy network — allocates nothing.
var (
	// ErrShortBuffer means the buffer cannot hold even the header.
	ErrShortBuffer = errors.New("packet: short buffer")
	// ErrBadMagic means the buffer does not start with the SwitchML
	// magic number.
	ErrBadMagic = errors.New("packet: bad magic")
	// ErrBadLength means the payload is not a whole number of
	// elements.
	ErrBadLength = errors.New("packet: payload not a multiple of the element size")
	// ErrChecksum means the CRC32 over header and payload failed.
	ErrChecksum = errors.New("packet: checksum mismatch")
	// ErrBadKind means the kind byte names no known packet kind.
	ErrBadKind = errors.New("packet: unknown kind")
)

// Packet is a single SwitchML protocol message.
//
// The zero value is not useful; construct packets with NewUpdate or by
// copying and rewriting a received packet, as the switch does.
//
// The //switchml:wire directives declare each field's width in the
// switch register model (internal/p4sim); cmd/switchml-vet proves
// that every constant stored in a field fits its register.
type Packet struct {
	// Kind says whether this is an update or a (possibly unicast)
	// result.
	Kind Kind //switchml:wire bits=4
	// WorkerID identifies the sending worker for updates, and the
	// destination worker for unicast results. It indexes the per-slot
	// seen bitmap, whose words are sized by the worker count (§4).
	WorkerID uint16 //switchml:wire bits=16
	// JobID identifies the training job in multi-tenant deployments
	// (§6 "Multi-job"). Each job owns a disjoint pool of aggregators.
	JobID uint16 //switchml:wire bits=16
	// Ver is the single-bit pool version used to alternate between the
	// active pool and its shadow copy (Algorithm 3): on the switch it
	// selects the upper or lower half of a 64-bit register pair
	// (Appendix B), so only 0 and 1 are representable.
	Ver uint8 //switchml:wire bits=1
	// Idx is the aggregator slot index within the pool.
	Idx uint32 //switchml:wire bits=32
	// Off is the element offset of this packet's vector within the
	// tensor stream.
	Off uint64 //switchml:wire bits=64
	// Vector is the payload: at most k (or MTUElems) int32 values. The
	// final chunk of a tensor may be shorter than k.
	Vector []int32
}

// NewUpdate builds an update packet for the given worker, slot and
// offset, copying vec so the caller may reuse its buffer.
func NewUpdate(worker uint16, job uint16, ver uint8, idx uint32, off uint64, vec []int32) *Packet {
	p := &Packet{}
	p.SetUpdate(worker, job, ver, idx, off, vec)
	return p
}

// SetUpdate rewrites p in place as an update packet, copying vec into
// p.Vector (reusing its capacity when possible). It is the
// allocation-free counterpart of NewUpdate for pooled packets.
func (p *Packet) SetUpdate(worker uint16, job uint16, ver uint8, idx uint32, off uint64, vec []int32) {
	p.Kind = KindUpdate
	p.WorkerID = worker
	p.JobID = job
	p.Ver = ver
	p.Idx = idx
	p.Off = off
	p.Vector = append(p.Vector[:0], vec...)
}

// NewControl builds a control-plane packet (reconfig, report, resume
// or heartbeat) addressed to or from the given worker. Off carries the
// kind-specific argument (chunk frontier); vec, which may be nil, is
// copied.
func NewControl(kind Kind, worker uint16, job uint16, off uint64, vec []int32) *Packet {
	p := &Packet{}
	p.SetControl(kind, worker, job, off, vec)
	return p
}

// SetControl rewrites p in place as a control packet, copying vec into
// p.Vector (reusing its capacity when possible).
func (p *Packet) SetControl(kind Kind, worker uint16, job uint16, off uint64, vec []int32) {
	p.Kind = kind
	p.WorkerID = worker
	p.JobID = job
	p.Ver = 0
	p.Idx = 0
	p.Off = off
	p.Vector = append(p.Vector[:0], vec...)
}

// Clone returns a deep copy of the packet. The switch clones packets
// when multicasting so that per-port mutation cannot alias.
func (p *Packet) Clone() *Packet {
	q := *p
	q.Vector = make([]int32, len(p.Vector))
	copy(q.Vector, p.Vector)
	return &q
}

// WireSize returns the simulated on-the-wire size in bytes, using the
// paper's 52-byte header budget.
func (p *Packet) WireSize() int {
	return HeaderBytes + ElemBytes*len(p.Vector)
}

// String renders a compact description, useful in traces and tests.
func (p *Packet) String() string {
	return fmt.Sprintf("%s{w%d j%d v%d idx%d off%d n%d}",
		p.Kind, p.WorkerID, p.JobID, p.Ver, p.Idx, p.Off, len(p.Vector))
}

// MarshalledSize returns the length of the buffer Marshal will
// produce.
func (p *Packet) MarshalledSize() int {
	return marshalHeaderBytes + ElemBytes*len(p.Vector)
}

// Marshal serializes the packet into the self-describing byte format
// used by the real transport. The layout is fixed-width, big-endian:
//
//	offset size field
//	0      2    magic "SM"
//	2      1    kind
//	3      1    ver
//	4      2    worker id
//	6      2    job id
//	8      4    idx
//	12     8    off
//	20     4    crc32 (IEEE) of bytes [0,20) and the payload
//	24     4*n  vector elements
func (p *Packet) Marshal() []byte {
	return p.AppendMarshal(make([]byte, 0, p.MarshalledSize()))
}

// AppendMarshal appends the wire form of the packet to dst and
// returns the extended slice. When dst has sufficient spare capacity
// no allocation is performed, so senders can reuse one buffer across
// packets (typically sliced to dst[:0] before each call).
//
//switchml:hotpath
func (p *Packet) AppendMarshal(dst []byte) []byte {
	base := len(dst)
	size := p.MarshalledSize()
	if cap(dst)-base < size {
		//switchml:allow hotpath -- guarded grow fallback: pooled buffers retain MTU capacity, so steady state never enters
		grown := make([]byte, base, base+size)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+size]
	buf := dst[base:]
	binary.BigEndian.PutUint16(buf[0:2], magic)
	buf[2] = byte(p.Kind)
	buf[3] = p.Ver
	binary.BigEndian.PutUint16(buf[4:6], p.WorkerID)
	binary.BigEndian.PutUint16(buf[6:8], p.JobID)
	binary.BigEndian.PutUint32(buf[8:12], p.Idx)
	binary.BigEndian.PutUint64(buf[12:20], p.Off)
	for i, v := range p.Vector {
		binary.BigEndian.PutUint32(buf[marshalHeaderBytes+ElemBytes*i:], uint32(v))
	}
	binary.BigEndian.PutUint32(buf[20:24], bodyChecksum(buf))
	return dst
}

// bodyChecksum computes the packet checksum over the header (minus
// the checksum field itself) and the payload of a marshalled buffer.
func bodyChecksum(buf []byte) uint32 {
	crc := crc32.ChecksumIEEE(buf[:20])
	return crc32.Update(crc, crc32.IEEETable, buf[marshalHeaderBytes:])
}

// PatchWorkerID rewrites the worker-id field of a marshalled packet
// in place, updating the checksum. Control broadcasts (reconfig,
// resume) that differ only in the destination worker are marshalled
// once and patched per peer instead of re-marshalled.
func PatchWorkerID(buf []byte, worker uint16) error {
	if len(buf) < marshalHeaderBytes {
		return ErrShortBuffer
	}
	binary.BigEndian.PutUint16(buf[4:6], worker)
	binary.BigEndian.PutUint32(buf[20:24], bodyChecksum(buf))
	return nil
}

// Unmarshal parses a packet previously produced by Marshal. It
// verifies the magic number, the payload alignment and the checksum;
// corrupted packets are rejected so callers can simply drop them, as
// the paper's workers do (§3.4: "A simple checksum can be used to
// detect corruption and discard corrupted packets").
func Unmarshal(buf []byte) (*Packet, error) {
	p := &Packet{}
	if err := UnmarshalInto(p, buf); err != nil {
		return nil, err
	}
	return p, nil
}

// UnmarshalInto parses a marshalled packet into p, reusing p.Vector's
// capacity so a receive loop can decode every datagram into one
// packet without allocating. On error p is left unmodified and the
// error is one of the package's fixed sentinels, so rejecting a flood
// of corrupted datagrams allocates nothing either. The same
// validation as Unmarshal applies.
//
//switchml:hotpath
func UnmarshalInto(p *Packet, buf []byte) error {
	if len(buf) < marshalHeaderBytes {
		return ErrShortBuffer
	}
	if binary.BigEndian.Uint16(buf[0:2]) != magic {
		return ErrBadMagic
	}
	payload := buf[marshalHeaderBytes:]
	if len(payload)%ElemBytes != 0 {
		return ErrBadLength
	}
	if bodyChecksum(buf) != binary.BigEndian.Uint32(buf[20:24]) {
		return ErrChecksum
	}
	k := Kind(buf[2])
	if k > KindAdoptJob {
		return ErrBadKind
	}
	p.Kind = k
	p.Ver = buf[3]
	p.WorkerID = binary.BigEndian.Uint16(buf[4:6])
	p.JobID = binary.BigEndian.Uint16(buf[6:8])
	p.Idx = binary.BigEndian.Uint32(buf[8:12])
	p.Off = binary.BigEndian.Uint64(buf[12:20])
	n := len(payload) / ElemBytes
	if cap(p.Vector) >= n {
		p.Vector = p.Vector[:n]
	} else {
		//switchml:allow hotpath -- guarded grow fallback: a pooled packet's vector reaches MTU capacity once, then is reused
		p.Vector = make([]int32, n)
	}
	for i := range p.Vector {
		p.Vector[i] = int32(binary.BigEndian.Uint32(payload[ElemBytes*i:]))
	}
	return nil
}

// Packet and buffer pools for the hot path. Senders get a packet (or
// a wire buffer), fill it, transmit, and put it back; steady-state
// traffic then recycles storage instead of allocating per packet.
// Putting is optional — paths that hand packets to asynchronous
// consumers (the simulator's in-flight links) simply never return
// them, and the pool falls back to allocation.
var (
	pktPool = sync.Pool{New: func() any { return &Packet{Vector: make([]int32, 0, DefaultElems)} }}
	bufPool = sync.Pool{New: func() any {
		b := make([]byte, 0, marshalHeaderBytes+ElemBytes*MTUElems)
		return &b
	}}
)

// GetPacket returns a pooled packet with zeroed protocol fields and
// an empty vector (capacity retained from prior use).
//
//switchml:acquire
func GetPacket() *Packet {
	p := pktPool.Get().(*Packet)
	v := p.Vector[:0]
	*p = Packet{Vector: v}
	return p
}

// PutPacket returns a packet to the pool. The caller must not retain
// any reference to p or its vector.
//
//switchml:release
func PutPacket(p *Packet) {
	if p == nil {
		return
	}
	pktPool.Put(p)
}

// GetBuf returns a pooled, empty wire buffer with at least one
// MTU-sized packet of capacity.
//
//switchml:acquire
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a wire buffer to the pool.
//
//switchml:release
func PutBuf(b *[]byte) {
	if b == nil {
		return
	}
	bufPool.Put(b)
}
