package packet

import (
	"encoding/binary"
	"hash"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func newCRC() hash.Hash32 { return crc32.NewIEEE() }

func TestWireSizeMatchesPaperBudget(t *testing.T) {
	// The paper's deployment uses 180-byte packets for 32 elements and
	// 1516-byte frames for 366 elements (§3.6, §5.5).
	p := &Packet{Vector: make([]int32, DefaultElems)}
	if got := p.WireSize(); got != 180 {
		t.Errorf("WireSize with k=32 = %d, want 180", got)
	}
	p.Vector = make([]int32, MTUElems)
	if got := p.WireSize(); got != 1516 {
		t.Errorf("WireSize with k=366 = %d, want 1516", got)
	}
}

func TestHeaderOverheadFractions(t *testing.T) {
	// §5.5: header overhead is 28.9% at k=32 and 3.4% at MTU size.
	small := &Packet{Vector: make([]int32, DefaultElems)}
	if frac := float64(HeaderBytes) / float64(small.WireSize()); frac < 0.288 || frac > 0.290 {
		t.Errorf("small-packet header fraction = %.4f, want ~0.289", frac)
	}
	big := &Packet{Vector: make([]int32, MTUElems)}
	if frac := float64(HeaderBytes) / float64(big.WireSize()); frac < 0.033 || frac > 0.035 {
		t.Errorf("MTU-packet header fraction = %.4f, want ~0.034", frac)
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	p := NewUpdate(7, 3, 1, 42, 1<<40, []int32{1, -2, 3, -2147483648, 2147483647})
	p.Kind = KindResultUnicast
	buf := p.Marshal()
	q, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if q.Kind != p.Kind || q.WorkerID != p.WorkerID || q.JobID != p.JobID ||
		q.Ver != p.Ver || q.Idx != p.Idx || q.Off != p.Off {
		t.Errorf("header mismatch: got %v want %v", q, p)
	}
	if len(q.Vector) != len(p.Vector) {
		t.Fatalf("vector length mismatch: got %d want %d", len(q.Vector), len(p.Vector))
	}
	for i := range p.Vector {
		if q.Vector[i] != p.Vector[i] {
			t.Errorf("vector[%d] = %d, want %d", i, q.Vector[i], p.Vector[i])
		}
	}
}

func TestMarshalRoundTripQuick(t *testing.T) {
	f := func(kind uint8, worker, job uint16, ver uint8, idx uint32, off uint64, vec []int32) bool {
		p := &Packet{
			Kind:     Kind(kind % 3),
			WorkerID: worker,
			JobID:    job,
			Ver:      ver % 2,
			Idx:      idx,
			Off:      off,
			Vector:   vec,
		}
		q, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		if q.Kind != p.Kind || q.WorkerID != p.WorkerID || q.JobID != p.JobID ||
			q.Ver != p.Ver || q.Idx != p.Idx || q.Off != p.Off || len(q.Vector) != len(p.Vector) {
			return false
		}
		for i := range vec {
			if q.Vector[i] != vec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	p := NewUpdate(1, 0, 0, 5, 160, make([]int32, DefaultElems))
	buf := p.Marshal()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 64; trial++ {
		corrupted := append([]byte(nil), buf...)
		i := rng.Intn(len(corrupted))
		corrupted[i] ^= byte(1 + rng.Intn(255))
		if _, err := Unmarshal(corrupted); err == nil {
			// Flipping a bit somewhere must be caught by the magic
			// check, the kind check, or the CRC. A flip inside the CRC
			// field itself is caught by the CRC comparison.
			t.Errorf("corruption at byte %d not detected", i)
		}
	}
}

func TestUnmarshalRejectsShortAndMisaligned(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("Unmarshal(nil) succeeded, want error")
	}
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Error("Unmarshal(short) succeeded, want error")
	}
	p := NewUpdate(0, 0, 0, 0, 0, []int32{1, 2})
	buf := p.Marshal()
	if _, err := Unmarshal(buf[:len(buf)-1]); err == nil {
		t.Error("Unmarshal(misaligned payload) succeeded, want error")
	}
}

func TestUnmarshalRejectsBadMagicAndKind(t *testing.T) {
	p := NewUpdate(0, 0, 0, 0, 0, nil)
	buf := p.Marshal()
	bad := append([]byte(nil), buf...)
	binary.BigEndian.PutUint16(bad[0:2], 0x1234)
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), buf...)
	bad[2] = 99
	// Re-seal the checksum so only the kind is invalid.
	reSeal(bad)
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad kind accepted")
	}
}

// reSeal recomputes the CRC of a marshalled packet in place, used by
// tests that want exactly one field invalid.
func reSeal(buf []byte) {
	q := &Packet{}
	_ = q
	// Mirror Marshal's checksum computation.
	crc := crcOf(buf)
	binary.BigEndian.PutUint32(buf[20:24], crc)
}

func crcOf(buf []byte) uint32 {
	h := newCRC()
	h.Write(buf[:20])
	h.Write(buf[24:])
	return h.Sum32()
}

func TestCloneIsDeep(t *testing.T) {
	p := NewUpdate(1, 0, 0, 2, 64, []int32{10, 20})
	q := p.Clone()
	q.Vector[0] = 99
	q.Idx = 7
	if p.Vector[0] != 10 || p.Idx != 2 {
		t.Errorf("Clone aliased the original: %v", p)
	}
}

func TestNewUpdateCopiesVector(t *testing.T) {
	src := []int32{1, 2, 3}
	p := NewUpdate(0, 0, 0, 0, 0, src)
	src[0] = 42
	if p.Vector[0] != 1 {
		t.Error("NewUpdate aliased the caller's buffer")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindUpdate:        "update",
		KindResult:        "result",
		KindResultUnicast: "result-unicast",
		KindProbe:         "probe",
		KindFallbackSync:  "fallback-sync",
		Kind(99):          "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestPacketString(t *testing.T) {
	p := NewUpdate(3, 1, 1, 9, 288, make([]int32, 32))
	if got := p.String(); got != "update{w3 j1 v1 idx9 off288 n32}" {
		t.Errorf("String() = %q", got)
	}
}
