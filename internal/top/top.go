// Package top polls the debug endpoints of a SwitchML aggregator and
// its workers and assembles a live cluster view: per-worker send and
// receive rates, RTT estimator state, health mode, loss and
// retransmission columns, shard balance on the aggregator, and
// threshold anomaly flags (loss spike, shard imbalance, probation
// flapping). cmd/switchml-top renders it as a terminal dashboard or a
// JSON document for scripting.
package top

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"switchml/internal/transport"
)

// Config names the endpoints to poll and tunes the anomaly thresholds.
type Config struct {
	// Agg is the aggregator's debug base URL
	// (e.g. "http://127.0.0.1:6060"); empty skips the aggregator row.
	Agg string
	// Workers are the workers' debug base URLs.
	Workers []string
	// Timeout bounds each HTTP request (default 2 s).
	Timeout time.Duration
	// LossRateWarn flags a worker whose retransmitted fraction of sent
	// chunks over the poll interval exceeds it (default 0.05).
	LossRateWarn float64
	// ImbalanceWarn flags the aggregator when the max/mean ratio of
	// per-shard datagram rates exceeds it (default 2.0).
	ImbalanceWarn float64
	// FlapWarn flags a worker with at least this many health-state
	// transitions (degrades plus failbacks) within the last FlapWindow
	// polls (default 3 within 20).
	FlapWarn   int
	FlapWindow int
}

func (c *Config) fill() {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.LossRateWarn <= 0 {
		c.LossRateWarn = 0.05
	}
	if c.ImbalanceWarn <= 0 {
		c.ImbalanceWarn = 2.0
	}
	if c.FlapWarn <= 0 {
		c.FlapWarn = 3
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = 20
	}
}

// AggView is the aggregator's row of the cluster view.
type AggView struct {
	Addr  string `json:"addr"`
	Epoch uint16 `json:"epoch"`
	Down  bool   `json:"down"`
	// RxRate/TxRate are datagrams per second over the poll interval
	// (zero on the first poll).
	RxRate float64 `json:"rx_rate"`
	TxRate float64 `json:"tx_rate"`
	Shards int     `json:"shards"`
	// ShardImbalance is max/mean of the per-shard datagram rates; 1.0
	// is perfectly balanced, 0 when no shard moved.
	ShardImbalance float64 `json:"shard_imbalance"`
	// Occupancy is the slot pool's busy fraction.
	Occupancy   float64 `json:"occupancy"`
	Completions uint64  `json:"completions"`
	// Adoptions counts warm-standby adoption roll calls this
	// aggregator has committed — non-zero marks a standby that took
	// over a job whose primary went silent.
	Adoptions  uint64 `json:"adoptions"`
	AliveCount int    `json:"alive"`
	Workers    int    `json:"workers"`
	// Membership is the elastic-membership roll call: each worker's
	// status ("member", "draining" or "departed"), with the counts
	// summarised in Members/DrainingCount/DepartedCount.
	Membership    []string `json:"membership,omitempty"`
	Members       int      `json:"members"`
	DrainingCount int      `json:"draining"`
	DepartedCount int      `json:"departed"`
	// QuorumCompletions counts slots completed at the quorum
	// threshold rather than full participation (0 when quorum is
	// off); LateDropped/LateReconciled the fate of the stragglers'
	// late updates.
	QuorumCompletions uint64 `json:"quorum_completions"`
	LateDropped       uint64 `json:"late_dropped"`
	LateReconciled    uint64 `json:"late_reconciled"`
	// Batch and NetMode describe the shard loops' I/O strategy
	// (recvmmsg/sendmmsg burst ceiling and the selected mode);
	// SendErrors is the cumulative udp_send_errors counter — datagrams
	// the kernel refused that would previously vanish silently.
	Batch      int    `json:"batch"`
	NetMode    string `json:"net_mode,omitempty"`
	SendErrors uint64 `json:"udp_send_errors"`
}

// WorkerView is one worker's row of the cluster view.
type WorkerView struct {
	Addr   string `json:"addr"`
	Worker int    `json:"worker"`
	// State is "SWITCH", "STANDBY" (homed on a warm-standby rung of
	// the failover ladder) or "DEGRADED" (on the host mesh).
	State string `json:"state"`
	// HomeRank is the failover-ladder rung serving the job: 0 the
	// primary aggregator, higher ranks the configured standbys.
	HomeRank int `json:"home_rank"`
	// Rehomes counts re-homings between ladder rungs (descents and
	// fail-up climbs alike).
	Rehomes uint64  `json:"rehomes"`
	Epoch   uint16  `json:"epoch"`
	SRTTMs  float64 `json:"srtt_ms"`
	RTOMs   float64 `json:"rto_ms"`
	// FrontierOff is the contiguous-progress stream offset;
	// PendingChunks the in-flight count at the last safe publication.
	FrontierOff   int64   `json:"frontier_off"`
	PendingChunks int64   `json:"pending_chunks"`
	RxRate        float64 `json:"rx_rate"`
	TxRate        float64 `json:"tx_rate"`
	// LossRate is retransmitted/sent chunks over the poll interval.
	LossRate        float64 `json:"loss_rate"`
	Retransmissions uint64  `json:"retransmissions"`
	Degrades        uint64  `json:"degrades"`
	Failbacks       uint64  `json:"failbacks"`
	// SendErrors is the worker's cumulative udp_send_errors counter.
	SendErrors uint64 `json:"udp_send_errors"`
}

// ClusterView is one poll's assembled cluster state.
type ClusterView struct {
	At time.Time `json:"at"`
	// IntervalSec is the rate base: seconds since the previous poll
	// (zero on the first, whose rates are all zero).
	IntervalSec float64      `json:"interval_sec"`
	Agg         *AggView     `json:"agg,omitempty"`
	Workers     []WorkerView `json:"workers"`
	// Flags are the anomaly verdicts tripped this poll.
	Flags []string `json:"flags,omitempty"`
	// Errors lists endpoints that failed to answer.
	Errors []string `json:"errors,omitempty"`
}

// Poller polls the cluster and remembers the previous poll so rates
// and flap detection have a baseline. Not safe for concurrent use.
type Poller struct {
	cfg    Config
	client *http.Client
	// now is the clock, swappable in tests.
	now func() time.Time

	prevAt      time.Time
	prevAgg     *transport.AggDebugState
	prevWorkers map[string]*transport.ClientDebugState
	// flaps holds each worker URL's recent per-poll health-transition
	// deltas, newest last, at most FlapWindow entries.
	flaps map[string][]uint64
}

// NewPoller builds a poller over cfg.
func NewPoller(cfg Config) *Poller {
	cfg.fill()
	return &Poller{
		cfg:         cfg,
		client:      &http.Client{Timeout: cfg.Timeout},
		now:         time.Now,
		prevWorkers: make(map[string]*transport.ClientDebugState),
		flaps:       make(map[string][]uint64),
	}
}

// fetch GETs url/debug/state into v.
func (p *Poller) fetch(base string, v any) error {
	resp, err := p.client.Get(strings.TrimRight(base, "/") + "/debug/state")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", base, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Poll fetches every endpoint once and assembles the view. Endpoints
// that fail to answer are reported in ClusterView.Errors; the error
// return is non-nil only when nothing answered.
func (p *Poller) Poll() (*ClusterView, error) {
	at := p.now()
	v := &ClusterView{At: at}
	if !p.prevAt.IsZero() {
		v.IntervalSec = at.Sub(p.prevAt).Seconds()
	}
	rate := func(cur, prev uint64) float64 {
		if v.IntervalSec <= 0 || cur < prev {
			return 0
		}
		return float64(cur-prev) / v.IntervalSec
	}

	answered := 0
	var agg *transport.AggDebugState
	if p.cfg.Agg != "" {
		var st transport.AggDebugState
		if err := p.fetch(p.cfg.Agg, &st); err != nil {
			v.Errors = append(v.Errors, fmt.Sprintf("agg %s: %v", p.cfg.Agg, err))
		} else {
			answered++
			agg = &st
			av := &AggView{
				Addr:              p.cfg.Agg,
				Epoch:             st.Epoch,
				Down:              st.Down,
				Shards:            st.Shards,
				Occupancy:         st.Pool.Occupancy,
				Completions:       st.Switch.Completions,
				Adoptions:         st.Adoptions,
				Workers:           len(st.Alive),
				Membership:        st.Membership,
				QuorumCompletions: st.Switch.QuorumCompletions,
				LateDropped:       st.Switch.LateDropped,
				LateReconciled:    st.Switch.LateReconciled,
				Batch:             st.Batch,
				NetMode:           st.NetMode,
				SendErrors:        st.SendErrors,
			}
			for _, alive := range st.Alive {
				if alive {
					av.AliveCount++
				}
			}
			for _, m := range st.Membership {
				switch m {
				case "draining":
					av.DrainingCount++
				case "departed":
					av.DepartedCount++
				default:
					av.Members++
				}
			}
			if p.prevAgg != nil {
				av.RxRate = rate(st.Received, p.prevAgg.Received)
				av.TxRate = rate(st.Sent, p.prevAgg.Sent)
				av.ShardImbalance = shardImbalance(st.ShardDatagrams, p.prevAgg.ShardDatagrams)
			}
			v.Agg = av
		}
	}

	for _, url := range p.cfg.Workers {
		var st transport.ClientDebugState
		if err := p.fetch(url, &st); err != nil {
			v.Errors = append(v.Errors, fmt.Sprintf("worker %s: %v", url, err))
			continue
		}
		answered++
		wv := WorkerView{
			Addr:            url,
			Worker:          st.Worker,
			State:           "SWITCH",
			Epoch:           st.Epoch,
			HomeRank:        st.HomeRank,
			Rehomes:         st.Failover.Rehomes,
			SRTTMs:          float64(st.SRTTNs) / 1e6,
			RTOMs:           float64(st.RTONs) / 1e6,
			FrontierOff:     st.FrontierOff,
			PendingChunks:   st.PendingChunks,
			Retransmissions: st.Stats.Retransmissions,
			Degrades:        st.Fallback.Degrades,
			Failbacks:       st.Fallback.Failbacks,
			SendErrors:      st.SendErrors,
		}
		if st.Degraded {
			wv.State = "DEGRADED"
		} else if st.HomeRank > 0 {
			wv.State = "STANDBY"
		}
		var flapDelta uint64
		if prev, ok := p.prevWorkers[url]; ok {
			wv.RxRate = rate(st.Received, prev.Received)
			wv.TxRate = rate(st.Sent, prev.Sent)
			sent := st.Stats.Sent - prev.Stats.Sent
			retx := st.Stats.Retransmissions - prev.Stats.Retransmissions
			if sent > 0 && st.Stats.Sent >= prev.Stats.Sent {
				wv.LossRate = float64(retx) / float64(sent)
			}
			flapDelta = (st.Fallback.Degrades - prev.Fallback.Degrades) +
				(st.Fallback.Failbacks - prev.Fallback.Failbacks)
		}
		stCopy := st
		p.prevWorkers[url] = &stCopy
		hist := append(p.flaps[url], flapDelta)
		if len(hist) > p.cfg.FlapWindow {
			hist = hist[len(hist)-p.cfg.FlapWindow:]
		}
		p.flaps[url] = hist
		v.Workers = append(v.Workers, wv)
	}

	p.flag(v)
	p.prevAgg, p.prevAt = agg, at
	if answered == 0 && (p.cfg.Agg != "" || len(p.cfg.Workers) > 0) {
		return v, fmt.Errorf("top: no endpoint answered: %s", strings.Join(v.Errors, "; "))
	}
	return v, nil
}

// shardImbalance is max/mean of the per-shard datagram deltas; 0 when
// nothing moved or the shard count changed.
func shardImbalance(cur, prev []uint64) float64 {
	if len(cur) == 0 || len(cur) != len(prev) {
		return 0
	}
	var sum, max uint64
	for i := range cur {
		d := cur[i] - prev[i]
		if cur[i] < prev[i] {
			return 0
		}
		sum += d
		if d > max {
			max = d
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(cur))
	return float64(max) / mean
}

// flag applies the anomaly thresholds to the assembled view.
func (p *Poller) flag(v *ClusterView) {
	for _, w := range v.Workers {
		if w.LossRate > p.cfg.LossRateWarn {
			v.Flags = append(v.Flags,
				fmt.Sprintf("loss-spike(w%d %.1f%%)", w.Worker, w.LossRate*100))
		}
	}
	if v.Agg != nil && v.Agg.ShardImbalance > p.cfg.ImbalanceWarn {
		v.Flags = append(v.Flags,
			fmt.Sprintf("shard-imbalance(%.2fx)", v.Agg.ShardImbalance))
	}
	for _, w := range v.Workers {
		var transitions uint64
		for _, d := range p.flaps[w.Addr] {
			transitions += d
		}
		if transitions >= uint64(p.cfg.FlapWarn) {
			v.Flags = append(v.Flags,
				fmt.Sprintf("probation-flap(w%d %d transitions)", w.Worker, transitions))
		}
	}
	sort.Strings(v.Flags)
}

// Render writes the view as a fixed-width terminal table.
func Render(w io.Writer, v *ClusterView) {
	fmt.Fprintf(w, "switchml cluster  %s  interval %.1fs\n",
		v.At.Format("15:04:05"), v.IntervalSec)
	if v.Agg != nil {
		a := v.Agg
		up := "up"
		if a.Down {
			up = "DOWN"
		}
		io := ""
		if a.NetMode != "" {
			io = fmt.Sprintf(" io %s/%d", a.NetMode, a.Batch)
		}
		adopt := ""
		if a.Adoptions > 0 {
			adopt = fmt.Sprintf(" adoptions %d", a.Adoptions)
		}
		fmt.Fprintf(w,
			"agg %-24s %-4s epoch %-4d rx %8.0f/s tx %8.0f/s occ %4.0f%% shards %d (imbal %.2f) alive %d/%d serr %d%s%s\n",
			a.Addr, up, a.Epoch, a.RxRate, a.TxRate, a.Occupancy*100,
			a.Shards, a.ShardImbalance, a.AliveCount, a.Workers, a.SendErrors, io, adopt)
		if a.DrainingCount > 0 || a.DepartedCount > 0 {
			// Elastic churn in progress: print the roll call.
			parts := make([]string, len(a.Membership))
			for i, m := range a.Membership {
				parts[i] = fmt.Sprintf("w%d=%s", i, m)
			}
			fmt.Fprintf(w, "membership %d member(s), %d draining, %d departed: %s\n",
				a.Members, a.DrainingCount, a.DepartedCount, strings.Join(parts, " "))
		}
		if a.QuorumCompletions > 0 {
			fmt.Fprintf(w, "quorum %d completion(s), %d late dropped, %d late reconciled\n",
				a.QuorumCompletions, a.LateDropped, a.LateReconciled)
		}
	}
	if len(v.Workers) > 0 {
		fmt.Fprintf(w, "%-3s %-9s %-4s %-5s %9s %9s %10s %5s %10s %10s %6s %7s %5s %s\n",
			"wrk", "state", "home", "epoch", "srtt", "rto", "frontier", "pend",
			"rx/s", "tx/s", "loss", "retx", "serr", "deg/fb/rh")
		for _, wk := range v.Workers {
			fmt.Fprintf(w, "%-3d %-9s %-4d %-5d %7.2fms %7.2fms %10d %5d %10.0f %10.0f %5.1f%% %7d %5d %d/%d/%d\n",
				wk.Worker, wk.State, wk.HomeRank, wk.Epoch, wk.SRTTMs, wk.RTOMs,
				wk.FrontierOff, wk.PendingChunks, wk.RxRate, wk.TxRate,
				wk.LossRate*100, wk.Retransmissions, wk.SendErrors, wk.Degrades, wk.Failbacks, wk.Rehomes)
		}
	}
	for _, e := range v.Errors {
		fmt.Fprintf(w, "error: %s\n", e)
	}
	if len(v.Flags) > 0 {
		fmt.Fprintf(w, "flags: %s\n", strings.Join(v.Flags, " "))
	}
}
