package top

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"switchml/internal/core"
	"switchml/internal/transport"
)

// stateServer serves whatever document the pointer currently holds at
// /debug/state, mimicking a daemon's debug listener.
func stateServer(t *testing.T, doc *atomic.Pointer[any]) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/state" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(*doc.Load())
	}))
	t.Cleanup(srv.Close)
	return srv
}

func hold(v any) *atomic.Pointer[any] {
	p := new(atomic.Pointer[any])
	p.Store(&v)
	return p
}

// TestPollerRatesAndFlags drives two polls against synthetic state
// documents and checks the derived columns: datagram rates from the
// interval delta, loss rate from retransmitted/sent, shard imbalance
// from per-shard deltas, and the anomaly flags they trip.
func TestPollerRatesAndFlags(t *testing.T) {
	aggDoc := hold(transport.AggDebugState{
		Role:           "aggregator",
		Epoch:          7,
		Shards:         4,
		ShardDatagrams: []uint64{100, 100, 100, 100},
		Received:       400,
		Sent:           200,
		Switch:         core.SwitchStats{Completions: 50},
		Pool:           core.PoolState{Occupancy: 0.25},
		Peers:          []string{"a", "b"},
		Alive:          []bool{true, true},
	})
	w0Doc := hold(transport.ClientDebugState{
		Role: "worker", Worker: 0, Epoch: 7,
		SRTTNs: 1_200_000, RTONs: 4_800_000,
		FrontierOff: 4096, PendingChunks: 3,
		Received: 100, Sent: 110,
		Stats: core.WorkerStats{Sent: 110, Retransmissions: 10},
	})
	aggSrv := stateServer(t, aggDoc)
	w0Srv := stateServer(t, w0Doc)

	p := NewPoller(Config{Agg: aggSrv.URL, Workers: []string{w0Srv.URL}})
	// A fake clock makes the 2-second interval exact.
	now := time.Unix(1000, 0)
	p.now = func() time.Time { return now }

	v1, err := p.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if v1.IntervalSec != 0 || v1.Agg.RxRate != 0 {
		t.Errorf("first poll must have zero rates, got %+v", v1.Agg)
	}
	if v1.Agg.Epoch != 7 || v1.Agg.Occupancy != 0.25 || v1.Agg.AliveCount != 2 {
		t.Errorf("agg view = %+v", v1.Agg)
	}
	if len(v1.Workers) != 1 || v1.Workers[0].State != "SWITCH" || v1.Workers[0].SRTTMs != 1.2 {
		t.Errorf("worker view = %+v", v1.Workers)
	}

	// Second poll, 2 s later: one hot shard, lossy worker, degraded.
	aggDoc.Store(ptrAny(transport.AggDebugState{
		Role:           "aggregator",
		Epoch:          7,
		Shards:         4,
		ShardDatagrams: []uint64{1000, 120, 120, 120},
		Received:       1360,
		Sent:           680,
		Switch:         core.SwitchStats{Completions: 170},
		Pool:           core.PoolState{Occupancy: 0.5},
		Peers:          []string{"a", "b"},
		Alive:          []bool{true, false},
		Batch:          32,
		NetMode:        "mmsg",
		SendErrors:     7,
	}))
	w0Doc.Store(ptrAny(transport.ClientDebugState{
		Role: "worker", Worker: 0, Epoch: 8, Degraded: true,
		SRTTNs: 2_000_000, RTONs: 8_000_000,
		FrontierOff: 8192, PendingChunks: 0,
		Received: 300, Sent: 350,
		Stats:      core.WorkerStats{Sent: 310, Retransmissions: 50},
		Fallback:   transport.FallbackStats{Degrades: 2, Failbacks: 1},
		SendErrors: 3,
	}))
	now = now.Add(2 * time.Second)
	v2, err := p.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if v2.IntervalSec != 2 {
		t.Fatalf("interval = %v", v2.IntervalSec)
	}
	if got := v2.Agg.RxRate; got != 480 {
		t.Errorf("agg rx rate = %v, want 480", got)
	}
	// Deltas 900/20/20/20: mean 240, max 900 → imbalance 3.75.
	if got := v2.Agg.ShardImbalance; got != 3.75 {
		t.Errorf("shard imbalance = %v, want 3.75", got)
	}
	if v2.Agg.AliveCount != 1 {
		t.Errorf("alive = %d, want 1", v2.Agg.AliveCount)
	}
	wk := v2.Workers[0]
	if wk.State != "DEGRADED" || wk.Epoch != 8 {
		t.Errorf("worker state = %+v", wk)
	}
	if v2.Agg.SendErrors != 7 || v2.Agg.NetMode != "mmsg" || v2.Agg.Batch != 32 {
		t.Errorf("agg I/O columns = %+v", v2.Agg)
	}
	if wk.SendErrors != 3 {
		t.Errorf("worker send errors = %d, want 3", wk.SendErrors)
	}
	if got := wk.RxRate; got != 100 {
		t.Errorf("worker rx rate = %v, want 100", got)
	}
	// 40 retransmissions over 200 sent chunks → 20% loss.
	if got := wk.LossRate; got != 0.2 {
		t.Errorf("loss rate = %v, want 0.2", got)
	}
	joined := strings.Join(v2.Flags, " ")
	if !strings.Contains(joined, "loss-spike(w0") {
		t.Errorf("flags %v missing loss spike", v2.Flags)
	}
	if !strings.Contains(joined, "shard-imbalance") {
		t.Errorf("flags %v missing shard imbalance", v2.Flags)
	}
	// 3 transitions (2 degrades + 1 failback) within the window.
	if !strings.Contains(joined, "probation-flap(w0") {
		t.Errorf("flags %v missing probation flap", v2.Flags)
	}

	// The rendered table carries the headline columns.
	var buf bytes.Buffer
	Render(&buf, v2)
	out := buf.String()
	for _, want := range []string{"DEGRADED", "loss-spike", "rx/s", "agg ", "serr", "io mmsg/32"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}

	// The view is a stable JSON document for -json scripting.
	data, err := json.Marshal(v2)
	if err != nil {
		t.Fatal(err)
	}
	var rt ClusterView
	if err := json.Unmarshal(data, &rt); err != nil {
		t.Fatal(err)
	}
	if rt.Workers[0].LossRate != 0.2 || rt.Agg.ShardImbalance != 3.75 {
		t.Errorf("JSON round trip lost fields: %+v", rt)
	}
}

func ptrAny(v any) *any { return &v }

// TestPollerPartialFailure checks that a dead endpoint degrades to an
// Errors entry and only a fully dark cluster returns an error.
func TestPollerPartialFailure(t *testing.T) {
	w0Doc := hold(transport.ClientDebugState{Role: "worker", Worker: 0})
	w0Srv := stateServer(t, w0Doc)
	p := NewPoller(Config{
		Agg:     "http://127.0.0.1:1", // nothing listens there
		Workers: []string{w0Srv.URL},
		Timeout: 500 * time.Millisecond,
	})
	v, err := p.Poll()
	if err != nil {
		t.Fatalf("partial outage must not error: %v", err)
	}
	if len(v.Errors) != 1 || v.Agg != nil || len(v.Workers) != 1 {
		t.Errorf("view = %+v", v)
	}

	dark := NewPoller(Config{
		Agg:     "http://127.0.0.1:1",
		Timeout: 500 * time.Millisecond,
	})
	if _, err := dark.Poll(); err == nil {
		t.Error("fully dark cluster must return an error")
	}
}
