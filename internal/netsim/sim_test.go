package netsim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim(1)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30 {
		t.Errorf("Now = %v, want 30", s.Now())
	}
}

func TestEqualTimeEventsRunFIFO(t *testing.T) {
	s := NewSim(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break)", i, v, i)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim(1)
	var fired []Time
	s.At(10, func() {
		fired = append(fired, s.Now())
		s.After(5, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired = %v, want [10 15]", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := NewSim(1)
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	s := NewSim(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestTimerCancel(t *testing.T) {
	s := NewSim(1)
	fired := false
	tm := s.At(10, func() { fired = true })
	if !tm.Cancel() {
		t.Error("first Cancel returned false")
	}
	if tm.Cancel() {
		t.Error("second Cancel returned true")
	}
	s.Run()
	if fired {
		t.Error("cancelled timer fired")
	}
	var zero Timer
	if zero.Cancel() {
		t.Error("zero timer Cancel returned true")
	}
	if zero.Pending() {
		t.Error("zero timer reports Pending")
	}
}

// TestTimerHandleRecycling checks that a handle to a fired event does
// not cancel an unrelated event that recycled its slot.
func TestTimerHandleRecycling(t *testing.T) {
	s := NewSim(1)
	stale := s.At(1, func() {})
	s.Run() // fires; the slot returns to the free list
	fired := false
	fresh := s.At(2, func() { fired = true })
	if stale.Cancel() {
		t.Error("stale handle cancelled a recycled slot")
	}
	if !fresh.Pending() {
		t.Error("fresh timer not pending")
	}
	s.Run()
	if !fired {
		t.Error("recycled-slot event did not fire")
	}
}

// TestSchedulingZeroAlloc asserts the steady-state schedule/fire
// cycle allocates nothing once the heap and handle table are warm
// (the closure here captures nothing, so only the event machinery is
// measured).
func TestSchedulingZeroAlloc(t *testing.T) {
	s := NewSim(1)
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the heap, slot table and free list
		s.After(Time(i), fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(200, func() {
		tm := s.After(10, fn)
		s.After(5, fn)
		tm.Cancel()
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("event scheduling allocates %.2f/op, want 0", allocs)
	}
}

// TestCancelMiddleOfHeap removes events from heap interior positions
// and checks ordering of the survivors.
func TestCancelMiddleOfHeap(t *testing.T) {
	s := NewSim(1)
	var fired []Time
	timers := make([]Timer, 0, 10)
	for _, at := range []Time{50, 10, 40, 20, 30, 70, 60, 90, 80, 100} {
		at := at
		timers = append(timers, s.At(at, func() { fired = append(fired, at) }))
	}
	// Cancel 40, 70 and 100.
	for _, i := range []int{2, 5, 9} {
		if !timers[i].Cancel() {
			t.Fatalf("Cancel(%d) returned false", i)
		}
	}
	s.Run()
	want := []Time{10, 20, 30, 50, 60, 80, 90}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSim(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if s.Now() != 25 {
		t.Errorf("Now = %v, want 25", s.Now())
	}
	s.Run()
	if len(fired) != 4 {
		t.Errorf("after Run, fired %v", fired)
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	s := NewSim(1)
	s.RunFor(2 * Millisecond)
	if s.Now() != 2*Millisecond {
		t.Errorf("Now = %v, want 2ms", s.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		s := NewSim(seed)
		sink := NodeFunc(func(Message) {})
		l := NewLink(s, LinkConfig{Name: "l", BitsPerSec: 1e9, Propagation: Microsecond, LossRate: 0.3}, sink)
		var deliveries []Time
		l2 := NewLink(s, LinkConfig{Name: "l2", BitsPerSec: 1e9, Propagation: Microsecond, LossRate: 0.3},
			NodeFunc(func(Message) { deliveries = append(deliveries, s.Now()) }))
		for i := 0; i < 100; i++ {
			s.After(Time(i)*Microsecond, func() {
				l.Send(fixedSize(100))
				l2.Send(fixedSize(100))
			})
		}
		s.Run()
		return deliveries
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic delivery count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical loss patterns")
		}
	}
}

// fixedSize is a test message of a given wire size.
type fixedSize int

func (f fixedSize) WireSize() int { return int(f) }

func TestTimeString(t *testing.T) {
	if got := (1500 * Microsecond).String(); got != "1.5ms" {
		t.Errorf("String = %q, want 1.5ms", got)
	}
	if got := (2 * Second).Duration().Seconds(); got != 2 {
		t.Errorf("Duration().Seconds() = %v, want 2", got)
	}
}

func TestHeapPropertyQuick(t *testing.T) {
	// Events scheduled in arbitrary order always fire in time order.
	f := func(times []uint16) bool {
		s := NewSim(1)
		var fired []Time
		for _, at := range times {
			at := Time(at)
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestProcessedCounter(t *testing.T) {
	s := NewSim(1)
	s.At(1, func() {})
	s.At(2, func() {})
	s.Run()
	if got := s.Processed(); got != 2 {
		t.Errorf("Processed = %d, want 2", got)
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	s := NewSim(1)
	tm := s.At(5, func() { t.Error("cancelled event ran") })
	s.At(10, func() {})
	tm.Cancel()
	s.RunUntil(20)
	if s.Now() != 20 {
		t.Errorf("Now = %v", s.Now())
	}
}
