package netsim

import (
	"fmt"

	"switchml/internal/telemetry"
)

// Message is anything that can travel over a link. WireSize is the
// size in bytes used for serialization-delay and statistics
// accounting; it should include all header overheads.
type Message interface {
	WireSize() int
}

// Node receives messages delivered by links.
type Node interface {
	// Deliver is invoked inside the simulation loop when a message
	// arrives. Implementations may send on other links and schedule
	// events but must not block.
	Deliver(msg Message)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(msg Message)

// Deliver implements Node.
func (f NodeFunc) Deliver(msg Message) { f(msg) }

// LinkStats counts traffic over one unidirectional link.
type LinkStats struct {
	// Sent is the number of messages handed to the link.
	Sent uint64
	// Dropped is the number of messages lost to the configured loss
	// probability.
	Dropped uint64
	// Delivered is the number of messages handed to the destination.
	Delivered uint64
	// Bytes is the total wire bytes of sent messages, including
	// dropped ones (they occupied the wire before being lost).
	Bytes uint64
	// MaxQueue is the maximum serialization backlog observed, as a
	// virtual-time span.
	MaxQueue Time
}

// Link is a unidirectional point-to-point link with a given bandwidth
// and propagation delay. Messages are serialized FIFO: a message
// handed to a busy link waits until the previous one finishes
// transmitting. Loss is applied independently per message, modelling
// the uniform random loss probability the paper injects per link in
// §5.5.
type Link struct {
	sim *Sim
	// name appears in debugging output.
	name string
	// bitsPerSec is the link bandwidth.
	bitsPerSec float64
	// prop is the one-way propagation delay.
	prop Time
	// lossRate is the probability in [0,1) that a message is dropped.
	lossRate float64
	// dst receives delivered messages.
	dst Node
	// nextFree is the virtual time at which the transmitter becomes
	// idle.
	nextFree Time
	stats    LinkStats
}

// LinkConfig describes a link to be created.
type LinkConfig struct {
	// Name identifies the link in diagnostics.
	Name string
	// BitsPerSec is the bandwidth, e.g. 10e9 for 10 Gbps.
	BitsPerSec float64
	// Propagation is the one-way propagation delay.
	Propagation Time
	// LossRate is the per-message drop probability in [0,1).
	LossRate float64
}

// NewLink creates a link inside sim delivering to dst.
func NewLink(sim *Sim, cfg LinkConfig, dst Node) *Link {
	if cfg.BitsPerSec <= 0 {
		panic(fmt.Sprintf("netsim: link %q bandwidth must be positive", cfg.Name))
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		panic(fmt.Sprintf("netsim: link %q loss rate %v out of [0,1)", cfg.Name, cfg.LossRate))
	}
	if dst == nil {
		panic(fmt.Sprintf("netsim: link %q has no destination", cfg.Name))
	}
	return &Link{
		sim:        sim,
		name:       cfg.Name,
		bitsPerSec: cfg.BitsPerSec,
		prop:       cfg.Propagation,
		lossRate:   cfg.LossRate,
		dst:        dst,
	}
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Stats returns a snapshot of the link's counters.
func (l *Link) Stats() LinkStats { return l.stats }

// SetLossRate changes the drop probability; experiments use this to
// inject loss mid-run.
func (l *Link) SetLossRate(rate float64) {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("netsim: loss rate %v out of [0,1)", rate))
	}
	l.lossRate = rate
}

// SerializationDelay returns how long a message of the given size
// occupies the transmitter.
func (l *Link) SerializationDelay(bytes int) Time {
	return Time(float64(bytes*8) / l.bitsPerSec * 1e9)
}

// trace emits a packet event for this link at virtual time ts.
func (l *Link) trace(t telemetry.EventType, ts Time, size int) {
	if l.sim.tracer == nil {
		return
	}
	e := telemetry.Ev(t, int64(ts))
	e.Actor = l.name
	e.Size = int32(size)
	l.sim.tracer.Emit(e)
}

// Send enqueues msg for transmission. It returns the virtual time at
// which the message will finish serializing (even if it is then
// dropped), which callers can use for back-to-back pacing.
func (l *Link) Send(msg Message) Time {
	now := l.sim.Now()
	start := l.nextFree
	if start < now {
		start = now
	}
	if backlog := start - now; backlog > l.stats.MaxQueue {
		l.stats.MaxQueue = backlog
	}
	size := msg.WireSize()
	txDone := start + l.SerializationDelay(size)
	l.nextFree = txDone
	l.stats.Sent++
	l.stats.Bytes += uint64(size)
	l.trace(telemetry.EvPacketSent, now, size)

	if l.lossRate > 0 && l.sim.Rand().Float64() < l.lossRate {
		l.stats.Dropped++
		// Stamped at txDone: the message occupied the wire before the
		// loss process ate it.
		l.trace(telemetry.EvPacketDropped, txDone, size)
		return txDone
	}
	arrival := txDone + l.prop
	l.sim.At(arrival, func() {
		l.stats.Delivered++
		l.trace(telemetry.EvPacketRecv, arrival, size)
		l.dst.Deliver(msg)
	})
	return txDone
}

// Busy reports whether the transmitter has queued work beyond the
// current time.
func (l *Link) Busy() bool { return l.nextFree > l.sim.Now() }

// NextFree returns when the transmitter becomes idle.
func (l *Link) NextFree() Time { return l.nextFree }
