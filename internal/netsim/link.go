package netsim

import (
	"fmt"

	"switchml/internal/telemetry"
)

// Message is anything that can travel over a link. WireSize is the
// size in bytes used for serialization-delay and statistics
// accounting; it should include all header overheads.
type Message interface {
	WireSize() int
}

// ReliableMessage marks messages carried by a reliable byte-stream
// transport (the hosts' kernel TCP stack) rather than the aggregation
// protocol's raw UDP. Links exempt such messages from their loss,
// corruption and duplication processes: the real transport retransmits
// below the level the simulator models, so loss surfaces as extra
// latency there, never as a missing message. Blackouts (SetDown) still
// apply — no transport survives a severed link.
type ReliableMessage interface {
	Message
	Reliable() bool
}

// Node receives messages delivered by links.
type Node interface {
	// Deliver is invoked inside the simulation loop when a message
	// arrives. Implementations may send on other links and schedule
	// events but must not block.
	Deliver(msg Message)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(msg Message)

// Deliver implements Node.
func (f NodeFunc) Deliver(msg Message) { f(msg) }

// LinkStats counts traffic over one unidirectional link.
type LinkStats struct {
	// Sent is the number of messages handed to the link.
	Sent uint64
	// Dropped is the number of messages lost for any reason (loss
	// process, blackout, or corruption).
	Dropped uint64
	// Delivered is the number of messages handed to the destination,
	// including injected duplicates.
	Delivered uint64
	// Bytes is the total wire bytes of sent messages, including
	// dropped ones (they occupied the wire before being lost).
	Bytes uint64
	// MaxQueue is the maximum serialization backlog observed, as a
	// virtual-time span.
	MaxQueue Time
	// Blackholed counts messages dropped because the link was down
	// (included in Dropped).
	Blackholed uint64
	// Corrupted counts messages mangled in flight; the simulator
	// models the receiver's checksum discarding them, so they are also
	// included in Dropped.
	Corrupted uint64
	// Duplicated counts extra deliveries injected by the duplication
	// fault.
	Duplicated uint64
}

// Link is a unidirectional point-to-point link with a given bandwidth
// and propagation delay. Messages are serialized FIFO: a message
// handed to a busy link waits until the previous one finishes
// transmitting. Loss is applied independently per message, modelling
// the uniform random loss probability the paper injects per link in
// §5.5.
type Link struct {
	sim *Sim
	// name appears in debugging output.
	name string
	// bitsPerSec is the link bandwidth.
	bitsPerSec float64
	// prop is the one-way propagation delay.
	prop Time
	// loss is the drop process; nil means lossless.
	loss LossModel
	// down blackholes every message while set (link blackout fault).
	down bool
	// dupRate is the probability a delivered message is delivered
	// twice (duplication fault).
	dupRate float64
	// corruptRate is the probability a message is mangled in flight;
	// the receiver's checksum discards it, so it behaves as a counted
	// drop.
	corruptRate float64
	// dst receives delivered messages.
	dst Node
	// nextFree is the virtual time at which the transmitter becomes
	// idle.
	nextFree Time
	stats    LinkStats
}

// LinkConfig describes a link to be created.
type LinkConfig struct {
	// Name identifies the link in diagnostics.
	Name string
	// BitsPerSec is the bandwidth, e.g. 10e9 for 10 Gbps.
	BitsPerSec float64
	// Propagation is the one-way propagation delay.
	Propagation Time
	// LossRate is the per-message drop probability in [0,1),
	// modelling independent Bernoulli loss.
	LossRate float64
	// Loss, when non-nil, overrides LossRate with an arbitrary (and
	// possibly stateful, e.g. Gilbert–Elliott burst) loss process. The
	// model instance must be exclusive to this link.
	Loss LossModel
	// DupRate is the probability in [0,1) that a delivered message is
	// delivered twice.
	DupRate float64
	// CorruptRate is the probability in [0,1) that a message is
	// mangled in flight and discarded by the receiver's checksum.
	CorruptRate float64
}

// NewLink creates a link inside sim delivering to dst.
func NewLink(sim *Sim, cfg LinkConfig, dst Node) *Link {
	if cfg.BitsPerSec <= 0 {
		panic(fmt.Sprintf("netsim: link %q bandwidth must be positive", cfg.Name))
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		panic(fmt.Sprintf("netsim: link %q loss rate %v out of [0,1)", cfg.Name, cfg.LossRate))
	}
	if dst == nil {
		panic(fmt.Sprintf("netsim: link %q has no destination", cfg.Name))
	}
	if cfg.DupRate < 0 || cfg.DupRate >= 1 {
		panic(fmt.Sprintf("netsim: link %q dup rate %v out of [0,1)", cfg.Name, cfg.DupRate))
	}
	if cfg.CorruptRate < 0 || cfg.CorruptRate >= 1 {
		panic(fmt.Sprintf("netsim: link %q corrupt rate %v out of [0,1)", cfg.Name, cfg.CorruptRate))
	}
	loss := cfg.Loss
	if loss == nil && cfg.LossRate > 0 {
		loss = Bernoulli{P: cfg.LossRate}
	}
	return &Link{
		sim:         sim,
		name:        cfg.Name,
		bitsPerSec:  cfg.BitsPerSec,
		prop:        cfg.Propagation,
		loss:        loss,
		dupRate:     cfg.DupRate,
		corruptRate: cfg.CorruptRate,
		dst:         dst,
	}
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Stats returns a snapshot of the link's counters.
func (l *Link) Stats() LinkStats { return l.stats }

// SetLossRate changes the drop probability to an independent Bernoulli
// process; experiments use this to inject loss mid-run.
func (l *Link) SetLossRate(rate float64) {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("netsim: loss rate %v out of [0,1)", rate))
	}
	if rate == 0 {
		l.loss = nil
		return
	}
	l.loss = Bernoulli{P: rate}
}

// SetLossModel installs an arbitrary loss process (nil = lossless).
// The model instance must be exclusive to this link.
func (l *Link) SetLossModel(m LossModel) { l.loss = m }

// SetDown blacks the link out (every message is dropped) or restores
// it; fault scenarios use it for blackout windows. State transitions
// are traced as LinkDown/LinkUp events.
func (l *Link) SetDown(down bool) {
	if l.down == down {
		return
	}
	l.down = down
	t := telemetry.EvLinkUp
	if down {
		t = telemetry.EvLinkDown
	}
	l.trace(t, l.sim.Now(), 0)
}

// Down reports whether the link is blacked out.
func (l *Link) Down() bool { return l.down }

// SetDupRate changes the duplication fault probability.
func (l *Link) SetDupRate(rate float64) {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("netsim: dup rate %v out of [0,1)", rate))
	}
	l.dupRate = rate
}

// SetCorruptRate changes the corruption fault probability.
func (l *Link) SetCorruptRate(rate float64) {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("netsim: corrupt rate %v out of [0,1)", rate))
	}
	l.corruptRate = rate
}

// SerializationDelay returns how long a message of the given size
// occupies the transmitter.
func (l *Link) SerializationDelay(bytes int) Time {
	return Time(float64(bytes*8) / l.bitsPerSec * 1e9)
}

// trace emits a packet event for this link at virtual time ts.
func (l *Link) trace(t telemetry.EventType, ts Time, size int) {
	if l.sim.tracer == nil {
		return
	}
	e := telemetry.Ev(t, int64(ts))
	e.Actor = l.name
	e.Size = int32(size)
	l.sim.tracer.Emit(e)
}

// Send enqueues msg for transmission. It returns the virtual time at
// which the message will finish serializing (even if it is then
// dropped), which callers can use for back-to-back pacing.
func (l *Link) Send(msg Message) Time {
	now := l.sim.Now()
	start := l.nextFree
	if start < now {
		start = now
	}
	if backlog := start - now; backlog > l.stats.MaxQueue {
		l.stats.MaxQueue = backlog
	}
	size := msg.WireSize()
	txDone := start + l.SerializationDelay(size)
	l.nextFree = txDone
	l.stats.Sent++
	l.stats.Bytes += uint64(size)
	l.trace(telemetry.EvPacketSent, now, size)

	if l.down {
		l.stats.Dropped++
		l.stats.Blackholed++
		l.trace(telemetry.EvPacketDropped, txDone, size)
		return txDone
	}
	rm, ok := msg.(ReliableMessage)
	reliable := ok && rm.Reliable()
	if !reliable && l.loss != nil && l.loss.Drop(l.sim.Rand()) {
		l.stats.Dropped++
		// Stamped at txDone: the message occupied the wire before the
		// loss process ate it.
		l.trace(telemetry.EvPacketDropped, txDone, size)
		return txDone
	}
	if !reliable && l.corruptRate > 0 && l.sim.Rand().Float64() < l.corruptRate {
		// The mangled frame reaches the receiver, fails the checksum
		// and is discarded — indistinguishable from a drop above the
		// link layer (§3.4), but counted separately.
		l.stats.Dropped++
		l.stats.Corrupted++
		l.trace(telemetry.EvPacketDropped, txDone, size)
		return txDone
	}
	deliveries := 1
	if !reliable && l.dupRate > 0 && l.sim.Rand().Float64() < l.dupRate {
		deliveries = 2
		l.stats.Duplicated++
	}
	arrival := txDone + l.prop
	for i := 0; i < deliveries; i++ {
		l.sim.At(arrival, func() {
			l.stats.Delivered++
			l.trace(telemetry.EvPacketRecv, arrival, size)
			l.dst.Deliver(msg)
		})
	}
	return txDone
}

// Busy reports whether the transmitter has queued work beyond the
// current time.
func (l *Link) Busy() bool { return l.nextFree > l.sim.Now() }

// NextFree returns when the transmitter becomes idle.
func (l *Link) NextFree() Time { return l.nextFree }
