// Package netsim is a deterministic discrete-event network simulator.
//
// It substitutes for the paper's hardware testbed (8-16 machines, a
// Tofino switch, 10/100 Gbps Ethernet): links model bandwidth
// (serialization delay with FIFO queueing), propagation delay, and
// independent Bernoulli packet loss; nodes are event-driven actors.
// All time is virtual, so experiments are reproducible bit-for-bit
// for a given seed and are independent of host speed.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"switchml/internal/telemetry"
)

// Time is a point in virtual time, in nanoseconds since the start of
// the simulation.
type Time int64

// Common durations in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a virtual time span to a time.Duration for
// display.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time like time.Duration.
func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback.
type event struct {
	at        Time
	seq       uint64 // Tie-break so equal-time events run FIFO.
	fn        func()
	cancelled bool
	index     int // Heap index, maintained by eventHeap.
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a single-threaded discrete-event simulation. It is not safe
// for concurrent use; all actors run inside event callbacks.
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	// processed counts executed events, useful for run-away detection
	// in tests.
	processed uint64
	// tracer observes link-level packet events; nil disables tracing.
	tracer telemetry.Tracer
}

// NewSim returns a simulation whose random decisions (packet loss)
// derive from the given seed.
func NewSim(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Processed returns how many events have executed.
func (s *Sim) Processed() uint64 { return s.processed }

// SetTracer installs a protocol event tracer; every link in the
// simulation emits PacketSent/PacketRecv/PacketDropped events to it,
// stamped with virtual time. nil turns tracing off.
func (s *Sim) SetTracer(t telemetry.Tracer) { s.tracer = t }

// Tracer returns the installed tracer, nil when tracing is off.
func (s *Sim) Tracer() telemetry.Tracer { return s.tracer }

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ ev *event }

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op. It reports
// whether the callback was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled {
		return false
	}
	t.ev.cancelled = true
	return true
}

// At schedules fn to run at absolute virtual time at. Scheduling in
// the past panics: it indicates a causality bug in an actor.
func (s *Sim) At(at Time, fn func()) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("netsim: scheduling at %v before now %v", at, s.now))
	}
	e := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return &Timer{ev: e}
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Step executes the next pending event, advancing virtual time. It
// reports whether an event ran.
func (s *Sim) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.cancelled {
			continue
		}
		s.now = e.at
		s.processed++
		e.fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the
// clock to the deadline. Events after the deadline remain queued.
func (s *Sim) RunUntil(deadline Time) {
	for len(s.events) > 0 {
		// Peek at the earliest live event.
		e := s.events[0]
		if e.cancelled {
			heap.Pop(&s.events)
			continue
		}
		if e.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor executes events for a span of virtual time from now.
func (s *Sim) RunFor(d Time) { s.RunUntil(s.now + d) }
