// Package netsim is a deterministic discrete-event network simulator.
//
// It substitutes for the paper's hardware testbed (8-16 machines, a
// Tofino switch, 10/100 Gbps Ethernet): links model bandwidth
// (serialization delay with FIFO queueing), propagation delay, and
// independent Bernoulli packet loss; nodes are event-driven actors.
// All time is virtual, so experiments are reproducible bit-for-bit
// for a given seed and are independent of host speed.
//
//switchml:deterministic
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"switchml/internal/telemetry"
)

// Time is a point in virtual time, in nanoseconds since the start of
// the simulation.
type Time int64

// Common durations in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a virtual time span to a time.Duration for
// display.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time like time.Duration.
func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback. Events are stored by value in the
// heap slice — no per-event heap allocation — and carry the index of
// their handle slot so cancellation can find them.
type event struct {
	at   Time
	seq  uint64 // Tie-break so equal-time events run FIFO.
	fn   func()
	slot int32 // Handle-table index; see timerSlot.
}

// timerSlot is one entry of the handle table: the event's current
// heap index (maintained across sift operations) plus a generation
// counter that invalidates stale Timer handles once the event fires
// or is cancelled and the slot is recycled.
type timerSlot struct {
	heapIdx int32
	gen     uint32
}

// Sim is a single-threaded discrete-event simulation. It is not safe
// for concurrent use; all actors run inside event callbacks.
type Sim struct {
	now Time
	// events is a binary min-heap ordered by (at, seq), stored by
	// value; free-listed handle slots make scheduling allocation-free
	// in steady state.
	events []event
	slots  []timerSlot
	free   []int32
	seq    uint64
	rng    *rand.Rand
	// processed counts executed events, useful for run-away detection
	// in tests.
	processed uint64
	// tracer observes link-level packet events; nil disables tracing.
	tracer telemetry.Tracer
}

// NewSim returns a simulation whose random decisions (packet loss)
// derive from the given seed.
func NewSim(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Processed returns how many events have executed.
func (s *Sim) Processed() uint64 { return s.processed }

// SetTracer installs a protocol event tracer; every link in the
// simulation emits PacketSent/PacketRecv/PacketDropped events to it,
// stamped with virtual time. nil turns tracing off.
func (s *Sim) SetTracer(t telemetry.Tracer) { s.tracer = t }

// Tracer returns the installed tracer, nil when tracing is off.
func (s *Sim) Tracer() telemetry.Tracer { return s.tracer }

// Timer is a handle to a scheduled event that can be cancelled. The
// zero value is a valid no-op handle (Cancel returns false), so
// hosts can keep Timers by value in per-slot arrays.
type Timer struct {
	s    *Sim
	slot int32
	gen  uint32
}

// Cancel removes the timer's callback from the event heap in
// O(log n). Cancelling an already-fired, already-cancelled or zero
// Timer is a no-op. It reports whether the callback was still
// pending.
func (t Timer) Cancel() bool {
	s := t.s
	if s == nil || int(t.slot) >= len(s.slots) {
		return false
	}
	sl := &s.slots[t.slot]
	if sl.gen != t.gen {
		return false // already fired, cancelled, or slot recycled
	}
	s.removeAt(int(sl.heapIdx))
	s.releaseSlot(t.slot)
	return true
}

// Pending reports whether the timer's callback has neither fired nor
// been cancelled.
func (t Timer) Pending() bool {
	return t.s != nil && int(t.slot) < len(t.s.slots) && t.s.slots[t.slot].gen == t.gen
}

// At schedules fn to run at absolute virtual time at. Scheduling in
// the past panics: it indicates a causality bug in an actor.
//
//switchml:hotpath
func (s *Sim) At(at Time, fn func()) Timer {
	if at < s.now {
		//switchml:allow hotpath -- fatal causality-bug path; never taken by a correct actor
		panic(fmt.Sprintf("netsim: scheduling at %v before now %v", at, s.now))
	}
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		slot = int32(len(s.slots))
		//switchml:allow hotpath -- handle-table growth: slots are free-listed, so the table stops growing once the event population peaks
		s.slots = append(s.slots, timerSlot{})
	}
	gen := s.slots[slot].gen
	//switchml:allow hotpath -- heap growth: the event slice keeps its capacity across pops, so steady state appends within capacity
	s.events = append(s.events, event{at: at, seq: s.seq, fn: fn, slot: slot})
	s.seq++
	s.siftUp(len(s.events) - 1)
	return Timer{s: s, slot: slot, gen: gen}
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// releaseSlot invalidates outstanding handles to the slot and
// returns it to the free list.
func (s *Sim) releaseSlot(slot int32) {
	s.slots[slot].gen++
	//switchml:allow hotpath -- free-list growth is bounded by the handle table, which stops growing at the event-population peak
	s.free = append(s.free, slot)
}

// less orders heap entries by (at, seq) for FIFO ties.
func (s *Sim) less(i, j int) bool {
	if s.events[i].at != s.events[j].at {
		return s.events[i].at < s.events[j].at
	}
	return s.events[i].seq < s.events[j].seq
}

func (s *Sim) swap(i, j int) {
	s.events[i], s.events[j] = s.events[j], s.events[i]
	s.slots[s.events[i].slot].heapIdx = int32(i)
	s.slots[s.events[j].slot].heapIdx = int32(j)
}

func (s *Sim) siftUp(i int) {
	s.slots[s.events[i].slot].heapIdx = int32(i)
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Sim) siftDown(i int) {
	n := len(s.events)
	s.slots[s.events[i].slot].heapIdx = int32(i)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && s.less(right, left) {
			min = right
		}
		if !s.less(min, i) {
			return
		}
		s.swap(i, min)
		i = min
	}
}

// removeAt deletes the heap entry at index i, restoring heap order.
func (s *Sim) removeAt(i int) {
	n := len(s.events) - 1
	if i != n {
		s.swap(i, n)
	}
	s.events[n].fn = nil // release the closure
	s.events = s.events[:n]
	if i < n {
		s.siftDown(i)
		s.siftUp(i)
	}
}

// Step executes the next pending event, advancing virtual time. It
// reports whether an event ran.
//
//switchml:hotpath
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := s.events[0]
	s.removeAt(0)
	s.releaseSlot(e.slot)
	s.now = e.at
	s.processed++
	e.fn()
	return true
}

// Run executes events until none remain.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the
// clock to the deadline. Events after the deadline remain queued.
func (s *Sim) RunUntil(deadline Time) {
	for len(s.events) > 0 && s.events[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor executes events for a span of virtual time from now.
func (s *Sim) RunFor(d Time) { s.RunUntil(s.now + d) }
