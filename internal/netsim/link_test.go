package netsim

import (
	"math"
	"testing"
)

// collector records delivery times.
type collector struct {
	sim   *Sim
	times []Time
	msgs  []Message
}

func (c *collector) Deliver(m Message) {
	c.times = append(c.times, c.sim.Now())
	c.msgs = append(c.msgs, m)
}

func TestLinkSerializationAndPropagation(t *testing.T) {
	s := NewSim(1)
	c := &collector{sim: s}
	// 1 Gbps, 1us propagation: a 125-byte message serializes in 1us.
	l := NewLink(s, LinkConfig{Name: "l", BitsPerSec: 1e9, Propagation: Microsecond}, c)
	s.At(0, func() { l.Send(fixedSize(125)) })
	s.Run()
	if len(c.times) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(c.times))
	}
	if c.times[0] != 2*Microsecond {
		t.Errorf("delivery at %v, want 2us (1us tx + 1us prop)", c.times[0])
	}
}

func TestLinkFIFOQueueing(t *testing.T) {
	s := NewSim(1)
	c := &collector{sim: s}
	l := NewLink(s, LinkConfig{Name: "l", BitsPerSec: 1e9, Propagation: 0}, c)
	// Two back-to-back messages: the second waits for the first.
	s.At(0, func() {
		first := l.Send(fixedSize(125))
		if first != Microsecond {
			t.Errorf("first txDone = %v, want 1us", first)
		}
		second := l.Send(fixedSize(125))
		if second != 2*Microsecond {
			t.Errorf("second txDone = %v, want 2us", second)
		}
		if !l.Busy() {
			t.Error("link should be busy")
		}
	})
	s.Run()
	if len(c.times) != 2 || c.times[0] != Microsecond || c.times[1] != 2*Microsecond {
		t.Errorf("deliveries at %v, want [1us 2us]", c.times)
	}
	st := l.Stats()
	if st.Sent != 2 || st.Delivered != 2 || st.Bytes != 250 {
		t.Errorf("stats = %+v", st)
	}
	if st.MaxQueue != Microsecond {
		t.Errorf("MaxQueue = %v, want 1us", st.MaxQueue)
	}
}

func TestLinkIdleGap(t *testing.T) {
	s := NewSim(1)
	c := &collector{sim: s}
	l := NewLink(s, LinkConfig{Name: "l", BitsPerSec: 1e9, Propagation: 0}, c)
	s.At(0, func() { l.Send(fixedSize(125)) })
	// After an idle gap, serialization restarts from now.
	s.At(10*Microsecond, func() { l.Send(fixedSize(125)) })
	s.Run()
	if c.times[1] != 11*Microsecond {
		t.Errorf("second delivery at %v, want 11us", c.times[1])
	}
}

func TestLinkLossRateStatistics(t *testing.T) {
	s := NewSim(99)
	c := &collector{sim: s}
	l := NewLink(s, LinkConfig{Name: "l", BitsPerSec: 1e12, Propagation: 0, LossRate: 0.1}, c)
	const n = 20000
	s.At(0, func() {
		for i := 0; i < n; i++ {
			l.Send(fixedSize(100))
		}
	})
	s.Run()
	st := l.Stats()
	if st.Sent != n || st.Dropped+st.Delivered != n {
		t.Fatalf("stats don't add up: %+v", st)
	}
	got := float64(st.Dropped) / n
	if math.Abs(got-0.1) > 0.01 {
		t.Errorf("empirical loss %v, want ~0.1", got)
	}
}

func TestLinkSetLossRate(t *testing.T) {
	s := NewSim(1)
	c := &collector{sim: s}
	l := NewLink(s, LinkConfig{Name: "l", BitsPerSec: 1e9}, c)
	l.SetLossRate(0.5)
	defer func() {
		if recover() == nil {
			t.Error("SetLossRate(1.5) did not panic")
		}
	}()
	l.SetLossRate(1.5)
}

func TestLinkConfigValidation(t *testing.T) {
	s := NewSim(1)
	c := &collector{sim: s}
	for name, fn := range map[string]func(){
		"zero bandwidth": func() { NewLink(s, LinkConfig{BitsPerSec: 0}, c) },
		"bad loss":       func() { NewLink(s, LinkConfig{BitsPerSec: 1, LossRate: 1}, c) },
		"nil dst":        func() { NewLink(s, LinkConfig{BitsPerSec: 1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLineRateThroughput(t *testing.T) {
	// A saturated 10 Gbps link delivers exactly line rate: 180-byte
	// packets at 10 Gbps = 6.944 Mpps.
	s := NewSim(1)
	delivered := 0
	var last Time
	sink := NodeFunc(func(Message) { delivered++; last = s.Now() })
	l := NewLink(s, LinkConfig{Name: "l", BitsPerSec: 10e9}, sink)
	const n = 100000
	s.At(0, func() {
		for i := 0; i < n; i++ {
			l.Send(fixedSize(180))
		}
	})
	s.Run()
	elapsed := float64(last) / 1e9
	pps := float64(delivered) / elapsed
	want := 10e9 / (180 * 8)
	if math.Abs(pps-want)/want > 0.001 {
		t.Errorf("throughput %.0f pps, want %.0f", pps, want)
	}
}

func TestLinkName(t *testing.T) {
	s := NewSim(1)
	l := NewLink(s, LinkConfig{Name: "uplink", BitsPerSec: 1}, NodeFunc(func(Message) {}))
	if l.Name() != "uplink" {
		t.Errorf("Name = %q", l.Name())
	}
	if l.NextFree() != 0 {
		t.Errorf("NextFree = %v, want 0", l.NextFree())
	}
}
