package netsim

import (
	"fmt"
	"math/rand"
)

// LossModel decides, per message, whether the link's loss process eats
// it. Implementations may keep state (burst models); a model instance
// therefore belongs to exactly one link and must not be shared.
type LossModel interface {
	// Drop consumes randomness from the simulation's deterministic
	// source and reports whether the message is lost.
	Drop(r *rand.Rand) bool
}

// Bernoulli is the memoryless loss process the paper injects per link
// in §5.5: each message is dropped independently with probability P.
type Bernoulli struct {
	// P is the drop probability in [0,1).
	P float64
}

// Drop implements LossModel.
func (b Bernoulli) Drop(r *rand.Rand) bool {
	return b.P > 0 && r.Float64() < b.P
}

// GEConfig parameterizes a Gilbert–Elliott two-state burst loss
// process: the link alternates between a good state (rare residual
// loss) and a bad state (heavy loss), with geometric sojourn times.
// Unlike Bernoulli loss, drops arrive in bursts, the failure mode of
// congested or flapping links that stresses recovery far harder than
// independent loss at the same average rate.
type GEConfig struct {
	// PGoodToBad is the per-message probability of entering the bad
	// state while good.
	PGoodToBad float64
	// PBadToGood is the per-message probability of leaving the bad
	// state.
	PBadToGood float64
	// LossGood is the drop probability while good (often 0).
	LossGood float64
	// LossBad is the drop probability while bad (often near 1).
	LossBad float64
}

func (c GEConfig) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PGoodToBad", c.PGoodToBad}, {"PBadToGood", c.PBadToGood},
		{"LossGood", c.LossGood}, {"LossBad", c.LossBad},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("netsim: gilbert-elliott %s=%v out of [0,1]", p.name, p.v)
		}
	}
	if c.LossGood >= 1 || c.LossBad > 1 {
		return fmt.Errorf("netsim: gilbert-elliott loss probabilities out of range")
	}
	return nil
}

// MeanLoss returns the stationary average drop probability of the
// chain, useful for comparing a burst configuration against a
// Bernoulli rate.
func (c GEConfig) MeanLoss() float64 {
	if c.PGoodToBad == 0 && c.PBadToGood == 0 {
		return c.LossGood
	}
	pBad := c.PGoodToBad / (c.PGoodToBad + c.PBadToGood)
	return (1-pBad)*c.LossGood + pBad*c.LossBad
}

// GilbertElliott is the stateful two-state chain. Construct one per
// link with NewGilbertElliott.
type GilbertElliott struct {
	cfg GEConfig
	bad bool
}

// NewGilbertElliott validates cfg and returns a chain starting in the
// good state.
func NewGilbertElliott(cfg GEConfig) (*GilbertElliott, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &GilbertElliott{cfg: cfg}, nil
}

// Bad reports whether the chain is currently in the bad state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// Drop implements LossModel: advance the state chain, then draw the
// state's loss probability.
func (g *GilbertElliott) Drop(r *rand.Rand) bool {
	if g.bad {
		if r.Float64() < g.cfg.PBadToGood {
			g.bad = false
		}
	} else {
		if r.Float64() < g.cfg.PGoodToBad {
			g.bad = true
		}
	}
	p := g.cfg.LossGood
	if g.bad {
		p = g.cfg.LossBad
	}
	return p > 0 && r.Float64() < p
}
