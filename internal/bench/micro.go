package bench

import (
	"fmt"

	"switchml/internal/allreduce"
	"switchml/internal/netsim"
	"switchml/internal/packet"
	"switchml/internal/rack"
)

// RunFig2 reproduces Figure 2: the effect of the pool size s on
// tensor aggregation time and per-packet RTT, 8 workers at 10 Gbps,
// 100 MB tensors.
func RunFig2(o Options) (*Table, error) {
	o.fill()
	elems := o.mb100()
	t := &Table{
		ID:     "fig2",
		Title:  fmt.Sprintf("Pool size vs TAT and RTT (8 workers @ 10G, %d MB tensor)", elems*4/1000/1000),
		Header: []string{"pool size", "TAT (ms)", "RTT med (us)", "RTT max (us)"},
	}
	wire := netsim.Time(allreduce.SwitchMLLineRateTAT(10e9, packet.DefaultElems, elems) * 1e9)
	for _, s := range []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384} {
		fmt.Fprintf(o.Log, "fig2: pool size %d...\n", s)
		r, err := rack.NewRack(rack.Config{
			Workers: 8, PoolSize: s, LossRecovery: true, Seed: o.Seed, SampleRTT: true,
			Tracer: o.Tracer,
		})
		if err != nil {
			return nil, err
		}
		res, err := r.AllReduceShared(make([]int32, elems))
		if err != nil {
			return nil, err
		}
		rtt := summarize(res.RTTs)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", s), fmtMs(res.TAT), fmtUs(rtt.median), fmtUs(rtt.max),
		})
	}
	t.Rows = append(t.Rows, []string{"line rate", fmtMs(wire), "-", "-"})
	t.Notes = append(t.Notes,
		"paper: TAT flat near line rate once s covers the BDP (s=128 at 10G), RTT grows with s;",
		"very large pools exceed the 1 ms RTO via self-queueing and inflate TAT")
	return t, nil
}

// RunFig4 reproduces Figure 4: aggregated tensor elements per second
// as the worker count grows, for SwitchML, Gloo, NCCL, Dedicated PS
// and Colocated PS at 10 and 100 Gbps, with the analytic line-rate
// bounds.
func RunFig4(o Options) (*Table, error) {
	o.fill()
	t := &Table{
		ID:    "fig4",
		Title: "Microbenchmark: ATE/s (x10^6) vs workers",
		Header: []string{"gbps", "workers", "switchml", "gloo", "nccl",
			"dedicated-ps", "colocated-ps", "line(sml)", "line(ring)"},
	}
	for _, bw := range []float64{10e9, 100e9} {
		for _, n := range []int{4, 8, 16} {
			fmt.Fprintf(o.Log, "fig4: %dG n=%d...\n", int(bw/1e9), n)
			sml, err := measureSwitchML(o, n, bw, 0)
			if err != nil {
				return nil, err
			}
			gloo, err := measureRing(o, n, bw, glooEff(bw))
			if err != nil {
				return nil, err
			}
			nccl, err := measureRing(o, n, bw, ncclEff(bw))
			if err != nil {
				return nil, err
			}
			ded, err := measurePS(o, n, bw, false, 0)
			if err != nil {
				return nil, err
			}
			col, err := measurePS(o, n, bw, true, 0)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f", bw/1e9), fmt.Sprintf("%d", n),
				fmtATE(sml), fmtATE(gloo), fmtATE(nccl), fmtATE(ded), fmtATE(col),
				fmtATE(allreduce.SwitchMLLineRateATE(bw, packet.DefaultElems)),
				fmtATE(allreduce.RingLineRateATE(bw, n)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper: SwitchML tracks its line rate independent of n; Dedicated PS matches SwitchML",
		"using twice the machines; Colocated PS reaches about half; NCCL > Gloo, both below ring line rate")
	return t, nil
}

// RunFig7 reproduces Figure 7: TAT across tensor sizes comparing
// k=32 SwitchML, the MTU-capable enhanced SwitchML, and the
// Dedicated PS with MTU packets.
func RunFig7(o Options) (*Table, error) {
	o.fill()
	t := &Table{
		ID:    "fig7",
		Title: "TAT (ms) vs tensor size: 32-element packets vs MTU",
		Header: []string{"size", "switchml", "switchml(MTU)", "dedicated-ps(MTU)",
			"line", "line(MTU)"},
	}
	for _, mb := range []int{50, 100, 250, 500} {
		elems := mb * 1000 * 1000 / 4 / o.Scale
		fmt.Fprintf(o.Log, "fig7: %d MB (scaled to %d elems)...\n", mb, elems)
		run := func(k int) (netsim.Time, error) {
			r, err := rack.NewRack(rack.Config{
				Workers: 8, SlotElems: k, LossRecovery: true, Seed: o.Seed,
				Tracer: o.Tracer,
			})
			if err != nil {
				return 0, err
			}
			res, err := r.AllReduceShared(make([]int32, elems))
			if err != nil {
				return 0, err
			}
			return res.TAT, nil
		}
		small, err := run(packet.DefaultElems)
		if err != nil {
			return nil, err
		}
		big, err := run(packet.MTUElems)
		if err != nil {
			return nil, err
		}
		us := make([][]int32, 8)
		for i := range us {
			us[i] = make([]int32, elems)
		}
		ps, err := allreduce.RunPS(allreduce.Config{
			Workers: 8, PerPacketCost: 110 * netsim.Nanosecond, PacketBytes: 1460, Seed: o.Seed,
		}, us, false)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dMB/%d", mb, o.Scale),
			fmtMs(small), fmtMs(big), fmtMs(netsim.Time(ps.Time)),
			fmtMs(netsim.Time(allreduce.SwitchMLLineRateTAT(10e9, packet.DefaultElems, elems) * 1e9)),
			fmtMs(netsim.Time(allreduce.SwitchMLLineRateTAT(10e9, packet.MTUElems, elems) * 1e9)),
		})
	}
	t.Notes = append(t.Notes,
		"paper: MTU packets would cut header overhead from 28.9% to 3.4% and improve TAT ~31.6%;",
		"SwitchML with k=32 pays only that modest cost versus the MTU upper bound")
	return t, nil
}
