package bench

import (
	"fmt"

	"switchml/internal/allreduce"
	"switchml/internal/core"
	"switchml/internal/hier"
	"switchml/internal/netsim"
	"switchml/internal/p4sim"
	"switchml/internal/rack"
)

// Extension experiments beyond the paper's figures, covering the §5.4
// and §6 discussion points.

// RunMultiTenant reproduces the §6 "Multi-job" analysis: how many
// concurrent jobs' pools fit on the modelled Tofino, and what fraction
// of switch SRAM each consumes — quantifying "the resources used for
// one reduction are much less than 10% of switch capabilities".
func RunMultiTenant(o Options) (*Table, error) {
	o.fill()
	chip := p4sim.Tofino64x100G()
	chipSRAM := chip.Stages * chip.SRAMPerStageBytes
	cfg := core.SwitchConfig{Workers: 16, PoolSize: 512, SlotElems: 32, LossRecovery: true}

	// Dataplane register memory is the fraction of SRAM not consumed
	// by forwarding tables; the p4sim element stages hold the pools.
	ms := core.NewMultiSwitch(chipSRAM)
	t := &Table{
		ID:     "multitenant",
		Title:  "Multi-job admission on the modelled chip (512-slot pools, 16 workers, 100G tuning)",
		Header: []string{"jobs admitted", "total pool SRAM (KiB)", "fraction of chip SRAM"},
	}
	admitted := 0
	for job := uint16(0); ; job++ {
		c := cfg
		c.JobID = job
		if _, err := ms.AdmitJob(c); err != nil {
			break
		}
		admitted++
		if admitted == 1 || admitted == 8 || admitted == 32 || admitted%64 == 0 {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", admitted),
				fmt.Sprintf("%d", ms.MemoryBytes()/1024),
				fmt.Sprintf("%.2f%%", 100*float64(ms.MemoryBytes())/float64(chipSRAM)),
			})
		}
		if admitted >= 1024 {
			break
		}
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("%d (max)", admitted),
		fmt.Sprintf("%d", ms.MemoryBytes()/1024),
		fmt.Sprintf("%.2f%%", 100*float64(ms.MemoryBytes())/float64(chipSRAM)),
	})
	t.Notes = append(t.Notes,
		"one job's pools use well under 10% of SRAM (§5.5), so tens of concurrent jobs fit;",
		"the admission check is the mechanism §6 calls for")
	return t, nil
}

// RunStraggler demonstrates the §6 self-clocking observation: "the
// self-clocking mechanism is also effective at slowing down the
// system in the presence of stragglers" — one worker with a slower
// link throttles the whole aggregation to its rate, gracefully rather
// than catastrophically.
func RunStraggler(o Options) (*Table, error) {
	o.fill()
	elems := o.mb100() / 2
	t := &Table{
		ID:     "straggler",
		Title:  "Self-clocking under a straggling worker (8 workers @ 10G)",
		Header: []string{"straggler link", "TAT (ms)", "vs straggler-limited bound"},
	}
	for _, frac := range []float64{1.0, 0.5, 0.25, 0.1} {
		rates := make([]float64, 8)
		rates[3] = 10e9 * frac
		r, err := rack.NewRack(rack.Config{
			Workers: 8, LossRecovery: true, Seed: o.Seed,
			WorkerLinkBitsPerSec: rates, Tracer: o.Tracer,
			// The RTO must sit above the straggler-stretched RTT, as
			// §6 prescribes; scale it with the slowdown.
			RTO: netsim.Time(float64(10*netsim.Millisecond) / frac),
		})
		if err != nil {
			return nil, err
		}
		res, err := r.AllReduceShared(make([]int32, elems))
		if err != nil {
			return nil, err
		}
		bound := allreduce.SwitchMLLineRateTAT(10e9*frac, 32, elems)
		label := "full rate"
		if frac < 1 {
			label = fmt.Sprintf("%.0f%% rate", frac*100)
		}
		t.Rows = append(t.Rows, []string{
			label, fmtMs(res.TAT),
			fmt.Sprintf("%.2fx", float64(res.TAT)/1e9/bound),
		})
	}
	t.Notes = append(t.Notes,
		"TAT tracks the slowest worker's line rate (ratio ~1.0): the pool self-clocks to the",
		"straggler without timeouts collapsing throughput (§6 'Lack of congestion control')")
	return t, nil
}

// RunRDMA covers the §5.4 discussion ("Can SwitchML be faster than
// RDMA?"): Gloo with RDMA transport gains ~4x over TCP at 100 Gbps,
// yet in-network aggregation still sends 2(n-1)/n times less data.
func RunRDMA(o Options) (*Table, error) {
	o.fill()
	const workers = 8
	const bw = 100e9
	t := &Table{
		ID:     "rdma",
		Title:  "SwitchML vs RDMA-accelerated ring all-reduce (8 workers @ 100G)",
		Header: []string{"system", "ATE/s (x10^6)"},
	}
	sml, err := measureSwitchML(o, workers, bw, 0)
	if err != nil {
		return nil, err
	}
	tcp, err := measureRing(o, workers, bw, glooEff(bw))
	if err != nil {
		return nil, err
	}
	// §5.4: "we observed a sensible 4x speedup exchanging 50MB tensors
	// with Gloo at 100Gbps using RDMA versus TCP".
	rdmaEff := 4 * glooEff(bw)
	if rdmaEff > 1 {
		rdmaEff = 1
	}
	rdma, err := measureRing(o, workers, bw, rdmaEff)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"switchml", fmtATE(sml)})
	t.Rows = append(t.Rows, []string{"gloo+tcp", fmtATE(tcp)})
	t.Rows = append(t.Rows, []string{"gloo+rdma (4x tcp, §5.4)", fmtATE(rdma)})
	t.Rows = append(t.Rows, []string{"line(sml)", fmtATE(allreduce.SwitchMLLineRateATE(bw, 32))})
	t.Rows = append(t.Rows, []string{"line(ring)", fmtATE(allreduce.RingLineRateATE(bw, workers))})
	t.Notes = append(t.Notes,
		"RDMA closes much of the stack gap but ring all-reduce still moves 2(n-1)/n times the",
		"data per element; SwitchML's advantage is architectural, not transport-bound (§5.4)")
	return t, nil
}

// RunScaling covers §6 "Extrapolating performance": "the tensor
// aggregation time does not depend on first order on the number of
// workers n". Single racks sweep n; two-level trees extend to the
// multi-rack scale the paper conjectures about.
func RunScaling(o Options) (*Table, error) {
	o.fill()
	elems := o.mb100() / 2
	t := &Table{
		ID:     "scaling",
		Title:  "TAT vs worker count (10G): single rack and two-level trees",
		Header: []string{"topology", "workers", "TAT (ms)", "vs line rate"},
	}
	wire := float64(allreduce.SwitchMLLineRateTAT(10e9, 32, elems)) * 1e9
	addRow := func(top string, n int, tat netsim.Time) {
		t.Rows = append(t.Rows, []string{
			top, fmt.Sprintf("%d", n), fmtMs(tat),
			fmt.Sprintf("%.3fx", float64(tat)/wire),
		})
	}
	for _, n := range []int{8, 16, 32, 64} {
		fmt.Fprintf(o.Log, "scaling: rack n=%d...\n", n)
		r, err := rack.NewRack(rack.Config{Workers: n, LossRecovery: true, Seed: o.Seed, Tracer: o.Tracer})
		if err != nil {
			return nil, err
		}
		res, err := r.AllReduceShared(make([]int32, elems))
		if err != nil {
			return nil, err
		}
		addRow("rack", n, res.TAT)
	}
	for _, racks := range []int{4, 8} {
		n := racks * 16
		fmt.Fprintf(o.Log, "scaling: tree %dx16...\n", racks)
		tr, err := hier.NewTree(hier.Config{Racks: racks, WorkersPerRack: 16, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		res, err := tr.AllReduceShared(make([]int32, elems))
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("tree %dx16", racks), n, res.TAT)
	}
	t.Notes = append(t.Notes,
		"TAT is flat in n for racks and within a few percent for two-level trees:",
		"aggregation bandwidth per worker is constant, confirming the paper's extrapolation")
	return t, nil
}
