package bench

import (
	"fmt"
	"sort"
)

// Runner produces one experiment artifact.
type Runner func(Options) (*Table, error)

// Experiments maps experiment ids to their runners, the per-
// experiment index of DESIGN.md.
var Experiments = map[string]Runner{
	"table1":             RunTable1,
	"fig2":               RunFig2,
	"fig3":               RunFig3,
	"fig4":               RunFig4,
	"fig5":               RunFig5,
	"fig6":               RunFig6,
	"fig7":               RunFig7,
	"fig8":               RunFig8,
	"fig10":              RunFig10,
	"hotpath":            RunHotpath,
	"ablation-algorithm": RunAblationAlgorithm,
	"ablation-rto":       RunAblationRTO,
	"ablation-pool":      RunAblationPoolTuning,
	"elastic":            RunElastic,
	"failover":           RunFailover,
	"fallback":           RunFallback,
	"multitenant":        RunMultiTenant,
	"straggler":          RunStraggler,
	"rdma":               RunRDMA,
	"scaling":            RunScaling,
}

// IDs returns the experiment ids in stable order.
func IDs() []string {
	ids := make([]string, 0, len(Experiments))
	for id := range Experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, o Options) (*Table, error) {
	r, ok := Experiments[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return r(o)
}
