package bench

import (
	"encoding/json"
	"fmt"

	"switchml/internal/faults"
	"switchml/internal/netsim"
	"switchml/internal/rack"
)

// FallbackReport is the machine-readable BENCH_fallback.json schema:
// the cost of losing the switch. SwitchATEPerSec is the healthy
// switch path, DegradedATEPerSec the host ring all-reduce the job
// falls back to, and the ratio quantifies how much of the paper's
// speedup an outage temporarily gives back. FailoverGap is the
// one-time hit of the handoff itself: the extra simulated time the
// kill-step takes over a healthy step (silence detection + barrier
// sync + re-aggregating the suffix on hosts).
type FallbackReport struct {
	Schema            string            `json:"schema"`
	Workers           int               `json:"workers"`
	LinkGbps          float64           `json:"link_gbps"`
	TensorElems       int               `json:"tensor_elems"`
	SwitchATEPerSec   float64           `json:"switch_ate_per_sec"`
	DegradedATEPerSec float64           `json:"degraded_ate_per_sec"`
	DegradedRatio     float64           `json:"degraded_over_switch_ratio"`
	FailoverGapNs     int64             `json:"failover_gap_ns"`
	HealthyStepNs     int64             `json:"healthy_step_ns"`
	KillStepNs        int64             `json:"kill_step_ns"`
	SuspectAfterNs    int64             `json:"suspect_after_ns"`
	Counters          map[string]uint64 `json:"counters"`
}

// fallbackConfig is the shared rack shape of the experiment.
func fallbackConfig(o Options, sc *faults.Scenario) rack.Config {
	return rack.Config{
		Workers:        4,
		LinkBitsPerSec: 10e9,
		LossRecovery:   true,
		RTO:            100 * netsim.Microsecond,
		Seed:           o.Seed,
		Tracer:         o.Tracer,
		Faults:         sc,
		Health: &rack.HealthConfig{
			SuspectAfter: 800 * netsim.Microsecond,
			// While degraded the ring saturates the links, so a probe
			// ack can queue behind ~64 KiB bursts; the probe period
			// must exceed that worst-case RTT or the streak never
			// builds and the job stays degraded.
			ProbeEvery: netsim.Millisecond,
			Probation:  2,
		},
	}
}

// RunFallback measures the self-healing degraded mode: steady-state
// ATE/s on the switch path versus pinned host ring all-reduce, and
// the one-time failover gap when the switch dies mid-step and the job
// hands the tensor suffix to the hosts.
func RunFallback(o Options) (*Table, error) {
	o.fill()
	elems := o.mb100() / 5
	updates := func() [][]int32 {
		us := make([][]int32, 4)
		for w := range us {
			us[w] = make([]int32, elems)
			for j := range us[w] {
				us[w][j] = int32(w + j%13)
			}
		}
		return us
	}

	// Steady state on the switch path.
	swRack, err := rack.NewRack(fallbackConfig(o, nil))
	if err != nil {
		return nil, err
	}
	swRes, err := swRack.AllReduce(updates())
	if err != nil {
		return nil, err
	}
	switchATE := float64(elems) / (float64(swRes.TAT) / 1e9)

	// Steady state pinned on the host fabric.
	degCfg := fallbackConfig(o, nil)
	degCfg.StartDegraded = true
	degCfg.Health.Probation = -1
	degRack, err := rack.NewRack(degCfg)
	if err != nil {
		return nil, err
	}
	degRes, err := degRack.AllReduce(updates())
	if err != nil {
		return nil, err
	}
	degradedATE := float64(elems) / (float64(degRes.TAT) / 1e9)

	// The failover transient: kill the switch mid-step 2, revive it
	// during the degraded window, run to failback. Step 1 is the
	// healthy reference; step 2 pays detection + handoff.
	sc := &faults.Scenario{Actions: []faults.Action{
		{Kind: faults.KillSwitch, Step: 2, At: 20 * netsim.Microsecond},
		{Kind: faults.ReviveSwitch, Step: 2, At: 5 * netsim.Millisecond},
	}}
	chaos, err := rack.NewRack(fallbackConfig(o, sc))
	if err != nil {
		return nil, err
	}
	var healthyStep, killStep netsim.Time
	for step := 1; step <= 6; step++ {
		res, err := chaos.AllReduce(updates())
		if err != nil {
			return nil, fmt.Errorf("fallback: chaos step %d: %w", step, err)
		}
		switch step {
		case 1:
			healthyStep = res.TAT
		case 2:
			killStep = res.TAT
		}
	}
	counters := chaos.Counters()
	if counters["health_degrades"] == 0 || counters["health_failbacks"] == 0 {
		return nil, fmt.Errorf("fallback: chaos run did not degrade and fail back: %v", counters)
	}
	gap := killStep - healthyStep

	report := &FallbackReport{
		Schema:            "switchml-fallback-v1",
		Workers:           4,
		LinkGbps:          10,
		TensorElems:       elems,
		SwitchATEPerSec:   switchATE,
		DegradedATEPerSec: degradedATE,
		DegradedRatio:     degradedATE / switchATE,
		FailoverGapNs:     int64(gap),
		HealthyStepNs:     int64(healthyStep),
		KillStepNs:        int64(killStep),
		SuspectAfterNs:    int64(800 * netsim.Microsecond),
		Counters:          counters,
	}
	artifact, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:       "fallback",
		Title:    fmt.Sprintf("Self-healing fallback: switch vs host fabric (4 workers, 10 Gbps, %d elems)", elems),
		Header:   []string{"fabric", "TAT", "ATE/s", "vs switch"},
		Counters: counters,
		Artifact: artifact,
		Rows: [][]string{
			{"switch", fmt.Sprint(swRes.TAT.Duration()), fmt.Sprintf("%.1fM", switchATE/1e6), "1.00x"},
			{"host ring (degraded)", fmt.Sprint(degRes.TAT.Duration()), fmt.Sprintf("%.1fM", degradedATE/1e6), fmt.Sprintf("%.2fx", degradedATE/switchATE)},
		},
		Notes: []string{
			fmt.Sprintf("failover transient: kill-step TAT %v vs healthy %v (gap %v, incl. %v silence detection)",
				killStep.Duration(), healthyStep.Duration(), gap.Duration(), (800 * netsim.Microsecond).Duration()),
			fmt.Sprintf("chaos run: %d degrade(s), %d failback(s), %d/%d probes answered, %d elems host-aggregated",
				counters["health_degrades"], counters["health_failbacks"],
				counters["health_probe_acks"], counters["health_probes"], counters["host_aggregated_elems"]),
		},
	}
	return t, nil
}
