package bench

import (
	"encoding/json"
	"fmt"

	"switchml/internal/core"
	"switchml/internal/faults"
	"switchml/internal/netsim"
	"switchml/internal/rack"
)

// ElasticReport is the machine-readable BENCH_elastic.json schema: the
// cost of elastic membership. The churn section measures the
// disruption window of a graceful join and a graceful drain — the
// extra time the fence-commit step takes over the surrounding steady
// state — and the quorum section measures what straggler mitigation
// buys: the non-straggler members' aggregation rate with 1–2 slow
// workers, at full participation versus an N-of-M quorum.
type ElasticReport struct {
	Schema      string `json:"schema"`
	Workers     int    `json:"workers"`
	LinkGbps    float64 `json:"link_gbps"`
	TensorElems int    `json:"tensor_elems"`
	// SteadyStepNs is the pre-churn steady-state step time.
	SteadyStepNs int64 `json:"steady_step_ns"`
	// JoinCommitStepNs is the step in which the joiner's fence
	// committed; JoinDisruptionNs its overhead versus the post-join
	// steady state (PostJoinStepNs).
	JoinCommitStepNs int64 `json:"join_commit_step_ns"`
	PostJoinStepNs   int64 `json:"post_join_step_ns"`
	JoinDisruptionNs int64 `json:"join_disruption_ns"`
	// DrainCommitStepNs / PostDrainStepNs / DrainDisruptionNs are the
	// same window for the graceful leave.
	DrainCommitStepNs int64 `json:"drain_commit_step_ns"`
	PostDrainStepNs   int64 `json:"post_drain_step_ns"`
	DrainDisruptionNs int64 `json:"drain_disruption_ns"`
	// Quorum rows compare member-visible TAT with stragglers present.
	Quorum []ElasticQuorumRow `json:"quorum"`
	// Counters is the churn run's protocol-counter dump.
	Counters map[string]uint64 `json:"counters"`
}

// ElasticQuorumRow is one straggler-mitigation measurement.
type ElasticQuorumRow struct {
	// Stragglers is how many of the workers run at StragglerGbps.
	Stragglers int `json:"stragglers"`
	// Quorum is the N of N-of-M (0 = full participation).
	Quorum int `json:"quorum"`
	// MemberTATNs is the slowest NON-straggler member's tensor
	// aggregation time — what quorum protects. TATNs includes the
	// stragglers (they still finish, via late/gone handling).
	MemberTATNs int64 `json:"member_tat_ns"`
	TATNs       int64 `json:"tat_ns"`
	// MemberATEPerSec is elems/s from the members' point of view.
	MemberATEPerSec float64 `json:"member_ate_per_sec"`
	// QuorumCompletions counts slots that completed at the quorum
	// threshold rather than full participation.
	QuorumCompletions uint64 `json:"quorum_completions"`
}

// RunElastic measures elastic membership: the join and drain
// disruption windows (a 4-worker job admits a 5th, then drains one)
// and the quorum throughput recovery with 1–2 stragglers on an
// 8-worker job.
func RunElastic(o Options) (*Table, error) {
	o.fill()
	elems := o.mb100() / 5

	// --- Churn: steady state, admit worker 4 at step 3, drain worker
	// 1 at step 6, steady again. Scripted actions fire during their
	// step and commit at the next step boundary.
	churn, err := rack.NewRack(rack.Config{
		Workers:        5,
		LinkBitsPerSec: 10e9,
		LossRecovery:   true,
		RTO:            100 * netsim.Microsecond,
		Seed:           o.Seed,
		Tracer:         o.Tracer,
		Detached:       []int{4},
		Faults: &faults.Scenario{Actions: []faults.Action{
			{Kind: faults.JoinWorker, Worker: 4, Step: 3},
			{Kind: faults.LeaveWorker, Worker: 1, Step: 6},
		}},
	})
	if err != nil {
		return nil, err
	}
	tensor := make([]int32, elems)
	for j := range tensor {
		tensor[j] = int32(j % 13)
	}
	const steps = 9
	stepTAT := make([]netsim.Time, steps+1)
	for step := 1; step <= steps; step++ {
		res, err := churn.AllReduceShared(tensor)
		if err != nil {
			return nil, fmt.Errorf("elastic: churn step %d: %w", step, err)
		}
		if len(res.Failed) != 0 {
			return nil, fmt.Errorf("elastic: churn step %d declared failures %v (graceful churn must not trip liveness)", step, res.Failed)
		}
		stepTAT[step] = res.TAT
	}
	counters := churn.Counters()
	// Join fires in step 3 and commits at the step-4 boundary; the
	// leave fires in step 6 and commits at the step-7 boundary.
	steady, joinCommit, postJoin := stepTAT[2], stepTAT[4], stepTAT[5]
	drainCommit, postDrain := stepTAT[7], stepTAT[8]

	// --- Quorum: 8 workers, stragglers at 25% line rate. Full
	// participation self-clocks everyone down to the straggler; an
	// N-of-M quorum completes slots without it, so the members' TAT
	// recovers to near full rate while the straggler catches up on
	// late/gone replies.
	const (
		qWorkers       = 8
		stragglerFrac  = 0.25
		stragglerFirst = 3
	)
	var rows []ElasticQuorumRow
	for _, tc := range []struct{ stragglers, quorum int }{
		{0, 0}, {1, 0}, {1, qWorkers - 1}, {2, qWorkers - 2},
	} {
		cfg := rack.Config{
			Workers: qWorkers, LossRecovery: true, Seed: o.Seed, Tracer: o.Tracer,
			Quorum:     tc.quorum,
			LatePolicy: core.LateDrop,
			// The RTO must sit above the straggler-stretched RTT (§6).
			RTO: netsim.Time(float64(10*netsim.Millisecond) / stragglerFrac),
		}
		straggler := make(map[int]bool, tc.stragglers)
		if tc.stragglers > 0 {
			rates := make([]float64, qWorkers)
			for i := 0; i < tc.stragglers; i++ {
				rates[stragglerFirst+i] = 10e9 * stragglerFrac
				straggler[stragglerFirst+i] = true
			}
			cfg.WorkerLinkBitsPerSec = rates
		}
		r, err := rack.NewRack(cfg)
		if err != nil {
			return nil, err
		}
		res, err := r.AllReduceShared(tensor)
		if err != nil {
			return nil, fmt.Errorf("elastic: quorum run (%d stragglers, quorum %d): %w",
				tc.stragglers, tc.quorum, err)
		}
		var memberTAT netsim.Time
		for w, done := range res.Done {
			if straggler[w] || done == 0 {
				continue
			}
			if d := done - res.Start; d > memberTAT {
				memberTAT = d
			}
		}
		rows = append(rows, ElasticQuorumRow{
			Stragglers:        tc.stragglers,
			Quorum:            tc.quorum,
			MemberTATNs:       int64(memberTAT),
			TATNs:             int64(res.TAT),
			MemberATEPerSec:   float64(elems) / (float64(memberTAT) / 1e9),
			QuorumCompletions: r.Switch().Stats().QuorumCompletions,
		})
	}

	report := &ElasticReport{
		Schema:            "switchml-elastic-v1",
		Workers:           5,
		LinkGbps:          10,
		TensorElems:       elems,
		SteadyStepNs:      int64(steady),
		JoinCommitStepNs:  int64(joinCommit),
		PostJoinStepNs:    int64(postJoin),
		JoinDisruptionNs:  int64(joinCommit - postJoin),
		DrainCommitStepNs: int64(drainCommit),
		PostDrainStepNs:   int64(postDrain),
		DrainDisruptionNs: int64(drainCommit - postDrain),
		Quorum:            rows,
		Counters:          counters,
	}
	artifact, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:       "elastic",
		Title:    fmt.Sprintf("Elastic membership: churn disruption and quorum straggler mitigation (%d elems)", elems),
		Header:   []string{"measurement", "value", "vs steady/full"},
		Counters: counters,
		Artifact: artifact,
		Rows: [][]string{
			{"steady step (4 members)", fmt.Sprint(steady.Duration()), "1.00x"},
			{"join-commit step", fmt.Sprint(joinCommit.Duration()),
				fmt.Sprintf("%+v window", (joinCommit - postJoin).Duration())},
			{"drain-commit step", fmt.Sprint(drainCommit.Duration()),
				fmt.Sprintf("%+v window", (drainCommit - postDrain).Duration())},
		},
	}
	full := rows[1] // 1 straggler, full participation
	for _, row := range rows {
		label := fmt.Sprintf("%d straggler(s), full participation", row.Stragglers)
		if row.Quorum > 0 {
			label = fmt.Sprintf("%d straggler(s), quorum %d-of-%d", row.Stragglers, row.Quorum, qWorkers)
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("member TAT %v", netsim.Time(row.MemberTATNs).Duration()),
			fmt.Sprintf("%.2fx member ATE vs 1-straggler full", row.MemberATEPerSec/full.MemberATEPerSec),
		})
	}
	t.Notes = append(t.Notes,
		"join/drain windows are the fence-commit step's overhead over the adjacent steady state;",
		"graceful churn never trips the failure detector (asserted per step)",
		"quorum rows: member TAT excludes the stragglers, which finish late via late/gone handling")
	return t, nil
}
