// Package bench contains the experiment harness that regenerates
// every table and figure of the paper's evaluation (§5 and
// Appendix C). Each RunX function reproduces one artifact and returns
// a Table whose rows mirror the paper's; cmd/switchml-bench renders
// them, and EXPERIMENTS.md records paper-vs-measured values.
//
// # Calibration
//
// Three constants tie simulated baselines to the paper's testbed:
//
//   - NCCL and Gloo run ring all-reduce over TCP; their stack
//     efficiency (fraction of link goodput a single-stream TCP ring
//     achieves) is fit to Table 1 and Figures 3-4: NCCL ~0.38 of
//     link rate at 10 Gbps and ~0.10 at 100 Gbps (single-flow TCP
//     barely scales past ~20 Gbps, which is why the paper's 100 Gbps
//     speedups match its 10 Gbps ones), Gloo roughly 60% of NCCL.
//   - The single-node multi-GPU baseline is calibrated in
//     internal/ml (MultiGPUComm).
//
// Everything else — SwitchML itself, the PS baselines, and all line
// rates — emerges from the simulated protocols without fitting.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"switchml/internal/allreduce"
	"switchml/internal/netsim"
	"switchml/internal/rack"
	"switchml/internal/telemetry"
)

// TCP-stack efficiency calibration (see package comment).
const (
	NCCLEfficiency10G  = 0.38
	NCCLEfficiency100G = 0.10
	GlooEfficiency10G  = 0.22
	GlooEfficiency100G = 0.06
)

// ncclEff returns the NCCL efficiency for a link rate.
func ncclEff(bitsPerSec float64) float64 {
	if bitsPerSec >= 50e9 {
		return NCCLEfficiency100G
	}
	return NCCLEfficiency10G
}

// glooEff returns the Gloo efficiency for a link rate.
func glooEff(bitsPerSec float64) float64 {
	if bitsPerSec >= 50e9 {
		return GlooEfficiency100G
	}
	return GlooEfficiency10G
}

// Table is one rendered experiment artifact.
type Table struct {
	// ID is the experiment id ("table1", "fig4", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold pre-formatted cells.
	Rows [][]string
	// Notes carry caveats and substitutions.
	Notes []string
	// Counters is a protocol-counter snapshot from the experiment's
	// most interesting run (packets, drops, retransmissions, shadow
	// reads — see rack.Counters), so result trajectories carry
	// protocol behaviour alongside timing.
	Counters map[string]uint64
	// Artifact optionally carries a machine-readable JSON rendering
	// of the experiment; cmd/switchml-bench -artifacts writes it to
	// BENCH_<id>.json for baselines tracked in the repository.
	Artifact []byte
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	if len(t.Counters) > 0 {
		keys := make([]string, 0, len(t.Counters))
		for k := range t.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%d", k, t.Counters[k])
		}
		fmt.Fprintf(w, "  counters: %s\n", strings.Join(parts, " "))
	}
	fmt.Fprintln(w)
}

// Scale shrinks experiment tensor sizes for quick runs: tensors are
// divided by Scale. Rates and ratios are size-independent (§5.3
// verifies this), so shapes are preserved.
type Options struct {
	// Scale divides the paper's tensor sizes; 1 reproduces full-size
	// runs, larger values run faster. Zero selects 10.
	Scale int
	// Seed for all simulations.
	Seed int64
	// Verbose logs progress to Log.
	Log io.Writer
	// Tracer, when set, observes protocol events from every simulated
	// SwitchML rack the experiments run (cmd/switchml-bench -trace
	// records them to a Chrome trace file).
	Tracer telemetry.Tracer
}

func (o *Options) fill() {
	if o.Scale <= 0 {
		o.Scale = 10
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
}

// mb100 returns the element count of the paper's 100 MB tensor,
// scaled.
func (o *Options) mb100() int { return 25 * 1000 * 1000 / o.Scale }

// measureSwitchML runs a rack microbenchmark and returns ATE/s.
func measureSwitchML(o Options, workers int, bitsPerSec float64, slotElems int) (float64, error) {
	r, err := rack.NewRack(rack.Config{
		Workers:        workers,
		LinkBitsPerSec: bitsPerSec,
		SlotElems:      slotElems,
		LossRecovery:   true,
		Seed:           o.Seed,
		Tracer:         o.Tracer,
	})
	if err != nil {
		return 0, err
	}
	elems := o.mb100()
	res, err := r.AllReduceShared(make([]int32, elems))
	if err != nil {
		return 0, err
	}
	return float64(elems) / (float64(res.TAT) / 1e9), nil
}

// measureRing runs the ring baseline and returns ATE/s.
func measureRing(o Options, workers int, bitsPerSec, efficiency float64) (float64, error) {
	elems := o.mb100()
	us := make([][]int32, workers)
	for i := range us {
		us[i] = make([]int32, elems)
	}
	res, err := allreduce.RunRing(allreduce.Config{
		Workers:        workers,
		LinkBitsPerSec: bitsPerSec,
		Efficiency:     efficiency,
		Seed:           o.Seed,
	}, us)
	if err != nil {
		return 0, err
	}
	return res.ATEPerSec(), nil
}

// measurePS runs the parameter-server baseline and returns ATE/s.
func measurePS(o Options, workers int, bitsPerSec float64, colocated bool, packetBytes int) (float64, error) {
	elems := o.mb100()
	us := make([][]int32, workers)
	for i := range us {
		us[i] = make([]int32, elems)
	}
	res, err := allreduce.RunPS(allreduce.Config{
		Workers:        workers,
		LinkBitsPerSec: bitsPerSec,
		PerPacketCost:  110 * netsim.Nanosecond,
		PacketBytes:    packetBytes,
		Seed:           o.Seed,
	}, us, colocated)
	if err != nil {
		return 0, err
	}
	return res.ATEPerSec(), nil
}

// summary holds violin-plot style statistics (§5.1 reports median,
// min and max).
type summary struct {
	min, median, max netsim.Time
}

func summarize(samples []netsim.Time) summary {
	if len(samples) == 0 {
		return summary{}
	}
	s := append([]netsim.Time(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return summary{min: s[0], median: s[len(s)/2], max: s[len(s)-1]}
}

// fmtATE renders an ATE/s value in the paper's "x10^6" units.
func fmtATE(v float64) string { return fmt.Sprintf("%.1f", v/1e6) }

// fmtMs renders a virtual time in milliseconds.
func fmtMs(t netsim.Time) string { return fmt.Sprintf("%.2f", float64(t)/1e6) }

// fmtUs renders a virtual time in microseconds.
func fmtUs(t netsim.Time) string { return fmt.Sprintf("%.1f", float64(t)/1e3) }
