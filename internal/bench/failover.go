package bench

import (
	"encoding/json"
	"fmt"

	"switchml/internal/faults"
	"switchml/internal/netsim"
	"switchml/internal/rack"
)

// FailoverReport is the machine-readable BENCH_failover.json schema:
// the value of a warm standby over the host mesh. SwitchATEPerSec is
// the healthy primary, StandbyATEPerSec the post-failover steady
// state on the standby rung, DegradedATEPerSec the mesh rung of last
// resort; the ratios show the standby recovering near-line-rate
// throughput where the mesh gives back most of the paper's speedup.
// FailoverGap is the one-time hit of the kill step itself (silence
// detection + re-home + re-aggregating the suffix on the standby).
type FailoverReport struct {
	Schema            string            `json:"schema"`
	Workers           int               `json:"workers"`
	LinkGbps          float64           `json:"link_gbps"`
	TensorElems       int               `json:"tensor_elems"`
	SwitchATEPerSec   float64           `json:"switch_ate_per_sec"`
	StandbyATEPerSec  float64           `json:"standby_ate_per_sec"`
	DegradedATEPerSec float64           `json:"degraded_ate_per_sec"`
	StandbyRatio      float64           `json:"standby_over_switch_ratio"`
	DegradedRatio     float64           `json:"degraded_over_switch_ratio"`
	FailoverGapNs     int64             `json:"failover_gap_ns"`
	HealthyStepNs     int64             `json:"healthy_step_ns"`
	KillStepNs        int64             `json:"kill_step_ns"`
	StandbyStepNs     int64             `json:"standby_step_ns"`
	SuspectAfterNs    int64             `json:"suspect_after_ns"`
	Counters          map[string]uint64 `json:"counters"`
}

// RunFailover measures the warm-standby failover ladder: kill the
// primary mid-step and compare the standby's post-failover steady
// state against the healthy primary and against the host-mesh rung
// the job would otherwise live on. The chaos run also revives the
// primary and runs to failback, so the one artifact covers the whole
// kill → re-home → fail-up cycle.
func RunFailover(o Options) (*Table, error) {
	o.fill()
	elems := o.mb100() / 5
	updates := func() [][]int32 {
		us := make([][]int32, 4)
		for w := range us {
			us[w] = make([]int32, elems)
			for j := range us[w] {
				us[w][j] = int32(w + j%13)
			}
		}
		return us
	}

	// Steady state pinned on the mesh: the rung of last resort this
	// experiment argues the standby beats.
	degCfg := fallbackConfig(o, nil)
	degCfg.StartDegraded = true
	degCfg.Health.Probation = -1
	degRack, err := rack.NewRack(degCfg)
	if err != nil {
		return nil, err
	}
	degRes, err := degRack.AllReduce(updates())
	if err != nil {
		return nil, err
	}
	degradedATE := float64(elems) / (float64(degRes.TAT) / 1e9)

	// The ladder run: step 1 healthy on the primary, the kill lands in
	// step 2 (which pays detection + re-home), steps 3-5 run on the
	// standby, the revive during step 6 starts fail-up probation, and
	// the job is back on the primary before step 10. (Ten steps, not
	// eight: at smoke scales a step is shorter than the probe period,
	// so the streak only grows by the one probe each step start sends
	// — probation needs the extra boundaries.)
	sc := &faults.Scenario{Actions: []faults.Action{
		{Kind: faults.KillSwitch, Step: 2, At: 20 * netsim.Microsecond},
		{Kind: faults.ReviveSwitch, Step: 6, At: 50 * netsim.Microsecond},
	}}
	cfg := fallbackConfig(o, sc)
	cfg.StandbySwitches = 1
	chaos, err := rack.NewRack(cfg)
	if err != nil {
		return nil, err
	}
	var healthyStep, killStep, standbyStep netsim.Time
	for step := 1; step <= 10; step++ {
		res, err := chaos.AllReduce(updates())
		if err != nil {
			return nil, fmt.Errorf("failover: chaos step %d: %w", step, err)
		}
		switch step {
		case 1:
			healthyStep = res.TAT
		case 2:
			killStep = res.TAT
		case 4:
			// Step 3 may still carry re-home transients; step 4 is the
			// standby's steady state.
			standbyStep = res.TAT
		}
	}
	counters := chaos.Counters()
	if counters["failover_rehomes"] == 0 || counters["health_failbacks"] == 0 {
		return nil, fmt.Errorf("failover: chaos run did not re-home and fail back: %v", counters)
	}
	if counters["health_degrades"] != 0 {
		return nil, fmt.Errorf("failover: job fell through the standby to the mesh: %v", counters)
	}
	if chaos.HomeRank() != 0 {
		return nil, fmt.Errorf("failover: job ended on rung %d, want the primary", chaos.HomeRank())
	}

	switchATE := float64(elems) / (float64(healthyStep) / 1e9)
	standbyATE := float64(elems) / (float64(standbyStep) / 1e9)
	gap := killStep - healthyStep

	report := &FailoverReport{
		Schema:            "switchml-failover-v1",
		Workers:           4,
		LinkGbps:          10,
		TensorElems:       elems,
		SwitchATEPerSec:   switchATE,
		StandbyATEPerSec:  standbyATE,
		DegradedATEPerSec: degradedATE,
		StandbyRatio:      standbyATE / switchATE,
		DegradedRatio:     degradedATE / switchATE,
		FailoverGapNs:     int64(gap),
		HealthyStepNs:     int64(healthyStep),
		KillStepNs:        int64(killStep),
		StandbyStepNs:     int64(standbyStep),
		SuspectAfterNs:    int64(800 * netsim.Microsecond),
		Counters:          counters,
	}
	artifact, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:       "failover",
		Title:    fmt.Sprintf("Warm-standby failover: primary vs standby vs host mesh (4 workers, 10 Gbps, %d elems)", elems),
		Header:   []string{"rung", "TAT", "ATE/s", "vs primary"},
		Counters: counters,
		Artifact: artifact,
		Rows: [][]string{
			{"primary switch", fmt.Sprint(healthyStep.Duration()), fmt.Sprintf("%.1fM", switchATE/1e6), "1.00x"},
			{"warm standby (post-failover)", fmt.Sprint(standbyStep.Duration()), fmt.Sprintf("%.1fM", standbyATE/1e6), fmt.Sprintf("%.2fx", standbyATE/switchATE)},
			{"host mesh (last resort)", fmt.Sprint(degRes.TAT.Duration()), fmt.Sprintf("%.1fM", degradedATE/1e6), fmt.Sprintf("%.2fx", degradedATE/switchATE)},
		},
		Notes: []string{
			fmt.Sprintf("failover transient: kill-step TAT %v vs healthy %v (gap %v, incl. %v silence detection)",
				killStep.Duration(), healthyStep.Duration(), gap.Duration(), (800 * netsim.Microsecond).Duration()),
			fmt.Sprintf("ladder run: %d re-homing(s), 0 mesh degrades, %d failback(s), standbys absorbed %d updates (%d completions)",
				counters["failover_rehomes"], counters["health_failbacks"],
				counters["standby_updates"], counters["standby_completions"]),
		},
	}
	return t, nil
}
