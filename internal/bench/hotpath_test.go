package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSmokeHotpath runs the hotpath experiment at smoke scale and
// checks the artifact's structure and its core claims: every pooled
// path is allocation-free and the derived speedups are recorded.
func TestSmokeHotpath(t *testing.T) {
	tb, err := Run("hotpath", opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	var rep HotpathReport
	if err := json.Unmarshal(tb.Artifact, &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if rep.Schema != "switchml-hotpath-v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	pooled := 0
	for _, r := range rep.Results {
		if strings.Contains(r.Name, "pooled") || strings.Contains(r.Name, "dispatch") {
			pooled++
			// MemStats-based accounting tolerates stray runtime
			// allocations; the exact 0 allocs/op guarantee is pinned
			// by the AllocsPerRun tests in packet and core.
			if r.AllocsPerOp > 0.01 {
				t.Errorf("%s allocates %.3f/op", r.Name, r.AllocsPerOp)
			}
		}
	}
	if pooled == 0 {
		t.Error("no pooled measurements in report")
	}
	for _, key := range []string{"cycle_speedup_pooled_vs_legacy", "shard_speedup_4x_vs_1x"} {
		if rep.Derived[key] <= 0 {
			t.Errorf("derived %s missing", key)
		}
	}
}
