package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSmokeHotpath runs the hotpath experiment at smoke scale and
// checks the artifact's structure and its core claims: every pooled
// path is allocation-free and the derived speedups are recorded.
func TestSmokeHotpath(t *testing.T) {
	tb, err := Run("hotpath", opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	var rep HotpathReport
	if err := json.Unmarshal(tb.Artifact, &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if rep.Schema != "switchml-hotpath-v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	pooled := 0
	for _, r := range rep.Results {
		if strings.Contains(r.Name, "pooled") || strings.Contains(r.Name, "dispatch") {
			pooled++
			// MemStats-based accounting tolerates stray runtime
			// allocations; the exact 0 allocs/op guarantee is pinned
			// by the AllocsPerRun tests in packet and core.
			if r.AllocsPerOp > 0.01 {
				t.Errorf("%s allocates %.3f/op", r.Name, r.AllocsPerOp)
			}
		}
	}
	if pooled == 0 {
		t.Error("no pooled measurements in report")
	}
	for _, key := range []string{"cycle_speedup_pooled_vs_legacy", "shard_speedup_4x_vs_1x", "udp_batched_speedup_4shards"} {
		if rep.Derived[key] <= 0 {
			t.Errorf("derived %s missing", key)
		}
	}
	// The batched run must record its burst shape: the configured
	// batch size and a live occupancy histogram.
	if rep.Derived["udp_batch_size"] < 2 {
		t.Errorf("udp_batch_size = %v, want the batched default", rep.Derived["udp_batch_size"])
	}
	// Under SWITCHML_NO_MMSG=1 every burst is 1 datagram and the
	// histogram interpolation reads p50 as 0.5, so only demand that
	// the occupancy histogram recorded at all.
	if rep.Derived["udp_batch_occupancy_p50"] <= 0 {
		t.Errorf("udp_batch_occupancy_p50 = %v, want > 0", rep.Derived["udp_batch_occupancy_p50"])
	}
	found := 0
	for _, r := range rep.Results {
		if r.Name == "udp/agg-batched" || r.Name == "udp/agg-unbatched" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("udp section incomplete: %d rows", found)
	}
}
