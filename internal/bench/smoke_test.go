package bench

import (
	"io"
	"testing"
)

func opts() Options { return Options{Scale: 100, Seed: 1, Log: io.Discard} }

func TestSmokeAll(t *testing.T) {
	for _, id := range IDs() {
		if id == "fig2" || id == "fig3" || id == "fig10" {
			continue // slower; separate tests
		}
		tb, err := Run(id, opts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
		tb.Render(io.Discard)
	}
}

func TestSmokeFig2(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	o := opts()
	o.Scale = 200
	tb, err := Run("fig2", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11 {
		t.Errorf("fig2 rows = %d, want 11", len(tb.Rows))
	}
}

func TestSmokeFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb, err := Run("fig3", opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 {
		t.Errorf("fig3 rows = %d, want 9", len(tb.Rows))
	}
}

func TestSmokeFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb, err := Run("fig10", opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Errorf("fig10 rows = %d, want 12", len(tb.Rows))
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", opts()); err == nil {
		t.Error("unknown id accepted")
	}
}
