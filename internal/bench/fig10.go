package bench

import (
	"fmt"

	"switchml/internal/core"
	"switchml/internal/ml"
	"switchml/internal/packet"
	"switchml/internal/quant"
)

// switchSummer routes integer gradient aggregation through the real
// switch and worker state machines (lossless lockstep), so the
// Figure 10 training sweep exercises the exact dataplane code path.
type switchSummer struct {
	sw      *core.Switch
	workers []*core.Worker
}

func newSwitchSummer(n int) (*switchSummer, error) {
	const pool, k = 16, packet.DefaultElems
	sw, err := core.NewSwitch(core.SwitchConfig{
		Workers: n, PoolSize: pool, SlotElems: k, LossRecovery: true,
	})
	if err != nil {
		return nil, err
	}
	s := &switchSummer{sw: sw}
	for i := 0; i < n; i++ {
		w, err := core.NewWorker(core.WorkerConfig{
			ID: uint16(i), Workers: n, PoolSize: pool, SlotElems: k, LossRecovery: true,
		})
		if err != nil {
			return nil, err
		}
		s.workers = append(s.workers, w)
	}
	return s, nil
}

// Sum aggregates ints through the switch into out.
func (s *switchSummer) Sum(out []int32, ints [][]int32) error {
	queue := make([]*packet.Packet, 0, len(s.workers)*4)
	done := make([]bool, len(s.workers))
	for i, w := range s.workers {
		queue = append(queue, w.Start(ints[i])...)
	}
	remaining := len(s.workers)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		resp := s.sw.Handle(p)
		if resp.Pkt == nil {
			continue
		}
		if !resp.Multicast {
			return fmt.Errorf("bench: unexpected unicast on lossless path")
		}
		for i, w := range s.workers {
			next, fin := w.HandleResult(resp.Pkt.Clone())
			if next != nil {
				queue = append(queue, next)
			}
			if fin && !done[i] {
				done[i] = true
				remaining--
			}
		}
	}
	if remaining != 0 {
		return fmt.Errorf("bench: switch aggregation incomplete (%d workers)", remaining)
	}
	copy(out, s.workers[0].Aggregate())
	return nil
}

// RunFig10 reproduces Figure 10 / Appendix C: final validation
// accuracy of a quantized training run as the scaling factor sweeps
// across ten orders of magnitude. The integer aggregation goes
// through the real switch code path. The paper trains GoogLeNet on
// ImageNet; the substitution (a small classifier on a synthetic
// Gaussian mixture) preserves the studied property — the wide
// plateau of workable scaling factors bounded by underflow on the
// left and int32 overflow on the right.
func RunFig10(o Options) (*Table, error) {
	o.fill()
	const (
		workers = 4
		iters   = 250
	)
	ds, err := ml.GaussianMixture(o.Seed+77, 4000, 16, 4, 0.8)
	if err != nil {
		return nil, err
	}
	train, valid := ds.Split(0.8)

	runOnce := func(agg ml.Aggregator) (float64, *ml.Trainer, error) {
		tr, err := ml.NewTrainer(ml.TrainerConfig{
			Workers: workers, Features: 16, Classes: 4, Seed: o.Seed + 1,
		}, train, agg)
		if err != nil {
			return 0, nil, err
		}
		acc, err := tr.Run(iters, valid)
		return acc, tr, err
	}

	fmt.Fprintln(o.Log, "fig10: exact baseline...")
	exactAcc, exactTr, err := runOnce(ml.ExactAggregator{})
	if err != nil {
		return nil, err
	}
	maxGrad := exactTr.MaxAbsGrad
	safe, err := quant.MaxSafeFactor(workers, maxGrad)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "fig10",
		Title:  "Validation accuracy vs scaling factor (quantized training through the switch path)",
		Header: []string{"scaling factor", "accuracy", "saturated elems"},
		Notes: []string{
			fmt.Sprintf("accuracy without quantization: %.3f", exactAcc),
			fmt.Sprintf("max |gradient| observed: %.3f; Theorem 2 safe factor: %.3g", maxGrad, safe),
			"paper (GoogLeNet): a ~5-order-of-magnitude plateau below the overflow point, divergence outside",
		},
	}

	// Sweep twelve factors: from deep underflow (gradients round to
	// zero) to past overflow (aggregates wrap), anchored at the
	// Theorem 2 safe point like the paper's 7.16e2..7.16e11 sweep
	// around its max gradient of 29.24.
	for e := -10; e <= 1; e++ {
		f := safe
		for i := 0; i < e; i++ {
			f *= 10
		}
		for i := 0; i > e; i-- {
			f /= 10
		}
		fmt.Fprintf(o.Log, "fig10: f=%.3g...\n", f)
		summer, err := newSwitchSummer(workers)
		if err != nil {
			return nil, err
		}
		fx, err := quant.NewFixedPoint(f)
		if err != nil {
			return nil, err
		}
		agg := &ml.FixedPointAggregator{Fixed: fx, IntSum: summer.Sum}
		acc, _, err := runOnce(agg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3g", f),
			fmt.Sprintf("%.3f", acc),
			fmt.Sprintf("%d", agg.Saturations),
		})
	}
	return t, nil
}
