package bench

import (
	"fmt"
	"time"

	"switchml/internal/netsim"
	"switchml/internal/packet"
	"switchml/internal/quant"
	"switchml/internal/rack"
)

// measureConversionCost times this machine's actual float32<->int32
// scale-and-convert code (the x86 SSE/AVX path of §4, here Go's
// scalar loops) and returns the per-packet CPU cost it adds on top of
// the base packet processing. This makes Figure 8 an honest
// measurement: the overhead in the simulation is the overhead of the
// real conversion code.
func measureConversionCost() netsim.Time {
	const elems = 1 << 16
	src := make([]float32, elems)
	for i := range src {
		src[i] = float32(i%1000) * 0.001
	}
	dst := make([]int32, elems)
	back := make([]float32, elems)
	q, _ := quant.NewFixedPoint(1 << 20)
	// Warm up, then time a few rounds.
	q.Quantize(dst, src)
	start := time.Now()
	const rounds = 20
	for r := 0; r < rounds; r++ {
		q.Quantize(dst, src)
		q.Dequantize(back, dst)
	}
	perElem := time.Since(start) / (rounds * elems)
	return netsim.Time(perElem) * packet.DefaultElems
}

// RunFig8 reproduces Figure 8: TAT when aggregating native int32
// tensors, float32 tensors (scaling + type conversion on workers),
// and float16 tensors (half the wire volume), with the Gloo baseline
// for scale.
func RunFig8(o Options) (*Table, error) {
	o.fill()
	elems := o.mb100() * 2 // the figure uses a larger tensor; keep ratios
	convCost := measureConversionCost()

	runTAT := func(extraCost netsim.Time, wireElems int) (netsim.Time, error) {
		r, err := rack.NewRack(rack.Config{
			Workers: 8, LossRecovery: true, Seed: o.Seed, Tracer: o.Tracer,
			PerPacketCost: 110*netsim.Nanosecond + extraCost,
		})
		if err != nil {
			return 0, err
		}
		res, err := r.AllReduceShared(make([]int32, wireElems))
		if err != nil {
			return 0, err
		}
		return res.TAT, nil
	}

	intTAT, err := runTAT(0, elems)
	if err != nil {
		return nil, err
	}
	f32TAT, err := runTAT(convCost, elems)
	if err != nil {
		return nil, err
	}
	// float16: half the wire elements (two halves per 32-bit wire
	// element), conversion still charged per packet.
	f16TAT, err := runTAT(convCost, elems/2)
	if err != nil {
		return nil, err
	}
	glooRate, err := measureRing(o, 8, 10e9, glooEff(10e9))
	if err != nil {
		return nil, err
	}
	glooTAT := netsim.Time(float64(elems) / glooRate * 1e9)

	t := &Table{
		ID:     "fig8",
		Title:  "TAT (ms) by data type (8 workers @ 10G)",
		Header: []string{"type", "switchml", "gloo"},
		Rows: [][]string{
			{"int32 (native)", fmtMs(intTAT), fmtMs(glooTAT)},
			{"float32 (scale+convert)", fmtMs(f32TAT), fmtMs(glooTAT)},
			{"float16 (half volume)", fmtMs(f16TAT), fmtMs(glooTAT / 2)},
		},
		Notes: []string{
			fmt.Sprintf("measured conversion cost on this host: %v per 32-element packet", convCost.Duration()),
			fmt.Sprintf("float32 overhead over int32: %.1f%% (paper: negligible)",
				100*(float64(f32TAT)/float64(intTAT)-1)),
			fmt.Sprintf("float16 speedup over float32: %.2fx (paper: ~2x)",
				float64(f32TAT)/float64(f16TAT)),
		},
	}
	return t, nil
}
