package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"switchml/internal/core"
	"switchml/internal/packet"
	"switchml/internal/transport"
)

// HotpathResult is one micro-benchmark measurement of the per-packet
// path.
type HotpathResult struct {
	// Name identifies the measured path, e.g. "packet/marshal-pooled".
	Name string `json:"name"`
	// Ops is the number of operations timed.
	Ops int `json:"ops"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation (averaged; the
	// strict zero-allocation guarantee is asserted by tests, this
	// field records it in the baseline).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// PacketsPerSec is the operation throughput.
	PacketsPerSec float64 `json:"packets_per_sec"`
}

// HotpathReport is the machine-readable baseline written to
// BENCH_hotpath.json: every measurement plus the derived speedups the
// refactor is accountable for.
type HotpathReport struct {
	Schema     string          `json:"schema"`
	GoVersion  string          `json:"go"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Results    []HotpathResult `json:"results"`
	// Derived ratios: "cycle_speedup_pooled_vs_legacy" is the full
	// wire cycle (build+marshal+unmarshal+aggregate+marshal reply)
	// with pooled buffers and per-slot locks versus the allocating
	// path behind a global mutex; "shard_speedup_4x_vs_1x" is the
	// sharded switch's packet throughput with 4 concurrent handler
	// goroutines versus 1 (bounded by NumCPU — on a single-core host
	// it records lock overhead, not parallelism).
	Derived map[string]float64 `json:"derived"`
	Notes   []string           `json:"notes"`
}

// measureHot times f(ops) and returns wall time and heap allocations
// per operation. The GC runs first so the delta only counts f's own
// allocations.
func measureHot(name string, ops int, f func(ops int)) HotpathResult {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	f(ops)
	dur := time.Since(start)
	runtime.ReadMemStats(&m1)
	allocs := float64(m1.Mallocs-m0.Mallocs) / float64(ops)
	ns := float64(dur.Nanoseconds()) / float64(ops)
	pps := 0.0
	if dur > 0 {
		pps = float64(ops) / dur.Seconds()
	}
	return HotpathResult{Name: name, Ops: ops, NsPerOp: ns, AllocsPerOp: allocs, PacketsPerSec: pps}
}

// hotSwitch builds the benchmark switch: 4 workers, a 64-slot pool,
// k=32 elements (the paper's packet payload).
func hotSwitch() (core.SwitchConfig, error) {
	cfg := core.SwitchConfig{Workers: 4, PoolSize: 64, SlotElems: packet.DefaultElems, LossRecovery: true}
	return cfg, nil
}

// RunHotpath measures the zero-allocation per-packet path: the packet
// codec, the switch ingress, the full aggregation wire cycle (legacy
// allocating vs pooled), and the sharded switch's dispatch throughput
// as handler goroutines scale. The JSON artifact is the repository's
// performance baseline (BENCH_hotpath.json).
func RunHotpath(o Options) (*Table, error) {
	o.fill()
	// Iteration counts shrink with -scale like tensor sizes do, so
	// smoke runs stay fast; -scale 1 is the full baseline.
	iters := func(base int) int {
		n := base / o.Scale
		if n < 1000 {
			n = 1000
		}
		return n
	}
	codecOps := iters(5_000_000)
	switchOps := iters(2_000_000)
	shardOps := iters(2_000_000)

	var results []HotpathResult
	add := func(r HotpathResult) {
		fmt.Fprintf(o.Log, "hotpath: %-28s %10.1f ns/op  %6.3f allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
		results = append(results, r)
	}

	vec := make([]int32, packet.DefaultElems)
	for i := range vec {
		vec[i] = int32(i)
	}
	proto := packet.NewUpdate(1, 0, 0, 3, 96, vec)
	wire := proto.Marshal()

	// Packet codec: pooled (buffer reuse) vs allocating.
	add(measureHot("packet/marshal-pooled", codecOps, func(n int) {
		buf := make([]byte, 0, proto.MarshalledSize())
		for i := 0; i < n; i++ {
			buf = proto.AppendMarshal(buf[:0])
		}
	}))
	add(measureHot("packet/marshal-alloc", codecOps, func(n int) {
		for i := 0; i < n; i++ {
			_ = proto.Marshal()
		}
	}))
	add(measureHot("packet/unmarshal-pooled", codecOps, func(n int) {
		var p packet.Packet
		for i := 0; i < n; i++ {
			if err := packet.UnmarshalInto(&p, wire); err != nil {
				panic(err)
			}
		}
	}))
	add(measureHot("packet/unmarshal-alloc", codecOps, func(n int) {
		for i := 0; i < n; i++ {
			if _, err := packet.Unmarshal(wire); err != nil {
				panic(err)
			}
		}
	}))

	cfg, err := hotSwitch()
	if err != nil {
		return nil, err
	}

	// Switch ingress: borrowed response storage vs allocating.
	runIngress := func(borrow bool) (HotpathResult, error) {
		sw, err := core.NewSwitch(cfg)
		if err != nil {
			return HotpathResult{}, err
		}
		name := "switch/ingress-alloc"
		if borrow {
			name = "switch/ingress-pooled"
		}
		var p, out packet.Packet
		return measureHot(name, switchOps, func(n int) {
			off := uint64(0)
			for i := 0; i < n; i += cfg.Workers {
				idx := uint32(i/cfg.Workers) % uint32(cfg.PoolSize)
				ver := uint8((i / cfg.Workers / cfg.PoolSize) % 2)
				for w := 0; w < cfg.Workers; w++ {
					p.SetUpdate(uint16(w), 0, ver, idx, off, vec)
					if borrow {
						sw.HandleInto(&p, &out)
					} else {
						sw.Handle(&p)
					}
				}
				off += uint64(cfg.SlotElems)
			}
		}), nil
	}
	for _, borrow := range []bool{true, false} {
		r, err := runIngress(borrow)
		if err != nil {
			return nil, err
		}
		add(r)
	}

	// Full wire cycle, the aggregator's datagram loop without the
	// socket: build the update, marshal, unmarshal, aggregate under a
	// lock, marshal the reply. Legacy = allocating codec + global
	// mutex; pooled = buffer reuse + per-slot locks.
	legacySw, err := core.NewSwitch(cfg)
	if err != nil {
		return nil, err
	}
	var legacyMu sync.Mutex
	add(measureHot("cycle/legacy", switchOps, func(n int) {
		off := uint64(0)
		for i := 0; i < n; i += cfg.Workers {
			idx := uint32(i/cfg.Workers) % uint32(cfg.PoolSize)
			ver := uint8((i / cfg.Workers / cfg.PoolSize) % 2)
			for w := 0; w < cfg.Workers; w++ {
				b := packet.NewUpdate(uint16(w), 0, ver, idx, off, vec).Marshal()
				q, err := packet.Unmarshal(b)
				if err != nil {
					panic(err)
				}
				legacyMu.Lock()
				resp := legacySw.Handle(q)
				legacyMu.Unlock()
				if resp.Pkt != nil {
					_ = resp.Pkt.Marshal()
				}
			}
			off += uint64(cfg.SlotElems)
		}
	}))
	pooledSS, err := core.NewShardedSwitch(cfg)
	if err != nil {
		return nil, err
	}
	add(measureHot("cycle/pooled", switchOps, func(n int) {
		var p, q, out packet.Packet
		sbuf := make([]byte, 0, proto.MarshalledSize())
		rbuf := make([]byte, 0, proto.MarshalledSize())
		off := uint64(0)
		for i := 0; i < n; i += cfg.Workers {
			idx := uint32(i/cfg.Workers) % uint32(cfg.PoolSize)
			ver := uint8((i / cfg.Workers / cfg.PoolSize) % 2)
			for w := 0; w < cfg.Workers; w++ {
				p.SetUpdate(uint16(w), 0, ver, idx, off, vec)
				sbuf = p.AppendMarshal(sbuf[:0])
				if err := packet.UnmarshalInto(&q, sbuf); err != nil {
					panic(err)
				}
				resp := pooledSS.HandleInto(&q, &out)
				if resp.Pkt != nil {
					rbuf = resp.Pkt.AppendMarshal(rbuf[:0])
				}
			}
			off += uint64(cfg.SlotElems)
		}
	}))

	// Sharded dispatch: G handler goroutines, shard g owning slots
	// idx ≡ g (mod G) — the Flow Director discipline. Total packet
	// count is constant across G, so throughput is comparable.
	runShards := func(g int) (HotpathResult, error) {
		ss, err := core.NewShardedSwitch(cfg)
		if err != nil {
			return HotpathResult{}, err
		}
		rounds := shardOps / (cfg.PoolSize * cfg.Workers)
		if rounds < 1 {
			rounds = 1
		}
		ops := rounds * cfg.PoolSize * cfg.Workers
		return measureHot(fmt.Sprintf("sharded/dispatch-%dg", g), ops, func(int) {
			var wg sync.WaitGroup
			for s := 0; s < g; s++ {
				s := s
				wg.Add(1)
				go func() {
					defer wg.Done()
					var p, out packet.Packet
					lvec := make([]int32, cfg.SlotElems)
					copy(lvec, vec)
					for r := 0; r < rounds; r++ {
						ver := uint8(r % 2)
						for idx := uint32(s); idx < uint32(cfg.PoolSize); idx += uint32(g) {
							off := uint64(r)*uint64(cfg.PoolSize*cfg.SlotElems) + uint64(idx)*uint64(cfg.SlotElems)
							for w := 0; w < cfg.Workers; w++ {
								p.SetUpdate(uint16(w), 0, ver, idx, off, lvec)
								ss.HandleInto(&p, &out)
							}
						}
					}
				}()
			}
			wg.Wait()
		}), nil
	}
	shardRes := map[int]HotpathResult{}
	for _, g := range []int{1, 2, 4} {
		r, err := runShards(g)
		if err != nil {
			return nil, err
		}
		shardRes[g] = r
		add(r)
	}

	// Batched UDP I/O: a real aggregator and W workers over loopback
	// sockets running the identical seeded job, once with the legacy
	// per-packet loops (batch=1: one recvfrom and one sendto per
	// datagram) and once with the batched run-to-completion loops
	// (recvmmsg/sendmmsg bursts, GSO trains where the kernel offers
	// them). Ops counts worker update datagrams, so Mpkt/s is the
	// aggregation ingest rate.
	udpElems := 65536 / o.Scale
	if udpElems < 2048 {
		udpElems = 2048
	}
	const udpWorkers, udpRounds = 4, 3
	udpChunks := (udpElems + packet.DefaultElems - 1) / packet.DefaultElems
	udpOps := udpRounds * udpWorkers * udpChunks
	runUDP := func(name string, batch int) (HotpathResult, transport.AggDebugState, error) {
		var st transport.AggDebugState
		agg, err := transport.NewAggregator(transport.AggregatorConfig{
			Addr:   "127.0.0.1:0",
			Shards: 4,
			Batch:  batch,
			Switch: core.SwitchConfig{
				Workers: udpWorkers, PoolSize: 64,
				SlotElems: packet.DefaultElems, LossRecovery: true,
			},
		})
		if err != nil {
			return HotpathResult{}, st, err
		}
		defer agg.Close()
		clients := make([]*transport.Client, udpWorkers)
		for i := range clients {
			c, err := transport.NewClient(transport.ClientConfig{
				Aggregator: agg.Addr().String(),
				Batch:      batch,
				Worker: core.WorkerConfig{
					ID: uint16(i), Workers: udpWorkers, PoolSize: 64,
					SlotElems: packet.DefaultElems, LossRecovery: true,
				},
				RTO:     50 * time.Millisecond,
				Timeout: 60 * time.Second,
			})
			if err != nil {
				return HotpathResult{}, st, err
			}
			defer c.Close()
			clients[i] = c
		}
		update := make([]int32, udpElems)
		for i := range update {
			update[i] = int32(i % 97)
		}
		errs := make([]error, udpWorkers)
		res := measureHot(name, udpOps, func(int) {
			for r := 0; r < udpRounds; r++ {
				var wg sync.WaitGroup
				for i, c := range clients {
					i, c := i, c
					wg.Add(1)
					go func() {
						defer wg.Done()
						if _, err := c.AllReduceInt32(update); err != nil && errs[i] == nil {
							errs[i] = err
						}
					}()
				}
				wg.Wait()
			}
		})
		for _, err := range errs {
			if err != nil {
				return HotpathResult{}, st, err
			}
		}
		return res, agg.DebugState(false), nil
	}
	unb, _, err := runUDP("udp/agg-unbatched", 1)
	if err != nil {
		return nil, err
	}
	add(unb)
	bat, batSt, err := runUDP("udp/agg-batched", 0)
	if err != nil {
		return nil, err
	}
	add(bat)

	byName := func(name string) HotpathResult {
		for _, r := range results {
			if r.Name == name {
				return r
			}
		}
		return HotpathResult{}
	}
	derived := map[string]float64{}
	if p := byName("cycle/pooled"); p.NsPerOp > 0 {
		derived["cycle_speedup_pooled_vs_legacy"] = byName("cycle/legacy").NsPerOp / p.NsPerOp
	}
	if s1 := shardRes[1]; s1.NsPerOp > 0 && shardRes[4].NsPerOp > 0 {
		derived["shard_speedup_4x_vs_1x"] = s1.NsPerOp / shardRes[4].NsPerOp
	}
	if bat.NsPerOp > 0 {
		derived["udp_batched_speedup_4shards"] = unb.NsPerOp / bat.NsPerOp
	}
	derived["udp_batch_size"] = float64(batSt.Batch)
	derived["udp_batch_occupancy_p50"] = batSt.BatchOccupancyP50
	derived["udp_batch_occupancy_p99"] = batSt.BatchOccupancyP99

	report := &HotpathReport{
		Schema:     "switchml-hotpath-v1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    results,
		Derived:    derived,
		Notes: []string{
			"pooled paths reuse caller storage (AppendMarshal/UnmarshalInto/HandleInto); alloc paths are the pre-refactor per-packet allocations",
			"cycle/* is the aggregator datagram loop without the socket: build, marshal, unmarshal, aggregate, marshal reply",
			"sharded/dispatch-Ng runs N handler goroutines over disjoint slot stripes (idx mod N); speedup above 1g requires num_cpu > 1",
			fmt.Sprintf("udp/agg-* is the full AllReduce over loopback sockets, %d workers x %d rounds x %d-element tensors, 4 aggregator shards; unbatched = per-packet syscalls, batched = net_mode %q at batch %d (occupancy p50 %.1f, p99 %.1f datagrams/wakeup)",
				udpWorkers, udpRounds, udpElems, batSt.NetMode, batSt.Batch,
				batSt.BatchOccupancyP50, batSt.BatchOccupancyP99),
		},
	}
	artifact, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:       "hotpath",
		Title:    fmt.Sprintf("Zero-allocation hot path (k=%d, %d workers, %d slots)", cfg.SlotElems, cfg.Workers, cfg.PoolSize),
		Header:   []string{"path", "ns/op", "allocs/op", "Mpkt/s"},
		Artifact: artifact,
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmt.Sprintf("%.1f", r.NsPerOp),
			fmt.Sprintf("%.3f", r.AllocsPerOp),
			fmt.Sprintf("%.2f", r.PacketsPerSec/1e6),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("cycle speedup pooled vs legacy: %.2fx; shard 4g vs 1g: %.2fx (num_cpu=%d, gomaxprocs=%d)",
			derived["cycle_speedup_pooled_vs_legacy"], derived["shard_speedup_4x_vs_1x"],
			runtime.NumCPU(), runtime.GOMAXPROCS(0)),
		"alloc rows keep the pre-refactor behaviour for comparison; tests assert the pooled rows are exactly 0 allocs/op",
		fmt.Sprintf("udp batched vs unbatched: %.2fx at 4 shards (mode %s, batch %d, occupancy p50 %.1f p99 %.1f)",
			derived["udp_batched_speedup_4shards"], batSt.NetMode, batSt.Batch,
			derived["udp_batch_occupancy_p50"], derived["udp_batch_occupancy_p99"]),
	)
	return t, nil
}
