package bench

import (
	"fmt"

	"switchml/internal/netsim"
	"switchml/internal/rack"
)

// RunAblationAlgorithm compares Algorithm 1 (single pool, counter
// only) with Algorithm 3 (shadow copies + bitmaps) on a lossless
// fabric: the fault-tolerance machinery must cost nothing in time and
// exactly 2x in pool memory (DESIGN.md ablation 1).
func RunAblationAlgorithm(o Options) (*Table, error) {
	o.fill()
	elems := o.mb100() / 2
	run := func(recovery bool) (netsim.Time, int, error) {
		r, err := rack.NewRack(rack.Config{
			Workers: 8, LossRecovery: recovery, Seed: o.Seed, Tracer: o.Tracer,
		})
		if err != nil {
			return 0, 0, err
		}
		res, err := r.AllReduceShared(make([]int32, elems))
		if err != nil {
			return 0, 0, err
		}
		return res.TAT, r.Switch().MemoryBytes(), nil
	}
	tat1, mem1, err := run(false)
	if err != nil {
		return nil, err
	}
	tat3, mem3, err := run(true)
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:     "ablation-algorithm",
		Title:  "Algorithm 1 vs Algorithm 3 on a lossless fabric",
		Header: []string{"variant", "TAT (ms)", "switch memory (KiB)"},
		Rows: [][]string{
			{"algorithm 1 (no recovery)", fmtMs(tat1), fmt.Sprintf("%d", mem1/1024)},
			{"algorithm 3 (shadow+bitmap)", fmtMs(tat3), fmt.Sprintf("%d", mem3/1024)},
		},
		Notes: []string{
			fmt.Sprintf("time overhead of fault tolerance: %.2f%%; memory overhead: %.2fx",
				100*(float64(tat3)/float64(tat1)-1), float64(mem3)/float64(mem1)),
			"the shadow copy shares 64-bit registers with the active pool on real hardware (Appendix B),",
			"so the ALU cost is zero; only SRAM doubles",
		},
	}, nil
}

// RunAblationRTO sweeps the retransmission timeout at 1% loss:
// too-small RTOs waste bandwidth on spurious retransmissions,
// too-large ones leave slots idle after a drop (§6 "one should adapt
// the retransmission timeout").
func RunAblationRTO(o Options) (*Table, error) {
	o.fill()
	elems := o.mb100() / 2
	t := &Table{
		ID:     "ablation-rto",
		Title:  "TAT and retransmissions vs RTO at 1% loss (8 workers @ 10G)",
		Header: []string{"RTO", "TAT (ms)", "retransmissions"},
	}
	run := func(label string, rto netsim.Time, adaptive bool) error {
		fmt.Fprintf(o.Log, "ablation-rto: %s...\n", label)
		r, err := rack.NewRack(rack.Config{
			Workers: 8, LossRecovery: true, LossRate: 0.01, RTO: rto, Seed: o.Seed,
			AdaptiveRTO: adaptive, Tracer: o.Tracer,
		})
		if err != nil {
			return err
		}
		res, err := r.AllReduceShared(make([]int32, elems))
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			label, fmtMs(res.TAT), fmt.Sprintf("%d", res.Retransmissions),
		})
		return nil
	}
	for _, rto := range []netsim.Time{
		100 * netsim.Microsecond,
		300 * netsim.Microsecond,
		netsim.Millisecond,
		3 * netsim.Millisecond,
		10 * netsim.Millisecond,
	} {
		if err := run(fmt.Sprintf("%v", rto), rto, false); err != nil {
			return nil, err
		}
	}
	if err := run("adaptive (Jacobson/Karn)", 100*netsim.Microsecond, true); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"TAT grows with the fixed RTO (each loss stalls its slot one timeout); the adaptive",
		"estimator (§6's suggested adaptation, implemented) matches the best fixed setting")
	return t, nil
}

// RunAblationPoolTuning validates the §3.6 tuning rule by comparing
// the auto-tuned pool against halved and doubled pools at 10 and
// 100 Gbps.
func RunAblationPoolTuning(o Options) (*Table, error) {
	o.fill()
	elems := o.mb100() / 2
	t := &Table{
		ID:     "ablation-pool",
		Title:  "BDP pool tuning rule vs halved/doubled pools",
		Header: []string{"gbps", "pool", "TAT (ms)"},
	}
	for _, bw := range []float64{10e9, 100e9} {
		auto, err := rack.NewRack(rack.Config{Workers: 8, LinkBitsPerSec: bw, LossRecovery: true, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		tuned := auto.Config().PoolSize
		for _, pool := range []int{tuned / 8, tuned / 2, tuned, tuned * 2} {
			r, err := rack.NewRack(rack.Config{
				Workers: 8, LinkBitsPerSec: bw, PoolSize: pool, LossRecovery: true, Seed: o.Seed,
				Tracer: o.Tracer,
			})
			if err != nil {
				return nil, err
			}
			res, err := r.AllReduceShared(make([]int32, elems))
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%d", pool)
			if pool == tuned {
				label += " (tuned)"
			}
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%.0f", bw/1e9), label, fmtMs(res.TAT)})
		}
	}
	t.Notes = append(t.Notes,
		"a pool below the BDP (tuned/8) cannot keep the pipe full and loses throughput; doubling",
		"the tuned pool buys nothing (§3.6). The tuning rule includes DPDK-batching headroom, so",
		"tuned/2 still covers the simulator's un-batched BDP")
	return t, nil
}
