package bench

import (
	"fmt"

	"switchml/internal/ml"
)

// RunTable1 reproduces Table 1: training throughput (images/s) for
// inception3, resnet50 and vgg16 on 8 workers at 10 Gbps, batch 64,
// under the Ideal, Multi-GPU, Horovod+NCCL and SwitchML columns.
func RunTable1(o Options) (*Table, error) {
	o.fill()
	const workers = 8
	const bw = 10e9

	fmt.Fprintln(o.Log, "table1: measuring SwitchML and NCCL rates...")
	smlRate, err := measureSwitchML(o, workers, bw, 0)
	if err != nil {
		return nil, err
	}
	ncclRate, err := measureRing(o, workers, bw, ncclEff(bw))
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "table1",
		Title:  "Training throughput (images/s), 8 workers @ 10 Gbps, batch 64",
		Header: []string{"model", "ideal", "multi-gpu", "horovod+nccl", "switchml"},
		Notes: []string{
			fmt.Sprintf("measured rates: switchml %.0fM ATE/s, nccl %.0fM ATE/s", smlRate/1e6, ncclRate/1e6),
			"multi-gpu column uses the calibrated single-node model (internal/ml)",
		},
	}
	for _, name := range []string{"inception3", "resnet50", "vgg16"} {
		m, err := ml.ByName(name)
		if err != nil {
			return nil, err
		}
		row := []string{name, fmt.Sprintf("%.0f", ml.IdealImagesPerSec(m, workers))}
		for _, comm := range []ml.CommModel{
			ml.MultiGPUComm(),
			{Name: "nccl", ATEPerSec: ncclRate, PerTensorOverhead: 150e-6},
			{Name: "switchml", ATEPerSec: smlRate, PerTensorOverhead: 50e-6},
		} {
			res, err := ml.SimulateTraining(ml.TrainConfig{Model: m, Workers: workers, Comm: comm})
			if err != nil {
				return nil, err
			}
			frac := res.ImagesPerSec / ml.IdealImagesPerSec(m, workers)
			row = append(row, fmt.Sprintf("%.0f (%.1f%%)", res.ImagesPerSec, 100*frac))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunFig3 reproduces Figure 3: training speedup of SwitchML over the
// NCCL baseline for the nine benchmark models at 10 and 100 Gbps, 8
// workers.
func RunFig3(o Options) (*Table, error) {
	o.fill()
	const workers = 8
	t := &Table{
		ID:     "fig3",
		Title:  "Training speedup over NCCL baseline, 8 workers",
		Header: []string{"model", "speedup@10G", "speedup@100G"},
	}

	type rates struct{ sml, nccl float64 }
	byBW := map[float64]rates{}
	for _, bw := range []float64{10e9, 100e9} {
		fmt.Fprintf(o.Log, "fig3: measuring rates at %.0fG...\n", bw/1e9)
		sml, err := measureSwitchML(o, workers, bw, 0)
		if err != nil {
			return nil, err
		}
		nccl, err := measureRing(o, workers, bw, ncclEff(bw))
		if err != nil {
			return nil, err
		}
		byBW[bw] = rates{sml, nccl}
	}

	for _, m := range ml.Zoo() {
		row := []string{m.Name}
		for _, bw := range []float64{10e9, 100e9} {
			r := byBW[bw]
			smlRes, err := ml.SimulateTraining(ml.TrainConfig{Model: m, Workers: workers,
				Comm: ml.CommModel{ATEPerSec: r.sml, PerTensorOverhead: 50e-6}})
			if err != nil {
				return nil, err
			}
			ncclRes, err := ml.SimulateTraining(ml.TrainConfig{Model: m, Workers: workers,
				Comm: ml.CommModel{ATEPerSec: r.nccl, PerTensorOverhead: 150e-6}})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1fx", smlRes.ImagesPerSec/ncclRes.ImagesPerSec))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper reports 1.2x-3.0x at 10G and 1.2x-2.8x at 100G; network-bound models (vgg, alexnet) gain most")
	return t, nil
}
