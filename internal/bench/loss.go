package bench

import (
	"fmt"
	"math"

	"switchml/internal/netsim"
	"switchml/internal/rack"
	"switchml/internal/telemetry"
)

// tcpLossFactor models TCP goodput degradation under random loss for
// the Gloo/NCCL baselines with the PFTK (Padhye) model: throughput <=
// MSS / (RTT*sqrt(2p/3) + T0*min(1, 3*sqrt(3p/8))*p*(1+32p^2)),
// capped at the stack's lossless rate. The timeout term dominates at
// 1% loss, which is what makes TCP collapse there while SwitchML's
// per-packet recovery keeps streaming. SwitchML needs no such model —
// its recovery is simulated packet by packet.
func tcpLossFactor(bitsPerSec, lossRate float64) float64 {
	if lossRate <= 0 {
		return 1
	}
	const (
		mss = 1460 * 8 // bits
		rtt = 100e-6   // seconds, LAN with queueing
		t0  = 50e-3    // effective retransmission timeout
	)
	p := lossRate
	denom := rtt*math.Sqrt(2*p/3) + t0*math.Min(1, 3*math.Sqrt(3*p/8))*p*(1+32*p*p)
	bw := mss / denom
	f := bw / bitsPerSec
	if f > 1 {
		return 1
	}
	return f
}

// RunFig5 reproduces Figure 5: inflation of TAT under uniform random
// per-link loss, normalized to the lossless run, for SwitchML, Gloo
// and NCCL. The retransmission timeout is 1 ms as in §5.5.
func RunFig5(o Options) (*Table, error) {
	o.fill()
	elems := o.mb100()
	t := &Table{
		ID:    "fig5",
		Title: "TAT under packet loss: inflation (vs own lossless run) and absolute TAT (ms)",
		Header: []string{"loss", "sml-infl", "gloo-infl", "nccl-infl",
			"sml-TAT", "gloo-TAT", "nccl-TAT"},
	}

	baseline, _, err := switchmlLossTAT(o, elems, 0)
	if err != nil {
		return nil, err
	}
	glooRate, err := measureRing(o, 8, 10e9, glooEff(10e9))
	if err != nil {
		return nil, err
	}
	ncclRate, err := measureRing(o, 8, 10e9, ncclEff(10e9))
	if err != nil {
		return nil, err
	}
	glooBase := netsim.Time(float64(elems) / glooRate * 1e9)
	ncclBase := netsim.Time(float64(elems) / ncclRate * 1e9)
	t.Rows = append(t.Rows, []string{"0%", "1.00x", "1.00x", "1.00x",
		fmtMs(baseline), fmtMs(glooBase), fmtMs(ncclBase)})

	for _, loss := range []float64{0.0001, 0.001, 0.01} {
		fmt.Fprintf(o.Log, "fig5: loss %v...\n", loss)
		tat, counters, err := switchmlLossTAT(o, elems, loss)
		if err != nil {
			return nil, err
		}
		// The highest-loss run's protocol counters ride along with the
		// artifact, so result trajectories carry recovery behaviour.
		t.Counters = counters
		smlInfl := float64(tat) / float64(baseline)
		glooInfl := 1 / tcpLossFactor(10e9*glooEff(10e9), loss)
		ncclInfl := 1 / tcpLossFactor(10e9*ncclEff(10e9), loss)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f%%", loss*100),
			fmt.Sprintf("%.2fx", smlInfl),
			fmt.Sprintf("%.2fx", glooInfl),
			fmt.Sprintf("%.2fx", ncclInfl),
			fmtMs(tat),
			fmtMs(netsim.Time(float64(glooBase) * glooInfl)),
			fmtMs(netsim.Time(float64(ncclBase) * ncclInfl)),
		})
	}
	t.Notes = append(t.Notes,
		"paper's claim: SwitchML completes aggregation significantly faster (absolute TAT) than Gloo at",
		"0.1%+ loss; 0.01% barely affects either. TCP baselines degrade via the PFTK timeout model.",
		"our per-RTO slot stalls make SwitchML's own inflation larger than the paper's ~3.2x at 1%",
		"(simulated RTT is lower than the real DPDK pipeline's); see EXPERIMENTS.md")
	return t, nil
}

func switchmlLossTAT(o Options, elems int, loss float64) (netsim.Time, map[string]uint64, error) {
	r, err := rack.NewRack(rack.Config{
		Workers: 8, LossRecovery: true, LossRate: loss, Seed: o.Seed,
		RTO: netsim.Millisecond, Tracer: o.Tracer,
	})
	if err != nil {
		return 0, nil, err
	}
	res, err := r.AllReduceShared(make([]int32, elems))
	if err != nil {
		return 0, nil, err
	}
	return res.TAT, r.Counters(), nil
}

// RunFig6 reproduces Figure 6: the timeline of packets sent per
// 10 ms by one worker during an aggregation at 0%, 0.01% and 1%
// loss, against the ideal packet rate.
func RunFig6(o Options) (*Table, error) {
	o.fill()
	elems := o.mb100()
	const bucket = 10 * netsim.Millisecond

	type series struct {
		tat      netsim.Time
		buckets  []int
		resent   uint64
		counters map[string]uint64
	}
	runs := map[float64]*series{}
	for _, loss := range []float64{0, 0.0001, 0.01} {
		fmt.Fprintf(o.Log, "fig6: loss %v...\n", loss)
		s := &series{}
		// The timeline is built from the telemetry trace: worker 0's
		// uplink PacketSent events are its transmissions (fresh and
		// re-sent alike), Retransmit events mark the recoveries. The
		// experiment and the observability layer are the same code
		// path.
		tracer := telemetry.TracerFunc(func(e telemetry.Event) {
			switch {
			case e.Type == telemetry.EvPacketSent && e.Actor == "w0->sw":
				b := int(netsim.Time(e.TS) / bucket)
				for len(s.buckets) <= b {
					s.buckets = append(s.buckets, 0)
				}
				s.buckets[b]++
			case e.Type == telemetry.EvRetransmit && e.Worker == 0:
				s.resent++
			}
		})
		r, err := rack.NewRack(rack.Config{
			Workers: 8, LossRecovery: true, LossRate: loss, Seed: o.Seed,
			RTO: netsim.Millisecond,
			Tracer: telemetry.Fanout(tracer, o.Tracer),
		})
		if err != nil {
			return nil, err
		}
		res, err := r.AllReduceShared(make([]int32, elems))
		if err != nil {
			return nil, err
		}
		s.tat = res.TAT
		s.counters = r.Counters()
		runs[loss] = s
	}

	t := &Table{
		ID:       "fig6",
		Title:    "Worker 0 packets sent per 10 ms under loss",
		Header:   []string{"time (ms)", "0%", "0.01%", "1%"},
		Counters: runs[0.01].counters,
	}
	maxBuckets := 0
	for _, s := range runs {
		if len(s.buckets) > maxBuckets {
			maxBuckets = len(s.buckets)
		}
	}
	cell := func(s *series, b int) string {
		if b >= len(s.buckets) {
			return "-"
		}
		return fmt.Sprintf("%d", s.buckets[b])
	}
	for b := 0; b < maxBuckets; b++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", (b+1)*10),
			cell(runs[0], b), cell(runs[0.0001], b), cell(runs[0.01], b),
		})
	}
	idealPPS := 10e9 / (180 * 8)
	t.Rows = append(t.Rows, []string{"ideal/10ms",
		fmt.Sprintf("%.0f", idealPPS/100), fmt.Sprintf("%.0f", idealPPS/100), fmt.Sprintf("%.0f", idealPPS/100)})
	t.Notes = append(t.Notes,
		fmt.Sprintf("TAT: 0%%=%s ms, 0.01%%=%s ms, 1%%=%s ms (paper: 132, 138, 424 ms at full size)",
			fmtMs(runs[0].tat), fmtMs(runs[0.0001].tat), fmtMs(runs[0.01].tat)),
		fmt.Sprintf("retransmissions by worker 0: 0.01%%=%d, 1%%=%d",
			runs[0.0001].resent, runs[0.01].resent),
		"paper: the sender holds near the ideal rate and recovers quickly; the 1% run slows past",
		"~70% of the tensor because random losses load slots unevenly and there is no work-stealing")
	return t, nil
}
