// Package paillier implements the additively homomorphic Paillier
// cryptosystem the paper's Appendix D proposes for aggregating
// encrypted model updates: "the appealing property of several
// partially homomorphic cryptosystems (e.g., Paillier) is that the
// relation E(x)·E(y) = E(x+y) holds ... the worker could encrypt all
// the vector elements using such cryptosystem, knowing that the
// aggregated model update can be obtained by decrypting the data
// aggregated at the switches."
//
// Arbitrary modular exponentiation is beyond a switch ASIC (as the
// appendix notes), but the §6 software "parameter aggregator"
// deployment can multiply ciphertexts, which this package supports:
// workers encrypt quantized gradients, the aggregator combines them
// without ever seeing plaintext, and workers decrypt the sum.
package paillier

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
)

var one = big.NewInt(1)

// PublicKey encrypts and combines ciphertexts.
type PublicKey struct {
	// N is the modulus p*q.
	N *big.Int
	// N2 is N^2, the ciphertext modulus.
	N2 *big.Int
	// g is the generator N+1.
	g *big.Int
}

// PrivateKey decrypts.
type PrivateKey struct {
	PublicKey
	// lambda is lcm(p-1, q-1) and mu its inverse factor.
	lambda, mu *big.Int
}

// GenerateKey creates a key pair with a modulus of the given bit
// size, reading randomness from rng (crypto/rand.Reader in
// production; a deterministic reader in tests).
func GenerateKey(rng io.Reader, bits int) (*PrivateKey, error) {
	if bits < 64 {
		return nil, fmt.Errorf("paillier: modulus of %d bits is too small", bits)
	}
	for {
		p, err := rand.Prime(rng, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating p: %w", err)
		}
		q, err := rand.Prime(rng, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		lambda := new(big.Int).Div(new(big.Int).Mul(pm1, qm1), new(big.Int).GCD(nil, nil, pm1, qm1))
		n2 := new(big.Int).Mul(n, n)
		g := new(big.Int).Add(n, one)
		// mu = (L(g^lambda mod n^2))^-1 mod n, with L(x) = (x-1)/n.
		u := new(big.Int).Exp(g, lambda, n2)
		l := lFunc(u, n)
		mu := new(big.Int).ModInverse(l, n)
		if mu == nil {
			continue
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, N2: n2, g: g},
			lambda:    lambda,
			mu:        mu,
		}, nil
	}
}

// lFunc is L(x) = (x-1)/N.
func lFunc(x, n *big.Int) *big.Int {
	return new(big.Int).Div(new(big.Int).Sub(x, one), n)
}

// Encrypt encrypts 0 <= m < N with fresh randomness from rng.
func (pk *PublicKey) Encrypt(rng io.Reader, m *big.Int) (*big.Int, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("paillier: message out of [0, N)")
	}
	// Random r in [1, N) coprime to N.
	var r *big.Int
	for {
		var err error
		r, err = rand.Int(rng, pk.N)
		if err != nil {
			return nil, err
		}
		if r.Sign() > 0 && new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			break
		}
	}
	// c = g^m * r^N mod N^2; with g = N+1, g^m = 1 + m*N mod N^2.
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, one)
	gm.Mod(gm, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := gm.Mul(gm, rn)
	return c.Mod(c, pk.N2), nil
}

// AddCipher returns the ciphertext of the sum of the two plaintexts:
// E(a)·E(b) mod N² = E(a+b). This is the entire aggregator-side
// operation.
func (pk *PublicKey) AddCipher(c1, c2 *big.Int) *big.Int {
	out := new(big.Int).Mul(c1, c2)
	return out.Mod(out, pk.N2)
}

// Decrypt recovers the plaintext.
func (sk *PrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if c.Sign() <= 0 || c.Cmp(sk.N2) >= 0 {
		return nil, fmt.Errorf("paillier: ciphertext out of range")
	}
	u := new(big.Int).Exp(c, sk.lambda, sk.N2)
	m := lFunc(u, sk.N)
	m.Mul(m, sk.mu)
	return m.Mod(m, sk.N), nil
}

// EncryptVector encrypts a quantized gradient vector element-wise.
// Values are biased by 2^31 so negatives stay in [0, N); the bias is
// removed by DecryptSum.
func (pk *PublicKey) EncryptVector(rng io.Reader, vec []int32) ([]*big.Int, error) {
	out := make([]*big.Int, len(vec))
	for i, v := range vec {
		m := big.NewInt(int64(v) + 1<<31)
		c, err := pk.Encrypt(rng, m)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// AddCipherVectors multiplies two ciphertext vectors element-wise,
// the aggregator's inner loop.
func (pk *PublicKey) AddCipherVectors(dst, src []*big.Int) error {
	if len(dst) != len(src) {
		return fmt.Errorf("paillier: vector length mismatch %d != %d", len(dst), len(src))
	}
	for i := range dst {
		dst[i] = pk.AddCipher(dst[i], src[i])
	}
	return nil
}

// DecryptSum decrypts an aggregated ciphertext vector produced from
// workers contributions and removes the per-worker bias.
func (sk *PrivateKey) DecryptSum(cs []*big.Int, workers int) ([]int64, error) {
	out := make([]int64, len(cs))
	bias := new(big.Int).Mul(big.NewInt(int64(workers)), big.NewInt(1<<31))
	for i, c := range cs {
		m, err := sk.Decrypt(c)
		if err != nil {
			return nil, err
		}
		v := new(big.Int).Sub(m, bias)
		if !v.IsInt64() {
			return nil, fmt.Errorf("paillier: decrypted sum overflows int64 at %d", i)
		}
		out[i] = v.Int64()
	}
	return out, nil
}
