package paillier

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
)

func testKey(t *testing.T) *PrivateKey {
	t.Helper()
	sk, err := GenerateKey(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := testKey(t)
	for _, m := range []int64{0, 1, 42, 1 << 40} {
		c, err := sk.Encrypt(rand.Reader, big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != m {
			t.Errorf("decrypt(encrypt(%d)) = %v", m, got)
		}
	}
}

func TestHomomorphicAddition(t *testing.T) {
	// The Appendix D property: E(x)·E(y) = E(x+y).
	sk := testKey(t)
	rng := mrand.New(mrand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		a, b := int64(rng.Intn(1<<30)), int64(rng.Intn(1<<30))
		ca, err := sk.Encrypt(rand.Reader, big.NewInt(a))
		if err != nil {
			t.Fatal(err)
		}
		cb, err := sk.Encrypt(rand.Reader, big.NewInt(b))
		if err != nil {
			t.Fatal(err)
		}
		sum, err := sk.Decrypt(sk.AddCipher(ca, cb))
		if err != nil {
			t.Fatal(err)
		}
		if sum.Int64() != a+b {
			t.Fatalf("E(%d)*E(%d) decrypted to %v, want %d", a, b, sum, a+b)
		}
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	sk := testKey(t)
	m := big.NewInt(7)
	c1, _ := sk.Encrypt(rand.Reader, m)
	c2, _ := sk.Encrypt(rand.Reader, m)
	if c1.Cmp(c2) == 0 {
		t.Error("two encryptions of the same plaintext are identical")
	}
}

func TestVectorAggregation(t *testing.T) {
	// The full Appendix D flow: n workers encrypt quantized gradient
	// vectors, the aggregator multiplies ciphertexts without the key,
	// workers decrypt the exact integer sum.
	sk := testKey(t)
	const n, d = 3, 16
	rng := mrand.New(mrand.NewSource(2))
	want := make([]int64, d)
	var agg []*big.Int
	for w := 0; w < n; w++ {
		vec := make([]int32, d)
		for i := range vec {
			vec[i] = int32(rng.Intn(2001) - 1000)
			want[i] += int64(vec[i])
		}
		cs, err := sk.EncryptVector(rand.Reader, vec)
		if err != nil {
			t.Fatal(err)
		}
		if agg == nil {
			agg = cs
			continue
		}
		if err := sk.AddCipherVectors(agg, cs); err != nil {
			t.Fatal(err)
		}
	}
	got, err := sk.DecryptSum(agg, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestValidation(t *testing.T) {
	sk := testKey(t)
	if _, err := GenerateKey(rand.Reader, 32); err == nil {
		t.Error("tiny modulus accepted")
	}
	if _, err := sk.Encrypt(rand.Reader, big.NewInt(-1)); err == nil {
		t.Error("negative message accepted")
	}
	if _, err := sk.Encrypt(rand.Reader, new(big.Int).Set(sk.N)); err == nil {
		t.Error("message >= N accepted")
	}
	if _, err := sk.Decrypt(big.NewInt(0)); err == nil {
		t.Error("zero ciphertext accepted")
	}
	if err := sk.AddCipherVectors(make([]*big.Int, 1), make([]*big.Int, 2)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestNegativeValuesViaBias(t *testing.T) {
	sk := testKey(t)
	vec := []int32{-2147483648, 2147483647, -1, 0}
	cs, err := sk.EncryptVector(rand.Reader, vec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.DecryptSum(cs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vec {
		if got[i] != int64(v) {
			t.Errorf("element %d: got %d want %d", i, got[i], v)
		}
	}
}
