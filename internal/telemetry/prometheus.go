package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus dumps the snapshot in the Prometheus text exposition
// format (version 0.0.4): families are announced with a "# TYPE" line
// and grouped, histograms expand into cumulative le buckets plus _sum
// and _count, and both families and series within a family are sorted
// for stable output. The plain "name{labels} value" lines are a
// superset of WriteText's, so anything scraping the old format keeps
// working.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	type series struct {
		key  string // full "name{labels}" key, used for ordering
		text string // rendered exposition lines (may be several)
	}
	fams := make(map[string]*struct {
		kind   string
		series []series
	})
	add := func(name, kind string, sr series) {
		f, ok := fams[name]
		if !ok {
			f = &struct {
				kind   string
				series []series
			}{kind: kind}
			fams[name] = f
		}
		f.series = append(f.series, sr)
	}
	for k, v := range s.Counters {
		add(familyName(k), "counter", series{k, fmt.Sprintf("%s %d\n", k, v)})
	}
	for k, v := range s.Gauges {
		add(familyName(k), "gauge", series{k, fmt.Sprintf("%s %d\n", k, v)})
	}
	for k, h := range s.Histograms {
		name, labels := familyName(k), ""
		if i := strings.IndexByte(k, '{'); i >= 0 {
			labels = strings.TrimSuffix(k[i+1:], "}") + ","
		}
		var b strings.Builder
		cum := uint64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%g", h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", name, labels, le, cum)
		}
		suffix := strings.TrimPrefix(k, name)
		fmt.Fprintf(&b, "%s_sum%s %g\n", name, suffix, h.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", name, suffix, h.Count)
		add(name, "histogram", series{k, b.String()})
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind); err != nil {
			return err
		}
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
		for _, sr := range f.series {
			if _, err := io.WriteString(w, sr.text); err != nil {
				return err
			}
		}
	}
	return nil
}

// familyName strips the label suffix from a snapshot key.
func familyName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// WritePrometheus dumps the registry's current state; see
// Snapshot.WritePrometheus.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}
