package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// goldenEvents is a fixed event stream covering spans, instants and
// field omission.
func goldenEvents() []Event {
	start := Ev(EvTensorStart, 1000)
	start.Actor, start.Worker, start.Size = "w0", 0, 4096
	sent := Ev(EvPacketSent, 2000)
	sent.Actor, sent.Size = "w0->sw", 180
	drop := Ev(EvPacketDropped, 2500)
	drop.Actor, drop.Size = "w0->sw", 180
	agg := Ev(EvSlotAggregated, 3000)
	agg.Actor, agg.Worker, agg.Slot, agg.Off = "switch", 0, 3, 128
	done := Ev(EvTensorDone, 9000)
	done.Actor, done.Worker = "w0", 0
	return []Event{start, sent, drop, agg, done}
}

// TestChromeTraceGolden pins the exact Chrome trace-event encoding so
// accidental format drift is caught; Perfetto and chrome://tracing
// both load this shape.
func TestChromeTraceGolden(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	const want = `{"displayTimeUnit":"ms","traceEvents":[
{"name":"thread_name","ph":"M","pid":1,"tid":0,"ts":0,"args":{"name":"w0"}},
{"name":"tensor","ph":"B","pid":1,"tid":0,"ts":1,"args":{"size":4096,"worker":0}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"ts":0,"args":{"name":"w0->sw"}},
{"name":"PacketSent","ph":"i","pid":1,"tid":1,"ts":2,"s":"t","args":{"size":180}},
{"name":"PacketDropped","ph":"i","pid":1,"tid":1,"ts":2.5,"s":"t","args":{"size":180}},
{"name":"thread_name","ph":"M","pid":1,"tid":2,"ts":0,"args":{"name":"switch"}},
{"name":"SlotAggregated","ph":"i","pid":1,"tid":2,"ts":3,"s":"t","args":{"off":128,"slot":3,"worker":0}},
{"name":"tensor","ph":"E","pid":1,"tid":0,"ts":9,"args":{"worker":0}}
]}
`
	if got := sb.String(); got != want {
		t.Fatalf("chrome trace drifted:\n got: %s\nwant: %s", got, want)
	}
	// And it must be well-formed JSON.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 8 {
		t.Fatalf("parsed %d trace events, want 8", len(parsed.TraceEvents))
	}
}

func TestJSONLExport(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSONL(&sb, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["type"] != "TensorStart" || first["actor"] != "w0" {
		t.Fatalf("first line = %v", first)
	}
	// PacketSent has no worker/slot/off: they must be omitted, not -1.
	if strings.Contains(lines[1], "-1") {
		t.Fatalf("n/a fields must be omitted: %s", lines[1])
	}
}

func TestDebugMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up").Add(3)
	srv := httptest.NewServer(NewDebugMux(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up 3") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars = %d (want expvar JSON)", code)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

func TestServeDebug(t *testing.T) {
	addr, stop, err := ServeDebug("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
