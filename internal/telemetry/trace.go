package telemetry

import (
	"sync"
	"time"
)

// EventType enumerates the protocol events the repo's layers emit.
type EventType uint8

const (
	// EvPacketSent fires when a link begins transmitting a message
	// (netsim) or a datagram is written to a socket (transport).
	EvPacketSent EventType = iota + 1
	// EvPacketRecv fires when a message reaches its destination.
	EvPacketRecv
	// EvPacketDropped fires when a link's loss process eats a message
	// or a corrupted datagram fails the checksum.
	EvPacketDropped
	// EvRetransmit fires when a worker re-sends an in-flight chunk
	// after its RTO expired.
	EvRetransmit
	// EvSlotAggregated fires when the switch folds an accepted update
	// into a slot accumulator.
	EvSlotAggregated
	// EvSlotComplete fires when a slot reaches n contributions and
	// multicasts its result.
	EvSlotComplete
	// EvShadowRead fires when the switch answers a retransmitted
	// update from a completed slot's retained value (Algorithm 3
	// lines 19-21).
	EvShadowRead
	// EvTimeoutFired fires when a retransmission timer expires with
	// the chunk still in flight.
	EvTimeoutFired
	// EvTensorStart fires when a worker begins aggregating a tensor.
	EvTensorStart
	// EvTensorDone fires when a worker holds the full aggregate.
	EvTensorDone
	// EvWorkerCrash fires when a fault scenario kills a worker host.
	EvWorkerCrash
	// EvWorkerRestart fires when a crashed worker host is brought back.
	EvWorkerRestart
	// EvSwitchRestart fires when the switch restarts and its register
	// state (pools, bitmaps, counters) is wiped.
	EvSwitchRestart
	// EvLinkDown fires when a fault scenario blacks out a link.
	EvLinkDown
	// EvLinkUp fires when a blacked-out link comes back.
	EvLinkUp
	// EvFailureDetected fires when the control plane declares a worker
	// failed after the liveness silence threshold.
	EvFailureDetected
	// EvReconfigure fires when the controller installs a new worker
	// membership and job generation, draining the pool.
	EvReconfigure
	// EvResume fires when a worker restarts its interrupted tensor
	// from the recovery chunk boundary.
	EvResume
	// EvHeartbeat fires when a worker's explicit liveness heartbeat is
	// observed.
	EvHeartbeat
	// EvSwitchSuspect fires when the switch health monitor's silence
	// threshold expires with aggregation traffic outstanding — the
	// switch is suspected down but the job has not yet degraded.
	EvSwitchSuspect
	// EvDegrade fires when a job abandons the switch path and hands an
	// in-flight tensor over to host all-reduce at the chunk frontier
	// (Off carries the handoff frontier as a stream offset).
	EvDegrade
	// EvProbe fires when a degraded job probes the suspected switch;
	// Slot carries the probe sequence number.
	EvProbe
	// EvProbeAck fires when a probe is answered, crediting the
	// probation window.
	EvProbeAck
	// EvFailback fires when a degraded job returns to the switch path
	// after the probation window, under a bumped job generation.
	EvFailback
	// EvWorkerJoin fires when a graceful join commits: the new worker
	// is admitted into the membership at a step boundary.
	EvWorkerJoin
	// EvWorkerLeave fires when a graceful leave commits: the departing
	// worker has been retired from the membership.
	EvWorkerLeave
	// EvDrainStart fires when a worker's leave announcement is
	// accepted and it begins draining its in-flight window.
	EvDrainStart
	// EvQuorumComplete fires when a slot completes at the quorum
	// threshold, short of the full membership (straggler mitigation).
	EvQuorumComplete
	// EvRehome fires when a worker re-homes its job to a warm-standby
	// aggregator (or back up the ladder): Off carries the chunk
	// frontier proposed for adoption, Slot the ladder rank moved to.
	EvRehome
	// EvAdopt fires when an aggregator commits a warm-standby adoption:
	// the member roll call is complete, the pool is wiped under the
	// bumped generation and the job resumes at the minimum adopted
	// frontier (Off).
	EvAdopt
)

var eventNames = [...]string{
	EvPacketSent:      "PacketSent",
	EvPacketRecv:      "PacketRecv",
	EvPacketDropped:   "PacketDropped",
	EvRetransmit:      "Retransmit",
	EvSlotAggregated:  "SlotAggregated",
	EvSlotComplete:    "SlotComplete",
	EvShadowRead:      "ShadowRead",
	EvTimeoutFired:    "TimeoutFired",
	EvTensorStart:     "TensorStart",
	EvTensorDone:      "TensorDone",
	EvWorkerCrash:     "WorkerCrash",
	EvWorkerRestart:   "WorkerRestart",
	EvSwitchRestart:   "SwitchRestart",
	EvLinkDown:        "LinkDown",
	EvLinkUp:          "LinkUp",
	EvFailureDetected: "FailureDetected",
	EvReconfigure:     "Reconfigure",
	EvResume:          "Resume",
	EvHeartbeat:       "Heartbeat",
	EvSwitchSuspect:   "SwitchSuspect",
	EvDegrade:         "Degrade",
	EvProbe:           "Probe",
	EvProbeAck:        "ProbeAck",
	EvFailback:        "Failback",
	EvWorkerJoin:      "WorkerJoin",
	EvWorkerLeave:     "WorkerLeave",
	EvDrainStart:      "DrainStart",
	EvQuorumComplete:  "QuorumComplete",
	EvRehome:          "Rehome",
	EvAdopt:           "Adopt",
}

func (t EventType) String() string {
	if int(t) < len(eventNames) && eventNames[t] != "" {
		return eventNames[t]
	}
	return "Unknown"
}

// Event is one traced protocol event. TS is nanoseconds: virtual
// time in the simulator, wall-clock (UnixNano) over real UDP —
// emitters stamp it via whichever clock they own. Fields that do not
// apply hold -1 (Worker, Slot, Off) or 0 (Size).
type Event struct {
	TS   int64
	Type EventType
	// Actor names the emitting component: a link ("w0->sw"), a worker
	// host ("w0"), or "switch".
	Actor  string
	Worker int32
	Slot   int32
	Off    int64
	// Size is the wire size in bytes for packet events.
	Size int32
}

// Ev returns an event of the given type and timestamp with the
// optional fields marked not-applicable; emitters fill what they
// know.
func Ev(t EventType, ts int64) Event {
	return Event{TS: ts, Type: t, Worker: -1, Slot: -1, Off: -1}
}

// Tracer observes protocol events. Implementations must be cheap and
// non-blocking: they run inside simulator event callbacks and socket
// serve loops. A nil Tracer everywhere means tracing is off; emitters
// check before building events.
type Tracer interface {
	Emit(Event)
}

// TracerFunc adapts a function to the Tracer interface, the idiom for
// streaming consumers (Figure 6 buckets packet sends this way without
// retaining events).
type TracerFunc func(Event)

// Emit implements Tracer.
func (f TracerFunc) Emit(e Event) { f(e) }

// Fanout returns a tracer that forwards each event to every tracer in
// order, skipping nils.
func Fanout(tracers ...Tracer) Tracer {
	live := make([]Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	return TracerFunc(func(e Event) {
		for _, t := range live {
			t.Emit(e)
		}
	})
}

// WallClock stamps events with wall-clock nanoseconds; the real UDP
// transport uses it where the simulator uses virtual time.
func WallClock() int64 { return time.Now().UnixNano() }

// Ring records the most recent events into a bounded buffer. It is
// safe for concurrent use; when full, the oldest events are
// overwritten and counted.
type Ring struct {
	mu          sync.Mutex
	buf         []Event
	next        int
	full        bool
	overwritten uint64
}

// NewRing returns a recorder keeping the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Tracer.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	if r.full {
		r.overwritten++
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Events returns the recorded events in emission order.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Overwritten returns how many events were lost to the bound.
func (r *Ring) Overwritten() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.overwritten
}

// CountByType tallies events per type, the shape most consistency
// checks want.
func CountByType(events []Event) map[EventType]uint64 {
	m := make(map[EventType]uint64)
	for _, e := range events {
		m[e.Type]++
	}
	return m
}
