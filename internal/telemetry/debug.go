package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugOptions selects what a debug mux exposes; every field is
// optional and nil fields simply leave their endpoint unmounted.
type DebugOptions struct {
	// Registry backs /metrics (Prometheus text format).
	Registry *Registry
	// Sampler backs /debug/series (JSON ring series).
	Sampler *Sampler
	// Recorder backs /debug/flightrecorder: GET returns the current
	// incident JSON without touching disk; GET with ?dump=1 also
	// writes an incident file and reports its path.
	Recorder *FlightRecorder
	// State backs /debug/state with a point-in-time deep introspection
	// JSON document (per-slot pool occupancy, per-shard load,
	// per-worker health).
	State func() any
	// Extra mounts additional handlers by pattern.
	Extra map[string]http.HandlerFunc
}

// NewDebugMux returns the daemons' basic introspection surface —
// /metrics, /debug/vars and /debug/pprof/ — over one registry. It is
// NewDebugMuxOpts with only Registry set.
func NewDebugMux(reg *Registry) *http.ServeMux {
	return NewDebugMuxOpts(DebugOptions{Registry: reg})
}

// NewDebugMuxOpts returns the full introspection surface:
//
//   - /metrics               — Prometheus text format (WritePrometheus)
//   - /debug/vars            — the process's expvar JSON
//   - /debug/pprof/          — the standard pprof handlers
//   - /debug/series          — sampled time series (Sampler.Dump JSON)
//   - /debug/state           — deep state snapshot (State() JSON)
//   - /debug/flightrecorder  — current incident; ?dump=1 writes a file
func NewDebugMuxOpts(opts DebugOptions) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opts.Registry != nil {
			opts.Registry.WritePrometheus(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if opts.Sampler != nil {
		mux.HandleFunc("/debug/series", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, opts.Sampler.Dump())
		})
	}
	if opts.State != nil {
		mux.HandleFunc("/debug/state", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, opts.State())
		})
	}
	if opts.Recorder != nil {
		mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Query().Get("dump") != "" {
				path, err := opts.Recorder.Dump("on-demand")
				if err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				writeJSON(w, map[string]string{"path": path})
				return
			}
			writeJSON(w, opts.Recorder.Incident("on-demand"))
		})
	}
	for pattern, h := range opts.Extra {
		mux.HandleFunc(pattern, h)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// ServeDebug binds addr (e.g. "127.0.0.1:6060" or ":0") and serves
// NewDebugMux(reg) in a background goroutine. It returns the bound
// address and a function that shuts the listener down.
func ServeDebug(addr string, reg *Registry) (string, func() error, error) {
	return ServeDebugOpts(addr, DebugOptions{Registry: reg})
}

// ServeDebugOpts is ServeDebug over the full option set.
func ServeDebugOpts(addr string, opts DebugOptions) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: debug listen %q: %w", addr, err)
	}
	srv := &http.Server{Handler: NewDebugMuxOpts(opts)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
