package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux returns the daemons' introspection surface:
//
//   - /metrics       — the registry's text dump (Snapshot.WriteText)
//   - /debug/vars    — the process's expvar JSON
//   - /debug/pprof/  — the standard pprof handlers
//
// reg may be nil, in which case /metrics serves an empty dump.
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if reg != nil {
			reg.WriteText(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug binds addr (e.g. "127.0.0.1:6060" or ":0") and serves
// NewDebugMux(reg) in a background goroutine. It returns the bound
// address and a function that shuts the listener down.
func ServeDebug(addr string, reg *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: debug listen %q: %w", addr, err)
	}
	srv := &http.Server{Handler: NewDebugMux(reg)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
