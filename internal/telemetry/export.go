package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// EventJSON is the JSON wire form of an Event, shared by the JSONL
// export and flight-recorder incident files; not-applicable fields
// are omitted rather than serialized as -1.
type EventJSON struct {
	TS     int64  `json:"ts"`
	Type   string `json:"type"`
	Actor  string `json:"actor,omitempty"`
	Worker *int32 `json:"worker,omitempty"`
	Slot   *int32 `json:"slot,omitempty"`
	Off    *int64 `json:"off,omitempty"`
	Size   int32  `json:"size,omitempty"`
}

// JSON converts an event to its wire form.
func (e Event) JSON() EventJSON {
	je := EventJSON{TS: e.TS, Type: e.Type.String(), Actor: e.Actor, Size: e.Size}
	if e.Worker >= 0 {
		w := e.Worker
		je.Worker = &w
	}
	if e.Slot >= 0 {
		s := e.Slot
		je.Slot = &s
	}
	if e.Off >= 0 {
		o := e.Off
		je.Off = &o
	}
	return je
}

// WriteJSONL writes one JSON object per event per line, the
// grep/jq-friendly export.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e.JSON()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// loadable in Perfetto and chrome://tracing.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"` // microseconds
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes events in Chrome trace-event JSON. Each
// actor becomes a named track (tid); TensorStart/TensorDone pairs
// render as duration spans and every other event as a thread-scoped
// instant, so loss recovery and pipelining are visible as a timeline.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	tids := make(map[string]int)
	first := true
	var line bytes.Buffer
	enc := json.NewEncoder(&line)
	enc.SetEscapeHTML(false) // link names contain "->"
	emit := func(ce chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		line.Reset()
		if err := enc.Encode(ce); err != nil {
			return err
		}
		_, err := bw.Write(bytes.TrimRight(line.Bytes(), "\n"))
		return err
	}
	tid := func(actor string) (int, error) {
		if actor == "" {
			actor = "?"
		}
		id, ok := tids[actor]
		if !ok {
			id = len(tids)
			tids[actor] = id
			err := emit(chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: id,
				Args: map[string]any{"name": actor},
			})
			if err != nil {
				return 0, err
			}
		}
		return id, nil
	}
	for _, e := range events {
		id, err := tid(e.Actor)
		if err != nil {
			return err
		}
		ce := chromeEvent{Name: e.Type.String(), PID: 1, TID: id, TS: float64(e.TS) / 1e3}
		args := map[string]any{}
		if e.Worker >= 0 {
			args["worker"] = e.Worker
		}
		if e.Slot >= 0 {
			args["slot"] = e.Slot
		}
		if e.Off >= 0 {
			args["off"] = e.Off
		}
		if e.Size > 0 {
			args["size"] = e.Size
		}
		if len(args) > 0 {
			ce.Args = args
		}
		switch e.Type {
		case EvTensorStart:
			ce.Ph, ce.Name = "B", "tensor"
		case EvTensorDone:
			ce.Ph, ce.Name = "E", "tensor"
		default:
			ce.Ph, ce.S = "i", "t"
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTraceFileNote formats the one-line summary CLIs print
// after writing a trace.
func WriteChromeTraceFileNote(path string, n int, overwritten uint64) string {
	note := fmt.Sprintf("trace: %d events written to %s (open in https://ui.perfetto.dev)", n, path)
	if overwritten > 0 {
		note += fmt.Sprintf("; %d older events overwritten by the ring bound", overwritten)
	}
	return note
}
