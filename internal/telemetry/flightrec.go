package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// IncidentSchema identifies the incident file format; bump on
// incompatible changes.
const IncidentSchema = "switchml.incident/v1"

// DefaultTriggers are the fault transitions that auto-dump an
// incident: the §5.6 control-plane events, the health state machine's
// degrade/failback edges, and the warm-standby ladder's re-homing and
// adoption handshakes.
var DefaultTriggers = []EventType{
	EvFailureDetected,
	EvReconfigure,
	EvWorkerCrash,
	EvSwitchRestart,
	EvDegrade,
	EvFailback,
	EvRehome,
	EvAdopt,
}

// FlightConfig tunes a FlightRecorder; the zero value records 4096
// events with the default triggers and no file output.
type FlightConfig struct {
	// Capacity is the event ring size (default 4096).
	Capacity int
	// Dir, when non-empty, receives one uniquely named incident file
	// per dump.
	Dir string
	// FilePrefix prefixes Dir-mode filenames (default "incident-").
	// Processes sharing a directory must use distinct prefixes or
	// their sequence-numbered files overwrite each other.
	FilePrefix string
	// Path, when non-empty, is the exact incident file, overwritten on
	// every dump — the mode scripted experiments use. Overrides Dir.
	Path string
	// Triggers are the event types that auto-dump (default
	// DefaultTriggers). An explicit empty-but-non-nil slice disables
	// auto-dumping; on-demand dumps still work.
	Triggers []EventType
	// Debounce suppresses auto-dumps closer than this to the previous
	// one, measured on the event clock (zero keeps every trigger).
	Debounce time.Duration
	// Registry, when non-nil, embeds pre/post metric snapshots and
	// their delta in each incident.
	Registry *Registry
	// State, when non-nil, is invoked at dump time and embedded as the
	// incident's deep state (per-slot pool occupancy, shard loads). It
	// runs synchronously inside Emit for trigger dumps, so it must not
	// take locks held around trace emission.
	State func() any
	// OnDump, when non-nil, observes every file dump attempt.
	OnDump func(path string, err error)
}

// Incident is a self-contained dump of the moments before a fault
// transition: the retained trace events, the metric state before and
// at the trigger with their delta, and a deep-state snapshot.
type Incident struct {
	Schema string `json:"schema"`
	// Reason names the trigger event type or the on-demand cause.
	Reason string `json:"reason"`
	// TS is the trigger's timestamp on the emitting clock.
	TS  int64 `json:"ts"`
	Seq int   `json:"seq"`
	// Trigger is the event that tripped the dump (absent on demand).
	Trigger *EventJSON  `json:"trigger,omitempty"`
	Events  []EventJSON `json:"events"`
	// Overwritten counts ring-evicted events older than Events[0].
	Overwritten uint64 `json:"overwritten,omitempty"`
	// Pre is the metric baseline (at arming or the previous dump),
	// Metrics the state at this dump, Delta their difference.
	Pre     *Snapshot `json:"pre,omitempty"`
	Metrics *Snapshot `json:"metrics,omitempty"`
	Delta   *Snapshot `json:"delta,omitempty"`
	// State is the deep introspection snapshot (per-slot, per-shard).
	State any `json:"state,omitempty"`
}

// FlightRecorder is a Tracer that continuously records the last N
// events and turns fault transitions into incident files. Wire it
// into a Fanout alongside the normal trace consumers; it is safe for
// concurrent use.
type FlightRecorder struct {
	cfg  FlightConfig
	ring *Ring
	trig [256]bool

	mu       sync.Mutex
	pre      Snapshot
	preSet   bool
	seq      int
	lastDump int64
	dumped   uint64
	lastErr  error
}

// NewFlightRecorder arms a recorder. The metric baseline is taken
// immediately when cfg.Registry is set.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	fr := &FlightRecorder{cfg: cfg, ring: NewRing(cfg.Capacity)}
	triggers := cfg.Triggers
	if triggers == nil {
		triggers = DefaultTriggers
	}
	for _, t := range triggers {
		fr.trig[t] = true
	}
	if cfg.Registry != nil {
		fr.pre = cfg.Registry.Snapshot()
		fr.preSet = true
	}
	return fr
}

// SetState installs the deep-state hook after construction, for
// components that exist only once the recorder is already wired into
// their tracer.
func (fr *FlightRecorder) SetState(fn func() any) {
	fr.mu.Lock()
	fr.cfg.State = fn
	fr.mu.Unlock()
}

// Emit implements Tracer: record the event, and synchronously dump an
// incident when it is a trigger. Dumping inline (not in a goroutine)
// keeps single-threaded emitters — the simulator event loop — safe to
// introspect from the State hook.
func (fr *FlightRecorder) Emit(e Event) {
	fr.ring.Emit(e)
	if !fr.trig[e.Type] {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if fr.cfg.Debounce > 0 && fr.dumped > 0 && e.TS-fr.lastDump < int64(fr.cfg.Debounce) {
		return
	}
	fr.dump(fr.incidentLocked(e.Type.String(), &e, true))
}

// Incident assembles an on-demand incident without writing a file —
// the /debug/flightrecorder GET path. It does not advance the metric
// baseline, so reading it leaves auto-dump deltas undisturbed.
func (fr *FlightRecorder) Incident(reason string) Incident {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.incidentLocked(reason, nil, false)
}

// Dump writes an on-demand incident file and returns its path.
func (fr *FlightRecorder) Dump(reason string) (string, error) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	inc := fr.incidentLocked(reason, nil, true)
	fr.dump(inc)
	if fr.lastErr != nil {
		return "", fr.lastErr
	}
	return fr.path(inc), nil
}

// Dumped reports how many incidents were written and the last write
// error, if any.
func (fr *FlightRecorder) Dumped() (uint64, error) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.dumped, fr.lastErr
}

// Ring exposes the underlying event ring (for trace exports that want
// the same bounded history).
func (fr *FlightRecorder) Ring() *Ring { return fr.ring }

// incidentLocked builds an incident snapshot; fr.mu must be held.
// advance rolls the metric baseline forward so the next incident's
// delta starts here.
func (fr *FlightRecorder) incidentLocked(reason string, trigger *Event, advance bool) Incident {
	events := fr.ring.Events()
	inc := Incident{
		Schema:      IncidentSchema,
		Reason:      reason,
		Seq:         fr.seq,
		Events:      make([]EventJSON, len(events)),
		Overwritten: fr.ring.Overwritten(),
	}
	for i, e := range events {
		inc.Events[i] = e.JSON()
	}
	if trigger != nil {
		tj := trigger.JSON()
		inc.Trigger = &tj
		inc.TS = trigger.TS
	} else if n := len(events); n > 0 {
		inc.TS = events[n-1].TS
	}
	if fr.cfg.Registry != nil {
		cur := fr.cfg.Registry.Snapshot()
		if fr.preSet {
			pre := fr.pre
			delta := cur.Delta(pre)
			inc.Pre, inc.Delta = &pre, &delta
		}
		inc.Metrics = &cur
		if advance {
			// The next incident's "before" is this incident's "at".
			fr.pre, fr.preSet = cur, true
		}
	}
	if fr.cfg.State != nil {
		inc.State = fr.cfg.State()
	}
	return inc
}

// path names the incident file for a built incident.
func (fr *FlightRecorder) path(inc Incident) string {
	if fr.cfg.Path != "" {
		return fr.cfg.Path
	}
	prefix := fr.cfg.FilePrefix
	if prefix == "" {
		prefix = "incident-"
	}
	return filepath.Join(fr.cfg.Dir, fmt.Sprintf("%s%03d-%s.json", prefix, inc.Seq, inc.Reason))
}

// dump writes one incident file if file output is configured; fr.mu
// must be held.
func (fr *FlightRecorder) dump(inc Incident) {
	fr.seq++
	fr.lastDump = inc.TS
	fr.dumped++
	if fr.cfg.Path == "" && fr.cfg.Dir == "" {
		return
	}
	path := fr.path(inc)
	err := writeIncident(path, inc)
	fr.lastErr = err
	if fr.cfg.OnDump != nil {
		fr.cfg.OnDump(path, err)
	}
}

func writeIncident(path string, inc Incident) error {
	data, err := json.MarshalIndent(inc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
