package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// SamplePoint is one element of a sampled time series.
type SamplePoint struct {
	// TS is the sample's timestamp in nanoseconds (virtual time in the
	// simulator, UnixNano over real UDP).
	TS int64 `json:"ts"`
	// V is the sampled value.
	V float64 `json:"v"`
}

// SeriesData is the exported form of one ring series.
type SeriesData struct {
	// Kind classifies the series: "rate" (counter delta per second),
	// "gauge" (raw value), "quantile" (histogram interval quantile) or
	// "probe" (registered callback).
	Kind string `json:"kind"`
	// Points are the retained samples, oldest first.
	Points []SamplePoint `json:"points"`
}

// ringSeries is one fixed-capacity sample ring. Pushes never allocate;
// when full, the oldest points are overwritten.
type ringSeries struct {
	kind string
	ts   []int64
	vs   []float64
	next int
	full bool
}

func newRingSeries(kind string, capacity int) *ringSeries {
	return &ringSeries{kind: kind, ts: make([]int64, capacity), vs: make([]float64, capacity)}
}

// push appends one point, overwriting the oldest when full. It is
// allocation-free: the rings are sized once at series creation.
func (rs *ringSeries) push(ts int64, v float64) {
	rs.ts[rs.next] = ts
	rs.vs[rs.next] = v
	rs.next++
	if rs.next == len(rs.ts) {
		rs.next = 0
		rs.full = true
	}
}

// points copies the retained samples in push order.
func (rs *ringSeries) points() []SamplePoint {
	n := rs.next
	if rs.full {
		n = len(rs.ts)
	}
	out := make([]SamplePoint, 0, n)
	if rs.full {
		for i := rs.next; i < len(rs.ts); i++ {
			out = append(out, SamplePoint{rs.ts[i], rs.vs[i]})
		}
	}
	for i := 0; i < rs.next; i++ {
		out = append(out, SamplePoint{rs.ts[i], rs.vs[i]})
	}
	return out
}

// SamplerConfig tunes a Sampler; the zero value accepts defaults.
type SamplerConfig struct {
	// Capacity is the per-series ring size (default 256). At a 1 s
	// interval that retains a little over four minutes of history.
	Capacity int
	// Quantiles are the per-interval histogram quantiles to track
	// (default 0.5 and 0.99).
	Quantiles []float64
}

// Sampler periodically snapshots a Registry into fixed-capacity ring
// series: counter rates (per second), gauge values, and per-interval
// histogram quantiles, plus registered probe callbacks for state that
// lives outside the registry (pool occupancy, shard imbalance).
//
// Sample may be driven by any clock — the rack model ticks it on
// virtual time, the daemons on a wall-clock ticker via Start — and is
// safe to call concurrently with hot-path metric mutation: it reads
// the registry through the same atomic snapshots /metrics uses, so a
// torn multi-word read is impossible by construction.
type Sampler struct {
	reg       *Registry
	capacity  int
	quantiles []float64
	qNames    []string

	mu     sync.Mutex
	prev   Snapshot
	prevTS int64
	primed bool
	series map[string]*ringSeries
	probes []probe
}

type probe struct {
	name string
	fn   func() float64
}

// NewSampler returns a sampler over reg.
func NewSampler(reg *Registry, cfg SamplerConfig) *Sampler {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if len(cfg.Quantiles) == 0 {
		cfg.Quantiles = []float64{0.5, 0.99}
	}
	s := &Sampler{
		reg:       reg,
		capacity:  cfg.Capacity,
		quantiles: append([]float64(nil), cfg.Quantiles...),
		series:    make(map[string]*ringSeries),
	}
	for _, q := range s.quantiles {
		s.qNames = append(s.qNames, fmt.Sprintf(":p%g", q*100))
	}
	return s
}

// AddProbe registers a callback sampled alongside the registry under
// the given series name. Callbacks run with the sampler lock held and
// must be cheap and non-blocking.
func (s *Sampler) AddProbe(name string, fn func() float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probes = append(s.probes, probe{name, fn})
}

// get finds or creates the named ring.
func (s *Sampler) get(name, kind string) *ringSeries {
	rs, ok := s.series[name]
	if !ok {
		rs = newRingSeries(kind, s.capacity)
		s.series[name] = rs
	}
	return rs
}

// Sample takes one sample at the given timestamp. The first call
// primes the baseline snapshot and records gauges and probes only;
// rates and quantiles need an interval and start with the second call.
func (s *Sampler) Sample(ts int64) {
	snap := s.reg.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range snap.Gauges {
		s.get(k, "gauge").push(ts, float64(v))
	}
	for _, p := range s.probes {
		s.get(p.name, "probe").push(ts, p.fn())
	}
	if s.primed && ts > s.prevTS {
		dt := float64(ts-s.prevTS) / 1e9
		d := snap.Delta(s.prev)
		for k, v := range d.Counters {
			s.get(k+":rate", "rate").push(ts, float64(v)/dt)
		}
		for k, h := range d.Histograms {
			for i, q := range s.quantiles {
				s.get(k+s.qNames[i], "quantile").push(ts, h.Quantile(q))
			}
		}
	}
	s.prev, s.prevTS, s.primed = snap, ts, true
}

// Start samples on a wall-clock ticker until the returned stop
// function is called. interval <= 0 selects one second.
func (s *Sampler) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		s.Sample(WallClock())
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.Sample(WallClock())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// Dump copies every series, oldest point first, keyed by series name
// ("<counter>:rate", "<gauge>", "<histogram>:p99", or a probe name).
func (s *Sampler) Dump() map[string]SeriesData {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]SeriesData, len(s.series))
	for name, rs := range s.series {
		out[name] = SeriesData{Kind: rs.kind, Points: rs.points()}
	}
	return out
}
