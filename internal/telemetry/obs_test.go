package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestQuantileEdges is the table-driven pin on the estimator's
// boundary behavior: empty histograms, q outside [0,1], NaN, and
// all-overflow distributions must all return defined values.
func TestQuantileEdges(t *testing.T) {
	nan := func() float64 { var z float64; return z / z }
	filled := func(vals ...float64) HistogramSnapshot {
		h := NewHistogram([]float64{10, 20, 40})
		for _, v := range vals {
			h.Observe(v)
		}
		return h.Snapshot()
	}
	cases := []struct {
		name string
		s    HistogramSnapshot
		q    float64
		want float64
	}{
		{"empty", filled(), 0.5, 0},
		{"zero-value histogram", HistogramSnapshot{Count: 3, Sum: 30}, 0.5, 0},
		{"q below zero clamps to first occupied lower bound", filled(5, 5, 5), -1, 0},
		{"q zero is first occupied lower bound", filled(15, 15), 0, 10},
		{"q above one clamps to max", filled(5, 15, 35), 2, 40},
		{"q NaN reads as zero", filled(15, 15), nan(), 10},
		{"all overflow returns highest finite bound", filled(100, 200, 300), 0.5, 40},
		{"all overflow at q=1", filled(100), 1, 40},
		{"median interpolates", filled(5, 5, 5, 5), 0.5, 5},
		{"single bucket q=1 hits upper bound", filled(5, 5), 1, 10},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.s.Quantile(c.q); got != c.want {
				t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
			}
		})
	}
	// Interior sanity: the q=0.5 estimate of a two-bucket split lands
	// inside the histogram's range.
	s := filled(5, 15, 15, 35)
	if q := s.Quantile(0.5); q <= 0 || q > 40 {
		t.Errorf("interior median %v outside (0, 40]", q)
	}
}

// TestPrometheusGolden pins the exposition format byte-for-byte:
// sorted TYPE-grouped families, label-ordered series, cumulative
// histogram buckets.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rx_total", "worker", "0").Add(7)
	reg.Counter("rx_total", "worker", "1").Add(9)
	reg.Gauge("up").Set(1)
	h := reg.Histogram("rtt_ns", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE rtt_ns histogram
rtt_ns_bucket{le="10"} 1
rtt_ns_bucket{le="100"} 2
rtt_ns_bucket{le="+Inf"} 3
rtt_ns_sum 555
rtt_ns_count 3
# TYPE rx_total counter
rx_total{worker="0"} 7
rx_total{worker="1"} 9
# TYPE up gauge
up 1
`
	if b.String() != want {
		t.Errorf("WritePrometheus:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestSamplerSeries drives the sampler on a synthetic clock and
// checks rates, gauges, quantiles and probes land in the rings with
// the ring bound honored.
func TestSamplerSeries(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("pkts_total")
	g := reg.Gauge("inflight")
	h := reg.Histogram("rtt_ns", []float64{100, 1000})
	s := NewSampler(reg, SamplerConfig{Capacity: 4, Quantiles: []float64{0.5}})
	probeVal := 0.0
	s.AddProbe("occupancy", func() float64 { return probeVal })

	sec := int64(time.Second)
	g.Set(3)
	s.Sample(0) // prime
	c.Add(100)
	h.Observe(500)
	h.Observe(500)
	probeVal = 0.75
	s.Sample(1 * sec)

	d := s.Dump()
	rate := d["pkts_total:rate"]
	if rate.Kind != "rate" || len(rate.Points) != 1 {
		t.Fatalf("rate series = %+v, want 1 point", rate)
	}
	if rate.Points[0].V != 100 {
		t.Errorf("rate = %v pkts/s, want 100", rate.Points[0].V)
	}
	gauge := d["inflight"]
	if gauge.Kind != "gauge" || len(gauge.Points) != 2 || gauge.Points[1].V != 3 {
		t.Errorf("gauge series = %+v, want 2 points of 3", gauge)
	}
	p50 := d["rtt_ns:p50"]
	if p50.Kind != "quantile" || len(p50.Points) != 1 {
		t.Fatalf("quantile series = %+v, want 1 point", p50)
	}
	if v := p50.Points[0].V; v <= 100 || v > 1000 {
		t.Errorf("interval p50 = %v, want within (100, 1000]", v)
	}
	probe := d["occupancy"]
	if probe.Kind != "probe" || len(probe.Points) != 2 || probe.Points[1].V != 0.75 {
		t.Errorf("probe series = %+v, want second point 0.75", probe)
	}

	// Overflow the ring: capacity 4, so only the last 4 samples stay,
	// timestamps strictly increasing.
	for i := int64(2); i <= 10; i++ {
		s.Sample(i * sec)
	}
	pts := s.Dump()["inflight"].Points
	if len(pts) != 4 {
		t.Fatalf("ring kept %d points, want 4", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TS <= pts[i-1].TS {
			t.Fatalf("series timestamps not increasing: %v", pts)
		}
	}
	if pts[3].TS != 10*sec {
		t.Errorf("newest point at %d, want %d", pts[3].TS, 10*sec)
	}
}

// TestSamplerStartStop exercises the wall-clock ticker mode.
func TestSamplerStartStop(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("up").Set(1)
	s := NewSampler(reg, SamplerConfig{Capacity: 16})
	stop := s.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if pts := s.Dump()["up"].Points; len(pts) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler never produced two points")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	n := len(s.Dump()["up"].Points)
	time.Sleep(5 * time.Millisecond)
	if m := len(s.Dump()["up"].Points); m != n {
		t.Errorf("sampler still running after stop: %d -> %d points", n, m)
	}
}

// TestSamplerPushZeroAlloc pins the per-sample ring write: pushing
// into an existing series must not allocate, the guarantee that keeps
// long-running sampling from churning the heap.
func TestSamplerPushZeroAlloc(t *testing.T) {
	rs := newRingSeries("gauge", 128)
	ts := int64(0)
	if n := testing.AllocsPerRun(1000, func() {
		ts++
		rs.push(ts, float64(ts))
	}); n != 0 {
		t.Errorf("ringSeries.push allocates %v per run, want 0", n)
	}
}

// TestFlightRecorderEmitZeroAlloc pins the recorder's passive path: a
// non-trigger event must record without allocating, since the
// recorder sits on the same fanout as packet-level traces.
func TestFlightRecorderEmitZeroAlloc(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Capacity: 256})
	e := Ev(EvPacketSent, 1)
	if n := testing.AllocsPerRun(1000, func() { fr.Emit(e) }); n != 0 {
		t.Errorf("FlightRecorder.Emit allocates %v per run, want 0", n)
	}
}

// TestFlightRecorderTrigger checks an EvDegrade auto-dumps a schema-
// complete incident file with the trigger, pre/post metrics and deep
// state embedded.
func TestFlightRecorderTrigger(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	c := reg.Counter("pkts_total")
	c.Add(10)
	fr := NewFlightRecorder(FlightConfig{
		Capacity: 8,
		Dir:      dir,
		Registry: reg,
	})
	fr.SetState(func() any { return map[string]int{"busy": 3} })

	fr.Emit(Ev(EvPacketSent, 1))
	c.Add(5)
	deg := Ev(EvDegrade, 2)
	deg.Worker = 1
	fr.Emit(deg)

	dumped, err := fr.Dumped()
	if err != nil {
		t.Fatal(err)
	}
	if dumped != 1 {
		t.Fatalf("dumped = %d, want 1", dumped)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if len(files) != 1 {
		t.Fatalf("incident files = %v, want one", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var inc Incident
	if err := json.Unmarshal(data, &inc); err != nil {
		t.Fatalf("incident not valid JSON: %v", err)
	}
	if inc.Schema != IncidentSchema {
		t.Errorf("schema = %q, want %q", inc.Schema, IncidentSchema)
	}
	if inc.Reason != "Degrade" || inc.Trigger == nil || inc.Trigger.Type != "Degrade" {
		t.Errorf("trigger = %+v reason %q, want Degrade", inc.Trigger, inc.Reason)
	}
	if len(inc.Events) != 2 {
		t.Errorf("events = %d, want 2", len(inc.Events))
	}
	if inc.Pre == nil || inc.Metrics == nil || inc.Delta == nil {
		t.Fatalf("metrics sections missing: pre=%v metrics=%v delta=%v",
			inc.Pre != nil, inc.Metrics != nil, inc.Delta != nil)
	}
	if inc.Delta.Counters["pkts_total"] != 5 {
		t.Errorf("delta pkts_total = %d, want 5", inc.Delta.Counters["pkts_total"])
	}
	if inc.Metrics.Counters["pkts_total"] != 15 {
		t.Errorf("metrics pkts_total = %d, want 15", inc.Metrics.Counters["pkts_total"])
	}
	if inc.State == nil {
		t.Error("deep state missing")
	}
}

// TestFlightRecorderDebounce checks the dump-storm guard: triggers
// inside the debounce window are recorded but not dumped.
func TestFlightRecorderDebounce(t *testing.T) {
	dir := t.TempDir()
	fr := NewFlightRecorder(FlightConfig{
		Capacity: 8,
		Dir:      dir,
		Debounce: 100 * time.Millisecond,
	})
	fr.Emit(Ev(EvDegrade, 0))
	fr.Emit(Ev(EvFailback, int64(50*time.Millisecond)))  // inside window
	fr.Emit(Ev(EvDegrade, int64(200*time.Millisecond))) // outside
	if dumped, _ := fr.Dumped(); dumped != 2 {
		t.Errorf("dumped = %d, want 2 (middle trigger debounced)", dumped)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if len(files) != 2 {
		t.Errorf("incident files = %v, want two", files)
	}
}

// TestFlightRecorderPathMode checks exact-path mode overwrites one
// file, the shape scripted experiments consume.
func TestFlightRecorderPathMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "incident.json")
	fr := NewFlightRecorder(FlightConfig{Capacity: 8, Path: path})
	fr.Emit(Ev(EvDegrade, 1))
	fr.Emit(Ev(EvFailback, 2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var inc Incident
	if err := json.Unmarshal(data, &inc); err != nil {
		t.Fatal(err)
	}
	if inc.Reason != "Failback" {
		t.Errorf("last incident reason = %q, want Failback (overwrite)", inc.Reason)
	}
	if inc.Seq != 1 {
		t.Errorf("seq = %d, want 1", inc.Seq)
	}
}

// TestDebugMuxOpts exercises the full endpoint catalog over HTTP.
func TestDebugMuxOpts(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pkts_total").Add(4)
	smp := NewSampler(reg, SamplerConfig{Capacity: 8})
	smp.Sample(0)
	smp.Sample(int64(time.Second))
	dir := t.TempDir()
	fr := NewFlightRecorder(FlightConfig{Capacity: 8, Dir: dir, Registry: reg})
	fr.Emit(Ev(EvPacketSent, 1))
	mux := NewDebugMuxOpts(DebugOptions{
		Registry: reg,
		Sampler:  smp,
		Recorder: fr,
		State:    func() any { return map[string]string{"role": "test"} },
		Extra: map[string]http.HandlerFunc{
			"/debug/extra": func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) },
		},
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, b.String())
		}
		return b.String()
	}

	if body := get("/metrics"); !strings.Contains(body, "# TYPE pkts_total counter") {
		t.Errorf("/metrics missing TYPE line:\n%s", body)
	}
	var series map[string]SeriesData
	if err := json.Unmarshal([]byte(get("/debug/series")), &series); err != nil {
		t.Fatalf("/debug/series not JSON: %v", err)
	}
	if _, ok := series["pkts_total:rate"]; !ok {
		t.Errorf("/debug/series missing rate series: %v", series)
	}
	var inc Incident
	if err := json.Unmarshal([]byte(get("/debug/flightrecorder")), &inc); err != nil {
		t.Fatalf("/debug/flightrecorder not JSON: %v", err)
	}
	if inc.Schema != IncidentSchema || len(inc.Events) != 1 {
		t.Errorf("flightrecorder incident = %+v", inc)
	}
	var dump map[string]string
	if err := json.Unmarshal([]byte(get("/debug/flightrecorder?dump=1")), &dump); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dump["path"]); err != nil {
		t.Errorf("on-demand dump file: %v", err)
	}
	var state map[string]string
	if err := json.Unmarshal([]byte(get("/debug/state")), &state); err != nil || state["role"] != "test" {
		t.Errorf("/debug/state = %v (%v)", state, err)
	}
	if get("/debug/extra") != "ok" {
		t.Error("/debug/extra not mounted")
	}
}
