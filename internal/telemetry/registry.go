// Package telemetry is the repo's unified observability layer: a
// zero-dependency metrics registry (typed counters, gauges and
// bucketed histograms with labeled families) and a protocol event
// tracer with bounded recording and exporters.
//
// The paper's evaluation is built on fine-grained visibility into
// protocol events — packets per 10 ms timelines (Fig 6), loss
// recovery behaviour (Fig 5), per-packet RTTs (Fig 2) — and this
// package makes that visibility a first-class subsystem shared by
// the simulator, the rack model, the real UDP transport and the
// daemons, instead of ad-hoc snapshot structs per layer.
//
// Metrics are cheap in the hot path: counters and gauges are single
// atomic words, histograms one atomic add per observation. Hosts
// that need no sharing use the zero values directly; registries add
// naming, labels, snapshots and a text dump for the daemons'
// /metrics endpoint.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; Registry.Counter names and shares one.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready
// to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Use NewHistogram
// or Registry.Histogram; the zero value has no buckets and only
// tracks count and sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram returns a histogram with the given ascending upper
// bucket bounds (an implicit +Inf bucket is appended).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// LatencyBuckets are nanosecond bounds from 1 µs to 1 s, suited to
// RTT and timeout observations in both virtual and wall-clock time.
var LatencyBuckets = []float64{
	1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5,
	1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8, 1e9,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if len(h.counts) == 0 {
		// Zero-value histogram: count and sum only.
	} else {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the upper bucket bounds; Counts[i] holds samples <=
	// Bounds[i], Counts[len(Bounds)] the +Inf overflow.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile by linear interpolation within
// the bucket that crosses it. Edge behavior is fully defined: an
// empty or bucketless histogram yields 0, q is clamped to [0, 1]
// (NaN reads as 0), q = 0 yields the lower bound of the first
// occupied bucket, and samples in the +Inf overflow bucket yield the
// highest finite bound — the estimator never extrapolates past the
// configured range.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Counts {
		if seen+float64(c) < rank || c == 0 {
			seen += float64(c)
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		return lo + (s.Bounds[i]-lo)*(rank-seen)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// metricKind distinguishes family types within a registry.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with zero or more labeled children.
type family struct {
	kind    metricKind
	bounds  []float64 // histograms only
	metrics map[string]any
}

// Registry names and shares metrics. All methods are safe for
// concurrent use; looking up an existing metric takes one mutex
// acquisition, so hot paths should capture the returned pointer once
// and increment it directly.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey canonicalizes alternating key/value label pairs; it is the
// child key within a family and the {} suffix in dumps.
func labelKey(labels []string) string {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", labels))
	}
	if len(labels) == 0 {
		return ""
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", labels[i], labels[i+1]))
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}

// lookup finds or creates the named family and child metric.
func (r *Registry) lookup(name string, kind metricKind, bounds []float64, labels []string) any {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{kind: kind, bounds: bounds, metrics: make(map[string]any)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	m, ok := f.metrics[key]
	if !ok {
		switch kind {
		case kindCounter:
			m = &Counter{}
		case kindGauge:
			m = &Gauge{}
		default:
			m = NewHistogram(f.bounds)
		}
		f.metrics[key] = m
	}
	return m
}

// Counter returns the named counter, creating it on first use.
// Labels are alternating key/value pairs; the same name+labels always
// returns the same instance.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup(name, kindCounter, nil, labels).(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup(name, kindGauge, nil, labels).(*Gauge)
}

// Histogram returns the named histogram, creating it on first use
// with the given bounds. Later calls reuse the first bounds.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	return r.lookup(name, kindHistogram, bounds, labels).(*Histogram)
}

// Snapshot is a point-in-time copy of a registry's metrics, keyed by
// "name" or "name{label="v",...}".
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range r.families {
		for key, m := range f.metrics {
			full := name + key
			switch v := m.(type) {
			case *Counter:
				s.Counters[full] = v.Value()
			case *Gauge:
				s.Gauges[full] = v.Value()
			case *Histogram:
				s.Histograms[full] = v.Snapshot()
			}
		}
	}
	return s
}

// Delta returns this snapshot minus an earlier one: counters and
// histogram counts are subtracted (series absent from prev pass
// through), gauges keep their current value. It is the per-interval
// view for rate monitoring.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		d.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Gauges {
		d.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		p, ok := prev.Histograms[k]
		if !ok || len(p.Counts) != len(v.Counts) {
			d.Histograms[k] = v
			continue
		}
		h := HistogramSnapshot{
			Bounds: v.Bounds,
			Counts: make([]uint64, len(v.Counts)),
			Count:  v.Count - p.Count,
			Sum:    v.Sum - p.Sum,
		}
		for i := range v.Counts {
			h.Counts[i] = v.Counts[i] - p.Counts[i]
		}
		d.Histograms[k] = h
	}
	return d
}

// WriteText dumps the snapshot in a Prometheus-style text format:
// one "name{labels} value" line per series, histograms expanded into
// cumulative le buckets plus _sum and _count, all sorted for stable
// output.
func (s Snapshot) WriteText(w io.Writer) error {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+8*len(s.Histograms))
	for k, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, h := range s.Histograms {
		name, labels := k, ""
		if i := strings.IndexByte(k, '{'); i >= 0 {
			name, labels = k[:i], strings.TrimSuffix(k[i+1:], "}")+","
		}
		cum := uint64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%g", h.Bounds[i])
			}
			lines = append(lines, fmt.Sprintf("%s_bucket{%sle=%q} %d", name, labels, le, cum))
		}
		lines = append(lines, fmt.Sprintf("%s_sum%s %g", name, strings.TrimPrefix(k, name), h.Sum))
		lines = append(lines, fmt.Sprintf("%s_count%s %d", name, strings.TrimPrefix(k, name), h.Count))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// WriteText dumps the registry's current state; see Snapshot.WriteText.
func (r *Registry) WriteText(w io.Writer) error { return r.Snapshot().WriteText(w) }
