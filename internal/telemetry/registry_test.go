package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts_total", "dir", "tx")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("pkts_total", "dir", "tx") != c {
		t.Fatal("same name+labels must return the same counter")
	}
	if r.Counter("pkts_total", "dir", "rx") == c {
		t.Fatal("different labels must return a different counter")
	}
	g := r.Gauge("inflight")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for _, v := range []float64{1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, c, want[i], s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 5556 {
		t.Fatalf("count=%d sum=%g, want 5, 5556", s.Count, s.Sum)
	}
	if q := s.Quantile(0.5); q < 10 || q > 100 {
		t.Fatalf("p50 = %g, want within (10,100]", q)
	}
}

func TestSnapshotDeltaAndText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("updates_total", "job", "0")
	h := r.Histogram("rtt_ns", []float64{1000, 2000})
	c.Add(3)
	h.Observe(1500)
	before := r.Snapshot()
	c.Add(2)
	h.Observe(500)
	d := r.Snapshot().Delta(before)
	if got := d.Counters[`updates_total{job="0"}`]; got != 2 {
		t.Fatalf("delta counter = %d, want 2", got)
	}
	if hd := d.Histograms["rtt_ns"]; hd.Count != 1 || hd.Counts[0] != 1 || hd.Counts[1] != 0 {
		t.Fatalf("delta histogram = %+v, want one sample in first bucket", hd)
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`updates_total{job="0"} 5`,
		`rtt_ns_bucket{le="1000"} 1`,
		`rtt_ns_bucket{le="+Inf"} 2`,
		"rtt_ns_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("text dump missing %q:\n%s", want, text)
		}
	}
}

func TestRingBoundAndOrder(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Emit(Ev(EvPacketSent, int64(i)))
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Overwritten() != 2 {
		t.Fatalf("overwritten = %d, want 2", r.Overwritten())
	}
	evs := r.Events()
	for i, e := range evs {
		if e.TS != int64(i+2) {
			t.Fatalf("event %d ts = %d, want %d (oldest-first order)", i, e.TS, i+2)
		}
	}
}

// TestConcurrentMetrics exercises the registry and ring under the
// race detector: all hot-path operations must be safe without caller
// locking.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	ring := NewRing(128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h", LatencyBuckets)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i))
				ring.Emit(Ev(EvPacketRecv, int64(i)))
				if i%100 == 0 {
					r.Snapshot()
					ring.Events()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
}
