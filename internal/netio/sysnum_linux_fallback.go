//go:build linux && !amd64 && !arm64

package netio

// Architectures whose mmsg syscall numbers are not spelled out stay
// on the portable path; the numbers below are never invoked.
const (
	sysRecvmmsg   = 0
	sysSendmmsg   = 0
	mmsgSupported = false
)
