// Package netio is the batched UDP socket layer under the transport
// hot loops. One Conn wraps one *net.UDPConn and carries preallocated
// message-vector arenas so that a run-to-completion loop can read a
// burst of datagrams with one syscall (Linux recvmmsg), stage every
// reply without allocating, and flush them all with one syscall
// (Linux sendmmsg) — the "batch end to end" discipline SwitchML's
// DPDK implementation gets from rte_eth_rx_burst/tx_burst.
//
// Three modes are selected at Wrap time, best first:
//
//	ModeGSO      recvmmsg/sendmmsg plus UDP segmentation offload:
//	             equal-size datagrams to one destination travel as a
//	             single segment train (UDP_SEGMENT), and the receive
//	             side reassembles coalesced trains via UDP_GRO. One
//	             syscall now carries up to 64 datagrams per vector
//	             entry.
//	ModeMmsg     recvmmsg/sendmmsg vectors without segment offload.
//	ModePortable one datagram per syscall through the net package —
//	             any OS, and the forced path under SWITCHML_NO_MMSG=1.
//
// The raw syscalls go through syscall.RawConn so the goroutine still
// parks in the runtime netpoller between bursts (a blocking raw read
// would either busy-spin against the non-blocking fd or wedge the
// thread) and read deadlines set on the underlying conn keep working.
// The module stays dependency-free: no golang.org/x/net, no cgo.
//
// Concurrency contract: one goroutine owns Recv and the Append*/Flush
// staging area (they share arenas). Writes made directly on UDP()
// from other goroutines remain safe — the kernel serializes socket
// sends — which is how the transport's control plane coexists with a
// batched shard loop.
package netio

import (
	"errors"
	"net"
	"net/netip"
	"os"
	"sync/atomic"
	"syscall"
	"time"
)

// Mode identifies which I/O strategy a Conn selected at Wrap time.
type Mode uint8

const (
	// ModePortable does one datagram per syscall via the net package.
	ModePortable Mode = iota
	// ModeMmsg batches datagrams with recvmmsg/sendmmsg.
	ModeMmsg
	// ModeGSO batches with recvmmsg/sendmmsg and additionally carries
	// equal-size runs as UDP_SEGMENT trains, reassembled by UDP_GRO.
	ModeGSO
)

// String names the mode for debug documents and logs.
func (m Mode) String() string {
	switch m {
	case ModeMmsg:
		return "mmsg"
	case ModeGSO:
		return "gso"
	default:
		return "portable"
	}
}

// NoMmsgEnv disables the Linux mmsg/GSO fast paths when set to a
// non-empty value, forcing ModePortable everywhere. CI runs one
// matrix leg with it so both code paths stay green.
const NoMmsgEnv = "SWITCHML_NO_MMSG"

// NoGSOEnv caps the mode at ModeMmsg, for isolating segmentation
// offload from plain vector I/O when debugging.
const NoGSOEnv = "SWITCHML_NO_GSO"

const (
	defaultBatch = 32
	defaultMTU   = 2048
	// maxTrainSegs is the kernel's UDP_MAX_SEGMENTS: one GSO send may
	// carry at most 64 segments, and GRO coalesces at most the same.
	maxTrainSegs = 64
	// spinBudget bounds the busy-poll option: on an empty socket the
	// receive callback yields-and-retries this many times before
	// falling back to parking in the netpoller, so a busy-polling
	// shard can never wedge a deadline or starve the scheduler.
	spinBudget = 128
)

// ErrPayloadTooLarge reports an Append of a datagram larger than the
// staging arena's per-message capacity (Config.MTU).
var ErrPayloadTooLarge = errors.New("netio: staged payload exceeds MTU")

// errAddrFamily reports a destination the socket's address family
// cannot carry (e.g. a global IPv6 peer on an IPv4 socket).
var errAddrFamily = errors.New("netio: destination address family mismatch")

// ErrReusePortUnsupported is returned by ControlReusePort on
// platforms without load-balancing SO_REUSEPORT semantics; callers
// fall back to sharing one socket between shards.
var ErrReusePortUnsupported = errors.New("netio: SO_REUSEPORT steering unsupported on this platform")

// Config sizes a Conn's arenas and selects options.
type Config struct {
	// Batch is the burst ceiling: the receive vector length and the
	// staging capacity hint. Zero selects 32. Batch 1 still works —
	// every path degenerates to single-datagram exchanges.
	Batch int
	// MTU is the largest datagram the caller will send or expects to
	// receive on this conn (wire bytes). Zero selects 2048. Receive
	// buffers in GSO mode are always 64 KiB — a coalesced train is one
	// large "datagram" at the socket API.
	MTU int
	// BusyPoll spins briefly on an empty socket before parking in the
	// netpoller, trading CPU for latency. The spin is bounded
	// (spinBudget yields), so deadlines and shutdown still work.
	BusyPoll bool
	// OnSendError observes failed or dropped sends: one call per
	// failed send entry, carrying the number of datagrams it covered
	// (a segment train fails as a unit). UDP sends are best-effort
	// throughout the transport, but dropping the error silently hides
	// misconfigured routes and dead peers from operators; the
	// transport counts these in the udp_send_errors_total counter.
	OnSendError func(err error, datagrams int)
	// ForcePortable pins ModePortable regardless of platform support,
	// the programmatic equivalent of SWITCHML_NO_MMSG=1 for
	// equivalence tests.
	ForcePortable bool
}

func (c *Config) fill() {
	if c.Batch <= 0 {
		c.Batch = defaultBatch
	}
	if c.MTU <= 0 {
		c.MTU = defaultMTU
	}
}

// Message is one received datagram. Buf aliases the conn's receive
// arena and is valid only until the next Recv call.
type Message struct {
	Buf  []byte
	Addr netip.AddrPort
}

// Conn is a batched view over one UDP socket.
type Conn struct {
	udp  *net.UDPConn
	mode Mode
	cfg  Config
	// connected is true for dialed sockets: sends omit the
	// destination (the kernel uses the connected peer) and Append
	// destinations are ignored.
	connected bool

	// Msgs[:n] holds the datagrams of the last Recv burst, n being
	// Recv's return value. The slice header is preallocated to the
	// worst-case split of a full burst; Recv never grows it.
	Msgs []Message

	// portable staging: copy-in buffers and destinations, flushed one
	// write syscall per datagram.
	pbuf   []byte // portable receive buffer
	sbufs  [][]byte
	sdst   []netip.AddrPort
	scount int

	// truncated/sendErrs/sendRetries are written by the owning
	// goroutine but read by debug introspection from arbitrary
	// goroutines, hence atomic.
	truncated   atomic.Uint64
	sendErrs    atomic.Uint64
	sendRetries atomic.Uint64

	sys platform // per-OS batched state (empty struct off Linux)
}

// Wrap layers batched I/O over an existing UDP socket. The socket
// remains usable directly (UDP()); Close the socket itself to tear
// down — Conn holds no resources beyond its arenas.
func Wrap(u *net.UDPConn, cfg Config) (*Conn, error) {
	cfg.fill()
	c := &Conn{
		udp:       u,
		cfg:       cfg,
		connected: u.RemoteAddr() != nil,
	}
	if !cfg.ForcePortable && os.Getenv(NoMmsgEnv) == "" {
		if err := c.initPlatform(); err != nil {
			return nil, err
		}
	}
	if c.mode == ModePortable {
		c.pbuf = make([]byte, recvBufSize(cfg.MTU))
		c.Msgs = make([]Message, 1)
		c.sbufs = make([][]byte, cfg.Batch)
		for i := range c.sbufs {
			c.sbufs[i] = make([]byte, 0, cfg.MTU)
		}
		c.sdst = make([]netip.AddrPort, cfg.Batch)
	}
	return c, nil
}

// recvBufSize leaves headroom over the caller's MTU so an unexpected
// jumbo datagram is dropped by the codec checksum, not truncated into
// a plausible prefix.
func recvBufSize(mtu int) int {
	if mtu < defaultMTU {
		mtu = defaultMTU
	}
	return 2 * mtu
}

// Mode reports the I/O strategy selected at Wrap time.
func (c *Conn) Mode() Mode { return c.mode }

// Batch reports the configured burst ceiling.
func (c *Conn) Batch() int { return c.cfg.Batch }

// UDP exposes the underlying socket for control-plane traffic and
// deadline management.
func (c *Conn) UDP() *net.UDPConn { return c.udp }

// SetReadDeadline forwards to the underlying socket; Recv honors it
// in every mode (the raw paths park through the runtime netpoller).
func (c *Conn) SetReadDeadline(t time.Time) error { return c.udp.SetReadDeadline(t) }

// Truncated counts datagrams dropped because a burst split overran
// the Msgs arena — possible only if a peer sends trains longer than
// the negotiated window. The protocol's loss recovery repairs the
// stream; the counter makes the event visible.
func (c *Conn) Truncated() uint64 { return c.truncated.Load() }

// SendErrors counts datagrams whose send failed or was dropped at
// flush time (also reported, one call per datagram, to OnSendError).
func (c *Conn) SendErrors() uint64 { return c.sendErrs.Load() }

// SendRetries counts transient kernel pushback (ENOBUFS/EAGAIN)
// absorbed at flush time: each retry of a send that then went through
// (or was eventually dropped after the bounded backoff) adds one.
// Retried-and-delivered datagrams never reach SendErrors.
func (c *Conn) SendRetries() uint64 { return c.sendRetries.Load() }

// Pending reports the number of staged-but-unflushed datagrams.
func (c *Conn) Pending() int {
	if c.mode != ModePortable {
		return c.sysPending()
	}
	return c.scount
}

// Recv blocks until at least one datagram arrives (or the read
// deadline expires) and returns the burst size n; Msgs[:n] holds the
// datagrams. Buffers are valid until the next Recv.
//
//switchml:hotpath
func (c *Conn) Recv() (int, error) {
	if c.mode != ModePortable {
		return c.sysRecv()
	}
	n, addr, err := c.udp.ReadFromUDPAddrPort(c.pbuf)
	if err != nil {
		return 0, err
	}
	c.Msgs[0] = Message{Buf: c.pbuf[:n], Addr: addr}
	return 1, nil
}

// AppendTo stages one datagram for the next Flush, copying the
// payload into the conn's arena (so the caller may reuse its buffer
// immediately). A full arena flushes implicitly. On a connected
// socket the destination is ignored.
//
//switchml:hotpath
func (c *Conn) AppendTo(payload []byte, to netip.AddrPort) {
	if len(payload) > c.cfg.MTU {
		c.dropSend(errPayloadTooLarge)
		return
	}
	if c.mode != ModePortable {
		c.sysAppendTo(payload, to)
		return
	}
	if c.scount == len(c.sbufs) {
		c.Flush()
	}
	//switchml:allow hotpath -- append into a slice re-sliced to :0 with fixed MTU capacity; the guard above bounds the copy
	c.sbufs[c.scount] = append(c.sbufs[c.scount][:0], payload...)
	c.sdst[c.scount] = to
	c.scount++
}

// AppendTrain stages a run of len(block)/seg equal-size datagrams
// (the last may be shorter) for one destination. The block is NOT
// copied: it must stay valid until Flush returns. In ModeGSO the
// whole run is one UDP_SEGMENT send; in ModeMmsg it becomes one
// vector entry per segment; in ModePortable it degenerates to one
// write per segment. Equal-size result multicasts and window fills
// are the intended callers.
//
//switchml:hotpath
func (c *Conn) AppendTrain(block []byte, seg int, to netip.AddrPort) {
	if seg <= 0 || len(block) == 0 {
		return
	}
	if c.mode != ModePortable {
		c.sysAppendTrain(block, seg, to)
		return
	}
	for off := 0; off < len(block); off += seg {
		end := off + seg
		if end > len(block) {
			end = len(block)
		}
		c.AppendTo(block[off:end], to)
	}
}

// Flush sends every staged datagram. Errors are counted and reported
// through OnSendError per datagram — UDP staging is best-effort by
// design, so the hot loop never branches on a send verdict.
//
//switchml:hotpath
func (c *Conn) Flush() {
	if c.mode != ModePortable {
		c.sysFlush()
		return
	}
	for i := 0; i < c.scount; i++ {
		c.writePortable(c.sbufs[i], c.sdst[i])
	}
	c.scount = 0
}

const (
	// sendRetryBudget/sendRetryPause bound the transient-send backoff:
	// a datagram the kernel pushed back (ENOBUFS under burst load,
	// EAGAIN on an edge the poller cannot arbitrate) is retried up to
	// the budget with a pause doubling from the base — ~350µs worst
	// case, short enough that a flush never stalls the shard loop —
	// before it is declared lost and dropped into SendErrors.
	sendRetryBudget = 3
	sendRetryPause  = 50 * time.Microsecond
)

// Boxed once here so the hot send path compares against ready-made
// error values instead of boxing a syscall.Errno per failed send.
var (
	errNoBufs error = syscall.ENOBUFS
	errAgain  error = syscall.EAGAIN
)

// transientSendErr reports errors worth the brief retry: the kernel
// ran out of socket buffer space or asked to try again. Anything else
// (unreachable routes, bad addresses, closed sockets) fails the same
// way on retry and is dropped immediately.
func transientSendErr(err error) bool {
	return errors.Is(err, errNoBufs) || errors.Is(err, errAgain)
}

// writePortable sends one staged datagram, absorbing transient kernel
// pushback with the bounded backoff before the datagram is declared
// lost.
//
//switchml:hotpath
func (c *Conn) writePortable(buf []byte, dst netip.AddrPort) {
	for attempt := 0; ; attempt++ {
		var err error
		if c.connected {
			_, err = c.udp.Write(buf)
		} else {
			_, err = c.udp.WriteToUDPAddrPort(buf, dst)
		}
		if err == nil {
			return
		}
		if attempt < sendRetryBudget && transientSendErr(err) {
			c.sendRetries.Add(1)
			time.Sleep(sendRetryPause << attempt)
			continue
		}
		c.dropSend(err)
		return
	}
}

// errPayloadTooLarge is pre-boxed so the hot path can hand it to
// dropSend without converting a concrete type into an interface.
var errPayloadTooLarge error = ErrPayloadTooLarge

// dropSend accounts one undeliverable datagram.
//
//switchml:hotpath
func (c *Conn) dropSend(err error) {
	c.sendErrs.Add(1)
	if c.cfg.OnSendError != nil {
		c.cfg.OnSendError(err, 1)
	}
}
