//go:build linux

package netio

import (
	"net"
	"net/netip"
	"os"
	"runtime"
	"syscall"
	"time"
	"unsafe"
)

// Linux implementation: recvmmsg/sendmmsg burst vectors with optional
// UDP_SEGMENT/UDP_GRO segment trains, invoked as raw syscalls through
// syscall.RawConn so the netpoller integration (goroutine parking,
// read deadlines, close wakeups) is preserved. Everything the kernel
// reads or writes — mmsghdr vectors, iovecs, sockaddr and cmsg
// arenas — is preallocated at Wrap time; the per-burst work is
// pointer fixups only.

const (
	msgDontwait = 0x40 // MSG_DONTWAIT: the fd is non-blocking anyway; be explicit
	solUDP      = 17   // SOL_UDP
	udpSegment  = 103  // UDP_SEGMENT: per-send GSO segment size cmsg
	udpGRO      = 104  // UDP_GRO: enable receive coalescing; segment size cmsg

	sockaddrLen = syscall.SizeofSockaddrInet6
)

var (
	oobSpace    = syscall.CmsgSpace(4) // fits both the u16 GSO and s32 GRO payloads
	cmsgDataOff = syscall.CmsgLen(0)
)

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit targets.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32 // bytes transferred for this vector entry
	_   [4]byte
}

// platform is the Linux side of a Conn.
type platform struct {
	rc  syscall.RawConn
	fam int  // socket domain: AF_INET or AF_INET6
	gso bool // UDP_GRO enabled; sends may carry UDP_SEGMENT trains

	raddr netip.AddrPort // connected-peer fallback for unnamed datagrams

	// receive arena
	rhdrs  []mmsghdr
	riov   []syscall.Iovec
	rbufs  [][]byte
	rnames []byte // sockaddrLen stride
	roob   []byte // oobSpace stride
	rn     int
	rerrno syscall.Errno
	recvFn func(fd uintptr) bool

	// send arena
	shdrs  []mmsghdr
	siov   []syscall.Iovec
	snames []byte
	soob   []byte
	segs   []uint32 // datagrams per staged entry (trains expand)
	ubufs  [][]byte // copy-in slots backing AppendTo
	scnt   int      // staged vector entries
	sdg    int      // staged datagrams
	ucnt   int      // copy-in slots used
	sfrom  int
	sn     int
	serrno syscall.Errno
	sendFn func(fd uintptr) bool
}

// initPlatform probes the socket and selects ModeGSO or ModeMmsg,
// leaving ModePortable on unsupported architectures or socket
// domains. Errors are reserved for broken sockets.
func (c *Conn) initPlatform() error {
	if !mmsgSupported {
		return nil
	}
	rc, err := c.udp.SyscallConn()
	if err != nil {
		return err
	}
	p := &c.sys
	p.rc = rc
	var domain int
	var derr, gerr error
	tryGSO := os.Getenv(NoGSOEnv) == ""
	if err := rc.Control(func(fd uintptr) {
		domain, derr = syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_DOMAIN)
		if tryGSO {
			gerr = syscall.SetsockoptInt(int(fd), solUDP, udpGRO, 1)
		}
	}); err != nil {
		return err
	}
	if derr != nil || (domain != syscall.AF_INET && domain != syscall.AF_INET6) {
		return nil // exotic socket: stay portable
	}
	p.fam = domain
	c.mode = ModeMmsg
	if tryGSO && gerr == nil {
		c.mode = ModeGSO
		p.gso = true
	}
	if c.connected {
		if ua, ok := c.udp.RemoteAddr().(*net.UDPAddr); ok {
			p.raddr = ua.AddrPort()
		}
	}
	c.buildArenas()
	return nil
}

// buildArenas preallocates every buffer the burst paths touch,
// including the RawConn callbacks — closures allocated here, once, so
// Recv and Flush stay allocation-free.
func (c *Conn) buildArenas() {
	p := &c.sys
	batch := c.cfg.Batch

	rents := batch
	rbufSize := recvBufSize(c.cfg.MTU)
	msgsCap := batch
	if p.gso {
		// A GRO train is one vector entry carrying up to maxTrainSegs
		// datagrams, so fewer, larger entries cover the same burst.
		rents = batch / 4
		if rents < 4 {
			rents = 4
		}
		if rents > batch {
			rents = batch
		}
		rbufSize = 65536
		msgsCap = rents * maxTrainSegs
	}
	c.Msgs = make([]Message, msgsCap)
	p.rhdrs = make([]mmsghdr, rents)
	p.riov = make([]syscall.Iovec, rents)
	p.rbufs = make([][]byte, rents)
	p.rnames = make([]byte, rents*sockaddrLen)
	p.roob = make([]byte, rents*oobSpace)
	for i := range p.rhdrs {
		p.rbufs[i] = make([]byte, rbufSize)
		p.riov[i] = syscall.Iovec{Base: &p.rbufs[i][0], Len: uint64(rbufSize)}
		h := &p.rhdrs[i].hdr
		h.Iov = &p.riov[i]
		h.Iovlen = 1
		h.Name = &p.rnames[i*sockaddrLen]
		h.Namelen = sockaddrLen
	}

	sents := 2 * batch
	if sents < 64 {
		sents = 64
	}
	p.shdrs = make([]mmsghdr, sents)
	p.siov = make([]syscall.Iovec, sents)
	p.snames = make([]byte, sents*sockaddrLen)
	p.soob = make([]byte, sents*oobSpace)
	p.segs = make([]uint32, sents)
	p.ubufs = make([][]byte, batch)
	for i := range p.ubufs {
		p.ubufs[i] = make([]byte, 0, c.cfg.MTU)
	}

	p.recvFn = func(fd uintptr) bool {
		spins := 0
		if c.cfg.BusyPoll {
			spins = spinBudget
		}
		for {
			n, _, e := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&p.rhdrs[0])), uintptr(len(p.rhdrs)),
				msgDontwait, 0, 0)
			switch e {
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				if spins > 0 {
					spins--
					runtime.Gosched()
					continue
				}
				return false // park in the netpoller until readable
			}
			p.rn, p.rerrno = int(n), e
			return true
		}
	}
	p.sendFn = func(fd uintptr) bool {
		for {
			n, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&p.shdrs[p.sfrom])), uintptr(p.scnt-p.sfrom),
				msgDontwait, 0, 0)
			if e == syscall.EINTR {
				continue
			}
			if e == syscall.EAGAIN {
				return false
			}
			p.sn, p.serrno = int(n), e
			return true
		}
	}
}

// sysRecv reads one burst: reset the kernel-mutated header fields,
// park until readable, then split the filled entries (and any GRO
// trains) into Msgs.
//
//switchml:hotpath
func (c *Conn) sysRecv() (int, error) {
	p := &c.sys
	for i := range p.rhdrs {
		h := &p.rhdrs[i].hdr
		h.Namelen = sockaddrLen // recvmmsg shrinks it to the written size
		if p.gso {
			h.Control = &p.roob[i*oobSpace]
			h.Controllen = uint64(oobSpace)
		}
	}
	p.rn, p.rerrno = 0, 0
	if err := p.rc.Read(p.recvFn); err != nil {
		return 0, err // deadline or closed socket, already an error value
	}
	if p.rerrno != 0 {
		//switchml:allow hotpath -- errno boxing hits the runtime small-integer interface cache; no heap allocation
		return 0, p.rerrno
	}
	return c.splitBurst(), nil
}

// splitBurst fans the filled vector entries out into Msgs, slicing
// GRO-coalesced trains back into individual datagrams.
//
//switchml:hotpath
func (c *Conn) splitBurst() int {
	p := &c.sys
	nm := 0
	for i := 0; i < p.rn; i++ {
		e := &p.rhdrs[i]
		total := int(e.n)
		buf := p.rbufs[i]
		addr := c.srcAddr(i, e.hdr.Namelen)
		seg := total
		if p.gso && e.hdr.Controllen > 0 {
			if g := groSize(p.roob[i*oobSpace:], int(e.hdr.Controllen)); g > 0 {
				seg = g
			}
		}
		if total == 0 {
			if nm < len(c.Msgs) {
				c.Msgs[nm] = Message{Buf: buf[:0], Addr: addr}
				nm++
			}
			continue
		}
		for off := 0; off < total; off += seg {
			end := off + seg
			if end > total {
				end = total
			}
			if nm == len(c.Msgs) {
				// Overfull split: peers sent longer trains than the
				// window contract. Count and let loss recovery repair.
				c.truncated.Add(uint64((total - off + seg - 1) / seg))
				break
			}
			c.Msgs[nm] = Message{Buf: buf[off:end], Addr: addr}
			nm++
		}
	}
	return nm
}

// srcAddr decodes entry i's kernel-written sockaddr.
//
//switchml:hotpath
func (c *Conn) srcAddr(i int, namelen uint32) netip.AddrPort {
	p := &c.sys
	b := p.rnames[i*sockaddrLen : (i+1)*sockaddrLen]
	if namelen >= syscall.SizeofSockaddrInet4 {
		fam := int(*(*uint16)(unsafe.Pointer(&b[0])))
		port := uint16(b[2])<<8 | uint16(b[3])
		if fam == syscall.AF_INET {
			return netip.AddrPortFrom(netip.AddrFrom4([4]byte(b[4:8])), port)
		}
		if fam == syscall.AF_INET6 && namelen >= sockaddrLen {
			return netip.AddrPortFrom(netip.AddrFrom16([16]byte(b[8:24])).Unmap(), port)
		}
	}
	return p.raddr // connected sockets may omit the name
}

// groSize extracts the UDP_GRO segment size from an entry's control
// buffer, 0 when the datagram was not coalesced.
//
//switchml:hotpath
func groSize(oob []byte, n int) int {
	if n > len(oob) {
		n = len(oob)
	}
	off := 0
	for off+syscall.SizeofCmsghdr <= n {
		cm := (*syscall.Cmsghdr)(unsafe.Pointer(&oob[off]))
		l := int(cm.Len)
		if l < syscall.SizeofCmsghdr || off+l > n {
			return 0
		}
		if cm.Level == solUDP && cm.Type == udpGRO && l >= syscall.CmsgLen(4) {
			return int(*(*int32)(unsafe.Pointer(&oob[off+cmsgDataOff])))
		}
		off += (l + 7) &^ 7 // CMSG_ALIGN on 64-bit
	}
	return 0
}

// sysAppendTo copies one datagram into the staging arena.
//
//switchml:hotpath
func (c *Conn) sysAppendTo(payload []byte, to netip.AddrPort) {
	p := &c.sys
	if p.ucnt == len(p.ubufs) || p.scnt == len(p.shdrs) {
		c.Flush()
	}
	//switchml:allow hotpath -- append into a :0 re-slice with fixed MTU capacity; AppendTo's size guard bounds the copy
	buf := append(p.ubufs[p.ucnt][:0], payload...)
	p.ubufs[p.ucnt] = buf
	p.ucnt++
	c.stage(buf, 0, 1, to)
}

// sysAppendTrain stages an equal-size run. With GSO the run rides as
// UDP_SEGMENT super-datagrams (≤ maxTrainSegs segments each); without
// it each segment gets its own vector entry, aliasing the block.
//
//switchml:hotpath
func (c *Conn) sysAppendTrain(block []byte, seg int, to netip.AddrPort) {
	p := &c.sys
	if p.gso {
		stride := seg * maxTrainSegs
		for off := 0; off < len(block); off += stride {
			end := off + stride
			if end > len(block) {
				end = len(block)
			}
			if p.scnt == len(p.shdrs) {
				c.Flush()
			}
			nseg := (end - off + seg - 1) / seg
			gso := 0
			if end-off > seg {
				gso = seg
			}
			c.stage(block[off:end], gso, nseg, to)
		}
		return
	}
	for off := 0; off < len(block); off += seg {
		end := off + seg
		if end > len(block) {
			end = len(block)
		}
		if p.scnt == len(p.shdrs) {
			c.Flush()
		}
		c.stage(block[off:end], 0, 1, to)
	}
}

// stage fills send vector entry scnt with one buffer (optionally a
// GSO train of gsoSeg-byte segments) bound for to.
//
//switchml:hotpath
func (c *Conn) stage(b []byte, gsoSeg, ndgrams int, to netip.AddrPort) {
	p := &c.sys
	if len(b) == 0 {
		return
	}
	i := p.scnt
	p.siov[i].Base = &b[0]
	p.siov[i].Len = uint64(len(b))
	h := &p.shdrs[i]
	h.n = 0
	h.hdr.Iov = &p.siov[i]
	h.hdr.Iovlen = 1
	h.hdr.Flags = 0
	if c.connected {
		h.hdr.Name = nil
		h.hdr.Namelen = 0
	} else {
		off := i * sockaddrLen
		nl := c.putName(off, to)
		if nl == 0 {
			c.dropSendN(errBadAddr, ndgrams)
			return
		}
		h.hdr.Name = &p.snames[off]
		h.hdr.Namelen = nl
	}
	if gsoSeg > 0 {
		off := i * oobSpace
		cm := (*syscall.Cmsghdr)(unsafe.Pointer(&p.soob[off]))
		cm.Level = solUDP
		cm.Type = udpSegment
		cm.SetLen(syscall.CmsgLen(2))
		*(*uint16)(unsafe.Pointer(&p.soob[off+cmsgDataOff])) = uint16(gsoSeg)
		h.hdr.Control = &p.soob[off]
		h.hdr.Controllen = uint64(syscall.CmsgSpace(2))
	} else {
		h.hdr.Control = nil
		h.hdr.Controllen = 0
	}
	p.segs[i] = uint32(ndgrams)
	p.scnt++
	p.sdg += ndgrams
}

// putName writes to's sockaddr (in the socket's own domain) at off in
// the send-name arena, returning its length — 0 when the address
// cannot be represented, e.g. a true IPv6 peer on an IPv4 socket.
//
//switchml:hotpath
func (c *Conn) putName(off int, to netip.AddrPort) uint32 {
	p := &c.sys
	b := p.snames[off : off+sockaddrLen]
	port := to.Port()
	if p.fam == syscall.AF_INET {
		addr := to.Addr().Unmap()
		if !addr.Is4() {
			return 0
		}
		*(*uint16)(unsafe.Pointer(&b[0])) = uint16(syscall.AF_INET)
		b[2] = byte(port >> 8)
		b[3] = byte(port)
		a4 := addr.As4()
		copy(b[4:8], a4[:])
		for i := 8; i < syscall.SizeofSockaddrInet4; i++ {
			b[i] = 0
		}
		return syscall.SizeofSockaddrInet4
	}
	*(*uint16)(unsafe.Pointer(&b[0])) = uint16(syscall.AF_INET6)
	b[2] = byte(port >> 8)
	b[3] = byte(port)
	b[4], b[5], b[6], b[7] = 0, 0, 0, 0 // flowinfo
	a16 := to.Addr().As16()             // maps IPv4 into ::ffff:a.b.c.d
	copy(b[8:24], a16[:])
	b[24], b[25], b[26], b[27] = 0, 0, 0, 0 // scope id
	return sockaddrLen
}

// sysFlush drains the staged vector with as few sendmmsg calls as the
// kernel allows. Transient pushback on an entry (ENOBUFS — EAGAIN is
// already absorbed by the netpoller park inside sendFn) gets the
// bounded backoff before the entry is skipped and counted, so a burst
// that momentarily overruns the socket buffer is delivered instead of
// shedding its tail into the retransmission machinery.
//
//switchml:hotpath
func (c *Conn) sysFlush() {
	p := &c.sys
	p.sfrom = 0
	retries := 0
	for p.sfrom < p.scnt {
		p.sn, p.serrno = 0, 0
		if err := p.rc.Write(p.sendFn); err != nil {
			for i := p.sfrom; i < p.scnt; i++ {
				c.dropSendN(err, int(p.segs[i]))
			}
			break
		}
		if p.serrno != 0 {
			if retries < sendRetryBudget && (p.serrno == syscall.ENOBUFS || p.serrno == syscall.EAGAIN) {
				retries++
				c.sendRetries.Add(1)
				time.Sleep(sendRetryPause << (retries - 1))
				continue // re-issue from the same entry
			}
			// sendmmsg failed on the first unsent entry: skip it so the
			// rest of the burst still goes out.
			//switchml:allow hotpath -- errno boxing hits the runtime small-integer interface cache; no heap allocation
			c.dropSendN(p.serrno, int(p.segs[p.sfrom]))
			p.sfrom++
			retries = 0
			continue
		}
		p.sfrom += p.sn
		retries = 0
		if p.sn == 0 {
			p.sfrom++ // defensive: never livelock on a 0 return
		}
	}
	p.scnt, p.ucnt, p.sdg = 0, 0, 0
}

// sysPending counts staged datagrams (train entries expanded).
func (c *Conn) sysPending() int { return c.sys.sdg }

// dropSendN accounts n undeliverable datagrams from one send entry.
//
//switchml:hotpath
func (c *Conn) dropSendN(err error, n int) {
	c.sendErrs.Add(uint64(n))
	if c.cfg.OnSendError != nil {
		c.cfg.OnSendError(err, n)
	}
}

// errBadAddr is pre-boxed for the hot path.
var errBadAddr error = errAddrFamily

// ControlReusePort is a net.ListenConfig.Control hook setting
// SO_REUSEPORT before bind, letting every aggregator shard own a
// distinct socket on one address — the kernel then steers each flow
// to exactly one shard, the software analogue of NIC Flow Director
// steering.
func ControlReusePort(network, address string, rc syscall.RawConn) error {
	var serr error
	if err := rc.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, unixSoReuseport, 1)
	}); err != nil {
		return err
	}
	return serr
}

const unixSoReuseport = 0xf // SO_REUSEPORT, absent from the frozen syscall package
