//go:build !linux

package netio

import (
	"net/netip"
	"syscall"
)

// Non-Linux targets have no batched syscalls to reach for; every Conn
// runs ModePortable and these stubs are never invoked (netio.go
// branches on the mode before calling them).

type platform struct{}

func (c *Conn) initPlatform() error { return nil }

func (c *Conn) sysRecv() (int, error) { return 0, errAddrFamily }

func (c *Conn) sysAppendTo(payload []byte, to netip.AddrPort) {}

func (c *Conn) sysAppendTrain(block []byte, seg int, to netip.AddrPort) {}

func (c *Conn) sysFlush() {}

func (c *Conn) sysPending() int { return 0 }

// ControlReusePort refuses: SO_REUSEPORT load balancing across
// sockets is a Linux behavior; elsewhere shards share one socket.
func ControlReusePort(network, address string, rc syscall.RawConn) error {
	return ErrReusePortUnsupported
}
