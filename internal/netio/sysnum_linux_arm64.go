//go:build linux && arm64

package netio

const (
	sysRecvmmsg   = 243
	sysSendmmsg   = 269
	mmsgSupported = true
)
