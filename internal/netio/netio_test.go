package netio

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pair binds a loopback listener and dials it, wrapping both ends.
func pair(t *testing.T, cfg Config) (srv, cli *Conn) {
	t.Helper()
	lu, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { lu.Close() })
	du, err := net.DialUDP("udp", nil, lu.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { du.Close() })
	srv, err = Wrap(lu, cfg)
	if err != nil {
		t.Fatalf("wrap listener: %v", err)
	}
	cli, err = Wrap(du, cfg)
	if err != nil {
		t.Fatalf("wrap dialer: %v", err)
	}
	return srv, cli
}

// collect drains conn until want datagrams arrived or the deadline
// passed, appending copies of each payload.
func collect(t *testing.T, c *Conn, want int) [][]byte {
	t.Helper()
	var got [][]byte
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < want {
		c.SetReadDeadline(deadline)
		n, err := c.Recv()
		if err != nil {
			t.Fatalf("recv after %d/%d datagrams: %v", len(got), want, err)
		}
		for _, m := range c.Msgs[:n] {
			got = append(got, bytes.Clone(m.Buf))
		}
	}
	return got
}

func modeConfigs() map[string]Config {
	return map[string]Config{
		"default":  {Batch: 16, MTU: 512},
		"portable": {Batch: 16, MTU: 512, ForcePortable: true},
	}
}

// TestHotpathRoundTrip is the golden exchange: a burst of distinct
// datagrams staged with AppendTo arrives intact (payloads and
// ordering within the flow preserved on loopback), in every mode the
// platform offers.
func TestHotpathRoundTrip(t *testing.T) {
	for name, cfg := range modeConfigs() {
		t.Run(name, func(t *testing.T) {
			srv, cli := pair(t, cfg)
			t.Logf("server mode %v, client mode %v", srv.Mode(), cli.Mode())
			const n = 12
			var sent [][]byte
			for i := 0; i < n; i++ {
				p := []byte(fmt.Sprintf("datagram-%02d-%s", i, name))
				sent = append(sent, p)
				cli.AppendTo(p, netip.AddrPort{})
			}
			if cli.Pending() == 0 {
				t.Fatalf("nothing staged")
			}
			cli.Flush()
			if cli.Pending() != 0 {
				t.Fatalf("flush left %d staged", cli.Pending())
			}
			got := collect(t, srv, n)
			for i := range sent {
				if !bytes.Equal(got[i], sent[i]) {
					t.Fatalf("datagram %d: got %q want %q", i, got[i], sent[i])
				}
			}
			if se := cli.SendErrors(); se != 0 {
				t.Fatalf("send errors: %d", se)
			}
		})
	}
}

// TestTrainRoundTrip sends equal-size segment trains through
// AppendTrain — the multicast/window-fill shape — and checks the
// receiver sees them split back into the original datagrams whatever
// combination of GSO, mmsg or portable I/O each side picked.
func TestTrainRoundTrip(t *testing.T) {
	for name, cfg := range modeConfigs() {
		t.Run(name, func(t *testing.T) {
			srv, cli := pair(t, cfg)
			const seg, nseg = 96, 10
			block := make([]byte, seg*nseg-32) // ragged tail: last seg short
			rng := rand.New(rand.NewSource(7))
			rng.Read(block)
			cli.AppendTrain(block, seg, netip.AddrPort{})
			cli.Flush()
			want := (len(block) + seg - 1) / seg
			got := collect(t, srv, want)
			for i := 0; i < want; i++ {
				lo := i * seg
				hi := lo + seg
				if hi > len(block) {
					hi = len(block)
				}
				if !bytes.Equal(got[i], block[lo:hi]) {
					t.Fatalf("segment %d mismatch (%d bytes, want %d)", i, len(got[i]), hi-lo)
				}
			}
		})
	}
}

// TestReplyAddressing checks the unconnected side can answer a burst
// using the source addresses Recv decoded — the aggregator's reply
// path.
func TestReplyAddressing(t *testing.T) {
	for name, cfg := range modeConfigs() {
		t.Run(name, func(t *testing.T) {
			srv, cli := pair(t, cfg)
			cli.AppendTo([]byte("ping"), netip.AddrPort{})
			cli.Flush()
			srv.SetReadDeadline(time.Now().Add(5 * time.Second))
			n, err := srv.Recv()
			if err != nil || n != 1 {
				t.Fatalf("recv: n=%d err=%v", n, err)
			}
			src := srv.Msgs[0].Addr
			if !src.IsValid() || src.Port() == 0 {
				t.Fatalf("no source address decoded: %v", src)
			}
			srv.AppendTo([]byte("pong"), src)
			srv.Flush()
			got := collect(t, cli, 1)
			if string(got[0]) != "pong" {
				t.Fatalf("reply: %q", got[0])
			}
		})
	}
}

// TestPortableEquivalence drives an identical seeded workload through
// the platform's best mode and the forced portable path and asserts
// byte-identical receipt — the guarantee that lets the transport flip
// between them without behavioral drift.
func TestPortableEquivalence(t *testing.T) {
	run := func(cfg Config) []byte {
		lu, _ := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		defer lu.Close()
		du, _ := net.DialUDP("udp", nil, lu.LocalAddr().(*net.UDPAddr))
		defer du.Close()
		srv, err := Wrap(lu, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cli, err := Wrap(du, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		sum := make([]byte, 0, 4096)
		for round := 0; round < 8; round++ {
			block := make([]byte, 128*8)
			rng.Read(block)
			cli.AppendTrain(block, 128, netip.AddrPort{})
			small := make([]byte, 1+rng.Intn(64))
			rng.Read(small)
			cli.AppendTo(small, netip.AddrPort{})
			cli.Flush()
			want := 8 + 1
			deadline := time.Now().Add(5 * time.Second)
			for got := 0; got < want; {
				srv.SetReadDeadline(deadline)
				n, err := srv.Recv()
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				for _, m := range srv.Msgs[:n] {
					sum = append(sum, m.Buf...)
					got++
				}
			}
		}
		return sum
	}
	fast := run(Config{Batch: 8, MTU: 1024})
	slow := run(Config{Batch: 8, MTU: 1024, ForcePortable: true})
	if !bytes.Equal(fast, slow) {
		t.Fatalf("batched and portable paths received different byte streams (%d vs %d bytes)", len(fast), len(slow))
	}
}

// TestForcedPortableEnv pins the SWITCHML_NO_MMSG escape hatch.
func TestForcedPortableEnv(t *testing.T) {
	t.Setenv(NoMmsgEnv, "1")
	lu, _ := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	defer lu.Close()
	c, err := Wrap(lu, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Mode() != ModePortable {
		t.Fatalf("mode %v under %s=1, want portable", c.Mode(), NoMmsgEnv)
	}
}

// TestZeroAllocRecvFlush is the AllocsPerRun gate behind the
// //switchml:hotpath annotations on Recv/AppendTo/AppendTrain/Flush:
// a steady-state echo cycle must not touch the heap in any mode.
func TestZeroAllocRecvFlush(t *testing.T) {
	for name, cfg := range modeConfigs() {
		t.Run(name, func(t *testing.T) {
			srv, cli := pair(t, cfg)
			payload := bytes.Repeat([]byte{0xab}, 256)
			block := bytes.Repeat([]byte{0xcd}, 256*4)
			deadline := time.Now().Add(30 * time.Second)
			srv.SetReadDeadline(deadline)
			cli.SetReadDeadline(deadline)
			step := func() {
				cli.AppendTo(payload, netip.AddrPort{})
				cli.AppendTrain(block, 256, netip.AddrPort{})
				cli.Flush()
				for got := 0; got < 5; {
					n, err := srv.Recv()
					if err != nil {
						t.Fatalf("recv: %v", err)
					}
					got += n
				}
			}
			step() // warm both paths
			if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
				t.Errorf("echo cycle allocates %.2f/op in mode %v, want 0", allocs, cli.Mode())
			}
		})
	}
}

// TestShardedBurstRace exercises the REUSEPORT sharding layout under
// the race detector: several shard sockets bound to one address, each
// owned by a goroutine running recv bursts and staged echoes, against
// concurrent senders. Skipped where SO_REUSEPORT steering is
// unavailable.
func TestShardedBurstRace(t *testing.T) {
	const shards = 4
	lc := net.ListenConfig{Control: ControlReusePort}
	first, err := lc.ListenPacket(t.Context(), "udp", "127.0.0.1:0")
	if err != nil || os.Getenv(NoMmsgEnv) != "" {
		t.Skipf("SO_REUSEPORT unavailable: %v", err)
	}
	addr := first.LocalAddr().String()
	conns := []*net.UDPConn{first.(*net.UDPConn)}
	for i := 1; i < shards; i++ {
		pc, err := lc.ListenPacket(t.Context(), "udp", addr)
		if err != nil {
			t.Skipf("second REUSEPORT bind failed: %v", err)
		}
		conns = append(conns, pc.(*net.UDPConn))
	}
	var echoed atomic.Int64
	var wg sync.WaitGroup
	for _, u := range conns {
		nc, err := Wrap(u, Config{Batch: 16, MTU: 512})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n, err := nc.Recv()
				if err != nil {
					return // closed or deadline: shard done
				}
				for _, m := range nc.Msgs[:n] {
					nc.AppendTo(m.Buf, m.Addr)
				}
				nc.Flush()
				echoed.Add(int64(n))
			}
		}()
	}
	const senders, perSender = 4, 200
	var swg sync.WaitGroup
	for s := 0; s < senders; s++ {
		swg.Add(1)
		go func(seed int64) {
			defer swg.Done()
			du, err := net.Dial("udp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer du.Close()
			buf := make([]byte, 200)
			rand.New(rand.NewSource(seed)).Read(buf)
			go func() { // drain echoes so socket buffers never clog
				b := make([]byte, 512)
				for {
					if _, err := du.Read(b); err != nil {
						return
					}
				}
			}()
			for i := 0; i < perSender; i++ {
				if _, err := du.Write(buf); err != nil {
					t.Error(err)
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}(int64(s))
	}
	swg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for echoed.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	for _, u := range conns {
		u.SetReadDeadline(time.Now())
		u.Close()
	}
	wg.Wait()
	if echoed.Load() == 0 {
		t.Fatalf("no datagrams reached the shard sockets")
	}
	t.Logf("shards echoed %d datagrams", echoed.Load())
}

// TestTrainBlockReuseAcrossBursts is the regression test for the
// aggregator's flushShard ordering: a staged train must stay valid
// until Flush returns (GSO mode sends directly from the caller's
// storage), and only then may the caller reset and refill the same
// backing array for the next burst. Two consecutive bursts through
// one reused block must both arrive intact.
func TestTrainBlockReuseAcrossBursts(t *testing.T) {
	for name, cfg := range modeConfigs() {
		t.Run(name, func(t *testing.T) {
			srv, cli := pair(t, cfg)
			const seg, nseg = 64, 4
			block := make([]byte, 0, seg*nseg)
			for burst := 0; burst < 2; burst++ {
				for i := 0; i < seg*nseg; i++ {
					block = append(block, byte(burst*31+i))
				}
				cli.AppendTrain(block, seg, netip.AddrPort{})
				cli.Flush()
				// Reset only after Flush — the flushShard contract the
				// bufown analyzer enforces statically.
				got := collect(t, srv, nseg)
				for i := 0; i < nseg; i++ {
					if !bytes.Equal(got[i], block[i*seg:(i+1)*seg]) {
						t.Fatalf("burst %d segment %d mismatch", burst, i)
					}
				}
				block = block[:0]
			}
		})
	}
}
