//go:build linux && amd64

package netio

// Raw syscall numbers: sendmmsg postdates the frozen syscall package
// on some targets, so both are spelled out per architecture.
const (
	sysRecvmmsg   = 299
	sysSendmmsg   = 307
	mmsgSupported = true
)
