package p4sim

import (
	"fmt"

	"switchml/internal/core"
	"switchml/internal/packet"
)

// This file is the executable counterpart of the static Compile
// model: a match-action pipeline that actually runs the SwitchML
// aggregation program stage by stage under the chip's constraints —
// at most RegALUsPerStage register read-modify-writes per stage, one
// access per register array per packet, and values computed in a
// stage usable only in later stages. It exists to demonstrate that
// Algorithm 3 really fits the dataplane programming model the paper
// targets (Appendix B), and it is differentially tested against the
// reference state machine in internal/core.
//
// Register layout, exactly as Appendix B describes: every 64-bit
// register holds both pool versions in its halves ("we use the upper
// and lower part of each register for alternate pools"), so the
// shadow copy costs no extra ALU operations:
//
//   - seen[slot]:  low 32 bits = version-0 bitmap, high = version-1
//     (capping this executable model at 32 workers);
//   - count[slot]: low = version-0 contribution count, high = v1;
//   - elem[j][slot], j < k: low = version-0 accumulator, high = v1.

// phv is the packet header vector plus per-packet metadata carried
// between stages.
type phv struct {
	pkt *packet.Packet
	// Metadata written by earlier stages, read by later ones.
	alreadySeen    bool
	first          bool
	complete       bool
	shadowComplete bool
	result         []int32
}

// registerArray is a stateful array of 64-bit registers, one per pool
// slot.
type registerArray struct {
	name string
	data []uint64
}

// stageCtx meters a stage's register accesses against the chip's ALU
// budget.
type stageCtx struct {
	stage    string
	budget   int
	accesses int
}

// rmw performs this stage's single read-modify-write on one register:
// f receives the current value and returns the new one. Exceeding the
// per-stage ALU budget panics — the executable analogue of the
// compiler rejecting the program.
func (s *stageCtx) rmw(arr *registerArray, idx uint32, f func(uint64) uint64) {
	s.accesses++
	if s.accesses > s.budget {
		panic(fmt.Sprintf("p4sim: stage %q exceeded its %d-ALU budget", s.stage, s.budget))
	}
	arr.data[idx] = f(arr.data[idx])
}

// halves splits and joins version halves of a 64-bit register.
func half(v uint64, ver uint8) uint32 {
	if ver == 0 {
		return uint32(v)
	}
	return uint32(v >> 32)
}

func setHalf(v uint64, ver uint8, x uint32) uint64 {
	if ver == 0 {
		return v&^uint64(0xFFFFFFFF) | uint64(x)
	}
	return v&0xFFFFFFFF | uint64(x)<<32
}

// PipelineSwitch executes the SwitchML program on the modelled
// pipeline. It implements the same packet-in/response-out contract as
// core.Switch (Algorithm 3 with loss recovery; per-worker FIFO
// delivery assumed, as on the paper's single-switch L2 fabric).
type PipelineSwitch struct {
	chip    ChipProfile
	workers int
	pool    int
	k       int

	seen  *registerArray
	count *registerArray
	elems []*registerArray

	// stagesUsed is the pipeline depth the program occupies.
	stagesUsed int
}

// NewPipelineSwitch lays the program out on the chip, failing if the
// static model rejects it or the executable layout cannot hold the
// worker bitmap (32 per register half).
func NewPipelineSwitch(chip ChipProfile, workers, poolSize, slotElems int) (*PipelineSwitch, error) {
	if workers > 32 {
		return nil, fmt.Errorf("p4sim: pipeline bitmap halves hold 32 workers, got %d", workers)
	}
	if _, err := Compile(chip, Program{
		SlotElems: slotElems, PoolSize: poolSize, Workers: workers, LossRecovery: true,
	}); err != nil {
		return nil, err
	}
	ps := &PipelineSwitch{
		chip:    chip,
		workers: workers,
		pool:    poolSize,
		k:       slotElems,
		seen:    &registerArray{name: "seen", data: make([]uint64, poolSize)},
		count:   &registerArray{name: "count", data: make([]uint64, poolSize)},
	}
	for j := 0; j < slotElems; j++ {
		ps.elems = append(ps.elems, &registerArray{
			name: fmt.Sprintf("elem%d", j), data: make([]uint64, poolSize),
		})
	}
	// Depth: parser + bitmap + counter + element stages + decision.
	elemStages := (slotElems + chip.RegALUsPerStage - 1) / chip.RegALUsPerStage
	ps.stagesUsed = 3 + elemStages + 1
	if ps.stagesUsed > chip.Stages {
		return nil, fmt.Errorf("p4sim: program needs %d stages, chip has %d", ps.stagesUsed, chip.Stages)
	}
	return ps, nil
}

// StagesUsed reports the pipeline depth the program occupies.
func (ps *PipelineSwitch) StagesUsed() int { return ps.stagesUsed }

// Handle runs one packet through the pipeline and returns the
// response, mirroring core.Switch.Handle.
func (ps *PipelineSwitch) Handle(p *packet.Packet) core.Response {
	// Stage 0 — parser and admission checks (no register access; the
	// parse budget was verified by Compile).
	if p.Kind != packet.KindUpdate || int(p.WorkerID) >= ps.workers ||
		int(p.Idx) >= ps.pool || len(p.Vector) == 0 || len(p.Vector) > ps.k || p.Ver > 1 {
		return core.Response{}
	}
	h := &phv{pkt: p}
	ps.stageBitmap(h)
	ps.stageCount(h)
	ps.stageElements(h)
	return ps.stageDecision(h)
}

// stageBitmap is the paper's single-operation bitmap update: set the
// worker's bit in the packet's version half and clear it in the
// other, in one 64-bit RMW.
func (ps *PipelineSwitch) stageBitmap(h *phv) {
	ctx := &stageCtx{stage: "bitmap", budget: ps.chip.RegALUsPerStage}
	p := h.pkt
	bit := uint64(1) << (uint(p.WorkerID) + 32*uint(p.Ver))
	otherBit := uint64(1) << (uint(p.WorkerID) + 32*uint(1-p.Ver))
	ctx.rmw(ps.seen, p.Idx, func(v uint64) uint64 {
		h.alreadySeen = v&bit != 0
		if h.alreadySeen {
			return v
		}
		return (v | bit) &^ otherBit
	})
}

// stageCount increments the version's contribution counter modulo n
// for fresh contributions and exposes completion state.
func (ps *PipelineSwitch) stageCount(h *phv) {
	ctx := &stageCtx{stage: "count", budget: ps.chip.RegALUsPerStage}
	p := h.pkt
	ctx.rmw(ps.count, p.Idx, func(v uint64) uint64 {
		c := half(v, p.Ver)
		if h.alreadySeen {
			h.shadowComplete = c == 0
			return v
		}
		h.first = c == 0
		nc := (c + 1) % uint32(ps.workers)
		h.complete = nc == 0
		return setHalf(v, p.Ver, nc)
	})
}

// stageElements runs the k accumulator updates, RegALUsPerStage per
// stage: overwrite on the first contribution (which doubles as the
// slot reset), add otherwise, and read the final value when the
// aggregation completes or a retransmission needs the retained
// result.
func (ps *PipelineSwitch) stageElements(h *phv) {
	p := h.pkt
	emit := h.complete || (h.alreadySeen && h.shadowComplete)
	if emit {
		h.result = make([]int32, len(p.Vector))
	}
	var ctx *stageCtx
	for j := 0; j < len(p.Vector); j++ {
		if j%ps.chip.RegALUsPerStage == 0 {
			ctx = &stageCtx{
				stage:  fmt.Sprintf("elem[%d..]", j),
				budget: ps.chip.RegALUsPerStage,
			}
		}
		jj := j
		ctx.rmw(ps.elems[jj], p.Idx, func(v uint64) uint64 {
			cur := int32(half(v, p.Ver))
			switch {
			case h.alreadySeen:
				// Retransmission: read-only.
			case h.first:
				cur = p.Vector[jj]
			default:
				cur += p.Vector[jj]
			}
			if emit {
				h.result[jj] = cur
			}
			if h.alreadySeen {
				return v
			}
			return setHalf(v, p.Ver, uint32(cur))
		})
	}
}

// stageDecision builds the egress action: multicast the completed
// aggregate, unicast a retained result to a retransmitting worker, or
// drop.
func (ps *PipelineSwitch) stageDecision(h *phv) core.Response {
	p := h.pkt
	switch {
	case h.complete:
		out := p.Clone()
		out.Kind = packet.KindResult
		out.Vector = h.result
		return core.Response{Pkt: out, Multicast: true}
	case h.alreadySeen && h.shadowComplete:
		out := p.Clone()
		out.Kind = packet.KindResultUnicast
		out.Vector = h.result
		return core.Response{Pkt: out}
	default:
		return core.Response{}
	}
}
