package p4sim

import (
	"math/rand"
	"testing"

	"switchml/internal/core"
	"switchml/internal/packet"
)

func newPipeline(t *testing.T, n, s, k int) *PipelineSwitch {
	t.Helper()
	ps, err := NewPipelineSwitch(Tofino64x100G(), n, s, k)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestPipelineBasicAggregation(t *testing.T) {
	ps := newPipeline(t, 2, 4, 4)
	p0 := packet.NewUpdate(0, 0, 0, 1, 0, []int32{1, 2, 3, 4})
	if r := ps.Handle(p0); r.Pkt != nil {
		t.Fatal("premature response")
	}
	r := ps.Handle(packet.NewUpdate(1, 0, 0, 1, 0, []int32{10, 20, 30, 40}))
	if r.Pkt == nil || !r.Multicast {
		t.Fatal("no multicast on completion")
	}
	want := []int32{11, 22, 33, 44}
	for i, v := range r.Pkt.Vector {
		if v != want[i] {
			t.Errorf("result[%d] = %d, want %d", i, v, want[i])
		}
	}
	// Retransmission after completion: unicast retained result.
	rr := ps.Handle(p0.Clone())
	if rr.Pkt == nil || rr.Multicast || rr.Pkt.Kind != packet.KindResultUnicast {
		t.Fatalf("retransmission reply = %+v", rr)
	}
	if rr.Pkt.Vector[0] != 11 {
		t.Errorf("retained result = %d, want 11", rr.Pkt.Vector[0])
	}
}

func TestPipelineRejects(t *testing.T) {
	chip := Tofino64x100G()
	if _, err := NewPipelineSwitch(chip, 33, 4, 4); err == nil {
		t.Error("33 workers accepted (bitmap half holds 32)")
	}
	if _, err := NewPipelineSwitch(chip, 8, 4, 33); err == nil {
		t.Error("k=33 accepted (ALU budget)")
	}
	ps := newPipeline(t, 2, 2, 4)
	for _, bad := range []*packet.Packet{
		{Kind: packet.KindResult, Vector: []int32{1}},
		packet.NewUpdate(5, 0, 0, 0, 0, []int32{1}),
		packet.NewUpdate(0, 0, 0, 9, 0, []int32{1}),
		packet.NewUpdate(0, 0, 3, 0, 0, []int32{1}),
		packet.NewUpdate(0, 0, 0, 0, 0, nil),
		packet.NewUpdate(0, 0, 0, 0, 0, make([]int32, 5)),
	} {
		if r := ps.Handle(bad); r.Pkt != nil {
			t.Errorf("malformed packet %v produced a response", bad)
		}
	}
}

func TestPipelineStagesWithinChip(t *testing.T) {
	ps := newPipeline(t, 8, 128, 32)
	if got, max := ps.StagesUsed(), Tofino64x100G().Stages; got > max {
		t.Errorf("StagesUsed = %d > chip stages %d", got, max)
	}
	// k=32 on a 4-ALU chip: 3 bookkeeping + 8 element + 1 decision.
	if ps.StagesUsed() != 12 {
		t.Errorf("StagesUsed = %d, want 12", ps.StagesUsed())
	}
}

// TestPipelineDifferential drives identical random traffic — losses,
// retransmissions, consecutive tensors — through the executable
// pipeline and the reference state machine, requiring byte-identical
// responses at every step. This is the evidence that Algorithm 3 fits
// the per-stage single-RMW dataplane model.
func TestPipelineDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(6)
		s := 1 + rng.Intn(6)
		k := 1 + rng.Intn(16)
		d := 1 + rng.Intn(300)
		loss := rng.Float64() * 0.2

		pipe := newPipeline(t, n, s, k)
		ref, err := core.NewSwitch(core.SwitchConfig{
			Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		workers := make([]*core.Worker, n)
		for i := range workers {
			workers[i], err = core.NewWorker(core.WorkerConfig{
				ID: uint16(i), Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
			})
			if err != nil {
				t.Fatal(err)
			}
		}

		// Drive: per-worker FIFO queues toward the switch, one result
		// queue per worker back; random scheduling with loss; on
		// drain, retransmit all pending. Both switches see the exact
		// same delivered sequence.
		up := make([][]*packet.Packet, n)
		down := make([][]*packet.Packet, n)
		done := make([]bool, n)
		want := make([]int32, d)
		for i, w := range workers {
			u := make([]int32, d)
			for j := range u {
				u[j] = int32(rng.Intn(201) - 100)
				want[j] += u[j]
			}
			up[i] = append(up[i], w.Start(u)...)
		}
		alive := func() bool {
			for _, dn := range done {
				if !dn {
					return true
				}
			}
			return false
		}
		for rounds := 0; alive(); rounds++ {
			if rounds > 1<<21 {
				t.Fatal("differential driver did not converge")
			}
			var choices []int
			for w := range workers {
				if len(up[w]) > 0 {
					choices = append(choices, w)
				}
				if len(down[w]) > 0 {
					choices = append(choices, w+n)
				}
			}
			if len(choices) == 0 {
				for w, worker := range workers {
					for idx := 0; idx < s; idx++ {
						if p := worker.Retransmit(uint32(idx)); p != nil {
							up[w] = append(up[w], p)
						}
					}
				}
				continue
			}
			c := choices[rng.Intn(len(choices))]
			if c < n {
				p := up[c][0]
				up[c] = up[c][1:]
				if rng.Float64() < loss {
					continue
				}
				got := pipe.Handle(p.Clone())
				exp := ref.Handle(p)
				compareResponses(t, got, exp)
				if exp.Pkt == nil {
					continue
				}
				if exp.Multicast {
					for w := range workers {
						down[w] = append(down[w], exp.Pkt.Clone())
					}
				} else {
					down[exp.Pkt.WorkerID] = append(down[exp.Pkt.WorkerID], exp.Pkt)
				}
				continue
			}
			w := c - n
			p := down[w][0]
			down[w] = down[w][1:]
			if rng.Float64() < loss {
				continue
			}
			next, fin := workers[w].HandleResult(p)
			if next != nil {
				up[w] = append(up[w], next)
			}
			if fin {
				done[w] = true
			}
		}
		for i, w := range workers {
			got := w.Aggregate()
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("trial %d worker %d elem %d: got %d want %d", trial, i, j, got[j], want[j])
				}
			}
		}
	}
}

func compareResponses(t *testing.T, got, want core.Response) {
	t.Helper()
	if (got.Pkt == nil) != (want.Pkt == nil) || got.Multicast != want.Multicast {
		t.Fatalf("response shape diverged: pipeline %+v vs reference %+v", got, want)
	}
	if got.Pkt == nil {
		return
	}
	if got.Pkt.Kind != want.Pkt.Kind || got.Pkt.WorkerID != want.Pkt.WorkerID ||
		got.Pkt.Ver != want.Pkt.Ver || got.Pkt.Idx != want.Pkt.Idx ||
		len(got.Pkt.Vector) != len(want.Pkt.Vector) {
		t.Fatalf("response header diverged: %v vs %v", got.Pkt, want.Pkt)
	}
	for i := range want.Pkt.Vector {
		if got.Pkt.Vector[i] != want.Pkt.Vector[i] {
			t.Fatalf("response vector diverged at %d: %d vs %d",
				i, got.Pkt.Vector[i], want.Pkt.Vector[i])
		}
	}
}

func TestPipelineConsecutiveTensorsDifferential(t *testing.T) {
	// Lossless multi-tensor stream: the version halves must alternate
	// identically to the reference across tensor boundaries.
	pipe := newPipeline(t, 2, 2, 4)
	ref, _ := core.NewSwitch(core.SwitchConfig{Workers: 2, PoolSize: 2, SlotElems: 4, LossRecovery: true})
	workers := make([]*core.Worker, 2)
	for i := range workers {
		workers[i], _ = core.NewWorker(core.WorkerConfig{
			ID: uint16(i), Workers: 2, PoolSize: 2, SlotElems: 4, LossRecovery: true,
		})
	}
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 5; iter++ {
		d := 4 + rng.Intn(60)
		var queue []*packet.Packet
		for _, w := range workers {
			u := make([]int32, d)
			for j := range u {
				u[j] = int32(rng.Intn(9) - 4)
			}
			queue = append(queue, w.Start(u)...)
		}
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			got := pipe.Handle(p.Clone())
			exp := ref.Handle(p)
			compareResponses(t, got, exp)
			if exp.Pkt == nil {
				continue
			}
			for _, w := range workers {
				next, _ := w.HandleResult(exp.Pkt.Clone())
				if next != nil {
					queue = append(queue, next)
				}
			}
		}
	}
}
