package p4sim

import "testing"

func TestPaperDeploymentCompiles(t *testing.T) {
	chip := Tofino64x100G()
	// The paper's 10 Gbps deployment: k=32, s=128.
	alloc, err := Compile(chip, Program{SlotElems: 32, PoolSize: 128, Workers: 8, LossRecovery: true})
	if err != nil {
		t.Fatalf("paper deployment rejected: %v", err)
	}
	// §3.6: the two pools of 128 slots x 32 elements occupy 32 KB of
	// register space (plus small bitmap/counter overhead).
	if alloc.PoolSRAMBytes < 32*1024 || alloc.PoolSRAMBytes > 40*1024 {
		t.Errorf("PoolSRAMBytes = %d, want ~32 KiB", alloc.PoolSRAMBytes)
	}
	// §5.5: "the memory requirement is << 10% of switch resources".
	if alloc.TotalSRAMFraction >= 0.10 {
		t.Errorf("TotalSRAMFraction = %v, want << 0.10", alloc.TotalSRAMFraction)
	}
	if alloc.ElemStages != 8 {
		t.Errorf("ElemStages = %d, want 8 (32 elems / 4 ALUs)", alloc.ElemStages)
	}
}

func Test100GbpsPoolCompiles(t *testing.T) {
	// The 100 Gbps deployment uses s=512: 128 KB per version (§3.6).
	alloc, err := Compile(Tofino64x100G(), Program{SlotElems: 32, PoolSize: 512, Workers: 16, LossRecovery: true})
	if err != nil {
		t.Fatalf("rejected: %v", err)
	}
	if alloc.TotalSRAMFraction >= 0.10 {
		t.Errorf("TotalSRAMFraction = %v, want < 0.10", alloc.TotalSRAMFraction)
	}
}

func TestKBoundedByChip(t *testing.T) {
	chip := Tofino64x100G()
	// k=32 is exactly the chip's ALU budget with default bookkeeping:
	// (12-4) stages x 4 ALUs. One more element must be rejected.
	if _, err := Compile(chip, Program{SlotElems: 33, PoolSize: 16, Workers: 8, LossRecovery: true}); err == nil {
		t.Error("k=33 compiled, want rejection (ALU budget)")
	}
	// MTU-sized payloads (366 elements) cannot compile on this chip —
	// the premise of the Figure 7 experiment.
	if _, err := Compile(chip, Program{SlotElems: 366, PoolSize: 16, Workers: 8, LossRecovery: true}); err == nil {
		t.Error("k=366 compiled, want rejection")
	}
}

func TestParseBudgetBindsWhenALUsDoNot(t *testing.T) {
	chip := Tofino64x100G()
	chip.RegALUsPerStage = 100 // ALUs no longer the bottleneck.
	alloc, err := Compile(chip, Program{SlotElems: 32, PoolSize: 16, Workers: 8, LossRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	// Parse window: (192-52)/4 = 35 elements.
	if alloc.MaxSlotElems != 35 {
		t.Errorf("MaxSlotElems = %d, want 35 (parse-bound)", alloc.MaxSlotElems)
	}
	if _, err := Compile(chip, Program{SlotElems: 36, PoolSize: 16, Workers: 8, LossRecovery: true}); err == nil {
		t.Error("k beyond parse window compiled")
	}
}

func TestSRAMLimitRejectsHugePools(t *testing.T) {
	chip := Tofino64x100G()
	if _, err := Compile(chip, Program{SlotElems: 32, PoolSize: 1 << 22, Workers: 8, LossRecovery: true}); err == nil {
		t.Error("4M-slot pool compiled, want SRAM rejection")
	}
}

func TestAlgorithm1UsesFewerResources(t *testing.T) {
	chip := Tofino64x100G()
	with, err := Compile(chip, Program{SlotElems: 32, PoolSize: 128, Workers: 8, LossRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Compile(chip, Program{SlotElems: 32, PoolSize: 128, Workers: 8, LossRecovery: false})
	if err != nil {
		t.Fatal(err)
	}
	if without.PoolSRAMBytes >= with.PoolSRAMBytes {
		t.Errorf("Algorithm 1 SRAM %d >= Algorithm 3 SRAM %d", without.PoolSRAMBytes, with.PoolSRAMBytes)
	}
}

func TestMaxPoolSizeHeadroom(t *testing.T) {
	// §3.6: "the switch can support two orders of magnitude more
	// slots" than the 512 used at 100 Gbps.
	chip := Tofino64x100G()
	maxPool := MaxPoolSize(chip, Program{SlotElems: 32, Workers: 16, LossRecovery: true})
	if maxPool < 512*50 {
		t.Errorf("MaxPoolSize = %d, want >= %d (orders-of-magnitude headroom)", maxPool, 512*50)
	}
	p := Program{SlotElems: 32, Workers: 16, LossRecovery: true, PoolSize: maxPool}
	if _, err := Compile(chip, p); err != nil {
		t.Errorf("MaxPoolSize result does not compile: %v", err)
	}
	p.PoolSize = maxPool + 1
	if _, err := Compile(chip, p); err == nil {
		t.Error("MaxPoolSize+1 compiled")
	}
}

func TestCompileValidation(t *testing.T) {
	chip := Tofino64x100G()
	if _, err := Compile(chip, Program{}); err == nil {
		t.Error("zero program compiled")
	}
	small := chip
	small.Stages = 3
	if _, err := Compile(small, Program{SlotElems: 4, PoolSize: 4, Workers: 2, LossRecovery: true}); err == nil {
		t.Error("program compiled on chip with too few stages")
	}
	tiny := chip
	tiny.MaxParseBytes = 40
	if _, err := Compile(tiny, Program{SlotElems: 4, PoolSize: 4, Workers: 2, LossRecovery: true}); err == nil {
		t.Error("program compiled with parse window smaller than headers")
	}
}

func TestMaxPoolSizeZeroOnImpossibleChip(t *testing.T) {
	chip := Tofino64x100G()
	chip.SRAMPerStageBytes = 16 // Nothing fits.
	if got := MaxPoolSize(chip, Program{SlotElems: 32, Workers: 8, LossRecovery: true}); got != 0 {
		t.Errorf("MaxPoolSize = %d, want 0", got)
	}
}

func TestFloat16ModeResourceCost(t *testing.T) {
	// §3.7: the float16 mode "consumes more switch resources": each
	// wire element expands to two accumulators, so k=32 no longer
	// fits the chip — the deployment must halve k (same 32 gradient
	// values per packet, carried as halves).
	chip := Tofino64x100G()
	full := Program{SlotElems: 32, PoolSize: 128, Workers: 8, LossRecovery: true, AccumulatorsPerElem: 2}
	if _, err := Compile(chip, full); err == nil {
		t.Error("float16 with k=32 compiled; expected ALU rejection")
	}
	halved := full
	halved.SlotElems = 16
	alloc, err := Compile(chip, halved)
	if err != nil {
		t.Fatalf("float16 with k=16 rejected: %v", err)
	}
	if alloc.ALUs != 32 {
		t.Errorf("ALUs = %d, want 32 (16 wire elems x 2 halves)", alloc.ALUs)
	}
	// Pool SRAM matches the fixed-point deployment: same accumulator
	// count per slot.
	plain, err := Compile(chip, Program{SlotElems: 32, PoolSize: 128, Workers: 8, LossRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.PoolSRAMBytes != plain.PoolSRAMBytes {
		t.Errorf("float16 pool SRAM %d != fixed-point %d", alloc.PoolSRAMBytes, plain.PoolSRAMBytes)
	}
}
