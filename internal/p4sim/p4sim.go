// Package p4sim models the resource constraints of a programmable
// switch dataplane in the RMT/Tofino mould (paper §3.1, §4 and
// Appendix B). It is a static allocation model, not an instruction
// interpreter: the protocol behaviour lives in internal/core, and
// this package answers whether — and at what resource cost — that
// behaviour fits a given chip.
//
// The constraints modelled are the ones the paper designs around:
//
//   - per-packet parse budget: only a few hundred bytes of each
//     packet can be parsed and computed over, capping k;
//   - stage count and per-stage register ALUs: the 32 elements per
//     packet are spread across ingress pipeline stages, with a few
//     stages reserved for bookkeeping (bitmap, counter, multicast
//     decision);
//   - 64-bit register accesses: the upper and lower halves of one
//     register hold the two pool versions, so the shadow copy costs
//     no extra ALUs (Appendix B);
//   - per-stage SRAM: pools, bitmaps and counters must fit in the
//     register memory of the stages they occupy.
//
//switchml:deterministic
package p4sim

import "fmt"

// ChipProfile describes a switch ASIC's ingress pipeline resources.
type ChipProfile struct {
	// Name identifies the profile in reports.
	Name string
	// Stages is the number of ingress match-action stages.
	Stages int
	// RegALUsPerStage is the number of stateful register ALUs per
	// stage; each ALU can read-modify-write one 64-bit register per
	// packet.
	RegALUsPerStage int
	// SRAMPerStageBytes is the register memory available per stage.
	SRAMPerStageBytes int
	// MaxParseBytes is the largest prefix of a packet the parser can
	// expose to the pipeline, headers included.
	MaxParseBytes int
	// Ports is the number of front-panel ports.
	Ports int
	// PortBitsPerSec is the per-port line rate.
	PortBitsPerSec float64
	// PipelineLatencyNs is the fixed ingress-to-egress latency.
	PipelineLatencyNs int64
}

// Tofino64x100G returns a profile patterned after the paper's testbed
// switch: 64 ports of 100 Gbps with a 12-stage ingress pipeline
// (§5.1). The numbers are representative of public RMT descriptions,
// chosen so that the paper's deployment parameters (k=32 in a single
// ingress pipeline, pools well under 10% of SRAM) fall out rather
// than being hard-coded.
func Tofino64x100G() ChipProfile {
	return ChipProfile{
		Name:              "tofino-64x100g",
		Stages:            12,
		RegALUsPerStage:   4,
		SRAMPerStageBytes: 1 << 20, // 1 MiB per stage, ~12 MiB total.
		MaxParseBytes:     192,
		Ports:             64,
		PortBitsPerSec:    100e9,
		PipelineLatencyNs: 400,
	}
}

// Program describes a SwitchML aggregation program to be laid out on
// a chip.
type Program struct {
	// SlotElems is k, the elements aggregated per packet.
	SlotElems int
	// PoolSize is s, the aggregator slots per pool version.
	PoolSize int
	// Workers is n, determining bitmap width.
	Workers int
	// LossRecovery selects the Algorithm 3 layout (two pool versions
	// sharing 64-bit registers, plus bitmap and counter stages).
	LossRecovery bool
	// PayloadHeaderBytes is the per-packet header budget that must
	// fit in the parse window together with the payload.
	PayloadHeaderBytes int
	// AccumulatorsPerElem is the number of 32-bit accumulators each
	// wire element expands to in the pipeline: 1 for 32-bit fixed
	// point, 2 for the packed-float16 mode of §3.7 (each half gets
	// its own register after the lookup-table conversion) — which is
	// why the paper notes float16 "consumes more switch resources in
	// terms of lookup tables and arithmetic units". Zero selects 1.
	AccumulatorsPerElem int
	// BookkeepingStages is the number of stages consumed by
	// non-element work: parsing/validation, the seen bitmap, the
	// counter, and the multicast decision. The paper's program uses
	// dependent operations that cannot share a stage with element
	// aggregation. Zero selects the default of 4.
	BookkeepingStages int
}

// Allocation reports how a compiled program occupies the chip.
type Allocation struct {
	// ElemStages is the number of stages carrying element ALUs.
	ElemStages int
	// ALUs is the total register ALUs in use for elements.
	ALUs int
	// MaxSlotElems is the largest k this chip could support given its
	// stages and parse budget; the program's k must not exceed it.
	MaxSlotElems int
	// PoolSRAMBytes is the register memory used by the pools
	// (both versions), bitmaps and counters.
	PoolSRAMBytes int
	// SRAMFraction is PoolSRAMBytes over the total SRAM of the stages
	// the program occupies.
	SRAMFraction float64
	// TotalSRAMFraction is PoolSRAMBytes over the chip's entire SRAM,
	// the "<<10% of switch resources" figure of §5.5.
	TotalSRAMFraction float64
}

// Compile checks prog against chip and returns its resource
// allocation. It fails when k exceeds the ALU or parse budgets or the
// pools do not fit in SRAM — mirroring the paper's experience that "a
// program with too many dependencies cannot find a suitable
// allocation ... and will be rejected by the compiler" (Appendix B).
func Compile(chip ChipProfile, prog Program) (Allocation, error) {
	if prog.SlotElems <= 0 || prog.PoolSize <= 0 || prog.Workers <= 0 {
		return Allocation{}, fmt.Errorf("p4sim: program parameters must be positive: %+v", prog)
	}
	book := prog.BookkeepingStages
	if book == 0 {
		book = 4
	}
	if !prog.LossRecovery && book > 2 {
		// Algorithm 1 needs no bitmap or shadow bookkeeping.
		book = 2
	}
	elemStagesAvail := chip.Stages - book
	if elemStagesAvail <= 0 {
		return Allocation{}, fmt.Errorf("p4sim: %s has %d stages, %d consumed by bookkeeping",
			chip.Name, chip.Stages, book)
	}

	// Each ALU aggregates one 32-bit accumulator per packet; with
	// loss recovery the two pool versions share the 64-bit register
	// halves at no extra ALU cost (Appendix B).
	acc := prog.AccumulatorsPerElem
	if acc == 0 {
		acc = 1
	}
	aluBudget := elemStagesAvail * chip.RegALUsPerStage / acc

	headers := prog.PayloadHeaderBytes
	if headers == 0 {
		headers = 52
	}
	parseBudget := (chip.MaxParseBytes - headers) / 4
	if parseBudget <= 0 {
		return Allocation{}, fmt.Errorf("p4sim: %s parse window %dB cannot fit headers (%dB)",
			chip.Name, chip.MaxParseBytes, headers)
	}
	maxK := aluBudget
	if parseBudget < maxK {
		maxK = parseBudget
	}
	if prog.SlotElems > maxK {
		return Allocation{}, fmt.Errorf(
			"p4sim: k=%d exceeds %s budget of %d elements (ALUs: %d, parse window: %d)",
			prog.SlotElems, chip.Name, maxK, aluBudget, parseBudget)
	}

	elemStages := (acc*prog.SlotElems + chip.RegALUsPerStage - 1) / chip.RegALUsPerStage

	versions := 2
	if !prog.LossRecovery {
		versions = 1
	}
	poolBytes := versions * prog.PoolSize * acc * prog.SlotElems * 4
	bitmapBytes := 0
	counterBytes := 0
	if prog.LossRecovery {
		bitmapBytes = versions * prog.PoolSize * ((prog.Workers + 7) / 8)
		counterBytes = versions * prog.PoolSize * 4
	} else {
		counterBytes = prog.PoolSize * 4
	}
	total := poolBytes + bitmapBytes + counterBytes

	// The pool vectors are striped across the element stages; each
	// stage must hold its stripe.
	perStage := poolBytes / elemStages
	if perStage > chip.SRAMPerStageBytes {
		return Allocation{}, fmt.Errorf(
			"p4sim: pool stripe %dB exceeds per-stage SRAM %dB on %s (reduce pool size %d)",
			perStage, chip.SRAMPerStageBytes, chip.Name, prog.PoolSize)
	}

	occupiedSRAM := (elemStages + book) * chip.SRAMPerStageBytes
	chipSRAM := chip.Stages * chip.SRAMPerStageBytes
	return Allocation{
		ElemStages:        elemStages,
		ALUs:              acc * prog.SlotElems,
		MaxSlotElems:      maxK,
		PoolSRAMBytes:     total,
		SRAMFraction:      float64(total) / float64(occupiedSRAM),
		TotalSRAMFraction: float64(total) / float64(chipSRAM),
	}, nil
}

// MaxPoolSize returns the largest pool size (slots per version) the
// chip can hold for a given k and worker count, the "two orders of
// magnitude more slots" headroom of §3.6.
func MaxPoolSize(chip ChipProfile, prog Program) int {
	lo, hi := 1, 1<<28
	for lo < hi {
		mid := (lo + hi + 1) / 2
		p := prog
		p.PoolSize = mid
		if _, err := Compile(chip, p); err == nil {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if _, err := Compile(chip, func() Program { p := prog; p.PoolSize = lo; return p }()); err != nil {
		return 0
	}
	return lo
}
