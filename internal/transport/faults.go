package transport

import (
	"net"
	"time"

	"switchml/internal/faults"
	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// LivenessConfig enables the aggregator's failure detector: workers
// silent past the threshold — while at least one peer keeps making
// progress — are declared failed, their session state is evicted, and
// the survivors are walked through the reconfigure/report/resume
// handshake under a new job generation (§5.6).
type LivenessConfig struct {
	// SilenceAfter is the silence threshold; zero selects 2 s. It must
	// comfortably exceed the clients' maximum retransmission backoff
	// (64×RTO) to avoid retiring a merely unlucky worker.
	SilenceAfter time.Duration
	// CheckEvery is the detector sweep period; zero selects
	// SilenceAfter/4. Undelivered control packets are rebroadcast at
	// this period until every survivor has reported.
	CheckEvery time.Duration
}

func (c *LivenessConfig) fillDefaults() {
	if c.SilenceAfter == 0 {
		c.SilenceAfter = 2 * time.Second
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = c.SilenceAfter / 4
	}
}

// liveness is the aggregator's recovery state, guarded by the
// aggregator mutex.
type liveness struct {
	cfg     LivenessConfig
	tracker *faults.Tracker
	// recovering means a reconfiguration is in flight: KindReconfig is
	// (re)broadcast until every live worker has reported its frontier.
	recovering bool
	// resumeReady means the global frontier is final and KindResume
	// has been issued; stale-generation traffic triggers re-sends.
	resumeReady bool
	// frontier is the minimum reported stream offset.
	frontier uint64
	// reported marks workers whose KindReport arrived this generation.
	reported []bool
}

// sweepLoop is the detector goroutine.
func (a *Aggregator) sweepLoop() {
	defer a.wg.Done()
	t := time.NewTicker(a.lv.cfg.CheckEvery)
	defer t.Stop()
	for {
		select {
		case <-a.closed:
			return
		case <-t.C:
			a.sweep(time.Now().UnixNano())
		}
	}
}

// sweep is one detector pass: declare silent workers failed, evict
// their session state, and start (or keep pushing) recovery.
func (a *Aggregator) sweep(now int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	verdict := false
	for _, w := range a.lv.tracker.Suspects(now) {
		if a.lv.tracker.AliveCount() <= 1 {
			break // never retire the last worker
		}
		a.lv.tracker.MarkDead(w)
		a.peers[w] = nil // evict the dead worker's session state
		a.traceCtrl(telemetry.EvFailureDetected, int32(w), -1)
		verdict = true
	}
	if verdict {
		a.startRecoveryLocked()
		return
	}
	if a.lv.recovering {
		// Control datagrams are as losable as any other; rebroadcast
		// to the workers that have not reported yet.
		a.sendReconfigLocked()
	}
}

// startRecoveryLocked bumps the job generation, installs the shrunken
// membership (draining the pool, so no slot can mix generations), and
// opens the report quorum.
func (a *Aggregator) startRecoveryLocked() {
	a.epoch++
	active := make([]bool, len(a.peers))
	for i := range active {
		active[i] = !a.lv.tracker.Dead(i)
	}
	if err := a.sw.Reconfigure(active, a.epoch); err != nil {
		// Unreachable: the sweep never retires the last worker.
		return
	}
	a.traceCtrl(telemetry.EvReconfigure, -1, int64(a.epoch))
	a.lv.recovering = true
	a.lv.resumeReady = false
	a.lv.frontier = ^uint64(0)
	for i := range a.lv.reported {
		a.lv.reported[i] = false
	}
	a.sendReconfigLocked()
}

// survivorsLocked returns the live membership as a packet vector.
func (a *Aggregator) survivorsLocked() []int32 {
	var vec []int32
	for w := range a.peers {
		if !a.lv.tracker.Dead(w) {
			vec = append(vec, int32(w))
		}
	}
	return vec
}

// sendReconfigLocked (re)sends the reconfigure directive to live
// workers that have not reported their frontier yet.
func (a *Aggregator) sendReconfigLocked() {
	vec := a.survivorsLocked()
	for w, peer := range a.peers {
		if peer == nil || a.lv.tracker.Dead(w) || a.lv.reported[w] {
			continue
		}
		out := packet.NewControl(packet.KindReconfig, uint16(w), a.epoch, 0, vec).Marshal()
		a.conn.WriteToUDP(out, peer)
		a.sent.Inc()
	}
}

// handleReport folds one worker's frontier into the quorum; when the
// last live worker reports, the resume directive goes out with the
// global minimum. A report arriving after that (its resume was lost)
// just gets the directive repeated.
func (a *Aggregator) handleReport(p *packet.Packet, src *net.UDPAddr) {
	if a.lv == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	w := int(p.WorkerID)
	if p.JobID != a.epoch || a.lv.tracker.Dead(w) {
		return
	}
	a.lv.tracker.Touch(w, time.Now().UnixNano())
	a.peers[w] = src
	if p.Off < a.lv.frontier {
		a.lv.frontier = p.Off
	}
	a.lv.reported[w] = true
	if a.lv.resumeReady {
		out := packet.NewControl(packet.KindResume, p.WorkerID, a.epoch, a.lv.frontier, nil).Marshal()
		a.conn.WriteToUDP(out, src)
		a.sent.Inc()
		return
	}
	for i, peer := range a.peers {
		if a.lv.tracker.Dead(i) || a.lv.tracker.LastSeen(i) < 0 {
			continue // never joined; it cannot report
		}
		if peer == nil || !a.lv.reported[i] {
			return // quorum incomplete; the sweeper keeps rebroadcasting
		}
	}
	a.lv.recovering = false
	a.lv.resumeReady = true
	a.traceCtrl(telemetry.EvResume, -1, int64(a.lv.frontier))
	for i, peer := range a.peers {
		if peer == nil || a.lv.tracker.Dead(i) {
			continue
		}
		out := packet.NewControl(packet.KindResume, uint16(i), a.epoch, a.lv.frontier, nil).Marshal()
		a.conn.WriteToUDP(out, peer)
		a.sent.Inc()
	}
}

// touch records liveness from a heartbeat (or other control traffic)
// and keeps the sender's address fresh.
func (a *Aggregator) touch(p *packet.Packet, src *net.UDPAddr) {
	if a.lv == nil {
		return
	}
	a.mu.Lock()
	if !a.lv.tracker.Dead(int(p.WorkerID)) {
		a.lv.tracker.Touch(int(p.WorkerID), time.Now().UnixNano())
		a.peers[p.WorkerID] = src
	}
	a.mu.Unlock()
}

// Alive reports whether worker w is still part of the job. Without a
// liveness detector every configured worker counts as alive.
func (a *Aggregator) Alive(w int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w < 0 || w >= len(a.peers) {
		return false
	}
	if a.lv == nil {
		return true
	}
	return !a.lv.tracker.Dead(w)
}

// Epoch returns the current job generation.
func (a *Aggregator) Epoch() uint16 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// traceCtrl emits a controller-scope event stamped with wall-clock
// time.
func (a *Aggregator) traceCtrl(t telemetry.EventType, worker int32, off int64) {
	if a.cfg.Tracer == nil {
		return
	}
	e := telemetry.Ev(t, telemetry.WallClock())
	e.Actor = "aggregator"
	e.Worker = worker
	e.Off = off
	a.cfg.Tracer.Emit(e)
}
