package transport

import (
	"net/netip"
	"sync/atomic"
	"time"

	"switchml/internal/faults"
	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// LivenessConfig enables the aggregator's failure detector: workers
// silent past the threshold — while at least one peer keeps making
// progress — are declared failed, their session state is evicted, and
// the survivors are walked through the reconfigure/report/resume
// handshake under a new job generation (§5.6).
type LivenessConfig struct {
	// SilenceAfter is the silence threshold; zero selects 2 s. It must
	// comfortably exceed the clients' maximum retransmission backoff
	// (64×RTO) to avoid retiring a merely unlucky worker.
	SilenceAfter time.Duration
	// CheckEvery is the detector sweep period; zero selects
	// SilenceAfter/4. Undelivered control packets are rebroadcast at
	// this period until every survivor has reported.
	CheckEvery time.Duration
}

func (c *LivenessConfig) fillDefaults() {
	if c.SilenceAfter == 0 {
		c.SilenceAfter = 2 * time.Second
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = c.SilenceAfter / 4
	}
}

// liveness is the aggregator's recovery state. The tracker is
// internally atomic, and resumeReady/frontier are read lock-free by
// the shard goroutines' stale-generation fast path; everything else
// is guarded by the aggregator mutex.
type liveness struct {
	cfg     LivenessConfig
	tracker *faults.Tracker
	// recovering means a reconfiguration is in flight: KindReconfig is
	// (re)broadcast until every live worker has reported its frontier.
	recovering bool
	// resumeReady means the global frontier is final and KindResume
	// has been issued; stale-generation traffic triggers re-sends.
	resumeReady atomic.Bool
	// frontier is the minimum reported stream offset. Only meaningful
	// once resumeReady is set; written under the aggregator mutex.
	frontier atomic.Uint64
	// reported marks workers whose KindReport arrived this generation.
	reported []bool

	// Elastic membership (elastic.go). fence is the open join fence,
	// nil when none; leavePend/leaveOff record announced drains and
	// their boundaries. All three are guarded by the aggregator mutex.
	fence     *memberFence
	leavePend []bool
	leaveOff  []uint64
	// leaveArmed gates the per-update maxOff bookkeeping so the hot
	// path pays one atomic load when no drain is pending; maxOff is
	// each worker's highest seen update offset, the evidence a drain
	// commit waits on.
	leaveArmed atomic.Bool
	maxOff     []atomic.Uint64
}

// bumpMaxOff raises worker w's proven-progress watermark.
func (lv *liveness) bumpMaxOff(w int, off uint64) {
	for {
		cur := lv.maxOff[w].Load()
		if off <= cur || lv.maxOff[w].CompareAndSwap(cur, off) {
			return
		}
	}
}

// sweepLoop is the detector goroutine.
func (a *Aggregator) sweepLoop() {
	defer a.wg.Done()
	t := time.NewTicker(a.lv.cfg.CheckEvery)
	defer t.Stop()
	for {
		select {
		case <-a.closed:
			return
		case <-t.C:
			a.sweep(time.Now().UnixNano())
		}
	}
}

// sweep is one detector pass: declare silent workers failed, evict
// their session state, and start (or keep pushing) recovery.
func (a *Aggregator) sweep(now int64) {
	if a.down.Load() {
		return // a dead aggregation program detects nothing
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	verdict := false
	for _, w := range a.lv.tracker.Suspects(now) {
		if a.lv.tracker.AliveCount() <= 1 {
			break // never retire the last worker
		}
		a.lv.tracker.MarkDead(w)
		a.peers[w].Store(nil) // evict the dead worker's session state
		a.traceCtrl(telemetry.EvFailureDetected, int32(w), -1)
		verdict = true
	}
	if verdict {
		a.startRecoveryLocked()
		return
	}
	if a.lv.recovering {
		// Control datagrams are as losable as any other; rebroadcast
		// to the workers that have not reported yet.
		a.sendReconfigLocked()
	}
	a.elasticSweepLocked()
}

// startRecoveryLocked bumps the job generation, installs the shrunken
// membership (draining the pool, so no slot can mix generations), and
// opens the report quorum.
func (a *Aggregator) startRecoveryLocked() {
	a.epoch.Store(uint32(a.epochNow() + 1))
	active := make([]bool, len(a.peers))
	for i := range active {
		active[i] = !a.lv.tracker.Dead(i)
	}
	if err := a.sw.Reconfigure(active, a.epochNow()); err != nil {
		// Unreachable: the sweep never retires the last worker.
		return
	}
	a.traceCtrl(telemetry.EvReconfigure, -1, int64(a.epochNow()))
	// Crash recovery cannot wait for a membership fence: abort it (the
	// joiner retransmits its solicitation and gets a fresh fence once
	// the survivors have resumed).
	a.lv.fence = nil
	a.lv.recovering = true
	a.lv.resumeReady.Store(false)
	a.lv.frontier.Store(^uint64(0))
	for i := range a.lv.reported {
		a.lv.reported[i] = false
	}
	a.sendReconfigLocked()
}

// survivorsLocked returns the live membership as a packet vector.
func (a *Aggregator) survivorsLocked() []int32 {
	var vec []int32
	for w := range a.peers {
		if !a.lv.tracker.Dead(w) {
			vec = append(vec, int32(w))
		}
	}
	return vec
}

// sendReconfigLocked (re)sends the reconfigure directive to live
// workers that have not reported their frontier yet. The directive
// differs between recipients only in its worker-id field, so it is
// marshalled once and the id patched per peer.
func (a *Aggregator) sendReconfigLocked() {
	vec := a.survivorsLocked()
	var wire []byte
	for w := range a.peers {
		if a.lv.tracker.Dead(w) || a.lv.reported[w] {
			continue
		}
		ap := a.peers[w].Load()
		if ap == nil {
			continue
		}
		if wire == nil {
			wire = packet.NewControl(packet.KindReconfig, uint16(w), a.epochNow(), 0, vec).Marshal()
		} else if err := packet.PatchWorkerID(wire, uint16(w)); err != nil {
			continue
		}
		a.writeCtrl(wire, *ap)
	}
}

// handleReport folds one worker's frontier into the quorum; when the
// last live worker reports, the resume directive goes out with the
// global minimum. A report arriving after that (its resume was lost)
// just gets the directive repeated.
func (a *Aggregator) handleReport(p *packet.Packet, src netip.AddrPort) {
	if a.lv == nil {
		return
	}
	if p.Ver == 1 {
		// A membership-fence boundary confirmation, not a recovery
		// frontier report (elastic.go).
		a.handleFenceReport(p, src)
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	w := int(p.WorkerID)
	if p.JobID != a.epochNow() || a.lv.tracker.Dead(w) {
		return
	}
	a.lv.tracker.Touch(w, time.Now().UnixNano())
	a.setPeer(p.WorkerID, src)
	if p.Off < a.lv.frontier.Load() {
		a.lv.frontier.Store(p.Off)
	}
	a.lv.reported[w] = true
	if a.lv.resumeReady.Load() {
		out := packet.NewControl(packet.KindResume, p.WorkerID, a.epochNow(), a.lv.frontier.Load(), nil).Marshal()
		a.writeCtrl(out, src)
		return
	}
	for i := range a.peers {
		if a.lv.tracker.Dead(i) || a.lv.tracker.LastSeen(i) < 0 {
			continue // never joined; it cannot report
		}
		if a.peers[i].Load() == nil || !a.lv.reported[i] {
			return // quorum incomplete; the sweeper keeps rebroadcasting
		}
	}
	a.lv.recovering = false
	a.lv.resumeReady.Store(true)
	a.traceCtrl(telemetry.EvResume, -1, int64(a.lv.frontier.Load()))
	var wire []byte
	for i := range a.peers {
		if a.lv.tracker.Dead(i) {
			continue
		}
		ap := a.peers[i].Load()
		if ap == nil {
			continue
		}
		if wire == nil {
			wire = packet.NewControl(packet.KindResume, uint16(i), a.epochNow(), a.lv.frontier.Load(), nil).Marshal()
		} else if err := packet.PatchWorkerID(wire, uint16(i)); err != nil {
			continue
		}
		a.writeCtrl(wire, *ap)
	}
}

// touch records liveness from a heartbeat (or other control traffic)
// and keeps the sender's address fresh. Lock-free: the tracker and
// the address table are atomic.
func (a *Aggregator) touch(p *packet.Packet, src netip.AddrPort) {
	if a.lv == nil {
		return
	}
	if a.lv.tracker.Dead(int(p.WorkerID)) {
		return
	}
	a.lv.tracker.Touch(int(p.WorkerID), time.Now().UnixNano())
	a.setPeer(p.WorkerID, src)
}

// Alive reports whether worker w is still part of the job. Without a
// liveness detector every configured worker counts as alive.
func (a *Aggregator) Alive(w int) bool {
	if w < 0 || w >= len(a.peers) {
		return false
	}
	if a.lv == nil {
		return true
	}
	return !a.lv.tracker.Dead(w)
}

// Epoch returns the current job generation.
func (a *Aggregator) Epoch() uint16 { return a.epochNow() }

// traceCtrl emits a controller-scope event stamped with wall-clock
// time.
func (a *Aggregator) traceCtrl(t telemetry.EventType, worker int32, off int64) {
	if a.cfg.Tracer == nil {
		return
	}
	e := telemetry.Ev(t, telemetry.WallClock())
	e.Actor = "aggregator"
	e.Worker = worker
	e.Off = off
	a.cfg.Tracer.Emit(e)
}
