package transport

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"

	"switchml/internal/core"
	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// MultiAggregator is a UDP software aggregator serving several
// concurrent jobs, the multi-tenant scenario of §6: every job owns a
// disjoint pool of aggregators, an admission check bounds total
// register memory, and packets are routed to their job's pool by the
// JobID field.
type MultiAggregator struct {
	conn *net.UDPConn
	reg  *telemetry.Registry

	recvd, corrupt, sent *telemetry.Counter
	// sendErrs counts result datagrams whose socket send failed
	// (surfaced, not retried — worker RTO repairs the loss).
	sendErrs *telemetry.Counter

	mu     sync.Mutex
	ms     *core.MultiSwitch
	peers  map[uint16][]netip.AddrPort // per job, indexed by worker id
	wg     sync.WaitGroup
	closed chan struct{}
}

// NewMultiAggregator binds addr and serves with the given register
// memory budget in bytes (0 = unlimited).
func NewMultiAggregator(addr string, memoryBudget int) (*MultiAggregator, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	reg := telemetry.NewRegistry()
	m := &MultiAggregator{
		conn:     conn,
		reg:      reg,
		recvd:    reg.Counter("udp_datagrams_received_total", "role", "multiagg"),
		corrupt:  reg.Counter("udp_datagrams_corrupted_total", "role", "multiagg"),
		sent:     reg.Counter("udp_datagrams_sent_total", "role", "multiagg"),
		sendErrs: reg.Counter("udp_send_errors_total", "role", "multiagg"),
		ms:       core.NewMultiSwitch(memoryBudget),
		peers:    make(map[uint16][]netip.AddrPort),
		closed:   make(chan struct{}),
	}
	m.wg.Add(1)
	go m.serve()
	return m, nil
}

// Addr returns the bound listen address.
func (m *MultiAggregator) Addr() *net.UDPAddr { return m.conn.LocalAddr().(*net.UDPAddr) }

// Registry returns the registry holding every admitted job's switch
// counters (labeled job="<id>") plus the shared datagram counters.
func (m *MultiAggregator) Registry() *telemetry.Registry { return m.reg }

// AdmitJob allocates a pool for a job, failing when the memory budget
// would be exceeded (the admission mechanism of §6).
func (m *MultiAggregator) AdmitJob(cfg core.SwitchConfig) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cfg.Metrics = m.reg
	if cfg.Now == nil {
		cfg.Now = telemetry.WallClock
	}
	if _, err := m.ms.AdmitJob(cfg); err != nil {
		return err
	}
	m.peers[cfg.JobID] = make([]netip.AddrPort, cfg.Workers)
	return nil
}

// ReleaseJob frees a job's pool.
func (m *MultiAggregator) ReleaseJob(job uint16) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.ms.ReleaseJob(job); err != nil {
		return err
	}
	delete(m.peers, job)
	return nil
}

// MemoryBytes returns the admitted jobs' total register memory.
func (m *MultiAggregator) MemoryBytes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ms.MemoryBytes()
}

// Jobs returns the admitted job ids.
func (m *MultiAggregator) Jobs() []uint16 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ms.Jobs()
}

// Close shuts the server down.
func (m *MultiAggregator) Close() error {
	select {
	case <-m.closed:
		return nil
	default:
	}
	close(m.closed)
	err := m.conn.Close()
	m.wg.Wait()
	return err
}

// serve is the datagram loop. Receive buffer, decoded packet,
// response packet, target list and wire bytes are all reused across
// datagrams, so the steady-state cycle does not allocate.
func (m *MultiAggregator) serve() {
	defer m.wg.Done()
	var (
		buf     = make([]byte, 65536)
		p       packet.Packet
		out     packet.Packet
		wire    []byte
		targets []netip.AddrPort
	)
	for {
		n, src, err := m.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			select {
			case <-m.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		m.recvd.Inc()
		if err := packet.UnmarshalInto(&p, buf[:n]); err != nil {
			m.corrupt.Inc()
			continue
		}
		if p.Kind != packet.KindUpdate {
			continue
		}
		m.mu.Lock()
		peers, ok := m.peers[p.JobID]
		if !ok || int(p.WorkerID) >= len(peers) {
			m.mu.Unlock()
			continue
		}
		peers[p.WorkerID] = src
		resp := m.ms.HandleInto(&p, &out)
		targets = targets[:0]
		if resp.Pkt != nil {
			if resp.Multicast {
				targets = append(targets, peers...)
			} else if t := peers[resp.Pkt.WorkerID]; t.IsValid() {
				targets = append(targets, t)
			}
		}
		m.mu.Unlock()
		if resp.Pkt == nil {
			continue
		}
		wire = resp.Pkt.AppendMarshal(wire[:0])
		for _, t := range targets {
			if t.IsValid() {
				if _, err := m.conn.WriteToUDPAddrPort(wire, t); err != nil {
					m.sendErrs.Inc()
					continue
				}
				m.sent.Inc()
			}
		}
	}
}

// JobStats returns one admitted job's switch counters.
func (m *MultiAggregator) JobStats(job uint16) (core.SwitchStats, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sw := m.ms.Job(job)
	if sw == nil {
		return core.SwitchStats{}, false
	}
	return sw.Stats(), true
}
