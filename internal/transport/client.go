package transport

import (
	"fmt"
	"net"
	"time"

	"switchml/internal/core"
	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// ClientConfig configures a worker endpoint.
type ClientConfig struct {
	// Aggregator is the UDP address of the software aggregator (or a
	// SwitchML-speaking switch).
	Aggregator string
	// Worker is the protocol configuration; it must agree with the
	// aggregator's SwitchConfig on Workers, PoolSize, SlotElems and
	// LossRecovery.
	Worker core.WorkerConfig
	// RTO is the retransmission timeout; zero selects 50 ms, generous
	// for a LAN (the paper's testbed uses 1 ms; over real kernels a
	// larger value avoids spurious retransmissions under scheduling
	// jitter).
	RTO time.Duration
	// Timeout bounds one AllReduce call; zero selects 30 s.
	Timeout time.Duration
	// Metrics receives the worker protocol and datagram counters. Nil
	// allocates a private registry, available through Registry.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, observes protocol events stamped with
	// wall-clock nanoseconds.
	Tracer telemetry.Tracer
}

// Client is a synchronous SwitchML worker over UDP. It is not safe
// for concurrent use: one AllReduce runs at a time, matching the
// ordered-tensor requirement of the stream protocol (Appendix B).
type Client struct {
	cfg    ClientConfig
	conn   *net.UDPConn
	worker *core.Worker
	reg    *telemetry.Registry
	actor  string

	recvd, corrupt, sent *telemetry.Counter

	// lastSend tracks per-slot transmission times for timeout
	// sweeps.
	lastSend []time.Time
	// backoff counts consecutive timeouts per slot; the effective RTO
	// doubles with each (capped at 64x), preventing retransmission
	// storms when the configured RTO sits below the path RTT.
	backoff []uint8
}

// NewClient binds a local UDP socket and prepares the worker state
// machine.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.RTO == 0 {
		cfg.RTO = 50 * time.Millisecond
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	cfg.Worker.Metrics = reg
	w, err := core.NewWorker(cfg.Worker)
	if err != nil {
		return nil, err
	}
	raddr, err := net.ResolveUDPAddr("udp", cfg.Aggregator)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", cfg.Aggregator, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	id := fmt.Sprintf("%d", cfg.Worker.ID)
	return &Client{
		cfg:      cfg,
		conn:     conn,
		worker:   w,
		reg:      reg,
		actor:    "w" + id,
		recvd:    reg.Counter("udp_datagrams_received_total", "role", "worker", "worker", id),
		corrupt:  reg.Counter("udp_datagrams_corrupted_total", "role", "worker", "worker", id),
		sent:     reg.Counter("udp_datagrams_sent_total", "role", "worker", "worker", id),
		lastSend: make([]time.Time, cfg.Worker.PoolSize),
		backoff:  make([]uint8, cfg.Worker.PoolSize),
	}, nil
}

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// Registry returns the metrics registry backing this client's
// counters — the one from the config, or the private registry
// allocated when none was supplied.
func (c *Client) Registry() *telemetry.Registry { return c.reg }

// Stats returns the worker state machine counters. The counters are
// atomic, so this is safe to call from a monitoring goroutine while
// AllReduceInt32 runs.
func (c *Client) Stats() core.WorkerStats { return c.worker.Stats() }

// trace emits a protocol event stamped with wall-clock time.
func (c *Client) trace(t telemetry.EventType, idx int32) {
	if c.cfg.Tracer == nil {
		return
	}
	e := telemetry.Ev(t, telemetry.WallClock())
	e.Actor = c.actor
	e.Worker = int32(c.cfg.Worker.ID)
	e.Slot = idx
	c.cfg.Tracer.Emit(e)
}

// AllReduceInt32 aggregates u with the other workers and returns the
// elementwise sum. It blocks until the aggregate is complete or the
// configured timeout elapses.
func (c *Client) AllReduceInt32(u []int32) ([]int32, error) {
	if len(u) == 0 {
		return nil, nil
	}
	if c.cfg.Tracer != nil {
		e := telemetry.Ev(telemetry.EvTensorStart, telemetry.WallClock())
		e.Actor = c.actor
		e.Worker = int32(c.cfg.Worker.ID)
		e.Size = int32(4 * len(u))
		c.cfg.Tracer.Emit(e)
	}
	deadline := time.Now().Add(c.cfg.Timeout)
	for _, p := range c.worker.Start(u) {
		if err := c.send(p); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, 65536)
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: all-reduce timed out after %v (%d chunks outstanding)",
				c.cfg.Timeout, c.worker.PendingCount())
		}
		// Wake at the earliest pending retransmission deadline.
		readDeadline := time.Now().Add(c.cfg.RTO)
		for idx := range c.lastSend {
			if !c.worker.Pending(uint32(idx)) {
				continue
			}
			if d := c.lastSend[idx].Add(c.rto(idx)); d.Before(readDeadline) {
				readDeadline = d
			}
		}
		if err := c.conn.SetReadDeadline(readDeadline); err != nil {
			return nil, err
		}
		n, err := c.conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if err := c.sweepTimeouts(); err != nil {
					return nil, err
				}
				continue
			}
			return nil, err
		}
		c.recvd.Inc()
		p, err := packet.Unmarshal(buf[:n])
		if err != nil {
			c.corrupt.Inc()
			continue // corrupted datagram
		}
		next, done := c.worker.HandleResult(p)
		if next != nil || done || !c.worker.Pending(p.Idx) {
			if int(p.Idx) < len(c.backoff) {
				c.backoff[p.Idx] = 0
			}
		}
		if next != nil {
			if err := c.send(next); err != nil {
				return nil, err
			}
		}
		if done {
			c.trace(telemetry.EvTensorDone, -1)
			out := make([]int32, len(u))
			copy(out, c.worker.Aggregate())
			return out, nil
		}
	}
}

// send transmits an update and stamps its slot timer.
func (c *Client) send(p *packet.Packet) error {
	if _, err := c.conn.Write(p.Marshal()); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	c.sent.Inc()
	c.lastSend[p.Idx] = time.Now()
	return nil
}

// rto returns slot idx's effective timeout with backoff applied.
func (c *Client) rto(idx int) time.Duration {
	return c.cfg.RTO << c.backoff[idx]
}

// sweepTimeouts retransmits every pending chunk whose RTO elapsed
// (Algorithm 4 lines 20-23), doubling that slot's timeout.
func (c *Client) sweepTimeouts() error {
	now := time.Now()
	for idx := range c.lastSend {
		if !c.worker.Pending(uint32(idx)) {
			continue
		}
		if now.Sub(c.lastSend[idx]) < c.rto(idx) {
			continue
		}
		if c.backoff[idx] < 6 {
			c.backoff[idx]++
		}
		c.trace(telemetry.EvTimeoutFired, int32(idx))
		if p := c.worker.Retransmit(uint32(idx)); p != nil {
			c.trace(telemetry.EvRetransmit, int32(idx))
			if err := c.send(p); err != nil {
				return err
			}
		}
	}
	return nil
}
